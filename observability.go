package agingpred

// This file exports the observability surface backed by internal/obs: the
// process-wide metrics registry the instrumented subsystems (serving core,
// fleet, adaptive supervisor, rejuvenation controller) register into, its
// Prometheus text-format exposition, and the structured JSONL event journal.
// Like the rest of the root package these are aliases, not wrappers — an
// *agingpred.EventJournal IS an *obs.Journal.

import (
	"io"

	"agingpred/internal/obs"
)

// The observability types.
type (
	// MetricsRegistry is a named collection of metric series. Registration is
	// idempotent — the same (name, labels) pair always yields the same handle
	// — and the returned instruments update lock- and allocation-free.
	MetricsRegistry = obs.Registry
	// MetricCounter is a monotonically increasing counter series.
	MetricCounter = obs.Counter
	// MetricGauge is a float series that can go up and down.
	MetricGauge = obs.Gauge
	// MetricHistogram is a fixed-bucket histogram series (Prometheus `le`
	// upper-bound semantics, implicit +Inf overflow bucket).
	MetricHistogram = obs.Histogram
	// MetricLabel is one constant key/value label of a metric series.
	MetricLabel = obs.Label
	// EventJournal is an append-only JSONL log of the serving stack's discrete
	// lifecycle events. All methods are safe on a nil journal (= journaling
	// off).
	EventJournal = obs.Journal
	// Event is one journal record; EventType names its kind (drift_trip,
	// retrain_publish, epoch_swap, rejuv_dispatch, instance_crash, ...).
	Event     = obs.Event
	EventType = obs.EventType
)

// Metrics returns the process-wide metrics registry: every series the
// library's subsystems register (prediction counts, drift state, retrain
// durations, fleet tick latencies, rejuvenation outcomes) lives here, and
// `agingfleet -listen` serves it at /metrics. Callers may register their own
// series into it alongside the built-in ones.
func Metrics() *MetricsRegistry { return obs.Default }

// WriteMetrics renders every series of the process-wide registry in the
// Prometheus text exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// SetMetricsEnabled turns the global instrumentation gate on (the default) or
// off. Exposition and registration always work; only updates are gated — the
// gate exists so the instrumentation overhead itself can be measured.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// MetricsEnabled reports whether instrumentation updates are being recorded.
func MetricsEnabled() bool { return obs.Enabled() }

// NewEventJournal starts an event journal writing JSONL records to w; pass it
// to the fleet engine (or emit into it directly) to capture the run's
// lifecycle events. Close flushes it.
func NewEventJournal(w io.Writer) *EventJournal { return obs.NewJournal(w) }

// CreateEventJournal creates (or truncates) the file at path and journals
// into it; Close flushes and closes the file.
func CreateEventJournal(path string) (*EventJournal, error) { return obs.CreateJournal(path) }

// EventTypes returns the journal's full event vocabulary, in a stable order.
func EventTypes() []EventType { return obs.EventTypes() }
