package agingpred

// Top-level benchmarks: one per table and figure of the paper's evaluation
// section, plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each benchmark runs the corresponding experiment end to end
// (testbed simulation, feature extraction, model training, evaluation) and
// reports the headline accuracy numbers through b.ReportMetric, so that
//
//	go test -bench=. -benchmem
//
// regenerates the paper's results and records how expensive they are to
// produce.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/experiments"
	"agingpred/internal/features"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 1

// BenchmarkFigure1 regenerates Figure 1: non-linear OS-level memory under a
// constant-rate leak.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OldResizes), "old-resizes")
		b.ReportMetric(res.ExtraLifetimeSec, "extra-lifetime-sec")
	}
}

// BenchmarkFigure2 regenerates Figure 2: OS vs JVM perspective of a periodic
// acquire/release pattern.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JVMViewRangeMB, "jvm-range-mb")
		b.ReportMetric(res.OSViewRangeMB, "os-range-mb")
	}
}

// BenchmarkTable3 regenerates Table 3 (experiment 4.1): deterministic aging,
// Linear Regression vs M5P on two unseen workloads.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Experiment41(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Table3["150EBs"][1].MAE, "m5p-150eb-mae-sec")
		b.ReportMetric(res.Table3["150EBs"][0].MAE, "linreg-150eb-mae-sec")
	}
}

// BenchmarkFigure3 regenerates Figure 3 and the experiment 4.2 accuracy
// numbers: dynamic and variable aging.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Experiment42(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.M5P.MAE, "m5p-mae-sec")
		b.ReportMetric(res.LinReg.MAE, "linreg-mae-sec")
	}
}

// BenchmarkTable4Figure4 regenerates Table 4 and Figure 4 (experiment 4.3):
// aging hidden inside a periodic pattern, with expert feature selection.
func BenchmarkTable4Figure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Experiment43(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Table4[1].MAE, "m5p-selected-mae-sec")
		b.ReportMetric(res.Table4[1].PostMAE, "m5p-selected-postmae-sec")
		b.ReportMetric(res.Table4[0].PostMAE, "linreg-postmae-sec")
	}
}

// BenchmarkFigure5 regenerates Figure 5 (experiment 4.4): aging caused by two
// resources at once, trained only on single-resource executions.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Experiment44(experiments.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.M5P.MAE, "m5p-mae-sec")
		b.ReportMetric(res.M5P.PostMAE, "m5p-postmae-sec")
	}
}

// BenchmarkScenarioMatrix measures the scenario engine on a small
// scenario×seed matrix at full parallelism, reporting sweep throughput in
// cells/sec — the number that tells how many scenarios the hardware can
// absorb per unit of time.
func BenchmarkScenarioMatrix(b *testing.B) {
	scenarios, err := experiments.LookupAll([]string{"4.1", "bursty"})
	if err != nil {
		b.Fatal(err)
	}
	seeds := []uint64{1, 2}
	engine := &experiments.Engine{}
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.RunMatrix(context.Background(), scenarios, seeds, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if failed := res.FailedCells(); len(failed) > 0 {
			b.Fatalf("%d cells failed, first: %v", len(failed), failed[0].Err)
		}
		cells += len(res.Cells)
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
}

// BenchmarkFleet measures the fleet subsystem's serving throughput in
// instance-checkpoints/sec at 1 shard, 4 shards and one shard per available
// CPU. The shared model is trained once outside the timed loop; every run
// streams the same deterministic 256-instance fleet through the sharded
// predictor workers, so the shard axis isolates the scaling of the
// prediction layer itself.
func BenchmarkFleet(b *testing.B) {
	model, err := fleet.TrainModel(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, shards := range shardCounts {
		if shards < 1 || seen[shards] {
			continue
		}
		seen[shards] = true
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			checkpoints := int64(0)
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(fleet.Config{
					Instances: 256,
					Shards:    shards,
					Duration:  45 * time.Minute,
					Seed:      benchSeed,
					Model:     model,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Checkpoints == 0 {
					b.Fatal("fleet predicted no checkpoints")
				}
				checkpoints += rep.Checkpoints
			}
			b.ReportMetric(float64(checkpoints)/b.Elapsed().Seconds(), "instance-checkpoints/sec")
		})
	}
}

// BenchmarkFleetBatch isolates the batched prediction engine from the fleet
// simulation: a shard-sized group of sessions of one shared model serves the
// same deterministic checkpoint stream, either one Session.Observe at a time
// (scalar) or staged into a core.Batch and evaluated with one PredictBatch
// sweep per tick (batch). One op is one tick of the whole group, so the pair
// is the scalar-vs-batch before/after of the serving hot path; the
// differential suite proves the two produce bit-identical predictions.
func BenchmarkFleetBatch(b *testing.B) {
	model, err := fleet.TrainModel(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	series, err := fleet.TrainingSeries(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	cps := series[0].Checkpoints
	// Replaying the stream cyclically must keep checkpoint time monotone or
	// the sliding-window speed trackers would reject every post-wrap sample.
	tickAt := func(i int) monitor.Checkpoint {
		cp := cps[i%len(cps)]
		cp.TimeSec = float64(i+1) * series[0].IntervalSec
		return cp
	}
	const group = 256
	newSessions := func() []*core.Session {
		sessions := make([]*core.Session, group)
		for i := range sessions {
			sessions[i] = model.NewSession()
		}
		return sessions
	}
	b.Run("scalar", func(b *testing.B) {
		sessions := newSessions()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp := tickAt(i)
			for _, s := range sessions {
				if _, err := s.Observe(cp); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*group/b.Elapsed().Seconds(), "instance-checkpoints/sec")
	})
	b.Run("batch", func(b *testing.B) {
		sessions := newSessions()
		batch := model.NewBatch(group)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp := tickAt(i)
			batch.Reset()
			for _, s := range sessions {
				if err := batch.Stage(s, &cp); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := batch.Predict(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*group/b.Elapsed().Seconds(), "instance-checkpoints/sec")
	})
}

// --- ablation benchmarks -------------------------------------------------

// ablationData builds (once) a deterministic-aging training set and test
// series shared by the ablation benchmarks.
var ablationCache struct {
	train []*monitor.Series
	test  *monitor.Series
}

func ablationData(b *testing.B) ([]*monitor.Series, *monitor.Series) {
	b.Helper()
	if ablationCache.test != nil {
		return ablationCache.train, ablationCache.test
	}
	var train []*monitor.Series
	for _, ebs := range []int{50, 100, 200} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        "ablation-train",
			Seed:        uint64(ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: 6 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		train = append(train, res.Series)
	}
	res, err := testbed.Run(testbed.RunConfig{
		Name:        "ablation-test",
		Seed:        12345,
		EBs:         150,
		Phases:      testbed.ConstantLeakPhases(30),
		MaxDuration: 6 * time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	ablationCache.train, ablationCache.test = train, res.Series
	return train, res.Series
}

// evalConfig trains a model with the given configuration on the ablation
// data and reports its MAE.
func evalConfig(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	train, test := ablationData(b)
	m, err := core.Train(cfg, train)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := m.Evaluate(test, evalx.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return rep.MAE
}

// BenchmarkAblationWindow varies the sliding-window length the derived speed
// features are smoothed over (the paper discusses the noise-vs-delay
// trade-off in Sections 2.2 and 4.2).
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{4, 12, 40} {
		b.Run(map[int]string{4: "w4", 12: "w12", 40: "w40"}[window], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mae := evalConfig(b, core.Config{WindowLength: window})
				b.ReportMetric(mae, "mae-sec")
			}
		})
	}
}

// BenchmarkAblationMinLeaf varies the minimum number of instances per M5P
// leaf (the paper uses 10).
func BenchmarkAblationMinLeaf(b *testing.B) {
	for _, minLeaf := range []int{4, 10, 40} {
		b.Run(map[int]string{4: "leaf4", 10: "leaf10", 40: "leaf40"}[minLeaf], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mae := evalConfig(b, core.Config{MinLeafInstances: minLeaf})
				b.ReportMetric(mae, "mae-sec")
			}
		})
	}
}

// BenchmarkAblationSmoothing toggles M5P prediction smoothing and pruning.
func BenchmarkAblationSmoothing(b *testing.B) {
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{name: "default", cfg: core.Config{}},
		{name: "no-smoothing", cfg: core.Config{NoSmoothing: true}},
		{name: "unpruned", cfg: core.Config{Unpruned: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mae := evalConfig(b, c.cfg)
				b.ReportMetric(mae, "mae-sec")
			}
		})
	}
}

// BenchmarkAblationModels compares the three model families on the same data
// (the comparison behind the paper's choice of M5P).
func BenchmarkAblationModels(b *testing.B) {
	for _, kind := range []core.ModelKind{core.ModelM5P, core.ModelLinearRegression, core.ModelRegressionTree} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mae := evalConfig(b, core.Config{Model: kind, Variables: features.NoHeapSet})
				b.ReportMetric(mae, "mae-sec")
			}
		})
	}
}

// BenchmarkTrainM5P measures the cost of training alone (feature extraction
// plus model-tree induction) on the ablation training set — the cost that
// matters for the paper's goal of eventually re-training on-line.
func BenchmarkTrainM5P(b *testing.B) {
	train, _ := ablationData(b)
	extractor := features.NewExtractor(features.DefaultWindowLength)
	ds, err := extractor.ExtractAll("bench", train, features.FullSet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainDataset(core.Config{}, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlinePrediction measures the per-checkpoint cost of the on-line
// path (feature update plus model-tree evaluation), which must stay far below
// the 15-second monitoring interval.
func BenchmarkOnlinePrediction(b *testing.B) {
	train, test := ablationData(b)
	m, err := core.Train(core.Config{}, train)
	if err != nil {
		b.Fatal(err)
	}
	sess := m.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := test.Checkpoints[i%test.Len()]
		if _, err := sess.Observe(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTestbedRun measures one complete simulated aging execution
// (100 EBs, N=30 leak, run to crash), the unit of cost behind every
// experiment above.
func BenchmarkTestbedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        "bench-run",
			Seed:        uint64(i + 1),
			EBs:         100,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: 6 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Series.Len()), "checkpoints")
	}
}

// BenchmarkFeatureExtraction measures the Table 2 derived-feature pipeline on
// a full aging execution.
func BenchmarkFeatureExtraction(b *testing.B) {
	_, test := ablationData(b)
	extractor := features.NewExtractor(features.DefaultWindowLength)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extractor.Extract(test, features.FullSet); err != nil {
			b.Fatal(err)
		}
	}
}
