package agingpred_test

// Black-box tests of the public API: everything here goes through the root
// agingpred package the way an external importer would (the internal fleet
// simulator only supplies cheap deterministic training streams).

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"agingpred"
	"agingpred/internal/fleet"
)

// publicModel trains one shared model per test binary through the public
// Train entry point.
var (
	pubOnce  sync.Once
	pubModel *agingpred.Model
	pubErr   error
)

func publicModel(t testing.TB) *agingpred.Model {
	t.Helper()
	pubOnce.Do(func() {
		var series []*agingpred.Series
		series, pubErr = fleet.TrainingSeries(1)
		if pubErr != nil {
			return
		}
		pubModel, pubErr = agingpred.Train(agingpred.Config{}, series)
	})
	if pubErr != nil {
		t.Fatalf("training through the public API: %v", pubErr)
	}
	return pubModel
}

// testStream returns a deterministic aging stream the model never trained on.
func testStream(t testing.TB) *agingpred.Series {
	t.Helper()
	series, err := fleet.TrainingSeries(99)
	if err != nil {
		t.Fatal(err)
	}
	return series[0]
}

// TestPublicTrainServeLoop walks the README quickstart: train, open a
// session, observe a live stream, see the prediction adapt and the crash
// flagged.
func TestPublicTrainServeLoop(t *testing.T) {
	model := publicModel(t)
	if model.Kind() != agingpred.ModelM5P {
		t.Fatalf("default model kind = %q", model.Kind())
	}
	if model.Report().Instances == 0 || model.Report().Leaves == 0 {
		t.Fatalf("implausible train report: %+v", model.Report())
	}
	stream := testStream(t)
	sess := model.NewSession()
	if sess.Model() != model {
		t.Fatalf("session does not point back at its model")
	}
	var mid, last agingpred.Prediction
	for i, cp := range stream.Checkpoints {
		pred, err := sess.Observe(cp)
		if err != nil {
			t.Fatalf("observe: %v", err)
		}
		if pred.TTFSec < 0 || pred.TimeSec != cp.TimeSec {
			t.Fatalf("prediction out of contract: %+v at t=%v", pred, cp.TimeSec)
		}
		if i == stream.Len()/2 {
			mid = pred
		}
		last = pred
	}
	if last.TTFSec >= mid.TTFSec {
		t.Fatalf("prediction did not shrink approaching the crash: mid %v, last %v", mid.TTFSec, last.TTFSec)
	}
	if !last.CrashExpected {
		t.Fatalf("crash not flagged at the final checkpoint")
	}
}

// TestPublicSessionsAreIndependent verifies the per-stream split: many
// sessions of one model observing concurrently each reproduce the
// single-session predictions bit for bit, and Reset starts a stream over.
func TestPublicSessionsAreIndependent(t *testing.T) {
	model := publicModel(t)
	stream := testStream(t)

	ref := model.NewSession()
	want := make([]float64, stream.Len())
	for i, cp := range stream.Checkpoints {
		pred, err := ref.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pred.TTFSec
	}

	const sessions = 8
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := model.NewSession()
			// Odd goroutines replay the first half, reset, then replay the
			// full stream: a reset session must predict like a fresh one.
			if g%2 == 1 {
				for _, cp := range stream.Checkpoints[:stream.Len()/2] {
					if _, err := sess.Observe(cp); err != nil {
						errs[g] = err
						return
					}
				}
				sess.Reset()
			}
			for i, cp := range stream.Checkpoints {
				pred, err := sess.Observe(cp)
				if err != nil {
					errs[g] = err
					return
				}
				if pred.TTFSec != want[i] {
					errs[g] = fmt.Errorf("session %d checkpoint %d: predicted %v, reference %v",
						g, i, pred.TTFSec, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPublicSaveLoad exercises the file-level persistence helpers and the
// bit-identical-serving guarantee through the public API.
func TestPublicSaveLoad(t *testing.T) {
	model := publicModel(t)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := agingpred.SaveModel(path, model); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	loaded, err := agingpred.LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if loaded.Report() != model.Report() {
		t.Fatalf("loaded report %+v != %+v", loaded.Report(), model.Report())
	}
	stream := testStream(t)
	a, b := model.NewSession(), loaded.NewSession()
	for i, cp := range stream.Checkpoints {
		pa, err := a.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		if pa.TTFSec != pb.TTFSec {
			t.Fatalf("checkpoint %d: loaded model predicted %v, in-memory %v", i, pb.TTFSec, pa.TTFSec)
		}
	}
	if _, err := agingpred.LoadModel(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatalf("loading a missing file succeeded")
	}
}

// TestPublicSchemaRegistry checks the schema surface the persistence layer
// leans on: lookup by name, the sorted name list, and the fail-fast error
// for unknown names.
func TestPublicSchemaRegistry(t *testing.T) {
	names := agingpred.SchemaNames()
	if len(names) < 4 {
		t.Fatalf("schema registry lists only %v", names)
	}
	for _, name := range []string{"full", "no-heap", "heap-focus", "full+conn"} {
		s, err := agingpred.LookupSchema(name)
		if err != nil {
			t.Fatalf("LookupSchema(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("LookupSchema(%q) returned schema %q", name, s.Name())
		}
	}
	if _, err := agingpred.LookupSchema("bogus"); err == nil {
		t.Fatalf("unknown schema accepted")
	}
}

// TestPublicEvaluate closes the loop on the metrics surface: the public
// aliases must be usable for an end-to-end accuracy report.
func TestPublicEvaluate(t *testing.T) {
	model := publicModel(t)
	rep, err := model.Evaluate(testStream(t), agingpred.EvalOptions{Model: "M5P"})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.N == 0 || rep.MAE <= 0 {
		t.Fatalf("degenerate evaluation report: %+v", rep)
	}
	if rep.Model != "M5P" {
		t.Fatalf("report model = %q", rep.Model)
	}
}

// TestPublicAdaptiveSupervisor walks the adaptive-serving surface the way an
// external importer would: wrap a trained model in a Supervisor, serve a
// stream, resolve a crash, and adapt — hot-swapping a new model epoch that
// the stream adopts at its Reset boundary.
func TestPublicAdaptiveSupervisor(t *testing.T) {
	model := publicModel(t)
	sup, err := agingpred.NewSupervisor(agingpred.AdaptConfig{
		// Pinned 1 s baseline: any real prediction error counts as drift, so
		// the test adapts deterministically on its first resolved crash.
		Detector: agingpred.DriftConfig{BaselineSec: 1, Hysteresis: 1, MinBaselineSec: 1},
	}, model)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	if sup.Current().Seq != 1 || sup.Model() != model {
		t.Fatalf("initial epoch is not the wrapped model: %+v", sup.Current())
	}
	stream := sup.NewStream("public")
	s := testStream(t)
	for _, cp := range s.Checkpoints {
		if _, err := stream.Observe(cp); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if !s.Crashed {
		t.Fatalf("test stream did not crash; the fixture changed")
	}
	if n := stream.ResolveCrash(s.CrashTimeSec); n == 0 {
		t.Fatalf("crash resolved no labels")
	}
	if !sup.Adapt() {
		t.Fatalf("no adaptation after a resolved crash against a 1 s drift baseline: %+v", sup.Stats())
	}
	stream.Reset()
	if stream.Epoch() != 2 {
		t.Fatalf("stream on epoch %d after the swap, want 2", stream.Epoch())
	}
	stats := sup.Stats()
	if stats.Epoch != 2 || stats.Retrains != 1 || stats.BufferedRuns != 1 {
		t.Fatalf("unexpected supervisor stats after one adaptation: %+v", stats)
	}
}
