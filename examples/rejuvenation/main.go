// Rejuvenation: compare time-based and prediction-triggered software
// rejuvenation on an aging server.
//
// The paper's introduction motivates prediction-based (proactive)
// rejuvenation: restarting the server on a fixed schedule either wastes
// capacity (restarting far too early) or fails to prevent crashes
// (restarting too late), while a restart triggered by the predicted time to
// failure uses almost the whole healthy lifetime of the server and still
// avoids the crash.
//
// This example trains the predictor, replays an aging execution, and
// evaluates both policies on it.
//
// Run it with:
//
//	go run ./examples/rejuvenation
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred"
	"agingpred/internal/rejuv"
	"agingpred/internal/testbed"
)

func main() {
	log.SetFlags(0)
	const ebs = 100

	fmt.Println("simulating training executions...")
	var training []*agingpred.Series
	for _, n := range []int{15, 30, 75} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        fmt.Sprintf("train-N%d", n),
			Seed:        uint64(400 + n),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: 8 * time.Hour,
		})
		if err != nil {
			log.Fatalf("training run: %v", err)
		}
		training = append(training, res.Series)
	}
	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	// The production server ages at a rate the operator did not anticipate.
	live, err := testbed.Run(testbed.RunConfig{
		Name:        "production",
		Seed:        4242,
		EBs:         ebs,
		Phases:      testbed.ConstantLeakPhases(20),
		MaxDuration: 8 * time.Hour,
	})
	if err != nil {
		log.Fatalf("production run: %v", err)
	}
	fmt.Printf("unattended, the server crashes after %v (%s)\n\n",
		live.CrashTime.Round(time.Second), live.CrashReason)

	preds, err := model.PredictSeries(live.Series)
	if err != nil {
		log.Fatalf("predicting: %v", err)
	}

	policies := []rejuv.Policy{
		&rejuv.TimeBased{Period: 30 * time.Minute},
		&rejuv.TimeBased{Period: 2 * time.Hour},
		&rejuv.TimeBased{Period: 4 * time.Hour},
		&rejuv.Predictive{Threshold: 10 * time.Minute, Confirmations: 2},
		&rejuv.Predictive{Threshold: 20 * time.Minute, Confirmations: 2},
	}
	outcomes, err := rejuv.Compare(policies, preds, live.Series.CrashTimeSec)
	if err != nil {
		log.Fatalf("comparing policies: %v", err)
	}
	fmt.Println("rejuvenation policy comparison on this execution:")
	for _, o := range outcomes {
		fmt.Println("  " + o.String())
	}
	best, err := rejuv.Best(outcomes)
	if err != nil {
		log.Fatalf("best: %v", err)
	}
	fmt.Printf("\nbest policy: %s\n", best.Policy)
}
