// Webapp-aging: adaptive on-line prediction under dynamic software aging.
//
// This example reproduces the shape of the paper's experiment 4.2 as a
// runnable program: a web application whose memory-leak rate changes every 20
// minutes (none → N=30 → N=15 → N=75). The predictor was trained only on
// constant-rate executions, yet its on-line prediction adapts each time the
// consumption speed changes — when the leak accelerates the predicted time to
// failure collapses, when it slows down the prediction grows back.
//
// Run it with:
//
//	go run ./examples/webapp-aging
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred"
	"agingpred/internal/evalx"
	"agingpred/internal/injector"
	"agingpred/internal/testbed"
)

func main() {
	log.SetFlags(0)
	const ebs = 100

	// Training: a calm one-hour run plus three constant-rate leak runs.
	fmt.Println("simulating training executions...")
	var training []*agingpred.Series
	calm, err := testbed.Run(testbed.RunConfig{
		Name:        "train-calm",
		Seed:        11,
		EBs:         ebs,
		Phases:      testbed.NoInjectionPhases(),
		MaxDuration: time.Hour,
	})
	if err != nil {
		log.Fatalf("training run: %v", err)
	}
	training = append(training, calm.Series)
	for _, n := range []int{15, 30, 75} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        fmt.Sprintf("train-N%d", n),
			Seed:        uint64(100 + n),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: 8 * time.Hour,
		})
		if err != nil {
			log.Fatalf("training run: %v", err)
		}
		training = append(training, res.Series)
	}

	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained model: %s\n\n", model.Report())
	sess := model.NewSession()

	// The dynamic scenario: the aging rate changes every 20 minutes.
	phases := []injector.Phase{
		{Name: "no injection", Duration: 20 * time.Minute, MemoryMode: injector.MemoryOff},
		{Name: "leak N=30", Duration: 20 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 30},
		{Name: "leak N=15 (faster)", Duration: 20 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 15},
		{Name: "leak N=75 (slower)", MemoryMode: injector.MemoryLeak, MemoryN: 75},
	}
	live, err := testbed.Run(testbed.RunConfig{
		Name:        "live-dynamic",
		Seed:        777,
		EBs:         ebs,
		Phases:      phases,
		MaxDuration: 8 * time.Hour,
	})
	if err != nil {
		log.Fatalf("live run: %v", err)
	}
	fmt.Printf("dynamic execution crashed after %v (%s)\n\n", live.CrashTime.Round(time.Second), live.CrashReason)

	fmt.Printf("%10s %-22s %22s %18s\n", "time", "phase", "predicted TTF", "Tomcat memory")
	phaseAt := func(t float64) string {
		switch {
		case t < 1200:
			return phases[0].Name
		case t < 2400:
			return phases[1].Name
		case t < 3600:
			return phases[2].Name
		default:
			return phases[3].Name
		}
	}
	for i, cp := range live.Series.Checkpoints {
		pred, err := sess.Observe(cp)
		if err != nil {
			log.Fatalf("observe: %v", err)
		}
		if i%16 == 0 || live.Series.Len()-i <= 2 {
			fmt.Printf("%10s %-22s %22s %15.0f MB\n",
				time.Duration(cp.TimeSec*float64(time.Second)).Round(time.Second),
				phaseAt(cp.TimeSec),
				evalx.FormatDuration(pred.TTFSec),
				cp.TomcatMemUsedMB)
		}
	}

	rep, err := model.Evaluate(live.Series, evalx.Options{Model: "M5P"})
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Println()
	fmt.Print(evalx.Table("accuracy vs the actual crash time", []evalx.Report{rep}))
	fmt.Println("\nNote: during the early phases the model predicts the failure that the *current*")
	fmt.Println("rate would cause, exactly as the paper describes; the error against the actual")
	fmt.Println("crash time therefore concentrates in the phases whose rate later changed.")
}
