// Saveload: train once, save the model artifact, load it back, and verify
// the loaded model serves bit-identical predictions.
//
// The paper's workflow is two-phase — train off-line, predict on-line — and
// the agingpred API keeps the phases separable across processes: a Model
// persists as a versioned artifact (magic, format version, checksum, schema
// compatibility all checked on load), so the serving side never retrains.
// This example:
//
//  1. trains an M5P model on the fleet subsystem's run-to-crash training
//     executions (cheap to simulate),
//  2. saves it with agingpred.SaveModel and reloads it with
//     agingpred.LoadModel,
//  3. replays an unseen aging stream through one Session of each model and
//     verifies every prediction matches bit for bit.
//
// The same artifact feeds `agingpredict -load model.bin` and
// `agingfleet -load model.bin`.
//
// Run it with:
//
//	go run ./examples/saveload
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"agingpred"
	"agingpred/internal/fleet"
)

func main() {
	log.SetFlags(0)

	// 1. Train on the fleet's training executions: every aging class at
	// several rates, simulated to the crash and labelled with the true time
	// to failure.
	fmt.Println("simulating training executions and fitting the model...")
	training, err := fleet.TrainingSeries(1)
	if err != nil {
		log.Fatalf("training series: %v", err)
	}
	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("  %s\n", model.Report())

	// 2. Save and reload the artifact.
	dir, err := os.MkdirTemp("", "agingpred-saveload")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.bin")
	if err := agingpred.SaveModel(path, model); err != nil {
		log.Fatalf("save: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  saved %s (%d bytes, format v%d)\n", path, info.Size(), agingpred.ModelFormatVersion)

	loaded, err := agingpred.LoadModel(path)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("  loaded: %s (schema %s)\n\n", loaded.Report(), loaded.Schema().Name())

	// 3. Replay an unseen stream (a different seed than training) through
	// both models and compare every prediction.
	test, err := fleet.TrainingSeries(42)
	if err != nil {
		log.Fatalf("test series: %v", err)
	}
	stream := test[0]
	inMem, onDisk := model.NewSession(), loaded.NewSession()
	mismatches := 0
	for _, cp := range stream.Checkpoints {
		a, err := inMem.Observe(cp)
		if err != nil {
			log.Fatalf("observe (in-memory): %v", err)
		}
		b, err := onDisk.Observe(cp)
		if err != nil {
			log.Fatalf("observe (loaded): %v", err)
		}
		if a.TTFSec != b.TTFSec {
			mismatches++
		}
	}
	fmt.Printf("replayed %q (%d checkpoints) through both models\n", stream.Name, stream.Len())
	if mismatches > 0 {
		log.Fatalf("loaded model diverged on %d checkpoints", mismatches)
	}
	fmt.Println("loaded model predictions are bit-identical to the in-memory model's")
}
