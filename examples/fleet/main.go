// Fleet: serve a heterogeneous fleet of aging application servers with the
// sharded online prediction service.
//
// The single-server experiments validate the predictor against one testbed
// instance; this example is the production-shaped version of the same loop.
// It trains the shared M5P model once (an immutable agingpred.Model), fans it
// out as one per-instance Session across a fleet of simulated servers
// (memory, thread and connection leaks at per-instance rates, plus healthy
// controls), streams every instance's 15-second checkpoints through sharded
// predictor workers, and lets the budgeted controller rejuvenate the
// instances whose predicted time to failure drops below the threshold.
//
// Run it with:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred/internal/fleet"
)

func main() {
	log.SetFlags(0)

	// Train once; fleet.Run gives every instance its own Session of the
	// shared immutable model, so the training cost is independent of fleet
	// size. (A model saved earlier with agingpred.SaveModel could be served
	// here instead — see examples/saveload and `agingfleet -load`.)
	fmt.Println("training the shared fleet model...")
	model, err := fleet.TrainModel(1)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("  %s\n\n", model.Report())

	// The population is drawn deterministically from the seed; print a few
	// specs to show the heterogeneity the model has to cope with.
	specs := fleet.Specs(1, 64)
	fmt.Println("sample of the fleet population:")
	for _, s := range specs[:6] {
		fmt.Printf("  instance %2d: %-12s %3d EBs, profile: %s\n", s.ID, s.Class, s.EBs, s.Profile)
	}
	fmt.Println()

	fmt.Println("serving a simulated 3 hours...")
	report, err := fleet.Run(fleet.Config{
		Instances: 64,
		Shards:    4,
		Duration:  3 * time.Hour,
		Seed:      1,
		Model:     model,
	})
	if err != nil {
		log.Fatalf("fleet run: %v", err)
	}
	fmt.Print(report.String())
}
