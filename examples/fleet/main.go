// Fleet: serve a heterogeneous fleet of aging application servers with the
// sharded online prediction service.
//
// The single-server experiments validate the predictor against one testbed
// instance; this example is the production-shaped version of the same loop.
// It trains the shared M5P model once, clones it read-only across a fleet of
// simulated servers (memory, thread and connection leaks at per-instance
// rates, plus healthy controls), streams every instance's 15-second
// checkpoints through sharded predictor workers, and lets the budgeted
// controller rejuvenate the instances whose predicted time to failure drops
// below the threshold.
//
// Run it with:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred/internal/fleet"
)

func main() {
	log.SetFlags(0)

	// Train once; fleet.Run clones the model per instance, so the training
	// cost is independent of fleet size.
	fmt.Println("training the shared fleet predictor...")
	predictor, trainReport, err := fleet.TrainPredictor(1)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("  %s\n\n", trainReport)

	// The population is drawn deterministically from the seed; print a few
	// specs to show the heterogeneity the model has to cope with.
	specs := fleet.Specs(1, 64)
	fmt.Println("sample of the fleet population:")
	for _, s := range specs[:6] {
		fmt.Printf("  instance %2d: %-12s %3d EBs, profile: %s\n", s.ID, s.Class, s.EBs, s.Profile)
	}
	fmt.Println()

	fmt.Println("serving a simulated 3 hours...")
	report, err := fleet.Run(fleet.Config{
		Instances: 64,
		Shards:    4,
		Duration:  3 * time.Hour,
		Seed:      1,
		Predictor: predictor,
	})
	if err != nil {
		log.Fatalf("fleet run: %v", err)
	}
	fmt.Print(report.String())
}
