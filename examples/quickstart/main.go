// Quickstart: train an M5P software-aging model on a couple of simulated
// failure executions and use it on-line against a new execution it has never
// seen.
//
// This is the smallest end-to-end use of the public agingpred API:
//
//  1. run training executions on the simulated TPC-W/Tomcat testbed
//     (internal/testbed) with a memory-leak fault injected,
//  2. train an immutable agingpred.Model on the monitored checkpoint series,
//  3. open a per-stream Session and replay a fresh execution checkpoint by
//     checkpoint, printing the predicted time to failure as it adapts, and
//  4. report the paper's accuracy metrics (MAE, S-MAE, PRE-MAE, POST-MAE).
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred"
	"agingpred/internal/evalx"
	"agingpred/internal/testbed"
)

func main() {
	log.SetFlags(0)

	// 1. Training data: three run-to-crash executions at different workloads,
	// all suffering a 1 MB leak every ~30 search-servlet hits.
	fmt.Println("simulating training executions (this takes a few seconds)...")
	var training []*agingpred.Series
	for _, ebs := range []int{50, 100, 200} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        fmt.Sprintf("train-%dEB", ebs),
			Seed:        uint64(ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: 6 * time.Hour,
		})
		if err != nil {
			log.Fatalf("training run: %v", err)
		}
		fmt.Printf("  %-12s crashed after %-12v (%d checkpoints, reason: %s)\n",
			res.Series.Name, res.CrashTime.Round(time.Second), res.Series.Len(), res.CrashReason)
		training = append(training, res.Series)
	}

	// 2. Train the model (M5P model tree over the full Table 2 variable set,
	// 12-checkpoint sliding window — the paper's configuration). The result
	// is immutable: save it with agingpred.SaveModel, share it across any
	// number of sessions.
	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("\ntrained model: %s\n\n", model.Report())

	// 3. A fresh execution at a workload the model never saw (150 EBs),
	// replayed through a per-stream session.
	test, err := testbed.Run(testbed.RunConfig{
		Name:        "live-150EB",
		Seed:        999,
		EBs:         150,
		Phases:      testbed.ConstantLeakPhases(30),
		MaxDuration: 6 * time.Hour,
	})
	if err != nil {
		log.Fatalf("test run: %v", err)
	}
	fmt.Printf("live execution crashed after %v; replaying its checkpoints through a session:\n\n",
		test.CrashTime.Round(time.Second))

	sess := model.NewSession()
	fmt.Printf("%10s %22s %22s\n", "time", "predicted TTF", "true TTF")
	for i, cp := range test.Series.Checkpoints {
		pred, err := sess.Observe(cp)
		if err != nil {
			log.Fatalf("observe: %v", err)
		}
		// Print once every 5 minutes plus the final few checkpoints.
		if i%20 == 0 || test.Series.Len()-i <= 3 {
			fmt.Printf("%10s %22s %22s\n",
				time.Duration(cp.TimeSec*float64(time.Second)).Round(time.Second),
				evalx.FormatDuration(pred.TTFSec),
				evalx.FormatDuration(cp.TTFSec))
		}
	}

	// 4. Accuracy summary.
	rep, err := model.Evaluate(test.Series, agingpred.EvalOptions{Model: "M5P"})
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Println()
	fmt.Print(evalx.Table("accuracy on the live execution", []agingpred.EvalReport{rep}))
}
