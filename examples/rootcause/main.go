// Rootcause: use the structure of the learned M5P model tree as a clue to
// the root cause of a coming failure.
//
// Section 4.4 of the paper observes that, after training on aging executions,
// the attributes tested in the first levels of the M5P tree point at the
// resources implicated in the failure (system memory and the number of
// threads, in their two-resource experiment), giving administrators a hint
// without any extra instrumentation.
//
// This example trains a predictor on single-resource executions (memory-leak
// runs and thread-leak runs), prints the top of the learned tree and the
// extracted root-cause hints, and then shows the full model for inspection.
//
// Run it with:
//
//	go run ./examples/rootcause
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"agingpred"
	"agingpred/internal/testbed"
)

func main() {
	log.SetFlags(0)
	const ebs = 100

	fmt.Println("simulating single-resource training executions (memory leaks and thread leaks)...")
	var training []*agingpred.Series
	for _, n := range []int{15, 30, 75} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        fmt.Sprintf("mem-N%d", n),
			Seed:        uint64(200 + n),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: 8 * time.Hour,
		})
		if err != nil {
			log.Fatalf("memory training run: %v", err)
		}
		training = append(training, res.Series)
	}
	for _, rate := range []struct{ m, t int }{{15, 120}, {30, 90}, {45, 60}} {
		res, err := testbed.Run(testbed.RunConfig{
			Name:        fmt.Sprintf("thr-M%d-T%d", rate.m, rate.t),
			Seed:        uint64(300 + rate.m),
			EBs:         ebs,
			Phases:      testbed.ConstantThreadLeakPhases(rate.m, rate.t),
			MaxDuration: 8 * time.Hour,
		})
		if err != nil {
			log.Fatalf("thread training run: %v", err)
		}
		training = append(training, res.Series)
	}

	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("\ntrained model: %s\n\n", model.Report())

	hints, err := model.RootCause(3)
	if err != nil {
		log.Fatalf("root cause: %v", err)
	}
	fmt.Print(agingpred.FormatRootCause(hints))

	fmt.Println("\nTop of the learned model tree (first 25 lines):")
	lines := strings.Split(model.Description(), "\n")
	for i, line := range lines {
		if i >= 25 {
			fmt.Printf("  ... (%d more lines)\n", len(lines)-i)
			break
		}
		fmt.Println("  " + line)
	}
}
