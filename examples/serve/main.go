// Network serving: the whole prediction service over real sockets in one
// process — a server, a streaming client, and a hot model reload — using only
// the root agingpred API.
//
// The walkthrough:
//
//  1. train a model and start an agingpred server on loopback (both
//     transports: the binary frame protocol and NDJSON over HTTP);
//  2. stream a leaking execution's checkpoints through the binary transport
//     with DialServer, printing the predicted time to failure as it shrinks —
//     exactly what an operator's rejuvenation policy would consume;
//  3. hot-swap the serving model with Server.SwapModel and watch the next
//     stream (after RESET) answer from the new epoch;
//  4. run the same conversation over HTTP with DialServerHTTP — one chunked
//     POST, line-delimited JSON, the transport you can also drive with curl;
//  5. drain: in-flight work completes, new streams are refused with a typed
//     ServerError.
//
// Run it with:
//
//	go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"agingpred"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train the fleet's shared model and put it behind listeners. Port 0
	// lets the OS pick; a real deployment uses agingserve with fixed ports.
	model, err := fleet.TrainModel(1)
	if err != nil {
		return err
	}
	srv, err := agingpred.Serve(agingpred.ServeConfig{
		Model:    model,
		TCPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving %s (schema %s) on tcp %s and http %s\n\n",
		model.Kind(), model.Schema().Name(), srv.TCPAddr(), srv.HTTPAddr())

	// 2. Stream a leaking instance over the binary transport. The replayed
	// instance is one of the fleet simulator's aging servers; a production
	// client would read the same 20-variable checkpoints from its monitors.
	conn, err := agingpred.DialServer(srv.TCPAddr(), "")
	if err != nil {
		return err
	}
	fmt.Println("binary transport, epoch", conn.Epoch(), "— TTF as the leak progresses:")
	if err := streamOnce(conn, 40); err != nil {
		return err
	}

	// 3. Hot model reload: publish a new epoch; the live connection adopts
	// it at its next Reset — stream boundaries, never mid-stream.
	model2, err := fleet.TrainModel(2)
	if err != nil {
		return err
	}
	epoch, err := srv.SwapModel(model2)
	if err != nil {
		return err
	}
	if err := conn.Reset(); err != nil {
		return err
	}
	fmt.Printf("\nhot-swapped to epoch %d; the next stream answers from it:\n", epoch)
	if err := streamOnce(conn, 8); err != nil {
		return err
	}
	conn.Close()

	// 4. The same conversation over HTTP: one chunked POST of NDJSON lines.
	hconn, err := agingpred.DialServerHTTP("http://"+srv.HTTPAddr(), "")
	if err != nil {
		return err
	}
	fmt.Println("\nhttp transport, same session semantics:")
	if err := streamOnce(hconn, 8); err != nil {
		return err
	}
	hconn.Close()

	// 5. Drain: the listener closes and new work is refused with a typed
	// error, which is what a load balancer sees during a rolling restart.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	_, err = agingpred.DialServer(srv.TCPAddr(), "")
	var se *agingpred.ServerError
	if errors.As(err, &se) {
		fmt.Printf("\nafter drain, a new dial is refused: %s\n", se.Code)
	} else if err != nil {
		fmt.Printf("\nafter drain, a new dial fails: connection refused\n")
	}
	return nil
}

// streamOnce replays the start of one leaking instance through an open
// connection, printing every 8th prediction, then resolves it censored.
func streamOnce(conn agingpred.ServeConn, ticks int) error {
	specs := fleet.Specs(7, 8)
	spec := specs[0]
	for _, s := range specs { // pick an aging instance, so the TTF moves
		if s.Class != fleet.ClassHealthy {
			spec = s
			break
		}
	}
	replay := fleet.NewReplay(7, spec)
	var cp monitor.Checkpoint
	for i := 1; i <= ticks; i++ {
		if replay.Step(&cp) {
			break
		}
		if err := conn.Send(uint32(i), &cp); err != nil {
			return err
		}
		pred, err := conn.Recv()
		if err != nil {
			return err
		}
		if i%8 == 0 {
			fmt.Printf("  t=%5.0fs  epoch %d  predicted TTF %8.0fs  crash expected: %v\n",
				pred.TimeSec, pred.Epoch, pred.TTFSec, pred.CrashExpected)
		}
	}
	if err := conn.Resolve(agingpred.ResolveCensored, 0); err != nil {
		return err
	}
	return conn.Reset()
}
