// Adaptive serving: detect on-line that the serving model has gone stale,
// retrain it on freshly observed run-to-crash data, and hot-swap the new
// model under a live stream — the closed loop the paper's title promises.
//
// The walkthrough stages the failure mode adaptation exists for:
//
//  1. train an initial agingpred.Model on executions that all leak at ONE
//     rate — deliberately narrow training, so the model keys on resource
//     levels instead of consumption speeds and does not generalise;
//  2. wrap it in an agingpred.Supervisor (epoch 1) and serve a live stream
//     through a Supervisor Stream, which remembers every prediction until
//     the stream's outcome resolves the labels;
//  3. serve one more execution in the trained regime (predictions are fine),
//     then change the regime: the same memory fault, leaking ~4× faster;
//  4. watch the loop close: each crash resolves the pending labels, the
//     drift detector's windowed MAE blows past its calibrated baseline, a
//     retrain on the freshly collected runs publishes epoch 2, and the
//     stream picks it up at its next Reset — predictions recover, while a
//     frozen model would mispredict the new regime forever.
//
// Run it with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"agingpred"
	"agingpred/internal/evalx"
	"agingpred/internal/testbed"
)

const (
	trainLeakN = 45 // regime A: 1 MB leak per ~45 search hits
	shiftLeakN = 12 // regime B: ~4× faster — never seen in training
)

func simulate(name string, seed uint64, ebs, leakN int) *agingpred.Series {
	res, err := testbed.Run(testbed.RunConfig{
		Name:        name,
		Seed:        seed,
		EBs:         ebs,
		Phases:      testbed.ConstantLeakPhases(leakN),
		MaxDuration: 6 * time.Hour,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if !res.Crashed {
		log.Fatalf("%s did not crash", name)
	}
	return res.Series
}

func main() {
	log.SetFlags(0)

	// 1. The deliberately narrow initial model: two run-to-crash executions,
	// both at the regime-A leak rate.
	fmt.Println("training the initial model on single-rate executions...")
	var training []*agingpred.Series
	for _, ebs := range []int{60, 120} {
		s := simulate(fmt.Sprintf("train-%dEB", ebs), uint64(1000+ebs), ebs, trainLeakN)
		fmt.Printf("  %-12s crashed after %s\n", s.Name, evalx.FormatDuration(s.CrashTimeSec))
		training = append(training, s)
	}
	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	// 2. Wrap it in a Supervisor. The training runs seed the retraining
	// buffer so a retrain extends the coverage instead of forgetting it.
	sup, err := agingpred.NewSupervisor(agingpred.AdaptConfig{
		Seed:     training,
		Detector: agingpred.DriftConfig{Window: 64, Hysteresis: 4},
	}, model)
	if err != nil {
		log.Fatalf("supervisor: %v", err)
	}
	stream := sup.NewStream("live")
	frozen := model // the A/B baseline: the initial model, never retrained

	// 3 + 4. The serving schedule: regime A, then the unseen regime B.
	schedule := []struct {
		leakN int
		ebs   int
	}{
		{trainLeakN, 100},
		{shiftLeakN, 100}, // the regime change
		{shiftLeakN, 140},
		{shiftLeakN, 80},
	}
	fmt.Printf("\nserving; regime change (N=%d → N=%d) before run 2:\n\n", trainLeakN, shiftLeakN)
	fmt.Printf("  %-8s %6s %12s %16s %16s %7s %s\n", "run", "leak-N", "crash", "frozen MAE", "adaptive MAE", "epoch", "supervisor")
	for i, phase := range schedule {
		s := simulate(fmt.Sprintf("live-%d", i+1), uint64(2000+i*37), phase.ebs, phase.leakN)

		// The frozen arm replays the run through a throwaway session of the
		// initial model; the adaptive arm serves it through the stream.
		var frozenErr, adaptErr float64
		fsess := frozen.NewSession()
		epoch := stream.Epoch()
		for _, cp := range s.Checkpoints {
			fp, err := fsess.Observe(cp)
			if err != nil {
				log.Fatalf("frozen observe: %v", err)
			}
			ap, err := stream.Observe(cp)
			if err != nil {
				log.Fatalf("adaptive observe: %v", err)
			}
			frozenErr += abs(fp.TTFSec - cp.TTFSec)
			adaptErr += abs(ap.TTFSec - cp.TTFSec)
		}
		n := float64(s.Len())

		// The crash resolves the stream's pending labels (feeding the drift
		// detector and donating the run to the training buffer); Adapt
		// retrains synchronously if the detector has tripped, and the Reset
		// afterwards makes the stream adopt the just-published epoch.
		stream.ResolveCrash(s.CrashTimeSec)
		published := sup.Adapt()
		stream.Reset()
		stats := sup.Stats()
		note := fmt.Sprintf("baseline %s, window MAE %s",
			evalx.FormatDuration(stats.BaselineMAESec), evalx.FormatDuration(stats.WindowMAESec))
		if stats.BaselineMAESec == 0 {
			note = fmt.Sprintf("recalibrating baseline, window MAE %s", evalx.FormatDuration(stats.WindowMAESec))
		}
		if published {
			note = fmt.Sprintf("drift! retrained on %d runs → epoch %d", stats.BufferedRuns, stats.Epoch)
		}
		fmt.Printf("  %-8s %6d %12s %16s %16s %7d %s\n",
			s.Name, phase.leakN, evalx.FormatDuration(s.CrashTimeSec),
			evalx.FormatDuration(frozenErr/n), evalx.FormatDuration(adaptErr/n), epoch, note)
	}

	stats := sup.Stats()
	fmt.Printf("\nfinal state: epoch %d, %d drift trips, %d retrains, %d runs buffered\n",
		stats.Epoch, stats.Trips, stats.Retrains, stats.BufferedRuns)
	fmt.Println("the adaptive stream recovered after the regime change; the frozen model never will.")
	if stats.Epoch < 2 {
		log.Fatal("expected at least one model-epoch swap")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
