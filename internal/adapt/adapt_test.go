package adapt

import (
	"sync"
	"testing"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// leakSeries builds a deterministic run-to-crash series with linear memory
// and thread growth — the same cheap fixture internal/core's tests use. rate
// scales the leak speed, which is what the regime-change tests vary.
func leakSeries(name string, n int, memPerCP, thrPerCP float64) *monitor.Series {
	s := &monitor.Series{Name: name, IntervalSec: 15, Workload: 100, Crashed: true}
	crash := float64(n) * 15
	s.CrashTimeSec = crash
	for i := 1; i <= n; i++ {
		t := float64(i) * 15
		wob := float64(i%5) - 2
		old := 200 + memPerCP*float64(i)
		threads := 250 + thrPerCP*float64(i) + wob
		tomcat := 500 + memPerCP*float64(i) + 0.5*threads
		s.Checkpoints = append(s.Checkpoints, monitor.Checkpoint{
			TimeSec:         t,
			Throughput:      10 + 0.2*wob,
			Workload:        100,
			ResponseTimeSec: 0.05 + 0.0005*float64(i),
			SystemLoad:      2,
			DiskUsedMB:      12000 + float64(i),
			SwapFreeMB:      2048,
			NumProcesses:    117,
			SystemMemUsedMB: 450 + tomcat,
			TomcatMemUsedMB: tomcat,
			NumThreads:      threads,
			NumHTTPConns:    10,
			NumMySQLConns:   8 + 0.05*float64(i),
			YoungMaxMB:      128,
			OldMaxMB:        832,
			YoungUsedMB:     40 + 4*wob,
			OldUsedMB:       old,
			YoungPct:        (40 + 4*wob) / 128 * 100,
			OldPct:          old / 832 * 100,
			TTFSec:          crash - t,
		})
	}
	return s
}

func initialModel(t testing.TB) (*core.Model, []*monitor.Series) {
	t.Helper()
	train := []*monitor.Series{
		leakSeries("train-a", 300, 2.0, 0.3),
		leakSeries("train-b", 400, 1.5, 0.2),
		leakSeries("train-c", 250, 2.5, 0.5),
	}
	m, err := core.Train(core.Config{}, train)
	if err != nil {
		t.Fatal(err)
	}
	return m, train
}

// TestDetectorCalibratesTripsAndClears walks the detector through its whole
// lifecycle: auto-calibration on the first full window, hysteresis before the
// trip, the trip itself, and the clear once the error falls back under the
// hysteresis band.
func TestDetectorCalibratesTripsAndClears(t *testing.T) {
	d, err := NewDetector(DetectorConfig{Window: 8, Trigger: 2, Clear: 1.25, Hysteresis: 3, MinBaselineSec: 1, CalibrationSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Calibration: first 8 samples at 100 s → baseline 100 s.
	for i := 0; i < 8; i++ {
		if d.Add(100) {
			t.Fatalf("tripped during calibration at sample %d", i)
		}
	}
	if got := d.BaselineSec(); got != 100 {
		t.Fatalf("baseline = %v, want 100", got)
	}
	// Healthy traffic at 150 s (1.5× baseline, under the 2× trigger).
	for i := 0; i < 20; i++ {
		if d.Add(150) {
			t.Fatalf("tripped on healthy errors at sample %d", i)
		}
	}
	// Drift: 400 s errors. The window must first fill past the trigger, then
	// the hysteresis count must run down before the trip.
	trippedAt := -1
	for i := 0; i < 16; i++ {
		if d.Add(400) {
			trippedAt = i
			break
		}
	}
	if trippedAt < 0 {
		t.Fatalf("never tripped on 4× baseline errors")
	}
	if trippedAt < 3 {
		t.Fatalf("tripped after only %d over-trigger samples, hysteresis is 3", trippedAt+1)
	}
	if d.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", d.Trips())
	}
	// Back to healthy: must clear only once the windowed MAE is under
	// 1.25×baseline, and stay tripped meanwhile.
	cleared := false
	for i := 0; i < 64; i++ {
		if !d.Add(100) {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatalf("never cleared after errors returned to baseline")
	}
	if d.Tripped() {
		t.Fatalf("still tripped after clearing")
	}
}

// TestDetectorHysteresisBand pins the flap protection: an error level between
// Clear and Trigger neither trips an armed detector nor clears a tripped one.
func TestDetectorHysteresisBand(t *testing.T) {
	d, err := NewDetector(DetectorConfig{Window: 4, Trigger: 2, Clear: 1.25, Hysteresis: 2, BaselineSec: 100, MinBaselineSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if d.Add(150) { // 1.5× baseline: inside the band
			t.Fatalf("tripped inside the hysteresis band")
		}
	}
	for i := 0; i < 32; i++ {
		d.Add(500)
	}
	if !d.Tripped() {
		t.Fatalf("did not trip on 5× baseline")
	}
	for i := 0; i < 32; i++ {
		if !d.Add(150) { // still inside the band: must not clear
			t.Fatalf("cleared inside the hysteresis band")
		}
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	if _, err := NewDetector(DetectorConfig{Trigger: 1.5, Clear: 1.5}); err == nil {
		t.Fatalf("clear == trigger accepted; the hysteresis band would be empty")
	}
	if _, err := NewDetector(DetectorConfig{BaselineSec: -1}); err == nil {
		t.Fatalf("negative baseline accepted")
	}
}

// TestSupervisorLifecycle drives the whole adaptation loop deterministically:
// a model trained on one regime serves a stream, the regime changes, the
// detector trips on resolved crash labels, a retrain on the collected runs
// publishes epoch 2, and a stream picks the new model up at its next Reset —
// while a pre-existing stream keeps serving epoch 1 until its own Reset.
func TestSupervisorLifecycle(t *testing.T) {
	model, train := initialModel(t)
	sup, err := NewSupervisor(Config{
		Seed: train,
		Detector: DetectorConfig{
			Window: 32, Hysteresis: 2, MinBaselineSec: 1,
			BaselineSec: 30, // pinned small so the shifted regime's errors trip it
		},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.Current().Seq; got != 1 {
		t.Fatalf("initial epoch %d, want 1", got)
	}

	st := sup.NewStream("unit")
	bystander := sup.NewStream("bystander")
	if _, err := bystander.Observe(leakSeries("warm", 1, 2.0, 0.3).Checkpoints[0]); err != nil {
		t.Fatal(err)
	}

	// A regime the initial model never saw: a 4× faster memory leak.
	for sup.Current().Seq == 1 {
		run := leakSeries("shifted", 120, 8.0, 0.3)
		for _, cp := range run.Checkpoints {
			if _, err := st.Observe(cp); err != nil {
				t.Fatal(err)
			}
		}
		// The model's 12-checkpoint warm-up is excluded from label feedback.
		if n, want := st.ResolveCrash(run.CrashTimeSec), run.Len()-12; n != want {
			t.Fatalf("resolved %d predictions, want %d (run length minus warm-up)", n, want)
		}
		st.Reset()
		if sup.Adapt() {
			break
		}
		if stats := sup.Stats(); stats.BufferedRuns > 8 {
			t.Fatalf("no adaptation after %d collected runs (drifted=%v, window MAE %.0f s, baseline %.0f s)",
				stats.BufferedRuns, stats.Drifted, stats.WindowMAESec, stats.BaselineMAESec)
		}
	}

	stats := sup.Stats()
	if stats.Epoch != 2 || stats.Retrains != 1 {
		t.Fatalf("epoch %d, retrains %d after one adaptation", stats.Epoch, stats.Retrains)
	}
	if stats.Trips < 1 {
		t.Fatalf("detector never tripped")
	}
	if sup.Err() != nil {
		t.Fatalf("retraining failed: %v", sup.Err())
	}

	// The stream that Reset after publication serves epoch 2; the bystander
	// stays on epoch 1 until its own Reset boundary.
	st.Reset()
	if st.Epoch() != 2 {
		t.Fatalf("stream still on epoch %d after Reset", st.Epoch())
	}
	if bystander.Epoch() != 1 {
		t.Fatalf("bystander jumped to epoch %d without a Reset", bystander.Epoch())
	}
	bystander.ResolveCensored()
	bystander.Reset()
	if bystander.Epoch() != 2 {
		t.Fatalf("bystander on epoch %d after Reset", bystander.Epoch())
	}

	// The retrained model must actually have learned the new regime: its
	// errors on a fresh shifted run are far below the frozen model's.
	frozen := model.NewSession()
	adapted := sup.Model().NewSession()
	test := leakSeries("shifted-test", 120, 8.0, 0.3)
	var frozenErr, adaptedErr float64
	for _, cp := range test.Checkpoints {
		pf, err := frozen.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := adapted.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		frozenErr += abs(pf.TTFSec - cp.TTFSec)
		adaptedErr += abs(pa.TTFSec - cp.TTFSec)
	}
	if adaptedErr >= frozenErr {
		t.Fatalf("retrained model no better on the new regime: adapted %.0f s vs frozen %.0f s total error",
			adaptedErr, frozenErr)
	}
}

// TestStreamCensoredResolutionDiscards checks a rejuvenated stream feeds
// nothing: no errors reach the detector, no run reaches the buffer.
func TestStreamCensoredResolutionDiscards(t *testing.T) {
	model, _ := initialModel(t)
	sup, err := NewSupervisor(Config{}, model)
	if err != nil {
		t.Fatal(err)
	}
	st := sup.NewStream("censored")
	run := leakSeries("r", 50, 2.0, 0.3)
	for _, cp := range run.Checkpoints {
		if _, err := st.Observe(cp); err != nil {
			t.Fatal(err)
		}
	}
	st.ResolveCensored()
	stats := sup.Stats()
	if stats.BufferedRuns != 0 || stats.FreshRuns != 0 {
		t.Fatalf("censored stream leaked runs into the buffer: %+v", stats)
	}
	if stats.WindowMAESec != 0 && stats.BaselineMAESec != 0 {
		t.Fatalf("censored stream fed the detector: %+v", stats)
	}
}

// TestStreamObserveSteadyStateZeroAllocs pins the hot-path contract: once the
// stream's buffers have grown to the run length, Observe allocates nothing.
func TestStreamObserveSteadyStateZeroAllocs(t *testing.T) {
	model, _ := initialModel(t)
	sup, err := NewSupervisor(Config{}, model)
	if err != nil {
		t.Fatal(err)
	}
	st := sup.NewStream("alloc")
	run := leakSeries("r", 200, 2.0, 0.3)
	for _, cp := range run.Checkpoints {
		if _, err := st.Observe(cp); err != nil {
			t.Fatal(err)
		}
	}
	st.ResolveCrash(run.CrashTimeSec)
	st.Reset()
	// Later runs through the same stream: buffers are warm, so a whole
	// censored run (Observe × 50, censor, Reset) allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			if _, err := st.Observe(run.Checkpoints[i]); err != nil {
				t.Fatal(err)
			}
		}
		st.ResolveCensored()
		st.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Stream.Observe allocates %.1f objects per 50-checkpoint run, want 0", allocs)
	}
}

// TestSupervisorBufferBounded pins the training-buffer bound and its
// oldest-first eviction.
func TestSupervisorBufferBounded(t *testing.T) {
	model, _ := initialModel(t)
	sup, err := NewSupervisor(Config{MaxBufferedRuns: 3}, model)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sup.AddRun(leakSeries("r", 20+i, 2.0, 0.3))
	}
	if got := sup.Stats().BufferedRuns; got != 3 {
		t.Fatalf("buffer holds %d runs, want the bound 3", got)
	}
	sup.mu.Lock()
	first := sup.buf[0].Len()
	sup.mu.Unlock()
	if first != 20+7 {
		t.Fatalf("oldest surviving run has %d checkpoints, want 27 (oldest-first eviction)", first)
	}
}

// TestStartRetrainGates pins the retrain guards: no trip → no retrain; trip
// without fresh runs → no retrain; a second StartRetrain while one is in
// flight → refused.
func TestStartRetrainGates(t *testing.T) {
	model, train := initialModel(t)
	sup, err := NewSupervisor(Config{
		Seed:     train,
		Detector: DetectorConfig{Window: 4, Hysteresis: 1, BaselineSec: 1, MinBaselineSec: 1},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	if sup.StartRetrain() {
		t.Fatalf("retrain started without a drift trip")
	}
	// Trip the detector (baseline pinned at 1 s, any real error is huge).
	sup.resolveErrors([]float64{500, 500, 500, 500, 500})
	if !sup.Drifted() {
		t.Fatalf("detector not tripped")
	}
	if sup.StartRetrain() {
		t.Fatalf("retrain started without fresh runs (seed runs are not fresh)")
	}
	sup.AddRun(leakSeries("fresh", 100, 8.0, 0.3))
	if !sup.StartRetrain() {
		t.Fatalf("retrain refused although drifted with a fresh run")
	}
	if sup.StartRetrain() {
		t.Fatalf("second retrain started while one is in flight")
	}
	if !sup.Publish() {
		t.Fatalf("publish failed: %v", sup.Err())
	}
	if got := sup.Current().Seq; got != 2 {
		t.Fatalf("epoch %d after publish, want 2", got)
	}
}

// TestConcurrentObserveDuringRetrain is the race-detector guard for the
// epoch-swap design: streams keep observing lock-free on the old epoch while
// a background retrain runs and publishes, and pick the new epoch up at their
// next Reset. Run with -race.
func TestConcurrentObserveDuringRetrain(t *testing.T) {
	model, train := initialModel(t)
	sup, err := NewSupervisor(Config{
		Seed:     train,
		Detector: DetectorConfig{Window: 4, Hysteresis: 1, BaselineSec: 1, MinBaselineSec: 1},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	sup.resolveErrors([]float64{500, 500, 500, 500, 500})
	sup.AddRun(leakSeries("fresh", 100, 8.0, 0.3))

	const workers = 4
	run := leakSeries("serve", 200, 2.0, 0.3)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := sup.NewStream("w")
			for pass := 0; pass < 3; pass++ {
				for _, cp := range run.Checkpoints {
					if _, err := st.Observe(cp); err != nil {
						errs[g] = err
						return
					}
				}
				st.ResolveCensored()
				st.Reset()
			}
		}(g)
	}
	if !sup.StartRetrain() {
		t.Fatalf("retrain refused")
	}
	if !sup.Publish() {
		t.Fatalf("publish failed: %v", sup.Err())
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := sup.Current().Seq; got != 2 {
		t.Fatalf("epoch %d, want 2", got)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
