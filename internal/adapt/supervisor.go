package adapt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// Default Supervisor parameters.
const (
	// DefaultMinFreshRuns is how many freshly collected labeled runs must be
	// buffered (since the last retrain started) before a retrain may begin:
	// retraining on exactly the data the stale model was trained on cannot
	// fix anything.
	DefaultMinFreshRuns = 1
	// DefaultMaxBufferedRuns bounds the training buffer; the oldest runs are
	// evicted first, so the buffer tracks the recent regime.
	DefaultMaxBufferedRuns = 32
)

// Config parameterises a Supervisor. The zero value uses the defaults.
type Config struct {
	// Detector tunes drift detection.
	Detector DetectorConfig
	// MinFreshRuns gates retraining on the number of labeled runs collected
	// since the last retrain started (0 = DefaultMinFreshRuns).
	MinFreshRuns int
	// MaxBufferedRuns bounds the training buffer, oldest-first eviction
	// (0 = DefaultMaxBufferedRuns).
	MaxBufferedRuns int
	// Seed pre-populates the training buffer, typically with the runs the
	// initial model was trained on, so a retrain extends the coverage instead
	// of forgetting it. Seed runs do not count as fresh.
	Seed []*monitor.Series
	// WarmupCheckpoints is how many checkpoints after each Stream Reset are
	// excluded from label feedback: while the model's sliding windows are
	// still filling, every model predicts poorly (the paper discusses the
	// 12-checkpoint ≈ 3-minute delay), so scoring those predictions would
	// inflate the drift baseline and the windowed MAE alike. The checkpoints
	// still count toward collected training runs. 0 = the model's own
	// sliding-window length; negative = no warm-up exclusion.
	WarmupCheckpoints int
	// DisableCollection turns off the streams' checkpoint-history collection
	// (on by default, so a crash automatically yields a labeled training run
	// into the buffer), for callers that feed the buffer through AddRun
	// themselves.
	DisableCollection bool
}

func (c Config) withDefaults() Config {
	if c.MinFreshRuns <= 0 {
		c.MinFreshRuns = DefaultMinFreshRuns
	}
	if c.MaxBufferedRuns <= 0 {
		c.MaxBufferedRuns = DefaultMaxBufferedRuns
	}
	return c
}

// Epoch is one published generation of the serving model. Epochs are
// immutable once published; the Supervisor hands out the current one through
// an atomic pointer, so readers never block and never see a half-written
// epoch.
type Epoch struct {
	// Seq numbers the epochs from 1 (the initial model).
	Seq int
	// Model is the epoch's immutable trained model.
	Model *core.Model
	// TrainedRuns is how many buffered runs the epoch was trained on
	// (0 for the initial epoch, whose training data the Supervisor never saw).
	TrainedRuns int
	// FreshRuns is how many of those were collected on-line since the
	// previous epoch.
	FreshRuns int
}

// Stats is a point-in-time snapshot of the Supervisor's adaptation state.
type Stats struct {
	// Epoch is the current epoch sequence number.
	Epoch int
	// Retrains counts completed retraining rounds (published epochs beyond
	// the initial one); Failures counts retraining rounds that errored and
	// left the old epoch serving.
	Retrains int
	Failures int
	// Trips counts detector trips over the supervisor's lifetime; Drifted
	// says whether the detector is tripped right now.
	Trips   int
	Drifted bool
	// BaselineMAESec and WindowMAESec expose the detector's view.
	BaselineMAESec float64
	WindowMAESec   float64
	// BufferedRuns and FreshRuns describe the training buffer.
	BufferedRuns int
	FreshRuns    int
	// RetrainPending is true while a background retrain is in flight.
	RetrainPending bool
}

// retrainJob is one in-flight background retraining round.
type retrainJob struct {
	done  chan struct{}
	model *core.Model
	err   error
	runs  int
	fresh int
}

// Supervisor owns the adaptive-serving loop around one immutable core.Model:
// it tracks on-line prediction error through a drift Detector, accumulates
// completed labeled runs in a bounded training buffer, retrains in the
// background off the serving hot path, and publishes each new model as an
// Epoch via an atomic swap.
//
// Concurrency contract: Current (and the Streams' Observe fast path reading
// it) is lock-free and safe everywhere; every other method takes the
// supervisor mutex and is safe for concurrent use, but none of them is ever
// called on the per-checkpoint hot path — label resolution and retraining
// happen at crash/rejuvenation boundaries. The background worker touches only
// its own job and the immutable snapshot of the buffer it was given.
type Supervisor struct {
	cfg      Config
	trainCfg core.Config

	cur atomic.Pointer[Epoch]

	mu       sync.Mutex
	det      *Detector
	buf      []*monitor.Series
	fresh    int
	pending  *retrainJob
	retrains int
	failures int
	lastErr  error
}

// NewSupervisor wraps an initial trained model as epoch 1. The retraining
// rounds reuse the model's own effective training configuration (family,
// schema, window), so every epoch predicts over the same feature pipeline.
func NewSupervisor(cfg Config, initial *core.Model) (*Supervisor, error) {
	if initial == nil || initial.Schema() == nil {
		return nil, errors.New("adapt: supervisor needs a trained initial model")
	}
	cfg = cfg.withDefaults()
	det, err := NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{cfg: cfg, trainCfg: initial.Config(), det: det}
	switch {
	case cfg.WarmupCheckpoints < 0:
		s.cfg.WarmupCheckpoints = 0
	case cfg.WarmupCheckpoints == 0:
		s.cfg.WarmupCheckpoints = s.trainCfg.WindowLength
	}
	s.cur.Store(&Epoch{Seq: 1, Model: initial})
	mCurrentEpoch.Set(1)
	for _, run := range cfg.Seed {
		s.addRunLocked(run)
	}
	s.fresh = 0 // seed runs are not fresh evidence of a new regime
	return s, nil
}

// Current returns the currently serving epoch. Lock-free; safe from any
// goroutine.
func (s *Supervisor) Current() *Epoch { return s.cur.Load() }

// Model returns the currently serving model.
func (s *Supervisor) Model() *core.Model { return s.Current().Model }

// AddRun appends one completed labeled run-to-crash execution to the bounded
// training buffer (oldest evicted first) and counts it as fresh evidence.
// Streams with run collection enabled call it automatically on ResolveCrash.
func (s *Supervisor) AddRun(run *monitor.Series) {
	if run == nil || run.Len() == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addRunLocked(run)
}

func (s *Supervisor) addRunLocked(run *monitor.Series) {
	if len(s.buf) == s.cfg.MaxBufferedRuns {
		copy(s.buf, s.buf[1:])
		s.buf = s.buf[:len(s.buf)-1]
	}
	s.buf = append(s.buf, run)
	s.fresh++
	mBufferRuns.Set(float64(len(s.buf)))
}

// resolveErrors feeds a batch of resolved absolute prediction errors
// (seconds) into the drift detector and reports whether it is tripped
// afterwards.
func (s *Supervisor) resolveErrors(absErrsSec []float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	tripped := s.det.Tripped()
	tripsBefore := s.det.Trips()
	for _, e := range absErrsSec {
		tripped = s.det.Add(e)
	}
	if d := s.det.Trips() - tripsBefore; d > 0 {
		mDriftTrips.Add(uint64(d))
	}
	s.syncDetectorMetrics()
	return tripped
}

// Drifted reports whether the drift detector currently signals that the
// serving model has gone stale.
func (s *Supervisor) Drifted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det.Tripped()
}

// StartRetrain begins a background retraining round if one is due: the
// detector has tripped, no round is already in flight, and at least
// MinFreshRuns labeled runs arrived since the last round started. It returns
// whether a round was started. The training itself runs on its own goroutine
// against an immutable snapshot of the buffer; the serving hot path is never
// touched. Publish (or TryPublish) installs the result.
func (s *Supervisor) StartRetrain() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil || !s.det.Tripped() || s.fresh < s.cfg.MinFreshRuns || len(s.buf) == 0 {
		return false
	}
	job := &retrainJob{done: make(chan struct{}), runs: len(s.buf), fresh: s.fresh}
	snapshot := append([]*monitor.Series(nil), s.buf...)
	cfg := s.trainCfg
	s.pending = job
	s.fresh = 0
	go func() {
		start := time.Now()
		job.model, job.err = core.Train(cfg, snapshot)
		mRetrainDuration.Observe(time.Since(start).Seconds())
		close(job.done)
	}()
	return true
}

// TryPublish installs the pending retrain's model as a new epoch if the
// background round has finished, without blocking. It reports whether a new
// epoch was published. A failed round is cleared (the old epoch keeps
// serving) and surfaces through Stats.Failures and Err.
func (s *Supervisor) TryPublish() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return false
	}
	select {
	case <-s.pending.done:
		return s.publishLocked()
	default:
		return false
	}
}

// Publish blocks until the pending background retrain finishes and installs
// its model as a new epoch. It reports whether a new epoch was published
// (false when no round is in flight, or the round failed).
func (s *Supervisor) Publish() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return false
	}
	<-s.pending.done
	return s.publishLocked()
}

// publishLocked consumes the finished pending job. Caller holds s.mu and has
// observed job.done.
func (s *Supervisor) publishLocked() bool {
	job := s.pending
	s.pending = nil
	if job.err != nil {
		s.failures++
		s.lastErr = fmt.Errorf("adapt: retraining on %d buffered runs: %w", job.runs, job.err)
		mRetrainFailures.Inc()
		return false
	}
	prev := s.cur.Load()
	s.cur.Store(&Epoch{Seq: prev.Seq + 1, Model: job.model, TrainedRuns: job.runs, FreshRuns: job.fresh})
	s.retrains++
	s.det.Rebaseline() // the new epoch calibrates its own healthy baseline
	mRetrains.Inc()
	mCurrentEpoch.Set(float64(s.cur.Load().Seq))
	s.syncDetectorMetrics()
	return true
}

// PublishModel installs an externally trained model (typically a
// freshly-loaded artifact — the serving daemon's hot reload path) as a new
// epoch, bypassing the retraining pipeline. Live streams adopt it at their
// next Reset like any retrained epoch; the drift detector re-baselines so the
// new model calibrates its own healthy error level. It returns the new epoch
// sequence number.
func (s *Supervisor) PublishModel(m *core.Model) (int, error) {
	if m == nil || m.Schema() == nil {
		return 0, errors.New("adapt: PublishModel needs a trained model")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.cur.Load()
	next := &Epoch{Seq: prev.Seq + 1, Model: m}
	s.cur.Store(next)
	s.det.Rebaseline()
	mCurrentEpoch.Set(float64(next.Seq))
	s.syncDetectorMetrics()
	return next.Seq, nil
}

// Discard waits for any in-flight background retrain to finish and drops
// its result without publishing. Drivers that shut down mid-round use it so
// no training goroutine outlives them; with nothing in flight it is a
// no-op.
func (s *Supervisor) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return
	}
	<-s.pending.done
	s.pending = nil
}

// Adapt is the synchronous convenience for deterministic drivers (the
// experiment scenarios, simple serving loops): if a retrain is due it runs it
// to completion and publishes the new epoch, returning whether one was
// published.
func (s *Supervisor) Adapt() bool {
	if !s.StartRetrain() {
		return false
	}
	return s.Publish()
}

// Err returns the most recent retraining failure, or nil.
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Stats snapshots the supervisor's adaptation state.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Epoch:          s.cur.Load().Seq,
		Retrains:       s.retrains,
		Failures:       s.failures,
		Trips:          s.det.Trips(),
		Drifted:        s.det.Tripped(),
		BaselineMAESec: s.det.BaselineSec(),
		WindowMAESec:   s.det.WindowMAESec(),
		BufferedRuns:   len(s.buf),
		FreshRuns:      s.fresh,
		RetrainPending: s.pending != nil,
	}
}
