package adapt

import "agingpred/internal/obs"

// The adaptive-serving metric series. All of them are written under the
// supervisor mutex (or from the retraining goroutine, for the wall-clock
// duration histogram) and none is ever read back into a decision, so the
// deterministic adaptation runs are unaffected by instrumentation.
//
// Wall-clock time flows only into the retrain-duration histogram — epochs,
// trip counts and MAE gauges all carry simulation-derived values.
var (
	mDriftTrips = obs.Default.Counter("agingpred_drift_trips_total",
		"Drift-detector trips (windowed MAE degraded past the tripping threshold).")
	mDrifted = obs.Default.Gauge("agingpred_drifted",
		"1 while the drift detector is tripped, 0 otherwise.")
	mWindowMAE = obs.Default.Gauge("agingpred_drift_window_mae_seconds",
		"Windowed mean absolute TTF prediction error the detector sees now.")
	mBaselineMAE = obs.Default.Gauge("agingpred_drift_baseline_mae_seconds",
		"Healthy-regime baseline MAE the detector compares the window against.")
	mCurrentEpoch = obs.Default.Gauge("agingpred_current_epoch",
		"Sequence number of the model epoch currently serving predictions.")
	mRetrains = obs.Default.Counter("agingpred_retrains_total",
		"Background retraining rounds that published a new model epoch.")
	mRetrainFailures = obs.Default.Counter("agingpred_retrain_failures_total",
		"Background retraining rounds that errored, leaving the old epoch serving.")
	mBufferRuns = obs.Default.Gauge("agingpred_training_buffer_runs",
		"Labeled run-to-crash executions currently held in the training buffer.")
	mRetrainDuration = obs.Default.Histogram("agingpred_retrain_duration_seconds",
		"Wall-clock duration of background retraining rounds.",
		obs.ExpBuckets(0.001, 4, 10))
)

// syncDetectorMetrics publishes the detector's current view to the gauges.
// Caller holds s.mu.
func (s *Supervisor) syncDetectorMetrics() {
	if s.det.Tripped() {
		mDrifted.Set(1)
	} else {
		mDrifted.Set(0)
	}
	mWindowMAE.Set(s.det.WindowMAESec())
	mBaselineMAE.Set(s.det.BaselineSec())
}
