// Package adapt closes the loop the paper's title promises: *adaptive*
// on-line software aging prediction. The rest of the repository trains a
// Model once and serves it frozen; this package watches how those predictions
// actually turn out, decides when the serving model has gone stale, retrains
// it in the background on freshly collected run-to-crash data, and hot-swaps
// the new model under live sessions without ever locking the Observe hot
// path.
//
// The subsystem has three layers:
//
//   - label resolution (Stream): every on-line prediction is remembered until
//     the monitored stream's outcome is known. A crash at time T resolves the
//     prediction issued at time t against the now-observable true time to
//     failure T−t; a rejuvenation censors the run (no crash was observed, so
//     the predictions cannot be scored) and the samples are discarded.
//   - drift detection (Detector): the resolved absolute errors feed a
//     sliding-window MAE with a hysteresis band. The first CalibrationSamples
//     (4 windows' worth by default) after a model epoch is published
//     calibrate the baseline; the detector trips
//     when the windowed MAE exceeds Trigger×baseline for Hysteresis
//     consecutive windows, and re-arms only after it falls back under
//     Clear×baseline. Everything is a pure function of the sample sequence —
//     no wall clock, no randomness — so a seeded simulation drives it
//     deterministically.
//   - supervision (Supervisor): completed labeled runs accumulate in a
//     bounded training buffer; when the detector has tripped and enough fresh
//     runs are buffered, a background worker retrains via the existing
//     core.Train schema pipeline and publishes the result as a new model
//     epoch through an atomic pointer swap. Live streams keep serving the old
//     epoch lock-free and pick up the new one at their next Reset boundary
//     (after a rejuvenation or crash recovery), exactly when their
//     sliding-window state is being cleared anyway.
//
// The model-epoch lifecycle, end to end:
//
//	serve epoch N ──► resolve labels ──► Detector trips ──► retrain (background)
//	      ▲                                                      │
//	      └────── streams adopt at Reset ◄── publish epoch N+1 ◄─┘
package adapt

import "fmt"

// Default drift-detector parameters. They are deliberately conservative: a
// regime change that matters moves the windowed MAE by multiples, not
// percents, and a retrain is expensive enough that flapping must be
// impossible by construction.
const (
	// DefaultWindow is the sliding-window length, in resolved error samples,
	// the MAE is computed over.
	DefaultWindow = 64
	// DefaultTrigger is the windowed-MAE-to-baseline ratio above which a
	// window counts toward tripping the detector.
	DefaultTrigger = 2.0
	// DefaultClear is the ratio under which a tripped detector re-arms
	// (hysteresis: Clear < Trigger, so the detector cannot flap on a MAE
	// hovering at the trigger level).
	DefaultClear = 1.25
	// DefaultHysteresis is how many consecutive over-trigger windows are
	// needed before the detector trips.
	DefaultHysteresis = 8
	// DefaultMinBaselineSec floors the calibrated baseline MAE so that an
	// unusually lucky calibration window cannot make ordinary noise look
	// like drift.
	DefaultMinBaselineSec = 120
	// DefaultCalibrationFactor sizes the auto-calibration sample (factor ×
	// Window): the baseline is the MAE over that many samples, a far better
	// estimator of the healthy error level than a single window.
	DefaultCalibrationFactor = 4
)

// DetectorConfig parameterises a Detector. The zero value uses the defaults
// above.
type DetectorConfig struct {
	// Window is the sliding-window length in samples (0 = DefaultWindow).
	Window int
	// Trigger is the MAE/baseline ratio that arms a trip (0 = DefaultTrigger).
	Trigger float64
	// Clear is the MAE/baseline ratio under which a tripped detector re-arms
	// (0 = DefaultClear). Must stay below Trigger.
	Clear float64
	// Hysteresis is the number of consecutive over-trigger windows required
	// to trip (0 = DefaultHysteresis).
	Hysteresis int
	// BaselineSec pins the healthy-model MAE, in seconds. 0 auto-calibrates:
	// the MAE over the first CalibrationSamples after each Rebaseline sets
	// it.
	BaselineSec float64
	// CalibrationSamples is how many samples the auto-calibration averages
	// over (0 = DefaultCalibrationFactor × Window). Ignored when BaselineSec
	// is pinned.
	CalibrationSamples int
	// MinBaselineSec floors the auto-calibrated baseline
	// (0 = DefaultMinBaselineSec).
	MinBaselineSec float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Trigger <= 0 {
		c.Trigger = DefaultTrigger
	}
	if c.Clear <= 0 {
		c.Clear = DefaultClear
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.MinBaselineSec <= 0 {
		c.MinBaselineSec = DefaultMinBaselineSec
	}
	if c.CalibrationSamples <= 0 {
		c.CalibrationSamples = DefaultCalibrationFactor * c.Window
	}
	return c
}

// Validate checks the configuration after defaults.
func (c DetectorConfig) Validate() error {
	c = c.withDefaults()
	if c.Clear >= c.Trigger {
		return fmt.Errorf("adapt: clear ratio %g must stay below trigger ratio %g (hysteresis band)", c.Clear, c.Trigger)
	}
	if c.BaselineSec < 0 {
		return fmt.Errorf("adapt: negative baseline %g s", c.BaselineSec)
	}
	return nil
}

// Detector is the on-line drift detector: a sliding-window MAE over resolved
// prediction errors, compared against a baseline with a hysteresis band.
// It is a pure state machine over its sample sequence — deterministic under
// any seeded driver — and is not safe for concurrent use (the Supervisor
// serialises access to it).
type Detector struct {
	cfg DetectorConfig

	ring []float64 // last Window absolute errors, seconds
	next int       // ring write position
	n    int       // samples currently in the ring (≤ Window)
	sum  float64   // sum of the ring

	baseline    float64 // healthy-model MAE, seconds (0 = not yet calibrated)
	calibrating bool    // true while the calibration sample is accumulating
	calSum      float64 // calibration accumulator
	calN        int
	over        int // consecutive full windows above Trigger×baseline
	tripped     bool
	trips       int // lifetime trip count
}

// NewDetector builds a drift detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := &Detector{cfg: cfg, ring: make([]float64, cfg.Window)}
	d.Rebaseline()
	return d, nil
}

// Rebaseline resets the detector for a freshly published model epoch: the
// window is cleared, the trip state re-arms, and — unless the baseline is
// pinned by the config — the first CalibrationSamples of the new epoch's
// errors recalibrate it.
func (d *Detector) Rebaseline() {
	d.next, d.n, d.sum = 0, 0, 0
	d.over = 0
	d.tripped = false
	d.baseline = d.cfg.BaselineSec
	d.calibrating = d.cfg.BaselineSec == 0
	d.calSum, d.calN = 0, 0
}

// Add feeds one resolved absolute prediction error (seconds) and reports
// whether the detector is tripped after it. Samples arriving while the window
// is still filling only accumulate; every sample after that slides the window
// by one.
func (d *Detector) Add(absErrSec float64) bool {
	if absErrSec < 0 {
		absErrSec = -absErrSec
	}
	if d.n == len(d.ring) {
		d.sum -= d.ring[d.next]
	} else {
		d.n++
	}
	d.ring[d.next] = absErrSec
	d.sum += absErrSec
	d.next++
	if d.next == len(d.ring) {
		d.next = 0
	}
	if d.calibrating {
		d.calSum += absErrSec
		d.calN++
		if d.calN >= d.cfg.CalibrationSamples {
			d.baseline = d.calSum / float64(d.calN)
			if d.baseline < d.cfg.MinBaselineSec {
				d.baseline = d.cfg.MinBaselineSec
			}
			d.calibrating = false
		}
		return d.tripped
	}
	if d.n < len(d.ring) {
		return d.tripped // window still filling
	}
	mae := d.sum / float64(d.n)
	switch {
	case d.tripped:
		if mae <= d.cfg.Clear*d.baseline {
			d.tripped = false
			d.over = 0
		}
	case mae > d.cfg.Trigger*d.baseline:
		d.over++
		if d.over >= d.cfg.Hysteresis {
			d.tripped = true
			d.trips++
		}
	default:
		d.over = 0
	}
	return d.tripped
}

// Tripped reports whether the detector currently signals drift.
func (d *Detector) Tripped() bool { return d.tripped }

// Trips returns how many times the detector has tripped over its lifetime.
func (d *Detector) Trips() int { return d.trips }

// BaselineSec returns the current baseline MAE (0 while auto-calibration is
// still waiting for its first full window).
func (d *Detector) BaselineSec() float64 {
	if d.calibrating {
		return 0
	}
	return d.baseline
}

// WindowMAESec returns the MAE of the current window, or 0 while the window
// is still filling.
func (d *Detector) WindowMAESec() float64 {
	if d.n < len(d.ring) {
		return 0
	}
	return d.sum / float64(d.n)
}
