package adapt

import (
	"fmt"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// Stream is the adaptive counterpart of a core.Session: the per-stream
// serving state of one monitored checkpoint stream under a Supervisor. On
// top of the session's sliding-window feature state it remembers every
// prediction it issues (and, when run collection is enabled, the raw
// checkpoints) until the stream's outcome resolves the labels:
//
//   - ResolveCrash scores the remembered predictions against the
//     now-observable true time to failure, feeds the errors to the drift
//     detector, and turns the checkpoint history into a labeled training run
//     for the Supervisor's buffer;
//   - ResolveCensored discards them (a rejuvenation means no crash was
//     observed, so the predictions cannot be scored);
//   - Reset clears the sliding-window state for the recovered stream and
//     adopts the Supervisor's current model epoch if a newer one was
//     published while the old session was serving.
//
// Like core.Session, a Stream serves one checkpoint stream and is not safe
// for concurrent use itself; streams are the unit of concurrency. The Observe
// hot path reads the epoch it already holds — it never touches the
// Supervisor, takes no locks, and in steady state allocates nothing (the
// prediction and checkpoint buffers are reused across Resets).
type Stream struct {
	sup   *Supervisor
	epoch *Epoch
	sess  *core.Session
	name  string
	runs  int
	seen  int // checkpoints observed since the last Reset, for warm-up exclusion

	// Pending label resolution: the prediction issued at times[i] was
	// preds[i] seconds to failure. cps additionally keeps the raw checkpoints
	// when run collection is on. All three are reused across Resets.
	times []float64
	preds []float64
	cps   []monitor.Checkpoint
}

// NewStream creates a fresh adaptive per-stream serving state on the current
// model epoch. name labels the training runs the stream collects.
func (s *Supervisor) NewStream(name string) *Stream {
	epoch := s.Current()
	return &Stream{sup: s, epoch: epoch, sess: epoch.Model.NewSession(), name: name}
}

// Supervisor returns the stream's supervisor.
func (st *Stream) Supervisor() *Supervisor { return st.sup }

// Epoch returns the sequence number of the model epoch the stream is
// currently serving with.
func (st *Stream) Epoch() int { return st.epoch.Seq }

// Observe consumes one live checkpoint and returns the prediction for it,
// remembering the pair for later label resolution. Steady-state cost is one
// core.Session.Observe plus three buffered appends — no locks, no Supervisor
// access, no allocations once the buffers have grown to the stream's usual
// run length.
func (st *Stream) Observe(cp monitor.Checkpoint) (core.Prediction, error) {
	pred, err := st.sess.Observe(cp)
	if err != nil {
		return pred, err
	}
	st.Record(&cp, pred)
	return pred, nil
}

// Session returns the stream's current core.Session — the extraction and
// prediction half of Observe. Batch serving (core.Batch) stages the session
// directly and then hands the issued prediction back through Record; the two
// calls together are exactly Observe.
func (st *Stream) Session() *core.Session { return st.sess }

// Record remembers one issued prediction for later label resolution — the
// bookkeeping half of Observe, split out so batch serving can evaluate the
// session through a core.Batch and still feed the adaptive layer. cp must be
// the checkpoint the prediction was issued for; it is read, never retained
// (the collection buffer stores a copy).
func (st *Stream) Record(cp *monitor.Checkpoint, pred core.Prediction) {
	st.seen++
	if st.seen > st.sup.cfg.WarmupCheckpoints {
		// Warm-up predictions (sliding windows still filling) are excluded
		// from label feedback: every model mispredicts there, so scoring them
		// would only blur the drift signal.
		st.times = append(st.times, cp.TimeSec)
		st.preds = append(st.preds, pred.TTFSec)
	}
	if !st.sup.cfg.DisableCollection {
		st.cps = append(st.cps, *cp)
	}
}

// ResolveCrash reports that the stream's server crashed at crashTimeSec: the
// pending predictions are scored against the now-known true time to failure
// and fed to the drift detector, and — when run collection is enabled — the
// checkpoint history becomes a labeled run-to-crash execution in the
// Supervisor's training buffer. It returns how many predictions were
// resolved. The stream is left empty; call Reset when the server comes back.
func (st *Stream) ResolveCrash(crashTimeSec float64) int {
	n := 0
	for i, t := range st.times {
		if t > crashTimeSec {
			continue
		}
		// Reuse times[] in place as the error batch: |predicted − (crash − t)|.
		e := st.preds[i] - (crashTimeSec - t)
		if e < 0 {
			e = -e
		}
		st.times[n] = e
		n++
	}
	st.sup.resolveErrors(st.times[:n])
	if !st.sup.cfg.DisableCollection && len(st.cps) > 0 {
		cps := make([]monitor.Checkpoint, 0, len(st.cps))
		for _, cp := range st.cps {
			if cp.TimeSec > crashTimeSec {
				continue
			}
			cp.TTFSec = crashTimeSec - cp.TimeSec
			cps = append(cps, cp)
		}
		interval := monitor.DefaultInterval.Seconds()
		if len(cps) >= 2 {
			interval = cps[1].TimeSec - cps[0].TimeSec
		}
		st.runs++
		st.sup.AddRun(&monitor.Series{
			Name:         fmt.Sprintf("%s/run-%d", st.name, st.runs),
			IntervalSec:  interval,
			Checkpoints:  cps,
			Crashed:      true,
			CrashTimeSec: crashTimeSec,
			CrashReason:  "observed crash",
		})
	}
	st.clear()
	return n
}

// ResolveCensored discards the pending predictions and checkpoint history:
// the stream's server was rejuvenated (or re-pointed), so no crash was
// observed and the labels will never resolve.
func (st *Stream) ResolveCensored() {
	st.clear()
}

// Reset prepares the stream for the recovered (or re-pointed) server: any
// still-pending predictions are censored, and the stream adopts the
// Supervisor's current model epoch — a fresh session when a newer epoch was
// published, a zero-allocation sliding-window reset otherwise. This is the
// boundary at which a hot-swapped model reaches live serving.
func (st *Stream) Reset() {
	st.clear()
	if cur := st.sup.Current(); cur != st.epoch {
		st.epoch = cur
		st.sess = cur.Model.NewSession()
		return
	}
	st.sess.Reset()
}

func (st *Stream) clear() {
	st.times = st.times[:0]
	st.preds = st.preds[:0]
	st.cps = st.cps[:0]
	st.seen = 0
}
