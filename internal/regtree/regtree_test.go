package regtree

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"agingpred/internal/dataset"
	"agingpred/internal/rng"
)

// stepDataset builds a dataset whose target is a step function of one
// attribute: y = low for x < 50, y = high for x >= 50. A regression tree
// should model it almost perfectly; a linear model cannot.
func stepDataset(t *testing.T, n int, low, high float64, seed uint64) *dataset.Dataset {
	t.Helper()
	ds := dataset.MustNew("step", []string{"x", "noise"}, "y")
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		x := src.Float64Between(0, 100)
		y := low
		if x >= 50 {
			y = high
		}
		if err := ds.Append([]float64{x, src.Float64()}, y); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return ds
}

func TestFitStepFunction(t *testing.T) {
	ds := stepDataset(t, 400, 10, 200, 1)
	tree, err := Fit(ds, Options{MinInstances: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Leaves() < 2 {
		t.Fatalf("tree has %d leaves, want at least 2", tree.Leaves())
	}
	attrs := ds.Attrs()
	pLow, err := tree.Predict(attrs, []float64{10, 0.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	pHigh, err := tree.Predict(attrs, []float64{90, 0.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(pLow-10) > 5 || math.Abs(pHigh-200) > 5 {
		t.Fatalf("step predictions = %v/%v, want about 10/200", pLow, pHigh)
	}
	if tree.TrainingInstances != 400 {
		t.Fatalf("TrainingInstances = %d", tree.TrainingInstances)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Options{}); err == nil {
		t.Fatalf("Fit(nil) succeeded")
	}
	empty := dataset.MustNew("e", []string{"a"}, "y")
	if _, err := Fit(empty, Options{}); err == nil {
		t.Fatalf("Fit on empty dataset succeeded")
	}
}

func TestConstantTargetYieldsSingleLeaf(t *testing.T) {
	ds := dataset.MustNew("const", []string{"x"}, "y")
	src := rng.New(2)
	for i := 0; i < 100; i++ {
		_ = ds.Append([]float64{src.Float64()}, 42)
	}
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Leaves() != 1 || tree.InnerNodes() != 0 || tree.Depth() != 0 {
		t.Fatalf("constant target: leaves=%d inner=%d depth=%d, want 1/0/0",
			tree.Leaves(), tree.InnerNodes(), tree.Depth())
	}
	p, err := tree.Predict(ds.Attrs(), []float64{0.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if p != 42 {
		t.Fatalf("Predict = %v, want 42", p)
	}
}

func TestMinInstancesRespected(t *testing.T) {
	ds := stepDataset(t, 200, 0, 100, 3)
	tree, err := Fit(ds, Options{MinInstances: 50})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// With 200 instances and minimum 50 per leaf, the tree can have at most
	// 4 leaves.
	if tree.Leaves() > 4 {
		t.Fatalf("tree has %d leaves with MinInstances=50 over 200 instances", tree.Leaves())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	ds := dataset.MustNew("deep", []string{"x"}, "y")
	src := rng.New(4)
	for i := 0; i < 2000; i++ {
		x := src.Float64Between(0, 100)
		_ = ds.Append([]float64{x}, math.Sin(x)*100+x*x)
	}
	tree, err := Fit(ds, Options{MinInstances: 2, MaxDepth: 3})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("tree depth = %d, want <= 3", tree.Depth())
	}
}

func TestNodeCountInvariant(t *testing.T) {
	ds := stepDataset(t, 500, 5, 50, 5)
	tree, err := Fit(ds, Options{MinInstances: 5})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// A binary tree always has exactly leaves-1 internal nodes.
	if tree.InnerNodes() != tree.Leaves()-1 {
		t.Fatalf("inner=%d leaves=%d, want inner = leaves-1", tree.InnerNodes(), tree.Leaves())
	}
}

func TestPredictErrors(t *testing.T) {
	ds := stepDataset(t, 100, 0, 1, 6)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := tree.Predict([]string{"x"}, []float64{1, 2}); err == nil {
		t.Fatalf("Predict with mismatched row length succeeded")
	}
	if _, err := tree.Predict([]string{"other", "noise"}, []float64{1, 2}); err == nil {
		t.Fatalf("Predict with missing attribute succeeded")
	}
	// Reordered schema works.
	if _, err := tree.Predict([]string{"noise", "x"}, []float64{0.1, 75}); err != nil {
		t.Fatalf("Predict with reordered schema: %v", err)
	}
}

func TestPredictDataset(t *testing.T) {
	ds := stepDataset(t, 300, -50, 50, 7)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	preds, err := tree.PredictDataset(ds)
	if err != nil {
		t.Fatalf("PredictDataset: %v", err)
	}
	if len(preds) != ds.Len() {
		t.Fatalf("got %d predictions for %d instances", len(preds), ds.Len())
	}
	// Training error on a clean step function should be small.
	mae := 0.0
	for i, p := range preds {
		mae += math.Abs(p - ds.TargetValue(i))
	}
	mae /= float64(len(preds))
	if mae > 5 {
		t.Fatalf("training MAE = %v on a clean step function", mae)
	}
}

func TestStringRendersTree(t *testing.T) {
	ds := stepDataset(t, 200, 0, 100, 8)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	s := tree.String()
	if !strings.Contains(s, "x <=") || !strings.Contains(s, "leaf:") {
		t.Fatalf("String() = %q", s)
	}
}

func TestInsertionSortBy(t *testing.T) {
	vals := []float64{5, 3, 9, 1, 7, 3, 0, -2, 8, 8, 4}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	insertionSortBy(idx, func(i int) float64 { return vals[i] })
	for i := 1; i < len(idx); i++ {
		if vals[idx[i-1]] > vals[idx[i]] {
			t.Fatalf("not sorted: %v", idx)
		}
	}
}

func TestStdDevFromSums(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var sum, sumSq float64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	if got := stdDevFromSums(sum, sumSq, len(vals)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stdDevFromSums = %v, want 2", got)
	}
	if got := stdDevFromSums(0, 0, 0); got != 0 {
		t.Fatalf("stdDevFromSums(0,0,0) = %v", got)
	}
	// Numerical noise must not produce NaN via a negative variance.
	if got := stdDevFromSums(3, 2.9999999999, 3); math.IsNaN(got) {
		t.Fatalf("stdDevFromSums produced NaN")
	}
}

// Property: tree predictions always lie within the range of training targets
// (a constant-leaf tree can never extrapolate).
func TestPredictionWithinTrainingRangeProperty(t *testing.T) {
	f := func(seed uint64, q uint8) bool {
		src := rng.New(seed)
		ds := dataset.MustNew("p", []string{"x"}, "y")
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 100+int(q); i++ {
			x := src.Float64Between(0, 100)
			y := src.Float64Between(-1000, 1000)
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
			if err := ds.Append([]float64{x}, y); err != nil {
				return false
			}
		}
		tree, err := Fit(ds, Options{MinInstances: 5})
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			p, err := tree.Predict([]string{"x"}, []float64{src.Float64Between(-50, 150)})
			if err != nil {
				return false
			}
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: leaves-1 == inner nodes for any induced tree.
func TestTreeShapeInvariantProperty(t *testing.T) {
	f := func(seed uint64, minInst uint8) bool {
		src := rng.New(seed)
		ds := dataset.MustNew("p", []string{"a", "b"}, "y")
		for i := 0; i < 300; i++ {
			a := src.Float64Between(0, 10)
			b := src.Float64Between(0, 10)
			if err := ds.Append([]float64{a, b}, a*b+src.Normal(0, 0.5)); err != nil {
				return false
			}
		}
		tree, err := Fit(ds, Options{MinInstances: int(minInst%20) + 1})
		if err != nil {
			return false
		}
		return tree.InnerNodes() == tree.Leaves()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
