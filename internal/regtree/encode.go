package regtree

import (
	"fmt"
	"math"
)

// Snapshot is the serializable form of a fitted Tree: the training attribute
// names and the node structure with constant-valued leaves. Its JSON field
// names are part of internal/core's persisted model format and must not
// change without bumping the file format version.
type Snapshot struct {
	Attrs             []string      `json:"attrs"`
	TrainingInstances int           `json:"training_instances"`
	Root              *NodeSnapshot `json:"root"`
}

// NodeSnapshot is one serialized tree node: either a constant leaf or a
// split with both children.
type NodeSnapshot struct {
	Leaf      bool          `json:"leaf,omitempty"`
	Attr      int           `json:"attr,omitempty"`
	Threshold float64       `json:"threshold,omitempty"`
	Left      *NodeSnapshot `json:"left,omitempty"`
	Right     *NodeSnapshot `json:"right,omitempty"`
	Value     float64       `json:"value,omitempty"`
	N         int           `json:"n"`
}

// Snapshot captures the tree's state for serialization.
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{
		Attrs:             append([]string(nil), t.attrs...),
		TrainingInstances: t.TrainingInstances,
		Root:              snapshotNode(t.root),
	}
}

func snapshotNode(n *node) *NodeSnapshot {
	if n == nil {
		return nil
	}
	s := &NodeSnapshot{Leaf: n.leaf, N: n.n}
	if n.leaf {
		s.Value = n.value
		return s
	}
	s.Attr = n.attr
	s.Threshold = n.threshold
	s.Left = snapshotNode(n.left)
	s.Right = snapshotNode(n.right)
	return s
}

// FromSnapshot reconstructs a Tree from its serialized form, validating the
// structure so corrupt input yields an error, never a tree that panics at
// prediction time. The reconstructed tree descends exactly like the original,
// so predictions are bit-identical.
func FromSnapshot(s *Snapshot) (*Tree, error) {
	if s == nil {
		return nil, fmt.Errorf("regtree: nil snapshot")
	}
	if len(s.Attrs) == 0 {
		return nil, fmt.Errorf("regtree: snapshot has no attributes")
	}
	if s.Root == nil {
		return nil, fmt.Errorf("regtree: snapshot has no root node")
	}
	root, err := nodeFromSnapshot(s.Root, len(s.Attrs))
	if err != nil {
		return nil, err
	}
	return &Tree{
		root:              root,
		attrs:             append([]string(nil), s.Attrs...),
		opts:              Options{}.withDefaults(),
		TrainingInstances: s.TrainingInstances,
	}, nil
}

func nodeFromSnapshot(s *NodeSnapshot, numAttrs int) (*node, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("regtree: snapshot node has negative instance count %d", s.N)
	}
	n := &node{leaf: s.Leaf, n: s.N}
	if s.Leaf {
		if s.Left != nil || s.Right != nil {
			return nil, fmt.Errorf("regtree: snapshot leaf has children")
		}
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("regtree: snapshot leaf value is not finite: %v", s.Value)
		}
		n.value = s.Value
		return n, nil
	}
	if s.Attr < 0 || s.Attr >= numAttrs {
		return nil, fmt.Errorf("regtree: snapshot split attribute %d out of range [0,%d)", s.Attr, numAttrs)
	}
	if s.Left == nil || s.Right == nil {
		return nil, fmt.Errorf("regtree: snapshot inner node is missing a child")
	}
	n.attr = s.Attr
	n.threshold = s.Threshold
	var err error
	if n.left, err = nodeFromSnapshot(s.Left, numAttrs); err != nil {
		return nil, err
	}
	if n.right, err = nodeFromSnapshot(s.Right, numAttrs); err != nil {
		return nil, err
	}
	return n, nil
}
