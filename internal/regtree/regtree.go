// Package regtree implements a plain regression tree with constant-valued
// leaves (CART-style, using the same standard-deviation-reduction split
// criterion as M5).
//
// The paper's preliminary study (reference [14], Alonso et al., ICAS 2009)
// compared Linear Regression, Decision Trees and M5P before settling on M5P;
// this package provides that "decision tree" comparator so the repository can
// reproduce the three-way comparison as an ablation, in addition to the
// two-way comparison reported in the DSN 2010 tables.
package regtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"agingpred/internal/dataset"
)

// Options configures tree induction.
type Options struct {
	// MinInstances is the minimum number of instances a leaf may hold.
	// Zero means 10, matching the leaf size the paper reports for its M5P
	// models ("using 10 instances to build every leaf").
	MinInstances int
	// MaxDepth caps the tree depth (0 = 30).
	MaxDepth int
	// MinStdDevFraction stops splitting when a node's target standard
	// deviation falls below this fraction of the full training set's
	// standard deviation. Zero means 0.05 (the M5 default).
	MinStdDevFraction float64
}

func (o Options) withDefaults() Options {
	if o.MinInstances <= 0 {
		o.MinInstances = 10
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 30
	}
	if o.MinStdDevFraction <= 0 {
		o.MinStdDevFraction = 0.05
	}
	return o
}

// Tree is a fitted regression tree.
type Tree struct {
	root  *node
	attrs []string
	opts  Options

	// TrainingInstances is the number of instances the tree was fitted on.
	TrainingInstances int
}

type node struct {
	// Internal nodes.
	attr      int     // attribute column index tested by this node
	threshold float64 // test is "value <= threshold ? left : right"
	left      *node
	right     *node

	// Leaves.
	leaf  bool
	value float64 // mean target of the training instances reaching the leaf

	n int // training instances reaching this node
}

// Fit builds a regression tree for the dataset.
func Fit(ds *dataset.Dataset, opts Options) (*Tree, error) {
	if ds == nil {
		return nil, errors.New("regtree: nil dataset")
	}
	if ds.Len() == 0 {
		return nil, errors.New("regtree: empty dataset")
	}
	opts = opts.withDefaults()
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	globalSD := ds.TargetStats().StdDev
	t := &Tree{
		attrs:             ds.Attrs(),
		opts:              opts,
		TrainingInstances: ds.Len(),
	}
	t.root = build(ds, idx, 0, opts, globalSD)
	return t, nil
}

// build recursively grows the tree over the instances in idx.
func build(ds *dataset.Dataset, idx []int, depth int, opts Options, globalSD float64) *node {
	n := &node{n: len(idx), leaf: true, value: meanTarget(ds, idx)}
	if len(idx) < 2*opts.MinInstances || depth >= opts.MaxDepth {
		return n
	}
	if stdDevTarget(ds, idx) <= opts.MinStdDevFraction*globalSD {
		return n
	}
	attr, threshold, ok := bestSplit(ds, idx, opts.MinInstances)
	if !ok {
		return n
	}
	var left, right []int
	for _, i := range idx {
		if ds.Value(i, attr) <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinInstances || len(right) < opts.MinInstances {
		return n
	}
	n.leaf = false
	n.attr = attr
	n.threshold = threshold
	n.left = build(ds, left, depth+1, opts, globalSD)
	n.right = build(ds, right, depth+1, opts, globalSD)
	return n
}

// bestSplit finds the (attribute, threshold) pair maximising the standard
// deviation reduction (SDR) over the instances in idx. It reports ok=false
// when no split produces two children of at least minInstances each.
func bestSplit(ds *dataset.Dataset, idx []int, minInstances int) (attr int, threshold float64, ok bool) {
	bestSDR := 0.0
	parentSD := stdDevTarget(ds, idx)
	if parentSD == 0 {
		return 0, 0, false
	}
	nTotal := float64(len(idx))

	for col := 0; col < ds.NumAttrs(); col++ {
		// Sort instance indices by this attribute's value.
		sorted := append([]int(nil), idx...)
		insertionSortBy(sorted, func(i int) float64 { return ds.Value(i, col) })

		// Sweep split positions, maintaining running sums on both sides.
		var leftSum, leftSumSq float64
		rightSum, rightSumSq := 0.0, 0.0
		for _, i := range sorted {
			v := ds.TargetValue(i)
			rightSum += v
			rightSumSq += v * v
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			v := ds.TargetValue(sorted[pos])
			leftSum += v
			leftSumSq += v * v
			rightSum -= v
			rightSumSq -= v * v

			cur := ds.Value(sorted[pos], col)
			next := ds.Value(sorted[pos+1], col)
			if cur == next {
				continue // cannot split between equal values
			}
			nLeft := pos + 1
			nRight := len(sorted) - nLeft
			if nLeft < minInstances || nRight < minInstances {
				continue
			}
			sdLeft := stdDevFromSums(leftSum, leftSumSq, nLeft)
			sdRight := stdDevFromSums(rightSum, rightSumSq, nRight)
			sdr := parentSD - (float64(nLeft)/nTotal)*sdLeft - (float64(nRight)/nTotal)*sdRight
			if sdr > bestSDR {
				bestSDR = sdr
				attr = col
				threshold = (cur + next) / 2
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

// insertionSortBy sorts idx ascending by key. The index slices inside tree
// induction are often nearly sorted after the parent split, where insertion
// sort is close to linear; for pathological cases it falls back to a simple
// heapify-free shell sort gap sequence to avoid quadratic blowups on large
// nodes.
func insertionSortBy(idx []int, key func(int) float64) {
	// Shell sort with Ciura-like gaps keeps worst-case behaviour tame
	// without pulling in sort.Slice closures per comparison (profiling the
	// tree induction showed comparator allocation dominating).
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	n := len(idx)
	for _, gap := range gaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			tmp := idx[i]
			k := key(tmp)
			j := i
			for ; j >= gap && key(idx[j-gap]) > k; j -= gap {
				idx[j] = idx[j-gap]
			}
			idx[j] = tmp
		}
	}
}

func meanTarget(ds *dataset.Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range idx {
		sum += ds.TargetValue(i)
	}
	return sum / float64(len(idx))
}

func stdDevTarget(ds *dataset.Dataset, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		v := ds.TargetValue(i)
		sum += v
		sumSq += v * v
	}
	return stdDevFromSums(sum, sumSq, len(idx))
}

func stdDevFromSums(sum, sumSq float64, n int) float64 {
	if n < 1 {
		return 0
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return math.Sqrt(variance)
}

// Predict returns the tree's prediction for a row with the training schema.
func (t *Tree) Predict(attrs []string, row []float64) (float64, error) {
	if len(attrs) != len(row) {
		return 0, fmt.Errorf("regtree: %d attribute names for %d values", len(attrs), len(row))
	}
	colOf, err := t.resolveAttrs(attrs)
	if err != nil {
		return 0, err
	}
	n := t.root
	for !n.leaf {
		if row[colOf[n.attr]] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value, nil
}

// BoundTree is a Tree bound once to a fixed row schema and flattened into
// parallel node arrays (split column with -1 marking a leaf, threshold,
// child indices, constant leaf value): Predict resolves no attribute names,
// chases no pointers and allocates nothing per call. Nodes are stored in
// preorder, so child indices are strictly greater than their parent's — the
// descent moves forward through memory and provably terminates. Immutable
// and safe for concurrent use.
type BoundTree struct {
	col       []int32 // split column; -1 marks a leaf
	threshold []float64
	left      []int32
	right     []int32
	value     []float64 // constant prediction of leaves (0 for inner nodes)
}

// Bind resolves the tree's split attributes against the given row schema
// once and compiles the node structure into the flattened layout. The schema
// may be wider or reordered as long as every training attribute is present.
func (t *Tree) Bind(attrs []string) (*BoundTree, error) {
	colOf, err := t.resolveAttrs(attrs)
	if err != nil {
		return nil, err
	}
	b := &BoundTree{}
	b.flatten(t.root, colOf)
	if err := b.validate(len(attrs)); err != nil {
		return nil, fmt.Errorf("regtree: flattened tree failed validation: %w", err)
	}
	return b, nil
}

// flatten appends n's subtree in preorder and returns n's node index.
func (b *BoundTree) flatten(n *node, colOf []int) int32 {
	i := int32(len(b.col))
	b.col = append(b.col, -1)
	b.threshold = append(b.threshold, 0)
	b.left = append(b.left, -1)
	b.right = append(b.right, -1)
	b.value = append(b.value, 0)
	if n.leaf {
		b.value[i] = n.value
		return i
	}
	b.col[i] = int32(colOf[n.attr])
	b.threshold[i] = n.threshold
	b.left[i] = b.flatten(n.left, colOf)
	b.right[i] = b.flatten(n.right, colOf)
	return i
}

// validate checks the structural invariants Predict relies on — children in
// range and strictly after their parent (bounding the descent), split
// columns inside the bound row width, finite thresholds — so a malformed
// layout is rejected at construction time, never walked.
func (b *BoundTree) validate(width int) error {
	nodes := len(b.col)
	if nodes == 0 {
		return fmt.Errorf("no nodes")
	}
	if len(b.threshold) != nodes || len(b.left) != nodes || len(b.right) != nodes || len(b.value) != nodes {
		return fmt.Errorf("arrays disagree on node count %d", nodes)
	}
	for i := 0; i < nodes; i++ {
		if b.col[i] < 0 {
			if b.left[i] != -1 || b.right[i] != -1 {
				return fmt.Errorf("leaf %d has children", i)
			}
			if math.IsNaN(b.value[i]) || math.IsInf(b.value[i], 0) {
				return fmt.Errorf("leaf %d value is not finite: %v", i, b.value[i])
			}
			continue
		}
		if int(b.col[i]) >= width {
			return fmt.Errorf("node %d split column %d out of range [0,%d)", i, b.col[i], width)
		}
		if math.IsNaN(b.threshold[i]) || math.IsInf(b.threshold[i], 0) {
			return fmt.Errorf("node %d threshold is not finite: %v", i, b.threshold[i])
		}
		l, r := b.left[i], b.right[i]
		if int(l) <= i || int(l) >= nodes || int(r) <= i || int(r) >= nodes || l == r {
			return fmt.Errorf("node %d child indices (%d,%d) out of range (%d,%d)", i, l, r, i, nodes)
		}
	}
	return nil
}

// resolveAttrs maps each training attribute onto its column in the given row
// schema.
func (t *Tree) resolveAttrs(attrs []string) ([]int, error) {
	colOf := make([]int, len(t.attrs))
	for j, name := range t.attrs {
		found := -1
		for i, a := range attrs {
			if a == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("regtree: instance schema is missing attribute %q", name)
		}
		colOf[j] = found
	}
	return colOf, nil
}

// Predict evaluates the bound tree on a row laid out in the bound schema; it
// performs exactly the comparisons Tree.Predict performs, in the same order,
// so the results are bit-identical.
func (b *BoundTree) Predict(row []float64) float64 {
	i := int32(0)
	for b.col[i] >= 0 {
		if row[b.col[i]] <= b.threshold[i] {
			i = b.left[i]
		} else {
			i = b.right[i]
		}
	}
	return b.value[i]
}

// PredictBatch evaluates the bound tree on every row, writing one prediction
// per row into out (len(out) must be >= len(rows)). Each row goes through
// exactly the scalar Predict walk, so batch and scalar results are
// bit-identical.
func (b *BoundTree) PredictBatch(rows [][]float64, out []float64) {
	for i, row := range rows {
		out[i] = b.Predict(row)
	}
}

// Columns returns the row columns the bound tree's splits read, sorted
// ascending and de-duplicated. Consumers use it to skip computing feature
// columns the tree can never look at.
func (b *BoundTree) Columns() []int {
	seen := make(map[int]bool)
	for _, c := range b.col {
		if c >= 0 {
			seen[int(c)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// PredictDataset returns predictions for every instance of ds.
func (t *Tree) PredictDataset(ds *dataset.Dataset) ([]float64, error) {
	attrs := ds.Attrs()
	out := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		v, err := t.Predict(attrs, ds.Row(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Leaves returns the number of leaves in the tree.
func (t *Tree) Leaves() int { return countLeaves(t.root) }

// InnerNodes returns the number of internal (splitting) nodes.
func (t *Tree) InnerNodes() int { return countInner(t.root) }

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func countLeaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func countInner(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	return 1 + countInner(n.left) + countInner(n.right)
}

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// String renders the tree in an indented, human-readable form.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.root, t.attrs, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *node, attrs []string, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.leaf {
		fmt.Fprintf(b, "%sleaf: %.6g (n=%d)\n", pad, n.value, n.n)
		return
	}
	fmt.Fprintf(b, "%s%s <= %.6g (n=%d)\n", pad, attrs[n.attr], n.threshold, n.n)
	writeNode(b, n.left, attrs, indent+1)
	fmt.Fprintf(b, "%s%s > %.6g\n", pad, attrs[n.attr], n.threshold)
	writeNode(b, n.right, attrs, indent+1)
}
