package regtree

import (
	"encoding/json"
	"math"
	"testing"
)

// TestSnapshotRoundTrip fits a tree on the shared step dataset, pushes it
// through Snapshot → JSON → FromSnapshot, and checks the reconstructed tree
// is structurally identical and predicts bit-identically.
func TestSnapshotRoundTrip(t *testing.T) {
	ds := stepDataset(t, 300, 5, 40, 3)
	tree, err := Fit(ds, Options{MinInstances: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	raw, err := json.Marshal(tree.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	got, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if got.Leaves() != tree.Leaves() || got.InnerNodes() != tree.InnerNodes() {
		t.Fatalf("structure changed: %d/%d vs %d/%d leaves/inner",
			got.Leaves(), got.InnerNodes(), tree.Leaves(), tree.InnerNodes())
	}
	if got.String() != tree.String() {
		t.Fatalf("rendered tree changed across the round trip")
	}
	attrs := ds.Attrs()
	for i := 0; i < ds.Len(); i++ {
		want, err := tree.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if want != have {
			t.Fatalf("row %d: reconstructed tree predicts %v, original %v", i, have, want)
		}
	}
}

// TestFromSnapshotValidation drives the malformed-snapshot branches.
func TestFromSnapshotValidation(t *testing.T) {
	leaf := func(v float64) *NodeSnapshot { return &NodeSnapshot{Leaf: true, N: 10, Value: v} }
	cases := []struct {
		name string
		snap *Snapshot
	}{
		{"nil", nil},
		{"no-attrs", &Snapshot{Root: leaf(1)}},
		{"no-root", &Snapshot{Attrs: []string{"a"}}},
		{"leaf-with-children", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Leaf: true, N: 1, Left: leaf(1)}}},
		{"nan-leaf", &Snapshot{Attrs: []string{"a"}, Root: leaf(math.NaN())}},
		{"split-out-of-range", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Attr: 3, N: 20, Left: leaf(1), Right: leaf(2)}}},
		{"missing-child", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Attr: 0, N: 20, Left: leaf(1)}}},
		{"negative-count", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{Leaf: true, N: -1, Value: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromSnapshot(tc.snap); err == nil {
				t.Fatalf("malformed snapshot accepted")
			}
		})
	}
}
