package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecodeModel proves the decoder's contract on hostile input: corrupt,
// truncated or adversarial model bytes must return an error (or, for inputs
// the fuzzer mutates into validity, a usable model) — never panic, never
// hang, never over-allocate past the format's payload bound. The seed corpus
// covers the interesting regions: a fully valid artifact for every model
// family (so mutations explore the payload validation, not just the
// envelope), systematic truncations, header field corruption, and raw
// garbage.
func FuzzDecodeModel(f *testing.F) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		m := trainedOn(f, Config{Model: kind})
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		// Truncations at structurally meaningful offsets.
		for _, cut := range []int{0, 3, 4, 8, 12, 15, 16, 20, len(valid) / 2, len(valid) - 1} {
			if cut <= len(valid) {
				f.Add(append([]byte(nil), valid[:cut]...))
			}
		}
		// Header corruption: magic, version, length, checksum.
		for _, off := range []int{0, 5, 9, 13} {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
		// Payload corruption (breaks the checksum) and payload corruption
		// with a recomputed checksum (reaches the JSON validation).
		mut := append([]byte(nil), valid...)
		mut[len(mut)/2] ^= 0x20
		f.Add(mut)
		fixed := append([]byte(nil), mut...)
		n := binary.BigEndian.Uint32(fixed[8:])
		binary.BigEndian.PutUint32(fixed[12:], crc32.ChecksumIEEE(fixed[16:16+n]))
		f.Add(fixed)
	}
	f.Add([]byte(nil))
	f.Add([]byte("AGPM"))
	f.Add([]byte("AGPM\x00\x00\x00\x01\x00\x00\x00\x02\x00\x00\x00\x00{}"))
	f.Add([]byte("not a model at all, just bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly: the contract held
		}
		// The rare mutations that stay valid must yield a servable model:
		// exercising a session must not panic either.
		sess := m.NewSession()
		test := leakSeries("fuzz", 3, 1.5, 0.2)
		for _, cp := range test.Checkpoints {
			if _, err := sess.Observe(cp); err != nil {
				return
			}
		}
	})
}
