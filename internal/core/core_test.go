package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// trainTestSeries runs a small set of aging executions once per test binary
// and caches them, because testbed runs are the expensive part of these
// tests.
var cachedSeries struct {
	train []*monitor.Series
	test  *monitor.Series
}

func agingSeries(t testing.TB) (train []*monitor.Series, test *monitor.Series) {
	t.Helper()
	if cachedSeries.test != nil {
		return cachedSeries.train, cachedSeries.test
	}
	var cfgs []testbed.RunConfig
	for _, ebs := range []int{50, 100, 200} {
		cfgs = append(cfgs, testbed.RunConfig{
			Name:        "train",
			Seed:        uint64(ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: 4 * time.Hour,
		})
	}
	series, err := testbed.RunMany(cfgs)
	if err != nil {
		t.Fatalf("building training series: %v", err)
	}
	res, err := testbed.Run(testbed.RunConfig{
		Name:        "test",
		Seed:        777,
		EBs:         150,
		Phases:      testbed.ConstantLeakPhases(30),
		MaxDuration: 4 * time.Hour,
	})
	if err != nil {
		t.Fatalf("building test series: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("test run did not crash")
	}
	cachedSeries.train = series
	cachedSeries.test = res.Series
	return series, res.Series
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{Model: "bogus"}).Validate(); err == nil {
		t.Fatalf("bogus model accepted")
	}
	if _, err := NewPredictor(Config{Model: "bogus"}); err == nil {
		t.Fatalf("NewPredictor with bogus model succeeded")
	}
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	cfg := p.Config()
	if cfg.Model != ModelM5P || cfg.WindowLength != features.DefaultWindowLength ||
		cfg.MinLeafInstances != 10 || cfg.InfiniteTTF != 10800*time.Second {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if p.Trained() {
		t.Fatalf("fresh predictor claims to be trained")
	}
	if got := p.ModelDescription(); got != "(untrained)" {
		t.Fatalf("untrained description = %q", got)
	}
}

func TestUntrainedPredictorErrors(t *testing.T) {
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Observe(monitor.Checkpoint{}); err == nil {
		t.Fatalf("Observe on untrained predictor succeeded")
	}
	if _, err := p.PredictSeries(&monitor.Series{Checkpoints: []monitor.Checkpoint{{}}}); err == nil {
		t.Fatalf("PredictSeries on untrained predictor succeeded")
	}
	if _, err := p.RootCause(2); err == nil {
		t.Fatalf("RootCause on untrained predictor succeeded")
	}
	if _, err := p.Train(nil); err == nil {
		t.Fatalf("Train with no series succeeded")
	}
	if _, err := p.TrainDataset(nil); err == nil {
		t.Fatalf("TrainDataset(nil) succeeded")
	}
}

func TestTrainPredictEvaluateM5P(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)

	p, err := NewPredictor(Config{Model: ModelM5P})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	report, err := p.Train(train)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !p.Trained() {
		t.Fatalf("predictor not marked trained")
	}
	if report.Instances < 100 || report.Leaves < 1 {
		t.Fatalf("implausible training report: %+v", report)
	}
	if !strings.Contains(report.String(), "m5p") {
		t.Fatalf("report string = %q", report.String())
	}

	rep, err := p.Evaluate(test, evalx.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.N != test.Len() {
		t.Fatalf("evaluated %d of %d checkpoints", rep.N, test.Len())
	}
	// The run lasts over an hour; a usable predictor must do much better
	// than the trivial "always predict the mean" baseline (~25% of the run
	// length). Require MAE under 15 minutes.
	if rep.MAE > 900 {
		t.Fatalf("M5P MAE = %s, too large for a deterministic-aging scenario", evalx.FormatDuration(rep.MAE))
	}
	if rep.SMAE > rep.MAE {
		t.Fatalf("S-MAE %v exceeds MAE %v", rep.SMAE, rep.MAE)
	}
	// Predictions sharpen near the crash.
	if rep.PostMAE > rep.PreMAE {
		t.Fatalf("POST-MAE %s is worse than PRE-MAE %s", evalx.FormatDuration(rep.PostMAE), evalx.FormatDuration(rep.PreMAE))
	}

	// The model description includes the tree rendering.
	if !strings.Contains(p.ModelDescription(), "M5P model tree") {
		t.Fatalf("ModelDescription does not render the tree")
	}
}

func TestM5PBeatsLinearRegressionOnAgingData(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)

	// The comparison uses the paper's experiment 4.1 variable set (no heap
	// zone information), which is the setting Table 3 reports.
	evalModel := func(kind ModelKind) evalx.Report {
		p, err := NewPredictor(Config{Model: kind, Variables: features.NoHeapSet})
		if err != nil {
			t.Fatalf("NewPredictor(%s): %v", kind, err)
		}
		if _, err := p.Train(train); err != nil {
			t.Fatalf("Train(%s): %v", kind, err)
		}
		rep, err := p.Evaluate(test, evalx.Options{Model: string(kind)})
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", kind, err)
		}
		return rep
	}
	m5pRep := evalModel(ModelM5P)
	lrRep := evalModel(ModelLinearRegression)
	if m5pRep.MAE >= lrRep.MAE {
		t.Fatalf("M5P MAE %s is not better than Linear Regression MAE %s",
			evalx.FormatDuration(m5pRep.MAE), evalx.FormatDuration(lrRep.MAE))
	}
}

func TestRegressionTreeModelWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)
	p, err := NewPredictor(Config{Model: ModelRegressionTree})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	report, err := p.Train(train)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if report.Leaves < 2 {
		t.Fatalf("regression tree has %d leaves", report.Leaves)
	}
	rep, err := p.Evaluate(test, evalx.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.IsNaN(rep.MAE) || rep.MAE <= 0 {
		t.Fatalf("regression tree MAE = %v", rep.MAE)
	}
	if _, err := p.RootCause(2); err == nil {
		t.Fatalf("RootCause on a non-M5P model succeeded")
	}
}

func TestObserveOnlinePredictionsAdapt(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Feed the test run checkpoint by checkpoint; the prediction near the
	// end must be far smaller than at the middle, and all predictions are
	// finite and clamped to the configured horizon.
	var mid, last Prediction
	for i, cp := range test.Checkpoints {
		pred, err := p.Observe(cp)
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if pred.TTFSec < 0 || pred.TTFSec > p.Config().InfiniteTTF.Seconds() {
			t.Fatalf("prediction out of range: %v", pred.TTFSec)
		}
		if i == test.Len()/2 {
			mid = pred
		}
		last = pred
	}
	if last.TTFSec >= mid.TTFSec {
		t.Fatalf("prediction did not shrink approaching the crash: mid %v, last %v", mid.TTFSec, last.TTFSec)
	}
	if !last.CrashExpected {
		t.Fatalf("crash not expected at the last checkpoint before the crash")
	}
	if last.TTF != time.Duration(last.TTFSec*float64(time.Second)) {
		t.Fatalf("TTF duration and TTFSec disagree")
	}
}

func TestPredictSeriesAgainstReferenceLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	ref := make([]float64, test.Len())
	for i := range ref {
		ref[i] = 1234
	}
	preds, err := p.PredictSeriesAgainst(test, ref)
	if err != nil {
		t.Fatalf("PredictSeriesAgainst: %v", err)
	}
	for _, pr := range preds {
		if pr.TrueTTF != 1234 {
			t.Fatalf("reference label not applied: %v", pr.TrueTTF)
		}
	}
	if _, err := p.PredictSeriesAgainst(test, ref[:3]); err == nil {
		t.Fatalf("mismatched reference length accepted")
	}
}

func TestRootCausePointsAtMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, _ := agingSeries(t)
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	hints, err := p.RootCause(0) // 0 = default depth
	if err != nil {
		t.Fatalf("RootCause: %v", err)
	}
	if len(hints) == 0 {
		t.Fatalf("no root-cause hints from an aging-trained model")
	}
	// The aging fault is a memory leak: at least one of the top hints must
	// be a memory-related metric.
	memoryRelated := false
	for _, h := range hints {
		if strings.Contains(h.Attr, "mem") || strings.Contains(h.Attr, "old") || strings.Contains(h.Attr, "young") ||
			strings.Contains(h.Attr, "swap") {
			memoryRelated = true
		}
	}
	if !memoryRelated {
		t.Fatalf("no memory-related attribute among root-cause hints: %+v", hints)
	}
	text := FormatRootCause(hints)
	if !strings.Contains(text, hints[0].Attr) {
		t.Fatalf("FormatRootCause missing top attribute:\n%s", text)
	}
	if got := FormatRootCause(nil); !strings.Contains(got, "no root-cause hints") {
		t.Fatalf("FormatRootCause(nil) = %q", got)
	}
}

func TestPredictSeriesValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, _ := agingSeries(t)
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := p.PredictSeries(nil); err == nil {
		t.Fatalf("PredictSeries(nil) succeeded")
	}
	if _, err := p.PredictSeries(&monitor.Series{}); err == nil {
		t.Fatalf("PredictSeries of empty series succeeded")
	}
	if _, err := p.Evaluate(&monitor.Series{}, evalx.Options{}); err == nil {
		t.Fatalf("Evaluate of empty series succeeded")
	}
}

// TestCloneUntrained verifies a clone of an untrained predictor is itself
// untrained and rejects Observe.
func TestCloneUntrained(t *testing.T) {
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	c := p.Clone()
	if c.Trained() {
		t.Fatalf("clone of an untrained predictor claims to be trained")
	}
	if _, err := c.Observe(monitor.Checkpoint{}); err == nil {
		t.Fatalf("untrained clone accepted Observe")
	}
}

// TestCloneConcurrentObserve is the race-detector test behind the fleet
// subsystem: one predictor is trained once, then read-only clones replay the
// same checkpoint stream concurrently on sibling goroutines. Under
// `go test -race` this proves the trained model is safe to share; the test
// additionally asserts every clone reproduces the single-threaded
// predictions bit-for-bit.
func TestCloneConcurrentObserve(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is a multi-second test")
	}
	train, test := agingSeries(t)
	p, err := NewPredictor(Config{})
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := p.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	want, err := p.PredictSeries(test)
	if err != nil {
		t.Fatalf("PredictSeries: %v", err)
	}

	const clones = 8
	errs := make([]error, clones)
	var wg sync.WaitGroup
	for g := 0; g < clones; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := p.Clone()
			if !c.Trained() {
				errs[g] = fmt.Errorf("clone %d is not trained", g)
				return
			}
			for i, cp := range test.Checkpoints {
				pred, err := c.Observe(cp)
				if err != nil {
					errs[g] = fmt.Errorf("clone %d checkpoint %d: %v", g, i, err)
					return
				}
				if pred.TTFSec != want[i].PredictedTTF {
					errs[g] = fmt.Errorf("clone %d checkpoint %d: predicted %v, single-threaded path predicted %v",
						g, i, pred.TTFSec, want[i].PredictedTTF)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
