// Package core backs the public agingpred API: an adaptive, on-line
// software-aging predictor in the spirit of Alonso et al. (DSN 2010).
//
// The API mirrors the paper's two-phase workflow. Off-line, Train fits an
// immutable Model on a handful of monitored failure executions
// (monitor.Series). On-line, Model.NewSession creates one cheap per-stream
// Session per monitored server; every 15-second checkpoint pushed through
// Session.Observe runs the derived-feature pipeline (consumption speeds
// smoothed over a sliding window, Table 2 of the paper) and the
// machine-learning model — an M5P model tree by default — outputs the
// predicted time until that server fails. Because the features include the
// current consumption speeds, the prediction automatically adapts when the
// aging trend changes: if the leak slows down, the predicted time to failure
// grows, and vice versa.
//
// Models persist: Model.Encode writes a versioned artifact that DecodeModel
// loads in any process, so serving never retrains. The learned model also
// doubles as a root-cause hint: the attributes tested near the root of the
// model tree are the resources most strongly related to the coming failure
// (Section 4.4 of the paper).
//
// Example:
//
//	model, _ := core.Train(core.Config{}, trainingSeries)
//	sess := model.NewSession()              // one per monitored server
//	for cp := range checkpoints {           // live 15-second checkpoints
//	    pred, _ := sess.Observe(cp)
//	    if pred.CrashExpected && pred.TTF < 10*time.Minute {
//	        triggerRejuvenation()
//	    }
//	}
//
// The mutable Predictor type predates the Model/Session split and remains as
// a deprecated shim over it.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"agingpred/internal/dataset"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/linreg"
	"agingpred/internal/m5p"
	"agingpred/internal/monitor"
	"agingpred/internal/regtree"
)

// ModelKind selects the learning algorithm backing a Model.
type ModelKind string

// The available model families. M5P is the paper's choice; the other two are
// the baselines it is compared against (linear regression in Tables 3–4, the
// plain decision/regression tree in the authors' earlier study).
const (
	ModelM5P              ModelKind = "m5p"
	ModelLinearRegression ModelKind = "linreg"
	ModelRegressionTree   ModelKind = "regtree"
)

// Config configures training. The zero value reproduces the paper's setup:
// an M5P tree over the full Table 2 variable set, with 10 instances per leaf
// and a 12-checkpoint sliding window.
type Config struct {
	// Model is the learning algorithm (default ModelM5P).
	Model ModelKind
	// Schema selects the feature schema the model extracts and learns on
	// (see the features schema registry: "full", "no-heap", "heap-focus",
	// "full+conn", or any caller-registered schema). When nil, the schema is
	// derived from Variables. Schema wins when both are set.
	Schema *features.Schema
	// Variables selects the Table 2 variable subset (default features.FullSet).
	// It is the legacy spelling of the three paper schemas; Schema supersedes
	// it.
	Variables features.VariableSet
	// WindowLength is the sliding-window length, in checkpoints, used for
	// the derived consumption-speed features (default 12, or the schema's
	// own default). A non-default value re-parameterises the schema via
	// Schema.WithWindow.
	WindowLength int
	// MinLeafInstances is the minimum number of instances per tree leaf
	// (default 10, as reported by the paper for every experiment).
	MinLeafInstances int
	// LeafMaxAttrs caps the attributes each leaf linear model may consider;
	// keeps training fast on the ~50-variable Table 2 set (default 15,
	// 0 keeps the default; set to -1 for no cap).
	LeafMaxAttrs int
	// Unpruned and NoSmoothing expose the corresponding M5P options for
	// ablation studies.
	Unpruned    bool
	NoSmoothing bool
	// InfiniteTTF is the time-to-failure that means "no failure in sight"
	// (default 3 h = 10800 s, the paper's convention).
	InfiniteTTF time.Duration
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = ModelM5P
	}
	if c.Schema == nil {
		c.Schema = c.Variables.Schema()
	}
	if c.WindowLength > 0 {
		c.Schema = c.Schema.WithWindow(c.WindowLength)
	} else {
		// Leave a caller-supplied schema's own default window untouched;
		// echo the effective value so Config() reports it.
		c.WindowLength = c.Schema.WindowLength()
	}
	if c.MinLeafInstances <= 0 {
		c.MinLeafInstances = m5p.DefaultMinInstances
	}
	switch {
	case c.LeafMaxAttrs == 0:
		c.LeafMaxAttrs = 15
	case c.LeafMaxAttrs < 0:
		c.LeafMaxAttrs = 0 // no cap
	}
	if c.InfiniteTTF <= 0 {
		c.InfiniteTTF = time.Duration(monitor.InfiniteTTFSec * float64(time.Second))
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Model {
	case ModelM5P, ModelLinearRegression, ModelRegressionTree:
	default:
		return fmt.Errorf("core: unknown model kind %q", c.Model)
	}
	return nil
}

// regressor is the behaviour shared by the three model families.
type regressor interface {
	Predict(attrs []string, row []float64) (float64, error)
}

// Statically verify the three backing models satisfy the interface.
var (
	_ regressor = (*m5p.Tree)(nil)
	_ regressor = (*linreg.Model)(nil)
	_ regressor = (*regtree.Tree)(nil)
)

// boundRegressor is a model pre-bound to the model's schema: index-based
// evaluation with no name resolution and no per-call allocations. All three
// model families provide one via Bind; it is the Observe hot path.
// PredictBatch evaluates many rows with the scalar arithmetic (bit-identical
// results) while keeping the model's flattened arrays hot in cache, and
// Columns reports exactly which row columns the model can read — sessions
// project feature extraction onto that set, skipping derived columns the
// model can never look at.
type boundRegressor interface {
	Predict(row []float64) float64
	PredictBatch(rows [][]float64, out []float64)
	Columns() []int
}

// Statically verify the three bound forms satisfy the interface.
var (
	_ boundRegressor = (*m5p.BoundTree)(nil)
	_ boundRegressor = (*linreg.BoundModel)(nil)
	_ boundRegressor = (*regtree.BoundTree)(nil)
)

// TrainReport summarises a training round, mirroring the numbers the paper
// reports for each experiment ("the model generated was composed by 36 leafs
// and 35 inner nodes, using 10 instances to build every leaf", trained on N
// instances). The JSON field names are part of the persisted model format.
type TrainReport struct {
	Model      ModelKind `json:"model"`
	Instances  int       `json:"instances"`
	Attributes int       `json:"attributes"`
	// Schema names the feature schema the model was trained on.
	Schema string `json:"schema"`
	// Leaves and InnerNodes describe tree models; they are zero for linear
	// regression.
	Leaves     int `json:"leaves,omitempty"`
	InnerNodes int `json:"inner_nodes,omitempty"`
}

// String renders the report in the paper's style.
func (r TrainReport) String() string {
	schema := ""
	if r.Schema != "" {
		schema = fmt.Sprintf(", schema %s", r.Schema)
	}
	if r.Leaves > 0 {
		return fmt.Sprintf("%s model: %d leaves, %d inner nodes, trained on %d instances (%d attributes%s)",
			r.Model, r.Leaves, r.InnerNodes, r.Instances, r.Attributes, schema)
	}
	return fmt.Sprintf("%s model trained on %d instances (%d attributes%s)", r.Model, r.Instances, r.Attributes, schema)
}

// Prediction is one on-line prediction.
type Prediction struct {
	// TimeSec is the checkpoint time the prediction was issued at.
	TimeSec float64
	// TTF is the predicted time until failure.
	TTF time.Duration
	// TTFSec is the same value in seconds (convenient for plots and tables).
	TTFSec float64
	// CrashExpected is false when the prediction is at or beyond the
	// "infinite" horizon, i.e. the model sees no aging.
	CrashExpected bool
}

// Predictor fuses a Model and a single Session behind one mutable type.
//
// Deprecated: use Train (or DecodeModel) to obtain an immutable Model and
// Model.NewSession for per-stream on-line state. The mapping is mechanical:
//
//	NewPredictor(cfg) + Train(series)  →  core.Train(cfg, series)
//	NewPredictor(cfg) + TrainDataset(ds) → core.TrainDataset(cfg, ds)
//	p.Observe(cp)                      →  sess := model.NewSession(); sess.Observe(cp)
//	p.Clone()                          →  model.NewSession()
//	p.ResetOnline()                    →  sess.Reset()
//	p.PredictRow(attrs, row)           →  model.PredictRow(timeSec, attrs, row)
//	p.Evaluate / p.PredictSeries / p.RootCause / p.ModelDescription
//	                                   →  the same methods on Model
//
// The shim remains so existing call sites keep compiling; it will not grow
// new behaviour.
//
// Deprecation timeline: frozen since the v1 Model/Session split. New code —
// including new code inside this repository — must not use it; the serving
// stack (fleet, experiments, the commands, the adaptive supervisor) is
// entirely on Model/Session. The shim will be deleted in the next major API
// revision, once the remaining legacy test fixtures in this package are
// migrated.
type Predictor struct {
	cfg    Config
	schema *features.Schema
	model  *Model
	sess   *Session
}

// NewPredictor creates an untrained Predictor from the configuration.
//
// Deprecated: use Train, which returns an immutable Model directly.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Predictor{cfg: cfg, schema: cfg.Schema}, nil
}

// Config returns the effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Schema returns the feature schema the predictor extracts and predicts on.
func (p *Predictor) Schema() *features.Schema { return p.schema }

// Trained reports whether the predictor has a model.
func (p *Predictor) Trained() bool { return p.model != nil }

// Model returns the immutable trained model behind the predictor (nil before
// training). It is the migration path out of the shim: hand the Model to
// code written against the new API.
func (p *Predictor) Model() *Model { return p.model }

// Attrs returns the attribute names of the feature vectors the predictor
// consumes.
func (p *Predictor) Attrs() []string { return p.schema.Attrs() }

// Train fits the model from one or more monitored executions. It replaces
// any previously-trained model and resets the on-line state.
func (p *Predictor) Train(series []*monitor.Series) (TrainReport, error) {
	m, err := trainEffective(p.cfg, series)
	if err != nil {
		return TrainReport{}, err
	}
	p.model = m
	p.sess = m.NewSession()
	return m.Report(), nil
}

// TrainDataset fits the model from an already-extracted dataset.
func (p *Predictor) TrainDataset(ds *dataset.Dataset) (TrainReport, error) {
	m, err := fitEffective(p.cfg, ds)
	if err != nil {
		return TrainReport{}, err
	}
	p.model = m
	p.sess = m.NewSession()
	return m.Report(), nil
}

// ResetOnline clears the on-line sliding-window state (use after a
// rejuvenation action or when switching to a different server). It reuses
// the existing buffers, so a fleet-scale rejuvenation wave allocates
// nothing.
func (p *Predictor) ResetOnline() {
	if p.sess != nil {
		p.sess.Reset()
	}
}

// Clone returns a new Predictor that shares the receiver's trained model but
// owns fresh on-line sliding-window state — the pre-Session spelling of
// Model.NewSession. Cloning an untrained predictor yields an untrained
// predictor.
func (p *Predictor) Clone() *Predictor {
	c := &Predictor{cfg: p.cfg, schema: p.schema, model: p.model}
	if p.model != nil {
		c.sess = p.model.NewSession()
	}
	return c
}

// Observe consumes one live checkpoint and returns the prediction for it.
// In steady state it performs no allocations. Observe is NOT safe for
// concurrent use: every call mutates the predictor's sliding-window feature
// state. To serve many checkpoint streams concurrently, give each stream its
// own Session (or Clone).
func (p *Predictor) Observe(cp monitor.Checkpoint) (Prediction, error) {
	if p.sess == nil {
		return Prediction{}, errors.New("core: predictor is not trained")
	}
	return p.sess.Observe(cp)
}

// PredictRow predicts the time to failure for a single already-extracted
// feature vector issued at an unknown time (the returned Prediction carries
// TimeSec 0; Model.PredictRow accepts the checkpoint time explicitly).
func (p *Predictor) PredictRow(attrs []string, row []float64) (Prediction, error) {
	if p.model == nil {
		return Prediction{}, errors.New("core: predictor is not trained")
	}
	return p.model.PredictRow(0, attrs, row)
}

// EvaluateDataset evaluates the predictor on an already-extracted dataset
// whose target column holds the true time to failure. It is the CSV-level
// counterpart of Evaluate.
func (p *Predictor) EvaluateDataset(ds *dataset.Dataset, opts evalx.Options) (evalx.Report, error) {
	if p.model == nil {
		return evalx.Report{}, errors.New("core: predictor is not trained")
	}
	return p.model.EvaluateDataset(ds, 0, opts)
}

// PredictSeries replays a monitored series through the predictor (with fresh
// on-line state) and returns one evalx.Prediction per checkpoint, pairing
// the model output with the series' true TTF labels. The predictor's own
// on-line state is left untouched (the replay runs on a private session).
func (p *Predictor) PredictSeries(s *monitor.Series) ([]evalx.Prediction, error) {
	if p.model == nil {
		return nil, errors.New("core: predictor is not trained")
	}
	return p.model.PredictSeries(s)
}

// PredictSeriesAgainst is like PredictSeries but evaluates the model output
// against caller-supplied reference TTF labels instead of the series' own
// labels.
func (p *Predictor) PredictSeriesAgainst(s *monitor.Series, referenceTTF []float64) ([]evalx.Prediction, error) {
	if p.model == nil {
		return nil, errors.New("core: predictor is not trained")
	}
	return p.model.PredictSeriesAgainst(s, referenceTTF)
}

// Evaluate replays a test series and computes the paper's accuracy metrics
// (MAE, S-MAE, PRE-MAE, POST-MAE).
func (p *Predictor) Evaluate(s *monitor.Series, opts evalx.Options) (evalx.Report, error) {
	if p.model == nil {
		return evalx.Report{}, errors.New("core: predictor is not trained")
	}
	return p.model.Evaluate(s, opts)
}

// RootCauseHint is one clue extracted from the structure of the learned
// model: an attribute the model consults prominently when deciding how long
// the system has left.
type RootCauseHint struct {
	// Attr is the attribute (metric) name.
	Attr string
	// Threshold is the split value at the shallowest node testing the
	// attribute.
	Threshold float64
	// Depth is that node's depth (0 = root: the strongest hint).
	Depth int
	// Splits is how many nodes across the whole tree test this attribute.
	Splits int
}

// RootCause inspects the learned model and returns hints about which
// resources are implicated in the coming failure, most significant first.
func (p *Predictor) RootCause(maxDepth int) ([]RootCauseHint, error) {
	if p.model == nil {
		return nil, errors.New("core: predictor is not trained")
	}
	return p.model.RootCause(maxDepth)
}

// ModelDescription returns a human-readable rendering of the learned model
// (the full M5P tree with its leaf equations, or the regression formula).
func (p *Predictor) ModelDescription() string {
	if p.model == nil {
		return "(untrained)"
	}
	return p.model.Description()
}

// FormatRootCause renders root-cause hints as a short human-readable report.
func FormatRootCause(hints []RootCauseHint) string {
	if len(hints) == 0 {
		return "no root-cause hints (model has no splits)"
	}
	var b strings.Builder
	b.WriteString("Root-cause hints (from the top of the model tree):\n")
	for i, h := range hints {
		fmt.Fprintf(&b, "  %d. %s (split at %.4g, depth %d, used in %d splits)\n",
			i+1, h.Attr, h.Threshold, h.Depth, h.Splits)
	}
	return b.String()
}
