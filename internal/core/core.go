// Package core is the public face of the library: an adaptive, on-line
// software-aging predictor in the spirit of Alonso et al. (DSN 2010).
//
// A Predictor is trained off-line on a handful of monitored failure
// executions (monitor.Series) and then applied on-line: every 15-second
// checkpoint is pushed through the derived-feature pipeline (consumption
// speeds smoothed over a sliding window, Table 2 of the paper) and the
// machine-learning model — an M5P model tree by default — outputs the
// predicted time until the server fails. Because the features include the
// current consumption speeds, the prediction automatically adapts when the
// aging trend changes: if the leak slows down, the predicted time to failure
// grows, and vice versa.
//
// The learned model also doubles as a root-cause hint: the attributes tested
// near the root of the model tree are the resources most strongly related to
// the coming failure (Section 4.4 of the paper).
//
// Example:
//
//	p, _ := core.NewPredictor(core.Config{})
//	report, _ := p.Train(trainingSeries)
//	for cp := range checkpoints {           // live 15-second checkpoints
//	    pred, _ := p.Observe(cp)
//	    if pred.CrashExpected && pred.TTF < 10*time.Minute {
//	        triggerRejuvenation()
//	    }
//	}
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"agingpred/internal/dataset"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/linreg"
	"agingpred/internal/m5p"
	"agingpred/internal/monitor"
	"agingpred/internal/regtree"
)

// ModelKind selects the learning algorithm backing a Predictor.
type ModelKind string

// The available model families. M5P is the paper's choice; the other two are
// the baselines it is compared against (linear regression in Tables 3–4, the
// plain decision/regression tree in the authors' earlier study).
const (
	ModelM5P              ModelKind = "m5p"
	ModelLinearRegression ModelKind = "linreg"
	ModelRegressionTree   ModelKind = "regtree"
)

// Config configures a Predictor. The zero value reproduces the paper's
// setup: an M5P tree over the full Table 2 variable set, with 10 instances
// per leaf and a 12-checkpoint sliding window.
type Config struct {
	// Model is the learning algorithm (default ModelM5P).
	Model ModelKind
	// Schema selects the feature schema the predictor extracts and learns
	// on (see the features schema registry: "full", "no-heap", "heap-focus",
	// "full+conn", or any caller-registered schema). When nil, the schema is
	// derived from Variables. Schema wins when both are set.
	Schema *features.Schema
	// Variables selects the Table 2 variable subset (default features.FullSet).
	// It is the legacy spelling of the three paper schemas; Schema supersedes
	// it.
	Variables features.VariableSet
	// WindowLength is the sliding-window length, in checkpoints, used for
	// the derived consumption-speed features (default 12, or the schema's
	// own default). A non-default value re-parameterises the schema via
	// Schema.WithWindow.
	WindowLength int
	// MinLeafInstances is the minimum number of instances per tree leaf
	// (default 10, as reported by the paper for every experiment).
	MinLeafInstances int
	// LeafMaxAttrs caps the attributes each leaf linear model may consider;
	// keeps training fast on the ~50-variable Table 2 set (default 15,
	// 0 keeps the default; set to -1 for no cap).
	LeafMaxAttrs int
	// Unpruned and NoSmoothing expose the corresponding M5P options for
	// ablation studies.
	Unpruned    bool
	NoSmoothing bool
	// InfiniteTTF is the time-to-failure that means "no failure in sight"
	// (default 3 h = 10800 s, the paper's convention).
	InfiniteTTF time.Duration
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = ModelM5P
	}
	if c.Schema == nil {
		c.Schema = c.Variables.Schema()
	}
	if c.WindowLength > 0 {
		c.Schema = c.Schema.WithWindow(c.WindowLength)
	} else {
		// Leave a caller-supplied schema's own default window untouched;
		// echo the effective value so Config() reports it.
		c.WindowLength = c.Schema.WindowLength()
	}
	if c.MinLeafInstances <= 0 {
		c.MinLeafInstances = m5p.DefaultMinInstances
	}
	switch {
	case c.LeafMaxAttrs == 0:
		c.LeafMaxAttrs = 15
	case c.LeafMaxAttrs < 0:
		c.LeafMaxAttrs = 0 // no cap
	}
	if c.InfiniteTTF <= 0 {
		c.InfiniteTTF = time.Duration(monitor.InfiniteTTFSec * float64(time.Second))
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Model {
	case ModelM5P, ModelLinearRegression, ModelRegressionTree:
	default:
		return fmt.Errorf("core: unknown model kind %q", c.Model)
	}
	return nil
}

// regressor is the behaviour shared by the three model families.
type regressor interface {
	Predict(attrs []string, row []float64) (float64, error)
}

// Statically verify the three backing models satisfy the interface.
var (
	_ regressor = (*m5p.Tree)(nil)
	_ regressor = (*linreg.Model)(nil)
	_ regressor = (*regtree.Tree)(nil)
)

// boundRegressor is a model pre-bound to the predictor's schema: index-based
// evaluation with no name resolution and no per-call allocations. All three
// model families provide one via Bind; it is the Observe hot path.
type boundRegressor interface {
	Predict(row []float64) float64
}

// Statically verify the three bound forms satisfy the interface.
var (
	_ boundRegressor = (*m5p.BoundTree)(nil)
	_ boundRegressor = (*linreg.BoundModel)(nil)
	_ boundRegressor = (*regtree.BoundTree)(nil)
)

// Predictor predicts time to failure from monitored checkpoints.
type Predictor struct {
	cfg    Config
	schema *features.Schema
	attrs  []string

	model   regressor
	m5pTree *m5p.Tree // non-nil only when cfg.Model == ModelM5P
	// bound is the model compiled against the predictor's schema (index-
	// based, allocation-free). It is nil when the trained model references
	// attributes outside the schema, in which case Observe falls back to the
	// name-resolving path.
	bound boundRegressor

	stream  *features.RowExtractor
	trained bool
}

// TrainReport summarises a training round, mirroring the numbers the paper
// reports for each experiment ("the model generated was composed by 36 leafs
// and 35 inner nodes, using 10 instances to build every leaf", trained on N
// instances).
type TrainReport struct {
	Model      ModelKind
	Instances  int
	Attributes int
	// Schema names the feature schema the model was trained on.
	Schema string
	// Leaves and InnerNodes describe tree models; they are zero for linear
	// regression.
	Leaves     int
	InnerNodes int
}

// String renders the report in the paper's style.
func (r TrainReport) String() string {
	schema := ""
	if r.Schema != "" {
		schema = fmt.Sprintf(", schema %s", r.Schema)
	}
	if r.Leaves > 0 {
		return fmt.Sprintf("%s model: %d leaves, %d inner nodes, trained on %d instances (%d attributes%s)",
			r.Model, r.Leaves, r.InnerNodes, r.Instances, r.Attributes, schema)
	}
	return fmt.Sprintf("%s model trained on %d instances (%d attributes%s)", r.Model, r.Instances, r.Attributes, schema)
}

// Prediction is one on-line prediction.
type Prediction struct {
	// TimeSec is the checkpoint time the prediction was issued at.
	TimeSec float64
	// TTF is the predicted time until failure.
	TTF time.Duration
	// TTFSec is the same value in seconds (convenient for plots and tables).
	TTFSec float64
	// CrashExpected is false when the prediction is at or beyond the
	// "infinite" horizon, i.e. the model sees no aging.
	CrashExpected bool
}

// NewPredictor creates a Predictor from the configuration.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	schema := cfg.Schema
	return &Predictor{
		cfg:    cfg,
		schema: schema,
		attrs:  schema.Attrs(),
		stream: schema.Stream(),
	}, nil
}

// Config returns the effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Schema returns the feature schema the predictor extracts and predicts on.
func (p *Predictor) Schema() *features.Schema { return p.schema }

// Trained reports whether the predictor has a model.
func (p *Predictor) Trained() bool { return p.trained }

// Attrs returns the attribute names of the feature vectors the predictor
// consumes.
func (p *Predictor) Attrs() []string { return append([]string(nil), p.attrs...) }

// Train fits the model from one or more monitored executions (typically a
// handful of run-to-crash executions at different workloads and injection
// rates, as in the paper). It replaces any previously-trained model and
// resets the on-line state.
func (p *Predictor) Train(series []*monitor.Series) (TrainReport, error) {
	if len(series) == 0 {
		return TrainReport{}, errors.New("core: no training series")
	}
	ds, err := p.schema.ExtractAll("training", series)
	if err != nil {
		return TrainReport{}, fmt.Errorf("core: extracting training features: %w", err)
	}
	return p.TrainDataset(ds)
}

// TrainDataset fits the model from an already-extracted dataset. The dataset
// schema must match the predictor's variable set.
func (p *Predictor) TrainDataset(ds *dataset.Dataset) (TrainReport, error) {
	if ds == nil || ds.Len() == 0 {
		return TrainReport{}, errors.New("core: empty training dataset")
	}
	report := TrainReport{Model: p.cfg.Model, Instances: ds.Len(), Attributes: ds.NumAttrs(), Schema: p.schema.Name()}
	switch p.cfg.Model {
	case ModelM5P:
		tree, err := m5p.Fit(ds, m5p.Options{
			MinInstances: p.cfg.MinLeafInstances,
			Unpruned:     p.cfg.Unpruned,
			NoSmoothing:  p.cfg.NoSmoothing,
			LeafMaxAttrs: p.cfg.LeafMaxAttrs,
		})
		if err != nil {
			return TrainReport{}, fmt.Errorf("core: fitting M5P: %w", err)
		}
		p.model = tree
		p.m5pTree = tree
		report.Leaves = tree.Leaves()
		report.InnerNodes = tree.InnerNodes()
	case ModelLinearRegression:
		lr, err := linreg.Fit(ds, linreg.Options{EliminateAttrs: true})
		if err != nil {
			return TrainReport{}, fmt.Errorf("core: fitting linear regression: %w", err)
		}
		p.model = lr
		p.m5pTree = nil
	case ModelRegressionTree:
		rt, err := regtree.Fit(ds, regtree.Options{MinInstances: p.cfg.MinLeafInstances})
		if err != nil {
			return TrainReport{}, fmt.Errorf("core: fitting regression tree: %w", err)
		}
		p.model = rt
		p.m5pTree = nil
		report.Leaves = rt.Leaves()
		report.InnerNodes = rt.InnerNodes()
	default:
		return TrainReport{}, fmt.Errorf("core: unknown model kind %q", p.cfg.Model)
	}
	p.trained = true
	p.bindModel()
	p.ResetOnline()
	return report, nil
}

// bindModel compiles the trained model against the predictor's schema:
// attribute names are resolved to row indices once, so Observe needs no
// lookups and no allocations per checkpoint. When the model references
// attributes outside the schema (a dataset trained under a wider schema),
// bound stays nil and Observe keeps the name-resolving fallback, which
// reports the mismatch per call exactly as before.
func (p *Predictor) bindModel() {
	p.bound = nil
	switch m := p.model.(type) {
	case *m5p.Tree:
		if bt, err := m.Bind(p.attrs); err == nil {
			p.bound = bt
		}
	case *linreg.Model:
		if bm, err := m.Bind(p.attrs); err == nil {
			p.bound = bm
		}
	case *regtree.Tree:
		if bt, err := m.Bind(p.attrs); err == nil {
			p.bound = bt
		}
	}
}

// ResetOnline clears the on-line sliding-window state (use after a
// rejuvenation action or when switching to a different server). It reuses
// the existing buffers, so a fleet-scale rejuvenation wave allocates
// nothing.
func (p *Predictor) ResetOnline() {
	p.stream.Reset()
}

// Clone returns a new Predictor that shares the receiver's trained model but
// owns fresh on-line sliding-window state.
//
// The learned model is immutable once Train returns and its Predict path is
// read-only, so any number of clones may call Observe concurrently with each
// other and with the receiver: train once, then fan read-only clones out to
// per-server goroutines (the fleet subsystem gives every simulated instance
// its own clone). The schema-bound model compiled at training time is shared
// too — it is immutable like the tree itself. A clone captures the
// receiver's model at call time — re-training the receiver later does not
// affect existing clones. Cloning an untrained predictor yields an untrained
// predictor.
func (p *Predictor) Clone() *Predictor {
	return &Predictor{
		cfg:     p.cfg,
		schema:  p.schema,
		attrs:   p.attrs,
		model:   p.model,
		m5pTree: p.m5pTree,
		bound:   p.bound,
		stream:  p.schema.Stream(),
		trained: p.trained,
	}
}

// Observe consumes one live checkpoint and returns the prediction for it.
// In steady state it performs no allocations: the feature row is computed
// into a reusable buffer by the compiled schema extractor and the model is
// evaluated through its schema-bound form (BenchmarkObserve pins 0
// allocs/op).
//
// Observe is NOT safe for concurrent use: every call mutates the predictor's
// sliding-window feature state, so two goroutines observing through the same
// Predictor race and corrupt the derived speed features. To serve many
// checkpoint streams concurrently, give each stream its own Clone — the
// trained model is shared read-only, only the on-line state is per-clone.
func (p *Predictor) Observe(cp monitor.Checkpoint) (Prediction, error) {
	if !p.trained {
		return Prediction{}, errors.New("core: predictor is not trained")
	}
	row := p.stream.Step(cp)
	if p.bound != nil {
		return p.clamp(cp.TimeSec, p.bound.Predict(row)), nil
	}
	return p.predictRow(cp.TimeSec, row)
}

// predictRow runs the model on one feature vector through the name-resolving
// path and post-processes the output.
func (p *Predictor) predictRow(timeSec float64, row []float64) (Prediction, error) {
	raw, err := p.model.Predict(p.attrs, row)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: predicting: %w", err)
	}
	return p.clamp(timeSec, raw), nil
}

// clamp post-processes a raw model output: predictions are clamped to
// [0, InfiniteTTF].
func (p *Predictor) clamp(timeSec, raw float64) Prediction {
	infinite := p.cfg.InfiniteTTF.Seconds()
	ttf := raw
	if ttf < 0 {
		ttf = 0
	}
	if ttf > infinite {
		ttf = infinite
	}
	return Prediction{
		TimeSec:       timeSec,
		TTF:           time.Duration(ttf * float64(time.Second)),
		TTFSec:        ttf,
		CrashExpected: ttf < infinite*0.999,
	}
}

// PredictRow predicts the time to failure for a single already-extracted
// feature vector. attrs names the columns of row; the schema may be wider or
// reordered as long as every attribute of the predictor's variable set is
// present. Use Observe for live checkpoints — PredictRow exists for datasets
// that were extracted earlier (e.g. loaded from CSV by cmd/agingpredict).
func (p *Predictor) PredictRow(attrs []string, row []float64) (Prediction, error) {
	if !p.trained {
		return Prediction{}, errors.New("core: predictor is not trained")
	}
	raw, err := p.model.Predict(attrs, row)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: predicting: %w", err)
	}
	infinite := p.cfg.InfiniteTTF.Seconds()
	ttf := math.Max(0, math.Min(raw, infinite))
	return Prediction{
		TTF:           time.Duration(ttf * float64(time.Second)),
		TTFSec:        ttf,
		CrashExpected: ttf < infinite*0.999,
	}, nil
}

// EvaluateDataset evaluates the predictor on an already-extracted dataset
// whose target column holds the true time to failure. It is the CSV-level
// counterpart of Evaluate.
func (p *Predictor) EvaluateDataset(ds *dataset.Dataset, opts evalx.Options) (evalx.Report, error) {
	if !p.trained {
		return evalx.Report{}, errors.New("core: predictor is not trained")
	}
	if ds == nil || ds.Len() == 0 {
		return evalx.Report{}, errors.New("core: empty evaluation dataset")
	}
	attrs := ds.Attrs()
	preds := make([]evalx.Prediction, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		pr, err := p.PredictRow(attrs, ds.Row(i))
		if err != nil {
			return evalx.Report{}, err
		}
		preds = append(preds, evalx.Prediction{
			TrueTTF:      ds.TargetValue(i),
			PredictedTTF: pr.TTFSec,
		})
	}
	if opts.Model == "" {
		opts.Model = string(p.cfg.Model)
	}
	return evalx.Evaluate(preds, opts)
}

// PredictSeries replays a monitored series through the predictor (with fresh
// on-line state) and returns one evalx.Prediction per checkpoint, pairing
// the model output with the series' true TTF labels. The predictor's on-line
// state is reset before and after.
func (p *Predictor) PredictSeries(s *monitor.Series) ([]evalx.Prediction, error) {
	if !p.trained {
		return nil, errors.New("core: predictor is not trained")
	}
	if s == nil || s.Len() == 0 {
		return nil, errors.New("core: empty test series")
	}
	p.ResetOnline()
	defer p.ResetOnline()
	out := make([]evalx.Prediction, 0, s.Len())
	for _, cp := range s.Checkpoints {
		pred, err := p.Observe(cp)
		if err != nil {
			return nil, err
		}
		out = append(out, evalx.Prediction{
			TimeSec:      cp.TimeSec,
			TrueTTF:      cp.TTFSec,
			PredictedTTF: pred.TTFSec,
		})
	}
	return out, nil
}

// PredictSeriesAgainst is like PredictSeries but evaluates the model output
// against caller-supplied reference TTF labels instead of the series' own
// labels. The paper uses this for experiment 4.2, where the "true" time to
// failure of each checkpoint is defined by freezing the current injection
// rate and simulating until the crash.
func (p *Predictor) PredictSeriesAgainst(s *monitor.Series, referenceTTF []float64) ([]evalx.Prediction, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("core: empty test series")
	}
	if len(referenceTTF) != s.Len() {
		return nil, fmt.Errorf("core: %d reference labels for %d checkpoints", len(referenceTTF), s.Len())
	}
	preds, err := p.PredictSeries(s)
	if err != nil {
		return nil, err
	}
	for i := range preds {
		preds[i].TrueTTF = referenceTTF[i]
	}
	return preds, nil
}

// Evaluate replays a test series and computes the paper's accuracy metrics
// (MAE, S-MAE, PRE-MAE, POST-MAE).
func (p *Predictor) Evaluate(s *monitor.Series, opts evalx.Options) (evalx.Report, error) {
	preds, err := p.PredictSeries(s)
	if err != nil {
		return evalx.Report{}, err
	}
	if opts.Model == "" {
		opts.Model = string(p.cfg.Model)
	}
	return evalx.Evaluate(preds, opts)
}

// RootCauseHint is one clue extracted from the structure of the learned
// model: an attribute the model consults prominently when deciding how long
// the system has left.
type RootCauseHint struct {
	// Attr is the attribute (metric) name.
	Attr string
	// Threshold is the split value at the shallowest node testing the
	// attribute.
	Threshold float64
	// Depth is that node's depth (0 = root: the strongest hint).
	Depth int
	// Splits is how many nodes across the whole tree test this attribute.
	Splits int
}

// RootCause inspects the learned model and returns hints about which
// resources are implicated in the coming failure, most significant first.
// Only the M5P model carries the tree structure the paper inspects.
func (p *Predictor) RootCause(maxDepth int) ([]RootCauseHint, error) {
	if !p.trained {
		return nil, errors.New("core: predictor is not trained")
	}
	if maxDepth <= 0 {
		maxDepth = 3
	}
	if p.m5pTree == nil {
		return nil, fmt.Errorf("core: root-cause hints require an M5P model (have %s)", p.cfg.Model)
	}
	splits := p.m5pTree.TopSplits(maxDepth)
	counts := p.m5pTree.SplitAttributeCounts()
	seen := make(map[string]bool)
	hints := make([]RootCauseHint, 0, len(splits))
	for _, sp := range splits {
		if seen[sp.Attr] {
			continue
		}
		seen[sp.Attr] = true
		hints = append(hints, RootCauseHint{
			Attr:      sp.Attr,
			Threshold: sp.Threshold,
			Depth:     sp.Depth,
			Splits:    counts[sp.Attr],
		})
	}
	return hints, nil
}

// ModelDescription returns a human-readable rendering of the learned model
// (the full M5P tree with its leaf equations, or the regression formula).
func (p *Predictor) ModelDescription() string {
	if !p.trained {
		return "(untrained)"
	}
	switch m := p.model.(type) {
	case *m5p.Tree:
		return m.String()
	case *linreg.Model:
		return fmt.Sprintf("%s = %s", features.Target, m.String())
	case *regtree.Tree:
		return m.String()
	default:
		return fmt.Sprintf("%T", p.model)
	}
}

// FormatRootCause renders root-cause hints as a short human-readable report.
func FormatRootCause(hints []RootCauseHint) string {
	if len(hints) == 0 {
		return "no root-cause hints (model has no splits)"
	}
	var b strings.Builder
	b.WriteString("Root-cause hints (from the top of the model tree):\n")
	for i, h := range hints {
		fmt.Fprintf(&b, "  %d. %s (split at %.4g, depth %d, used in %d splits)\n",
			i+1, h.Attr, h.Threshold, h.Depth, h.Splits)
	}
	return b.String()
}
