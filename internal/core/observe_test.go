package core

import (
	"math"
	"testing"

	"agingpred/internal/features"
	"agingpred/internal/monitor"
)

// leakSeries builds a deterministic run-to-crash series with a linear memory
// and thread leak plus small deterministic oscillations — cheap enough to
// train on in a unit test, structured enough for M5P to find splits.
func leakSeries(name string, n int, memPerCP, thrPerCP float64) *monitor.Series {
	s := &monitor.Series{Name: name, IntervalSec: 15, Workload: 100, Crashed: true}
	crash := float64(n) * 15
	s.CrashTimeSec = crash
	for i := 1; i <= n; i++ {
		t := float64(i) * 15
		wob := float64(i%5) - 2
		old := 200 + memPerCP*float64(i)
		threads := 250 + thrPerCP*float64(i) + wob
		tomcat := 500 + memPerCP*float64(i) + 0.5*threads
		s.Checkpoints = append(s.Checkpoints, monitor.Checkpoint{
			TimeSec:         t,
			Throughput:      10 + 0.2*wob,
			Workload:        100,
			ResponseTimeSec: 0.05 + 0.0005*float64(i),
			SystemLoad:      2,
			DiskUsedMB:      12000 + float64(i),
			SwapFreeMB:      2048,
			NumProcesses:    117,
			SystemMemUsedMB: 450 + tomcat,
			TomcatMemUsedMB: tomcat,
			NumThreads:      threads,
			NumHTTPConns:    10,
			NumMySQLConns:   8 + 0.05*float64(i),
			YoungMaxMB:      128,
			OldMaxMB:        832,
			YoungUsedMB:     40 + 4*wob,
			OldUsedMB:       old,
			YoungPct:        (40 + 4*wob) / 128 * 100,
			OldPct:          old / 832 * 100,
			TTFSec:          crash - t,
		})
	}
	return s
}

func trainedOn(t testing.TB, cfg Config) *Predictor {
	t.Helper()
	p, err := NewPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := []*monitor.Series{
		leakSeries("train-a", 300, 2.0, 0.3),
		leakSeries("train-b", 400, 1.5, 0.2),
		leakSeries("train-c", 250, 2.5, 0.5),
	}
	if _, err := p.Train(train); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestObserveZeroAllocs pins the acceptance criterion of the schema
// refactor: steady-state Observe performs no allocations per checkpoint for
// every model family.
func TestObserveZeroAllocs(t *testing.T) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		t.Run(string(kind), func(t *testing.T) {
			p := trainedOn(t, Config{Model: kind})
			test := leakSeries("test", 200, 1.8, 0.25)
			for _, cp := range test.Checkpoints {
				if _, err := p.Observe(cp); err != nil {
					t.Fatal(err)
				}
			}
			cp := test.Checkpoints[len(test.Checkpoints)-1]
			allocs := testing.AllocsPerRun(100, func() {
				cp.TimeSec += 15
				if _, err := p.Observe(cp); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("Observe allocates %.1f objects per checkpoint, want 0", allocs)
			}
		})
	}
}

// TestBoundModelMatchesNameResolvingPath verifies the compiled hot path is
// bit-identical to the legacy name-resolving Predict for every model family
// — the property the golden experiment metrics rely on.
func TestBoundModelMatchesNameResolvingPath(t *testing.T) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		t.Run(string(kind), func(t *testing.T) {
			p := trainedOn(t, Config{Model: kind})
			if p.bound == nil {
				t.Fatalf("model did not bind to its own schema")
			}
			test := leakSeries("test", 150, 1.2, 0.4)
			x := p.schema.Stream()
			for _, cp := range test.Checkpoints {
				row := x.Step(cp)
				fast := p.bound.Predict(row)
				slow, err := p.model.Predict(p.attrs, row)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Fatalf("bound prediction %v != name-resolved %v at t=%v (difference %g)",
						fast, slow, cp.TimeSec, math.Abs(fast-slow))
				}
			}
		})
	}
}

// TestConfigSchemaSelectsRegistrySchemas checks Config.Schema plumbs a
// registered schema (here full+conn) end to end: attribute list, training
// and on-line observation.
func TestConfigSchemaSelectsRegistrySchemas(t *testing.T) {
	schema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		t.Fatal(err)
	}
	p := trainedOn(t, Config{Schema: schema})
	if got := p.Schema().Name(); got != features.FullConnSchemaName {
		t.Fatalf("predictor schema = %q", got)
	}
	if len(p.Attrs()) != schema.NumAttrs() {
		t.Fatalf("predictor has %d attrs, schema %d", len(p.Attrs()), schema.NumAttrs())
	}
	test := leakSeries("test", 100, 1.5, 0.3)
	pred, err := p.Observe(test.Checkpoints[0])
	if err != nil {
		t.Fatal(err)
	}
	if pred.TTFSec < 0 {
		t.Fatalf("negative TTF %v", pred.TTFSec)
	}
	// Clone keeps the schema and the bound model.
	c := p.Clone()
	if c.Schema() != p.Schema() {
		t.Fatalf("clone changed schema")
	}
	if _, err := c.Observe(test.Checkpoints[0]); err != nil {
		t.Fatal(err)
	}
}

// TestCustomSchemaKeepsItsWindow guards the Config contract: with
// WindowLength unset, a caller-supplied schema keeps its own default SWA
// window instead of being silently re-windowed to the package default.
func TestCustomSchemaKeepsItsWindow(t *testing.T) {
	schema := features.NewSchemaBuilder("custom-window", 40).
		Resource(features.ResourceDescriptor{
			Key: "old", LevelName: "old_used", Unit: "MB", Direction: features.Growing,
			Level: func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB },
		}).
		Raw("old_used_mb", "MB", func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB }).
		SpeedDerivatives("old").
		MustBuild()
	p, err := NewPredictor(Config{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Schema().WindowLength(); got != 40 {
		t.Fatalf("schema window silently changed to %d, want 40", got)
	}
	if got := p.Config().WindowLength; got != 40 {
		t.Fatalf("Config().WindowLength = %d, want the effective 40", got)
	}
	// An explicit WindowLength still re-parameterises the schema.
	p2, err := NewPredictor(Config{Schema: schema, WindowLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Schema().WindowLength(); got != 6 {
		t.Fatalf("explicit WindowLength ignored: schema window %d, want 6", got)
	}
}

// BenchmarkObserve measures the per-checkpoint hot path end to end (compiled
// feature row + schema-bound model evaluation), reporting ns/op and
// allocs/op. Before the schema refactor this path built a 49-entry
// map[string]float64, filtered it through freshly-allocated name slices and
// re-resolved every model attribute by name on each call (~20 allocations
// per checkpoint); now it is allocation-free.
func BenchmarkObserve(b *testing.B) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression} {
		b.Run(string(kind), func(b *testing.B) {
			p := trainedOn(b, Config{Model: kind})
			test := leakSeries("bench", 256, 1.8, 0.25)
			for _, cp := range test.Checkpoints {
				if _, err := p.Observe(cp); err != nil {
					b.Fatal(err)
				}
			}
			cp := test.Checkpoints[len(test.Checkpoints)-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp.TimeSec += 15
				if _, err := p.Observe(cp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
