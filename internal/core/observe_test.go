package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"agingpred/internal/features"
	"agingpred/internal/monitor"
)

// leakSeries builds a deterministic run-to-crash series with a linear memory
// and thread leak plus small deterministic oscillations — cheap enough to
// train on in a unit test, structured enough for M5P to find splits.
func leakSeries(name string, n int, memPerCP, thrPerCP float64) *monitor.Series {
	s := &monitor.Series{Name: name, IntervalSec: 15, Workload: 100, Crashed: true}
	crash := float64(n) * 15
	s.CrashTimeSec = crash
	for i := 1; i <= n; i++ {
		t := float64(i) * 15
		wob := float64(i%5) - 2
		old := 200 + memPerCP*float64(i)
		threads := 250 + thrPerCP*float64(i) + wob
		tomcat := 500 + memPerCP*float64(i) + 0.5*threads
		s.Checkpoints = append(s.Checkpoints, monitor.Checkpoint{
			TimeSec:         t,
			Throughput:      10 + 0.2*wob,
			Workload:        100,
			ResponseTimeSec: 0.05 + 0.0005*float64(i),
			SystemLoad:      2,
			DiskUsedMB:      12000 + float64(i),
			SwapFreeMB:      2048,
			NumProcesses:    117,
			SystemMemUsedMB: 450 + tomcat,
			TomcatMemUsedMB: tomcat,
			NumThreads:      threads,
			NumHTTPConns:    10,
			NumMySQLConns:   8 + 0.05*float64(i),
			YoungMaxMB:      128,
			OldMaxMB:        832,
			YoungUsedMB:     40 + 4*wob,
			OldUsedMB:       old,
			YoungPct:        (40 + 4*wob) / 128 * 100,
			OldPct:          old / 832 * 100,
			TTFSec:          crash - t,
		})
	}
	return s
}

func trainedOn(t testing.TB, cfg Config) *Model {
	t.Helper()
	m, err := Train(cfg, []*monitor.Series{
		leakSeries("train-a", 300, 2.0, 0.3),
		leakSeries("train-b", 400, 1.5, 0.2),
		leakSeries("train-c", 250, 2.5, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestObserveZeroAllocs pins the acceptance criterion of the schema
// refactor, now phrased against the Session hot path: steady-state
// Session.Observe performs no allocations per checkpoint for every model
// family.
func TestObserveZeroAllocs(t *testing.T) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		t.Run(string(kind), func(t *testing.T) {
			sess := trainedOn(t, Config{Model: kind}).NewSession()
			test := leakSeries("test", 200, 1.8, 0.25)
			for _, cp := range test.Checkpoints {
				if _, err := sess.Observe(cp); err != nil {
					t.Fatal(err)
				}
			}
			cp := test.Checkpoints[len(test.Checkpoints)-1]
			allocs := testing.AllocsPerRun(100, func() {
				cp.TimeSec += 15
				if _, err := sess.Observe(cp); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("Session.Observe allocates %.1f objects per checkpoint, want 0", allocs)
			}
		})
	}
}

// TestBoundModelMatchesNameResolvingPath verifies the compiled hot path is
// bit-identical to the legacy name-resolving Predict for every model family
// — the property the golden experiment metrics rely on.
func TestBoundModelMatchesNameResolvingPath(t *testing.T) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		t.Run(string(kind), func(t *testing.T) {
			m := trainedOn(t, Config{Model: kind})
			if m.bound == nil {
				t.Fatalf("model did not bind to its own schema")
			}
			test := leakSeries("test", 150, 1.2, 0.4)
			x := m.schema.Stream()
			for _, cp := range test.Checkpoints {
				row := x.Step(cp)
				fast := m.bound.Predict(row)
				slow, err := m.reg.Predict(m.attrs, row)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Fatalf("bound prediction %v != name-resolved %v at t=%v (difference %g)",
						fast, slow, cp.TimeSec, math.Abs(fast-slow))
				}
			}
		})
	}
}

// TestConfigSchemaSelectsRegistrySchemas checks Config.Schema plumbs a
// registered schema (here full+conn) end to end: attribute list, training
// and on-line observation.
func TestConfigSchemaSelectsRegistrySchemas(t *testing.T) {
	schema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		t.Fatal(err)
	}
	m := trainedOn(t, Config{Schema: schema})
	if got := m.Schema().Name(); got != features.FullConnSchemaName {
		t.Fatalf("model schema = %q", got)
	}
	if len(m.Attrs()) != schema.NumAttrs() {
		t.Fatalf("model has %d attrs, schema %d", len(m.Attrs()), schema.NumAttrs())
	}
	test := leakSeries("test", 100, 1.5, 0.3)
	sess := m.NewSession()
	pred, err := sess.Observe(test.Checkpoints[0])
	if err != nil {
		t.Fatal(err)
	}
	if pred.TTFSec < 0 {
		t.Fatalf("negative TTF %v", pred.TTFSec)
	}
	// A second session shares the schema and the bound model.
	sess2 := m.NewSession()
	if sess2.Model() != m {
		t.Fatalf("session lost its model")
	}
	if _, err := sess2.Observe(test.Checkpoints[0]); err != nil {
		t.Fatal(err)
	}
}

// TestCustomSchemaKeepsItsWindow guards the Config contract: with
// WindowLength unset, a caller-supplied schema keeps its own default SWA
// window instead of being silently re-windowed to the package default.
func TestCustomSchemaKeepsItsWindow(t *testing.T) {
	schema := features.NewSchemaBuilder("custom-window", 40).
		Resource(features.ResourceDescriptor{
			Key: "old", LevelName: "old_used", Unit: "MB", Direction: features.Growing,
			Level: func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB },
		}).
		Raw("old_used_mb", "MB", func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB }).
		SpeedDerivatives("old").
		MustBuild()
	p, err := NewPredictor(Config{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Schema().WindowLength(); got != 40 {
		t.Fatalf("schema window silently changed to %d, want 40", got)
	}
	if got := p.Config().WindowLength; got != 40 {
		t.Fatalf("Config().WindowLength = %d, want the effective 40", got)
	}
	// An explicit WindowLength still re-parameterises the schema.
	p2, err := NewPredictor(Config{Schema: schema, WindowLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Schema().WindowLength(); got != 6 {
		t.Fatalf("explicit WindowLength ignored: schema window %d, want 6", got)
	}
}

// TestConcurrentPredictRowIsSafe pins the off-hot-path half of the "Model is
// safe for concurrent use" contract. The name-resolving Predict lazily
// caches attribute resolutions inside the shared regressor (linreg keys the
// cache by row-schema signature), so concurrent PredictRow calls on a wider
// row layout used to race on that cache; Model now serialises them. Under
// `go test -race` this test fails without the lock.
func TestConcurrentPredictRowIsSafe(t *testing.T) {
	m := trainedOn(t, Config{Model: ModelLinearRegression, Variables: features.NoHeapSet})
	// Rows in the full Table 2 layout: wider than and reordered relative to
	// the model's own no-heap schema, so every resolution goes through the
	// regressor's lazy name-resolving cache.
	test := leakSeries("wide", 120, 1.8, 0.25)
	wideDS, err := features.FullSet.Schema().Extract(test)
	if err != nil {
		t.Fatal(err)
	}
	attrs := wideDS.Attrs()
	want := make([]float64, wideDS.Len())
	for i := range want {
		pred, err := m.PredictRow(0, attrs, wideDS.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pred.TTFSec
	}
	const workers = 6
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < wideDS.Len(); i++ {
				pred, err := m.PredictRow(0, attrs, wideDS.Row(i))
				if err != nil {
					errs[g] = err
					return
				}
				if pred.TTFSec != want[i] {
					errs[g] = fmt.Errorf("worker %d row %d: %v != %v", g, i, pred.TTFSec, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnboundModelSessionErrors covers the degenerate serving path: a model
// trained on a dataset wider than its schema cannot bind, and its sessions'
// Observe reports the attribute mismatch per call — an error, never a panic
// and never a silent wrong prediction.
func TestUnboundModelSessionErrors(t *testing.T) {
	train := []*monitor.Series{
		leakSeries("train-a", 300, 2.0, 0.3),
		leakSeries("train-b", 400, 1.5, 0.2),
	}
	fullDS, err := features.FullSet.Schema().ExtractAll("wide", train)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainDataset(Config{Variables: features.NoHeapSet}, fullDS)
	if err != nil {
		t.Fatal(err)
	}
	if m.bound != nil {
		t.Fatalf("model bound unexpectedly; the test needs the fallback path")
	}
	sess := m.NewSession()
	if _, err := sess.Observe(leakSeries("test", 1, 1.8, 0.25).Checkpoints[0]); err == nil {
		t.Fatalf("unbound model's session observed successfully; want the schema-mismatch error")
	}
}

// BenchmarkObserve measures the per-checkpoint hot path end to end — now
// Session.Observe: compiled feature row + schema-bound model evaluation —
// reporting ns/op and allocs/op. Before the schema refactor this path built
// a 49-entry map[string]float64, filtered it through freshly-allocated name
// slices and re-resolved every model attribute by name on each call (~20
// allocations per checkpoint); now it is allocation-free.
func BenchmarkObserve(b *testing.B) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression} {
		b.Run(string(kind), func(b *testing.B) {
			sess := trainedOn(b, Config{Model: kind}).NewSession()
			test := leakSeries("bench", 256, 1.8, 0.25)
			for _, cp := range test.Checkpoints {
				if _, err := sess.Observe(cp); err != nil {
					b.Fatal(err)
				}
			}
			cp := test.Checkpoints[len(test.Checkpoints)-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp.TimeSec += 15
				if _, err := sess.Observe(cp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
