package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"agingpred/internal/features"
	"agingpred/internal/linreg"
	"agingpred/internal/m5p"
	"agingpred/internal/regtree"
)

// The persisted model format is a small binary envelope around a JSON
// payload:
//
//	offset  size  field
//	0       4     magic "AGPM"
//	4       4     format version, big-endian uint32 (currently 1)
//	8       4     payload length in bytes, big-endian uint32
//	12      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	16      n     JSON payload (modelPayload)
//
// The envelope gives fail-fast detection of wrong files, truncation and bit
// rot; the JSON payload keeps the model structure inspectable with standard
// tooling and round-trips float64 values exactly (Go's shortest-form float
// encoding), which is what makes a decoded model predict bit-identically to
// the in-memory one. DecodeModel additionally checks schema compatibility:
// the schema is stored by registry name and re-resolved on load, and the
// stored column list must match what the resolved schema generates today.

const (
	// FormatVersion is the version written by Encode and required by
	// DecodeModel. Bump it when the payload layout changes incompatibly.
	FormatVersion = 1

	formatMagic = "AGPM"

	// maxPayloadBytes bounds the payload allocation during decode so a
	// corrupt or hostile length field cannot ask for gigabytes. Real models
	// are a few hundred kilobytes.
	maxPayloadBytes = 64 << 20
)

// modelPayload is the JSON body of a persisted model. Exactly one of the
// family snapshots is set, matching Kind.
type modelPayload struct {
	Kind   ModelKind `json:"kind"`
	Schema string    `json:"schema"`
	Window int       `json:"window"`
	// Attrs pins the column layout the schema generated at save time; decode
	// fails fast if the registered schema has drifted since.
	Attrs []string `json:"attrs"`

	// Training configuration, in Config's user-facing spelling (LeafMaxAttrs
	// -1 = no cap) so it survives a round trip through Config.withDefaults.
	MinLeafInstances int     `json:"min_leaf_instances"`
	LeafMaxAttrs     int     `json:"leaf_max_attrs"`
	Unpruned         bool    `json:"unpruned,omitempty"`
	NoSmoothing      bool    `json:"no_smoothing,omitempty"`
	InfiniteTTFSec   float64 `json:"infinite_ttf_sec"`

	Report TrainReport `json:"report"`

	M5P     *m5p.Snapshot     `json:"m5p,omitempty"`
	LinReg  *linreg.Snapshot  `json:"linreg,omitempty"`
	RegTree *regtree.Snapshot `json:"regtree,omitempty"`
}

// Encode writes the model as a versioned artifact that DecodeModel can load
// in any process — tree structure, leaf models, schema name and window, and
// training configuration. The model's schema must be reproducible from the
// schema registry by name (every built-in schema is; a custom schema must be
// registered before models trained on it can be saved), because the artifact
// stores the schema by name rather than serialising accessor functions.
func (m *Model) Encode(w io.Writer) error {
	payload, err := m.encodePayload()
	if err != nil {
		return err
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: encoding model payload: %w", err)
	}
	return writeEnvelope(w, body)
}

// encodePayload builds the payload after checking the schema is recoverable
// by name on the decoding side.
func (m *Model) encodePayload() (*modelPayload, error) {
	base, err := features.LookupSchema(m.schema.Name())
	if err != nil {
		return nil, fmt.Errorf("core: model schema is not registered, register it before saving: %w", err)
	}
	if !base.WithWindow(m.schema.WindowLength()).AttrsEqual(m.attrs) {
		return nil, fmt.Errorf("core: model schema %q does not match the registered schema of that name; the artifact would not load", m.schema.Name())
	}
	p := &modelPayload{
		Kind:             m.cfg.Model,
		Schema:           m.schema.Name(),
		Window:           m.schema.WindowLength(),
		Attrs:            m.Attrs(),
		MinLeafInstances: m.cfg.MinLeafInstances,
		LeafMaxAttrs:     m.cfg.LeafMaxAttrs,
		Unpruned:         m.cfg.Unpruned,
		NoSmoothing:      m.cfg.NoSmoothing,
		InfiniteTTFSec:   m.cfg.InfiniteTTF.Seconds(),
		Report:           m.report,
	}
	if p.LeafMaxAttrs == 0 {
		p.LeafMaxAttrs = -1 // effective "no cap" back to the user-facing spelling
	}
	switch r := m.reg.(type) {
	case *m5p.Tree:
		p.M5P = r.Snapshot()
	case *linreg.Model:
		p.LinReg = r.Snapshot()
	case *regtree.Tree:
		p.RegTree = r.Snapshot()
	default:
		return nil, fmt.Errorf("core: cannot encode model of type %T", m.reg)
	}
	return p, nil
}

// writeEnvelope frames one payload with magic, version, length and checksum.
func writeEnvelope(w io.Writer, payload []byte) error {
	if len(payload) > maxPayloadBytes {
		return fmt.Errorf("core: model payload of %d bytes exceeds the %d-byte format limit", len(payload), maxPayloadBytes)
	}
	header := make([]byte, 16)
	copy(header, formatMagic)
	binary.BigEndian.PutUint32(header[4:], FormatVersion)
	binary.BigEndian.PutUint32(header[8:], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[12:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: writing model payload: %w", err)
	}
	return nil
}

// DecodeModel reads a model artifact written by Encode and reconstructs the
// immutable Model, verifying — in order — the magic, the format version, the
// payload checksum, that the payload describes exactly one model family, and
// that the feature schema it names still exists in the registry and still
// generates the column layout the model was trained on. Corrupt or truncated
// input yields an error, never a panic (FuzzDecodeModel pins this), and the
// decoded model's predictions are bit-identical to the encoded one's.
func DecodeModel(r io.Reader) (*Model, error) {
	header := make([]byte, 16)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	if string(header[:4]) != formatMagic {
		return nil, errors.New("core: not an agingpred model artifact (bad magic)")
	}
	if v := binary.BigEndian.Uint32(header[4:]); v != FormatVersion {
		return nil, fmt.Errorf("core: unsupported model format version %d (this build reads version %d)", v, FormatVersion)
	}
	n := binary.BigEndian.Uint32(header[8:])
	if n > maxPayloadBytes {
		return nil, fmt.Errorf("core: model payload length %d exceeds the %d-byte format limit", n, maxPayloadBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: reading model payload: %w", err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(header[12:]) {
		return nil, errors.New("core: model payload checksum mismatch (corrupt artifact)")
	}
	var p modelPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("core: decoding model payload: %w", err)
	}
	return modelFromPayload(&p)
}

// modelFromPayload validates the payload and rebuilds the Model.
func modelFromPayload(p *modelPayload) (*Model, error) {
	snapshots := 0
	for _, set := range []bool{p.M5P != nil, p.LinReg != nil, p.RegTree != nil} {
		if set {
			snapshots++
		}
	}
	if snapshots != 1 {
		return nil, fmt.Errorf("core: model payload carries %d family snapshots, want exactly 1", snapshots)
	}

	base, err := features.LookupSchema(p.Schema)
	if err != nil {
		return nil, fmt.Errorf("core: the saved model's feature schema is unavailable: %w", err)
	}
	if p.Window <= 0 {
		return nil, fmt.Errorf("core: saved window length %d is not positive", p.Window)
	}
	schema := base.WithWindow(p.Window)
	if !schema.AttrsEqual(p.Attrs) {
		return nil, fmt.Errorf("core: schema %q no longer generates the %d columns the model was saved with (it now has %d); retrain or load with the original schema definition",
			p.Schema, len(p.Attrs), schema.NumAttrs())
	}

	cfg := Config{
		Model:            p.Kind,
		Schema:           schema,
		WindowLength:     p.Window,
		MinLeafInstances: p.MinLeafInstances,
		LeafMaxAttrs:     p.LeafMaxAttrs,
		Unpruned:         p.Unpruned,
		NoSmoothing:      p.NoSmoothing,
		InfiniteTTF:      time.Duration(p.InfiniteTTFSec * float64(time.Second)),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	m := &Model{cfg: cfg, schema: cfg.Schema, attrs: cfg.Schema.Attrs(), report: p.Report}
	switch {
	case p.M5P != nil:
		if p.Kind != ModelM5P {
			return nil, fmt.Errorf("core: payload kind %q carries an m5p snapshot", p.Kind)
		}
		tree, err := m5p.FromSnapshot(p.M5P)
		if err != nil {
			return nil, fmt.Errorf("core: decoding M5P model: %w", err)
		}
		m.reg = tree
		m.m5pTree = tree
	case p.LinReg != nil:
		if p.Kind != ModelLinearRegression {
			return nil, fmt.Errorf("core: payload kind %q carries a linreg snapshot", p.Kind)
		}
		lr, err := linreg.FromSnapshot(p.LinReg)
		if err != nil {
			return nil, fmt.Errorf("core: decoding linear regression model: %w", err)
		}
		m.reg = lr
	default:
		if p.Kind != ModelRegressionTree {
			return nil, fmt.Errorf("core: payload kind %q carries a regtree snapshot", p.Kind)
		}
		rt, err := regtree.FromSnapshot(p.RegTree)
		if err != nil {
			return nil, fmt.Errorf("core: decoding regression tree model: %w", err)
		}
		m.reg = rt
	}
	m.bind()
	return m, nil
}
