package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agingpred/internal/features"
	"agingpred/internal/monitor"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden files")

// encodeToBytes is a test helper: Encode into memory.
func encodeToBytes(t testing.TB, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestEncodeDecodeRoundTrip is the core persistence guarantee: for every
// model family, a decoded model carries the same metadata and produces
// bit-identical predictions to the in-memory one on a stream it never saw.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, kind := range []ModelKind{ModelM5P, ModelLinearRegression, ModelRegressionTree} {
		t.Run(string(kind), func(t *testing.T) {
			m := trainedOn(t, Config{Model: kind})
			raw := encodeToBytes(t, m)
			got, err := DecodeModel(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("DecodeModel: %v", err)
			}
			if got.Kind() != m.Kind() {
				t.Fatalf("kind %q != %q", got.Kind(), m.Kind())
			}
			if got.Report() != m.Report() {
				t.Fatalf("report %+v != %+v", got.Report(), m.Report())
			}
			if got.Schema().Name() != m.Schema().Name() || got.Schema().WindowLength() != m.Schema().WindowLength() {
				t.Fatalf("schema %s/w%d != %s/w%d", got.Schema().Name(), got.Schema().WindowLength(),
					m.Schema().Name(), m.Schema().WindowLength())
			}
			if got.bound == nil {
				t.Fatalf("decoded model did not bind to its schema")
			}
			if cfgA, cfgB := got.Config(), m.Config(); cfgA.MinLeafInstances != cfgB.MinLeafInstances ||
				cfgA.LeafMaxAttrs != cfgB.LeafMaxAttrs || cfgA.InfiniteTTF != cfgB.InfiniteTTF {
				t.Fatalf("config drifted across the round trip: %+v vs %+v", cfgA, cfgB)
			}

			test := leakSeries("roundtrip", 300, 1.7, 0.35)
			a, b := m.NewSession(), got.NewSession()
			for i, cp := range test.Checkpoints {
				pa, err := a.Observe(cp)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := b.Observe(cp)
				if err != nil {
					t.Fatal(err)
				}
				if pa.TTFSec != pb.TTFSec || pa.CrashExpected != pb.CrashExpected {
					t.Fatalf("checkpoint %d: decoded model predicted %v, in-memory %v", i, pb.TTFSec, pa.TTFSec)
				}
			}

			// The model description (tree structure, leaf equations) must
			// survive the round trip too — it is the root-cause surface.
			if got.Description() != m.Description() {
				t.Fatalf("model description changed across the round trip")
			}
		})
	}
}

// TestDecodeModelRejectsCorruption walks the failure modes the envelope is
// designed to catch: wrong magic, wrong version, truncation, payload
// corruption and an over-large length field. Every case must error cleanly.
func TestDecodeModelRejectsCorruption(t *testing.T) {
	m := trainedOn(t, Config{Model: ModelLinearRegression})
	raw := encodeToBytes(t, m)

	corrupt := func(name string, mutate func(b []byte) []byte, wantSub string) {
		t.Run(name, func(t *testing.T) {
			b := mutate(append([]byte(nil), raw...))
			_, err := DecodeModel(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("corrupt artifact decoded successfully")
			}
			if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
				t.Fatalf("error %q does not mention %q", err, wantSub)
			}
		})
	}
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic")
	corrupt("bad-version", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[4:], 99)
		return b
	}, "version 99")
	corrupt("truncated-header", func(b []byte) []byte { return b[:10] }, "header")
	corrupt("truncated-payload", func(b []byte) []byte { return b[:len(b)-7] }, "payload")
	corrupt("flipped-payload-bit", func(b []byte) []byte { b[20] ^= 0x40; return b }, "checksum")
	corrupt("oversized-length", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[8:], maxPayloadBytes+1)
		return b
	}, "limit")
	corrupt("empty", func(b []byte) []byte { return nil }, "")
}

// rewrap re-frames a mutated JSON payload with a fresh, valid envelope so the
// tests below reach the payload-level validation, not the checksum.
func rewrap(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeEnvelope(&buf, payload); err != nil {
		t.Fatalf("writeEnvelope: %v", err)
	}
	return buf.Bytes()
}

// mutatePayload decodes the artifact's payload JSON into a generic map,
// applies the mutation, and re-wraps it.
func mutatePayload(t *testing.T, raw []byte, mutate func(doc map[string]any)) []byte {
	t.Helper()
	n := binary.BigEndian.Uint32(raw[8:])
	var doc map[string]any
	if err := json.Unmarshal(raw[16:16+n], &doc); err != nil {
		t.Fatalf("unmarshal payload: %v", err)
	}
	mutate(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal payload: %v", err)
	}
	return rewrap(t, out)
}

// TestDecodeModelSchemaCompatibility pins the fail-fast schema checks: a
// schema name that is not registered, a column list that no longer matches
// what the schema generates, and a payload whose kind and snapshot disagree.
func TestDecodeModelSchemaCompatibility(t *testing.T) {
	m := trainedOn(t, Config{Model: ModelM5P})
	raw := encodeToBytes(t, m)

	t.Run("unknown-schema", func(t *testing.T) {
		b := mutatePayload(t, raw, func(doc map[string]any) { doc["schema"] = "no-such-schema" })
		_, err := DecodeModel(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "no-such-schema") {
			t.Fatalf("decode with unknown schema: %v", err)
		}
	})
	t.Run("drifted-attrs", func(t *testing.T) {
		b := mutatePayload(t, raw, func(doc map[string]any) {
			attrs := doc["attrs"].([]any)
			attrs[0] = "renamed_column"
		})
		_, err := DecodeModel(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "no longer generates") {
			t.Fatalf("decode with drifted attrs: %v", err)
		}
	})
	t.Run("kind-snapshot-mismatch", func(t *testing.T) {
		b := mutatePayload(t, raw, func(doc map[string]any) { doc["kind"] = "linreg" })
		_, err := DecodeModel(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("decode with mismatched kind succeeded")
		}
	})
	t.Run("no-snapshot", func(t *testing.T) {
		b := mutatePayload(t, raw, func(doc map[string]any) { delete(doc, "m5p") })
		_, err := DecodeModel(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "family snapshots") {
			t.Fatalf("decode without a snapshot: %v", err)
		}
	})
	t.Run("split-attr-out-of-range", func(t *testing.T) {
		b := mutatePayload(t, raw, func(doc map[string]any) {
			tree := doc["m5p"].(map[string]any)
			root := tree["root"].(map[string]any)
			if root["leaf"] != true {
				root["attr"] = float64(10000)
			}
		})
		if _, err := DecodeModel(bytes.NewReader(b)); err == nil {
			t.Fatalf("decode with out-of-range split attribute succeeded")
		}
	})
}

// TestEncodeRequiresRegisteredSchema pins the save-side guard: a model
// trained on a schema the registry cannot reproduce by name must refuse to
// encode instead of writing an artifact that can never load.
func TestEncodeRequiresRegisteredSchema(t *testing.T) {
	schema := features.NewSchemaBuilder("persist-unregistered", 12).
		Resource(features.ResourceDescriptor{
			Key: "old", LevelName: "old_used", Unit: "MB", Direction: features.Growing,
			Level: func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB },
		}).
		Raw("old_used_mb", "MB", func(cp *monitor.Checkpoint) float64 { return cp.OldUsedMB }).
		SpeedDerivatives("old").
		MustBuild()
	m, err := Train(Config{Schema: schema}, []*monitor.Series{
		leakSeries("train-a", 300, 2.0, 0.3),
		leakSeries("train-b", 400, 1.5, 0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("Encode on an unregistered schema: %v", err)
	}
}

// TestGoldenModelFormat pins the serialized format of a deterministic
// "seed-1" model byte for byte: training on the fixed leakSeries streams is
// fully deterministic (no RNG anywhere in extraction or induction), so any
// byte-level change here is a format change and must be deliberate —
// regenerate with `go test -run TestGoldenModelFormat -update-golden` and
// bump FormatVersion if the layout changed incompatibly.
func TestGoldenModelFormat(t *testing.T) {
	m := trainedOn(t, Config{Model: ModelM5P})
	raw := encodeToBytes(t, m)
	golden := filepath.Join("testdata", "model_m5p_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(raw))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(raw, want) {
		i := 0
		for i < len(raw) && i < len(want) && raw[i] == want[i] {
			i++
		}
		t.Fatalf("serialized model diverged from the golden format at byte %d (got %d bytes, want %d); if deliberate, regenerate with -update-golden", i, len(raw), len(want))
	}
	// The golden artifact must of course still load.
	if _, err := DecodeModel(bytes.NewReader(want)); err != nil {
		t.Fatalf("golden artifact does not decode: %v", err)
	}
}

// crc32SanityCheck keeps the import of hash/crc32 honest in this test file:
// the envelope checksum must actually be CRC-32 (IEEE) of the payload, which
// the flipped-bit corruption test above relies on.
func TestEnvelopeChecksumIsCRC32(t *testing.T) {
	m := trainedOn(t, Config{Model: ModelRegressionTree})
	raw := encodeToBytes(t, m)
	n := binary.BigEndian.Uint32(raw[8:])
	want := crc32.ChecksumIEEE(raw[16 : 16+n])
	if got := binary.BigEndian.Uint32(raw[12:]); got != want {
		t.Fatalf("header checksum %08x != CRC-32(payload) %08x", got, want)
	}
}
