package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"agingpred/internal/dataset"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/linreg"
	"agingpred/internal/m5p"
	"agingpred/internal/monitor"
	"agingpred/internal/regtree"
)

// Model is an immutable trained aging-prediction model: the fitted
// M5P/linreg/regtree regressor together with the feature schema it was
// trained under and the schema-bound (index-compiled) form of the regressor.
//
// A Model carries no per-stream state, so it is safe for concurrent use: the
// paper's train-once/serve-everywhere split maps to training (or loading) one
// Model and fanning out one Session per monitored checkpoint stream via
// NewSession. Models are created by Train, TrainDataset or DecodeModel —
// never mutated afterwards.
type Model struct {
	cfg    Config // effective (defaults applied)
	schema *features.Schema
	attrs  []string

	reg     regressor
	m5pTree *m5p.Tree // non-nil only for ModelM5P
	// bound is the regressor compiled against the model's schema (index-
	// based, allocation-free). It is nil when the trained regressor references
	// attributes outside the schema — a dataset trained under a wider schema —
	// in which case sessions fall back to the name-resolving path.
	bound boundRegressor
	// boundCols caches bound.Columns(): the schema columns the bound
	// regressor can read. Sessions project their feature extraction onto
	// this set.
	boundCols []int
	// infiniteSec caches cfg.InfiniteTTF.Seconds(): clamp runs once per
	// prediction and the Duration division is measurable at fleet rates.
	infiniteSec float64
	// fallbackMu serialises the name-resolving fallback: the regressors'
	// Predict caches attribute resolutions lazily, so without the lock
	// concurrent sessions of an unbound model would race on that shared
	// cache. The bound hot path never touches it.
	fallbackMu sync.Mutex

	report TrainReport
}

// Train fits a Model from one or more monitored executions (typically a
// handful of run-to-crash executions at different workloads and injection
// rates, as in the paper). The zero Config reproduces the paper's setup.
func Train(cfg Config, series []*monitor.Series) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return trainEffective(cfg.withDefaults(), series)
}

// TrainDataset fits a Model from an already-extracted dataset (e.g. loaded
// from CSV by cmd/agingpredict). The dataset's columns become the regressor's
// training attributes; they should match the schema selected by cfg, but a
// wider or reordered dataset is accepted — sessions then evaluate through the
// name-resolving path instead of the compiled one.
func TrainDataset(cfg Config, ds *dataset.Dataset) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return fitEffective(cfg.withDefaults(), ds)
}

// trainEffective extracts features under the (already-effective) config's
// schema and fits the model.
func trainEffective(cfg Config, series []*monitor.Series) (*Model, error) {
	if len(series) == 0 {
		return nil, errors.New("core: no training series")
	}
	ds, err := cfg.Schema.ExtractAll("training", series)
	if err != nil {
		return nil, fmt.Errorf("core: extracting training features: %w", err)
	}
	return fitEffective(cfg, ds)
}

// fitEffective fits the selected model family on the dataset. cfg must
// already have its defaults applied.
func fitEffective(cfg Config, ds *dataset.Dataset) (*Model, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("core: empty training dataset")
	}
	m := &Model{
		cfg:    cfg,
		schema: cfg.Schema,
		attrs:  cfg.Schema.Attrs(),
		report: TrainReport{Model: cfg.Model, Instances: ds.Len(), Attributes: ds.NumAttrs(), Schema: cfg.Schema.Name()},
	}
	switch cfg.Model {
	case ModelM5P:
		tree, err := m5p.Fit(ds, m5p.Options{
			MinInstances: cfg.MinLeafInstances,
			Unpruned:     cfg.Unpruned,
			NoSmoothing:  cfg.NoSmoothing,
			LeafMaxAttrs: cfg.LeafMaxAttrs,
		})
		if err != nil {
			return nil, fmt.Errorf("core: fitting M5P: %w", err)
		}
		m.reg = tree
		m.m5pTree = tree
		m.report.Leaves = tree.Leaves()
		m.report.InnerNodes = tree.InnerNodes()
	case ModelLinearRegression:
		lr, err := linreg.Fit(ds, linreg.Options{EliminateAttrs: true})
		if err != nil {
			return nil, fmt.Errorf("core: fitting linear regression: %w", err)
		}
		m.reg = lr
	case ModelRegressionTree:
		rt, err := regtree.Fit(ds, regtree.Options{MinInstances: cfg.MinLeafInstances})
		if err != nil {
			return nil, fmt.Errorf("core: fitting regression tree: %w", err)
		}
		m.reg = rt
		m.report.Leaves = rt.Leaves()
		m.report.InnerNodes = rt.InnerNodes()
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", cfg.Model)
	}
	m.bind()
	return m, nil
}

// bind compiles the regressor against the model's schema: attribute names
// are resolved to row indices once, so Session.Observe needs no lookups and
// no allocations per checkpoint. When the regressor references attributes
// outside the schema (a dataset trained under a wider schema), bound stays
// nil and sessions keep the name-resolving fallback, which reports the
// mismatch per call.
func (m *Model) bind() {
	m.bound = nil
	m.boundCols = nil
	m.infiniteSec = m.cfg.InfiniteTTF.Seconds()
	switch r := m.reg.(type) {
	case *m5p.Tree:
		if bt, err := r.Bind(m.attrs); err == nil {
			m.bound = bt
		}
	case *linreg.Model:
		if bm, err := r.Bind(m.attrs); err == nil {
			m.bound = bm
		}
	case *regtree.Tree:
		if bt, err := r.Bind(m.attrs); err == nil {
			m.bound = bt
		}
	}
	if m.bound != nil {
		m.boundCols = m.bound.Columns()
	}
}

// Kind returns the model family.
func (m *Model) Kind() ModelKind { return m.cfg.Model }

// Config returns the effective configuration the model was trained under.
func (m *Model) Config() Config { return m.cfg }

// Schema returns the feature schema the model extracts and predicts on.
func (m *Model) Schema() *features.Schema { return m.schema }

// Attrs returns the attribute names of the feature vectors the model's
// sessions consume, in row order.
func (m *Model) Attrs() []string { return append([]string(nil), m.attrs...) }

// Report describes the training round (instances, attributes, tree shape).
// For decoded models it is the report of the original training round.
func (m *Model) Report() TrainReport { return m.report }

// clamp post-processes a raw regressor output: predictions are clamped to
// [0, InfiniteTTF] and stamped with the checkpoint time they were issued at.
func (m *Model) clamp(timeSec, raw float64) Prediction {
	infinite := m.infiniteSec
	ttf := raw
	if ttf < 0 {
		ttf = 0
	}
	if ttf > infinite {
		ttf = infinite
	}
	return Prediction{
		TimeSec:       timeSec,
		TTF:           time.Duration(ttf * float64(time.Second)),
		TTFSec:        ttf,
		CrashExpected: ttf < infinite*0.999,
	}
}

// PredictRow predicts the time to failure for a single already-extracted
// feature vector issued at timeSec (pass 0 when the row carries no meaningful
// time). attrs names the columns of row; the row schema may be wider or
// reordered as long as every attribute the regressor uses is present. Use a
// Session for live checkpoints — PredictRow exists for datasets that were
// extracted earlier (e.g. loaded from CSV by cmd/agingpredict).
func (m *Model) PredictRow(timeSec float64, attrs []string, row []float64) (Prediction, error) {
	// The name-resolving Predict lazily caches attribute resolutions inside
	// the shared regressor; serialise it so the Model stays safe for
	// concurrent use even off the compiled hot path.
	m.fallbackMu.Lock()
	raw, err := m.reg.Predict(attrs, row)
	m.fallbackMu.Unlock()
	if err != nil {
		return Prediction{}, fmt.Errorf("core: predicting: %w", err)
	}
	return m.clamp(timeSec, raw), nil
}

// EvaluateDataset evaluates the model on an already-extracted dataset whose
// target column holds the true time to failure — the CSV-level counterpart of
// Evaluate. Checkpoint datasets carry no explicit time column, so each row's
// prediction time is reconstructed as (i+1)·interval (interval <= 0 uses the
// paper's 15-second monitoring interval); for datasets merged from several
// executions the reconstructed times are monotone but synthetic.
func (m *Model) EvaluateDataset(ds *dataset.Dataset, interval time.Duration, opts evalx.Options) (evalx.Report, error) {
	if ds == nil || ds.Len() == 0 {
		return evalx.Report{}, errors.New("core: empty evaluation dataset")
	}
	if interval <= 0 {
		interval = monitor.DefaultInterval
	}
	dt := interval.Seconds()
	attrs := ds.Attrs()
	preds := make([]evalx.Prediction, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		pr, err := m.PredictRow(float64(i+1)*dt, attrs, ds.Row(i))
		if err != nil {
			return evalx.Report{}, err
		}
		preds = append(preds, evalx.Prediction{
			TimeSec:      pr.TimeSec,
			TrueTTF:      ds.TargetValue(i),
			PredictedTTF: pr.TTFSec,
		})
	}
	if opts.Model == "" {
		opts.Model = string(m.cfg.Model)
	}
	return evalx.Evaluate(preds, opts)
}

// PredictSeries replays a monitored series through a fresh session and
// returns one evalx.Prediction per checkpoint, pairing the model output with
// the series' true TTF labels.
func (m *Model) PredictSeries(s *monitor.Series) ([]evalx.Prediction, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("core: empty test series")
	}
	sess := m.NewSession()
	out := make([]evalx.Prediction, 0, s.Len())
	for _, cp := range s.Checkpoints {
		pred, err := sess.Observe(cp)
		if err != nil {
			return nil, err
		}
		out = append(out, evalx.Prediction{
			TimeSec:      cp.TimeSec,
			TrueTTF:      cp.TTFSec,
			PredictedTTF: pred.TTFSec,
		})
	}
	return out, nil
}

// PredictSeriesAgainst is like PredictSeries but evaluates the model output
// against caller-supplied reference TTF labels instead of the series' own
// labels. The paper uses this for experiment 4.2, where the "true" time to
// failure of each checkpoint is defined by freezing the current injection
// rate and simulating until the crash.
func (m *Model) PredictSeriesAgainst(s *monitor.Series, referenceTTF []float64) ([]evalx.Prediction, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("core: empty test series")
	}
	if len(referenceTTF) != s.Len() {
		return nil, fmt.Errorf("core: %d reference labels for %d checkpoints", len(referenceTTF), s.Len())
	}
	preds, err := m.PredictSeries(s)
	if err != nil {
		return nil, err
	}
	for i := range preds {
		preds[i].TrueTTF = referenceTTF[i]
	}
	return preds, nil
}

// Evaluate replays a test series through a fresh session and computes the
// paper's accuracy metrics (MAE, S-MAE, PRE-MAE, POST-MAE).
func (m *Model) Evaluate(s *monitor.Series, opts evalx.Options) (evalx.Report, error) {
	preds, err := m.PredictSeries(s)
	if err != nil {
		return evalx.Report{}, err
	}
	if opts.Model == "" {
		opts.Model = string(m.cfg.Model)
	}
	return evalx.Evaluate(preds, opts)
}

// RootCause inspects the learned model and returns hints about which
// resources are implicated in the coming failure, most significant first.
// Only the M5P family carries the tree structure the paper inspects.
func (m *Model) RootCause(maxDepth int) ([]RootCauseHint, error) {
	if maxDepth <= 0 {
		maxDepth = 3
	}
	if m.m5pTree == nil {
		return nil, fmt.Errorf("core: root-cause hints require an M5P model (have %s)", m.cfg.Model)
	}
	splits := m.m5pTree.TopSplits(maxDepth)
	counts := m.m5pTree.SplitAttributeCounts()
	seen := make(map[string]bool)
	hints := make([]RootCauseHint, 0, len(splits))
	for _, sp := range splits {
		if seen[sp.Attr] {
			continue
		}
		seen[sp.Attr] = true
		hints = append(hints, RootCauseHint{
			Attr:      sp.Attr,
			Threshold: sp.Threshold,
			Depth:     sp.Depth,
			Splits:    counts[sp.Attr],
		})
	}
	return hints, nil
}

// Description returns a human-readable rendering of the learned model (the
// full M5P tree with its leaf equations, or the regression formula).
func (m *Model) Description() string {
	switch r := m.reg.(type) {
	case *m5p.Tree:
		return r.String()
	case *linreg.Model:
		return fmt.Sprintf("%s = %s", features.Target, r.String())
	case *regtree.Tree:
		return r.String()
	default:
		return fmt.Sprintf("%T", m.reg)
	}
}

// Session is the per-stream on-line state of one Model: the sliding-window
// derived-feature extractor for a single monitored checkpoint stream. The
// shared trained Model is read-only; all mutation on the hot path happens in
// the session, so serving many servers means one cheap Session each, all
// observing concurrently against the same Model.
//
// A Session serves one checkpoint stream and is NOT safe for concurrent use
// itself (Observe mutates the sliding windows); sessions are the unit of
// concurrency. Sessions are pooling-friendly: Reset reuses every buffer, so a
// fleet-scale rejuvenation wave allocates nothing.
type Session struct {
	m      *Model
	stream *features.RowExtractor
}

// NewSession creates a fresh per-stream session for the model. For a
// schema-bound model the session's feature extraction is projected onto the
// columns the bound regressor can actually read (Columns of the flattened
// layout): derived columns the model never looks at are not computed at all,
// which is a large share of the per-checkpoint cost for typical M5P trees.
// Projection cannot change any prediction — the computed columns go through
// exactly the full extractor's arithmetic, and the skipped ones are, by
// construction, never read.
func (m *Model) NewSession() *Session {
	mSessions.Inc()
	if m.bound != nil {
		if stream, err := m.schema.StreamFor(m.boundCols); err == nil {
			return &Session{m: m, stream: stream}
		}
	}
	return &Session{m: m, stream: m.schema.Stream()}
}

// Model returns the shared model the session predicts with.
func (s *Session) Model() *Model { return s.m }

// Observe consumes one live checkpoint of the session's stream and returns
// the prediction for it. In steady state it performs no allocations: the
// feature row is computed into the session's reusable buffer by the compiled
// schema extractor and the regressor is evaluated through its schema-bound
// form (BenchmarkObserve pins 0 allocs/op).
func (s *Session) Observe(cp monitor.Checkpoint) (Prediction, error) {
	mPredictions.Inc()
	row := s.stream.Step(cp)
	m := s.m
	if m.bound != nil {
		return m.clamp(cp.TimeSec, m.bound.Predict(row)), nil
	}
	// Name-resolving fallback for models whose regressor could not be bound
	// to the schema (trained on a wider dataset); PredictRow serialises the
	// shared regressor's lazy resolution cache, so concurrent sessions stay
	// correct — they just lose the lock-free hot path.
	return m.PredictRow(cp.TimeSec, m.attrs, row)
}

// Reset clears the session's sliding-window state (use after a rejuvenation
// action or when re-pointing the session at a different server). It reuses
// the existing buffers, so resetting allocates nothing.
func (s *Session) Reset() {
	s.stream.Reset()
}
