package core

import "agingpred/internal/obs"

// The serving layer's metric series, resolved once at package init so the
// Observe/Predict hot paths pay one atomic gate load plus one atomic add per
// update — no lookups, no allocations, and never a read back into control
// flow (metrics are observation-only, which is what keeps the deterministic
// simulations byte-identical with instrumentation compiled in).
var (
	mPredictions = obs.Default.Counter("agingpred_predictions_total",
		"On-line TTF predictions served, across every Session.Observe and Batch.Predict.")
	mSessions = obs.Default.Counter("agingpred_sessions_opened_total",
		"Per-stream serving sessions created with Model.NewSession.")
)
