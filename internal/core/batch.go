package core

import (
	"fmt"

	"agingpred/internal/features"
	"agingpred/internal/monitor"
)

// Batch evaluates one checkpoint for each of many sessions of the same Model
// in a single pass. The per-stream feature rows are staged back to back in a
// contiguous struct-of-arrays buffer (features.RowBatch) and the regressor is
// evaluated over the whole batch at once (PredictBatch on the flattened,
// schema-bound form), so a shard of a server fleet costs one cache-friendly
// sweep per tick instead of one independent pointer walk per instance.
//
// Batch predictions are bit-for-bit identical to calling Session.Observe on
// each session in staging order: staging runs the very same projected
// extractor step, and PredictBatch is defined as the scalar Predict applied
// row by row (the differential suite in internal/difftest pins this).
//
// A Batch is reused tick after tick — Reset keeps every buffer, so
// steady-state batch serving allocates nothing. It serves one goroutine
// (e.g. one fleet shard worker) and is not safe for concurrent use; the
// sessions staged into it follow the usual Session ownership rules.
type Batch struct {
	m     *Model
	rows  *features.RowBatch
	times []float64
	raw   []float64
	preds []Prediction
}

// NewBatch creates an empty prediction batch for the model, with buffers
// pre-allocated for capacity rows (the expected shard size; the batch grows
// past it if needed).
func (m *Model) NewBatch(capacity int) *Batch {
	if capacity < 0 {
		capacity = 0
	}
	return &Batch{
		m:     m,
		rows:  features.NewRowBatch(len(m.attrs), capacity),
		times: make([]float64, 0, capacity),
		raw:   make([]float64, capacity),
		preds: make([]Prediction, capacity),
	}
}

// Model returns the shared model the batch predicts with.
func (b *Batch) Model() *Model { return b.m }

// Len returns the number of staged rows.
func (b *Batch) Len() int { return b.rows.Len() }

// Reset empties the batch for the next tick, keeping all backing storage.
func (b *Batch) Reset() {
	b.rows.Reset()
	b.times = b.times[:0]
}

// Stage advances one session by one checkpoint, writing its feature row into
// the batch's buffer. It is exactly the extraction half of Session.Observe —
// the same projected extractor step, mutating the same sliding-window state —
// with the regressor evaluation deferred to Predict. The session must belong
// to the batch's model.
func (b *Batch) Stage(s *Session, cp *monitor.Checkpoint) error {
	if s.m != b.m {
		return fmt.Errorf("core: staging a session of a different model into batch")
	}
	s.stream.StepInto(cp, b.rows.Next())
	b.times = append(b.times, cp.TimeSec)
	return nil
}

// Predict evaluates the regressor over every staged row and returns one
// Prediction per row, in staging order. The returned slice is valid until the
// next call to Predict or Reset. Results are bit-identical to Session.Observe
// on each staged session.
func (b *Batch) Predict() ([]Prediction, error) {
	n := b.rows.Len()
	mPredictions.Add(uint64(n))
	if cap(b.raw) < n {
		b.raw = make([]float64, n)
		b.preds = make([]Prediction, n)
	}
	raw, preds := b.raw[:n], b.preds[:n]
	m := b.m
	if m.bound != nil {
		m.bound.PredictBatch(b.rows.Rows(), raw)
		for i := 0; i < n; i++ {
			preds[i] = m.clamp(b.times[i], raw[i])
		}
		return preds, nil
	}
	// Name-resolving fallback for unbound models: row-by-row through the
	// serialised PredictRow path, same as Session.Observe would take.
	rows := b.rows.Rows()
	for i := 0; i < n; i++ {
		pr, err := m.PredictRow(b.times[i], m.attrs, rows[i])
		if err != nil {
			return nil, err
		}
		preds[i] = pr
	}
	return preds, nil
}
