// Package monitor implements the monitoring subsystem of the paper's
// framework: it samples the application server every 15 seconds (one
// "checkpoint" or training instance), records the raw variables of Table 2,
// and — once the run has ended — labels every checkpoint with its true time
// to failure so the series can be turned into a training or test dataset.
//
// Checkpoints hold only the directly-observed metrics; the derived variables
// (consumption speeds, sliding-window averages, ratios) are computed by
// internal/features, because which derived variables are used differs per
// experiment (Table 2's per-experiment columns).
package monitor

import (
	"errors"
	"fmt"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/simclock"
)

// DefaultInterval is the checkpoint interval used throughout the paper
// (15 seconds per mark; the sliding-window delay discussion in Section 4.2
// relies on it).
const DefaultInterval = 15 * time.Second

// InfiniteTTFSec is the label used for checkpoints of executions that never
// crash. The paper trains the model "to determinate as an infinite time until
// crash as 3 hours (10800 secs)".
const InfiniteTTFSec = 10800.0

// Checkpoint is one 15-second observation of the system: the raw variables
// of Table 2 plus bookkeeping needed to derive the rest.
type Checkpoint struct {
	// TimeSec is the simulated time of the checkpoint, seconds.
	TimeSec float64

	// Throughput is completed requests per second over the last interval.
	Throughput float64
	// Workload is the number of concurrent EBs driving the system.
	Workload float64
	// ResponseTimeSec is the mean response time over the last interval.
	ResponseTimeSec float64
	// SystemLoad is the mean number of busy workers over the last interval
	// (a UNIX-style load average).
	SystemLoad float64

	// DiskUsedMB, SwapFreeMB, NumProcesses, SystemMemUsedMB are the
	// machine-level metrics.
	DiskUsedMB      float64
	SwapFreeMB      float64
	NumProcesses    float64
	SystemMemUsedMB float64

	// TomcatMemUsedMB is the application-server process memory from the OS
	// perspective.
	TomcatMemUsedMB float64
	// NumThreads is the total thread count of the server process.
	NumThreads float64
	// NumHTTPConns and NumMySQLConns are the connection gauges.
	NumHTTPConns  float64
	NumMySQLConns float64

	// JVM-perspective heap metrics (per zone).
	YoungMaxMB  float64
	OldMaxMB    float64
	YoungUsedMB float64
	OldUsedMB   float64
	YoungPct    float64
	OldPct      float64

	// TTFSec is the label: true time to failure at this checkpoint, filled
	// in by Collector.Finish. For non-crashing executions it is
	// InfiniteTTFSec.
	TTFSec float64
}

// Series is a complete monitored execution: its checkpoints plus the outcome.
type Series struct {
	// Name identifies the execution ("train-100EB-N30", ...).
	Name string
	// IntervalSec is the checkpoint interval in seconds.
	IntervalSec float64
	// Workload is the EB count of the execution.
	Workload int
	// Checkpoints are the observations in time order.
	Checkpoints []Checkpoint
	// Crashed says whether the execution ended in a failure.
	Crashed bool
	// CrashTimeSec is the failure time (valid only if Crashed).
	CrashTimeSec float64
	// CrashReason describes the failure (valid only if Crashed).
	CrashReason string
}

// Len returns the number of checkpoints.
func (s *Series) Len() int { return len(s.Checkpoints) }

// Duration returns the time span covered by the series, in seconds.
func (s *Series) Duration() float64 {
	if len(s.Checkpoints) == 0 {
		return 0
	}
	return s.Checkpoints[len(s.Checkpoints)-1].TimeSec
}

// Collector samples an application server on a fixed interval.
type Collector struct {
	server   *appserver.Server
	sched    *simclock.Scheduler
	interval time.Duration
	workload int
	name     string

	workloadFn  func() int
	prev        appserver.Snapshot
	checkpoints []Checkpoint
	started     bool
	cancel      func()
}

// SetWorkloadFn makes the collector sample the current EB population at
// every checkpoint instead of reporting the constant passed to NewCollector.
// Varying-load runs (testbed.WorkloadPhases) need it so the workload feature
// tracks the load the server actually sees; it must be set before Start.
func (c *Collector) SetWorkloadFn(fn func() int) { c.workloadFn = fn }

// NewCollector creates a collector for the given server. workload is the EB
// count of the run (the server does not know it). A non-positive interval
// means DefaultInterval.
func NewCollector(name string, server *appserver.Server, sched *simclock.Scheduler, workload int, interval time.Duration) (*Collector, error) {
	if server == nil {
		return nil, errors.New("monitor: nil server")
	}
	if sched == nil {
		return nil, errors.New("monitor: nil scheduler")
	}
	if workload < 0 {
		return nil, fmt.Errorf("monitor: negative workload %d", workload)
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Collector{
		name:     name,
		server:   server,
		sched:    sched,
		interval: interval,
		workload: workload,
	}, nil
}

// Start begins sampling. The first checkpoint is taken one interval from now.
func (c *Collector) Start() error {
	if c.started {
		return errors.New("monitor: collector already started")
	}
	c.started = true
	c.prev = c.server.Snapshot()
	cancel, err := c.sched.Every(c.interval, c.sample)
	if err != nil {
		return fmt.Errorf("monitor: scheduling checkpoints: %w", err)
	}
	c.cancel = cancel
	return nil
}

// Stop stops sampling (idempotent).
func (c *Collector) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// Count returns how many checkpoints have been collected so far.
func (c *Collector) Count() int { return len(c.checkpoints) }

// Last returns the most recent checkpoint and whether one exists.
func (c *Collector) Last() (Checkpoint, bool) {
	if len(c.checkpoints) == 0 {
		return Checkpoint{}, false
	}
	return c.checkpoints[len(c.checkpoints)-1], true
}

// sample records one checkpoint.
func (c *Collector) sample() {
	snap := c.server.Snapshot()
	workload := c.workload
	if c.workloadFn != nil {
		workload = c.workloadFn()
	}
	cp := MakeCheckpoint(c.prev, snap, workload, c.interval.Seconds())
	c.checkpoints = append(c.checkpoints, cp)
	c.prev = snap
}

// MakeCheckpoint converts a pair of consecutive server snapshots into one
// checkpoint: cumulative counters become per-interval rates, gauges are taken
// from the current snapshot. It is exported so tests and the features
// pipeline can build checkpoints without a live collector.
func MakeCheckpoint(prev, cur appserver.Snapshot, workload int, intervalSec float64) Checkpoint {
	if intervalSec <= 0 {
		intervalSec = DefaultInterval.Seconds()
	}
	completed := float64(cur.CompletedRequests - prev.CompletedRequests)
	respSum := cur.SumResponseSec - prev.SumResponseSec
	respTime := 0.0
	if completed > 0 {
		respTime = respSum / completed
	}
	load := (cur.LoadIntegral - prev.LoadIntegral) / intervalSec
	youngPct := 0.0
	if cur.YoungMaxMB > 0 {
		youngPct = 100 * cur.YoungUsedMB / cur.YoungMaxMB
	}
	oldPct := 0.0
	if cur.OldMaxMB > 0 {
		oldPct = 100 * cur.OldUsedMB / cur.OldMaxMB
	}
	return Checkpoint{
		TimeSec:         cur.TimeSec,
		Throughput:      completed / intervalSec,
		Workload:        float64(workload),
		ResponseTimeSec: respTime,
		SystemLoad:      load,
		DiskUsedMB:      cur.DiskUsedMB,
		SwapFreeMB:      cur.SwapFreeMB,
		NumProcesses:    float64(cur.NumProcesses),
		SystemMemUsedMB: cur.SystemMemUsedMB,
		TomcatMemUsedMB: cur.TomcatMemoryMB,
		NumThreads:      float64(cur.NumThreads),
		NumHTTPConns:    float64(cur.HTTPConnections),
		NumMySQLConns:   float64(cur.MySQLConnections),
		YoungMaxMB:      cur.YoungMaxMB,
		OldMaxMB:        cur.OldMaxMB,
		YoungUsedMB:     cur.YoungUsedMB,
		OldUsedMB:       cur.OldUsedMB,
		YoungPct:        youngPct,
		OldPct:          oldPct,
	}
}

// Finish stops the collector, labels every checkpoint with its time to
// failure and returns the completed series.
//
// For crashed runs the label is crashTime − checkpointTime; checkpoints taken
// after the crash (there should be none, but be safe) get zero. For runs that
// never crash every checkpoint is labelled InfiniteTTFSec, following the
// paper's convention for the "no aging" training execution.
func (c *Collector) Finish() *Series {
	c.Stop()
	crashed := c.server.Crashed()
	crashTime := c.server.CrashTime().Seconds()
	s := &Series{
		Name:        c.name,
		IntervalSec: c.interval.Seconds(),
		Workload:    c.workload,
		Checkpoints: append([]Checkpoint(nil), c.checkpoints...),
		Crashed:     crashed,
	}
	if crashed {
		s.CrashTimeSec = crashTime
		s.CrashReason = string(c.server.CrashReason())
	}
	for i := range s.Checkpoints {
		if crashed {
			ttf := crashTime - s.Checkpoints[i].TimeSec
			if ttf < 0 {
				ttf = 0
			}
			s.Checkpoints[i].TTFSec = ttf
		} else {
			s.Checkpoints[i].TTFSec = InfiniteTTFSec
		}
	}
	return s
}
