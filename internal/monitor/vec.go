package monitor

import "unsafe"

// NumFields is the number of float64 fields of a Checkpoint, in declaration
// order. Vec relies on the struct being exactly this many contiguous
// float64s; the compile-time guard below and TestCheckpointVecLayout keep the
// constant honest when fields are added.
const NumFields = 20

// Compile-time guard: a Checkpoint is exactly NumFields packed float64s. If a
// field of another type (or padding) ever appears, this constant goes
// negative and the package stops compiling.
const _ = uint64(NumFields*8 - unsafe.Sizeof(Checkpoint{}))
const _ = uint64(unsafe.Sizeof(Checkpoint{}) - NumFields*8)

// Vec views the checkpoint as its flat field vector, in declaration order.
// The checkpoint schema is a plain record of float64 metrics, so the feature
// pipeline can compile its column accessors down to field indices and read
// them as array loads instead of one indirect call per column per checkpoint
// — the dominant cost of a feature-extraction step at fleet rates. The
// returned array aliases the checkpoint and is valid for its lifetime.
func (cp *Checkpoint) Vec() *[NumFields]float64 {
	return (*[NumFields]float64)(unsafe.Pointer(cp))
}
