package monitor

import (
	"math"
	"testing"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

func newServer(t testing.TB) (*appserver.Server, *simclock.Scheduler) {
	t.Helper()
	sched := simclock.NewScheduler(nil)
	srv, err := appserver.New(appserver.Config{}, sched, rng.New(4321))
	if err != nil {
		t.Fatalf("appserver.New: %v", err)
	}
	return srv, sched
}

func TestNewCollectorValidation(t *testing.T) {
	srv, sched := newServer(t)
	if _, err := NewCollector("x", nil, sched, 10, 0); err == nil {
		t.Fatalf("nil server accepted")
	}
	if _, err := NewCollector("x", srv, nil, 10, 0); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := NewCollector("x", srv, sched, -1, 0); err == nil {
		t.Fatalf("negative workload accepted")
	}
	c, err := NewCollector("x", srv, sched, 10, 0)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if c.interval != DefaultInterval {
		t.Fatalf("default interval = %v", c.interval)
	}
}

func TestCollectorSamplesAtInterval(t *testing.T) {
	srv, sched := newServer(t)
	c, err := NewCollector("run", srv, sched, 25, 15*time.Second)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Start(); err == nil {
		t.Fatalf("second Start succeeded")
	}
	sched.RunUntil(5 * time.Minute)
	if got := c.Count(); got != 20 {
		t.Fatalf("collected %d checkpoints in 5 min at 15 s, want 20", got)
	}
	last, ok := c.Last()
	if !ok {
		t.Fatalf("Last() reported no checkpoints")
	}
	if last.TimeSec != 300 {
		t.Fatalf("last checkpoint at %v s, want 300", last.TimeSec)
	}
	if last.Workload != 25 {
		t.Fatalf("workload = %v, want 25", last.Workload)
	}
	c.Stop()
	c.Stop() // idempotent
	sched.RunUntil(10 * time.Minute)
	if got := c.Count(); got != 20 {
		t.Fatalf("collector kept sampling after Stop: %d", got)
	}
}

func TestCollectorLastOnEmpty(t *testing.T) {
	srv, sched := newServer(t)
	c, _ := NewCollector("run", srv, sched, 10, 0)
	if _, ok := c.Last(); ok {
		t.Fatalf("Last() reported a checkpoint before any sampling")
	}
}

func TestMakeCheckpointRates(t *testing.T) {
	prev := appserver.Snapshot{
		CompletedRequests: 100,
		SumResponseSec:    20,
		LoadIntegral:      100,
	}
	cur := appserver.Snapshot{
		TimeSec:           60,
		CompletedRequests: 160, // 60 completed in the interval
		SumResponseSec:    35,  // 15 s of response time over 60 requests
		LoadIntegral:      190, // 90 busy-worker-seconds over 15 s
		YoungUsedMB:       64,
		YoungMaxMB:        128,
		OldUsedMB:         416,
		OldMaxMB:          832,
		TomcatMemoryMB:    700,
		SystemMemUsedMB:   1200,
		NumThreads:        260,
		HTTPConnections:   12,
		MySQLConnections:  7,
		DiskUsedMB:        12345,
		SwapFreeMB:        2048,
		NumProcesses:      118,
	}
	cp := MakeCheckpoint(prev, cur, 100, 15)
	if cp.Throughput != 4 {
		t.Fatalf("Throughput = %v, want 4 req/s", cp.Throughput)
	}
	if math.Abs(cp.ResponseTimeSec-0.25) > 1e-12 {
		t.Fatalf("ResponseTimeSec = %v, want 0.25", cp.ResponseTimeSec)
	}
	if cp.SystemLoad != 6 {
		t.Fatalf("SystemLoad = %v, want 6", cp.SystemLoad)
	}
	if cp.YoungPct != 50 || cp.OldPct != 50 {
		t.Fatalf("zone percentages = %v/%v, want 50/50", cp.YoungPct, cp.OldPct)
	}
	if cp.Workload != 100 || cp.TimeSec != 60 {
		t.Fatalf("workload/time = %v/%v", cp.Workload, cp.TimeSec)
	}
	if cp.TomcatMemUsedMB != 700 || cp.NumThreads != 260 || cp.NumHTTPConns != 12 || cp.NumMySQLConns != 7 {
		t.Fatalf("gauges not copied: %+v", cp)
	}
}

func TestMakeCheckpointZeroTraffic(t *testing.T) {
	prev := appserver.Snapshot{CompletedRequests: 50, SumResponseSec: 10}
	cur := appserver.Snapshot{TimeSec: 15, CompletedRequests: 50, SumResponseSec: 10}
	cp := MakeCheckpoint(prev, cur, 10, 15)
	if cp.Throughput != 0 || cp.ResponseTimeSec != 0 {
		t.Fatalf("zero traffic produced throughput %v, response %v", cp.Throughput, cp.ResponseTimeSec)
	}
	// Zero or negative interval falls back to the default.
	cp = MakeCheckpoint(prev, cur, 10, 0)
	if cp.Throughput != 0 {
		t.Fatalf("fallback interval produced %v", cp.Throughput)
	}
}

func TestFinishLabelsCrashedRun(t *testing.T) {
	srv, sched := newServer(t)
	c, err := NewCollector("crash-run", srv, sched, 50, 15*time.Second)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Schedule a crash at t = 100 s via an injected OOM.
	if _, err := sched.At(100*time.Second, func() {
		srv.Crash(appserver.CrashOutOfMemory)
	}); err != nil {
		t.Fatalf("At: %v", err)
	}
	sched.RunUntil(100 * time.Second)
	s := c.Finish()
	if !s.Crashed || s.CrashTimeSec != 100 {
		t.Fatalf("series crash info = %v/%v", s.Crashed, s.CrashTimeSec)
	}
	if s.CrashReason == "" {
		t.Fatalf("crash reason missing")
	}
	if s.Len() != 6 {
		t.Fatalf("series has %d checkpoints, want 6 (15..90 s)", s.Len())
	}
	for i, cp := range s.Checkpoints {
		want := 100 - cp.TimeSec
		if math.Abs(cp.TTFSec-want) > 1e-9 {
			t.Fatalf("checkpoint %d at %v s has TTF %v, want %v", i, cp.TimeSec, cp.TTFSec, want)
		}
	}
	if s.Workload != 50 || s.IntervalSec != 15 || s.Name != "crash-run" {
		t.Fatalf("series metadata wrong: %+v", s)
	}
	if got := s.Duration(); got != 90 {
		t.Fatalf("Duration = %v, want 90", got)
	}
}

func TestFinishLabelsHealthyRunAsInfinite(t *testing.T) {
	srv, sched := newServer(t)
	c, err := NewCollector("healthy", srv, sched, 10, 15*time.Second)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(2 * time.Minute)
	s := c.Finish()
	if s.Crashed {
		t.Fatalf("healthy run marked as crashed")
	}
	for _, cp := range s.Checkpoints {
		if cp.TTFSec != InfiniteTTFSec {
			t.Fatalf("healthy run checkpoint labelled %v, want %v", cp.TTFSec, InfiniteTTFSec)
		}
	}
}

func TestSeriesDurationEmpty(t *testing.T) {
	s := &Series{}
	if s.Duration() != 0 || s.Len() != 0 {
		t.Fatalf("empty series Duration/Len = %v/%v", s.Duration(), s.Len())
	}
}

func TestCollectorObservesRealTraffic(t *testing.T) {
	srv, sched := newServer(t)
	gen, err := tpcw.NewGenerator(tpcw.Config{EBs: 30}, sched, srv, rng.New(5))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	c, err := NewCollector("traffic", srv, sched, 30, 15*time.Second)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := gen.Start(); err != nil {
		t.Fatalf("gen.Start: %v", err)
	}
	sched.RunUntil(10 * time.Minute)
	s := c.Finish()
	if s.Len() == 0 {
		t.Fatalf("no checkpoints collected")
	}
	// After warm-up the throughput should be positive and response times
	// small but non-zero.
	warm := s.Checkpoints[len(s.Checkpoints)/2:]
	var posThroughput, posResp int
	for _, cp := range warm {
		if cp.Throughput > 0 {
			posThroughput++
		}
		if cp.ResponseTimeSec > 0 {
			posResp++
		}
		if cp.TomcatMemUsedMB <= 0 || cp.NumThreads <= 0 {
			t.Fatalf("checkpoint missing gauges: %+v", cp)
		}
	}
	if posThroughput < len(warm)*3/4 || posResp < len(warm)*3/4 {
		t.Fatalf("traffic not visible in checkpoints: %d/%d positive throughput", posThroughput, len(warm))
	}
}
