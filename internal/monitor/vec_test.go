package monitor

import (
	"reflect"
	"testing"
)

// TestCheckpointVecLayout pins the assumption Vec builds on: a Checkpoint is
// exactly NumFields float64 fields with no padding, and Vec's array order is
// the declaration order.
func TestCheckpointVecLayout(t *testing.T) {
	typ := reflect.TypeOf(Checkpoint{})
	if typ.NumField() != NumFields {
		t.Fatalf("Checkpoint has %d fields, NumFields is %d", typ.NumField(), NumFields)
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Float64 {
			t.Fatalf("Checkpoint field %s is %v, not float64", f.Name, f.Type)
		}
		if f.Offset != uintptr(i)*8 {
			t.Fatalf("Checkpoint field %s at offset %d, want %d", f.Name, f.Offset, i*8)
		}
	}

	var cp Checkpoint
	v := cp.Vec()
	for i := range v {
		v[i] = float64(i + 1)
	}
	rv := reflect.ValueOf(cp)
	for i := 0; i < rv.NumField(); i++ {
		if got := rv.Field(i).Float(); got != float64(i+1) {
			t.Fatalf("Vec index %d wrote %v into field %s", i, got, typ.Field(i).Name)
		}
	}
}
