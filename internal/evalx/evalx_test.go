package evalx

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPredictionAbsError(t *testing.T) {
	p := Prediction{TrueTTF: 600, PredictedTTF: 720}
	if got := p.AbsError(); got != 120 {
		t.Fatalf("AbsError = %v, want 120", got)
	}
	p = Prediction{TrueTTF: 600, PredictedTTF: 480}
	if got := p.AbsError(); got != 120 {
		t.Fatalf("AbsError = %v, want 120", got)
	}
}

func TestSoftAbsErrorMatchesPaperExample(t *testing.T) {
	// Paper: real TTF of 10 minutes, predictions between 9 and 11 minutes
	// count as zero error; a 13 (or 7) minute prediction counts 2 minutes.
	tests := []struct {
		predicted float64
		want      float64
	}{
		{predicted: 11 * 60, want: 0},
		{predicted: 9 * 60, want: 0},
		{predicted: 10 * 60, want: 0},
		{predicted: 13 * 60, want: 3 * 60},
		{predicted: 7 * 60, want: 3 * 60},
	}
	for _, tt := range tests {
		p := Prediction{TrueTTF: 10 * 60, PredictedTTF: tt.predicted}
		if got := p.SoftAbsError(DefaultSecurityMargin); got != tt.want {
			t.Errorf("SoftAbsError(pred=%v) = %v, want %v", tt.predicted, got, tt.want)
		}
	}
}

func TestEvaluateBasic(t *testing.T) {
	preds := []Prediction{
		{TimeSec: 0, TrueTTF: 1000, PredictedTTF: 1100}, // err 100, outside 10% (margin 100) -> soft 0? edge: err == margin -> 0
		{TimeSec: 500, TrueTTF: 500, PredictedTTF: 800}, // err 300, soft 300
		{TimeSec: 900, TrueTTF: 100, PredictedTTF: 105}, // err 5, soft 0 (within 10)
		{TimeSec: 950, TrueTTF: 50, PredictedTTF: 40},   // err 10, soft 10 (margin 5)
	}
	rep, err := Evaluate(preds, Options{Model: "M5P"})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.N != 4 {
		t.Fatalf("N = %d, want 4", rep.N)
	}
	wantMAE := (100.0 + 300 + 5 + 10) / 4
	if math.Abs(rep.MAE-wantMAE) > 1e-9 {
		t.Fatalf("MAE = %v, want %v", rep.MAE, wantMAE)
	}
	wantSMAE := (0.0 + 300 + 0 + 10) / 4
	if math.Abs(rep.SMAE-wantSMAE) > 1e-9 {
		t.Fatalf("SMAE = %v, want %v", rep.SMAE, wantSMAE)
	}
	// POST region: TrueTTF <= 600s. Predictions 2, 3, 4 qualify (500, 100, 50).
	wantPost := (300.0 + 5 + 10) / 3
	if math.Abs(rep.PostMAE-wantPost) > 1e-9 {
		t.Fatalf("PostMAE = %v, want %v", rep.PostMAE, wantPost)
	}
	wantPre := 100.0
	if math.Abs(rep.PreMAE-wantPre) > 1e-9 {
		t.Fatalf("PreMAE = %v, want %v", rep.PreMAE, wantPre)
	}
	if rep.Model != "M5P" {
		t.Fatalf("Model = %q", rep.Model)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, Options{}); err == nil {
		t.Fatalf("Evaluate(nil) succeeded")
	}
	preds := []Prediction{{TrueTTF: 100, PredictedTTF: math.NaN()}}
	if _, err := Evaluate(preds, Options{}); err == nil {
		t.Fatalf("Evaluate with NaN prediction succeeded")
	}
	preds = []Prediction{{TrueTTF: math.Inf(1), PredictedTTF: 1}}
	if _, err := Evaluate(preds, Options{}); err == nil {
		t.Fatalf("Evaluate with Inf true value succeeded")
	}
	good := []Prediction{{TrueTTF: 100, PredictedTTF: 90}}
	if _, err := Evaluate(good, Options{Margin: -0.5}); err == nil {
		t.Fatalf("Evaluate with negative margin succeeded")
	}
	if _, err := Evaluate(good, Options{Margin: 1.5}); err == nil {
		t.Fatalf("Evaluate with margin >= 1 succeeded")
	}
	if _, err := Evaluate(good, Options{PostWindow: -time.Minute}); err == nil {
		t.Fatalf("Evaluate with negative post window succeeded")
	}
}

func TestEvaluateCustomMarginAndWindow(t *testing.T) {
	preds := []Prediction{
		{TrueTTF: 1000, PredictedTTF: 1150}, // err 150
		{TrueTTF: 200, PredictedTTF: 260},   // err 60
	}
	rep, err := Evaluate(preds, Options{Margin: 0.2, PostWindow: 5 * time.Minute})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// 20% margin: first prediction within 200 -> 0; second within 40 -> 60.
	wantSMAE := (0.0 + 60) / 2
	if math.Abs(rep.SMAE-wantSMAE) > 1e-9 {
		t.Fatalf("SMAE = %v, want %v", rep.SMAE, wantSMAE)
	}
	// POST window 300s: only the second prediction (TTF 200) is POST.
	if rep.PostMAE != 60 || rep.PreMAE != 150 {
		t.Fatalf("Pre/Post = %v/%v, want 150/60", rep.PreMAE, rep.PostMAE)
	}
	if rep.Margin != 0.2 || rep.PostWindowSec != 300 {
		t.Fatalf("report did not record options: %+v", rep)
	}
}

func TestEvaluateAllPostOrAllPre(t *testing.T) {
	allPost := []Prediction{{TrueTTF: 10, PredictedTTF: 20}}
	rep, err := Evaluate(allPost, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.PreMAE != 0 {
		t.Fatalf("PreMAE with no PRE predictions = %v, want 0", rep.PreMAE)
	}
	allPre := []Prediction{{TrueTTF: 10000, PredictedTTF: 9000}}
	rep, err = Evaluate(allPre, Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.PostMAE != 0 {
		t.Fatalf("PostMAE with no POST predictions = %v, want 0", rep.PostMAE)
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{in: 914, want: "15 min 14 secs"},
		{in: 346, want: "5 min 46 secs"},
		{in: 21, want: "21 secs"},
		{in: 0, want: "0 secs"},
		{in: 59.6, want: "1 min 0 secs"},
		{in: -90, want: "-1 min 30 secs"},
		{in: math.NaN(), want: "n/a"},
		{in: math.Inf(1), want: "n/a"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.in); got != tt.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestReportStringAndTable(t *testing.T) {
	r1 := Report{Model: "Lin. Reg", MAE: 1175, SMAE: 857, PreMAE: 1273, PostMAE: 311, N: 100}
	r2 := Report{Model: "M5P", MAE: 914, SMAE: 574, PreMAE: 982, PostMAE: 140, N: 100}
	s := r1.String()
	if !strings.Contains(s, "Lin. Reg") || !strings.Contains(s, "MAE=") {
		t.Fatalf("Report.String() = %q", s)
	}
	tbl := Table("Exp 4.1 75EBs", []Report{r1, r2})
	for _, want := range []string{"Exp 4.1 75EBs", "M5P", "Lin. Reg", "MAE", "S-MAE", "PRE-MAE", "POST-MAE", "15 min 14 secs"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table output missing %q:\n%s", want, tbl)
		}
	}
}

// Property: S-MAE is never greater than MAE (the paper states this as a
// definitional fact), and both are non-negative.
func TestSMAENeverExceedsMAEProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var preds []Prediction
		for i := 0; i+1 < len(raw); i += 2 {
			tv, pv := raw[i], raw[i+1]
			if math.IsNaN(tv) || math.IsInf(tv, 0) || math.IsNaN(pv) || math.IsInf(pv, 0) {
				continue
			}
			preds = append(preds, Prediction{TrueTTF: math.Abs(tv), PredictedTTF: pv})
		}
		if len(preds) == 0 {
			return true
		}
		rep, err := Evaluate(preds, Options{})
		if err != nil {
			return false
		}
		return rep.SMAE <= rep.MAE+1e-9 && rep.MAE >= 0 && rep.SMAE >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAE is the weighted combination of PRE-MAE and POST-MAE.
func TestMAEDecompositionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var preds []Prediction
		for i := 0; i+1 < len(raw); i += 2 {
			tv, pv := raw[i], raw[i+1]
			if math.IsNaN(tv) || math.IsInf(tv, 0) || math.IsNaN(pv) || math.IsInf(pv, 0) {
				continue
			}
			if math.Abs(tv) > 1e15 || math.Abs(pv) > 1e15 {
				continue
			}
			preds = append(preds, Prediction{TrueTTF: math.Abs(tv), PredictedTTF: pv})
		}
		if len(preds) == 0 {
			return true
		}
		rep, err := Evaluate(preds, Options{})
		if err != nil {
			return false
		}
		nPost := 0
		for _, p := range preds {
			if p.TrueTTF <= rep.PostWindowSec {
				nPost++
			}
		}
		nPre := len(preds) - nPost
		recomposed := (rep.PreMAE*float64(nPre) + rep.PostMAE*float64(nPost)) / float64(len(preds))
		return math.Abs(recomposed-rep.MAE) <= 1e-6*(1+math.Abs(rep.MAE))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
