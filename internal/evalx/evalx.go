// Package evalx implements the accuracy metrics the paper reports for every
// experiment: MAE, S-MAE (soft MAE with a security margin), and the
// PRE-MAE / POST-MAE split that separates the last minutes before the crash
// from the rest of the run.
//
// All times are expressed in seconds. Formatting helpers render durations in
// the paper's "X min Y secs" style so that EXPERIMENTS.md tables read like
// the original Tables 3 and 4.
package evalx

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// DefaultSecurityMargin is the fraction of the true time-to-failure within
// which a prediction is considered "good enough" and counted as zero error by
// S-MAE. The paper uses 10%.
const DefaultSecurityMargin = 0.10

// DefaultPostWindow is the width of the POST window before the crash over
// which POST-MAE is computed. The paper uses the last 10 minutes.
const DefaultPostWindow = 10 * time.Minute

// Prediction is one (true value, predicted value) pair, annotated with the
// time at which the prediction was made so that PRE/POST splits are possible.
type Prediction struct {
	// TimeSec is the simulated time (seconds since the start of the run) at
	// which the prediction was issued.
	TimeSec float64
	// TrueTTF is the real time to failure, in seconds.
	TrueTTF float64
	// PredictedTTF is the model's predicted time to failure, in seconds.
	PredictedTTF float64
}

// AbsError returns |true - predicted|.
func (p Prediction) AbsError() float64 { return math.Abs(p.TrueTTF - p.PredictedTTF) }

// SoftAbsError returns the absolute error with the security margin applied:
// zero when the prediction falls within margin*TrueTTF of the true value, the
// plain absolute error otherwise. This is the paper's S-MAE contribution of a
// single prediction.
func (p Prediction) SoftAbsError(margin float64) float64 {
	err := p.AbsError()
	if err <= margin*math.Abs(p.TrueTTF) {
		return 0
	}
	return err
}

// Report aggregates the four accuracy numbers for one model on one
// experiment, mirroring a row group of Table 3/4.
type Report struct {
	// Model names the predictor that produced the predictions ("M5P",
	// "Linear Regression", ...).
	Model string
	// N is the number of predictions evaluated.
	N int
	// MAE is the mean absolute error, seconds.
	MAE float64
	// SMAE is the soft mean absolute error, seconds.
	SMAE float64
	// PreMAE is the MAE of predictions made before the POST window.
	PreMAE float64
	// PostMAE is the MAE of predictions made during the POST window (the
	// last PostWindow seconds before the crash).
	PostMAE float64
	// Margin and PostWindowSec record the evaluation parameters used.
	Margin        float64
	PostWindowSec float64
}

// Options configures Evaluate.
type Options struct {
	// Margin is the S-MAE security margin as a fraction of the true TTF.
	// Zero means DefaultSecurityMargin.
	Margin float64
	// PostWindow is how long before the crash the POST region starts.
	// Zero means DefaultPostWindow.
	PostWindow time.Duration
	// Model is copied into the resulting Report.
	Model string
}

// Evaluate computes MAE, S-MAE, PRE-MAE and POST-MAE over a sequence of
// predictions. The POST region is defined by the true time to failure: a
// prediction is POST when its TrueTTF is at most the post window (i.e. it was
// issued within PostWindow of the crash).
func Evaluate(preds []Prediction, opts Options) (Report, error) {
	if len(preds) == 0 {
		return Report{}, errors.New("evalx: no predictions to evaluate")
	}
	margin := opts.Margin
	if margin == 0 {
		margin = DefaultSecurityMargin
	}
	if margin < 0 || margin >= 1 {
		return Report{}, fmt.Errorf("evalx: security margin %v out of [0,1)", margin)
	}
	postWindow := opts.PostWindow
	if postWindow == 0 {
		postWindow = DefaultPostWindow
	}
	if postWindow < 0 {
		return Report{}, fmt.Errorf("evalx: negative post window %v", postWindow)
	}
	postSec := postWindow.Seconds()

	var (
		sumAbs, sumSoft   float64
		sumPre, sumPost   float64
		nPre, nPost       int
		invalidPrediction bool
	)
	for _, p := range preds {
		if math.IsNaN(p.PredictedTTF) || math.IsInf(p.PredictedTTF, 0) ||
			math.IsNaN(p.TrueTTF) || math.IsInf(p.TrueTTF, 0) {
			invalidPrediction = true
			break
		}
		err := p.AbsError()
		sumAbs += err
		sumSoft += p.SoftAbsError(margin)
		if p.TrueTTF <= postSec {
			sumPost += err
			nPost++
		} else {
			sumPre += err
			nPre++
		}
	}
	if invalidPrediction {
		return Report{}, errors.New("evalx: prediction contains NaN or Inf")
	}

	rep := Report{
		Model:         opts.Model,
		N:             len(preds),
		MAE:           sumAbs / float64(len(preds)),
		SMAE:          sumSoft / float64(len(preds)),
		Margin:        margin,
		PostWindowSec: postSec,
	}
	if nPre > 0 {
		rep.PreMAE = sumPre / float64(nPre)
	}
	if nPost > 0 {
		rep.PostMAE = sumPost / float64(nPost)
	}
	return rep, nil
}

// FormatDuration renders a duration in seconds in the paper's style, e.g.
// "15 min 14 secs" or "21 secs".
func FormatDuration(seconds float64) string {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return "n/a"
	}
	neg := seconds < 0
	s := int(math.Round(math.Abs(seconds)))
	minutes := s / 60
	secs := s % 60
	var b strings.Builder
	if neg {
		b.WriteString("-")
	}
	if minutes > 0 {
		fmt.Fprintf(&b, "%d min ", minutes)
	}
	fmt.Fprintf(&b, "%d secs", secs)
	return b.String()
}

// String renders the report as a compact single-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: MAE=%s S-MAE=%s PRE-MAE=%s POST-MAE=%s (n=%d)",
		r.Model, FormatDuration(r.MAE), FormatDuration(r.SMAE),
		FormatDuration(r.PreMAE), FormatDuration(r.PostMAE), r.N)
}

// Table renders several reports as an aligned text table in the spirit of
// Table 3/4 of the paper (one row per metric, one column per model).
func Table(title string, reports []Report) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	metrics := []struct {
		name string
		get  func(Report) float64
	}{
		{"MAE", func(r Report) float64 { return r.MAE }},
		{"S-MAE", func(r Report) float64 { return r.SMAE }},
		{"PRE-MAE", func(r Report) float64 { return r.PreMAE }},
		{"POST-MAE", func(r Report) float64 { return r.PostMAE }},
	}
	// Header.
	fmt.Fprintf(&b, "%-10s", "")
	for _, r := range reports {
		fmt.Fprintf(&b, " | %-20s", r.Model)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 10+23*len(reports)))
	for _, m := range metrics {
		fmt.Fprintf(&b, "%-10s", m.name)
		for _, r := range reports {
			fmt.Fprintf(&b, " | %-20s", FormatDuration(m.get(r)))
		}
		b.WriteString("\n")
	}
	return b.String()
}
