package linreg

import (
	"encoding/json"
	"math"
	"testing"
)

// TestSnapshotRoundTrip fits a model on the shared linear dataset, pushes it
// through Snapshot → JSON → FromSnapshot, and checks the reconstructed model
// predicts bit-identically (exact float64 round trip through JSON).
func TestSnapshotRoundTrip(t *testing.T) {
	ds := buildLinearDataset(t, 200, []float64{2.5, -1.25, 0.003}, 7.75, 0.01, 5)
	m, err := Fit(ds, Options{EliminateAttrs: true})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	got, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if got.String() != m.String() {
		t.Fatalf("equation changed across the round trip:\n%s\nvs\n%s", got.String(), m.String())
	}
	if got.TrainingInstances != m.TrainingInstances || got.TrainingMAE != m.TrainingMAE {
		t.Fatalf("training stats changed: %d/%v vs %d/%v",
			got.TrainingInstances, got.TrainingMAE, m.TrainingInstances, m.TrainingMAE)
	}
	attrs := ds.Attrs()
	for i := 0; i < ds.Len(); i++ {
		want, err := m.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if want != have {
			t.Fatalf("row %d: reconstructed model predicts %v, original %v", i, have, want)
		}
	}
}

// TestFromSnapshotValidation drives the malformed-snapshot branches.
func TestFromSnapshotValidation(t *testing.T) {
	cases := []struct {
		name string
		snap *Snapshot
	}{
		{"nil", nil},
		{"length-mismatch", &Snapshot{Attrs: []string{"a", "b"}, Coefficients: []float64{1}}},
		{"empty-attr-name", &Snapshot{Attrs: []string{""}, Coefficients: []float64{1}}},
		{"duplicate-attr", &Snapshot{Attrs: []string{"a", "a"}, Coefficients: []float64{1, 2}}},
		{"nan-coefficient", &Snapshot{Attrs: []string{"a"}, Coefficients: []float64{math.NaN()}}},
		{"inf-intercept", &Snapshot{Intercept: math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromSnapshot(tc.snap); err == nil {
				t.Fatalf("malformed snapshot accepted")
			}
		})
	}
}
