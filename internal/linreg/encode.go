package linreg

import (
	"fmt"
	"math"
)

// Snapshot is the serializable form of a fitted Model: the attribute names,
// their coefficients and the intercept, exactly the state Predict needs.
// It is the unit internal/core's versioned model files are built from — both
// for a standalone linear-regression model and for every node model of an M5P
// tree — so its JSON field names are part of the persisted format and must
// not change without bumping the file format version.
type Snapshot struct {
	Attrs             []string  `json:"attrs"`
	Coefficients      []float64 `json:"coefficients"`
	Intercept         float64   `json:"intercept"`
	TrainingInstances int       `json:"training_instances,omitempty"`
	TrainingMAE       float64   `json:"training_mae,omitempty"`
}

// Snapshot captures the model's state for serialization. The slices are
// copied, so later mutation of the snapshot cannot corrupt the model.
func (m *Model) Snapshot() *Snapshot {
	return &Snapshot{
		Attrs:             append([]string(nil), m.Attrs...),
		Coefficients:      append([]float64(nil), m.Coefficients...),
		Intercept:         m.Intercept,
		TrainingInstances: m.TrainingInstances,
		TrainingMAE:       m.TrainingMAE,
	}
}

// FromSnapshot reconstructs a Model from its serialized form, validating it
// so that a corrupt or hand-crafted snapshot yields an error instead of a
// model that panics or silently predicts garbage. The reconstructed model
// evaluates term for term like the one Snapshot was called on, so its
// predictions are bit-identical.
func FromSnapshot(s *Snapshot) (*Model, error) {
	if s == nil {
		return nil, fmt.Errorf("linreg: nil snapshot")
	}
	if len(s.Attrs) != len(s.Coefficients) {
		return nil, fmt.Errorf("linreg: snapshot has %d attributes for %d coefficients",
			len(s.Attrs), len(s.Coefficients))
	}
	if !isFinite(s.Intercept) {
		return nil, fmt.Errorf("linreg: snapshot intercept is not finite: %v", s.Intercept)
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i, a := range s.Attrs {
		if a == "" {
			return nil, fmt.Errorf("linreg: snapshot attribute %d has empty name", i)
		}
		if seen[a] {
			return nil, fmt.Errorf("linreg: snapshot attribute %q appears twice", a)
		}
		seen[a] = true
		if !isFinite(s.Coefficients[i]) {
			return nil, fmt.Errorf("linreg: snapshot coefficient of %q is not finite: %v", a, s.Coefficients[i])
		}
	}
	return &Model{
		Attrs:             append([]string(nil), s.Attrs...),
		Coefficients:      append([]float64(nil), s.Coefficients...),
		Intercept:         s.Intercept,
		TrainingInstances: s.TrainingInstances,
		TrainingMAE:       s.TrainingMAE,
	}, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
