// Package linreg implements multiple linear regression by least squares.
//
// It serves two roles in this repository, mirroring its two roles in the
// paper:
//
//   - as the baseline predictor the paper compares M5P against in Tables 3
//     and 4 ("Lin. Reg" columns), and
//   - as the leaf model inside M5P model trees (internal/m5p), including the
//     greedy attribute-elimination step described by Wang & Witten for M5.
//
// The solver uses a QR decomposition by Householder reflections, which is
// numerically stable for the strongly collinear derived features of Table 2
// (many of them are ratios of each other). When the design matrix is rank
// deficient even for QR, a small ridge penalty is applied instead of failing,
// because a usable, slightly-biased model is always preferable to no model in
// an on-line prediction loop.
package linreg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"agingpred/internal/dataset"
)

// Model is a fitted linear regression model: target = Intercept + Σ coef·attr.
type Model struct {
	// Attrs holds the names of the attributes used by the model, in the same
	// order as Coefficients. Attributes eliminated during fitting do not
	// appear.
	Attrs []string
	// Coefficients holds one coefficient per entry of Attrs.
	Coefficients []float64
	// Intercept is the constant term.
	Intercept float64

	// TrainingInstances is the number of instances the model was fitted on.
	TrainingInstances int
	// TrainingMAE is the mean absolute error on the training data.
	TrainingMAE float64

	// attrIndex caches the column index of each attribute for a given schema;
	// it is rebuilt lazily by Predict when the schema changes.
	attrIndex []int
	schemaSig string
}

// Options configures Fit.
type Options struct {
	// Ridge is the L2 penalty used only when the unpenalised system is rank
	// deficient. Zero means a small default (1e-8).
	Ridge float64
	// EliminateAttrs enables M5-style greedy attribute elimination: columns
	// are dropped while doing so does not worsen the Akaike-corrected error.
	EliminateAttrs bool
	// MaxAttrs caps the number of attributes considered (0 = no cap). When
	// the cap is exceeded the attributes most correlated with the target are
	// kept. This keeps leaf models small in deep M5P trees.
	MaxAttrs int
	// Columns restricts the regression to the given attribute column
	// indices. nil means "all columns"; an empty (non-nil) slice fits an
	// intercept-only model (the constant leaf of an M5 tree). M5P uses this
	// to honour the rule that a node's linear model may only reference
	// attributes tested in the node's subtree.
	Columns []int
}

// Fit fits a linear regression model to the dataset.
func Fit(ds *dataset.Dataset, opts Options) (*Model, error) {
	if ds == nil {
		return nil, errors.New("linreg: nil dataset")
	}
	if ds.Len() == 0 {
		return nil, errors.New("linreg: empty dataset")
	}
	ridge := opts.Ridge
	if ridge == 0 {
		ridge = 1e-8
	}
	attrs := ds.Attrs()
	var cols []int
	if opts.Columns != nil {
		cols = make([]int, 0, len(opts.Columns))
		for _, c := range opts.Columns {
			if c < 0 || c >= len(attrs) {
				return nil, fmt.Errorf("linreg: column index %d out of range [0,%d)", c, len(attrs))
			}
			cols = append(cols, c)
		}
		sort.Ints(cols)
	} else {
		cols = make([]int, len(attrs))
		for i := range cols {
			cols[i] = i
		}
	}
	if opts.MaxAttrs > 0 && len(cols) > opts.MaxAttrs {
		cols = topCorrelatedAmong(ds, cols, opts.MaxAttrs)
	}

	coefs, intercept, err := solve(ds, cols, ridge)
	if err != nil {
		return nil, err
	}
	model := buildModel(ds, attrs, cols, coefs, intercept)

	if opts.EliminateAttrs && len(cols) > 1 {
		model = eliminate(ds, attrs, cols, ridge, model)
	}
	return model, nil
}

// buildModel assembles a Model from solved coefficients and computes its
// training error.
func buildModel(ds *dataset.Dataset, attrs []string, cols []int, coefs []float64, intercept float64) *Model {
	m := &Model{
		Attrs:             make([]string, len(cols)),
		Coefficients:      append([]float64(nil), coefs...),
		Intercept:         intercept,
		TrainingInstances: ds.Len(),
	}
	for i, c := range cols {
		m.Attrs[i] = attrs[c]
	}
	sumAbs := 0.0
	for i := 0; i < ds.Len(); i++ {
		pred := intercept
		for j, c := range cols {
			pred += coefs[j] * ds.Value(i, c)
		}
		sumAbs += math.Abs(pred - ds.TargetValue(i))
	}
	m.TrainingMAE = sumAbs / float64(ds.Len())
	return m
}

// akaikeError is the error measure M5 uses to decide whether dropping an
// attribute is worthwhile: the training MAE multiplied by a penalty factor
// (n+v)/(n-v) that grows with the number of parameters v.
func akaikeError(mae float64, n, params int) float64 {
	v := params + 1 // +1 for the intercept
	if n <= v {
		return math.Inf(1)
	}
	return mae * float64(n+v) / float64(n-v)
}

// eliminate greedily drops attributes while the Akaike-corrected training
// error does not increase. It returns the best model found (possibly the
// original one).
func eliminate(ds *dataset.Dataset, attrs []string, cols []int, ridge float64, initial *Model) *Model {
	best := initial
	bestCols := append([]int(nil), cols...)
	bestScore := akaikeError(initial.TrainingMAE, ds.Len(), len(bestCols))

	improved := true
	for improved && len(bestCols) > 1 {
		improved = false
		var (
			bestDropIdx   = -1
			bestDropModel *Model
			bestDropCols  []int
			bestDropScore = bestScore
		)
		for drop := range bestCols {
			trial := make([]int, 0, len(bestCols)-1)
			trial = append(trial, bestCols[:drop]...)
			trial = append(trial, bestCols[drop+1:]...)
			coefs, intercept, err := solve(ds, trial, ridge)
			if err != nil {
				continue
			}
			m := buildModel(ds, attrs, trial, coefs, intercept)
			score := akaikeError(m.TrainingMAE, ds.Len(), len(trial))
			if score <= bestDropScore {
				bestDropScore = score
				bestDropIdx = drop
				bestDropModel = m
				bestDropCols = trial
			}
		}
		if bestDropIdx >= 0 {
			best = bestDropModel
			bestCols = bestDropCols
			bestScore = bestDropScore
			improved = true
		}
	}
	return best
}

// topCorrelatedAmong returns the k column indices (from the candidate set)
// whose absolute Pearson correlation with the target is largest.
func topCorrelatedAmong(ds *dataset.Dataset, candidates []int, k int) []int {
	type scored struct {
		col  int
		corr float64
	}
	targets := ds.Targets()
	scoredCols := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		scoredCols = append(scoredCols, scored{col: c, corr: math.Abs(pearson(ds.Column(c), targets))})
	}
	sort.SliceStable(scoredCols, func(i, j int) bool { return scoredCols[i].corr > scoredCols[j].corr })
	cols := make([]int, 0, k)
	for i := 0; i < k && i < len(scoredCols); i++ {
		cols = append(cols, scoredCols[i].col)
	}
	sort.Ints(cols)
	return cols
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// solve computes least-squares coefficients for the given columns plus an
// intercept. It first tries a QR solve; if the system is rank deficient it
// falls back to ridge-regularised normal equations.
func solve(ds *dataset.Dataset, cols []int, ridge float64) (coefs []float64, intercept float64, err error) {
	n := ds.Len()
	p := len(cols) + 1 // +1 intercept column

	// Build the design matrix (row-major) with a leading column of ones.
	a := make([]float64, n*p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i*p] = 1
		for j, c := range cols {
			a[i*p+j+1] = ds.Value(i, c)
		}
		b[i] = ds.TargetValue(i)
	}

	x, ok := qrSolve(a, b, n, p)
	if !ok {
		x, err = ridgeSolve(a, b, n, p, ridge)
		if err != nil {
			return nil, 0, fmt.Errorf("linreg: solving least squares: %w", err)
		}
	}
	return x[1:], x[0], nil
}

// qrSolve solves min ||Ax - b|| for an n×p row-major matrix using Householder
// QR. It reports ok=false when A is (numerically) rank deficient.
func qrSolve(a, b []float64, n, p int) (x []float64, ok bool) {
	if n < p {
		return nil, false
	}
	// Work on copies: the caller may retry with ridge on the originals.
	r := append([]float64(nil), a...)
	y := append([]float64(nil), b...)

	for k := 0; k < p; k++ {
		// Compute the Householder reflector for column k below the diagonal.
		norm := 0.0
		for i := k; i < n; i++ {
			norm = math.Hypot(norm, r[i*p+k])
		}
		if norm == 0 {
			return nil, false
		}
		if r[k*p+k] > 0 {
			norm = -norm
		}
		for i := k; i < n; i++ {
			r[i*p+k] /= norm
		}
		r[k*p+k] += 1

		// Apply the reflector to the remaining columns and to y.
		for j := k + 1; j < p; j++ {
			s := 0.0
			for i := k; i < n; i++ {
				s += r[i*p+k] * r[i*p+j]
			}
			s = -s / r[k*p+k]
			for i := k; i < n; i++ {
				r[i*p+j] += s * r[i*p+k]
			}
		}
		s := 0.0
		for i := k; i < n; i++ {
			s += r[i*p+k] * y[i]
		}
		s = -s / r[k*p+k]
		for i := k; i < n; i++ {
			y[i] += s * r[i*p+k]
		}
		// The diagonal entry of R is -norm.
		r[k*p+k] = norm // stash; actual R(k,k) = -norm, handled in back-substitution
	}

	// Back substitution with R stored in the upper triangle (diagonal holds
	// the negated value in r[k*p+k]).
	x = make([]float64, p)
	const rankTol = 1e-10
	maxDiag := 0.0
	for k := 0; k < p; k++ {
		if d := math.Abs(r[k*p+k]); d > maxDiag {
			maxDiag = d
		}
	}
	for k := p - 1; k >= 0; k-- {
		diag := -r[k*p+k]
		if math.Abs(diag) <= rankTol*maxDiag || diag == 0 {
			return nil, false
		}
		s := y[k]
		for j := k + 1; j < p; j++ {
			s -= r[k*p+j] * x[j]
		}
		x[k] = s / diag
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
	}
	return x, true
}

// ridgeSolve solves (AᵀA + λD)x = Aᵀb by Cholesky decomposition, where D is
// a diagonal scaling matrix derived from AᵀA itself so the penalty is
// meaningful regardless of the (often wildly different) column scales of the
// derived Table 2 features. The intercept column is penalised too; with the
// tiny default λ this bias is negligible and it keeps the matrix strictly
// positive definite. If the factorisation still fails, the penalty is
// escalated a few times before giving up.
func ridgeSolve(a, b []float64, n, p int, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		lambda = 1e-8
	}
	// Normal matrix M = AᵀA (p×p, symmetric) and rhs v = Aᵀb.
	m := make([]float64, p*p)
	v := make([]float64, p)
	for i := 0; i < n; i++ {
		row := a[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			v[j] += row[j] * b[i]
			for k := j; k < p; k++ {
				m[j*p+k] += row[j] * row[k]
			}
		}
	}
	for j := 0; j < p; j++ {
		for k := 0; k < j; k++ {
			m[j*p+k] = m[k*p+j]
		}
	}

	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		penalised := append([]float64(nil), m...)
		for j := 0; j < p; j++ {
			// Relative penalty: scale by the column's own energy so columns
			// with values around 1e6 and columns around 1e-3 are both
			// regularised meaningfully.
			penalised[j*p+j] += lambda * (1 + m[j*p+j])
		}
		x, err := choleskySolve(penalised, v, p)
		if err == nil {
			return x, nil
		}
		lastErr = err
		lambda *= 1e3
	}
	return nil, fmt.Errorf("ridge solve failed even with escalated penalty: %w", lastErr)
}

// choleskySolve solves the symmetric positive definite system M x = v.
func choleskySolve(m, v []float64, p int) ([]float64, error) {
	l := make([]float64, p*p)
	for j := 0; j < p; j++ {
		sum := m[j*p+j]
		for k := 0; k < j; k++ {
			sum -= l[j*p+k] * l[j*p+k]
		}
		if sum <= 0 {
			return nil, fmt.Errorf("matrix not positive definite at column %d", j)
		}
		l[j*p+j] = math.Sqrt(sum)
		for i := j + 1; i < p; i++ {
			s := m[i*p+j]
			for k := 0; k < j; k++ {
				s -= l[i*p+k] * l[j*p+k]
			}
			l[i*p+j] = s / l[j*p+j]
		}
	}
	// Solve L z = v, then Lᵀ x = z.
	z := make([]float64, p)
	for i := 0; i < p; i++ {
		s := v[i]
		for k := 0; k < i; k++ {
			s -= l[i*p+k] * z[k]
		}
		z[i] = s / l[i*p+i]
	}
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < p; k++ {
			s -= l[k*p+i] * x[k]
		}
		x[i] = s / l[i*p+i]
	}
	for _, val := range x {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, errors.New("ridge solution is not finite")
		}
	}
	return x, nil
}

// Predict returns the model's prediction for an instance given as a full row
// of the dataset schema it was trained on (or any schema containing the
// model's attributes). attrs names the columns of row.
func (m *Model) Predict(attrs []string, row []float64) (float64, error) {
	if len(attrs) != len(row) {
		return 0, fmt.Errorf("linreg: %d attribute names for %d values", len(attrs), len(row))
	}
	if err := m.bindSchema(attrs); err != nil {
		return 0, err
	}
	pred := m.Intercept
	for j, idx := range m.attrIndex {
		pred += m.Coefficients[j] * row[idx]
	}
	return pred, nil
}

// PredictDataset returns predictions for every instance of ds.
func (m *Model) PredictDataset(ds *dataset.Dataset) ([]float64, error) {
	attrs := ds.Attrs()
	out := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		v, err := m.Predict(attrs, ds.Row(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// bindSchema resolves the model's attribute names against a row schema,
// caching the result until the schema changes.
func (m *Model) bindSchema(attrs []string) error {
	sig := strings.Join(attrs, "\x00")
	if sig == m.schemaSig && m.attrIndex != nil {
		return nil
	}
	idx, err := m.resolveAttrs(attrs)
	if err != nil {
		return err
	}
	m.attrIndex = idx
	m.schemaSig = sig
	return nil
}

// resolveAttrs maps each model attribute onto its column in the given row
// schema.
func (m *Model) resolveAttrs(attrs []string) ([]int, error) {
	idx := make([]int, len(m.Attrs))
	for j, name := range m.Attrs {
		found := -1
		for i, a := range attrs {
			if a == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("linreg: instance schema is missing attribute %q", name)
		}
		idx[j] = found
	}
	return idx, nil
}

// NumAttrs returns the number of attributes retained by the model.
func (m *Model) NumAttrs() int { return len(m.Attrs) }

// BoundModel is a Model bound once to a fixed row schema: Predict resolves
// no attribute names and performs no per-call allocations, which is what the
// per-checkpoint Observe hot path needs. A BoundModel is immutable and safe
// for concurrent use.
type BoundModel struct {
	intercept float64
	coeffs    []float64
	cols      []int // row column of each coefficient's attribute
}

// Bind resolves the model's attributes against the given row schema once.
// The schema may be wider or reordered as long as every model attribute is
// present. The returned BoundModel is independent of the receiver's own
// lazy schema cache, so it can be shared across goroutines.
func (m *Model) Bind(attrs []string) (*BoundModel, error) {
	cols, err := m.resolveAttrs(attrs)
	if err != nil {
		return nil, err
	}
	return &BoundModel{
		intercept: m.Intercept,
		coeffs:    append([]float64(nil), m.Coefficients...),
		cols:      cols,
	}, nil
}

// Predict evaluates the bound model on a row laid out in the schema the
// model was bound to. The arithmetic matches Model.Predict term for term, so
// the two paths produce bit-identical results.
func (b *BoundModel) Predict(row []float64) float64 {
	pred := b.intercept
	for j, idx := range b.cols {
		pred += b.coeffs[j] * row[idx]
	}
	return pred
}

// PredictBatch evaluates the bound model on every row, writing one prediction
// per row into out (len(out) must be >= len(rows)). Each row is evaluated by
// exactly the scalar Predict arithmetic, so batch and scalar results are
// bit-identical; batching exists to amortise call overhead and keep the
// model's coefficient arrays hot in cache across a whole shard tick.
func (b *BoundModel) PredictBatch(rows [][]float64, out []float64) {
	for i, row := range rows {
		pred := b.intercept
		for j, idx := range b.cols {
			pred += b.coeffs[j] * row[idx]
		}
		out[i] = pred
	}
}

// Columns returns the row columns the bound model reads, sorted ascending and
// de-duplicated. Consumers use it to skip computing feature columns a model
// can never look at.
func (b *BoundModel) Columns() []int {
	out := append([]int(nil), b.cols...)
	sort.Ints(out)
	n := 0
	for i, c := range out {
		if i == 0 || c != out[n-1] {
			out[n] = c
			n++
		}
	}
	return out[:n]
}

// Terms exposes the bound model's compiled form — the intercept and the
// parallel (coefficient, row column) arrays Predict iterates, in evaluation
// order. Flattened tree layouts inline leaf models through it. The returned
// slices are the model's own storage and must not be modified.
func (b *BoundModel) Terms() (intercept float64, coeffs []float64, cols []int) {
	return b.intercept, b.coeffs, b.cols
}

// String renders the regression equation in a human-readable form, e.g.
// "ttf = 120.5 - 3.2*tomcat_mem + 0.8*threads".
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.6g", m.Intercept)
	for i, a := range m.Attrs {
		c := m.Coefficients[i]
		if c >= 0 {
			fmt.Fprintf(&b, " + %.6g*%s", c, a)
		} else {
			fmt.Fprintf(&b, " - %.6g*%s", -c, a)
		}
	}
	return b.String()
}
