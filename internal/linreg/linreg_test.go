package linreg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"agingpred/internal/dataset"
	"agingpred/internal/rng"
)

// buildLinearDataset creates a dataset whose target is an exact linear
// function of its attributes: y = intercept + Σ coef[i]*x[i] (+ noise).
func buildLinearDataset(t *testing.T, n int, coefs []float64, intercept, noise float64, seed uint64) *dataset.Dataset {
	t.Helper()
	names := make([]string, len(coefs))
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	ds, err := dataset.New("linear", names, "y")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := rng.New(seed)
	row := make([]float64, len(coefs))
	for i := 0; i < n; i++ {
		y := intercept
		for j := range coefs {
			row[j] = src.Float64Between(-10, 10)
			y += coefs[j] * row[j]
		}
		if noise > 0 {
			y += src.Normal(0, noise)
		}
		if err := ds.Append(row, y); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return ds
}

func TestFitRecoversExactLinearModel(t *testing.T) {
	coefs := []float64{2.5, -1.25, 0.75}
	ds := buildLinearDataset(t, 200, coefs, 4.0, 0, 1)
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(m.Intercept-4.0) > 1e-6 {
		t.Fatalf("intercept = %v, want 4.0", m.Intercept)
	}
	if len(m.Coefficients) != 3 {
		t.Fatalf("got %d coefficients, want 3", len(m.Coefficients))
	}
	for i, want := range coefs {
		if math.Abs(m.Coefficients[i]-want) > 1e-6 {
			t.Fatalf("coefficient %d = %v, want %v", i, m.Coefficients[i], want)
		}
	}
	if m.TrainingMAE > 1e-6 {
		t.Fatalf("training MAE = %v on noiseless data", m.TrainingMAE)
	}
	if m.TrainingInstances != 200 {
		t.Fatalf("TrainingInstances = %d, want 200", m.TrainingInstances)
	}
}

func TestFitWithNoiseIsClose(t *testing.T) {
	coefs := []float64{3, -2}
	ds := buildLinearDataset(t, 2000, coefs, 1.0, 0.5, 2)
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i, want := range coefs {
		if math.Abs(m.Coefficients[i]-want) > 0.1 {
			t.Fatalf("coefficient %d = %v, want about %v", i, m.Coefficients[i], want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Options{}); err == nil {
		t.Fatalf("Fit(nil) succeeded")
	}
	empty := dataset.MustNew("e", []string{"a"}, "y")
	if _, err := Fit(empty, Options{}); err == nil {
		t.Fatalf("Fit on empty dataset succeeded")
	}
}

func TestFitConstantColumnFallsBackToRidge(t *testing.T) {
	// A constant attribute makes the design matrix rank deficient together
	// with the intercept column; the ridge fallback must still produce a
	// usable model.
	ds := dataset.MustNew("const", []string{"c", "x"}, "y")
	src := rng.New(3)
	for i := 0; i < 100; i++ {
		x := src.Float64Between(0, 10)
		if err := ds.Append([]float64{5, x}, 2*x+1); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	preds, err := m.PredictDataset(ds)
	if err != nil {
		t.Fatalf("PredictDataset: %v", err)
	}
	for i, p := range preds {
		if math.Abs(p-ds.TargetValue(i)) > 0.01 {
			t.Fatalf("prediction %d = %v, want %v", i, p, ds.TargetValue(i))
		}
	}
}

func TestFitDuplicatedColumnStillPredicts(t *testing.T) {
	// Two identical columns: classic rank deficiency. Predictions must still
	// be finite and accurate even though individual coefficients are not
	// identifiable.
	ds := dataset.MustNew("dup", []string{"x1", "x2"}, "y")
	src := rng.New(4)
	for i := 0; i < 100; i++ {
		x := src.Float64Between(-5, 5)
		if err := ds.Append([]float64{x, x}, 3*x-2); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.TrainingMAE > 0.01 {
		t.Fatalf("training MAE = %v with duplicated columns", m.TrainingMAE)
	}
}

func TestFitFewerInstancesThanAttributes(t *testing.T) {
	ds := dataset.MustNew("wide", []string{"a", "b", "c", "d", "e"}, "y")
	_ = ds.Append([]float64{1, 2, 3, 4, 5}, 10)
	_ = ds.Append([]float64{2, 3, 4, 5, 6}, 12)
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit on wide dataset: %v", err)
	}
	// Ridge fallback: predictions must be finite.
	p, err := m.Predict(ds.Attrs(), ds.Row(0))
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction is not finite: %v", p)
	}
}

func TestAttributeElimination(t *testing.T) {
	// y depends only on the first attribute; the other three are pure noise.
	ds := dataset.MustNew("elim", []string{"signal", "noise1", "noise2", "noise3"}, "y")
	src := rng.New(5)
	for i := 0; i < 300; i++ {
		s := src.Float64Between(0, 100)
		row := []float64{s, src.Float64(), src.Float64(), src.Float64()}
		if err := ds.Append(row, 5*s+7); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	m, err := Fit(ds, Options{EliminateAttrs: true})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.NumAttrs() >= 4 {
		t.Fatalf("elimination kept all %d attributes", m.NumAttrs())
	}
	found := false
	for _, a := range m.Attrs {
		if a == "signal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("elimination dropped the signal attribute; kept %v", m.Attrs)
	}
}

func TestMaxAttrsKeepsMostCorrelated(t *testing.T) {
	ds := dataset.MustNew("cap", []string{"weak", "strong", "none"}, "y")
	src := rng.New(6)
	for i := 0; i < 500; i++ {
		s := src.Float64Between(0, 10)
		w := src.Float64Between(0, 10)
		row := []float64{w, s, src.Float64()}
		if err := ds.Append(row, 10*s+0.5*w+src.Normal(0, 0.1)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	m, err := Fit(ds, Options{MaxAttrs: 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.NumAttrs() != 1 || m.Attrs[0] != "strong" {
		t.Fatalf("MaxAttrs=1 kept %v, want [strong]", m.Attrs)
	}
}

func TestPredictSchemaBinding(t *testing.T) {
	ds := buildLinearDataset(t, 50, []float64{2}, 0, 0, 7)
	m, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Predicting with a wider schema (extra columns, different order) works
	// as long as the model's attributes are present.
	p, err := m.Predict([]string{"zzz", "a"}, []float64{99, 3})
	if err != nil {
		t.Fatalf("Predict with reordered schema: %v", err)
	}
	if math.Abs(p-6) > 1e-6 {
		t.Fatalf("Predict = %v, want 6", p)
	}
	if _, err := m.Predict([]string{"zzz"}, []float64{1}); err == nil {
		t.Fatalf("Predict with missing attribute succeeded")
	}
	if _, err := m.Predict([]string{"a", "b"}, []float64{1}); err == nil {
		t.Fatalf("Predict with mismatched row length succeeded")
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Attrs: []string{"mem", "thr"}, Coefficients: []float64{-3.5, 2}, Intercept: 10}
	s := m.String()
	if !strings.Contains(s, "mem") || !strings.Contains(s, "thr") || !strings.Contains(s, "- 3.5") {
		t.Fatalf("String() = %q", s)
	}
}

func TestAkaikeError(t *testing.T) {
	if got := akaikeError(10, 100, 4); math.Abs(got-10*105.0/95.0) > 1e-12 {
		t.Fatalf("akaikeError = %v", got)
	}
	if got := akaikeError(10, 3, 4); !math.IsInf(got, 1) {
		t.Fatalf("akaikeError with n <= params = %v, want +Inf", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("pearson(perfectly correlated) = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("pearson(perfectly anticorrelated) = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := pearson(x, flat); got != 0 {
		t.Fatalf("pearson with zero-variance input = %v, want 0", got)
	}
	if got := pearson(nil, nil); got != 0 {
		t.Fatalf("pearson(empty) = %v, want 0", got)
	}
}

// Property: on data generated from an exact linear model (no noise, well
// conditioned), Fit recovers predictions to within numerical tolerance, no
// matter the coefficients.
func TestFitRecoversLinearProperty(t *testing.T) {
	f := func(c1i, c2i, bi int16, seed uint64) bool {
		c1 := float64(c1i) / 100
		c2 := float64(c2i) / 100
		intercept := float64(bi) / 100
		ds := dataset.MustNew("p", []string{"x1", "x2"}, "y")
		src := rng.New(seed)
		for i := 0; i < 60; i++ {
			x1 := src.Float64Between(-100, 100)
			x2 := src.Float64Between(-100, 100)
			if err := ds.Append([]float64{x1, x2}, intercept+c1*x1+c2*x2); err != nil {
				return false
			}
		}
		m, err := Fit(ds, Options{})
		if err != nil {
			return false
		}
		preds, err := m.PredictDataset(ds)
		if err != nil {
			return false
		}
		for i, p := range preds {
			want := ds.TargetValue(i)
			if math.Abs(p-want) > 1e-5*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions are invariant under adding an irrelevant constant
// column (the solver must not blow up on the induced rank deficiency).
func TestFitConstantColumnInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		base := dataset.MustNew("b", []string{"x"}, "y")
		augmented := dataset.MustNew("a", []string{"x", "k"}, "y")
		for i := 0; i < 80; i++ {
			x := src.Float64Between(-50, 50)
			y := 3*x + 2
			if err := base.Append([]float64{x}, y); err != nil {
				return false
			}
			if err := augmented.Append([]float64{x, 7}, y); err != nil {
				return false
			}
		}
		mb, err := Fit(base, Options{})
		if err != nil {
			return false
		}
		ma, err := Fit(augmented, Options{})
		if err != nil {
			return false
		}
		pb, err := mb.Predict([]string{"x"}, []float64{10})
		if err != nil {
			return false
		}
		pa, err := ma.Predict([]string{"x", "k"}, []float64{10, 7})
		if err != nil {
			return false
		}
		return math.Abs(pa-pb) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
