// Package benchjson reads and writes the repo's committed benchmark
// trajectory files (BENCH_*.json): small, stable-keyed JSON documents holding
// one measurement environment and a list of labeled runs, so performance
// claims in the docs are backed by parseable datapoints instead of numbers
// pasted into prose. The format is append-friendly — a new measurement session
// loads the file, appends its runs, and writes it back — and deliberately
// minimal: no wall-clock timestamps beyond the caller-provided stamp, so
// regenerating a file on the same machine produces stable diffs.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Env describes the machine a measurement ran on.
type Env struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler's worker cap at measurement time — on a
	// throttled or containerised host it can be lower than NumCPU, and fleet
	// shard scaling numbers are meaningless without it.
	GoMaxProcs int `json:"gomaxprocs"`
}

// CurrentEnv captures the running process's environment.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Run is one labeled measurement: a named configuration and its metrics
// (metric name → value, units encoded in the metric name, e.g.
// "icp_per_sec", "ns_per_checkpoint").
type Run struct {
	// Label identifies the configuration ("fleet/shards-1", "observe/batch").
	Label string `json:"label"`
	// Stamp is a caller-provided marker for when/what was measured — a date,
	// a git describe, or a PR tag. Free-form.
	Stamp string `json:"stamp,omitempty"`
	// Note carries context a number alone cannot ("pre-PR baseline,
	// measured from a worktree at the seed commit").
	Note string `json:"note,omitempty"`
	// Metrics holds the measured values.
	Metrics map[string]float64 `json:"metrics"`
}

// File is one benchmark trajectory document.
type File struct {
	// Bench names the benchmark family the file tracks ("fleet").
	Bench string `json:"bench"`
	// Command reproduces the measurement ("agingbench -bench-json ...").
	Command string `json:"command,omitempty"`
	Env     Env    `json:"env"`
	Runs    []Run  `json:"runs"`
}

// Read loads a trajectory file.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return &f, nil
}

// Write renders the file as indented JSON with a trailing newline (so the
// committed artifact is diff- and cat-friendly) and writes it atomically via
// a rename from a sibling temp file.
func Write(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encoding %s: %w", path, err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Merge appends runs to an existing trajectory file, creating it when
// missing. The environment is overwritten with the current session's (the
// runs keep their own stamps, so a file can mix machines as long as the notes
// say so).
func Merge(path string, f *File) error {
	old, err := Read(path)
	if os.IsNotExist(err) {
		return Write(path, f)
	}
	if err != nil {
		return err
	}
	old.Bench = f.Bench
	if f.Command != "" {
		old.Command = f.Command
	}
	old.Env = f.Env
	old.Runs = append(old.Runs, f.Runs...)
	return Write(path, old)
}
