package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *File {
	return &File{
		Bench:   "fleet",
		Command: "agingbench -bench-json BENCH_fleet.json",
		Env:     CurrentEnv(),
		Runs: []Run{
			{
				Label:   "fleet/shards-1",
				Stamp:   "2026-08-08",
				Metrics: map[string]float64{"icp_per_sec": 2.35e6},
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bench != want.Bench || got.Command != want.Command || got.Env != want.Env {
		t.Fatalf("header round-trip mismatch: %+v != %+v", got, want)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "fleet/shards-1" ||
		got.Runs[0].Metrics["icp_per_sec"] != 2.35e6 {
		t.Fatalf("runs round-trip mismatch: %+v", got.Runs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "}\n") {
		t.Fatalf("file should end with a single trailing newline, got %q", data[len(data)-4:])
	}
}

func TestCurrentEnvPopulated(t *testing.T) {
	env := CurrentEnv()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" {
		t.Fatalf("CurrentEnv left identification fields empty: %+v", env)
	}
	if env.NumCPU <= 0 || env.GoMaxProcs <= 0 {
		t.Fatalf("CurrentEnv should record positive CPU counts, got num_cpu=%d gomaxprocs=%d",
			env.NumCPU, env.GoMaxProcs)
	}
}

func TestMergeAppendsRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := Merge(path, sample()); err != nil { // creates
		t.Fatal(err)
	}
	second := sample()
	second.Runs[0].Label = "fleet/shards-4"
	if err := Merge(path, second); err != nil { // appends
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Runs[0].Label != "fleet/shards-1" || got.Runs[1].Label != "fleet/shards-4" {
		t.Fatalf("merge should append runs in order, got %+v", got.Runs)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("parsing garbage succeeded")
	}
}
