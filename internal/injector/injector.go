// Package injector implements the aging-fault injection of the paper's
// modified TPC-W deployment (Section 3, "Experimental Setup"):
//
//   - A request-coupled memory injector patched into the search servlet
//     (TPCW_Search_request_servlet): it draws a random number between 0 and N
//     and, after that many search-servlet executions, injects the next memory
//     consumption. Memory injection rate therefore scales with the workload,
//     exactly as in the paper.
//   - A time-coupled thread injector: every U(0, T) seconds it leaks U(0, M)
//     threads, independently of the workload.
//   - A time-coupled database-connection injector: every U(0, T) seconds it
//     leaks U(0, C) connections from the MySQL pool. This third resource goes
//     beyond the paper's setup; the three-resource scenario of the experiment
//     engine uses it to stress predictions when several unrelated resources
//     age at once.
//   - A phase schedule that changes the injector parameters at fixed times,
//     used to reproduce the dynamic scenarios of experiments 4.2–4.4 and the
//     periodic acquire/release patterns of Figure 2 and experiment 4.3.
package injector

import (
	"errors"
	"fmt"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
)

// MemoryMode says what the request-coupled memory injector does when it
// fires.
type MemoryMode int

const (
	// MemoryOff disables memory injection.
	MemoryOff MemoryMode = iota
	// MemoryLeak injects an unreclaimable leak (the plain aging fault).
	MemoryLeak
	// MemoryAcquire injects releasable (retained) memory — the acquire phase
	// of the periodic pattern.
	MemoryAcquire
	// MemoryRelease releases previously retained memory.
	MemoryRelease
)

// String returns a human-readable name for the mode.
func (m MemoryMode) String() string {
	switch m {
	case MemoryOff:
		return "off"
	case MemoryLeak:
		return "leak"
	case MemoryAcquire:
		return "acquire"
	case MemoryRelease:
		return "release"
	default:
		return fmt.Sprintf("MemoryMode(%d)", int(m))
	}
}

// MemoryInjector is the request-coupled memory fault. Attach it to the
// server's search-servlet hook; every call to Hit counts one servlet
// execution.
type MemoryInjector struct {
	server *appserver.Server
	src    *rng.Source

	mode      MemoryMode
	n         int     // the paper's N parameter
	amountMB  float64 // injected per event (1 MB in the paper)
	countdown int

	injections uint64
	injectedMB float64
	releasedMB float64
}

// NewMemoryInjector creates an injector that is initially off.
// amountMB <= 0 defaults to 1 MB, the value used throughout the paper.
func NewMemoryInjector(server *appserver.Server, src *rng.Source, amountMB float64) (*MemoryInjector, error) {
	if server == nil {
		return nil, errors.New("injector: nil server")
	}
	if src == nil {
		return nil, errors.New("injector: nil random source")
	}
	if amountMB <= 0 {
		amountMB = 1
	}
	return &MemoryInjector{server: server, src: src, amountMB: amountMB, mode: MemoryOff}, nil
}

// Attach registers the injector on the server's search-servlet hook.
func (m *MemoryInjector) Attach() {
	m.server.OnSearchRequest(m.Hit)
}

// SetMode changes the injection mode and rate parameter N. A non-positive n
// with an active mode injects on every servlet execution.
func (m *MemoryInjector) SetMode(mode MemoryMode, n int) {
	m.mode = mode
	m.n = n
	m.countdown = m.drawCountdown()
}

// Mode returns the current mode and N.
func (m *MemoryInjector) Mode() (MemoryMode, int) { return m.mode, m.n }

// drawCountdown draws how many servlet executions remain until the next
// injection: a uniform random number between 0 and N, per the paper.
func (m *MemoryInjector) drawCountdown() int {
	if m.n <= 0 {
		return 0
	}
	return m.src.Intn(m.n + 1)
}

// Hit records one execution of the search servlet and injects when the
// countdown expires.
func (m *MemoryInjector) Hit() {
	if m.mode == MemoryOff {
		return
	}
	if m.countdown > 0 {
		m.countdown--
		return
	}
	m.countdown = m.drawCountdown()
	m.injections++
	switch m.mode {
	case MemoryLeak:
		m.injectedMB += m.amountMB
		m.server.InjectLeakMB(m.amountMB)
	case MemoryAcquire:
		m.injectedMB += m.amountMB
		m.server.InjectRetainedMB(m.amountMB)
	case MemoryRelease:
		m.releasedMB += m.amountMB
		m.server.ReleaseRetainedMB(m.amountMB)
	}
}

// Stats returns the number of injection events, the MB injected and the MB
// released so far.
func (m *MemoryInjector) Stats() (events uint64, injectedMB, releasedMB float64) {
	return m.injections, m.injectedMB, m.releasedMB
}

// timedInjector is the shared loop of the time-coupled faults: every U(0, T)
// seconds it leaks U(0, rate) units of some resource. The thread and
// connection injectors differ only in which server resource the leak hits.
type timedInjector struct {
	server *appserver.Server
	sched  *simclock.Scheduler
	src    *rng.Source
	leak   func(n int)
	count  func() int // the server's leaked-units counter, for exact stats
	what   string     // resource name, for error messages

	rate int // max units per injection (the paper's M; C for connections)
	t    int // max seconds between injections (the paper's T)

	started bool
	leaked  uint64
	events  uint64
}

func newTimedInjector(server *appserver.Server, sched *simclock.Scheduler, src *rng.Source, what string) (timedInjector, error) {
	if server == nil {
		return timedInjector{}, errors.New("injector: nil server")
	}
	if sched == nil {
		return timedInjector{}, errors.New("injector: nil scheduler")
	}
	if src == nil {
		return timedInjector{}, errors.New("injector: nil random source")
	}
	return timedInjector{server: server, sched: sched, src: src, what: what}, nil
}

// SetRate changes the (rate, T) parameters. rate <= 0 turns injection off;
// T <= 0 defaults to 60 seconds.
func (ti *timedInjector) SetRate(rate, t int) {
	ti.rate = rate
	ti.t = t
	if ti.t <= 0 {
		ti.t = 60
	}
}

// Rate returns the current (rate, T).
func (ti *timedInjector) Rate() (rate, t int) { return ti.rate, ti.t }

// Start begins the injection loop. It is a no-op if already started.
func (ti *timedInjector) Start() error {
	if ti.started {
		return nil
	}
	ti.started = true
	return ti.scheduleNext()
}

func (ti *timedInjector) scheduleNext() error {
	delay := time.Duration(ti.src.Float64Between(0, float64(ti.maxT()))) * time.Second
	if _, err := ti.sched.After(delay, ti.fire); err != nil {
		return fmt.Errorf("injector: scheduling %s injection: %w", ti.what, err)
	}
	return nil
}

func (ti *timedInjector) maxT() int {
	if ti.t <= 0 {
		return 60
	}
	return ti.t
}

func (ti *timedInjector) fire() {
	if ti.server.Crashed() {
		return
	}
	if ti.rate > 0 {
		n := ti.src.Intn(ti.rate + 1)
		if n > 0 {
			// Count what the server actually absorbed: a batch can stop
			// partway when it crashes the server (e.g. the connection pool
			// saturating mid-batch).
			before := ti.count()
			ti.leak(n)
			if applied := ti.count() - before; applied > 0 {
				ti.events++
				ti.leaked += uint64(applied)
			}
		}
	}
	if ti.server.Crashed() {
		return
	}
	// Re-arm. Failure to schedule means the run is over; stop quietly.
	_ = ti.scheduleNext()
}

// Stats returns the number of injection events and total units leaked.
func (ti *timedInjector) Stats() (events, leaked uint64) { return ti.events, ti.leaked }

// ThreadInjector is the time-coupled thread-leak fault: every U(0, T) seconds
// it leaks U(0, M) threads, independent of the workload.
type ThreadInjector struct {
	timedInjector
}

// NewThreadInjector creates a thread injector that is initially off (M = 0).
func NewThreadInjector(server *appserver.Server, sched *simclock.Scheduler, src *rng.Source) (*ThreadInjector, error) {
	base, err := newTimedInjector(server, sched, src, "thread")
	if err != nil {
		return nil, err
	}
	ti := &ThreadInjector{timedInjector: base}
	ti.leak = server.LeakThreads
	ti.count = server.LeakedThreads
	return ti, nil
}

// ConnectionInjector is the time-coupled database-connection-leak fault:
// every U(0, T) seconds it leaks U(0, C) connections from the server's MySQL
// pool, independent of the workload. It follows the same (rate, period)
// parameterisation as the thread injector.
type ConnectionInjector struct {
	timedInjector
}

// NewConnectionInjector creates a connection injector that is initially off
// (C = 0).
func NewConnectionInjector(server *appserver.Server, sched *simclock.Scheduler, src *rng.Source) (*ConnectionInjector, error) {
	base, err := newTimedInjector(server, sched, src, "connection")
	if err != nil {
		return nil, err
	}
	ci := &ConnectionInjector{timedInjector: base}
	ci.leak = server.LeakDBConnections
	ci.count = server.LeakedDBConnections
	return ci, nil
}

// Phase is one segment of an injection schedule: for Duration, the memory
// injector runs with (MemoryMode, MemoryN), the thread injector with
// (ThreadM, ThreadT) and the connection injector with (ConnC, ConnT). A zero
// Duration means "until the end of the run" and is only meaningful for the
// last phase.
type Phase struct {
	// Name labels the phase in logs and plots ("no injection", "N=30", ...).
	Name string
	// Duration is how long the phase lasts. Zero = until the run ends.
	Duration time.Duration

	// MemoryMode and MemoryN configure the request-coupled memory injector.
	MemoryMode MemoryMode
	MemoryN    int

	// ThreadM and ThreadT configure the time-coupled thread injector
	// (ThreadM = 0 disables it).
	ThreadM int
	ThreadT int

	// ConnC and ConnT configure the time-coupled connection injector
	// (ConnC = 0 disables it).
	ConnC int
	ConnT int
}

// Schedule applies a sequence of phases to the injectors at the right
// simulated times.
type Schedule struct {
	phases []Phase
	mem    *MemoryInjector
	thr    *ThreadInjector
	conn   *ConnectionInjector
	sched  *simclock.Scheduler

	current int
}

// NewSchedule creates a phase schedule. Any injector may be nil if the
// corresponding fault is not used.
func NewSchedule(phases []Phase, mem *MemoryInjector, thr *ThreadInjector, conn *ConnectionInjector, sched *simclock.Scheduler) (*Schedule, error) {
	if sched == nil {
		return nil, errors.New("injector: nil scheduler")
	}
	if len(phases) == 0 {
		return nil, errors.New("injector: empty phase list")
	}
	for i, p := range phases {
		if p.Duration == 0 && i != len(phases)-1 {
			return nil, fmt.Errorf("injector: phase %d (%q) has zero duration but is not last", i, p.Name)
		}
		if p.Duration < 0 {
			return nil, fmt.Errorf("injector: phase %d (%q) has negative duration", i, p.Name)
		}
	}
	return &Schedule{phases: phases, mem: mem, thr: thr, conn: conn, sched: sched, current: -1}, nil
}

// Start applies the first phase immediately and schedules the transitions.
func (s *Schedule) Start() error {
	if s.current >= 0 {
		return errors.New("injector: schedule already started")
	}
	s.applyPhase(0)
	return s.scheduleTransition(0)
}

// CurrentPhase returns the index and definition of the active phase, or
// (-1, Phase{}) before Start.
func (s *Schedule) CurrentPhase() (int, Phase) {
	if s.current < 0 {
		return -1, Phase{}
	}
	return s.current, s.phases[s.current]
}

func (s *Schedule) applyPhase(i int) {
	s.current = i
	p := s.phases[i]
	if s.mem != nil {
		s.mem.SetMode(p.MemoryMode, p.MemoryN)
	}
	if s.thr != nil {
		s.thr.SetRate(p.ThreadM, p.ThreadT)
	}
	if s.conn != nil {
		s.conn.SetRate(p.ConnC, p.ConnT)
	}
}

func (s *Schedule) scheduleTransition(i int) error {
	p := s.phases[i]
	if p.Duration == 0 || i == len(s.phases)-1 {
		// Last phase, or open-ended: nothing more to schedule. (A final phase
		// with a duration simply keeps its settings afterwards.)
		if p.Duration == 0 {
			return nil
		}
	}
	if i == len(s.phases)-1 {
		return nil
	}
	_, err := s.sched.After(p.Duration, func() {
		s.applyPhase(i + 1)
		if err := s.scheduleTransition(i + 1); err != nil {
			// Scheduling in the future from inside an event cannot fail
			// unless the run is over; ignore.
			_ = err
		}
	})
	if err != nil {
		return fmt.Errorf("injector: scheduling phase %d transition: %w", i+1, err)
	}
	return nil
}

// TotalDuration returns the sum of all phase durations; 0 means the schedule
// is open-ended.
func (s *Schedule) TotalDuration() time.Duration {
	var total time.Duration
	for _, p := range s.phases {
		if p.Duration == 0 {
			return 0
		}
		total += p.Duration
	}
	return total
}
