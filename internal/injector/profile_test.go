package injector

import (
	"math"
	"strings"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	good := []Profile{
		{},
		{MemoryN: 30},
		{ThreadM: 5, ThreadT: 60},
		{MemoryN: 40, LeakMB: 2, ThreadM: 3, ThreadT: 90, ConnC: 4, ConnT: 120},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	bad := []Profile{
		{MemoryN: -1},
		{LeakMB: -2},
		{ThreadM: -5},
		{ConnT: -60},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a negative parameter", p)
		}
	}
}

func TestProfileExpectedRates(t *testing.T) {
	p := Profile{MemoryN: 30, ThreadM: 6, ThreadT: 40, ConnC: 3, ConnT: 120}
	// One 1 MB injection every N/2+1 = 16 servlet hits.
	if got, want := p.MemoryMBPerHit(), 1.0/16; math.Abs(got-want) > 1e-12 {
		t.Errorf("MemoryMBPerHit = %v, want %v", got, want)
	}
	if got, want := p.ThreadsPerSec(), 6.0/40; math.Abs(got-want) > 1e-12 {
		t.Errorf("ThreadsPerSec = %v, want %v", got, want)
	}
	if got, want := p.ConnsPerSec(), 3.0/120; math.Abs(got-want) > 1e-12 {
		t.Errorf("ConnsPerSec = %v, want %v", got, want)
	}
	// Disabled faults have zero rate; a zero period defaults to 60 s.
	var off Profile
	if off.MemoryMBPerHit() != 0 || off.ThreadsPerSec() != 0 || off.ConnsPerSec() != 0 {
		t.Errorf("inactive profile has non-zero rates: %+v", off)
	}
	if off.Aging() {
		t.Errorf("inactive profile claims to be aging")
	}
	defT := Profile{ThreadM: 6}
	if got, want := defT.ThreadsPerSec(), 6.0/60; math.Abs(got-want) > 1e-12 {
		t.Errorf("ThreadsPerSec with default T = %v, want %v", got, want)
	}
	// Doubling the leak amount doubles the memory rate.
	double := Profile{MemoryN: 30, LeakMB: 2}
	if got, want := double.MemoryMBPerHit(), 2.0/16; math.Abs(got-want) > 1e-12 {
		t.Errorf("MemoryMBPerHit with 2 MB leaks = %v, want %v", got, want)
	}
}

func TestProfilePhase(t *testing.T) {
	p := Profile{MemoryN: 30, ThreadM: 5, ThreadT: 60, ConnC: 2, ConnT: 90}
	ph := p.Phase("test")
	if ph.Name != "test" || ph.MemoryMode != MemoryLeak || ph.MemoryN != 30 ||
		ph.ThreadM != 5 || ph.ThreadT != 60 || ph.ConnC != 2 || ph.ConnT != 90 {
		t.Fatalf("Phase mapping wrong: %+v", ph)
	}
	if ph.Duration != 0 {
		t.Fatalf("profile phase is not open-ended: %v", ph.Duration)
	}
	// No memory leak: the phase must keep the memory injector off.
	noMem := Profile{ThreadM: 5}
	if got := noMem.Phase("t"); got.MemoryMode != MemoryOff || got.MemoryN != 0 {
		t.Fatalf("memory injector not off: %+v", got)
	}
	// A default name is derived from the profile.
	if got := p.Phase(""); !strings.Contains(got.Name, "N=30") {
		t.Fatalf("default phase name %q does not describe the profile", got.Name)
	}
	if got := (Profile{}).String(); got != "no injection" {
		t.Fatalf("empty profile String() = %q", got)
	}
}
