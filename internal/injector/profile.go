package injector

import (
	"fmt"
	"strings"
)

// Profile bundles the per-instance aging parameterisation of all three fault
// injectors into one value: the request-coupled memory leak (the paper's N),
// the time-coupled thread leak (M, T) and the time-coupled connection leak
// (C, T). The fleet subsystem draws one heterogeneous Profile per simulated
// server instance; Phase converts the same profile into a regular injection
// phase so any fleet instance can be replayed as a full-fidelity single-server
// testbed execution.
type Profile struct {
	// MemoryN is the request-coupled memory-leak parameter: one injection
	// after every U(0, N) search-servlet executions. 0 disables the memory
	// leak.
	MemoryN int
	// LeakMB is the size of each memory injection (0 = 1 MB, the paper's
	// value). Testbed runs carry this on RunConfig.LeakAmountMB.
	LeakMB float64
	// ThreadM and ThreadT parameterise the thread leak: U(0, ThreadM)
	// threads every U(0, ThreadT) seconds. ThreadM = 0 disables it;
	// ThreadT <= 0 defaults to 60 s, as in the injector itself.
	ThreadM int
	ThreadT int
	// ConnC and ConnT parameterise the database-connection leak the same
	// way. ConnC = 0 disables it.
	ConnC int
	ConnT int
}

// Validate checks the profile for negative parameters.
func (p Profile) Validate() error {
	if p.MemoryN < 0 {
		return fmt.Errorf("injector: negative memory-leak parameter N %d", p.MemoryN)
	}
	if p.LeakMB < 0 {
		return fmt.Errorf("injector: negative leak amount %g MB", p.LeakMB)
	}
	if p.ThreadM < 0 || p.ThreadT < 0 {
		return fmt.Errorf("injector: negative thread-leak parameters M=%d T=%d", p.ThreadM, p.ThreadT)
	}
	if p.ConnC < 0 || p.ConnT < 0 {
		return fmt.Errorf("injector: negative connection-leak parameters C=%d T=%d", p.ConnC, p.ConnT)
	}
	return nil
}

// Aging reports whether any fault of the profile is active.
func (p Profile) Aging() bool {
	return p.MemoryN > 0 || p.ThreadM > 0 || p.ConnC > 0
}

// Phase converts the profile into one open-ended injection phase applying
// all its faults for the whole run.
func (p Profile) Phase(name string) Phase {
	if name == "" {
		name = p.String()
	}
	ph := Phase{
		Name:    name,
		ThreadM: p.ThreadM,
		ThreadT: p.ThreadT,
		ConnC:   p.ConnC,
		ConnT:   p.ConnT,
	}
	if p.MemoryN > 0 {
		ph.MemoryMode = MemoryLeak
		ph.MemoryN = p.MemoryN
	}
	return ph
}

// leakMB returns the effective per-injection memory amount.
func (p Profile) leakMB() float64 {
	if p.LeakMB <= 0 {
		return 1
	}
	return p.LeakMB
}

// MemoryMBPerHit is the expected memory leaked per search-servlet execution:
// the injector draws a fresh U(0, N) countdown after every injection, so one
// injection of LeakMB happens every N/2 + 1 executions on average.
func (p Profile) MemoryMBPerHit() float64 {
	if p.MemoryN <= 0 {
		return 0
	}
	return p.leakMB() / (float64(p.MemoryN)/2 + 1)
}

// ThreadsPerSec is the expected thread-leak rate: U(0, M) threads (mean M/2)
// every U(0, T) seconds (mean T/2), i.e. M/T threads per second.
func (p Profile) ThreadsPerSec() float64 {
	if p.ThreadM <= 0 {
		return 0
	}
	return float64(p.ThreadM) / float64(effectiveT(p.ThreadT))
}

// ConnsPerSec is the expected connection-leak rate, C/T connections per
// second by the same argument as ThreadsPerSec.
func (p Profile) ConnsPerSec() float64 {
	if p.ConnC <= 0 {
		return 0
	}
	return float64(p.ConnC) / float64(effectiveT(p.ConnT))
}

// effectiveT mirrors timedInjector.SetRate: a non-positive period means 60 s.
func effectiveT(t int) int {
	if t <= 0 {
		return 60
	}
	return t
}

// String renders the profile compactly ("mem N=30, threads M=5 T=60").
func (p Profile) String() string {
	var parts []string
	if p.MemoryN > 0 {
		parts = append(parts, fmt.Sprintf("mem N=%d (%g MB)", p.MemoryN, p.leakMB()))
	}
	if p.ThreadM > 0 {
		parts = append(parts, fmt.Sprintf("threads M=%d T=%d", p.ThreadM, effectiveT(p.ThreadT)))
	}
	if p.ConnC > 0 {
		parts = append(parts, fmt.Sprintf("conns C=%d T=%d", p.ConnC, effectiveT(p.ConnT)))
	}
	if len(parts) == 0 {
		return "no injection"
	}
	return strings.Join(parts, ", ")
}
