package injector

import (
	"testing"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

func newServer(t testing.TB) (*appserver.Server, *simclock.Scheduler) {
	t.Helper()
	sched := simclock.NewScheduler(nil)
	srv, err := appserver.New(appserver.Config{}, sched, rng.New(99))
	if err != nil {
		t.Fatalf("appserver.New: %v", err)
	}
	return srv, sched
}

func TestNewMemoryInjectorValidation(t *testing.T) {
	srv, _ := newServer(t)
	if _, err := NewMemoryInjector(nil, rng.New(1), 1); err == nil {
		t.Fatalf("nil server accepted")
	}
	if _, err := NewMemoryInjector(srv, nil, 1); err == nil {
		t.Fatalf("nil rng accepted")
	}
	mi, err := NewMemoryInjector(srv, rng.New(1), 0)
	if err != nil {
		t.Fatalf("NewMemoryInjector: %v", err)
	}
	if mi.amountMB != 1 {
		t.Fatalf("default amount = %v, want 1 MB", mi.amountMB)
	}
	if mode, _ := mi.Mode(); mode != MemoryOff {
		t.Fatalf("initial mode = %v, want off", mode)
	}
}

func TestMemoryModeString(t *testing.T) {
	names := map[MemoryMode]string{MemoryOff: "off", MemoryLeak: "leak", MemoryAcquire: "acquire", MemoryRelease: "release"}
	for mode, want := range names {
		if got := mode.String(); got != want {
			t.Errorf("MemoryMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
	if got := MemoryMode(42).String(); got != "MemoryMode(42)" {
		t.Errorf("unknown mode String() = %q", got)
	}
}

func TestMemoryInjectorLeakRate(t *testing.T) {
	srv, _ := newServer(t)
	mi, err := NewMemoryInjector(srv, rng.New(5), 1)
	if err != nil {
		t.Fatalf("NewMemoryInjector: %v", err)
	}
	const n = 30
	mi.SetMode(MemoryLeak, n)
	const hits = 10000
	for i := 0; i < hits && !srv.Crashed(); i++ {
		mi.Hit()
	}
	events, injected, released := mi.Stats()
	if events == 0 {
		t.Fatalf("no injections after %d hits", hits)
	}
	if released != 0 {
		t.Fatalf("leak mode released %v MB", released)
	}
	if injected != float64(events) {
		t.Fatalf("injected %v MB over %d events with 1 MB each", injected, events)
	}
	// With a countdown uniform in [0, N], the mean gap is N/2+1 hits, so
	// expect roughly hits/(N/2+1) events. Accept a generous band.
	expected := float64(hits) / (float64(n)/2 + 1)
	if float64(events) < expected*0.7 || float64(events) > expected*1.3 {
		t.Fatalf("events = %d, want about %v", events, expected)
	}
	if srv.Heap().OldLeakedMB() != injected {
		t.Fatalf("heap leaked %v MB, injector reports %v", srv.Heap().OldLeakedMB(), injected)
	}
}

func TestMemoryInjectorOffDoesNothing(t *testing.T) {
	srv, _ := newServer(t)
	mi, _ := NewMemoryInjector(srv, rng.New(6), 1)
	for i := 0; i < 1000; i++ {
		mi.Hit()
	}
	if events, injected, _ := mi.Stats(); events != 0 || injected != 0 {
		t.Fatalf("off injector injected: events=%d injected=%v", events, injected)
	}
}

func TestMemoryInjectorAcquireRelease(t *testing.T) {
	srv, _ := newServer(t)
	mi, _ := NewMemoryInjector(srv, rng.New(7), 1)

	mi.SetMode(MemoryAcquire, 0) // inject on every hit
	for i := 0; i < 100; i++ {
		mi.Hit()
	}
	if got := srv.Heap().OldRetainedMB(); got != 100 {
		t.Fatalf("retained = %v after 100 acquire hits with N=0, want 100", got)
	}
	mi.SetMode(MemoryRelease, 0)
	for i := 0; i < 40; i++ {
		mi.Hit()
	}
	if got := srv.Heap().OldRetainedMB(); got != 60 {
		t.Fatalf("retained = %v after releasing 40, want 60", got)
	}
	_, injected, released := mi.Stats()
	if injected != 100 || released != 40 {
		t.Fatalf("stats injected=%v released=%v, want 100/40", injected, released)
	}
}

func TestMemoryInjectorAttachHooksSearchServlet(t *testing.T) {
	srv, sched := newServer(t)
	mi, _ := NewMemoryInjector(srv, rng.New(8), 1)
	mi.SetMode(MemoryLeak, 0)
	mi.Attach()

	// Search requests trigger the hook; other interactions do not.
	done := func(bool) {}
	srv.Submit(tpcw.Request{Interaction: tpcw.SearchRequest, IssuedAt: sched.Now()}, done)
	srv.Submit(tpcw.Request{Interaction: tpcw.Home, IssuedAt: sched.Now()}, done)
	sched.RunUntil(10 * time.Second)

	if events, _, _ := mi.Stats(); events != 1 {
		t.Fatalf("attached injector fired %d times, want 1", events)
	}
}

func TestThreadInjectorValidationAndRate(t *testing.T) {
	srv, sched := newServer(t)
	if _, err := NewThreadInjector(nil, sched, rng.New(1)); err == nil {
		t.Fatalf("nil server accepted")
	}
	if _, err := NewThreadInjector(srv, nil, rng.New(1)); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := NewThreadInjector(srv, sched, nil); err == nil {
		t.Fatalf("nil rng accepted")
	}
	ti, err := NewThreadInjector(srv, sched, rng.New(1))
	if err != nil {
		t.Fatalf("NewThreadInjector: %v", err)
	}
	ti.SetRate(30, 0)
	if m, tt := ti.Rate(); m != 30 || tt != 60 {
		t.Fatalf("Rate = (%d, %d), want (30, 60)", m, tt)
	}
}

func TestThreadInjectorLeaksOverTime(t *testing.T) {
	srv, sched := newServer(t)
	ti, _ := NewThreadInjector(srv, sched, rng.New(11))
	ti.SetRate(30, 90) // the paper's M=30, T=90 configuration
	if err := ti.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := ti.Start(); err != nil {
		t.Fatalf("second Start must be a no-op, got %v", err)
	}
	sched.RunUntil(30 * time.Minute)
	events, leaked := ti.Stats()
	if events == 0 || leaked == 0 {
		t.Fatalf("no thread leaks after 30 minutes: events=%d leaked=%d", events, leaked)
	}
	if int(leaked) != srv.LeakedThreads() {
		t.Fatalf("injector leaked %d, server reports %d", leaked, srv.LeakedThreads())
	}
	// Expected rate: one event per U(0,90) s (mean 45 s), each leaking
	// U(0,30) threads (mean 15): about 600 threads in 30 min. Broad band.
	if leaked < 200 || leaked > 1200 {
		t.Fatalf("leaked %d threads in 30 min with M=30 T=90, want roughly 600", leaked)
	}
}

func TestThreadInjectorOffLeaksNothing(t *testing.T) {
	srv, sched := newServer(t)
	ti, _ := NewThreadInjector(srv, sched, rng.New(12))
	if err := ti.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(20 * time.Minute)
	if _, leaked := ti.Stats(); leaked != 0 {
		t.Fatalf("off thread injector leaked %d threads", leaked)
	}
}

func TestThreadInjectorStopsAfterCrash(t *testing.T) {
	srv, sched := newServer(t)
	ti, _ := NewThreadInjector(srv, sched, rng.New(13))
	ti.SetRate(100, 10)
	if err := ti.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(4 * time.Hour)
	if !srv.Crashed() {
		t.Fatalf("aggressive thread leak did not crash the server")
	}
	_, leakedAtCrash := ti.Stats()
	sched.RunUntil(8 * time.Hour)
	if _, leaked := ti.Stats(); leaked != leakedAtCrash {
		t.Fatalf("injector kept leaking after the crash: %d -> %d", leakedAtCrash, leaked)
	}
}

func TestScheduleValidation(t *testing.T) {
	_, sched := newServer(t)
	if _, err := NewSchedule(nil, nil, nil, nil, sched); err == nil {
		t.Fatalf("empty phase list accepted")
	}
	if _, err := NewSchedule([]Phase{{Duration: time.Minute}}, nil, nil, nil, nil); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := NewSchedule([]Phase{{Duration: 0}, {Duration: time.Minute}}, nil, nil, nil, sched); err == nil {
		t.Fatalf("zero-duration non-final phase accepted")
	}
	if _, err := NewSchedule([]Phase{{Duration: -time.Minute}}, nil, nil, nil, sched); err == nil {
		t.Fatalf("negative duration accepted")
	}
}

func TestScheduleAppliesPhases(t *testing.T) {
	srv, sched := newServer(t)
	mi, _ := NewMemoryInjector(srv, rng.New(14), 1)
	ti, _ := NewThreadInjector(srv, sched, rng.New(15))

	phases := []Phase{
		{Name: "none", Duration: 20 * time.Minute, MemoryMode: MemoryOff},
		{Name: "N=30", Duration: 20 * time.Minute, MemoryMode: MemoryLeak, MemoryN: 30},
		{Name: "N=15 + threads", Duration: 20 * time.Minute, MemoryMode: MemoryLeak, MemoryN: 15, ThreadM: 30, ThreadT: 90},
		{Name: "N=75", MemoryMode: MemoryLeak, MemoryN: 75},
	}
	s, err := NewSchedule(phases, mi, ti, nil, sched)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	if idx, _ := s.CurrentPhase(); idx != -1 {
		t.Fatalf("CurrentPhase before Start = %d", idx)
	}
	if got := s.TotalDuration(); got != 0 {
		t.Fatalf("open-ended schedule TotalDuration = %v, want 0", got)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Start(); err == nil {
		t.Fatalf("second Start succeeded")
	}

	check := func(at time.Duration, wantIdx int, wantMode MemoryMode, wantN, wantM int) {
		t.Helper()
		sched.RunUntil(at)
		idx, p := s.CurrentPhase()
		if idx != wantIdx {
			t.Fatalf("at %v: phase index = %d (%q), want %d", at, idx, p.Name, wantIdx)
		}
		mode, n := mi.Mode()
		if mode != wantMode || n != wantN {
			t.Fatalf("at %v: memory injector = (%v, %d), want (%v, %d)", at, mode, n, wantMode, wantN)
		}
		m, _ := ti.Rate()
		if m != wantM {
			t.Fatalf("at %v: thread M = %d, want %d", at, m, wantM)
		}
	}
	check(10*time.Minute, 0, MemoryOff, 0, 0)
	check(30*time.Minute, 1, MemoryLeak, 30, 0)
	check(50*time.Minute, 2, MemoryLeak, 15, 30)
	check(70*time.Minute, 3, MemoryLeak, 75, 0)
	// The final phase persists.
	check(3*time.Hour, 3, MemoryLeak, 75, 0)
}

func TestScheduleTotalDuration(t *testing.T) {
	_, sched := newServer(t)
	phases := []Phase{
		{Duration: 20 * time.Minute},
		{Duration: 40 * time.Minute},
	}
	s, err := NewSchedule(phases, nil, nil, nil, sched)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	if got := s.TotalDuration(); got != time.Hour {
		t.Fatalf("TotalDuration = %v, want 1h", got)
	}
}

func TestConnectionInjectorValidationAndRate(t *testing.T) {
	srv, sched := newServer(t)
	if _, err := NewConnectionInjector(nil, sched, rng.New(1)); err == nil {
		t.Fatalf("nil server accepted")
	}
	if _, err := NewConnectionInjector(srv, nil, rng.New(1)); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := NewConnectionInjector(srv, sched, nil); err == nil {
		t.Fatalf("nil rng accepted")
	}
	ci, err := NewConnectionInjector(srv, sched, rng.New(1))
	if err != nil {
		t.Fatalf("NewConnectionInjector: %v", err)
	}
	ci.SetRate(8, 0)
	if c, tt := ci.Rate(); c != 8 || tt != 60 {
		t.Fatalf("Rate = (%d, %d), want (8, 60)", c, tt)
	}
}

func TestConnectionInjectorLeaksOverTime(t *testing.T) {
	srv, sched := newServer(t)
	ci, _ := NewConnectionInjector(srv, sched, rng.New(21))
	ci.SetRate(4, 90)
	if err := ci.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := ci.Start(); err != nil {
		t.Fatalf("second Start must be a no-op, got %v", err)
	}
	sched.RunUntil(30 * time.Minute)
	events, leaked := ci.Stats()
	if events == 0 || leaked == 0 {
		t.Fatalf("no connection leaks after 30 minutes: events=%d leaked=%d", events, leaked)
	}
	if int(leaked) != srv.LeakedDBConnections() {
		t.Fatalf("injector leaked %d, server reports %d", leaked, srv.LeakedDBConnections())
	}
	// One event per U(0,90) s (mean 45 s), each leaking U(0,4) connections
	// (mean 2): about 80 connections in 30 min... unless the pool of 100
	// dies first. Broad band either way.
	if leaked < 20 || leaked > 160 {
		t.Fatalf("leaked %d connections in 30 min with C=4 T=90, want roughly 80", leaked)
	}
}

func TestConnectionInjectorExhaustsPoolAndCrashes(t *testing.T) {
	srv, sched := newServer(t)
	ci, _ := NewConnectionInjector(srv, sched, rng.New(22))
	ci.SetRate(10, 30) // aggressive: the 100-connection pool dies quickly
	if err := ci.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(4 * time.Hour)
	if !srv.Crashed() {
		t.Fatalf("server survived an aggressive connection leak (leaked %d)", srv.LeakedDBConnections())
	}
	if srv.CrashReason() != appserver.CrashConnectionExhaustion {
		t.Fatalf("crash reason = %q, want connection exhaustion", srv.CrashReason())
	}
	// Even though the final batch stops partway at the crash, the injector's
	// stats must agree with the server's count.
	if _, leaked := ci.Stats(); int(leaked) != srv.LeakedDBConnections() {
		t.Fatalf("after the exhaustion crash, injector reports %d leaked but the server %d",
			leaked, srv.LeakedDBConnections())
	}
}

func TestScheduleAppliesConnectionPhases(t *testing.T) {
	srv, sched := newServer(t)
	ci, _ := NewConnectionInjector(srv, sched, rng.New(23))
	phases := []Phase{
		{Name: "off", Duration: 10 * time.Minute},
		{Name: "conn leak", ConnC: 6, ConnT: 45},
	}
	s, err := NewSchedule(phases, nil, nil, ci, sched)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if c, _ := ci.Rate(); c != 0 {
		t.Fatalf("phase 1 should leave the connection injector off, got C=%d", c)
	}
	sched.RunUntil(11 * time.Minute)
	if c, tt := ci.Rate(); c != 6 || tt != 45 {
		t.Fatalf("phase 2 rate = (%d, %d), want (6, 45)", c, tt)
	}
}
