package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// EventType names one kind of discrete lifecycle event in the serving stack.
type EventType string

// The event vocabulary. Every type carries the simulated time it happened at;
// instance-scoped events carry the instance ID and class, model-lifecycle
// events carry the epoch sequence number.
const (
	// EventInstanceCrash: an instance failed on its own (the aging fault won).
	EventInstanceCrash EventType = "instance_crash"
	// EventRejuvAlert: an instance's predictive policy raised a rejuvenation
	// alert (predicted TTF under the threshold for enough checkpoints).
	EventRejuvAlert EventType = "rejuv_alert"
	// EventRejuvDispatch: the fleet controller accepted the alert and started
	// a controlled restart within the rejuvenation budget.
	EventRejuvDispatch EventType = "rejuv_dispatch"
	// EventRejuvDenied: the alert was deferred because the budget was
	// exhausted; the policy stays primed and will re-raise.
	EventRejuvDenied EventType = "rejuv_denied"
	// EventRejuvComplete: a controlled restart finished and the instance is
	// serving again.
	EventRejuvComplete EventType = "rejuv_complete"
	// EventCrashRecovered: a crashed instance finished recovering.
	EventCrashRecovered EventType = "crash_recovered"
	// EventDriftTrip: the drift detector decided the serving model has gone
	// stale; EventDriftClear: the windowed error fell back under the
	// hysteresis band.
	EventDriftTrip  EventType = "drift_trip"
	EventDriftClear EventType = "drift_clear"
	// EventRetrainStart: a background retraining round began on a snapshot of
	// the training buffer; EventRetrainPublish: its model went live as a new
	// epoch.
	EventRetrainStart   EventType = "retrain_start"
	EventRetrainPublish EventType = "retrain_publish"
	// EventEpochSwap: one instance's stream adopted a newer model epoch at its
	// reset boundary.
	EventEpochSwap EventType = "epoch_swap"
)

// EventTypes returns every event type the journal can carry, in a stable
// order. The docs gate uses it to require the journal schema documentation to
// cover the full vocabulary.
func EventTypes() []EventType {
	return []EventType{
		EventInstanceCrash, EventRejuvAlert, EventRejuvDispatch, EventRejuvDenied,
		EventRejuvComplete, EventCrashRecovered, EventDriftTrip, EventDriftClear,
		EventRetrainStart, EventRetrainPublish, EventEpochSwap,
	}
}

// Event is one journal record. A serialized event is a single JSON line:
//
//	{"seq":17,"event":"drift_trip","t_sec":6300,"instance":-1,"epoch":1,"detail":"..."}
//
// Seq is assigned by the journal at emission (1-based, gapless). Instance is
// -1 for events that are not scoped to one instance (drift and retrain
// events). Class and Epoch are omitted when empty/zero.
type Event struct {
	Seq      uint64    `json:"seq"`
	Type     EventType `json:"event"`
	TimeSec  float64   `json:"t_sec"`
	Instance int       `json:"instance"`
	Class    string    `json:"class,omitempty"`
	Epoch    int       `json:"epoch,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Journal is an append-only JSONL event log. Writes are buffered and
// serialised by an internal mutex; the first write error sticks and turns
// every later Emit into a no-op (check Err or the Close result). All methods
// are safe on a nil *Journal, so instrumented code can emit unconditionally
// and a nil journal means "journaling off".
//
// Ordering is the caller's contract: the fleet driver emits all events from
// its single control goroutine in tick order (behind the tick barrier), so a
// journal of a seeded run is deterministic — byte-identical across
// repetitions and shard counts.
type Journal struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	c    io.Closer
	seq  uint64
	err  error
	line []byte // reused marshal buffer
}

// NewJournal starts a journal writing to w. Close flushes the buffer; it
// closes w only if w is an io.Closer obtained through CreateJournal.
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriter(w)}
}

// CreateJournal creates (or truncates) the file at path and journals into it.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJournal(f)
	j.c = f
	return j, nil
}

// Emit appends one event, assigning its sequence number. The passed event's
// Seq field is ignored. No-op on a nil journal or after a write error.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	e.Seq = j.seq
	line, err := json.Marshal(&e)
	if err != nil {
		j.err = err
		return
	}
	j.line = append(j.line[:0], line...)
	j.line = append(j.line, '\n')
	if _, err := j.bw.Write(j.line); err != nil {
		j.err = err
	}
}

// Len returns how many events have been emitted.
func (j *Journal) Len() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes the journal (and closes the underlying file when the journal
// was opened with CreateJournal), returning the first error encountered over
// the journal's lifetime.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.bw.Flush(); j.err == nil {
		j.err = ferr
	}
	if j.c != nil {
		cerr := j.c.Close()
		j.c = nil
		if j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}
