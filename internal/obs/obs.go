// Package obs is the repository's observability core: a dependency-free
// metrics layer (atomic counters, gauges and fixed-bucket histograms behind a
// named registry, with Prometheus text-format exposition) plus a structured
// JSONL event journal (journal.go) for the discrete lifecycle events a
// serving fleet emits — drift trips, retrains, epoch swaps, rejuvenations,
// crashes.
//
// The design constraints come from the serving stack it instruments:
//
//   - Hot-path updates are allocation-free and branch-light. A Counter
//     increment is one atomic load (the global enable gate) plus one atomic
//     add; a Histogram observation adds a short bounds scan. Handles are
//     resolved once at package init, never per event.
//   - Metrics are observation-only. Nothing in the serving stack reads a
//     metric back to make a decision, so instrumentation cannot perturb the
//     deterministic simulations — the golden-report and
//     byte-identical-across-shard-counts tests run with instrumentation
//     compiled in and enabled.
//   - Registration is idempotent: asking the registry for an existing
//     (name, labels) pair returns the same handle, so independent packages —
//     and repeated fleet runs in one process — share series without
//     coordination. Counters and histograms therefore accumulate across runs
//     within a process, like any long-lived Prometheus target.
//
// The package-level Default registry is what the instrumented subsystems
// (internal/core, internal/fleet, internal/adapt, internal/rejuv) register
// into and what `agingfleet -listen` serves at /metrics; the root package
// re-exports it as agingpred.Metrics().
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the global instrumentation gate: when off, every Counter, Gauge
// and Histogram update is a no-op (one atomic load and a predictable branch).
// It exists so the instrumentation overhead itself can be measured honestly
// (agingbench records fleet/obs-on vs fleet/obs-off in BENCH_fleet.json);
// serving runs leave it on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the global instrumentation gate on or off. Exposition and
// registration always work; only updates are gated.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether instrumentation updates are currently recorded.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic bits.
// All methods are safe for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; Set is cheaper when the caller knows the value).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per bucket plus a
// running sum, all atomics. Buckets are defined by their upper bounds
// (inclusive, Prometheus `le` semantics); one implicit +Inf bucket catches
// the overflow. Observe is safe for concurrent use and allocation-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. Values above every bound (and NaN) land in the
// +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	// The negated comparison sends NaN to +Inf instead of bucket 0.
	for i < len(h.bounds) && !(v <= h.bounds[i]) {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LinearBuckets returns n bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n bucket bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Label is one constant key/value label of a metric series.
type Label struct{ Key, Value string }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered series: a name, a rendered label set and exactly
// one of the three instrument types.
type metric struct {
	name   string
	labels string // rendered `{k="v",...}`, or ""
	kind   metricKind
	help   string

	c *Counter
	g *Gauge
	h *Histogram
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; registration takes the registry mutex, but the returned
// handles update lock-free — resolve them once, not per event.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*metric)} }

// Default is the process-wide registry the instrumented subsystems register
// into and agingfleet -listen exposes.
var Default = NewRegistry()

// renderLabels validates and renders a label set in the given order.
func renderLabels(name string, labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// register resolves or creates the series for (name, labels). Same key →
// same metric; a name re-registered with a different instrument kind is a
// programming error and panics.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	rendered := renderLabels(name, labels)
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	// Series of one name must agree on the instrument kind for the TYPE line.
	for _, m := range r.byKey {
		if m.name == name && m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
	}
	m := &metric{name: name, labels: rendered, kind: kind, help: help}
	r.byKey[key] = m
	return m
}

// Counter resolves or creates a counter series. Labels are optional constant
// labels; the same (name, labels) always returns the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge resolves or creates a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram resolves or creates a histogram series with the given bucket
// upper bounds (ascending; +Inf is implicit). An existing series keeps its
// original buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	m := r.register(name, help, kindHistogram, labels)
	if m.h == nil {
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return m.h
}

// sorted returns the registered metrics ordered by (name, labels) — the
// stable exposition and snapshot order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// Names returns the distinct registered metric names, sorted. The docs gate
// uses it to require every series the subsystems register to be documented.
func (r *Registry) Names() []string {
	var names []string
	last := ""
	for _, m := range r.sorted() {
		if m.name != last {
			names = append(names, m.name)
			last = m.name
		}
	}
	return names
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// bucketSeries renders a histogram series name with the `le` label appended
// to its constant labels.
func bucketSeries(m *metric, le string) string {
	if m.labels == "" {
		return m.name + `_bucket{le="` + le + `"}`
	}
	return m.name + "_bucket" + m.labels[:len(m.labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name then label set, with one
// HELP/TYPE header per metric name. Histograms render cumulative buckets plus
// the _sum and _count series, as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, m := range r.sorted() {
		if m.name != lastName {
			lastName = m.name
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			b.WriteString(m.name)
			b.WriteString(m.labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.c.Value(), 10))
			b.WriteByte('\n')
		case kindGauge:
			b.WriteString(m.name)
			b.WriteString(m.labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.g.Value()))
			b.WriteByte('\n')
		case kindHistogram:
			cum := uint64(0)
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(&b, "%s %d\n", bucketSeries(m, formatFloat(bound)), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			fmt.Fprintf(&b, "%s %d\n", bucketSeries(m, "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels, formatFloat(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns the current value of every series, keyed by rendered
// series name (name plus labels). Histograms contribute their _sum and
// _count series. The map is a point-in-time copy, useful for embedding in a
// run report.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		key := m.name + m.labels
		switch m.kind {
		case kindCounter:
			out[key] = float64(m.c.Value())
		case kindGauge:
			out[key] = m.g.Value()
		case kindHistogram:
			out[m.name+"_sum"+m.labels] = m.h.Sum()
			out[m.name+"_count"+m.labels] = float64(m.h.Count())
		}
	}
	return out
}

// Value returns the current value of the counter or gauge series with the
// given rendered name (name plus labels, e.g. `foo_total` or
// `foo_total{class="mem-leak"}`), and whether such a series exists. Histogram
// series are not addressable through Value.
func (r *Registry) Value(key string) (float64, bool) {
	r.mu.Lock()
	m, ok := r.byKey[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return float64(m.c.Value()), true
	case kindGauge:
		return m.g.Value(), true
	default:
		return 0, false
	}
}
