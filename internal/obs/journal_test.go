package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalGolden pins the JSONL wire format: one compact JSON object per
// line, gapless 1-based sequence numbers, omitted empty optional fields.
func TestJournalGolden(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	j.Emit(Event{Type: EventInstanceCrash, TimeSec: 900, Instance: 3, Class: "mem-leak", Epoch: 1})
	j.Emit(Event{Type: EventDriftTrip, TimeSec: 1800, Instance: -1, Epoch: 1, Detail: "window MAE 1200.0s vs baseline 120.0s"})
	j.Emit(Event{Seq: 999, Type: EventRejuvComplete, TimeSec: 2700, Instance: 7, Class: "healthy"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"event":"instance_crash","t_sec":900,"instance":3,"class":"mem-leak","epoch":1}
{"seq":2,"event":"drift_trip","t_sec":1800,"instance":-1,"epoch":1,"detail":"window MAE 1200.0s vs baseline 120.0s"}
{"seq":3,"event":"rejuv_complete","t_sec":2700,"instance":7,"class":"healthy"}
`
	if got := b.String(); got != want {
		t.Errorf("journal format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if j.Len() != 3 {
		t.Errorf("Len() = %d, want 3", j.Len())
	}
}

// TestJournalLinesParse round-trips every event type through the JSONL
// format.
func TestJournalLinesParse(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	for i, et := range EventTypes() {
		j.Emit(Event{Type: et, TimeSec: float64(i) * 15, Instance: i, Epoch: 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != len(EventTypes()) {
		t.Fatalf("%d lines for %d events", len(lines), len(EventTypes()))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("line %d has seq %d", i, e.Seq)
		}
		if e.Type != EventTypes()[i] {
			t.Errorf("line %d has type %q, want %q", i, e.Type, EventTypes()[i])
		}
	}
}

// TestJournalNilSafe: a nil journal is "journaling off" — every method is a
// no-op, so instrumented code never branches on it.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: EventInstanceCrash})
	if j.Len() != 0 {
		t.Errorf("nil journal Len() = %d", j.Len())
	}
	if err := j.Err(); err != nil {
		t.Errorf("nil journal Err() = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil journal Close() = %v", err)
	}
}

// failWriter fails after the first n bytes.
type failWriter struct{ left int }

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errSink
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errSink
	}
	return n, nil
}

// TestJournalStickyError: the first write error is remembered and surfaced by
// Err and Close; later Emits are dropped silently instead of panicking
// mid-run.
func TestJournalStickyError(t *testing.T) {
	j := NewJournal(&failWriter{left: 10})
	// Overflow the 4 KiB bufio buffer to force real writes.
	long := strings.Repeat("x", 4096)
	j.Emit(Event{Type: EventInstanceCrash, Detail: long})
	j.Emit(Event{Type: EventInstanceCrash, Detail: long})
	j.Emit(Event{Type: EventInstanceCrash, Detail: long})
	if err := j.Err(); !errors.Is(err, errSink) {
		t.Fatalf("Err() = %v, want the sink failure", err)
	}
	if err := j.Close(); !errors.Is(err, errSink) {
		t.Fatalf("Close() = %v, want the sink failure", err)
	}
}

// TestCreateJournal exercises the file-backed constructor end to end.
func TestCreateJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: EventRetrainStart, TimeSec: 60, Instance: -1, Epoch: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"event":"retrain_start"`) {
		t.Fatalf("journal file content: %s", raw)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Fatalf("journal file does not end in a newline")
	}
}
