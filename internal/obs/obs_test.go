package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter value %d, want 42", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge value %g, want 1", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "different help is fine")
	if a != b {
		t.Fatalf("same (name, labels) returned distinct counter handles")
	}
	la := r.Counter("same_total", "h", Label{"class", "x"})
	lb := r.Counter("same_total", "h", Label{"class", "y"})
	if la == lb || la == a {
		t.Fatalf("distinct label sets must be distinct series")
	}
	h1 := r.Histogram("hist", "h", []float64{1, 2})
	h2 := r.Histogram("hist", "h", []float64{5, 6, 7}) // existing series keeps its buckets
	if h1 != h2 {
		t.Fatalf("histogram re-registration returned a new handle")
	}
	if len(h1.bounds) != 2 {
		t.Fatalf("histogram re-registration replaced the buckets: %v", h1.bounds)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mixed", "h")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("mixed", "h")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("invalid label name did not panic")
			}
		}()
		r.Counter("fine_total", "h", Label{"bad-key", "v"})
	}()
}

// TestHistogramBucketBoundaries pins the `le` semantics: bounds are
// inclusive upper limits, values above every bound (and NaN) land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{
		0.05,            // bucket 0
		0.1,             // exactly on a bound: still bucket 0 (le = ≤)
		0.1000001,       // bucket 1
		1,               // bucket 1
		10,              // bucket 2
		10.5,            // +Inf
		math.Inf(1),     // +Inf
		math.NaN(),      // +Inf by convention
		-5,              // negative: bucket 0
		math.MaxFloat64, // +Inf
	} {
		h.Observe(v)
	}
	want := []uint64{3, 2, 1, 4}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d count %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 10 {
		t.Errorf("total count %d, want 10", h.Count())
	}
	// The sum includes the NaN observation, so it is NaN — Prometheus
	// exposes exactly what was observed.
	if !math.IsNaN(h.Sum()) {
		t.Errorf("sum %g, want NaN (a NaN was observed)", h.Sum())
	}
}

func TestHistogramEmptyBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nobuckets", "h", nil)
	h.Observe(3)
	h.Observe(4)
	if h.Count() != 2 || h.Sum() != 7 {
		t.Fatalf("count %d sum %g, want 2 and 7", h.Count(), h.Sum())
	}
}

func TestHistogramNonAscendingBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("bad", "h", []float64{1, 1})
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Fatalf("LinearBuckets: %v", lin)
	}
	exp := ExpBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("ExpBuckets: %v", exp)
	}
}

// TestConcurrentUpdates drives every instrument from many goroutines at once
// — the shape of the fleet's shard workers — and checks the totals. Run under
// -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	g := r.Gauge("conc_gauge", "h")
	h := r.Histogram("conc_hist", "h", []float64{10, 100})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count %d, want %d", got, workers*per)
	}
	var wantSum float64
	for i := 0; i < per; i++ {
		wantSum += float64(i % 200)
	}
	if got := h.Sum(); got != wantSum*workers {
		t.Errorf("histogram sum %g, want %g", got, wantSum*workers)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte: HELP
// and TYPE headers per name, sorted series, cumulative histogram buckets with
// the +Inf catch-all, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", Label{"class", "web"}).Add(3)
	r.Counter("app_requests_total", "Requests served.", Label{"class", "db"}).Add(2)
	r.Gauge("app_temperature", "Current temperature.").Set(36.5)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 99.55
app_latency_seconds_count 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{class="db"} 2
app_requests_total{class="web"} 3
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 36.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusHistogramLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lab_hist", "h", []float64{1}, Label{"class", "x"})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lab_hist_bucket{class="x",le="1"} 1`,
		`lab_hist_bucket{class="x",le="+Inf"} 1`,
		`lab_hist_sum{class="x"} 0.5`,
		`lab_hist_count{class="x"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition lacks %q:\n%s", want, b.String())
		}
	}
}

func TestSnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "h").Add(7)
	r.Gauge("snap_gauge", "h", Label{"class", "a"}).Set(2.5)
	h := r.Histogram("snap_hist", "h", []float64{1})
	h.Observe(0.25)
	snap := r.Snapshot()
	want := map[string]float64{
		"snap_total":            7,
		`snap_gauge{class="a"}`: 2.5,
		"snap_hist_sum":         0.25,
		"snap_hist_count":       1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
	if v, ok := r.Value("snap_total"); !ok || v != 7 {
		t.Errorf("Value(snap_total) = %g, %v", v, ok)
	}
	if v, ok := r.Value(`snap_gauge{class="a"}`); !ok || v != 2.5 {
		t.Errorf("Value(snap_gauge{class=a}) = %g, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Errorf("Value(missing) reported existence")
	}
	if _, ok := r.Value("snap_hist"); ok {
		t.Errorf("histograms must not be addressable through Value")
	}
}

// TestSetEnabled pins the global gate: disabled instruments drop updates
// entirely but still read and expose.
func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gate_total", "h")
	g := r.Gauge("gate_gauge", "h")
	h := r.Histogram("gate_hist", "h", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	if Enabled() {
		t.Fatalf("Enabled() true after SetEnabled(false)")
	}
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(9)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled instruments recorded updates: %d %g %d", c.Value(), g.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter did not record")
	}
}

// TestHotPathZeroAlloc is the acceptance gate for "observability is free
// where it matters": no hot-path update may allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_hist", "h", ExpBuckets(1e-6, 4, 10))
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.25) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "h", ExpBuckets(1e-6, 2, 20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i, name := range []string{"a_total", "b_total", "c_total"} {
		r.Counter(name, "h").Add(uint64(i))
	}
	r.Histogram("d_seconds", "h", ExpBuckets(1e-6, 2, 20)).Observe(0.01)
	b.ReportAllocs()
	var sink strings.Builder
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := r.WritePrometheus(&sink); err != nil {
			b.Fatal(err)
		}
	}
}
