package m5p

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"agingpred/internal/dataset"
	"agingpred/internal/linreg"
	"agingpred/internal/rng"
)

// piecewiseDataset builds a dataset whose target is piecewise linear in x:
//
//	y = 3x + 5          for x < 50
//	y = -2x + 400       for x >= 50
//
// This is exactly the structure M5P is designed for: a plain linear model
// cannot fit it, a constant-leaf tree needs many leaves, and a model tree
// needs a single split with two linear leaves.
func piecewiseDataset(t testing.TB, n int, noise float64, seed uint64) *dataset.Dataset {
	t.Helper()
	ds := dataset.MustNew("piecewise", []string{"x", "irrelevant"}, "y")
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		x := src.Float64Between(0, 100)
		var y float64
		if x < 50 {
			y = 3*x + 5
		} else {
			y = -2*x + 400
		}
		if noise > 0 {
			y += src.Normal(0, noise)
		}
		if err := ds.Append([]float64{x, src.Float64()}, y); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return ds
}

func mae(t testing.TB, preds []float64, ds *dataset.Dataset) float64 {
	t.Helper()
	sum := 0.0
	for i, p := range preds {
		sum += math.Abs(p - ds.TargetValue(i))
	}
	return sum / float64(len(preds))
}

func TestFitPiecewiseLinear(t *testing.T) {
	ds := piecewiseDataset(t, 500, 0, 1)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Leaves() < 2 {
		t.Fatalf("piecewise data produced %d leaves, want >= 2", tree.Leaves())
	}
	preds, err := tree.PredictDataset(ds)
	if err != nil {
		t.Fatalf("PredictDataset: %v", err)
	}
	if got := mae(t, preds, ds); got > 3 {
		t.Fatalf("training MAE = %v on noiseless piecewise-linear data", got)
	}
	// Point checks on both branches, away from the breakpoint.
	attrs := ds.Attrs()
	p1, err := tree.Predict(attrs, []float64{10, 0.3})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(p1-35) > 10 {
		t.Fatalf("Predict(x=10) = %v, want about 35", p1)
	}
	p2, err := tree.Predict(attrs, []float64{90, 0.3})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(p2-220) > 10 {
		t.Fatalf("Predict(x=90) = %v, want about 220", p2)
	}
}

func TestM5PBeatsLinearRegressionOnPiecewiseData(t *testing.T) {
	// The core claim of the paper's Tables 3 and 4, reproduced on synthetic
	// data: a model tree handles trend changes that defeat a single linear
	// model.
	train := piecewiseDataset(t, 600, 1.0, 2)
	test := piecewiseDataset(t, 300, 1.0, 3)

	tree, err := Fit(train, Options{})
	if err != nil {
		t.Fatalf("Fit m5p: %v", err)
	}
	lr, err := linreg.Fit(train, linreg.Options{})
	if err != nil {
		t.Fatalf("Fit linreg: %v", err)
	}
	treePreds, err := tree.PredictDataset(test)
	if err != nil {
		t.Fatalf("tree PredictDataset: %v", err)
	}
	lrPreds, err := lr.PredictDataset(test)
	if err != nil {
		t.Fatalf("linreg PredictDataset: %v", err)
	}
	treeMAE := mae(t, treePreds, test)
	lrMAE := mae(t, lrPreds, test)
	if treeMAE*2 > lrMAE {
		t.Fatalf("M5P MAE = %v, LinReg MAE = %v; want M5P at least 2x better", treeMAE, lrMAE)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Options{}); err == nil {
		t.Fatalf("Fit(nil) succeeded")
	}
	empty := dataset.MustNew("e", []string{"a"}, "y")
	if _, err := Fit(empty, Options{}); err == nil {
		t.Fatalf("Fit on empty dataset succeeded")
	}
}

func TestFitTinyDataset(t *testing.T) {
	// Fewer instances than MinInstances: must still produce a usable model.
	ds := dataset.MustNew("tiny", []string{"x"}, "y")
	for i := 0; i < 4; i++ {
		_ = ds.Append([]float64{float64(i)}, float64(2*i))
	}
	tree, err := Fit(ds, Options{MinInstances: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("tiny dataset produced %d leaves", tree.Leaves())
	}
	p, err := tree.Predict([]string{"x"}, []float64{10})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(p-20) > 1 {
		t.Fatalf("tiny linear data: Predict(10) = %v, want about 20", p)
	}
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	ds := dataset.MustNew("const", []string{"x"}, "y")
	src := rng.New(4)
	for i := 0; i < 200; i++ {
		_ = ds.Append([]float64{src.Float64()}, 7)
	}
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("constant target produced %d leaves", tree.Leaves())
	}
	p, err := tree.Predict([]string{"x"}, []float64{0.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(p-7) > 1e-6 {
		t.Fatalf("Predict = %v, want 7", p)
	}
}

func TestPruningReducesOrKeepsSize(t *testing.T) {
	// On purely linear data, pruning should collapse the tree to (nearly) a
	// single leaf since one linear model explains everything.
	ds := dataset.MustNew("linear", []string{"x", "z"}, "y")
	src := rng.New(5)
	for i := 0; i < 800; i++ {
		x := src.Float64Between(0, 100)
		z := src.Float64Between(0, 100)
		_ = ds.Append([]float64{x, z}, 2*x-z+3+src.Normal(0, 0.5))
	}
	pruned, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	unpruned, err := Fit(ds, Options{Unpruned: true})
	if err != nil {
		t.Fatalf("Fit unpruned: %v", err)
	}
	if pruned.Leaves() > unpruned.Leaves() {
		t.Fatalf("pruned tree has %d leaves, unpruned %d", pruned.Leaves(), unpruned.Leaves())
	}
	if pruned.Leaves() > 3 {
		t.Fatalf("pruned tree on globally linear data has %d leaves, want <= 3", pruned.Leaves())
	}
}

func TestSmoothingTogglesPredictions(t *testing.T) {
	train := piecewiseDataset(t, 400, 2.0, 6)
	smooth, err := Fit(train, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	rough, err := Fit(train, Options{NoSmoothing: true})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if smooth.Leaves() < 2 {
		t.Skip("tree collapsed to one leaf; smoothing indistinguishable")
	}
	attrs := train.Attrs()
	differs := false
	for _, x := range []float64{5, 25, 45, 49, 51, 55, 75, 95} {
		ps, err := smooth.Predict(attrs, []float64{x, 0.5})
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		pr, err := rough.Predict(attrs, []float64{x, 0.5})
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if math.Abs(ps-pr) > 1e-9 {
			differs = true
		}
	}
	if !differs {
		t.Fatalf("smoothing had no effect on any test point")
	}
}

func TestTreeShapeInvariant(t *testing.T) {
	ds := piecewiseDataset(t, 700, 3, 7)
	tree, err := Fit(ds, Options{MinInstances: 5})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if tree.InnerNodes() != tree.Leaves()-1 {
		t.Fatalf("inner=%d leaves=%d, want inner = leaves-1", tree.InnerNodes(), tree.Leaves())
	}
	if tree.Depth() == 0 && tree.Leaves() != 1 {
		t.Fatalf("depth 0 with %d leaves", tree.Leaves())
	}
}

func TestPredictSchemaHandling(t *testing.T) {
	ds := piecewiseDataset(t, 300, 0, 8)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Wider, reordered schema.
	p, err := tree.Predict([]string{"extra", "irrelevant", "x"}, []float64{1, 0.2, 20})
	if err != nil {
		t.Fatalf("Predict with reordered schema: %v", err)
	}
	if math.Abs(p-65) > 15 {
		t.Fatalf("Predict(x=20) = %v, want about 65", p)
	}
	if _, err := tree.Predict([]string{"x"}, []float64{1, 2}); err == nil {
		t.Fatalf("Predict with mismatched row length succeeded")
	}
	if _, err := tree.Predict([]string{"a", "b"}, []float64{1, 2}); err == nil {
		t.Fatalf("Predict with missing attributes succeeded")
	}
}

func TestTopSplitsAndAttributeCounts(t *testing.T) {
	// Build data where the dominant split attribute is known: y depends on a
	// threshold in "memory" and only weakly on "threads".
	ds := dataset.MustNew("rootcause", []string{"memory", "threads"}, "ttf")
	src := rng.New(9)
	for i := 0; i < 800; i++ {
		mem := src.Float64Between(0, 1000)
		thr := src.Float64Between(0, 100)
		var ttf float64
		if mem < 600 {
			ttf = 5000 - 2*mem + 0.5*thr
		} else {
			ttf = 1500 - 1.5*mem + 0.1*thr
		}
		_ = ds.Append([]float64{mem, thr}, ttf+src.Normal(0, 10))
	}
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	splits := tree.TopSplits(2)
	if len(splits) == 0 {
		t.Fatalf("TopSplits returned nothing for a tree with %d inner nodes", tree.InnerNodes())
	}
	if splits[0].Attr != "memory" {
		t.Fatalf("root split attribute = %q, want memory", splits[0].Attr)
	}
	if splits[0].Depth != 0 || splits[0].Instances != 800 {
		t.Fatalf("root split metadata = %+v", splits[0])
	}
	counts := tree.SplitAttributeCounts()
	if counts["memory"] == 0 {
		t.Fatalf("SplitAttributeCounts missing memory: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tree.InnerNodes() {
		t.Fatalf("split counts sum to %d, want %d inner nodes", total, tree.InnerNodes())
	}
}

func TestTopSplitsOnLeafOnlyTree(t *testing.T) {
	ds := dataset.MustNew("flat", []string{"x"}, "y")
	for i := 0; i < 30; i++ {
		_ = ds.Append([]float64{float64(i)}, 1)
	}
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := tree.TopSplits(3); len(got) != 0 {
		t.Fatalf("TopSplits on a single-leaf tree = %v, want empty", got)
	}
	if got := tree.SplitAttributeCounts(); len(got) != 0 {
		t.Fatalf("SplitAttributeCounts on a single-leaf tree = %v", got)
	}
}

func TestStringOutput(t *testing.T) {
	ds := piecewiseDataset(t, 300, 0, 10)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	s := tree.String()
	for _, want := range []string{"M5P model tree", "LM1", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAttrsReturnsCopy(t *testing.T) {
	ds := piecewiseDataset(t, 100, 0, 11)
	tree, err := Fit(ds, Options{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	a := tree.Attrs()
	a[0] = "mutated"
	if tree.Attrs()[0] == "mutated" {
		t.Fatalf("Attrs exposed internal storage")
	}
}

func TestSortByColumn(t *testing.T) {
	ds := dataset.MustNew("sort", []string{"x"}, "y")
	vals := []float64{5, -1, 3.5, 3.5, 0, 100, -7, 42}
	for _, v := range vals {
		_ = ds.Append([]float64{v}, v)
	}
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sortByColumn(ds, idx, 0)
	for i := 1; i < len(idx); i++ {
		if ds.Value(idx[i-1], 0) > ds.Value(idx[i], 0) {
			t.Fatalf("sortByColumn not sorted: %v", idx)
		}
	}
	// Stability: the two 3.5 values keep their original relative order.
	pos2, pos3 := -1, -1
	for i, id := range idx {
		if id == 2 {
			pos2 = i
		}
		if id == 3 {
			pos3 = i
		}
	}
	if pos2 > pos3 {
		t.Fatalf("sortByColumn is not stable: %v", idx)
	}
}

func TestEstimatedError(t *testing.T) {
	if got := estimatedError(10, 100, 4); math.Abs(got-10*105.0/95.0) > 1e-12 {
		t.Fatalf("estimatedError = %v", got)
	}
	if got := estimatedError(10, 3, 5); got != 100 {
		t.Fatalf("estimatedError with too few instances = %v, want 100", got)
	}
}

// Property: for data generated from a single global linear model, the M5P
// prediction matches the true function closely (pruning should reduce the
// tree to essentially one linear model).
func TestM5PMatchesGlobalLinearProperty(t *testing.T) {
	f := func(ci, bi int8, seed uint64) bool {
		c := float64(ci) / 10
		b := float64(bi)
		ds := dataset.MustNew("p", []string{"x"}, "y")
		src := rng.New(seed)
		for i := 0; i < 150; i++ {
			x := src.Float64Between(-100, 100)
			if err := ds.Append([]float64{x}, c*x+b); err != nil {
				return false
			}
		}
		tree, err := Fit(ds, Options{})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			x := src.Float64Between(-100, 100)
			p, err := tree.Predict([]string{"x"}, []float64{x})
			if err != nil {
				return false
			}
			want := c*x + b
			if math.Abs(p-want) > 1e-3*(1+math.Abs(want))+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions are always finite for finite inputs inside and
// slightly outside the training range.
func TestM5PFinitePredictionsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ds := piecewiseDataset(t, 300, 5, seed)
		tree, err := Fit(ds, Options{})
		if err != nil {
			return false
		}
		src := rng.New(seed ^ 0xabcdef)
		for i := 0; i < 30; i++ {
			x := src.Float64Between(-50, 150)
			p, err := tree.Predict([]string{"x", "irrelevant"}, []float64{x, src.Float64()})
			if err != nil {
				return false
			}
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
