package m5p

import (
	"fmt"

	"agingpred/internal/linreg"
)

// Snapshot is the serializable form of a fitted Tree: the training attribute
// names, the induction options that still matter at prediction time
// (smoothing), and the node structure with every node's linear model. Its
// JSON field names are part of internal/core's persisted model format and
// must not change without bumping the file format version.
type Snapshot struct {
	Attrs             []string      `json:"attrs"`
	TrainingInstances int           `json:"training_instances"`
	NoSmoothing       bool          `json:"no_smoothing,omitempty"`
	SmoothingK        float64       `json:"smoothing_k"`
	Root              *NodeSnapshot `json:"root"`
}

// NodeSnapshot is one serialized tree node. Leaves carry only their linear
// model; inner nodes carry the split and both children, plus the node model
// used for prediction smoothing and as the pruning candidate.
type NodeSnapshot struct {
	Leaf      bool             `json:"leaf,omitempty"`
	Attr      int              `json:"attr,omitempty"`
	Threshold float64          `json:"threshold,omitempty"`
	Left      *NodeSnapshot    `json:"left,omitempty"`
	Right     *NodeSnapshot    `json:"right,omitempty"`
	Model     *linreg.Snapshot `json:"model"`
	N         int              `json:"n"`
	SD        float64          `json:"sd,omitempty"`
}

// Snapshot captures the tree's state for serialization.
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{
		Attrs:             append([]string(nil), t.attrs...),
		TrainingInstances: t.TrainingInstances,
		NoSmoothing:       t.opts.NoSmoothing,
		SmoothingK:        t.opts.SmoothingK,
		Root:              snapshotNode(t.root),
	}
}

func snapshotNode(n *node) *NodeSnapshot {
	if n == nil {
		return nil
	}
	s := &NodeSnapshot{
		Leaf:  n.leaf,
		Model: n.model.Snapshot(),
		N:     n.n,
		SD:    n.sd,
	}
	if !n.leaf {
		s.Attr = n.attr
		s.Threshold = n.threshold
		s.Left = snapshotNode(n.left)
		s.Right = snapshotNode(n.right)
	}
	return s
}

// FromSnapshot reconstructs a Tree from its serialized form. Every node is
// validated — split attribute indices in range, both children present on
// inner nodes, a linear model on every node — so corrupt input yields an
// error, never a tree that panics at prediction time. The reconstructed tree
// descends and smooths exactly like the original, so predictions are
// bit-identical.
func FromSnapshot(s *Snapshot) (*Tree, error) {
	if s == nil {
		return nil, fmt.Errorf("m5p: nil snapshot")
	}
	if len(s.Attrs) == 0 {
		return nil, fmt.Errorf("m5p: snapshot has no attributes")
	}
	if s.Root == nil {
		return nil, fmt.Errorf("m5p: snapshot has no root node")
	}
	root, err := nodeFromSnapshot(s.Root, len(s.Attrs))
	if err != nil {
		return nil, err
	}
	opts := Options{NoSmoothing: s.NoSmoothing, SmoothingK: s.SmoothingK}
	if opts.SmoothingK <= 0 {
		opts.SmoothingK = DefaultSmoothingK
	}
	return &Tree{
		root:              root,
		attrs:             append([]string(nil), s.Attrs...),
		opts:              opts,
		TrainingInstances: s.TrainingInstances,
	}, nil
}

func nodeFromSnapshot(s *NodeSnapshot, numAttrs int) (*node, error) {
	if s.Model == nil {
		return nil, fmt.Errorf("m5p: snapshot node has no linear model")
	}
	model, err := linreg.FromSnapshot(s.Model)
	if err != nil {
		return nil, fmt.Errorf("m5p: snapshot node model: %w", err)
	}
	if s.N < 0 {
		return nil, fmt.Errorf("m5p: snapshot node has negative instance count %d", s.N)
	}
	n := &node{leaf: s.Leaf, model: model, n: s.N, sd: s.SD}
	if s.Leaf {
		if s.Left != nil || s.Right != nil {
			return nil, fmt.Errorf("m5p: snapshot leaf has children")
		}
		return n, nil
	}
	if s.Attr < 0 || s.Attr >= numAttrs {
		return nil, fmt.Errorf("m5p: snapshot split attribute %d out of range [0,%d)", s.Attr, numAttrs)
	}
	if s.Left == nil || s.Right == nil {
		return nil, fmt.Errorf("m5p: snapshot inner node is missing a child")
	}
	n.attr = s.Attr
	n.threshold = s.Threshold
	if n.left, err = nodeFromSnapshot(s.Left, numAttrs); err != nil {
		return nil, err
	}
	if n.right, err = nodeFromSnapshot(s.Right, numAttrs); err != nil {
		return nil, err
	}
	return n, nil
}
