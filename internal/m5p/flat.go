package m5p

import (
	"fmt"
	"math"
	"sort"
)

// This file is the flattened, array-backed form of a schema-bound M5P tree.
// Binding used to produce a pointer-linked mirror of the training tree; the
// serving hot path now walks parallel arrays instead:
//
//	node i   col[i]        split column, or leafCol (-1) for a leaf
//	         threshold[i]  split test is "row[col[i]] <= threshold[i]"
//	         left[i]       index of the <=-child (noChild for leaves)
//	         right[i]      index of the >-child (noChild for leaves)
//	         parent[i]     index of the parent (-1 for the root)
//	         n[i]          training instances reaching the node (smoothing)
//	         intercept[i]  constant term of the node's linear model
//	         modelOff[i]   first index of the node's terms in coeffs/cols;
//	                       the model spans [modelOff[i], modelOff[i+1])
//
// Nodes are stored in preorder, so every child index is strictly greater
// than its parent's — validate enforces it, which both bounds Predict's
// descent (indices strictly increase, so the walk terminates even if a
// corrupt layout were to slip through) and makes the downward walk move
// forward through memory. All leaf/inner linear models share the two
// contiguous coeffs/cols arrays, so evaluating a prediction touches a
// handful of small flat slices instead of chasing one heap object per node.

const (
	// leafCol marks a leaf in col.
	leafCol int32 = -1
	// noChild marks the absent children of a leaf in left/right.
	noChild int32 = -1
)

// BoundTree is a Tree bound once to a fixed row schema and flattened into
// parallel node arrays: split columns and every node's linear model are
// pre-resolved to row indices, so Predict performs no name lookups and no
// per-call allocations — the requirement of the per-checkpoint Observe hot
// path. A BoundTree is immutable and safe for concurrent use; every Session
// of a core.Model evaluates the model's one shared BoundTree.
type BoundTree struct {
	noSmoothing bool
	k           float64
	width       int // bound row width, for validation

	col       []int32
	threshold []float64
	left      []int32
	right     []int32
	parent    []int32
	n         []float64

	// Node linear models, laid out contiguously in node order.
	intercept []float64
	modelOff  []int32 // len(col)+1 entries; modelOff[len(col)] == len(coeffs)
	coeffs    []float64
	cols      []int32
}

// Predict evaluates the bound tree on a row laid out in the bound schema.
// The arithmetic — leaf-model evaluation and the smoothing filter back up
// the ancestor chain — matches Tree.Predict operation for operation, so the
// two paths produce bit-identical results. The ancestor walk uses the parent
// array, so smoothing needs no recursion and no per-call stack regardless of
// tree depth.
func (t *BoundTree) Predict(row []float64) float64 {
	// Local slice headers let the descent loop keep base pointers in
	// registers instead of reloading them through t every hop.
	col, threshold, left, right := t.col, t.threshold, t.left, t.right
	i := int32(0)
	for col[i] >= 0 {
		if row[col[i]] <= threshold[i] {
			i = left[i]
		} else {
			i = right[i]
		}
	}
	pred := t.evalModel(i, row)
	if t.noSmoothing {
		return pred
	}
	for i != 0 {
		p := t.parent[i]
		pred = (t.n[i]*pred + t.k*t.evalModel(p, row)) / (t.n[i] + t.k)
		i = p
	}
	return pred
}

// evalModel evaluates node i's linear model on the row, term for term in the
// same order as linreg.BoundModel.Predict (so inlined and stand-alone leaf
// models are bit-identical).
func (t *BoundTree) evalModel(i int32, row []float64) float64 {
	pred := t.intercept[i]
	coeffs, cols := t.coeffs, t.cols
	end := t.modelOff[i+1]
	for j := t.modelOff[i]; j < end; j++ {
		pred += coeffs[j] * row[cols[j]]
	}
	return pred
}

// PredictBatch evaluates the bound tree on every row, writing one prediction
// per row into out (len(out) must be >= len(rows)). Each row goes through
// exactly the scalar Predict walk, so batch and scalar results are
// bit-identical; batching amortises call overhead and keeps the node arrays
// hot in cache across a whole shard tick.
func (t *BoundTree) PredictBatch(rows [][]float64, out []float64) {
	for i, row := range rows {
		out[i] = t.Predict(row)
	}
}

// Columns returns every row column the bound tree can read — split columns
// plus all node-model columns — sorted ascending and de-duplicated.
// Consumers use it to skip computing feature columns the tree can never look
// at.
func (t *BoundTree) Columns() []int {
	seen := make(map[int]bool)
	for _, c := range t.col {
		if c >= 0 {
			seen[int(c)] = true
		}
	}
	for _, c := range t.cols {
		seen[int(c)] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// validate checks every structural invariant the Predict walk relies on, so
// that a malformed layout is rejected at construction time instead of
// panicking (or looping) at prediction time: consistent array lengths,
// children in range and strictly after their parent (which bounds the
// descent), a consistent parent array (which bounds the smoothing walk-up),
// split columns and model columns inside the bound row width, finite
// thresholds and model terms, and non-negative instance counts.
func (t *BoundTree) validate() error {
	nodes := len(t.col)
	if nodes == 0 {
		return fmt.Errorf("m5p: flattened tree has no nodes")
	}
	if len(t.threshold) != nodes || len(t.left) != nodes || len(t.right) != nodes ||
		len(t.parent) != nodes || len(t.n) != nodes || len(t.intercept) != nodes {
		return fmt.Errorf("m5p: flattened tree arrays disagree on node count %d", nodes)
	}
	if len(t.modelOff) != nodes+1 {
		return fmt.Errorf("m5p: flattened tree has %d model offsets for %d nodes", len(t.modelOff), nodes)
	}
	if len(t.coeffs) != len(t.cols) {
		return fmt.Errorf("m5p: flattened tree has %d coefficients for %d model columns", len(t.coeffs), len(t.cols))
	}
	if t.width <= 0 {
		return fmt.Errorf("m5p: flattened tree bound to non-positive row width %d", t.width)
	}
	if !t.noSmoothing && !(t.k > 0) || math.IsInf(t.k, 0) {
		return fmt.Errorf("m5p: flattened tree smoothing constant %v is not positive and finite", t.k)
	}
	if t.modelOff[0] != 0 || int(t.modelOff[nodes]) != len(t.coeffs) {
		return fmt.Errorf("m5p: flattened tree model offsets do not cover the term arrays")
	}
	if t.parent[0] != -1 {
		return fmt.Errorf("m5p: flattened tree root has parent %d", t.parent[0])
	}
	for i := 0; i < nodes; i++ {
		if t.modelOff[i] > t.modelOff[i+1] {
			return fmt.Errorf("m5p: flattened tree node %d has negative-length model", i)
		}
		if math.IsNaN(t.intercept[i]) || math.IsInf(t.intercept[i], 0) {
			return fmt.Errorf("m5p: flattened tree node %d intercept is not finite: %v", i, t.intercept[i])
		}
		if math.IsNaN(t.n[i]) || math.IsInf(t.n[i], 0) || t.n[i] < 0 {
			return fmt.Errorf("m5p: flattened tree node %d has invalid instance count %v", i, t.n[i])
		}
		if i > 0 {
			p := t.parent[i]
			if p < 0 || int(p) >= i {
				return fmt.Errorf("m5p: flattened tree node %d has parent %d outside [0,%d)", i, p, i)
			}
			if t.left[p] != int32(i) && t.right[p] != int32(i) {
				return fmt.Errorf("m5p: flattened tree node %d is not a child of its parent %d", i, p)
			}
		}
		if t.col[i] < 0 {
			// Leaf: no split, no children.
			if t.col[i] != leafCol {
				return fmt.Errorf("m5p: flattened tree node %d has invalid split column %d", i, t.col[i])
			}
			if t.left[i] != noChild || t.right[i] != noChild {
				return fmt.Errorf("m5p: flattened tree leaf %d has children", i)
			}
			continue
		}
		if int(t.col[i]) >= t.width {
			return fmt.Errorf("m5p: flattened tree node %d split column %d out of range [0,%d)", i, t.col[i], t.width)
		}
		if math.IsNaN(t.threshold[i]) || math.IsInf(t.threshold[i], 0) {
			return fmt.Errorf("m5p: flattened tree node %d threshold is not finite: %v", i, t.threshold[i])
		}
		l, r := t.left[i], t.right[i]
		// Children strictly after the parent is what guarantees the descent
		// terminates: the node index strictly increases on every hop.
		if int(l) <= i || int(l) >= nodes || int(r) <= i || int(r) >= nodes {
			return fmt.Errorf("m5p: flattened tree node %d child indices (%d,%d) out of range (%d,%d)", i, l, r, i, nodes)
		}
		if l == r {
			return fmt.Errorf("m5p: flattened tree node %d has the same node %d as both children", i, l)
		}
	}
	for j, c := range t.cols {
		if c < 0 || int(c) >= t.width {
			return fmt.Errorf("m5p: flattened tree model column %d out of range [0,%d)", c, t.width)
		}
		if math.IsNaN(t.coeffs[j]) || math.IsInf(t.coeffs[j], 0) {
			return fmt.Errorf("m5p: flattened tree model coefficient %d is not finite: %v", j, t.coeffs[j])
		}
	}
	return nil
}
