// Package m5p implements M5P model trees — the machine-learning algorithm the
// paper selects for on-line software aging prediction.
//
// An M5P model is a binary decision tree whose inner nodes test
// "attribute <= threshold?" and whose leaves hold multiple linear regression
// models (Quinlan's M5, with the improvements described by Wang & Witten,
// "Inducing Model Trees for Continuous Classes", ECML 1997 — the paper's
// reference [16], as implemented in WEKA). The rationale, quoted from the
// paper, is that a highly non-linear global behaviour (heap resizes, garbage
// collection, phase changes in the workload) is often piecewise linear, and a
// model tree captures exactly that.
//
// The implementation follows the standard M5 pipeline:
//
//  1. Grow: split nodes greedily by maximising the standard deviation
//     reduction (SDR) of the target, stopping at a minimum instance count or
//     when the node's standard deviation is a small fraction of the global
//     one.
//  2. Fit: attach a linear model (internal/linreg, with M5-style attribute
//     elimination) to every node.
//  3. Prune: bottom-up, replace a subtree by its node's linear model whenever
//     the model's estimated error is no worse than the subtree's.
//  4. Smooth: at prediction time, filter the leaf prediction through the
//     linear models of its ancestors to avoid discontinuities between
//     adjacent leaves.
//
// The package also exposes the structure of the learned tree (top splits,
// per-node attributes), which the paper uses as a root-cause hint: the
// attributes tested near the root are the resources most related to the
// coming failure.
package m5p

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"agingpred/internal/dataset"
	"agingpred/internal/linreg"
)

// DefaultMinInstances is the default minimum number of instances per leaf.
// The paper reports "using 10 instances to build every leaf" for all of its
// experiments.
const DefaultMinInstances = 10

// DefaultSmoothingK is the smoothing constant k in Quinlan's formula
// p' = (n·p + k·q)/(n + k); WEKA uses 15.
const DefaultSmoothingK = 15.0

// Options configures model-tree induction.
type Options struct {
	// MinInstances is the minimum number of instances per leaf (0 = 10).
	MinInstances int
	// MaxDepth caps tree depth (0 = 30).
	MaxDepth int
	// MinStdDevFraction stops splitting when a node's target standard
	// deviation falls below this fraction of the global standard deviation
	// (0 = 0.05).
	MinStdDevFraction float64
	// Unpruned disables the pruning step (WEKA's -N flag).
	Unpruned bool
	// NoSmoothing disables prediction smoothing (WEKA's -U flag).
	NoSmoothing bool
	// SmoothingK overrides the smoothing constant (0 = 15).
	SmoothingK float64
	// LeafMaxAttrs caps the number of attributes each node's linear model
	// may consider (0 = no cap). Large derived-feature sets (Table 2 has ~60
	// variables) benefit from a cap for training speed; accuracy is
	// essentially unchanged because the elimination step drops most of them
	// anyway.
	LeafMaxAttrs int
}

func (o Options) withDefaults() Options {
	if o.MinInstances <= 0 {
		o.MinInstances = DefaultMinInstances
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 30
	}
	if o.MinStdDevFraction <= 0 {
		o.MinStdDevFraction = 0.05
	}
	if o.SmoothingK <= 0 {
		o.SmoothingK = DefaultSmoothingK
	}
	return o
}

// Tree is a fitted M5P model tree.
type Tree struct {
	root  *node
	attrs []string
	opts  Options

	// TrainingInstances is the number of instances the tree was fitted on.
	TrainingInstances int
}

// node is one tree node. Every node (internal or leaf) carries a linear
// model: internal nodes need one for smoothing and as the pruning candidate.
type node struct {
	attr      int
	threshold float64
	left      *node
	right     *node

	leaf  bool
	model *linreg.Model

	n  int     // training instances reaching this node
	sd float64 // target standard deviation at this node
}

// Split describes one internal node test, used for root-cause inspection.
type Split struct {
	// Attr is the attribute name tested.
	Attr string
	// Threshold is the split value ("Attr <= Threshold?").
	Threshold float64
	// Depth is the node's depth (0 = root).
	Depth int
	// Instances is the number of training instances that reached the node.
	Instances int
}

// Fit builds an M5P model tree for the dataset.
func Fit(ds *dataset.Dataset, opts Options) (*Tree, error) {
	if ds == nil {
		return nil, errors.New("m5p: nil dataset")
	}
	if ds.Len() == 0 {
		return nil, errors.New("m5p: empty dataset")
	}
	opts = opts.withDefaults()
	if ds.Len() < opts.MinInstances {
		// Not enough data for even one leaf at the requested size: fall back
		// to whatever we have rather than failing, because on-line training
		// may legitimately start with very short executions.
		opts.MinInstances = ds.Len()
	}

	t := &Tree{
		attrs:             ds.Attrs(),
		opts:              opts,
		TrainingInstances: ds.Len(),
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	globalSD := ds.TargetStats().StdDev

	var err error
	t.root, err = t.grow(ds, idx, 0, globalSD)
	if err != nil {
		return nil, err
	}
	if _, err := t.fitModels(ds, t.root, idx, true); err != nil {
		return nil, err
	}
	if !opts.Unpruned {
		t.prune(ds, t.root, idx)
	}
	return t, nil
}

// grow recursively builds the unpruned tree structure.
func (t *Tree) grow(ds *dataset.Dataset, idx []int, depth int, globalSD float64) (*node, error) {
	n := &node{n: len(idx), leaf: true, sd: stdDevTarget(ds, idx)}
	if len(idx) < 2*t.opts.MinInstances || depth >= t.opts.MaxDepth {
		return n, nil
	}
	if n.sd <= t.opts.MinStdDevFraction*globalSD {
		return n, nil
	}
	attr, threshold, ok := bestSplit(ds, idx, t.opts.MinInstances)
	if !ok {
		return n, nil
	}
	var left, right []int
	for _, i := range idx {
		if ds.Value(i, attr) <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.opts.MinInstances || len(right) < t.opts.MinInstances {
		return n, nil
	}
	n.leaf = false
	n.attr = attr
	n.threshold = threshold
	var err error
	n.left, err = t.grow(ds, left, depth+1, globalSD)
	if err != nil {
		return nil, err
	}
	n.right, err = t.grow(ds, right, depth+1, globalSD)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// fitModels attaches a linear model to every node (post-order) and returns
// the set of attribute columns tested anywhere in the node's subtree.
//
// Following M5 (Quinlan) and M5' (Wang & Witten), a node's linear model may
// only use the attributes that appear in split tests within its subtree:
// leaves therefore get intercept-only (constant) models, and the richer
// linear models live at interior nodes, becoming leaf models when pruning
// collapses their subtree. This restriction is what keeps M5P's leaves from
// extrapolating wildly on inputs outside the training distribution.
//
// The single exception is a tree that never split at all (tiny or constant
// training data): its lone node falls back to a plain linear model over all
// attributes, which is what a degenerate model tree is.
func (t *Tree) fitModels(ds *dataset.Dataset, n *node, idx []int, isRoot bool) (map[int]bool, error) {
	sub, err := ds.Subset(idx)
	if err != nil {
		return nil, fmt.Errorf("m5p: building node dataset: %w", err)
	}

	if n.leaf {
		var columns []int
		if isRoot {
			columns = nil // degenerate tree: use every attribute
		} else {
			columns = []int{} // constant model
		}
		n.model, err = linreg.Fit(sub, linreg.Options{
			EliminateAttrs: true,
			MaxAttrs:       t.opts.LeafMaxAttrs,
			Columns:        columns,
		})
		if err != nil {
			return nil, fmt.Errorf("m5p: fitting leaf model: %w", err)
		}
		return map[int]bool{}, nil
	}

	var left, right []int
	for _, i := range idx {
		if ds.Value(i, n.attr) <= n.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	leftAttrs, err := t.fitModels(ds, n.left, left, false)
	if err != nil {
		return nil, err
	}
	rightAttrs, err := t.fitModels(ds, n.right, right, false)
	if err != nil {
		return nil, err
	}
	subtree := map[int]bool{n.attr: true}
	for a := range leftAttrs {
		subtree[a] = true
	}
	for a := range rightAttrs {
		subtree[a] = true
	}
	columns := make([]int, 0, len(subtree))
	for a := range subtree {
		columns = append(columns, a)
	}
	n.model, err = linreg.Fit(sub, linreg.Options{
		EliminateAttrs: true,
		MaxAttrs:       t.opts.LeafMaxAttrs,
		Columns:        columns,
	})
	if err != nil {
		return nil, fmt.Errorf("m5p: fitting node model: %w", err)
	}
	return subtree, nil
}

// prune walks the tree bottom-up, replacing a subtree by its node model when
// the node model's estimated error is no worse than the subtree's estimated
// error. It returns the estimated error of (possibly pruned) n.
func (t *Tree) prune(ds *dataset.Dataset, n *node, idx []int) float64 {
	nodeErr := estimatedError(t.nodeModelMAE(ds, n, idx), len(idx), n.model.NumAttrs())
	if n.leaf {
		return nodeErr
	}
	var left, right []int
	for _, i := range idx {
		if ds.Value(i, n.attr) <= n.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	leftErr := t.prune(ds, n.left, left)
	rightErr := t.prune(ds, n.right, right)
	subtreeErr := (leftErr*float64(len(left)) + rightErr*float64(len(right))) / float64(len(idx))

	if nodeErr <= subtreeErr {
		// The single linear model at this node is at least as good as the
		// whole subtree below it: collapse.
		n.leaf = true
		n.left = nil
		n.right = nil
		return nodeErr
	}
	return subtreeErr
}

// nodeModelMAE computes the MAE of the node's linear model over the given
// instances.
func (t *Tree) nodeModelMAE(ds *dataset.Dataset, n *node, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range idx {
		p, err := n.model.Predict(t.attrs, ds.Row(i))
		if err != nil {
			// The node model was fitted on this very schema; an error here is
			// a programming bug, but degrade gracefully by treating the
			// prediction as the worst case rather than panicking.
			p = math.Inf(1)
		}
		sum += math.Abs(p - ds.TargetValue(i))
	}
	return sum / float64(len(idx))
}

// estimatedError applies M5's (n+v)/(n-v) pessimistic correction to a
// training error.
func estimatedError(mae float64, n, params int) float64 {
	v := params + 1
	if n <= v {
		return mae * 10 // heavily penalise models with more parameters than data
	}
	return mae * float64(n+v) / float64(n-v)
}

// bestSplit finds the (attribute, threshold) maximising SDR. Shared logic
// with internal/regtree but kept local so the two packages stay independent
// (they are alternative models, not layers).
func bestSplit(ds *dataset.Dataset, idx []int, minInstances int) (attr int, threshold float64, ok bool) {
	parentSD := stdDevTarget(ds, idx)
	if parentSD == 0 {
		return 0, 0, false
	}
	bestSDR := 0.0
	nTotal := float64(len(idx))

	sorted := make([]int, len(idx))
	for col := 0; col < ds.NumAttrs(); col++ {
		copy(sorted, idx)
		sortByColumn(ds, sorted, col)

		var leftSum, leftSumSq float64
		var rightSum, rightSumSq float64
		for _, i := range sorted {
			v := ds.TargetValue(i)
			rightSum += v
			rightSumSq += v * v
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			v := ds.TargetValue(sorted[pos])
			leftSum += v
			leftSumSq += v * v
			rightSum -= v
			rightSumSq -= v * v

			cur := ds.Value(sorted[pos], col)
			next := ds.Value(sorted[pos+1], col)
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(sorted) - nLeft
			if nLeft < minInstances || nRight < minInstances {
				continue
			}
			sdLeft := stdDevFromSums(leftSum, leftSumSq, nLeft)
			sdRight := stdDevFromSums(rightSum, rightSumSq, nRight)
			sdr := parentSD - (float64(nLeft)/nTotal)*sdLeft - (float64(nRight)/nTotal)*sdRight
			if sdr > bestSDR {
				bestSDR = sdr
				attr = col
				threshold = (cur + next) / 2
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

// sortByColumn sorts idx ascending by the given attribute column using a
// bottom-up merge sort over a scratch buffer (stable, no per-comparison
// allocations).
func sortByColumn(ds *dataset.Dataset, idx []int, col int) {
	n := len(idx)
	if n < 2 {
		return
	}
	buf := make([]int, n)
	src, dst := idx, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if ds.Value(src[i], col) <= ds.Value(src[j], col) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			for i < mid {
				dst[k] = src[i]
				i++
				k++
			}
			for j < hi {
				dst[k] = src[j]
				j++
				k++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
}

func stdDevTarget(ds *dataset.Dataset, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		v := ds.TargetValue(i)
		sum += v
		sumSq += v * v
	}
	return stdDevFromSums(sum, sumSq, len(idx))
}

func stdDevFromSums(sum, sumSq float64, n int) float64 {
	if n < 1 {
		return 0
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// Predict returns the model tree's prediction for a row described by attrs.
// The schema may be wider or reordered relative to the training schema as
// long as every training attribute is present.
func (t *Tree) Predict(attrs []string, row []float64) (float64, error) {
	if len(attrs) != len(row) {
		return 0, fmt.Errorf("m5p: %d attribute names for %d values", len(attrs), len(row))
	}
	colOf, err := t.bindSchema(attrs)
	if err != nil {
		return 0, err
	}
	return t.predictNode(t.root, attrs, row, colOf)
}

func (t *Tree) bindSchema(attrs []string) ([]int, error) {
	colOf := make([]int, len(t.attrs))
	for j, name := range t.attrs {
		found := -1
		for i, a := range attrs {
			if a == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("m5p: instance schema is missing attribute %q", name)
		}
		colOf[j] = found
	}
	return colOf, nil
}

// predictNode implements smoothed prediction: descend to the leaf, then
// filter the prediction back up through the ancestors' linear models.
func (t *Tree) predictNode(n *node, attrs []string, row []float64, colOf []int) (float64, error) {
	if n.leaf {
		return n.model.Predict(attrs, row)
	}
	child := n.right
	if row[colOf[n.attr]] <= n.threshold {
		child = n.left
	}
	childPred, err := t.predictNode(child, attrs, row, colOf)
	if err != nil {
		return 0, err
	}
	if t.opts.NoSmoothing {
		return childPred, nil
	}
	nodePred, err := n.model.Predict(attrs, row)
	if err != nil {
		return 0, err
	}
	k := t.opts.SmoothingK
	cn := float64(child.n)
	return (cn*childPred + k*nodePred) / (cn + k), nil
}

// Bind resolves the tree against the given row schema once and compiles it
// into the flattened array layout of BoundTree (see flat.go). The schema may
// be wider or reordered as long as every training attribute is present.
func (t *Tree) Bind(attrs []string) (*BoundTree, error) {
	colOf, err := t.bindSchema(attrs)
	if err != nil {
		return nil, err
	}
	b := &BoundTree{
		noSmoothing: t.opts.NoSmoothing,
		k:           t.opts.SmoothingK,
		width:       len(attrs),
	}
	if _, err := b.flatten(t.root, attrs, colOf, -1); err != nil {
		return nil, err
	}
	b.modelOff = append(b.modelOff, int32(len(b.coeffs)))
	// Bind only ever emits well-formed layouts; validating here guarantees
	// that invariant holds for every tree the hot path will walk, at a cost
	// paid once per binding, never per prediction.
	if err := b.validate(); err != nil {
		return nil, fmt.Errorf("m5p: flattened tree failed validation: %w", err)
	}
	return b, nil
}

// flatten appends n's subtree to the bound tree in preorder (children always
// at higher indices than their parent) and returns n's node index.
func (b *BoundTree) flatten(n *node, attrs []string, colOf []int, parent int32) (int32, error) {
	bm, err := n.model.Bind(attrs)
	if err != nil {
		return 0, err
	}
	i := int32(len(b.col))
	b.col = append(b.col, leafCol)
	b.threshold = append(b.threshold, 0)
	b.left = append(b.left, noChild)
	b.right = append(b.right, noChild)
	b.parent = append(b.parent, parent)
	b.n = append(b.n, float64(n.n))
	intercept, coeffs, cols := bm.Terms()
	b.intercept = append(b.intercept, intercept)
	b.modelOff = append(b.modelOff, int32(len(b.coeffs)))
	for j := range coeffs {
		b.coeffs = append(b.coeffs, coeffs[j])
		b.cols = append(b.cols, int32(cols[j]))
	}
	if n.leaf {
		return i, nil
	}
	b.col[i] = int32(colOf[n.attr])
	b.threshold[i] = n.threshold
	l, err := b.flatten(n.left, attrs, colOf, i)
	if err != nil {
		return 0, err
	}
	r, err := b.flatten(n.right, attrs, colOf, i)
	if err != nil {
		return 0, err
	}
	b.left[i] = l
	b.right[i] = r
	return i, nil
}

// PredictDataset returns predictions for every instance of ds.
func (t *Tree) PredictDataset(ds *dataset.Dataset) ([]float64, error) {
	attrs := ds.Attrs()
	out := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		v, err := t.Predict(attrs, ds.Row(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return countLeaves(t.root) }

// InnerNodes returns the number of internal nodes.
func (t *Tree) InnerNodes() int { return countInner(t.root) }

// Depth returns the tree depth (a single leaf is depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

// Attrs returns the training attribute names.
func (t *Tree) Attrs() []string { return append([]string(nil), t.attrs...) }

func countLeaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func countInner(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	return 1 + countInner(n.left) + countInner(n.right)
}

func nodeDepth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// TopSplits returns the splits of the first maxDepth levels of the tree in
// breadth-first order. The paper inspects exactly these to hint at the root
// cause of the coming failure (e.g. "the root tests system memory; below
// 1306 MB the next test is Tomcat memory").
func (t *Tree) TopSplits(maxDepth int) []Split {
	var out []Split
	type queued struct {
		n     *node
		depth int
	}
	queue := []queued{{t.root, 0}}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if q.n == nil || q.n.leaf || q.depth >= maxDepth {
			continue
		}
		out = append(out, Split{
			Attr:      t.attrs[q.n.attr],
			Threshold: q.n.threshold,
			Depth:     q.depth,
			Instances: q.n.n,
		})
		queue = append(queue, queued{q.n.left, q.depth + 1}, queued{q.n.right, q.depth + 1})
	}
	return out
}

// SplitAttributeCounts returns, for every attribute that appears in at least
// one split, the number of internal nodes testing it. Attributes that
// dominate the splits are the strongest root-cause candidates.
func (t *Tree) SplitAttributeCounts() map[string]int {
	counts := make(map[string]int)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		counts[t.attrs[n.attr]]++
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return counts
}

// String renders the model tree in WEKA-like indented form, with the linear
// model of every leaf.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "M5P model tree (%d inner nodes, %d leaves, %d training instances)\n",
		t.InnerNodes(), t.Leaves(), t.TrainingInstances)
	leafID := 0
	t.writeNode(&b, t.root, 0, &leafID)
	return b.String()
}

func (t *Tree) writeNode(b *strings.Builder, n *node, indent int, leafID *int) {
	pad := strings.Repeat("  ", indent)
	if n.leaf {
		*leafID++
		fmt.Fprintf(b, "%sLM%d (n=%d): %s = %s\n", pad, *leafID, n.n, "target", n.model.String())
		return
	}
	fmt.Fprintf(b, "%s%s <= %.6g (n=%d)\n", pad, t.attrs[n.attr], n.threshold, n.n)
	t.writeNode(b, n.left, indent+1, leafID)
	fmt.Fprintf(b, "%s%s > %.6g\n", pad, t.attrs[n.attr], n.threshold)
	t.writeNode(b, n.right, indent+1, leafID)
}
