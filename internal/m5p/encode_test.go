package m5p

import (
	"encoding/json"
	"testing"

	"agingpred/internal/linreg"
)

// TestSnapshotRoundTrip fits a tree on the shared synthetic dataset, pushes
// it through Snapshot → JSON → FromSnapshot, and checks the reconstructed
// tree is structurally identical and predicts bit-identically — including
// the smoothing filter, which depends on per-node instance counts.
func TestSnapshotRoundTrip(t *testing.T) {
	ds := piecewiseDataset(t, 400, 0.05, 7)
	tree, err := Fit(ds, Options{MinInstances: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	raw, err := json.Marshal(tree.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	got, err := FromSnapshot(&snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if got.Leaves() != tree.Leaves() || got.InnerNodes() != tree.InnerNodes() || got.Depth() != tree.Depth() {
		t.Fatalf("structure changed: %d/%d/%d vs %d/%d/%d leaves/inner/depth",
			got.Leaves(), got.InnerNodes(), got.Depth(), tree.Leaves(), tree.InnerNodes(), tree.Depth())
	}
	if got.String() != tree.String() {
		t.Fatalf("rendered tree changed across the round trip")
	}
	attrs := ds.Attrs()
	for i := 0; i < ds.Len(); i++ {
		want, err := tree.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predict(attrs, ds.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if want != have {
			t.Fatalf("row %d: reconstructed tree predicts %v, original %v", i, have, want)
		}
	}
}

// TestFromSnapshotValidation drives every malformed-snapshot branch: corrupt
// structure must error, never build a tree that panics later.
func TestFromSnapshotValidation(t *testing.T) {
	leaf := func() *NodeSnapshot {
		return &NodeSnapshot{Leaf: true, N: 10, Model: &linreg.Snapshot{Intercept: 1}}
	}
	cases := []struct {
		name string
		snap *Snapshot
	}{
		{"nil", nil},
		{"no-attrs", &Snapshot{Root: leaf()}},
		{"no-root", &Snapshot{Attrs: []string{"a"}}},
		{"leaf-without-model", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{Leaf: true, N: 1}}},
		{"leaf-with-children", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Leaf: true, N: 1, Model: &linreg.Snapshot{}, Left: leaf()}}},
		{"split-out-of-range", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Attr: 5, N: 20, Model: &linreg.Snapshot{}, Left: leaf(), Right: leaf()}}},
		{"missing-child", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Attr: 0, N: 20, Model: &linreg.Snapshot{}, Left: leaf()}}},
		{"negative-count", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Leaf: true, N: -3, Model: &linreg.Snapshot{}}}},
		{"bad-node-model", &Snapshot{Attrs: []string{"a"}, Root: &NodeSnapshot{
			Leaf: true, N: 1, Model: &linreg.Snapshot{Attrs: []string{"x"}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromSnapshot(tc.snap); err == nil {
				t.Fatalf("malformed snapshot accepted")
			}
		})
	}
}
