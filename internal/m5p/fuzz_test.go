package m5p

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"agingpred/internal/dataset"
)

// FuzzFlattenTree fuzzes the flattened-tree layer below the encode/decode
// format (FuzzDecodeModel covers the artifact bytes): arbitrary parallel-array
// layouts — corrupt child/parent indices, NaN thresholds, out-of-range model
// columns, truncated term arrays — are handed to validate, which must reject
// every inconsistent layout with an error, never a panic or a hang. Layouts
// that validate accepts are then evaluated: Predict must terminate (the
// strictly-increasing child indices it just verified bound the descent) and
// PredictBatch must agree with it bit for bit.
//
// The seed corpus is real flattened trees — smoothed, unsmoothed, single-leaf
// — serialized by flatBytes, so the fuzzer starts from valid layouts and
// mutates them into near-valid ones, the corruptions validate exists for.
func FuzzFlattenTree(f *testing.F) {
	for _, tree := range corpusTrees(f) {
		f.Add(flatBytes(tree))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		bt := decodeFlat(data)
		if bt == nil {
			return
		}
		if err := bt.validate(); err != nil {
			return // rejected is fine; only panics and hangs are bugs
		}
		rows := fuzzRows(bt.width)
		out := make([]float64, len(rows))
		bt.PredictBatch(rows, out)
		for i, row := range rows {
			if got := bt.Predict(row); math.Float64bits(got) != math.Float64bits(out[i]) {
				t.Fatalf("row %d: batch %v != scalar %v", i, out[i], got)
			}
		}
	})
}

// corpusTrees fits a few small real trees covering the layout variants.
func corpusTrees(f *testing.F) []*BoundTree {
	attrs := []string{"a", "b", "c"}
	ds, err := dataset.New("fuzz-corpus", attrs, "y")
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		a := float64(i%40) - 20
		b := float64((i*7)%30) - 15
		c := float64((i * 13) % 11)
		y := 2*a - b
		if a > 0 {
			y += 5 * c
		}
		if err := ds.Append([]float64{a, b, c}, y); err != nil {
			f.Fatal(err)
		}
	}
	var trees []*BoundTree
	for _, opts := range []Options{
		{MinInstances: 5},
		{MinInstances: 5, NoSmoothing: true},
		{MinInstances: 200}, // single leaf
	} {
		tree, err := Fit(ds, opts)
		if err != nil {
			f.Fatal(err)
		}
		bound, err := tree.Bind(attrs)
		if err != nil {
			f.Fatal(err)
		}
		trees = append(trees, bound)
	}
	return trees
}

// The corpus wire format: a small header, then the parallel arrays in field
// order. decodeFlat reads it back leniently — arrays cut short by truncated
// input stay short — so byte-level truncations become exactly the
// inconsistent-length layouts validate must reject.
func flatBytes(t *BoundTree) []byte {
	var b bytes.Buffer
	le := binary.LittleEndian
	w := func(v any) { _ = binary.Write(&b, le, v) }
	w(uint16(len(t.col)))
	w(uint16(t.width))
	var flags uint8
	if t.noSmoothing {
		flags = 1
	}
	w(flags)
	w(t.k)
	w(uint32(len(t.coeffs)))
	w(t.col)
	w(t.threshold)
	w(t.left)
	w(t.right)
	w(t.parent)
	w(t.n)
	w(t.intercept)
	w(t.modelOff)
	w(t.coeffs)
	w(t.cols)
	return b.Bytes()
}

const (
	fuzzMaxNodes = 1 << 10
	fuzzMaxWidth = 1 << 8
	fuzzMaxTerms = 1 << 12
)

// decodeFlat builds a candidate BoundTree from fuzz bytes, without judging
// its consistency — that is validate's job. It returns nil only when the
// header is unreadable or the sizes would allocate unreasonably.
func decodeFlat(data []byte) *BoundTree {
	r := bytes.NewReader(data)
	le := binary.LittleEndian
	var nodes, width uint16
	var flags uint8
	var k float64
	var terms uint32
	if binary.Read(r, le, &nodes) != nil ||
		binary.Read(r, le, &width) != nil ||
		binary.Read(r, le, &flags) != nil ||
		binary.Read(r, le, &k) != nil ||
		binary.Read(r, le, &terms) != nil {
		return nil
	}
	if nodes == 0 || nodes > fuzzMaxNodes || width > fuzzMaxWidth || terms > fuzzMaxTerms {
		return nil
	}
	n := int(nodes)
	bt := &BoundTree{
		noSmoothing: flags&1 != 0,
		k:           k,
		width:       int(width),
		col:         readI32(r, n),
		threshold:   readF64(r, n),
		left:        readI32(r, n),
		right:       readI32(r, n),
		parent:      readI32(r, n),
		n:           readF64(r, n),
		intercept:   readF64(r, n),
		modelOff:    readI32(r, n+1),
		coeffs:      readF64(r, int(terms)),
		cols:        readI32(r, int(terms)),
	}
	return bt
}

// readI32/readF64 read up to n values, returning a short slice when the
// input runs out (a truncated layout, for validate to reject).
func readI32(r *bytes.Reader, n int) []int32 {
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		var v int32
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			break
		}
		out = append(out, v)
	}
	return out
}

func readF64(r *bytes.Reader, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		var v float64
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			break
		}
		out = append(out, v)
	}
	return out
}

// fuzzRows deterministically covers the input space a valid tree must cope
// with: ordinary magnitudes, huge magnitudes, zeros, and NaN/Inf entries
// (comparisons against NaN simply fall to the right child — no panic).
func fuzzRows(width int) [][]float64 {
	if width <= 0 {
		return nil
	}
	specials := []float64{0, 1, -1, 1e300, -1e300, math.NaN(), math.Inf(1), math.Inf(-1)}
	rows := make([][]float64, 0, 8+len(specials))
	for i := 0; i < 8; i++ {
		row := make([]float64, width)
		for j := range row {
			row[j] = float64((i*37+j*11)%200 - 100)
		}
		rows = append(rows, row)
	}
	for _, s := range specials {
		row := make([]float64, width)
		for j := range row {
			row[j] = s
		}
		rows = append(rows, row)
	}
	return rows
}
