// Package jvm simulates a generational Java heap (Young / Old / Permanent
// zones) the way the paper's Tomcat 5.5 + JDK 1.5 testbed behaves from the
// outside.
//
// The predictor in this repository never talks to a real JVM: it only sees
// the metric checkpoints described in Table 2 of the paper. What matters is
// therefore that this simulator reproduces the observable phenomenology the
// paper builds its argument on:
//
//   - Section 2.1.1 (Figure 1): even under a constant-rate memory leak, the
//     memory used from the operating-system perspective is non-linear, with
//     flat zones every time the heap management system resizes the Old zone
//     and frees part of the application's memory.
//   - Section 2.1.2 (Figure 2): a periodic acquire/release pattern is clearly
//     visible from the JVM perspective (Young+Old used) but invisible from
//     the OS perspective, because Linux does not reclaim memory freed by a
//     process until another process needs it.
//
// The model is intentionally coarse-grained — allocation volumes are tracked
// in MB rather than as object graphs — but the GC/resize/promotion dynamics
// (minor collections, promotion of survivors, Old-zone growth steps, full
// collections, OutOfMemory on exhaustion) follow the real generational
// collector closely enough to produce the curves above.
package jvm

import (
	"errors"
	"fmt"
	"math"
)

// Config describes the heap geometry. All sizes are in MB. The defaults
// mirror the paper's testbed: a 1 GB heap (jdk1.5 -Xmx1024m) with a
// conventional Young/Old/Permanent split.
type Config struct {
	// MaxHeapMB is the maximum total heap size (-Xmx). Default 1024.
	MaxHeapMB float64
	// YoungMB is the (fixed) size of the Young generation. Default 128.
	YoungMB float64
	// PermMB is the (fixed) size of the Permanent generation, which the
	// paper observes to stay constant during its experiments. Default 64.
	PermMB float64
	// InitialOldMB is the initial committed size of the Old generation
	// (-Xms-style). Default 256.
	InitialOldMB float64
	// OldResizeStepMB is how much committed Old space is added on each
	// resize. Default 128.
	OldResizeStepMB float64
	// OldResizeThreshold is the Old-zone occupancy (fraction of committed)
	// above which a full GC triggers a resize. Default 0.75.
	OldResizeThreshold float64
	// PromotionFraction is the fraction of non-leaked transient data in the
	// Young zone that survives a minor collection and is promoted to Old.
	// Default 0.05.
	PromotionFraction float64
	// ProcessBaseMB is the non-heap memory of the server process (code,
	// native allocations, thread stacks are accounted separately). Default
	// 150.
	ProcessBaseMB float64
	// ThreadStackMB is the native stack size charged to the process for
	// every live thread. Default 0.5 (512 KB, the JDK 1.5 default on Linux).
	ThreadStackMB float64
}

// withDefaults fills zero fields with the testbed defaults.
func (c Config) withDefaults() Config {
	def := Config{
		MaxHeapMB:          1024,
		YoungMB:            128,
		PermMB:             64,
		InitialOldMB:       256,
		OldResizeStepMB:    128,
		OldResizeThreshold: 0.75,
		PromotionFraction:  0.05,
		ProcessBaseMB:      150,
		ThreadStackMB:      0.5,
	}
	if c.MaxHeapMB > 0 {
		def.MaxHeapMB = c.MaxHeapMB
	}
	if c.YoungMB > 0 {
		def.YoungMB = c.YoungMB
	}
	if c.PermMB > 0 {
		def.PermMB = c.PermMB
	}
	if c.InitialOldMB > 0 {
		def.InitialOldMB = c.InitialOldMB
	}
	if c.OldResizeStepMB > 0 {
		def.OldResizeStepMB = c.OldResizeStepMB
	}
	if c.OldResizeThreshold > 0 {
		def.OldResizeThreshold = c.OldResizeThreshold
	}
	if c.PromotionFraction > 0 {
		def.PromotionFraction = c.PromotionFraction
	}
	if c.ProcessBaseMB > 0 {
		def.ProcessBaseMB = c.ProcessBaseMB
	}
	if c.ThreadStackMB > 0 {
		def.ThreadStackMB = c.ThreadStackMB
	}
	return def
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.YoungMB+c.PermMB+c.InitialOldMB > c.MaxHeapMB {
		return fmt.Errorf("jvm: young (%g) + perm (%g) + initial old (%g) exceed max heap %g MB",
			c.YoungMB, c.PermMB, c.InitialOldMB, c.MaxHeapMB)
	}
	if c.OldResizeThreshold >= 1 {
		return fmt.Errorf("jvm: old resize threshold %g must be < 1", c.OldResizeThreshold)
	}
	if c.PromotionFraction >= 1 {
		return fmt.Errorf("jvm: promotion fraction %g must be < 1", c.PromotionFraction)
	}
	return nil
}

// ErrOutOfMemory is returned when an allocation cannot be satisfied even
// after a full collection with the Old zone grown to its maximum size. It
// corresponds to the java.lang.OutOfMemoryError that crashes the paper's
// Tomcat server.
var ErrOutOfMemory = errors.New("jvm: out of memory")

// Heap is the simulated generational heap. It is not safe for concurrent
// use; the discrete-event testbed drives it from a single goroutine.
type Heap struct {
	cfg Config

	// Young zone: transient request data. youngUsed is the currently
	// occupied part.
	youngUsed float64

	// Old zone. oldCommitted grows in steps up to the maximum; the used part
	// is split into three kinds so collections know what they may free:
	//   oldGarbage  – promoted transient data, freed by a full GC
	//   oldRetained – memory acquired by the application and releasable on
	//                 request (the acquire/release pattern of Figure 2)
	//   oldLeaked   – leaked memory, never freed (the aging fault)
	oldCommitted float64
	oldGarbage   float64
	oldRetained  float64
	oldLeaked    float64

	permUsed float64

	// peakHeapUsed is the high-water mark of total heap usage; the OS-level
	// view of the process never shrinks below it (Linux keeps the pages
	// mapped until some other process needs them).
	peakHeapUsed float64

	// liveThreads is maintained by the owner (application server); each
	// thread charges ThreadStackMB of native memory to the OS view and a
	// small amount of heap for its java.lang.Thread object.
	liveThreads int

	stats Stats
}

// Stats counts collector activity, mostly for tests, debugging and the
// GC-overhead component of the response-time model.
type Stats struct {
	MinorCollections int
	FullCollections  int
	OldResizes       int
	AllocatedMB      float64
	PromotedMB       float64
	LeakedMB         float64
	RetainedMB       float64
	ReleasedMB       float64
}

// NewHeap creates a heap with the given configuration.
func NewHeap(cfg Config) (*Heap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	h := &Heap{
		cfg:          cfg,
		oldCommitted: cfg.InitialOldMB,
		permUsed:     cfg.PermMB * 0.6, // loaded classes; constant, per the paper
	}
	h.peakHeapUsed = h.HeapUsedMB()
	return h, nil
}

// Config returns the effective (defaulted) configuration.
func (h *Heap) Config() Config { return h.cfg }

// oldMaxMB is the largest committed size the Old zone may reach.
func (h *Heap) oldMaxMB() float64 {
	return h.cfg.MaxHeapMB - h.cfg.YoungMB - h.cfg.PermMB
}

func (h *Heap) oldUsed() float64 { return h.oldGarbage + h.oldRetained + h.oldLeaked }

// Allocate simulates the transient allocations of one or more requests:
// sizeMB is placed in the Young zone; when Young fills up a minor collection
// runs, promoting a small fraction of the survivors to Old. It returns
// ErrOutOfMemory when the heap is exhausted.
func (h *Heap) Allocate(sizeMB float64) error {
	return h.allocate(sizeMB, allocTransient)
}

// AllocateLeak simulates the aging fault: sizeMB of objects that stay
// reachable forever. They transit through Young like any allocation but are
// never collected once promoted.
func (h *Heap) AllocateLeak(sizeMB float64) error {
	return h.allocate(sizeMB, allocLeak)
}

// AllocateRetained simulates the acquire phase of the periodic pattern:
// memory that stays reachable until ReleaseRetained is called.
func (h *Heap) AllocateRetained(sizeMB float64) error {
	return h.allocate(sizeMB, allocRetained)
}

// ReleaseRetained drops up to sizeMB of retained memory, making it garbage
// that the next full collection can reclaim (the JVM-perspective usage drops
// at the next collection; the OS perspective does not).
func (h *Heap) ReleaseRetained(sizeMB float64) {
	if sizeMB <= 0 {
		return
	}
	released := math.Min(sizeMB, h.oldRetained)
	h.oldRetained -= released
	h.stats.ReleasedMB += released
	// Released memory is immediately collectable; model it as freed right
	// away (a real JVM would reclaim it at the next collection, a detail
	// invisible at 15-second checkpoints).
}

// allocKind distinguishes the three allocation flavours.
type allocKind int

const (
	allocTransient allocKind = iota
	allocLeak
	allocRetained
)

func (h *Heap) allocate(sizeMB float64, kind allocKind) error {
	if sizeMB < 0 {
		return fmt.Errorf("jvm: negative allocation %g MB", sizeMB)
	}
	if sizeMB == 0 {
		return nil
	}
	h.stats.AllocatedMB += sizeMB
	switch kind {
	case allocLeak:
		h.stats.LeakedMB += sizeMB
	case allocRetained:
		h.stats.RetainedMB += sizeMB
	}

	remaining := sizeMB
	for remaining > 0 {
		space := h.cfg.YoungMB - h.youngUsed
		if space <= 0 {
			if err := h.minorGC(kind, 0); err != nil {
				return err
			}
			continue
		}
		chunk := math.Min(space, remaining)
		h.youngUsed += chunk
		remaining -= chunk
		if h.youngUsed >= h.cfg.YoungMB {
			// Young is full: collect, promoting the long-lived part of what
			// we just allocated.
			if err := h.minorGC(kind, chunkLongLived(kind, chunk)); err != nil {
				return err
			}
		} else if kind != allocTransient {
			// Leaked and retained objects eventually reach the Old zone even
			// without a collection (they survive by definition); promote them
			// straight away so Old-zone accounting does not depend on Young
			// collection timing.
			h.youngUsed -= chunk
			if err := h.promote(kind, chunk); err != nil {
				return err
			}
		}
		h.touch()
	}
	return nil
}

// chunkLongLived returns how much of the chunk that triggered a minor GC is
// long-lived (must move to Old as leaked/retained rather than garbage).
func chunkLongLived(kind allocKind, chunk float64) float64 {
	if kind == allocTransient {
		return 0
	}
	return chunk
}

// minorGC collects the Young zone: transient data mostly dies, a small
// fraction is promoted to Old as (collectable) garbage; longLivedMB of the
// current allocation is promoted as leaked/retained according to kind.
func (h *Heap) minorGC(kind allocKind, longLivedMB float64) error {
	h.stats.MinorCollections++
	transient := h.youngUsed - longLivedMB
	if transient < 0 {
		transient = 0
	}
	promoted := transient * h.cfg.PromotionFraction
	h.stats.PromotedMB += promoted
	h.youngUsed = 0
	if err := h.promoteAs(allocTransient, promoted); err != nil {
		return err
	}
	if longLivedMB > 0 {
		if err := h.promote(kind, longLivedMB); err != nil {
			return err
		}
	}
	return nil
}

// promote moves sizeMB into the Old zone with the semantics of kind.
func (h *Heap) promote(kind allocKind, sizeMB float64) error {
	return h.promoteAs(kind, sizeMB)
}

func (h *Heap) promoteAs(kind allocKind, sizeMB float64) error {
	if sizeMB <= 0 {
		return nil
	}
	for h.oldUsed()+sizeMB > h.oldCommitted {
		if err := h.fullGC(); err != nil {
			return err
		}
		if h.oldUsed()+sizeMB <= h.oldCommitted {
			break
		}
		if !h.resizeOld() {
			// Old zone is already at its maximum and a full collection did
			// not make room: the JVM throws OutOfMemoryError.
			return fmt.Errorf("%w: old zone %.1f/%.1f MB, requested %.1f MB",
				ErrOutOfMemory, h.oldUsed(), h.oldCommitted, sizeMB)
		}
	}
	switch kind {
	case allocTransient:
		h.oldGarbage += sizeMB
	case allocLeak:
		h.oldLeaked += sizeMB
	case allocRetained:
		h.oldRetained += sizeMB
	}
	h.touch()
	return nil
}

// fullGC collects the Old zone: garbage is freed, leaked and retained data
// survive. This is where the paper's "GC resizes action and release memory"
// annotation on Figure 1 comes from.
func (h *Heap) fullGC() error {
	h.stats.FullCollections++
	h.oldGarbage = 0
	// A full collection also empties the Young zone.
	h.youngUsed = 0
	// Resize when occupancy is still above the threshold after collecting.
	if h.oldUsed() > h.cfg.OldResizeThreshold*h.oldCommitted {
		h.resizeOld()
	}
	return nil
}

// resizeOld grows the committed Old zone by one step, bounded by the maximum
// heap size. It reports whether any growth happened.
func (h *Heap) resizeOld() bool {
	maxOld := h.oldMaxMB()
	if h.oldCommitted >= maxOld {
		return false
	}
	h.oldCommitted = math.Min(h.oldCommitted+h.cfg.OldResizeStepMB, maxOld)
	h.stats.OldResizes++
	return true
}

// touch updates the OS-level high-water mark.
func (h *Heap) touch() {
	if used := h.HeapUsedMB(); used > h.peakHeapUsed {
		h.peakHeapUsed = used
	}
}

// SetLiveThreads tells the heap how many threads the process currently has;
// used for the OS-level memory accounting (native stacks) and the Java-side
// Thread objects.
func (h *Heap) SetLiveThreads(n int) {
	if n < 0 {
		n = 0
	}
	h.liveThreads = n
}

// LiveThreads returns the last value passed to SetLiveThreads.
func (h *Heap) LiveThreads() int { return h.liveThreads }

// --- Metric accessors (the JVM-perspective and OS-perspective views) ---

// YoungUsedMB returns the memory currently used in the Young zone.
func (h *Heap) YoungUsedMB() float64 { return h.youngUsed }

// YoungMaxMB returns the (fixed) Young zone capacity.
func (h *Heap) YoungMaxMB() float64 { return h.cfg.YoungMB }

// OldUsedMB returns the memory currently used in the Old zone.
func (h *Heap) OldUsedMB() float64 { return h.oldUsed() }

// OldCommittedMB returns the current committed size of the Old zone.
func (h *Heap) OldCommittedMB() float64 { return h.oldCommitted }

// OldMaxMB returns the maximum size the Old zone may grow to.
func (h *Heap) OldMaxMB() float64 { return h.oldMaxMB() }

// OldLeakedMB returns the unreclaimable (leaked) part of the Old zone.
func (h *Heap) OldLeakedMB() float64 { return h.oldLeaked }

// OldRetainedMB returns the retained-but-releasable part of the Old zone.
func (h *Heap) OldRetainedMB() float64 { return h.oldRetained }

// PermUsedMB returns the Permanent zone usage (constant).
func (h *Heap) PermUsedMB() float64 { return h.permUsed }

// HeapUsedMB returns the total JVM-perspective heap usage
// (Young + Old + Permanent used). This is the "Young+Old heap used JVM
// perspective" wave of Figure 2 (plus the constant Permanent part).
func (h *Heap) HeapUsedMB() float64 { return h.youngUsed + h.oldUsed() + h.permUsed }

// HeapCommittedMB returns the committed heap size.
func (h *Heap) HeapCommittedMB() float64 {
	return h.cfg.YoungMB + h.oldCommitted + h.cfg.PermMB
}

// ProcessMemoryMB returns the OS-perspective memory of the server process:
// the non-heap baseline, the heap high-water mark (Linux never gives freed
// pages back spontaneously) and the native thread stacks. This is the
// "Tomcat Memory used OS perspective" line of Figures 1 and 2.
func (h *Heap) ProcessMemoryMB() float64 {
	return h.cfg.ProcessBaseMB + h.peakHeapUsed + float64(h.liveThreads)*h.cfg.ThreadStackMB
}

// HeadroomMB returns how much unreclaimable data can still be added before
// the heap is exhausted. The testbed uses it to detect imminent crashes.
func (h *Heap) HeadroomMB() float64 {
	return h.oldMaxMB() - (h.oldLeaked + h.oldRetained)
}

// GCOverhead returns a number in [0, 1) expressing how much of the server's
// time is being eaten by collections: it grows as the unreclaimable part of
// the Old zone approaches its maximum, because full collections become both
// more frequent and less productive. The application server uses it to
// degrade response times near the crash, which is the behaviour the paper
// observes ("gradual performance degradation could also accompany software
// aging").
func (h *Heap) GCOverhead() float64 {
	occupancy := (h.oldLeaked + h.oldRetained) / h.oldMaxMB()
	if occupancy <= 0.6 {
		return 0
	}
	over := (occupancy - 0.6) / 0.4
	if over > 1 {
		over = 1
	}
	return over * over * 0.9
}

// Stats returns a copy of the collector statistics.
func (h *Heap) Stats() Stats { return h.stats }
