package jvm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTestHeap(t testing.TB, cfg Config) *Heap {
	t.Helper()
	h, err := NewHeap(cfg)
	if err != nil {
		t.Fatalf("NewHeap: %v", err)
	}
	return h
}

func TestConfigDefaults(t *testing.T) {
	h := newTestHeap(t, Config{})
	cfg := h.Config()
	if cfg.MaxHeapMB != 1024 || cfg.YoungMB != 128 || cfg.PermMB != 64 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if h.OldMaxMB() != 1024-128-64 {
		t.Fatalf("OldMaxMB = %v, want %v", h.OldMaxMB(), 1024-128-64)
	}
	if h.OldCommittedMB() != 256 {
		t.Fatalf("initial old committed = %v, want 256", h.OldCommittedMB())
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "defaults", cfg: Config{}},
		{name: "zones exceed heap", cfg: Config{MaxHeapMB: 200, YoungMB: 100, PermMB: 64, InitialOldMB: 100}, wantErr: true},
		{name: "threshold too high", cfg: Config{OldResizeThreshold: 1.5}, wantErr: true},
		{name: "promotion fraction too high", cfg: Config{PromotionFraction: 1.0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
			_, err = NewHeap(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewHeap() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransientAllocationIsCollected(t *testing.T) {
	h := newTestHeap(t, Config{})
	// Allocate far more transient data than the whole heap; it must be
	// collected rather than exhausting memory.
	for i := 0; i < 10000; i++ {
		if err := h.Allocate(0.5); err != nil {
			t.Fatalf("Allocate transient #%d: %v", i, err)
		}
	}
	if h.Stats().MinorCollections == 0 {
		t.Fatalf("no minor collections after 5000 MB of transient allocation")
	}
	if h.OldLeakedMB() != 0 {
		t.Fatalf("transient allocation leaked %v MB", h.OldLeakedMB())
	}
	if h.HeapUsedMB() > h.Config().MaxHeapMB {
		t.Fatalf("heap used %v exceeds max %v", h.HeapUsedMB(), h.Config().MaxHeapMB)
	}
}

func TestLeakAccumulatesAndEventuallyOOMs(t *testing.T) {
	h := newTestHeap(t, Config{})
	leaked := 0.0
	var oomAt float64 = -1
	for i := 0; i < 5000; i++ {
		if err := h.Allocate(0.3); err != nil {
			t.Fatalf("transient Allocate: %v", err)
		}
		if err := h.AllocateLeak(1); err != nil {
			if errors.Is(err, ErrOutOfMemory) {
				oomAt = leaked
				break
			}
			t.Fatalf("AllocateLeak: %v", err)
		}
		leaked++
		if got := h.OldLeakedMB(); math.Abs(got-leaked) > 1e-6 {
			t.Fatalf("OldLeakedMB = %v after leaking %v", got, leaked)
		}
	}
	if oomAt < 0 {
		t.Fatalf("no OutOfMemory after leaking %v MB into a %v MB heap", leaked, h.Config().MaxHeapMB)
	}
	// The crash must happen when the leak approaches the Old zone capacity.
	oldMax := h.OldMaxMB()
	if oomAt < oldMax*0.85 || oomAt > oldMax {
		t.Fatalf("OOM at %v MB leaked, want close to old max %v", oomAt, oldMax)
	}
}

func TestOldZoneResizing(t *testing.T) {
	h := newTestHeap(t, Config{})
	initial := h.OldCommittedMB()
	// Leak enough to force several resizes but not an OOM.
	for i := 0; i < 500; i++ {
		if err := h.AllocateLeak(1); err != nil {
			t.Fatalf("AllocateLeak: %v", err)
		}
	}
	if h.OldCommittedMB() <= initial {
		t.Fatalf("old zone never resized: committed %v", h.OldCommittedMB())
	}
	if h.Stats().OldResizes == 0 {
		t.Fatalf("stats report no resizes")
	}
	if h.OldCommittedMB() > h.OldMaxMB() {
		t.Fatalf("old committed %v exceeds max %v", h.OldCommittedMB(), h.OldMaxMB())
	}
}

func TestOSPerspectiveNeverShrinks(t *testing.T) {
	h := newTestHeap(t, Config{})
	prev := h.ProcessMemoryMB()
	for i := 0; i < 3000; i++ {
		var err error
		switch i % 3 {
		case 0:
			err = h.Allocate(0.4)
		case 1:
			err = h.AllocateRetained(0.5)
		case 2:
			h.ReleaseRetained(0.5)
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cur := h.ProcessMemoryMB()
		if cur < prev-1e-9 {
			t.Fatalf("OS-perspective memory shrank from %v to %v at step %d", prev, cur, i)
		}
		prev = cur
	}
}

func TestPeriodicPatternVisibleOnlyFromJVMPerspective(t *testing.T) {
	// Reproduce the Figure 2 phenomenology in miniature: acquire 200 MB,
	// release it, repeat. The JVM-perspective usage must oscillate; the
	// OS-perspective memory must stay flat (after the first cycle).
	h := newTestHeap(t, Config{})
	var jvmMin, jvmMax float64 = math.Inf(1), math.Inf(-1)
	var osAfterFirstCycle float64
	var osMaxDeviation float64
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 200; i++ {
			if err := h.AllocateRetained(1); err != nil {
				t.Fatalf("AllocateRetained: %v", err)
			}
		}
		jvmMax = math.Max(jvmMax, h.HeapUsedMB())
		h.ReleaseRetained(200)
		jvmMin = math.Min(jvmMin, h.HeapUsedMB())
		if cycle == 0 {
			osAfterFirstCycle = h.ProcessMemoryMB()
		} else {
			dev := math.Abs(h.ProcessMemoryMB() - osAfterFirstCycle)
			osMaxDeviation = math.Max(osMaxDeviation, dev)
		}
	}
	if jvmMax-jvmMin < 150 {
		t.Fatalf("JVM-perspective usage does not show the wave: min %v max %v", jvmMin, jvmMax)
	}
	if osMaxDeviation > 20 {
		t.Fatalf("OS-perspective memory moved by %v MB across cycles, want nearly constant", osMaxDeviation)
	}
}

func TestReleaseRetainedClampsToRetained(t *testing.T) {
	h := newTestHeap(t, Config{})
	if err := h.AllocateRetained(50); err != nil {
		t.Fatalf("AllocateRetained: %v", err)
	}
	h.ReleaseRetained(500)
	if h.OldRetainedMB() != 0 {
		t.Fatalf("retained = %v after over-release, want 0", h.OldRetainedMB())
	}
	// Releasing with nothing retained, or a non-positive amount, is a no-op.
	h.ReleaseRetained(10)
	h.ReleaseRetained(-5)
	if h.OldRetainedMB() != 0 {
		t.Fatalf("retained changed by no-op releases")
	}
}

func TestAllocateRejectsNegative(t *testing.T) {
	h := newTestHeap(t, Config{})
	if err := h.Allocate(-1); err == nil {
		t.Fatalf("Allocate(-1) succeeded")
	}
	if err := h.AllocateLeak(-1); err == nil {
		t.Fatalf("AllocateLeak(-1) succeeded")
	}
	if err := h.Allocate(0); err != nil {
		t.Fatalf("Allocate(0): %v", err)
	}
}

func TestThreadAccounting(t *testing.T) {
	h := newTestHeap(t, Config{})
	base := h.ProcessMemoryMB()
	h.SetLiveThreads(100)
	if h.LiveThreads() != 100 {
		t.Fatalf("LiveThreads = %d", h.LiveThreads())
	}
	got := h.ProcessMemoryMB() - base
	want := 100 * h.Config().ThreadStackMB
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("thread stacks add %v MB, want %v", got, want)
	}
	h.SetLiveThreads(-5)
	if h.LiveThreads() != 0 {
		t.Fatalf("negative thread count not clamped: %d", h.LiveThreads())
	}
}

func TestGCOverheadGrowsNearExhaustion(t *testing.T) {
	h := newTestHeap(t, Config{})
	if h.GCOverhead() != 0 {
		t.Fatalf("fresh heap has GC overhead %v", h.GCOverhead())
	}
	// Leak until ~90% of the old zone max.
	target := h.OldMaxMB() * 0.9
	for h.OldLeakedMB() < target {
		if err := h.AllocateLeak(5); err != nil {
			t.Fatalf("AllocateLeak: %v", err)
		}
	}
	if h.GCOverhead() <= 0.2 {
		t.Fatalf("GC overhead near exhaustion = %v, want substantial", h.GCOverhead())
	}
	if h.GCOverhead() >= 1 {
		t.Fatalf("GC overhead = %v, must stay below 1", h.GCOverhead())
	}
}

func TestHeadroomDecreasesWithLeaks(t *testing.T) {
	h := newTestHeap(t, Config{})
	before := h.HeadroomMB()
	if err := h.AllocateLeak(100); err != nil {
		t.Fatalf("AllocateLeak: %v", err)
	}
	after := h.HeadroomMB()
	if math.Abs((before-after)-100) > 1e-6 {
		t.Fatalf("headroom dropped by %v after leaking 100 MB", before-after)
	}
}

func TestFullGCKeepsLeakAndRetained(t *testing.T) {
	h := newTestHeap(t, Config{})
	if err := h.AllocateLeak(100); err != nil {
		t.Fatalf("AllocateLeak: %v", err)
	}
	if err := h.AllocateRetained(50); err != nil {
		t.Fatalf("AllocateRetained: %v", err)
	}
	// Push a lot of transient data through to force full collections.
	for i := 0; i < 5000; i++ {
		if err := h.Allocate(1); err != nil {
			t.Fatalf("Allocate: %v", err)
		}
	}
	if h.Stats().FullCollections == 0 {
		t.Skipf("no full collections triggered; promotion fraction too small for this test setup")
	}
	if h.OldLeakedMB() != 100 || h.OldRetainedMB() != 50 {
		t.Fatalf("full GC lost leaked/retained memory: leaked=%v retained=%v", h.OldLeakedMB(), h.OldRetainedMB())
	}
}

// Property: heap usage never exceeds the configured maximum and the OS view
// is monotonically non-decreasing, under any interleaving of operations.
func TestHeapInvariantsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		h, err := NewHeap(Config{MaxHeapMB: 512, YoungMB: 64, PermMB: 32, InitialOldMB: 128, OldResizeStepMB: 64})
		if err != nil {
			return false
		}
		prevOS := h.ProcessMemoryMB()
		for _, op := range ops {
			size := float64(op%16) + 0.25
			switch op % 4 {
			case 0:
				err = h.Allocate(size)
			case 1:
				err = h.AllocateLeak(size / 4)
			case 2:
				err = h.AllocateRetained(size / 2)
			case 3:
				h.ReleaseRetained(size)
			}
			if err != nil && !errors.Is(err, ErrOutOfMemory) {
				return false
			}
			if errors.Is(err, ErrOutOfMemory) {
				return true // a legitimate terminal state
			}
			if h.HeapUsedMB() > h.Config().MaxHeapMB+1e-6 {
				return false
			}
			if h.OldUsedMB() > h.OldCommittedMB()+1e-6 {
				return false
			}
			if h.OldCommittedMB() > h.OldMaxMB()+1e-6 {
				return false
			}
			cur := h.ProcessMemoryMB()
			if cur < prevOS-1e-9 {
				return false
			}
			prevOS = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: leaked memory is exactly the sum of AllocateLeak calls until the
// first OOM, regardless of interleaved transient traffic.
func TestLeakConservationProperty(t *testing.T) {
	f := func(leaks []uint8) bool {
		h, err := NewHeap(Config{})
		if err != nil {
			return false
		}
		total := 0.0
		for _, l := range leaks {
			leak := float64(l%8) / 4
			if err := h.Allocate(1); err != nil {
				return errors.Is(err, ErrOutOfMemory)
			}
			if err := h.AllocateLeak(leak); err != nil {
				return errors.Is(err, ErrOutOfMemory)
			}
			total += leak
			if math.Abs(h.OldLeakedMB()-total) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
