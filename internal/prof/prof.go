// Package prof wires the -cpuprofile/-memprofile flags of the command-line
// tools to runtime/pprof, so a slow fleet run or benchmark campaign can be
// profiled in place (agingbench -cpuprofile cpu.out ... ; go tool pprof
// cpu.out) without rebuilding anything as a test binary.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges an end-of-run heap
// profile into memPath; either path may be empty to skip that profile. It
// returns a stop function that finishes the CPU profile and writes the heap
// snapshot — defer it right after the flags are parsed. Errors from the
// deferred writes are reported on stderr (the run's real error takes
// precedence over a failed profile dump).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating %s: %w", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: closing %s: %v\n", cpuPath, err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
			}
		}
	}, nil
}

// writeHeapProfile snapshots the heap after a GC (so the profile shows live
// retained memory, not garbage awaiting collection) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: creating %s: %w", path, err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: writing heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: closing %s: %w", path, err)
	}
	return nil
}
