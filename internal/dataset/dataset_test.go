package dataset

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"agingpred/internal/rng"
)

func mustDataset(t *testing.T, attrs []string) *Dataset {
	t.Helper()
	d, err := New("test", attrs, "ttf")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		attrs   []string
		target  string
		wantErr bool
	}{
		{name: "valid", attrs: []string{"a", "b"}, target: "y"},
		{name: "no attrs", attrs: nil, target: "y"},
		{name: "empty target", attrs: []string{"a"}, target: "", wantErr: true},
		{name: "empty attr name", attrs: []string{"a", ""}, target: "y", wantErr: true},
		{name: "duplicate attr", attrs: []string{"a", "a"}, target: "y", wantErr: true},
		{name: "attr equals target", attrs: []string{"y"}, target: "y", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New("r", tt.attrs, tt.target)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v, %q) error = %v, wantErr %v", tt.attrs, tt.target, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew with duplicate attributes did not panic")
		}
	}()
	MustNew("r", []string{"a", "a"}, "y")
}

func TestAppendAndAccessors(t *testing.T) {
	d := mustDataset(t, []string{"a", "b"})
	if err := d.Append([]float64{1, 2}, 10); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Append([]float64{3, 4}, 20); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if d.Len() != 2 || d.NumAttrs() != 2 {
		t.Fatalf("Len=%d NumAttrs=%d, want 2, 2", d.Len(), d.NumAttrs())
	}
	if got := d.Value(1, 0); got != 3 {
		t.Fatalf("Value(1,0) = %v, want 3", got)
	}
	if got := d.TargetValue(0); got != 10 {
		t.Fatalf("TargetValue(0) = %v, want 10", got)
	}
	if got := d.Column(1); !reflect.DeepEqual(got, []float64{2, 4}) {
		t.Fatalf("Column(1) = %v, want [2 4]", got)
	}
	if got := d.Targets(); !reflect.DeepEqual(got, []float64{10, 20}) {
		t.Fatalf("Targets() = %v", got)
	}
	if got := d.AttrIndex("b"); got != 1 {
		t.Fatalf("AttrIndex(b) = %d, want 1", got)
	}
	if got := d.AttrIndex("missing"); got != -1 {
		t.Fatalf("AttrIndex(missing) = %d, want -1", got)
	}
}

func TestAppendRejectsBadRows(t *testing.T) {
	d := mustDataset(t, []string{"a", "b"})
	if err := d.Append([]float64{1}, 0); err == nil {
		t.Fatalf("Append with wrong width succeeded")
	}
	if err := d.Append([]float64{1, math.NaN()}, 0); err == nil {
		t.Fatalf("Append with NaN succeeded")
	}
	if err := d.Append([]float64{1, 2}, math.Inf(1)); err == nil {
		t.Fatalf("Append with infinite target succeeded")
	}
	if d.Len() != 0 {
		t.Fatalf("failed appends modified the dataset: len=%d", d.Len())
	}
}

func TestAppendCopiesRow(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	row := []float64{1}
	if err := d.Append(row, 5); err != nil {
		t.Fatalf("Append: %v", err)
	}
	row[0] = 99
	if got := d.Value(0, 0); got != 1 {
		t.Fatalf("Append did not copy the row: value = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	_ = d.Append([]float64{1}, 2)
	c := d.Clone()
	c.Row(0)[0] = 42
	if d.Value(0, 0) != 1 {
		t.Fatalf("Clone shares row storage with the original")
	}
	if c.Relation != d.Relation || c.Target() != d.Target() {
		t.Fatalf("Clone lost schema: %v vs %v", c, d)
	}
}

func TestSelect(t *testing.T) {
	d := mustDataset(t, []string{"a", "b", "c"})
	_ = d.Append([]float64{1, 2, 3}, 10)
	_ = d.Append([]float64{4, 5, 6}, 20)

	sel, err := d.Select([]string{"c", "a"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if !reflect.DeepEqual(sel.Attrs(), []string{"c", "a"}) {
		t.Fatalf("selected attrs = %v", sel.Attrs())
	}
	if got := sel.Row(1); !reflect.DeepEqual(got, []float64{6, 4}) {
		t.Fatalf("selected row = %v, want [6 4]", got)
	}
	if got := sel.TargetValue(1); got != 20 {
		t.Fatalf("selected target = %v, want 20", got)
	}
	if _, err := d.Select([]string{"zzz"}); err == nil {
		t.Fatalf("Select with unknown attribute succeeded")
	}
}

func TestFilterAndSubset(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	for i := 0; i < 10; i++ {
		_ = d.Append([]float64{float64(i)}, float64(i*10))
	}
	even := d.Filter(func(row []float64, _ float64) bool { return int(row[0])%2 == 0 })
	if even.Len() != 5 {
		t.Fatalf("Filter kept %d instances, want 5", even.Len())
	}
	sub, err := d.Subset([]int{9, 0})
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.Len() != 2 || sub.Value(0, 0) != 9 || sub.Value(1, 0) != 0 {
		t.Fatalf("Subset wrong contents: %+v", sub)
	}
	if _, err := d.Subset([]int{100}); err == nil {
		t.Fatalf("Subset with out-of-range index succeeded")
	}
}

func TestAppendAllSchemaCheck(t *testing.T) {
	d1 := mustDataset(t, []string{"a", "b"})
	d2 := mustDataset(t, []string{"a", "b"})
	_ = d2.Append([]float64{1, 2}, 3)
	if err := d1.AppendAll(d2); err != nil {
		t.Fatalf("AppendAll: %v", err)
	}
	if d1.Len() != 1 {
		t.Fatalf("AppendAll did not copy instances")
	}
	d3 := mustDataset(t, []string{"a", "c"})
	if err := d1.AppendAll(d3); err == nil {
		t.Fatalf("AppendAll with mismatched schema succeeded")
	}
	if err := d1.AppendAll(nil); err == nil {
		t.Fatalf("AppendAll(nil) succeeded")
	}
}

func TestSplit(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	for i := 0; i < 10; i++ {
		_ = d.Append([]float64{float64(i)}, 0)
	}
	head, tail, err := d.Split(0.3)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if head.Len() != 3 || tail.Len() != 7 {
		t.Fatalf("Split sizes = %d/%d, want 3/7", head.Len(), tail.Len())
	}
	if head.Value(0, 0) != 0 || tail.Value(0, 0) != 3 {
		t.Fatalf("Split order wrong")
	}
	if _, _, err := d.Split(1.5); err == nil {
		t.Fatalf("Split(1.5) succeeded")
	}
	// A tiny but positive fraction still yields one instance.
	head, _, err = d.Split(0.001)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if head.Len() != 1 {
		t.Fatalf("Split(0.001) head = %d, want 1", head.Len())
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	for i := 0; i < 50; i++ {
		_ = d.Append([]float64{float64(i)}, float64(i))
	}
	src := rng.New(7)
	d.Shuffle(src.Perm)
	seen := make(map[int]bool)
	for i := 0; i < d.Len(); i++ {
		v := int(d.Value(i, 0))
		if d.TargetValue(i) != float64(v) {
			t.Fatalf("shuffle separated row from its target at %d", i)
		}
		if seen[v] {
			t.Fatalf("shuffle duplicated value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("shuffle lost values: %d distinct", len(seen))
	}
}

func TestStats(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		_ = d.Append([]float64{v}, v)
	}
	st := d.TargetStats()
	if st.Count != 8 {
		t.Fatalf("Count = %d, want 8", st.Count)
	}
	if math.Abs(st.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", st.Mean)
	}
	if math.Abs(st.StdDev-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", st.StdDev)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", st.Min, st.Max)
	}
	if as := d.AttrStats(0); as != st {
		t.Fatalf("AttrStats = %+v, want %+v", as, st)
	}
	var empty Stats
	if got := computeStats(nil); got != empty {
		t.Fatalf("stats of empty column = %+v, want zero", got)
	}
}

func TestSortByAttr(t *testing.T) {
	d := mustDataset(t, []string{"a", "b"})
	_ = d.Append([]float64{3, 0}, 0)
	_ = d.Append([]float64{1, 1}, 1)
	_ = d.Append([]float64{2, 2}, 2)
	_ = d.Append([]float64{1, 3}, 3)
	idx := d.SortByAttr(0)
	want := []int{1, 3, 2, 0} // stable: the two 1s keep original order
	if !reflect.DeepEqual(idx, want) {
		t.Fatalf("SortByAttr = %v, want %v", idx, want)
	}
}

func TestStringSummary(t *testing.T) {
	d := mustDataset(t, []string{"a"})
	s := d.String()
	if s == "" {
		t.Fatalf("String() empty")
	}
}

// Property: statistics are invariant under permutation, and min <= mean <= max.
func TestStatsPermutationInvariantProperty(t *testing.T) {
	f := func(vals []float64, seed uint64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		d := MustNew("p", []string{"a"}, "y")
		for _, v := range clean {
			if err := d.Append([]float64{v}, v); err != nil {
				return false
			}
		}
		before := d.TargetStats()
		d.Shuffle(rng.New(seed).Perm)
		after := d.TargetStats()
		const eps = 1e-9
		close := func(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)) }
		if !close(before.Mean, after.Mean) || !close(before.StdDev, after.StdDev) {
			return false
		}
		return before.Min <= before.Mean+eps && before.Mean <= before.Max+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
