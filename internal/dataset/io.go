package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the dataset as CSV: a header row with the attribute names
// followed by the target name, then one row per instance.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(d.Attrs(), d.target)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	record := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		row := d.rows[i]
		for j, v := range row {
			record[j] = formatFloat(v)
		}
		record[len(record)-1] = formatFloat(d.targets[i])
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV reads a dataset from CSV produced by WriteCSV (or any CSV whose
// last column is the numeric target). The relation name is caller-provided
// because CSV has no place to store it.
func ReadCSV(r io.Reader, relation string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: CSV header has %d columns, need at least 2", len(header))
	}
	attrs := header[:len(header)-1]
	target := header[len(header)-1]
	d, err := New(relation, attrs, target)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(attrs))
	for line := 2; ; line++ {
		record, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(record), len(header))
		}
		for j := 0; j < len(attrs); j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(record[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, attrs[j], err)
			}
			row[j] = v
		}
		tv, err := strconv.ParseFloat(strings.TrimSpace(record[len(record)-1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d target: %w", line, err)
		}
		if err := d.Append(row, tv); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return d, nil
}

// WriteARFF writes the dataset in WEKA's ARFF format with all attributes
// numeric. The paper's published datasets were distributed as ARFF, so this
// keeps our exports interoperable with the original tooling.
func (d *Dataset) WriteARFF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	rel := d.Relation
	if rel == "" {
		rel = "dataset"
	}
	fmt.Fprintf(bw, "@relation %s\n\n", arffQuote(rel))
	for _, a := range d.attrs {
		fmt.Fprintf(bw, "@attribute %s numeric\n", arffQuote(a))
	}
	fmt.Fprintf(bw, "@attribute %s numeric\n", arffQuote(d.target))
	fmt.Fprint(bw, "\n@data\n")
	for i := 0; i < d.Len(); i++ {
		for _, v := range d.rows[i] {
			fmt.Fprint(bw, formatFloat(v), ",")
		}
		fmt.Fprintln(bw, formatFloat(d.targets[i]))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: writing ARFF: %w", err)
	}
	return nil
}

// ReadARFF reads a numeric-only ARFF file: every @attribute must be numeric
// (or real/integer), and the last attribute is taken as the target.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		relation string
		names    []string
		inData   bool
		d        *Dataset
		row      []float64
	)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(text)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				relation = arffUnquote(strings.TrimSpace(text[len("@relation"):]))
			case strings.HasPrefix(lower, "@attribute"):
				rest := strings.TrimSpace(text[len("@attribute"):])
				name, typ, err := splitARFFAttribute(rest)
				if err != nil {
					return nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
				}
				switch strings.ToLower(typ) {
				case "numeric", "real", "integer":
				default:
					return nil, fmt.Errorf("dataset: ARFF line %d: unsupported attribute type %q (only numeric attributes are supported)", line, typ)
				}
				names = append(names, name)
			case strings.HasPrefix(lower, "@data"):
				if len(names) < 2 {
					return nil, fmt.Errorf("dataset: ARFF has %d attributes, need at least 2", len(names))
				}
				var err error
				d, err = New(relation, names[:len(names)-1], names[len(names)-1])
				if err != nil {
					return nil, err
				}
				row = make([]float64, len(names)-1)
				inData = true
			default:
				return nil, fmt.Errorf("dataset: ARFF line %d: unrecognised declaration %q", line, text)
			}
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(names) {
			return nil, fmt.Errorf("dataset: ARFF line %d has %d values, want %d", line, len(fields), len(names))
		}
		for j := 0; j < len(names)-1; j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: ARFF line %d column %q: %w", line, names[j], err)
			}
			row[j] = v
		}
		tv, err := strconv.ParseFloat(strings.TrimSpace(fields[len(fields)-1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d target: %w", line, err)
		}
		if err := d.Append(row, tv); err != nil {
			return nil, fmt.Errorf("dataset: ARFF line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading ARFF: %w", err)
	}
	if d == nil {
		return nil, errors.New("dataset: ARFF input has no @data section")
	}
	return d, nil
}

// splitARFFAttribute splits "@attribute <name> <type>" remainders, handling
// quoted names that contain spaces.
func splitARFFAttribute(rest string) (name, typ string, err error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", errors.New("empty @attribute declaration")
	}
	if rest[0] == '\'' || rest[0] == '"' {
		quote := rest[0]
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted attribute name in %q", rest)
		}
		name = rest[1 : 1+end]
		typ = strings.TrimSpace(rest[2+end:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", fmt.Errorf("malformed @attribute declaration %q", rest)
		}
		name = fields[0]
		typ = strings.Join(fields[1:], " ")
	}
	if name == "" || typ == "" {
		return "", "", fmt.Errorf("malformed @attribute declaration %q", rest)
	}
	return name, typ, nil
}

func arffQuote(s string) string {
	if strings.ContainsAny(s, " \t,%{}") {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

func arffUnquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return strings.ReplaceAll(s[1:len(s)-1], "\\'", "'")
	}
	return s
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
