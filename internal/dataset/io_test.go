package dataset

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := New("aging run", []string{"throughput", "tomcat memory used", "num threads"}, "time_to_failure")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rows := [][]float64{
		{12.5, 300.25, 94},
		{11.75, 310, 95},
		{0.001, 990.5, 400},
	}
	targets := []float64{3600, 3585, 15}
	for i, r := range rows {
		if err := d.Append(r, targets[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return d
}

func datasetsEqual(a, b *Dataset) bool {
	if a.Len() != b.Len() || !reflect.DeepEqual(a.Attrs(), b.Attrs()) || a.Target() != b.Target() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) || a.TargetValue(i) != b.TargetValue(i) {
			return false
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, d.Relation)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !datasetsEqual(d, got) {
		t.Fatalf("CSV round trip mismatch:\noriginal: %v\nread: %v", d, got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "single column", in: "only\n1\n"},
		{name: "non numeric value", in: "a,y\nfoo,1\n"},
		{name: "non numeric target", in: "a,y\n1,bar\n"},
		{name: "short row", in: "a,b,y\n1,2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in), "r"); err == nil {
				t.Fatalf("ReadCSV(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestARFFRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf); err != nil {
		t.Fatalf("WriteARFF: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "@relation") || !strings.Contains(text, "@data") {
		t.Fatalf("ARFF output missing declarations:\n%s", text)
	}
	// Attribute names with spaces must be quoted.
	if !strings.Contains(text, "'tomcat memory used'") {
		t.Fatalf("ARFF output did not quote attribute with spaces:\n%s", text)
	}
	got, err := ReadARFF(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadARFF: %v", err)
	}
	if !datasetsEqual(d, got) {
		t.Fatalf("ARFF round trip mismatch")
	}
	if got.Relation != "aging run" {
		t.Fatalf("ARFF relation = %q, want %q", got.Relation, "aging run")
	}
}

func TestReadARFFHandlesCommentsAndBlankLines(t *testing.T) {
	in := `% a comment
@relation tiny

@attribute x numeric
% another comment
@attribute y real

@data
1,2

3,4
`
	d, err := ReadARFF(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadARFF: %v", err)
	}
	if d.Len() != 2 || d.NumAttrs() != 1 {
		t.Fatalf("parsed %d instances, %d attrs; want 2, 1", d.Len(), d.NumAttrs())
	}
	if d.Value(1, 0) != 3 || d.TargetValue(1) != 4 {
		t.Fatalf("parsed wrong values: %v/%v", d.Value(1, 0), d.TargetValue(1))
	}
}

func TestReadARFFErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "no data section", in: "@relation r\n@attribute a numeric\n@attribute y numeric\n"},
		{name: "nominal attribute", in: "@relation r\n@attribute a {x,y}\n@attribute y numeric\n@data\n"},
		{name: "one attribute only", in: "@relation r\n@attribute a numeric\n@data\n1\n"},
		{name: "bad value", in: "@relation r\n@attribute a numeric\n@attribute y numeric\n@data\nfoo,1\n"},
		{name: "bad target", in: "@relation r\n@attribute a numeric\n@attribute y numeric\n@data\n1,foo\n"},
		{name: "wrong arity", in: "@relation r\n@attribute a numeric\n@attribute y numeric\n@data\n1,2,3\n"},
		{name: "unknown declaration", in: "@relation r\n@bogus\n@data\n"},
		{name: "unterminated quote", in: "@relation r\n@attribute 'a numeric\n@attribute y numeric\n@data\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadARFF(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("ReadARFF(%q) succeeded, want error", tt.name)
			}
		})
	}
}

func TestSplitARFFAttribute(t *testing.T) {
	tests := []struct {
		in       string
		wantName string
		wantType string
		wantErr  bool
	}{
		{in: "x numeric", wantName: "x", wantType: "numeric"},
		{in: "'a b' real", wantName: "a b", wantType: "real"},
		{in: `"qq" integer`, wantName: "qq", wantType: "integer"},
		{in: "", wantErr: true},
		{in: "lonely", wantErr: true},
	}
	for _, tt := range tests {
		name, typ, err := splitARFFAttribute(tt.in)
		if (err != nil) != tt.wantErr {
			t.Fatalf("splitARFFAttribute(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
		if err != nil {
			continue
		}
		if name != tt.wantName || typ != tt.wantType {
			t.Fatalf("splitARFFAttribute(%q) = %q, %q; want %q, %q", tt.in, name, typ, tt.wantName, tt.wantType)
		}
	}
}

// Property: any finite dataset survives a CSV round trip bit-exactly
// (formatFloat uses shortest round-trippable representation).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		d := MustNew("p", []string{"a", "b"}, "y")
		for i := 0; i+2 < len(vals); i += 3 {
			row := []float64{sanitize(vals[i]), sanitize(vals[i+1])}
			if err := d.Append(row, sanitize(vals[i+2])); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "p")
		if err != nil {
			return false
		}
		return datasetsEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
