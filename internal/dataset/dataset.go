// Package dataset provides the tabular data representation shared by the
// learning stack: named numeric attributes, instances, and a target column.
//
// The paper trains its models on checkpoint tables exported from the
// monitoring subsystem (Table 2 lists the columns); every model in this
// repository (linear regression, regression trees, M5P) consumes a *Dataset.
// The package also implements CSV and a small subset of WEKA's ARFF format so
// that datasets can be exchanged with the original tooling the authors used.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dataset is a table of numeric instances with named attributes and a single
// numeric target (class) attribute. The target of this repository is always
// "time to failure" in seconds, but nothing in the learning stack depends on
// that.
type Dataset struct {
	// Relation is a human-readable name for the dataset (the ARFF @relation).
	Relation string

	attrs  []string
	target string

	// rows[i] holds the attribute values of instance i, in attrs order.
	rows [][]float64
	// targets[i] holds the target value of instance i.
	targets []float64
}

// New creates an empty dataset with the given attribute names and target
// name. Attribute names must be unique and non-empty, and must not collide
// with the target name.
func New(relation string, attrs []string, target string) (*Dataset, error) {
	if target == "" {
		return nil, errors.New("dataset: empty target name")
	}
	seen := make(map[string]bool, len(attrs)+1)
	seen[target] = true
	copied := make([]string, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if seen[a] {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a)
		}
		seen[a] = true
		copied[i] = a
	}
	return &Dataset{
		Relation: relation,
		attrs:    copied,
		target:   target,
	}, nil
}

// MustNew is like New but panics on error. It is intended for package-level
// construction of fixed attribute sets (e.g. the Table 2 variable lists),
// where an invalid name list is a programming error.
func MustNew(relation string, attrs []string, target string) *Dataset {
	d, err := New(relation, attrs, target)
	if err != nil {
		panic(err)
	}
	return d
}

// Attrs returns a copy of the attribute names, in column order.
func (d *Dataset) Attrs() []string {
	out := make([]string, len(d.attrs))
	copy(out, d.attrs)
	return out
}

// Target returns the name of the target attribute.
func (d *Dataset) Target() string { return d.target }

// NumAttrs returns the number of (non-target) attributes.
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.rows) }

// AttrIndex returns the column index of the named attribute, or -1 if the
// dataset has no such attribute.
func (d *Dataset) AttrIndex(name string) int {
	for i, a := range d.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Append adds one instance. The row must have exactly NumAttrs values; the
// row is copied, so the caller may reuse its slice.
func (d *Dataset) Append(row []float64, target float64) error {
	if len(row) != len(d.attrs) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(row), len(d.attrs))
	}
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: row value %q is not finite: %v", d.attrs[i], v)
		}
	}
	if math.IsNaN(target) || math.IsInf(target, 0) {
		return fmt.Errorf("dataset: target value is not finite: %v", target)
	}
	cp := make([]float64, len(row))
	copy(cp, row)
	d.rows = append(d.rows, cp)
	d.targets = append(d.targets, target)
	return nil
}

// Row returns the attribute values of instance i. The returned slice is the
// dataset's backing storage; callers must not modify it.
func (d *Dataset) Row(i int) []float64 { return d.rows[i] }

// TargetValue returns the target value of instance i.
func (d *Dataset) TargetValue(i int) float64 { return d.targets[i] }

// Targets returns a copy of the target column.
func (d *Dataset) Targets() []float64 {
	out := make([]float64, len(d.targets))
	copy(out, d.targets)
	return out
}

// Value returns the value of attribute col for instance i.
func (d *Dataset) Value(i, col int) float64 { return d.rows[i][col] }

// Column returns a copy of attribute column col.
func (d *Dataset) Column(col int) []float64 {
	out := make([]float64, len(d.rows))
	for i, r := range d.rows {
		out[i] = r[col]
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Relation: d.Relation,
		attrs:    append([]string(nil), d.attrs...),
		target:   d.target,
		rows:     make([][]float64, len(d.rows)),
		targets:  append([]float64(nil), d.targets...),
	}
	for i, r := range d.rows {
		out.rows[i] = append([]float64(nil), r...)
	}
	return out
}

// Empty returns a dataset with the same schema as d and no instances.
func (d *Dataset) Empty() *Dataset {
	return &Dataset{
		Relation: d.Relation,
		attrs:    append([]string(nil), d.attrs...),
		target:   d.target,
	}
}

// AppendAll appends every instance of other to d. The schemas (attribute
// names, order and target) must match exactly.
func (d *Dataset) AppendAll(other *Dataset) error {
	if err := d.sameSchema(other); err != nil {
		return err
	}
	for i := 0; i < other.Len(); i++ {
		if err := d.Append(other.Row(i), other.TargetValue(i)); err != nil {
			return err
		}
	}
	return nil
}

func (d *Dataset) sameSchema(other *Dataset) error {
	if other == nil {
		return errors.New("dataset: nil dataset")
	}
	if d.target != other.target {
		return fmt.Errorf("dataset: target mismatch %q vs %q", d.target, other.target)
	}
	if len(d.attrs) != len(other.attrs) {
		return fmt.Errorf("dataset: attribute count mismatch %d vs %d", len(d.attrs), len(other.attrs))
	}
	for i := range d.attrs {
		if d.attrs[i] != other.attrs[i] {
			return fmt.Errorf("dataset: attribute %d mismatch %q vs %q", i, d.attrs[i], other.attrs[i])
		}
	}
	return nil
}

// Select returns a new dataset containing only the named attributes (in the
// given order) and the same target column. It is the mechanism behind the
// paper's "expert feature selection" in experiment 4.3.
func (d *Dataset) Select(names []string) (*Dataset, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.AttrIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		idx[i] = j
	}
	out, err := New(d.Relation, names, d.target)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(idx))
	for i := 0; i < d.Len(); i++ {
		src := d.rows[i]
		for k, j := range idx {
			row[k] = src[j]
		}
		if err := out.Append(row, d.targets[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Conform returns a dataset whose attribute columns are exactly names, in
// order: the receiver itself when its schema already matches (no copy), or a
// projection via Select otherwise. Unlike Select, a mismatch reports every
// missing attribute at once, which makes feature-schema mismatches
// actionable (e.g. a dataset extracted under "full" fed to a "full+conn"
// model). It is the bridge between the feature-schema layer and datasets
// extracted under a different (wider or reordered) schema.
func (d *Dataset) Conform(names []string) (*Dataset, error) {
	if len(names) == len(d.attrs) {
		same := true
		for i := range names {
			if names[i] != d.attrs[i] {
				same = false
				break
			}
		}
		if same {
			return d, nil
		}
	}
	var missing []string
	for _, n := range names {
		if d.AttrIndex(n) < 0 {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("dataset: %q cannot conform to the requested schema: missing %d attribute(s): %s",
			d.Relation, len(missing), strings.Join(missing, ", "))
	}
	return d.Select(names)
}

// Filter returns a new dataset with the instances for which keep returns
// true.
func (d *Dataset) Filter(keep func(row []float64, target float64) bool) *Dataset {
	out := d.Empty()
	for i := 0; i < d.Len(); i++ {
		if keep(d.rows[i], d.targets[i]) {
			// Append on a matching schema cannot fail for finite values that
			// were already accepted once.
			_ = out.Append(d.rows[i], d.targets[i])
		}
	}
	return out
}

// Subset returns a new dataset containing the instances with the given
// indices, in order.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	out := d.Empty()
	for _, i := range indices {
		if i < 0 || i >= d.Len() {
			return nil, fmt.Errorf("dataset: index %d out of range [0,%d)", i, d.Len())
		}
		if err := out.Append(d.rows[i], d.targets[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Shuffle permutes the instances in place using the provided swap-free
// permutation source. perm must return a permutation of [0,n).
func (d *Dataset) Shuffle(perm func(n int) []int) {
	p := perm(d.Len())
	rows := make([][]float64, len(d.rows))
	targets := make([]float64, len(d.targets))
	for i, j := range p {
		rows[i] = d.rows[j]
		targets[i] = d.targets[j]
	}
	d.rows = rows
	d.targets = targets
}

// Split partitions the dataset into a head of the given fraction (rounded
// down, at least one instance if the dataset is non-empty and frac > 0) and
// the remaining tail. It does not shuffle.
func (d *Dataset) Split(frac float64) (head, tail *Dataset, err error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v out of [0,1]", frac)
	}
	n := int(frac * float64(d.Len()))
	if n == 0 && frac > 0 && d.Len() > 0 {
		n = 1
	}
	head = d.Empty()
	tail = d.Empty()
	for i := 0; i < d.Len(); i++ {
		dst := tail
		if i < n {
			dst = head
		}
		if err := dst.Append(d.rows[i], d.targets[i]); err != nil {
			return nil, nil, err
		}
	}
	return head, tail, nil
}

// Stats summarises one column of a dataset.
type Stats struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// TargetStats returns summary statistics of the target column.
func (d *Dataset) TargetStats() Stats { return computeStats(d.targets) }

// AttrStats returns summary statistics of attribute column col.
func (d *Dataset) AttrStats(col int) Stats { return computeStats(d.Column(col)) }

func computeStats(vals []float64) Stats {
	st := Stats{Count: len(vals)}
	if len(vals) == 0 {
		return st
	}
	st.Min = math.Inf(1)
	st.Max = math.Inf(-1)
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		dv := v - st.Mean
		ss += dv * dv
	}
	st.StdDev = math.Sqrt(ss / float64(len(vals)))
	return st
}

// SortByAttr returns the instance indices sorted ascending by the value of
// attribute col (ties keep their original relative order). Model-tree
// induction uses this to enumerate candidate split points.
func (d *Dataset) SortByAttr(col int) []int {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.rows[idx[a]][col] < d.rows[idx[b]][col]
	})
	return idx
}

// String returns a short human-readable summary (not the full table).
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %q: %d instances, %d attributes, target %q",
		d.Relation, d.Len(), d.NumAttrs(), d.target)
	return b.String()
}
