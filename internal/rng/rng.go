// Package rng provides small, deterministic pseudo-random number generators
// used throughout the simulation substrate.
//
// Experiments in this repository must be exactly reproducible from a single
// seed. The standard library's math/rand/v2 generators are deterministic but
// make it awkward to derive many independent streams from one master seed.
// This package wraps a 64-bit SplitMix64/xoshiro-style generator with an
// explicit Split operation so that every simulated component (workload
// generator, injector, heap, ...) gets its own independent stream while the
// whole experiment remains a pure function of the top-level seed.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random number source. It is NOT safe for
// concurrent use; each goroutine or simulated component should own its own
// Source obtained via Split.
type Source struct {
	// xoshiro256** state.
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used for seeding so that correlated integer seeds still produce decorrelated
// generator states.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a non-zero state; splitMix64 of any seed yields one
	// with overwhelming probability, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewNamed returns a Source derived from seed and a component name. Two
// different names yield independent streams even for the same seed, which lets
// a simulation hand decorrelated generators to its sub-components without
// tracking stream counters.
func NewNamed(seed uint64, name string) *Source {
	h := fnv64(name)
	return New(seed ^ h)
}

// fnv64 is a small FNV-1a hash used to fold component names into seeds.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17

	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)

	return result
}

// Split returns a new Source whose stream is independent of the receiver's
// future output. The receiver is advanced.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1). Multiplying by the
	// exact reciprocal of 2^53 is bit-identical to dividing by 2^53 —
	// power-of-two scaling only shifts the exponent, no rounding happens in
	// either direction — and spares the hot paths a float division.
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0,
// mirroring math/rand, because a non-positive bound is always a programming
// error at the call site.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with non-positive n %d", n))
	}
	return int(s.Uint64() % uint64(n))
}

// IntBetween returns a uniformly distributed integer in [lo, hi]. It panics if
// hi < lo.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: IntBetween called with hi %d < lo %d", hi, lo))
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64Between returns a uniformly distributed value in [lo, hi). The
// result is always within the interval even for extreme ranges whose width
// overflows float64 (in which case uniformity degrades but the bounds hold).
func (s *Source) Float64Between(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	v := lo + s.Float64()*(hi-lo)
	// hi-lo can overflow to +Inf for extreme inputs, producing Inf or NaN;
	// clamp back into the half-open interval.
	if math.IsNaN(v) || v >= hi {
		return math.Nextafter(hi, lo)
	}
	if v < lo {
		return lo
	}
	return v
}

// Exponential returns an exponentially distributed value with the given mean.
// TPC-W think times follow a (truncated) negative exponential distribution, so
// the workload generator relies on this.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and standard
// deviation, using the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
