package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestNewNamedIndependentStreams(t *testing.T) {
	a := NewNamed(7, "workload")
	b := NewNamed(7, "injector")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("named streams overlapped %d/100 times", same)
	}
}

func TestNewNamedDeterministic(t *testing.T) {
	a := NewNamed(7, "workload")
	b := NewNamed(7, "workload")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same name and seed must give identical streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("parent and split child overlapped %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(5)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 5 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("IntBetween never produced an endpoint")
	}
}

func TestIntBetweenSingleton(t *testing.T) {
	s := New(5)
	for i := 0; i < 10; i++ {
		if v := s.IntBetween(7, 7); v != 7 {
			t.Fatalf("IntBetween(7,7) = %d", v)
		}
	}
}

func TestFloat64BetweenQuick(t *testing.T) {
	s := New(11)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		if hi == lo {
			return true
		}
		v := s.Float64Between(lo, hi)
		return v >= lo && v < hi || v == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(6)
	const mean = 7.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential produced negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.15 {
		t.Fatalf("Exponential mean = %v, want about %v", got, mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	s := New(6)
	if v := s.Exponential(0); v != 0 {
		t.Fatalf("Exponential(0) = %v, want 0", v)
	}
	if v := s.Exponential(-1); v != 0 {
		t.Fatalf("Exponential(-1) = %v, want 0", v)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const (
		mean   = 3.0
		stddev = 2.0
		n      = 200000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 0.05 {
		t.Fatalf("Normal mean = %v, want about %v", gotMean, mean)
	}
	if math.Abs(gotVar-stddev*stddev) > 0.2 {
		t.Fatalf("Normal variance = %v, want about %v", gotVar, stddev*stddev)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	for n := 0; n < 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsPermutationQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(12)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Crude sanity check: high and low bits should both vary.
	s := New(13)
	var highSet, lowSet bool
	for i := 0; i < 1000; i++ {
		v := s.Uint64()
		if v>>63 == 1 {
			highSet = true
		}
		if v&1 == 1 {
			lowSet = true
		}
	}
	if !highSet || !lowSet {
		t.Fatal("Uint64 bits look stuck")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExponential(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exponential(7)
	}
}
