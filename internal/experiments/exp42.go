package experiments

import (
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// training42Runs builds the training set shared by experiments 4.2 and 4.3:
// one one-hour execution with no injection plus three run-to-crash executions
// with constant leak rates N = 15, 30 and 75, all at the same constant
// workload.
func training42Runs(opts Options) ([]*monitor.Series, error) {
	opts = opts.withDefaults()
	series := make([]*monitor.Series, 0, 4)

	noInj, err := testbed.Run(testbed.RunConfig{
		Name:        "exp42-train-noinjection",
		Seed:        opts.Seed + 3000,
		EBs:         opts.TrainEBs,
		Phases:      testbed.NoInjectionPhases(),
		MaxDuration: time.Hour,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}
	if noInj.Crashed {
		return nil, fmt.Errorf("experiments: the no-injection training run crashed (%s); the baseline server is not supposed to age", noInj.CrashReason)
	}
	series = append(series, noInj.Series)

	for _, n := range []int{15, 30, 75} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("exp42-train-N%d", n),
			Seed:        opts.Seed + 3000 + uint64(n),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	return series, nil
}

// experiment42Phases is the dynamic-aging test schedule of Section 4.2:
// 20 minutes without injection, 20 minutes at N=30, 20 minutes at N=15, then
// N=75 until the crash.
func experiment42Phases() []injector.Phase {
	return []injector.Phase{
		{Name: "no injection", Duration: 20 * time.Minute, MemoryMode: injector.MemoryOff},
		{Name: "N=30", Duration: 20 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 30},
		{Name: "N=15", Duration: 20 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 15},
		{Name: "N=75", MemoryMode: injector.MemoryLeak, MemoryN: 75},
	}
}

// frozenReferenceTTF computes the per-checkpoint reference time-to-failure
// the paper uses for experiment 4.2: "we fix the current injection rate and
// then simulate the system until a crash occurs". For every phase of the test
// schedule it re-runs the testbed with that phase extended indefinitely (same
// seed, so the prefix is identical) and uses the resulting crash time as the
// reference for checkpoints belonging to that phase. Phases that never crash
// (no injection) get the paper's infinite horizon.
func frozenReferenceTTF(base testbed.RunConfig, phases []injector.Phase, test *monitor.Series) ([]float64, error) {
	// Crash time per phase, by freezing that phase.
	crashAt := make([]float64, len(phases))
	for i := range phases {
		frozen := make([]injector.Phase, i+1)
		copy(frozen, phases[:i+1])
		frozen[i].Duration = 0 // extend until the end of the run
		cfg := base
		cfg.Name = fmt.Sprintf("%s-frozen-phase%d", base.Name, i)
		cfg.Phases = frozen
		cfg.MaxDuration = base.MaxDuration + 6*time.Hour
		res, err := testbed.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: frozen run for phase %d: %w", i, err)
		}
		if res.Crashed {
			crashAt[i] = res.Series.CrashTimeSec
		} else {
			crashAt[i] = -1 // no crash under this rate
		}
	}

	// Phase index per checkpoint, from the cumulative phase durations.
	boundaries := make([]float64, len(phases))
	acc := 0.0
	for i, p := range phases {
		acc += p.Duration.Seconds()
		if p.Duration == 0 {
			acc = -1 // open-ended last phase
		}
		boundaries[i] = acc
	}
	refs := make([]float64, test.Len())
	for i, cp := range test.Checkpoints {
		phase := len(phases) - 1
		for j, b := range boundaries {
			if b >= 0 && cp.TimeSec <= b {
				phase = j
				break
			}
		}
		if crashAt[phase] < 0 {
			refs[i] = monitor.InfiniteTTFSec
			continue
		}
		ttf := crashAt[phase] - cp.TimeSec
		if ttf < 0 {
			ttf = 0
		}
		if ttf > monitor.InfiniteTTFSec {
			ttf = monitor.InfiniteTTFSec
		}
		refs[i] = ttf
	}
	return refs, nil
}

// Experiment42Result reproduces Section 4.2 / Figure 3: dynamic and variable
// software aging under constant workload.
type Experiment42Result struct {
	// TrainReport describes the M5P model (the paper: 36 leaves, 35 inner
	// nodes, 1710 instances).
	TrainReport core.TrainReport
	// M5P and LinReg are the accuracy reports against the frozen-rate
	// reference TTF (the paper: M5P MAE 16:26, S-MAE 13:03, PRE 17:15,
	// POST 8:14; Linear Regression "really unacceptable").
	M5P    evalx.Report
	LinReg evalx.Report
	// Trace is the Figure 3 series: predicted TTF vs Tomcat memory.
	Trace []TracePoint
	// PhaseBoundariesSec are the phase-change times for annotating the
	// figure.
	PhaseBoundariesSec []float64
	// CrashTimeSec is when the test execution crashed.
	CrashTimeSec float64
}

// String renders the result.
func (r *Experiment42Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 4.2 — dynamic and variable software aging (Figure 3)\n")
	fmt.Fprintf(&b, "  %s\n", r.TrainReport)
	fmt.Fprintf(&b, "  test run crashed at %.0f s; phase changes at %v\n", r.CrashTimeSec, r.PhaseBoundariesSec)
	b.WriteString(formatReports("  accuracy vs frozen-rate reference", r.LinReg, r.M5P))
	return b.String()
}

// Experiment42 runs the dynamic-aging experiment.
func Experiment42(opts Options) (*Experiment42Result, error) {
	opts = opts.withDefaults()
	trainSeries, err := training42Runs(opts)
	if err != nil {
		return nil, err
	}

	m5pModel, err := trainScenarioModel(opts, core.ModelM5P, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training M5P for 4.2: %w", err)
	}
	lrModel, err := trainScenarioModel(opts, core.ModelLinearRegression, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training linear regression for 4.2: %w", err)
	}

	phases := experiment42Phases()
	testCfg := testbed.RunConfig{
		Name:        "exp42-test",
		Seed:        opts.Seed + 3500,
		EBs:         opts.TrainEBs,
		Phases:      phases,
		MaxDuration: opts.MaxRunDuration,
		Ctx:         opts.Ctx,
	}
	testRes, err := runUntilCrash(testCfg)
	if err != nil {
		return nil, err
	}
	refs, err := frozenReferenceTTF(testCfg, phases, testRes.Series)
	if err != nil {
		return nil, err
	}
	lrRep, m5Rep, m5Preds, err := evaluateBoth(lrModel, m5pModel, testRes.Series, refs)
	if err != nil {
		return nil, err
	}
	return &Experiment42Result{
		TrainReport:        m5pModel.Report(),
		M5P:                m5Rep,
		LinReg:             lrRep,
		Trace:              trace(testRes.Series, m5Preds),
		PhaseBoundariesSec: phaseBoundaries(phases),
		CrashTimeSec:       testRes.Series.CrashTimeSec,
	}, nil
}

// PaperExperiment42 returns the accuracy figures the paper reports for
// experiment 4.2 (M5P only; Linear Regression is described as unacceptable),
// in seconds.
func PaperExperiment42() evalx.Report {
	return evalx.Report{
		Model:   "M5P (paper)",
		MAE:     16*60 + 26,
		SMAE:    13*60 + 3,
		PreMAE:  17*60 + 15,
		PostMAE: 8*60 + 14,
	}
}
