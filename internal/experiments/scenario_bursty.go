package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/testbed"
)

// The bursty scenario goes beyond the paper: the same deterministic memory
// leak as experiment 4.1, but the test workload alternates between a calm
// baseline and traffic spikes three times larger. Because the injection is
// request-coupled, the aging speed itself surges with every spike, so the
// consumption signal the models learned from constant-load executions is
// buried under load bursts. This is the "variable workload" future work the
// paper sketches in its conclusions.

// burstyBaseEBs and burstySpikeEBs are the two load levels; burstyPeriod is
// the half-cycle length.
const (
	burstyBaseEBs  = 60
	burstySpikeEBs = 180
	burstyPeriod   = 10 * time.Minute
	// burstyCycles bounds the alternation; runs that somehow survive it fall
	// into an open-ended baseline tail.
	burstyCycles = 24
)

// BurstyResult is the outcome of the bursty-load scenario.
type BurstyResult struct {
	// TrainReport describes the M5P model, trained exactly like experiment
	// 4.1 (constant workloads, constant leak).
	TrainReport core.TrainReport
	// M5P and LinReg are the accuracy reports on the bursty test execution,
	// against the actual time to failure.
	M5P    evalx.Report
	LinReg evalx.Report
	// Trace allows redrawing the prediction-vs-load figure.
	Trace []TracePoint
	// CrashTimeSec is when the bursty execution crashed.
	CrashTimeSec float64
	// Spikes is how many complete load spikes the run survived.
	Spikes int
	// BaselineThroughput and SpikeThroughput are the mean request rates
	// (req/s) observed during baseline and spike half-cycles, documenting
	// how violently the load actually moved.
	BaselineThroughput float64
	SpikeThroughput    float64
}

// String renders the result.
func (r *BurstyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario bursty — aging hidden under traffic spikes (%d↔%d EBs every %v)\n",
		burstyBaseEBs, burstySpikeEBs, burstyPeriod)
	fmt.Fprintf(&b, "  %s\n", r.TrainReport)
	fmt.Fprintf(&b, "  test run crashed at %.0f s after %d complete spikes (throughput %.1f → %.1f req/s)\n",
		r.CrashTimeSec, r.Spikes, r.BaselineThroughput, r.SpikeThroughput)
	b.WriteString(formatReports("  accuracy vs actual time to failure", r.LinReg, r.M5P))
	return b.String()
}

// ExperimentBursty trains on constant-workload leak executions (the 4.1
// training set at its own seed offsets) and tests on a bursty workload with
// the same leak.
func ExperimentBursty(opts Options) (*BurstyResult, error) {
	opts = opts.withDefaults()

	trainSeries, err := constantLeakTrainingRuns(opts, "bursty", 5000)
	if err != nil {
		return nil, err
	}

	m5pModel, err := trainScenarioModel(opts, core.ModelM5P, features.NoHeapSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training M5P for bursty scenario: %w", err)
	}
	lrModel, err := trainScenarioModel(opts, core.ModelLinearRegression, features.NoHeapSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training linear regression for bursty scenario: %w", err)
	}

	// Test: the same leak rate, but the load alternates baseline and spike
	// half-cycles until the retained leak exhausts the heap.
	testRes, err := runUntilCrash(testbed.RunConfig{
		Name:           "bursty-test",
		Seed:           opts.Seed + 5900,
		EBs:            burstySpikeEBs,
		WorkloadPhases: testbed.BurstyWorkloadPhases(burstyBaseEBs, burstySpikeEBs, burstyPeriod, burstyCycles),
		Phases:         testbed.ConstantLeakPhases(30),
		MaxDuration:    opts.MaxRunDuration,
		Ctx:            opts.Ctx,
	})
	if err != nil {
		return nil, err
	}

	lrRep, m5Rep, m5Preds, err := evaluateBoth(lrModel, m5pModel, testRes.Series, nil)
	if err != nil {
		return nil, err
	}

	// Mean throughput per half-cycle kind, skipping the first two minutes of
	// each half-cycle so population ramps do not blur the contrast. The
	// open-ended baseline tail after the last cycle no longer alternates and
	// is left out.
	var baseSum, spikeSum float64
	var baseN, spikeN int
	period := burstyPeriod.Seconds()
	for _, cp := range testRes.Series.Checkpoints {
		if cp.TimeSec >= 2*burstyCycles*period {
			break
		}
		inCycle := cp.TimeSec - math.Floor(cp.TimeSec/period)*period
		if inCycle < 120 {
			continue
		}
		if int(cp.TimeSec/period)%2 == 0 {
			baseSum += cp.Throughput
			baseN++
		} else {
			spikeSum += cp.Throughput
			spikeN++
		}
	}
	// Spikes stop after the alternation gives way to the baseline tail, so
	// the count is capped at the cycles that actually happened.
	spikes := int(testRes.Series.CrashTimeSec / (2 * burstyPeriod).Seconds())
	if spikes > burstyCycles {
		spikes = burstyCycles
	}
	out := &BurstyResult{
		TrainReport:  m5pModel.Report(),
		M5P:          m5Rep,
		LinReg:       lrRep,
		Trace:        trace(testRes.Series, m5Preds),
		CrashTimeSec: testRes.Series.CrashTimeSec,
		Spikes:       spikes,
	}
	if baseN > 0 {
		out.BaselineThroughput = baseSum / float64(baseN)
	}
	if spikeN > 0 {
		out.SpikeThroughput = spikeSum / float64(spikeN)
	}
	return out, nil
}

func init() {
	MustRegister(NewSchemaScenario("bursty",
		"aging hidden under traffic spikes: constant leak, alternating 60/180 EB load",
		features.NoHeapSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := ExperimentBursty(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{"LinReg": res.LinReg, "M5P": res.M5P},
				Summary: res.String(),
			}, nil
		}))
}
