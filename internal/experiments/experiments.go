// Package experiments reproduces the evaluation of the paper, experiment by
// experiment: the two motivating examples of Section 2.1 (Figures 1 and 2)
// and the four prediction experiments of Section 4 (Table 3, Figure 3,
// Table 4 + Figure 4, Figure 5).
//
// Every experiment is a plain function that runs the required testbed
// executions, trains the models, evaluates them with the paper's metrics and
// returns a result struct with both the numbers (evalx.Report) and the
// series needed to redraw the figures. The cmd/agingbench binary and the
// top-level benchmarks print these results next to the values the paper
// reports, and EXPERIMENTS.md records the comparison.
//
// Absolute values cannot match the paper (the substrate is a simulator, not
// the authors' 2010 testbed); the shape criteria listed in DESIGN.md are what
// these experiments are expected to reproduce. The golden tests additionally
// pin the reproduced seed-1 numbers so refactors cannot drift them silently.
//
// # The scenario engine
//
// Beyond the one-shot experiment functions, the package hosts a scenario
// engine: experiments implement the Scenario interface, register themselves
// in a registry, and Engine.RunMatrix sweeps scenario×seed matrices on a
// worker pool with deterministic result ordering, per-cell failure isolation,
// context cancellation, and cross-seed aggregate statistics (mean/stddev of
// MAE, S-MAE, PRE/POST-MAE) that the paper's single-seed tables cannot give.
// The built-in scenarios are the paper's experiments ("4.1".."4.4") plus two
// extended workloads: "bursty" (aging hidden under traffic spikes) and
// "trileak" (memory + threads + DB connections aging simultaneously).
//
// # Writing a new scenario
//
// A scenario is any type implementing Scenario; for the common case wrap a
// function with NewScenario and register it at init time:
//
//	func init() {
//		experiments.MustRegister(experiments.NewScenario("myscenario",
//			"one-line description shown by agingbench -list",
//			func(ctx context.Context, opts Options) (*experiments.ScenarioResult, error) {
//				// 1. Run testbed executions. Derive every run's Seed from
//				//    opts.Seed (plus a scenario-private offset) so the
//				//    scenario is deterministic per seed, and forward
//				//    opts.Ctx into each testbed.RunConfig so seed sweeps
//				//    can be cancelled.
//				// 2. Train predictors on the training series.
//				// 3. Evaluate on the test series with internal/evalx.
//				// 4. Return the named reports; keys become the aggregate
//				//    rows ("M5P", "75EBs/LinReg", ...).
//				return &experiments.ScenarioResult{
//					Metrics: experiments.Metrics{"M5P": report},
//					Summary: "human-readable tables",
//				}, nil
//			}))
//	}
//
// The contract the engine relies on: Run must be deterministic in opts.Seed
// (the same cell always yields bit-identical metrics, no wall-clock or
// global state), must not retain state between calls (cells run concurrently
// on sibling goroutines), and should honour ctx so cancellation reaches the
// simulator. Nothing else is required — once registered, the scenario is
// sweepable via agingbench -scenario and aggregated like the built-ins.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// Options tunes how the experiments run. The zero value reproduces the
// paper's setup as closely as the simulator allows.
type Options struct {
	// Seed drives all randomness; the same seed reproduces the same numbers.
	Seed uint64
	// MaxRunDuration bounds individual testbed executions (0 = 8 h, enough
	// for the slowest leak rates to crash).
	MaxRunDuration time.Duration
	// TrainEBs is the workload used for the constant-rate training runs of
	// experiments 4.2–4.4 (0 = 100, the workload of the paper's periodic
	// experiment).
	TrainEBs int
	// Schema optionally overrides the feature schema the experiment's
	// primary models are built on, by registry name ("full+conn", ...).
	// Empty keeps each experiment's paper-faithful default. Models whose
	// schema *is* the experiment keep their pinned schema regardless: 4.3's
	// expert feature selection, and the connleak scenario's full vs
	// full+conn A/B (which ignores the override entirely).
	Schema string
	// Ctx optionally cancels the experiment between (and inside) testbed
	// executions; the scenario engine sets it so a whole seed sweep can be
	// aborted. A nil Ctx means the experiment runs to completion. The
	// cancellation probe never perturbs the simulation, so runs with a live
	// context reproduce exactly the numbers of runs without one.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxRunDuration <= 0 {
		o.MaxRunDuration = 8 * time.Hour
	}
	if o.TrainEBs <= 0 {
		o.TrainEBs = 100
	}
	return o
}

// modelConfig builds the core.Config for an experiment's primary models: the
// experiment's paper-faithful variable set by default, or the schema named by
// Options.Schema when the caller overrides it (the agingbench -schema flag).
// An unknown schema name fails fast with the list of valid names.
func modelConfig(opts Options, model core.ModelKind, fallback features.VariableSet) (core.Config, error) {
	cfg := core.Config{Model: model, Variables: fallback}
	if opts.Schema != "" {
		schema, err := features.LookupSchema(opts.Schema)
		if err != nil {
			return core.Config{}, fmt.Errorf("experiments: %w", err)
		}
		cfg.Schema = schema
	}
	return cfg, nil
}

// trainScenarioModel is modelConfig + core.Train in one step: it fits an
// immutable model for one of an experiment's primary model families on the
// experiment's training series. Evaluation then runs through per-stream
// sessions (Model.PredictSeries and friends), never by mutating a shared
// predictor.
func trainScenarioModel(opts Options, model core.ModelKind, fallback features.VariableSet, series []*monitor.Series) (*core.Model, error) {
	cfg, err := modelConfig(opts, model, fallback)
	if err != nil {
		return nil, err
	}
	return core.Train(cfg, series)
}

// TracePoint is one sample of a predicted-vs-observed trace, used to redraw
// Figures 3, 4 and 5.
type TracePoint struct {
	// TimeSec is the checkpoint time.
	TimeSec float64
	// PredictedTTFSec is the model's predicted time to failure.
	PredictedTTFSec float64
	// ReferenceTTFSec is the "true" time to failure the prediction is
	// compared against.
	ReferenceTTFSec float64
	// TomcatMemoryMB is the OS-perspective server memory (Figure 3's grey
	// line).
	TomcatMemoryMB float64
	// HeapUsedMB is the JVM-perspective heap usage (Figure 4's grey line).
	HeapUsedMB float64
	// NumThreads is the server thread count (Figure 5's extra line).
	NumThreads float64
}

// constantLeakTrainingRuns builds the deterministic-aging training set of
// experiment 4.1, shared with the bursty scenario: run-to-crash executions
// with a constant N=30 leak at each of the four paper workloads. namePrefix
// and seedBase keep different scenarios' runs distinguishable and their
// random streams independent.
func constantLeakTrainingRuns(opts Options, namePrefix string, seedBase uint64) ([]*monitor.Series, error) {
	series := make([]*monitor.Series, 0, 4)
	for _, ebs := range []int{25, 50, 100, 200} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("%s-train-%dEB", namePrefix, ebs),
			Seed:        opts.Seed + seedBase + uint64(ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	return series, nil
}

// runUntilCrash executes one testbed run and fails if it did not crash.
func runUntilCrash(cfg testbed.RunConfig) (*testbed.Result, error) {
	res, err := testbed.Run(cfg)
	if err != nil {
		return nil, err
	}
	if !res.Crashed {
		return nil, fmt.Errorf("experiments: run %q did not crash within %v (leak too slow for the configured horizon)",
			cfg.Name, cfg.MaxDuration)
	}
	return res, nil
}

// trace builds the TracePoint series for a test run from its checkpoints,
// the model predictions and the reference labels.
func trace(s *monitor.Series, preds []evalx.Prediction) []TracePoint {
	points := make([]TracePoint, 0, len(preds))
	for i, p := range preds {
		cp := s.Checkpoints[i]
		points = append(points, TracePoint{
			TimeSec:         p.TimeSec,
			PredictedTTFSec: p.PredictedTTF,
			ReferenceTTFSec: p.TrueTTF,
			TomcatMemoryMB:  cp.TomcatMemUsedMB,
			HeapUsedMB:      cp.YoungUsedMB + cp.OldUsedMB,
			NumThreads:      cp.NumThreads,
		})
	}
	return points
}

// evaluateBoth trains nothing; it evaluates two already-trained models on
// the same series with the same reference labels and returns (linreg, m5p)
// reports. Each model replays the series through its own fresh session.
func evaluateBoth(lr, m5 *core.Model, s *monitor.Series, ref []float64) (evalx.Report, evalx.Report, []evalx.Prediction, error) {
	var (
		lrPreds, m5Preds []evalx.Prediction
		err              error
	)
	if ref != nil {
		lrPreds, err = lr.PredictSeriesAgainst(s, ref)
	} else {
		lrPreds, err = lr.PredictSeries(s)
	}
	if err != nil {
		return evalx.Report{}, evalx.Report{}, nil, fmt.Errorf("experiments: linear regression predictions: %w", err)
	}
	if ref != nil {
		m5Preds, err = m5.PredictSeriesAgainst(s, ref)
	} else {
		m5Preds, err = m5.PredictSeries(s)
	}
	if err != nil {
		return evalx.Report{}, evalx.Report{}, nil, fmt.Errorf("experiments: M5P predictions: %w", err)
	}
	lrRep, err := evalx.Evaluate(lrPreds, evalx.Options{Model: "Lin. Reg"})
	if err != nil {
		return evalx.Report{}, evalx.Report{}, nil, err
	}
	m5Rep, err := evalx.Evaluate(m5Preds, evalx.Options{Model: "M5P"})
	if err != nil {
		return evalx.Report{}, evalx.Report{}, nil, err
	}
	return lrRep, m5Rep, m5Preds, nil
}

// phaseBoundaries returns the cumulative start times (seconds) of each phase
// after the first, for annotating figures.
func phaseBoundaries(phases []injector.Phase) []float64 {
	var out []float64
	acc := 0.0
	for i, p := range phases {
		if i > 0 {
			out = append(out, acc)
		}
		acc += p.Duration.Seconds()
	}
	return out
}

// formatReports renders a labelled group of reports as a Table 3/4-style
// block.
func formatReports(title string, reports ...evalx.Report) string {
	var b strings.Builder
	b.WriteString(evalx.Table(title, reports))
	return b.String()
}
