package experiments

import (
	"context"
	"fmt"
	"strings"

	"agingpred/internal/adapt"
	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// The adaptive scenario is the A/B the paper's title promises and the frozen
// reproduction could not run: the same serving problem handled by a frozen
// model and by an adaptive Supervisor, under a mid-run leak-rate regime
// change the initial training never saw.
//
// Both arms start from a model deliberately trained on a *single* leak rate
// (regime A). EXPERIMENTS.md records why that model is brittle: with one
// rate per resource, the resource's level trajectory carries the same
// information as its consumption speed, so M5P induction keys on levels and
// the model does not generalise across rates. The serving stream then runs a
// few more regime-A executions (both arms predict fine) and switches to
// regime B — the same memory fault leaking ~4× faster. The frozen arm keeps
// mispredicting regime B forever; the adaptive arm resolves each crashed
// run's labels, trips its drift detector, retrains on the freshly collected
// regime-B runs (plus the seeded regime-A coverage), hot-swaps the model
// epoch and recovers.

const (
	// adaptiveTrainN is the regime-A leak rate (1 MB per ~N search hits; the
	// testbed's deterministic-aging fault) and adaptiveShiftN the ~4× faster
	// regime-B rate the serving stream switches to.
	adaptiveTrainN = 45
	adaptiveShiftN = 12
)

// adaptiveRegimes is the serving schedule: a couple of regime-A runs the
// initial model handles, then the regime change.
var adaptiveRegimes = []struct {
	leakN int
	ebs   int
}{
	{adaptiveTrainN, 100},
	{adaptiveTrainN, 140},
	{adaptiveShiftN, 100}, // the regime change
	{adaptiveShiftN, 140},
	{adaptiveShiftN, 80},
	{adaptiveShiftN, 120},
}

// AdaptiveRunReport summarises one serving run of the A/B.
type AdaptiveRunReport struct {
	// Name identifies the run; LeakN and EBs its regime.
	Name  string
	LeakN int
	EBs   int
	// PostChange says whether the run came after the regime change.
	PostChange bool
	// CrashTimeSec is the run's observed crash time.
	CrashTimeSec float64
	// FrozenMAESec and AdaptiveMAESec compare the two arms on this run.
	FrozenMAESec   float64
	AdaptiveMAESec float64
	// Epoch is the model epoch the adaptive arm served this run with.
	Epoch int
}

// ExperimentAdaptiveResult is the outcome of the adaptive-vs-frozen A/B.
type ExperimentAdaptiveResult struct {
	// TrainReport describes the (deliberately narrow) initial model.
	TrainReport core.TrainReport
	// FrozenPre/AdaptivePre aggregate the pre-change runs, FrozenPost/
	// AdaptivePost the post-change runs — the headline comparison.
	FrozenPre    evalx.Report
	AdaptivePre  evalx.Report
	FrozenPost   evalx.Report
	AdaptivePost evalx.Report
	// Runs is the per-run breakdown, in serving order.
	Runs []AdaptiveRunReport
	// Epochs is the final model-epoch count (≥ 2 when adaptation fired);
	// DriftTrips counts detector trips; Retrains published retrains.
	Epochs     int
	DriftTrips int
	Retrains   int
}

// String renders the A/B for humans.
func (r *ExperimentAdaptiveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive serving — frozen vs adaptive under a leak-rate regime change (N=%d → N=%d)\n",
		adaptiveTrainN, adaptiveShiftN)
	fmt.Fprintf(&b, "  initial model: %s (single-rate training, deliberately brittle)\n", r.TrainReport)
	fmt.Fprintf(&b, "  %-22s %6s %5s %12s %14s %14s %6s\n",
		"run", "leak-N", "EBs", "crash", "frozen MAE", "adaptive MAE", "epoch")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  %-22s %6d %5d %12s %14s %14s %6d\n",
			run.Name, run.LeakN, run.EBs, evalx.FormatDuration(run.CrashTimeSec),
			evalx.FormatDuration(run.FrozenMAESec), evalx.FormatDuration(run.AdaptiveMAESec), run.Epoch)
	}
	b.WriteString(formatReports("  pre-change aggregate", r.FrozenPre, r.AdaptivePre))
	b.WriteString(formatReports("  post-change aggregate", r.FrozenPost, r.AdaptivePost))
	fmt.Fprintf(&b, "  adaptation: %d drift trips, %d retrains, final epoch %d\n",
		r.DriftTrips, r.Retrains, r.Epochs)
	return b.String()
}

// ExperimentAdaptive runs the frozen-vs-adaptive A/B at one seed. Both arms
// see byte-identical serving runs (the testbed executions are simulated once
// and replayed through both), so the comparison isolates the adaptation.
func ExperimentAdaptive(opts Options) (*ExperimentAdaptiveResult, error) {
	opts = opts.withDefaults()

	// The deliberately narrow initial training set: two run-to-crash
	// executions at the same regime-A leak rate. (Workload differs, rate
	// does not — the brittleness EXPERIMENTS.md documents.)
	var trainSeries []*monitor.Series
	for _, ebs := range []int{60, 120} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("adaptive-train-%dEB", ebs),
			Seed:        opts.Seed + 91000 + uint64(ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(adaptiveTrainN),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		trainSeries = append(trainSeries, res.Series)
	}
	model, err := trainScenarioModel(opts, core.ModelM5P, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training the adaptive scenario's initial model: %w", err)
	}

	// The adaptive arm: a Supervisor seeded with the initial coverage, driven
	// synchronously (resolve the crashed run, then adapt if drifted) so the
	// whole trajectory is a pure function of the seed.
	sup, err := adapt.NewSupervisor(adapt.Config{
		Seed: trainSeries,
		Detector: adapt.DetectorConfig{
			Window:     64,
			Hysteresis: 4,
		},
	}, model)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	stream := sup.NewStream("adaptive-live")

	out := &ExperimentAdaptiveResult{TrainReport: model.Report()}
	var frozenPre, frozenPost, adaptivePre, adaptivePost []evalx.Prediction
	for i, regime := range adaptiveRegimes {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("adaptive-live-%d-N%d-%dEB", i+1, regime.leakN, regime.ebs),
			Seed:        opts.Seed + 92000 + uint64(i)*37,
			EBs:         regime.ebs,
			Phases:      testbed.ConstantLeakPhases(regime.leakN),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		s := res.Series

		// Frozen arm: the initial model, a fresh session per run.
		frozenPreds, err := model.PredictSeries(s)
		if err != nil {
			return nil, err
		}
		// Adaptive arm: the supervisor's stream, then label resolution and
		// (possibly) a synchronous retrain + epoch swap before the next run.
		epoch := stream.Epoch()
		adaptivePreds := make([]evalx.Prediction, 0, s.Len())
		for _, cp := range s.Checkpoints {
			pred, err := stream.Observe(cp)
			if err != nil {
				return nil, fmt.Errorf("experiments: adaptive arm observing: %w", err)
			}
			adaptivePreds = append(adaptivePreds, evalx.Prediction{
				TimeSec:      cp.TimeSec,
				TrueTTF:      cp.TTFSec,
				PredictedTTF: pred.TTFSec,
			})
		}
		// Resolve the crash (label feedback + training-run collection), adapt
		// if the detector tripped, then Reset — in that order, so the stream
		// adopts a just-published epoch for the very next run.
		stream.ResolveCrash(s.CrashTimeSec)
		if !sup.Adapt() {
			// Either nothing was due (no drift) or the retrain failed; a
			// failure must abort the cell rather than silently reporting a
			// frozen trajectory as "adaptive".
			if err := sup.Err(); err != nil {
				return nil, fmt.Errorf("experiments: adaptive arm: %w", err)
			}
		}
		stream.Reset()

		frozenRep, err := evalx.Evaluate(frozenPreds, evalx.Options{Model: "frozen"})
		if err != nil {
			return nil, err
		}
		adaptiveRep, err := evalx.Evaluate(adaptivePreds, evalx.Options{Model: "adaptive"})
		if err != nil {
			return nil, err
		}
		post := regime.leakN != adaptiveTrainN
		out.Runs = append(out.Runs, AdaptiveRunReport{
			Name:           s.Name,
			LeakN:          regime.leakN,
			EBs:            regime.ebs,
			PostChange:     post,
			CrashTimeSec:   s.CrashTimeSec,
			FrozenMAESec:   frozenRep.MAE,
			AdaptiveMAESec: adaptiveRep.MAE,
			Epoch:          epoch,
		})
		if post {
			frozenPost = append(frozenPost, frozenPreds...)
			adaptivePost = append(adaptivePost, adaptivePreds...)
		} else {
			frozenPre = append(frozenPre, frozenPreds...)
			adaptivePre = append(adaptivePre, adaptivePreds...)
		}
	}

	if out.FrozenPre, err = evalx.Evaluate(frozenPre, evalx.Options{Model: "frozen"}); err != nil {
		return nil, err
	}
	if out.AdaptivePre, err = evalx.Evaluate(adaptivePre, evalx.Options{Model: "adaptive"}); err != nil {
		return nil, err
	}
	if out.FrozenPost, err = evalx.Evaluate(frozenPost, evalx.Options{Model: "frozen"}); err != nil {
		return nil, err
	}
	if out.AdaptivePost, err = evalx.Evaluate(adaptivePost, evalx.Options{Model: "adaptive"}); err != nil {
		return nil, err
	}
	stats := sup.Stats()
	out.Epochs = stats.Epoch
	out.DriftTrips = stats.Trips
	out.Retrains = stats.Retrains
	return out, nil
}

func init() {
	MustRegister(NewSchemaScenario("adaptive",
		"frozen vs adaptive serving under a mid-run leak-rate regime change (drift detection + background retrain + epoch swap)",
		features.FullSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := ExperimentAdaptive(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{
					"pre/frozen":    res.FrozenPre,
					"pre/adaptive":  res.AdaptivePre,
					"post/frozen":   res.FrozenPost,
					"post/adaptive": res.AdaptivePost,
				},
				Summary: res.String(),
			}, nil
		}))
}
