package experiments

import (
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// training44Runs builds the six single-resource training executions of
// Section 4.4: memory leaks at N = 15, 30, 75 and thread leaks at
// (M, T) = (15, 120), (30, 90), (45, 60), each at constant workload and each
// involving only one resource. The paper stresses that the model never sees
// both resources injected simultaneously during training.
func training44Runs(opts Options) ([]*monitor.Series, error) {
	opts = opts.withDefaults()
	series := make([]*monitor.Series, 0, 6)
	for _, n := range []int{15, 30, 75} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("exp44-train-mem-N%d", n),
			Seed:        opts.Seed + 4400 + uint64(n),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	threadRates := []struct{ m, t int }{{15, 120}, {30, 90}, {45, 60}}
	for _, r := range threadRates {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("exp44-train-thr-M%d-T%d", r.m, r.t),
			Seed:        opts.Seed + 4500 + uint64(r.m),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantThreadLeakPhases(r.m, r.t),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	return series, nil
}

// experiment44Phases is the two-resource test schedule of Section 4.4: a
// no-injection phase, then three phases of roughly 30 minutes combining
// memory and thread injection at changing rates, the last one running until
// the crash.
func experiment44Phases() []injector.Phase {
	return []injector.Phase{
		{Name: "no injection", Duration: 30 * time.Minute, MemoryMode: injector.MemoryOff},
		{Name: "N=30, M=30, T=90", Duration: 30 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 30, ThreadM: 30, ThreadT: 90},
		{Name: "N=15, M=15, T=120", Duration: 30 * time.Minute, MemoryMode: injector.MemoryLeak, MemoryN: 15, ThreadM: 15, ThreadT: 120},
		{Name: "N=75, M=45, T=60", MemoryMode: injector.MemoryLeak, MemoryN: 75, ThreadM: 45, ThreadT: 60},
	}
}

// Experiment44Result reproduces Section 4.4 / Figure 5: dynamic software
// aging caused by two resources (memory and threads) simultaneously, with a
// model trained only on single-resource executions.
type Experiment44Result struct {
	// TrainReport describes the M5P model (the paper: 35 inner nodes,
	// 36 leaves, 2752 instances from 6 executions).
	TrainReport core.TrainReport
	// M5P and LinReg are the accuracy reports against the test run's actual
	// time to failure (the paper: M5P MAE 16:52, S-MAE 13:22, PRE 18:16,
	// POST 2:05 — about 10% of the 1 h 55 min run).
	M5P    evalx.Report
	LinReg evalx.Report
	// Trace is the Figure 5 series: predicted TTF plus the memory and thread
	// consumption curves.
	Trace []TracePoint
	// PhaseBoundariesSec are the phase-change times.
	PhaseBoundariesSec []float64
	// CrashTimeSec and CrashReason describe the failure.
	CrashTimeSec float64
	CrashReason  string
	// RootCause holds the hints extracted from the top of the learned tree,
	// reproducing the paper's observation that memory and thread attributes
	// dominate the first levels.
	RootCause []core.RootCauseHint
}

// String renders the result.
func (r *Experiment44Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 4.4 — aging due to two resources (Figure 5)\n")
	fmt.Fprintf(&b, "  %s\n", r.TrainReport)
	fmt.Fprintf(&b, "  test run crashed at %.0f s (%s); phase changes at %v\n",
		r.CrashTimeSec, r.CrashReason, r.PhaseBoundariesSec)
	b.WriteString(formatReports("  accuracy vs actual time to failure", r.LinReg, r.M5P))
	b.WriteString(core.FormatRootCause(r.RootCause))
	return b.String()
}

// Experiment44 runs the two-resource experiment.
func Experiment44(opts Options) (*Experiment44Result, error) {
	opts = opts.withDefaults()
	trainSeries, err := training44Runs(opts)
	if err != nil {
		return nil, err
	}

	m5pModel, err := trainScenarioModel(opts, core.ModelM5P, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training M5P for 4.4: %w", err)
	}
	lrModel, err := trainScenarioModel(opts, core.ModelLinearRegression, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training linear regression for 4.4: %w", err)
	}

	phases := experiment44Phases()
	testRes, err := runUntilCrash(testbed.RunConfig{
		Name:        "exp44-test",
		Seed:        opts.Seed + 4600,
		EBs:         opts.TrainEBs,
		Phases:      phases,
		MaxDuration: opts.MaxRunDuration,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}

	lrRep, m5Rep, m5Preds, err := evaluateBoth(lrModel, m5pModel, testRes.Series, nil)
	if err != nil {
		return nil, err
	}
	hints, err := m5pModel.RootCause(3)
	if err != nil {
		return nil, err
	}
	return &Experiment44Result{
		TrainReport:        m5pModel.Report(),
		M5P:                m5Rep,
		LinReg:             lrRep,
		Trace:              trace(testRes.Series, m5Preds),
		PhaseBoundariesSec: phaseBoundaries(phases),
		CrashTimeSec:       testRes.Series.CrashTimeSec,
		CrashReason:        testRes.Series.CrashReason,
		RootCause:          hints,
	}, nil
}

// PaperExperiment44 returns the accuracy figures the paper reports for
// experiment 4.4, in seconds.
func PaperExperiment44() evalx.Report {
	return evalx.Report{
		Model:   "M5P (paper)",
		MAE:     16*60 + 52,
		SMAE:    13*60 + 22,
		PreMAE:  18*60 + 16,
		PostMAE: 2*60 + 5,
	}
}
