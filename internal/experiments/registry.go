package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of scenarios. The package keeps a default
// registry that the built-in scenarios register into at init time; tests can
// build private registries.
type Registry struct {
	mu        sync.RWMutex
	scenarios map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scenarios: make(map[string]Scenario)}
}

// Register adds a scenario. It fails on a nil scenario, an empty name, or a
// duplicate name: scenario names are stable identifiers (CLI flags, golden
// tests) and silently replacing one is always a bug.
func (r *Registry) Register(s Scenario) error {
	if s == nil {
		return fmt.Errorf("experiments: register nil scenario")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("experiments: scenario with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scenarios[name]; ok {
		return fmt.Errorf("experiments: scenario %q already registered", name)
	}
	r.scenarios[name] = s
	return nil
}

// Lookup returns the scenario with the given name.
func (r *Registry) Lookup(name string) (Scenario, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scenarios[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q (known: %s)",
			name, strings.Join(r.namesLocked(), ", "))
	}
	return s, nil
}

// Names returns the registered scenario names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.scenarios))
	for name := range r.scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name.
func (r *Registry) All() []Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Scenario, 0, len(r.scenarios))
	for _, name := range r.namesLocked() {
		out = append(out, r.scenarios[name])
	}
	return out
}

// defaultRegistry holds the built-in scenarios plus whatever callers add via
// the package-level Register.
var defaultRegistry = NewRegistry()

// Register adds a scenario to the default registry.
func Register(s Scenario) error { return defaultRegistry.Register(s) }

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup finds a scenario in the default registry.
func Lookup(name string) (Scenario, error) { return defaultRegistry.Lookup(name) }

// ScenarioNames lists the default registry in sorted order.
func ScenarioNames() []string { return defaultRegistry.Names() }

// AllScenarios returns every scenario of the default registry, sorted by
// name.
func AllScenarios() []Scenario { return defaultRegistry.All() }

// LookupAll resolves a list of scenario names against the default registry,
// preserving the requested order. The single name "all" expands to every
// registered scenario.
func LookupAll(names []string) ([]Scenario, error) {
	if len(names) == 1 && names[0] == "all" {
		return AllScenarios(), nil
	}
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
