package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// The trileak scenario extends experiment 4.4 from two simultaneous aging
// resources to three: memory leaks, thread leaks, and database-connection
// leaks (a third injector the paper's testbed does not have). As in 4.4 the
// models are trained only on single-resource executions and must generalise
// to the combined fault, now with one more way to die — the connection pool
// running dry.

// TriLeakResult is the outcome of the three-resource scenario.
type TriLeakResult struct {
	// TrainReport describes the M5P model trained on the six single-resource
	// executions (two per resource).
	TrainReport core.TrainReport
	// M5P and LinReg are the accuracy reports on the combined-fault test run,
	// against the actual time to failure.
	M5P    evalx.Report
	LinReg evalx.Report
	// Trace allows redrawing the prediction-vs-consumption figure.
	Trace []TracePoint
	// CrashTimeSec and CrashReason describe which of the three resources won
	// the race to kill the server.
	CrashTimeSec float64
	CrashReason  string
	// RootCause holds the top attributes of the learned tree, to check the
	// model noticed the injected resources.
	RootCause []core.RootCauseHint
}

// String renders the result.
func (r *TriLeakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario trileak — three simultaneous aging resources (memory + threads + connections)\n")
	fmt.Fprintf(&b, "  %s\n", r.TrainReport)
	fmt.Fprintf(&b, "  test run crashed at %.0f s (%s)\n", r.CrashTimeSec, r.CrashReason)
	b.WriteString(formatReports("  accuracy vs actual time to failure", r.LinReg, r.M5P))
	b.WriteString(core.FormatRootCause(r.RootCause))
	return b.String()
}

// trileakTrainingRuns builds six single-resource executions: two memory-leak
// rates, two thread-leak rates, two connection-leak rates. The model never
// sees two resources injected together during training.
func trileakTrainingRuns(opts Options) ([]*monitor.Series, error) {
	opts = opts.withDefaults()
	series := make([]*monitor.Series, 0, 6)
	for _, n := range []int{15, 75} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("trileak-train-mem-N%d", n),
			Seed:        opts.Seed + 6000 + uint64(n),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantLeakPhases(n),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	threadRates := []struct{ m, t int }{{15, 120}, {45, 60}}
	for _, r := range threadRates {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("trileak-train-thr-M%d-T%d", r.m, r.t),
			Seed:        opts.Seed + 6100 + uint64(r.m),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantThreadLeakPhases(r.m, r.t),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	connRates := []struct{ c, t int }{{4, 45}, {8, 60}}
	for _, r := range connRates {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("trileak-train-conn-C%d-T%d", r.c, r.t),
			Seed:        opts.Seed + 6200 + uint64(r.c),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantConnLeakPhases(r.c, r.t),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	return series, nil
}

// trileakPhases is the combined-fault test schedule: a clean warm-up, then
// all three injectors at moderate rates until something gives out.
func trileakPhases() []injector.Phase {
	return []injector.Phase{
		{Name: "no injection", Duration: trileakWarmup, MemoryMode: injector.MemoryOff},
		{Name: "mem+thr+conn", MemoryMode: injector.MemoryLeak, MemoryN: 75,
			ThreadM: 15, ThreadT: 120, ConnC: 3, ConnT: 60},
	}
}

// trileakWarmup is the clean phase before the three injectors start.
const trileakWarmup = 20 * time.Minute

// ExperimentTriLeak runs the three-resource scenario.
func ExperimentTriLeak(opts Options) (*TriLeakResult, error) {
	opts = opts.withDefaults()
	trainSeries, err := trileakTrainingRuns(opts)
	if err != nil {
		return nil, err
	}

	m5pModel, err := trainScenarioModel(opts, core.ModelM5P, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training M5P for trileak scenario: %w", err)
	}
	lrModel, err := trainScenarioModel(opts, core.ModelLinearRegression, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training linear regression for trileak scenario: %w", err)
	}

	testRes, err := runUntilCrash(testbed.RunConfig{
		Name:        "trileak-test",
		Seed:        opts.Seed + 6900,
		EBs:         opts.TrainEBs,
		Phases:      trileakPhases(),
		MaxDuration: opts.MaxRunDuration,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}

	lrRep, m5Rep, m5Preds, err := evaluateBoth(lrModel, m5pModel, testRes.Series, nil)
	if err != nil {
		return nil, err
	}
	hints, err := m5pModel.RootCause(3)
	if err != nil {
		return nil, err
	}
	return &TriLeakResult{
		TrainReport:  m5pModel.Report(),
		M5P:          m5Rep,
		LinReg:       lrRep,
		Trace:        trace(testRes.Series, m5Preds),
		CrashTimeSec: testRes.Series.CrashTimeSec,
		CrashReason:  testRes.Series.CrashReason,
		RootCause:    hints,
	}, nil
}

func init() {
	MustRegister(NewSchemaScenario("trileak",
		"three-resource aging: memory + threads + DB connections, single-resource training",
		features.FullSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := ExperimentTriLeak(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{"LinReg": res.LinReg, "M5P": res.M5P},
				Summary: res.String(),
			}, nil
		}))
}
