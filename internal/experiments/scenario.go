package experiments

import (
	"context"
	"sort"

	"agingpred/internal/evalx"
	"agingpred/internal/features"
)

// Scenario is one self-contained aging experiment: it runs whatever testbed
// executions it needs, trains its models, and reports named accuracy metrics.
// The four experiments of the paper register themselves as scenarios, and new
// workloads (bursty traffic, multi-resource leaks, ...) plug in the same way.
//
// Implementations must be stateless across Run calls and deterministic in
// opts.Seed: the engine runs many (scenario, seed) cells concurrently and the
// same cell must always produce the same metrics.
type Scenario interface {
	// Name is the registry key ("4.1", "bursty", ...). It must be non-empty
	// and unique.
	Name() string
	// Description is a one-line summary shown by agingbench -list.
	Description() string
	// Run executes the scenario. The context cancels the underlying testbed
	// executions; implementations should pass it down via Options.Ctx.
	Run(ctx context.Context, opts Options) (*ScenarioResult, error)
}

// Metrics is the named accuracy reports of one scenario run — one entry per
// (test workload, model) cell of the scenario's result table, e.g.
// "75EBs/M5P" or "LinReg".
type Metrics map[string]evalx.Report

// Keys returns the metric names in sorted order, for deterministic
// iteration.
func (m Metrics) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ScenarioResult is the outcome of one scenario run at one seed.
type ScenarioResult struct {
	// Metrics are the headline accuracy numbers, keyed as described on
	// Metrics.
	Metrics Metrics
	// Summary is the human-readable rendering of the full result (tables,
	// crash times, ...), as the single-experiment path prints it.
	Summary string
}

// SchemaDeclarer is optionally implemented by scenarios that declare which
// feature schema their models are built on (a name from the features schema
// registry). agingbench -list surfaces the declaration, and it documents
// which Table 2 variant a scenario's metrics were produced under.
type SchemaDeclarer interface {
	// SchemaName returns the scenario's primary feature-schema name.
	SchemaName() string
}

// ScenarioSchema returns the schema a scenario declares, or "full" — the
// complete Table 2 set — for scenarios that declare nothing.
func ScenarioSchema(s Scenario) string {
	if d, ok := s.(SchemaDeclarer); ok {
		if name := d.SchemaName(); name != "" {
			return name
		}
	}
	return features.FullSchemaName
}

// scenarioFunc adapts a plain function to the Scenario interface; all
// built-in scenarios use it.
type scenarioFunc struct {
	name   string
	desc   string
	schema string
	run    func(ctx context.Context, opts Options) (*ScenarioResult, error)
}

func (s scenarioFunc) Name() string        { return s.name }
func (s scenarioFunc) Description() string { return s.desc }
func (s scenarioFunc) SchemaName() string  { return s.schema }
func (s scenarioFunc) Run(ctx context.Context, opts Options) (*ScenarioResult, error) {
	opts.Ctx = ctx
	return s.run(ctx, opts)
}

// NewScenario wraps a run function as a Scenario, for callers outside this
// package that want to register custom scenarios without defining a type.
// The scenario declares the full Table 2 schema; use NewSchemaScenario to
// declare another.
func NewScenario(name, description string, run func(ctx context.Context, opts Options) (*ScenarioResult, error)) Scenario {
	return NewSchemaScenario(name, description, features.FullSchemaName, run)
}

// NewSchemaScenario is NewScenario with an explicit feature-schema
// declaration (a features registry name).
func NewSchemaScenario(name, description, schema string, run func(ctx context.Context, opts Options) (*ScenarioResult, error)) Scenario {
	return scenarioFunc{name: name, desc: description, schema: schema, run: run}
}
