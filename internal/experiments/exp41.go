package experiments

import (
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/testbed"
)

// Experiment41Result reproduces Section 4.1 / Table 3: deterministic software
// aging (1 MB leak, N = 30), models trained on executions at 25/50/100/200
// EBs and tested on unseen workloads of 75 and 150 EBs.
type Experiment41Result struct {
	// M5PModel and LinRegModel are the trained models themselves — immutable
	// and persistable, so agingbench can save them as artifacts
	// (-save-models) for agingpredict/agingfleet to serve without
	// retraining.
	M5PModel    *core.Model
	LinRegModel *core.Model
	// TrainReportM5P and TrainReportLinReg describe the trained models (the
	// paper reports 33 leaves / 30 inner nodes over 2776 instances).
	TrainReportM5P    core.TrainReport
	TrainReportLinReg core.TrainReport
	// TrainingInstances is the total number of training checkpoints.
	TrainingInstances int

	// Table3 holds one row group per test workload, keyed "75EBs" and
	// "150EBs"; each group holds the Lin. Reg and M5P reports, in that
	// order, exactly like the columns of Table 3.
	Table3 map[string][]evalx.Report
}

// String renders the result like Table 3.
func (r *Experiment41Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 4.1 — deterministic software aging (Table 3)\n")
	fmt.Fprintf(&b, "  %s\n  %s\n", r.TrainReportM5P, r.TrainReportLinReg)
	for _, key := range []string{"75EBs", "150EBs"} {
		if reports, ok := r.Table3[key]; ok {
			b.WriteString(formatReports("  test workload "+key, reports...))
		}
	}
	return b.String()
}

// Experiment41 runs the deterministic-aging experiment.
func Experiment41(opts Options) (*Experiment41Result, error) {
	opts = opts.withDefaults()

	// Training executions: 4 workloads, constant N=30 leak, run to crash.
	trainSeries, err := constantLeakTrainingRuns(opts, "exp41", 1000)
	if err != nil {
		return nil, err
	}

	// The paper does not add the heap information in this experiment (the
	// -schema flag can override the no-heap default).
	m5pModel, err := trainScenarioModel(opts, core.ModelM5P, features.NoHeapSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training M5P for 4.1: %w", err)
	}
	lrModel, err := trainScenarioModel(opts, core.ModelLinearRegression, features.NoHeapSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training linear regression for 4.1: %w", err)
	}

	out := &Experiment41Result{
		M5PModel:          m5pModel,
		LinRegModel:       lrModel,
		TrainReportM5P:    m5pModel.Report(),
		TrainReportLinReg: lrModel.Report(),
		TrainingInstances: m5pModel.Report().Instances,
		Table3:            make(map[string][]evalx.Report, 2),
	}

	// Test executions: unseen workloads of 75 and 150 EBs.
	for _, ebs := range []int{75, 150} {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("exp41-test-%dEB", ebs),
			Seed:        opts.Seed + uint64(2000+ebs),
			EBs:         ebs,
			Phases:      testbed.ConstantLeakPhases(30),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		lrRep, m5Rep, _, err := evaluateBoth(lrModel, m5pModel, res.Series, nil)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%dEBs", ebs)
		out.Table3[key] = []evalx.Report{lrRep, m5Rep}
	}
	return out, nil
}

// PaperValue records one row of a published result table (in seconds), used
// for the EXPERIMENTS.md paper-vs-measured comparison.
type PaperValue struct {
	Metric string
	LinReg float64
	M5P    float64
}

// PaperTable3 returns the published Table 3 values (in seconds) keyed by test
// workload. They are reference points for the shape comparison, not targets
// the simulator is expected to hit exactly.
func PaperTable3() map[string][]PaperValue {
	return map[string][]PaperValue{
		"75EBs": {
			{Metric: "MAE", LinReg: 19*60 + 35, M5P: 15*60 + 14},
			{Metric: "S-MAE", LinReg: 14*60 + 17, M5P: 9*60 + 34},
			{Metric: "PRE-MAE", LinReg: 21*60 + 13, M5P: 16*60 + 22},
			{Metric: "POST-MAE", LinReg: 5*60 + 11, M5P: 2*60 + 20},
		},
		"150EBs": {
			{Metric: "MAE", LinReg: 20*60 + 24, M5P: 5*60 + 46},
			{Metric: "S-MAE", LinReg: 17*60 + 24, M5P: 2*60 + 52},
			{Metric: "PRE-MAE", LinReg: 19*60 + 40, M5P: 6*60 + 18},
			{Metric: "POST-MAE", LinReg: 24*60 + 14, M5P: 2*60 + 57},
		},
	}
}

// PaperExperimentDurations documents how long the paper's test executions
// ran, for context in reports.
func PaperExperimentDurations() map[string]time.Duration {
	return map[string]time.Duration{
		"4.2": time.Hour + 47*time.Minute,
		"4.4": time.Hour + 55*time.Minute,
	}
}
