package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"agingpred/internal/core"
	"agingpred/internal/features"
	"agingpred/internal/testbed"
)

// TestModelRoundTripOnGolden41Stream is the persistence acceptance criterion
// at experiment scale: train the experiment 4.1 M5P model at seed 1, encode
// → decode it, and replay the golden 150 EB test stream (the same execution
// TestGoldenMetricsSeed1 pins) through both models. Every TTF prediction
// must match bit for bit — a saved model serves exactly like the process
// that trained it.
func TestModelRoundTripOnGolden41Stream(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment-scale training runs")
	}
	opts := Options{Seed: 1}.withDefaults()
	trainSeries, err := constantLeakTrainingRuns(opts, "exp41", 1000)
	if err != nil {
		t.Fatalf("training runs: %v", err)
	}
	model, err := trainScenarioModel(opts, core.ModelM5P, features.NoHeapSet, trainSeries)
	if err != nil {
		t.Fatalf("training: %v", err)
	}

	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	loaded, err := core.DecodeModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeModel: %v", err)
	}

	// The golden 4.1 test stream: 150 EBs, constant N=30 leak, seed 1.
	res, err := runUntilCrash(testbed.RunConfig{
		Name:        "exp41-test-150EB",
		Seed:        opts.Seed + uint64(2000+150),
		EBs:         150,
		Phases:      testbed.ConstantLeakPhases(30),
		MaxDuration: opts.MaxRunDuration,
	})
	if err != nil {
		t.Fatalf("golden test run: %v", err)
	}
	want, err := model.PredictSeries(res.Series)
	if err != nil {
		t.Fatalf("in-memory predictions: %v", err)
	}
	got, err := loaded.PredictSeries(res.Series)
	if err != nil {
		t.Fatalf("decoded-model predictions: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded model produced %d predictions, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if got[i].PredictedTTF != want[i].PredictedTTF {
			t.Fatalf("checkpoint %d (t=%.0f s): decoded model predicted %v, in-memory %v",
				i, want[i].TimeSec, got[i].PredictedTTF, want[i].PredictedTTF)
		}
	}
	if model.Report() != loaded.Report() {
		t.Fatalf("train report changed across the round trip: %+v vs %+v", loaded.Report(), model.Report())
	}
	t.Logf("round trip bit-identical over %d checkpoints: %s", len(want),
		fmt.Sprintf("%s (artifact: %d bytes)", model.Report(), buf.Len()))
}
