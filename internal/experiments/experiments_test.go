package experiments

import (
	"strings"
	"testing"
	"time"

	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// Experiments are full end-to-end reproductions (several simulated hours of
// testbed time plus model training); they are the slowest tests in the
// repository, so every one of them honours -short.

func TestFigure1NonLinearOSMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Figure1(Options{Seed: 1})
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(res.Points) < 50 {
		t.Fatalf("only %d points", len(res.Points))
	}
	if res.OldResizes < 2 {
		t.Fatalf("old zone resized %d times; Figure 1 needs several resizes", res.OldResizes)
	}
	// OS-perspective memory is non-decreasing and has flat zones: count
	// checkpoints with (almost) zero growth.
	flat := 0
	for i := 1; i < len(res.Points); i++ {
		d := res.Points[i].OSMemoryMB - res.Points[i-1].OSMemoryMB
		if d < -1e-6 {
			t.Fatalf("OS memory decreased at point %d", i)
		}
		if d < 0.05 {
			flat++
		}
	}
	if flat < len(res.Points)/20 {
		t.Fatalf("OS memory curve has only %d flat checkpoints out of %d; expected visible flat zones", flat, len(res.Points))
	}
	// The naive linear prediction is pessimistic: the server lives longer
	// thanks to GC/resizing (the paper's "16 extra minutes" observation).
	if res.ExtraLifetimeSec <= 0 {
		t.Fatalf("extra lifetime = %v s, want positive", res.ExtraLifetimeSec)
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestFigure2DualPerspective(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Figure2(Options{Seed: 2})
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if res.Cycles != 5 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	// The periodic pattern must be visible from the JVM perspective and
	// essentially invisible from the OS perspective.
	if res.JVMViewRangeMB < 100 {
		t.Fatalf("JVM-perspective range = %v MB, want large waves", res.JVMViewRangeMB)
	}
	if res.OSViewRangeMB > res.JVMViewRangeMB/2 {
		t.Fatalf("OS-perspective range %v MB is not much flatter than the JVM range %v MB",
			res.OSViewRangeMB, res.JVMViewRangeMB)
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestExperiment41Table3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Experiment41(Options{Seed: 3})
	if err != nil {
		t.Fatalf("Experiment41: %v", err)
	}
	if res.TrainingInstances < 500 {
		t.Fatalf("only %d training instances", res.TrainingInstances)
	}
	if res.TrainReportM5P.Leaves < 2 {
		t.Fatalf("M5P degenerated to %d leaves", res.TrainReportM5P.Leaves)
	}
	for _, key := range []string{"75EBs", "150EBs"} {
		reports, ok := res.Table3[key]
		if !ok || len(reports) != 2 {
			t.Fatalf("missing Table 3 group %q", key)
		}
		lr, m5 := reports[0], reports[1]
		// Shape criterion 1: M5P beats Linear Regression.
		if m5.MAE >= lr.MAE {
			t.Errorf("%s: M5P MAE %.0f s is not better than LinReg %.0f s", key, m5.MAE, lr.MAE)
		}
		// Shape criterion 2: predictions sharpen near the crash.
		if m5.PostMAE >= m5.PreMAE {
			t.Errorf("%s: M5P POST-MAE %.0f s is not better than PRE-MAE %.0f s", key, m5.PostMAE, m5.PreMAE)
		}
		// Definitional: S-MAE <= MAE.
		if m5.SMAE > m5.MAE || lr.SMAE > lr.MAE {
			t.Errorf("%s: S-MAE exceeds MAE", key)
		}
	}
	if !strings.Contains(res.String(), "Experiment 4.1") {
		t.Fatalf("String() missing header")
	}
	if len(PaperTable3()["75EBs"]) != 4 {
		t.Fatalf("PaperTable3 incomplete")
	}
}

func TestExperiment42DynamicAging(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Experiment42(Options{Seed: 4})
	if err != nil {
		t.Fatalf("Experiment42: %v", err)
	}
	if res.TrainReport.Instances < 300 {
		t.Fatalf("training set too small: %d instances", res.TrainReport.Instances)
	}
	if len(res.PhaseBoundariesSec) != 3 {
		t.Fatalf("phase boundaries = %v", res.PhaseBoundariesSec)
	}
	// Shape: M5P better than Linear Regression, and not wildly inaccurate in
	// absolute terms (the paper's MAE is ~16 min on a ~2 h run; allow a
	// generous band).
	if res.M5P.MAE >= res.LinReg.MAE {
		t.Errorf("M5P MAE %.0f s not better than LinReg %.0f s", res.M5P.MAE, res.LinReg.MAE)
	}
	if res.M5P.MAE > 2400 {
		t.Errorf("M5P MAE = %.0f s, implausibly large", res.M5P.MAE)
	}
	// The trace must show adaptation: during the first (no-injection) phase
	// predictions stay near the infinite horizon, afterwards they drop.
	var earlyMax, lateMin float64
	lateMin = monitor.InfiniteTTFSec
	for _, p := range res.Trace {
		if p.TimeSec <= 900 && p.PredictedTTFSec > earlyMax {
			earlyMax = p.PredictedTTFSec
		}
		if p.TimeSec > res.PhaseBoundariesSec[0] && p.PredictedTTFSec < lateMin {
			lateMin = p.PredictedTTFSec
		}
	}
	if earlyMax < 5000 {
		t.Errorf("during the no-injection phase the maximum prediction was only %.0f s; expected near-infinite predictions", earlyMax)
	}
	if lateMin > 3000 {
		t.Errorf("after injection started the minimum prediction was %.0f s; expected the model to see the crash coming", lateMin)
	}
	if !strings.Contains(res.String(), "Experiment 4.2") {
		t.Fatalf("String() missing header")
	}
	if PaperExperiment42().MAE != 986 {
		t.Fatalf("PaperExperiment42 MAE = %v, want 986", PaperExperiment42().MAE)
	}
}

func TestExperiment43FeatureSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Experiment43(Options{Seed: 5})
	if err != nil {
		t.Fatalf("Experiment43: %v", err)
	}
	if len(res.Table4) != 2 {
		t.Fatalf("Table4 has %d entries", len(res.Table4))
	}
	lr, m5 := res.Table4[0], res.Table4[1]
	// Shape criteria that reproduce in this substitution (see EXPERIMENTS.md
	// for the discussion of the ones that do not): near the crash — the
	// region rejuvenation decisions depend on — the selected M5P model is
	// considerably more accurate than Linear Regression and than the
	// full-variable M5P model.
	if m5.PostMAE >= lr.PostMAE {
		t.Errorf("selected M5P POST-MAE %.0f s not better than LinReg %.0f s", m5.PostMAE, lr.PostMAE)
	}
	if m5.PostMAE >= res.M5PFullSet.PostMAE {
		t.Errorf("feature selection did not improve near-crash accuracy: selected %.0f s vs full %.0f s",
			m5.PostMAE, res.M5PFullSet.PostMAE)
	}
	if m5.SMAE > m5.MAE || lr.SMAE > lr.MAE {
		t.Errorf("S-MAE exceeds MAE")
	}
	// Both models must still carry real signal: far better than a predictor
	// that always answers half the run length.
	if m5.MAE > res.CrashTimeSec/2 || lr.MAE > res.CrashTimeSec/2 {
		t.Errorf("MAE larger than half the run length: m5=%.0f lr=%.0f crash=%.0f", m5.MAE, lr.MAE, res.CrashTimeSec)
	}
	if res.Cycles < 2 {
		t.Errorf("crash after only %d cycles; the aging is supposed to hide inside several periodic cycles", res.Cycles)
	}
	// Figure 4: the JVM-perspective heap curve must oscillate (waves).
	var minHeap, maxHeap float64 = 1e18, -1e18
	for _, p := range res.Trace {
		if p.HeapUsedMB < minHeap {
			minHeap = p.HeapUsedMB
		}
		if p.HeapUsedMB > maxHeap {
			maxHeap = p.HeapUsedMB
		}
	}
	if maxHeap-minHeap < 100 {
		t.Errorf("heap curve range = %v MB; expected visible acquire/release waves", maxHeap-minHeap)
	}
	if !strings.Contains(res.String(), "Experiment 4.3") {
		t.Fatalf("String() missing header")
	}
	if len(PaperTable4()) != 4 {
		t.Fatalf("PaperTable4 incomplete")
	}
}

func TestExperiment44TwoResources(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := Experiment44(Options{Seed: 6})
	if err != nil {
		t.Fatalf("Experiment44: %v", err)
	}
	if res.TrainReport.Instances < 600 {
		t.Fatalf("training set too small: %d instances", res.TrainReport.Instances)
	}
	// Shape criteria: M5P beats Linear Regression and sharpens near the
	// crash even though it never saw both resources injected together.
	if res.M5P.MAE >= res.LinReg.MAE {
		t.Errorf("M5P MAE %.0f s not better than LinReg %.0f s", res.M5P.MAE, res.LinReg.MAE)
	}
	if res.M5P.PostMAE >= res.M5P.PreMAE {
		t.Errorf("POST-MAE %.0f s not better than PRE-MAE %.0f s", res.M5P.PostMAE, res.M5P.PreMAE)
	}
	// Root-cause hints must implicate memory and/or threads.
	if len(res.RootCause) == 0 {
		t.Fatalf("no root-cause hints")
	}
	relevant := false
	for _, h := range res.RootCause {
		attr := h.Attr
		if strings.Contains(attr, "mem") || strings.Contains(attr, "thread") ||
			strings.Contains(attr, "old") || strings.Contains(attr, "young") || strings.Contains(attr, "swap") {
			relevant = true
		}
	}
	if !relevant {
		t.Errorf("root-cause hints do not mention memory or threads: %+v", res.RootCause)
	}
	// The thread curve in the trace must grow substantially (Figure 5).
	first, last := res.Trace[0].NumThreads, res.Trace[len(res.Trace)-1].NumThreads
	if last-first < 100 {
		t.Errorf("thread count grew only from %v to %v during the two-resource run", first, last)
	}
	if !strings.Contains(res.String(), "Experiment 4.4") {
		t.Fatalf("String() missing header")
	}
	if PaperExperiment44().PostMAE != 125 {
		t.Fatalf("PaperExperiment44 PostMAE = %v", PaperExperiment44().PostMAE)
	}
}

// --- unit tests of the small helpers (fast) ---

func TestPhaseBoundaries(t *testing.T) {
	phases := []injector.Phase{
		{Duration: 20 * time.Minute},
		{Duration: 20 * time.Minute},
		{Duration: 0},
	}
	got := phaseBoundaries(phases)
	if len(got) != 2 || got[0] != 1200 || got[1] != 2400 {
		t.Fatalf("phaseBoundaries = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxRunDuration != 8*time.Hour || o.TrainEBs != 100 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{MaxRunDuration: time.Hour, TrainEBs: 25}.withDefaults()
	if o.MaxRunDuration != time.Hour || o.TrainEBs != 25 {
		t.Fatalf("explicit options overridden: %+v", o)
	}
}

func TestRunUntilCrashReportsNonCrash(t *testing.T) {
	_, err := runUntilCrash(testbed.RunConfig{
		Name:        "no-crash",
		Seed:        9,
		EBs:         10,
		Phases:      testbed.NoInjectionPhases(),
		MaxDuration: 5 * time.Minute,
	})
	if err == nil {
		t.Fatalf("runUntilCrash accepted a healthy run")
	}
	if !strings.Contains(err.Error(), "did not crash") {
		t.Fatalf("error = %v", err)
	}
}

func TestExperiment42PhasesShape(t *testing.T) {
	phases := experiment42Phases()
	if len(phases) != 4 {
		t.Fatalf("experiment 4.2 has %d phases", len(phases))
	}
	if phases[0].MemoryMode != injector.MemoryOff || phases[3].MemoryN != 75 || phases[3].Duration != 0 {
		t.Fatalf("experiment 4.2 phases wrong: %+v", phases)
	}
	phases44 := experiment44Phases()
	if len(phases44) != 4 || phases44[1].ThreadM != 30 || phases44[3].ThreadM != 45 {
		t.Fatalf("experiment 4.4 phases wrong: %+v", phases44)
	}
	p43 := experiment43Phases(3)
	if len(p43) != 6 || p43[0].MemoryMode != injector.MemoryAcquire || p43[1].MemoryMode != injector.MemoryRelease {
		t.Fatalf("experiment 4.3 phases wrong: %+v", p43)
	}
}
