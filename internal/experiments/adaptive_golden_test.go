package experiments

import (
	"runtime"
	"testing"
)

// goldenAdaptiveSeed1 pins the adaptive scenario's seed-1 metrics the same
// way goldenSeed1 pins experiments 4.1–4.4: the simulation substrate is
// deterministic, so any drift here means a change moved the reproduced
// adaptive-serving results. Regenerate deliberately (run the scenario at
// seed 1 and copy the values) when a change is supposed to move them, and
// say so in the commit.
var goldenAdaptiveSeed1 = map[string]goldenMetric{
	"post/adaptive": {MAE: 1316.8658330347628, SMAE: 1315.4849963666607, PreMAE: 1713.1503170780422, PostMAE: 412.8418538110287},
	"post/frozen":   {MAE: 2246.101794935012, SMAE: 2246.101794935012, PreMAE: 2704.192164907223, PostMAE: 1201.0831384359076},
	"pre/adaptive":  {MAE: 513.1917666325695, SMAE: 470.0828212577326, PreMAE: 563.9318878465655, PostMAE: 67.94720297975536},
	"pre/frozen":    {MAE: 513.1917666325695, SMAE: 470.0828212577326, PreMAE: 563.9318878465655, PostMAE: 67.94720297975536},
}

// TestAdaptiveScenarioShape asserts the property the scenario exists for, on
// any architecture: under a leak-rate regime change the initial training
// never saw, the adaptive arm's post-change error is strictly below the
// frozen arm's, while the pre-change phase is identical (no false adaptation
// before the regime change at seed 1) and at least one epoch swap happened.
func TestAdaptiveScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := ExperimentAdaptive(Options{Seed: 1})
	if err != nil {
		t.Fatalf("ExperimentAdaptive: %v", err)
	}
	if res.Epochs < 2 || res.Retrains < 1 {
		t.Fatalf("no adaptation happened: %d epochs, %d retrains", res.Epochs, res.Retrains)
	}
	if res.DriftTrips < 1 {
		t.Fatalf("drift detector never tripped")
	}
	// The headline: adaptive recovers after the regime change, frozen does
	// not. Strict inequality, with real margin (not a rounding artifact).
	if res.AdaptivePost.MAE >= res.FrozenPost.MAE*0.95 {
		t.Fatalf("adaptive post-change MAE %.0f s not strictly below frozen %.0f s",
			res.AdaptivePost.MAE, res.FrozenPost.MAE)
	}
	if res.AdaptivePost.PostMAE >= res.FrozenPost.PostMAE {
		t.Fatalf("adaptive near-crash POST-MAE %.0f s not below frozen %.0f s",
			res.AdaptivePost.PostMAE, res.FrozenPost.PostMAE)
	}
	// Before the change the two arms are the same model: identical metrics,
	// all streams still on epoch 1.
	if res.AdaptivePre.MAE != res.FrozenPre.MAE || res.AdaptivePre.SMAE != res.FrozenPre.SMAE ||
		res.AdaptivePre.PreMAE != res.FrozenPre.PreMAE || res.AdaptivePre.PostMAE != res.FrozenPre.PostMAE {
		t.Fatalf("pre-change arms diverged: adaptive %+v vs frozen %+v", res.AdaptivePre, res.FrozenPre)
	}
	for _, run := range res.Runs {
		if !run.PostChange && run.Epoch != 1 {
			t.Fatalf("pre-change run %s served on epoch %d", run.Name, run.Epoch)
		}
	}
	// The last run must be served by a retrained epoch — the swap reached
	// live serving, not just the supervisor's bookkeeping.
	if last := res.Runs[len(res.Runs)-1]; last.Epoch < 2 {
		t.Fatalf("final run still served by the initial epoch:\n%s", res)
	}
}

// TestGoldenAdaptiveSeed1 pins the exact reproduced seed-1 numbers, on the
// architecture the goldens were generated on (FMA contraction legally
// diverges the chaotic simulation elsewhere, as with the 4.1–4.4 goldens).
func TestGoldenAdaptiveSeed1(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	if runtime.GOARCH != goldenArch {
		t.Skipf("golden values are pinned on %s; %s may contract FMAs and legally diverge", goldenArch, runtime.GOARCH)
	}
	sc, err := Lookup("adaptive")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	res, err := sc.Run(t.Context(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("adaptive scenario: %v", err)
	}
	covered := 0
	for _, metric := range res.Metrics.Keys() {
		want, ok := goldenAdaptiveSeed1[metric]
		if !ok {
			t.Errorf("metric %q has no golden value; add it deliberately", metric)
			continue
		}
		covered++
		got := res.Metrics[metric]
		if !closeEnough(got.MAE, want.MAE) || !closeEnough(got.SMAE, want.SMAE) ||
			!closeEnough(got.PreMAE, want.PreMAE) || !closeEnough(got.PostMAE, want.PostMAE) {
			t.Errorf("adaptive/%s drifted from golden:\n  got  MAE=%v S-MAE=%v PRE=%v POST=%v\n  want MAE=%v S-MAE=%v PRE=%v POST=%v",
				metric, got.MAE, got.SMAE, got.PreMAE, got.PostMAE,
				want.MAE, want.SMAE, want.PreMAE, want.PostMAE)
		}
	}
	if covered != len(goldenAdaptiveSeed1) {
		t.Errorf("only %d of %d golden metrics were produced; a metric key changed or disappeared", covered, len(goldenAdaptiveSeed1))
	}
}
