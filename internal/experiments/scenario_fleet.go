package experiments

import (
	"context"
	"fmt"
	"time"

	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/fleet"
)

// The fleet scenario goes beyond the paper's single-server evaluation: a
// population of simulated application servers with heterogeneous aging
// profiles is served by the sharded online prediction service of
// internal/fleet, and the per-class prediction accuracy (against the
// frozen-rate reference TTF of experiment 4.2) is reported as scenario
// metrics so seed sweeps aggregate it like any other experiment. One class
// is deliberately hard: connection aging has no sliding-window speed feature
// in the paper's Table 2 variable set, so its MAE documents the cost of that
// gap.

// Fleet-scenario shape: big enough that every class crashes and rejuvenates
// within the horizon, small enough that a scenario×seed matrix stays cheap.
const (
	fleetScenarioInstances = 96
	fleetScenarioShards    = 2
	fleetScenarioDuration  = 4 * time.Hour
)

// ExperimentFleet runs the fleet scenario at one seed and returns the fleet
// report. Options.Schema selects the shared predictor's feature schema
// fleet-wide (e.g. "full+conn" to close the connection-speed gap; the
// per-class comparison in EXPERIMENTS.md was produced this way).
func ExperimentFleet(opts Options) (*fleet.Report, error) {
	opts = opts.withDefaults()
	cfg := fleet.Config{
		Instances: fleetScenarioInstances,
		Shards:    fleetScenarioShards,
		Duration:  fleetScenarioDuration,
		Seed:      opts.Seed,
		Ctx:       opts.Ctx,
	}
	if opts.Schema != "" {
		schema, err := features.LookupSchema(opts.Schema)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		cfg.Schema = schema
	}
	return fleet.Run(cfg)
}

func init() {
	MustRegister(NewSchemaScenario("fleet",
		"sharded online prediction service over a heterogeneous server fleet with budgeted rejuvenation",
		features.FullSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			rep, err := ExperimentFleet(opts)
			if err != nil {
				return nil, err
			}
			metrics := Metrics{}
			for _, c := range rep.Classes {
				metrics["fleet/"+c.Class] = evalx.Report{
					Model:         c.Class,
					N:             int(c.Checkpoints),
					MAE:           c.MAESec,
					SMAE:          c.SMAESec,
					PreMAE:        c.PreMAESec,
					PostMAE:       c.PostMAESec,
					Margin:        evalx.DefaultSecurityMargin,
					PostWindowSec: evalx.DefaultPostWindow.Seconds(),
				}
			}
			return &ScenarioResult{Metrics: metrics, Summary: rep.String()}, nil
		}))
}
