package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"agingpred/internal/injector"
	"agingpred/internal/sliding"
	"agingpred/internal/testbed"
)

// CurvePoint is one sample of the memory curves of Figures 1 and 2.
type CurvePoint struct {
	// TimeSec is the checkpoint time.
	TimeSec float64
	// OSMemoryMB is the server process memory from the OS perspective
	// (Figure 1 and 2 dark line).
	OSMemoryMB float64
	// JVMHeapUsedMB is Young+Old used from the JVM perspective (Figure 1 and
	// 2 grey line).
	JVMHeapUsedMB float64
	// OldCommittedMB is the committed Old-zone size, which grows at every
	// resize.
	OldCommittedMB float64
}

// Figure1Result reproduces Section 2.1.1 / Figure 1: progressive memory
// consumption of the Java application under a constant-rate leak and constant
// workload, observed from the OS and JVM perspectives.
type Figure1Result struct {
	// Points is the memory curve, one point per 15-second checkpoint.
	Points []CurvePoint
	// CrashTimeSec is when the server finally failed.
	CrashTimeSec float64
	// OldResizes is how many times the heap management system resized the
	// Old zone during the run (the "GC resizes action" annotations of
	// Figure 1).
	OldResizes int
	// NaiveCrashPredictionSec is the crash time a naive linear extrapolation
	// of the first 20 minutes of OS-level consumption would have predicted
	// (Equation 1 of the paper).
	NaiveCrashPredictionSec float64
	// ExtraLifetimeSec is how much longer the server actually lived than the
	// naive prediction — the paper observes "about 16 extra minutes" on its
	// testbed; the exact value depends on leak aggressiveness and workload.
	ExtraLifetimeSec float64
}

// String summarises the result.
func (r *Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: constant-rate leak, constant workload (%d checkpoints)\n", len(r.Points))
	fmt.Fprintf(&b, "  crash at %.0f s; old-zone resizes: %d\n", r.CrashTimeSec, r.OldResizes)
	fmt.Fprintf(&b, "  naive linear prediction: %.0f s; actual: %.0f s; extra lifetime: %.0f s (%.1f min)\n",
		r.NaiveCrashPredictionSec, r.CrashTimeSec, r.ExtraLifetimeSec, r.ExtraLifetimeSec/60)
	return b.String()
}

// Figure1 runs the deterministic-aging example: a constant workload, a 1 MB
// leak at rate N=30, until the server crashes with memory exhaustion.
func Figure1(opts Options) (*Figure1Result, error) {
	opts = opts.withDefaults()
	res, err := runUntilCrash(testbed.RunConfig{
		Name:        "figure1",
		Seed:        opts.Seed + 101,
		EBs:         opts.TrainEBs,
		Phases:      testbed.ConstantLeakPhases(30),
		MaxDuration: opts.MaxRunDuration,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}
	s := res.Series
	out := &Figure1Result{
		CrashTimeSec: s.CrashTimeSec,
		OldResizes:   res.FinalSnapshot.OldResizes,
	}
	for _, cp := range s.Checkpoints {
		out.Points = append(out.Points, CurvePoint{
			TimeSec:        cp.TimeSec,
			OSMemoryMB:     cp.TomcatMemUsedMB,
			JVMHeapUsedMB:  cp.YoungUsedMB + cp.OldUsedMB,
			OldCommittedMB: cp.OldMaxMB,
		})
	}

	// Naive linear prediction from the first 20 minutes of OS-level growth
	// (Equation 1): the extra lifetime granted by GC/resizing is what the
	// paper uses to motivate learning-based prediction.
	warmup := 20 * time.Minute.Seconds()
	var first, last *CurvePoint
	for i := range out.Points {
		p := &out.Points[i]
		if p.TimeSec <= warmup {
			if first == nil {
				first = p
			}
			last = p
		}
	}
	if first != nil && last != nil && last.TimeSec > first.TimeSec {
		speed := (last.OSMemoryMB - first.OSMemoryMB) / (last.TimeSec - first.TimeSec)
		// Capacity from the OS perspective: the process can grow until the
		// heap limit is reached (base + max heap).
		capacity := out.Points[len(out.Points)-1].OSMemoryMB
		out.NaiveCrashPredictionSec = last.TimeSec + sliding.TimeToExhaustion(capacity, last.OSMemoryMB, speed)
		out.ExtraLifetimeSec = out.CrashTimeSec - out.NaiveCrashPredictionSec
	}
	return out, nil
}

// Figure2Result reproduces Section 2.1.2 / Figure 2: the same periodic
// acquire/release pattern seen from the OS and the JVM perspectives.
type Figure2Result struct {
	// Points is the two-perspective memory curve.
	Points []CurvePoint
	// OSViewRangeMB is the peak-to-trough range of the OS-perspective curve
	// over the steady-state part of the run (after the first cycle).
	OSViewRangeMB float64
	// JVMViewRangeMB is the same range for the JVM-perspective curve; the
	// periodic pattern is visible only here.
	JVMViewRangeMB float64
	// Cycles is the number of acquire/release cycles executed.
	Cycles int
}

// String summarises the result.
func (r *Figure2Result) String() string {
	return fmt.Sprintf("Figure 2: periodic acquire/release over %d cycles (%d checkpoints)\n"+
		"  JVM-perspective range: %.0f MB (waves), OS-perspective range: %.0f MB (flat)\n",
		r.Cycles, len(r.Points), r.JVMViewRangeMB, r.OSViewRangeMB)
}

// Figure2 runs the dual-perspective example: every hour the application
// behaves normally for 20 minutes, acquires memory for 20 minutes and then
// releases it, for 5 hours, under a constant 100 EB workload.
func Figure2(opts Options) (*Figure2Result, error) {
	opts = opts.withDefaults()
	const cycles = 5
	var phases []injector.Phase
	for i := 0; i < cycles; i++ {
		phases = append(phases,
			injector.Phase{Name: "normal", Duration: 20 * time.Minute, MemoryMode: injector.MemoryOff},
			injector.Phase{Name: "acquire", Duration: 20 * time.Minute, MemoryMode: injector.MemoryAcquire, MemoryN: 30},
			injector.Phase{Name: "release", Duration: 20 * time.Minute, MemoryMode: injector.MemoryRelease, MemoryN: 10},
		)
	}
	res, err := testbed.Run(testbed.RunConfig{
		Name:        "figure2",
		Seed:        opts.Seed + 102,
		EBs:         100,
		Phases:      phases,
		MaxDuration: time.Duration(cycles) * time.Hour,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}
	if res.Crashed {
		return nil, fmt.Errorf("experiments: figure 2 run crashed at %v; the acquire/release pattern is not supposed to exhaust memory", res.CrashTime)
	}
	s := res.Series
	out := &Figure2Result{Cycles: cycles}
	for _, cp := range s.Checkpoints {
		out.Points = append(out.Points, CurvePoint{
			TimeSec:        cp.TimeSec,
			OSMemoryMB:     cp.TomcatMemUsedMB,
			JVMHeapUsedMB:  cp.YoungUsedMB + cp.OldUsedMB,
			OldCommittedMB: cp.OldMaxMB,
		})
	}
	// Ranges over the steady state (skip the first cycle: the OS view still
	// grows while the first acquire phase touches new pages).
	osMin, osMax := math.Inf(1), math.Inf(-1)
	jvmMin, jvmMax := math.Inf(1), math.Inf(-1)
	for _, p := range out.Points {
		if p.TimeSec < 3600 {
			continue
		}
		osMin = math.Min(osMin, p.OSMemoryMB)
		osMax = math.Max(osMax, p.OSMemoryMB)
		jvmMin = math.Min(jvmMin, p.JVMHeapUsedMB)
		jvmMax = math.Max(jvmMax, p.JVMHeapUsedMB)
	}
	out.OSViewRangeMB = osMax - osMin
	out.JVMViewRangeMB = jvmMax - jvmMin
	return out, nil
}
