package experiments

import (
	"context"

	"agingpred/internal/features"
)

// The paper's four evaluation experiments, registered as scenarios so the
// engine can sweep them across seeds. The metric keys mirror the columns of
// the corresponding table: "<workload>/<model>" where the experiment has
// several test workloads, plain "<model>" otherwise.

func init() {
	MustRegister(NewSchemaScenario("4.1",
		"deterministic aging (Table 3): constant leak, models tested on unseen workloads",
		features.NoHeapSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := Experiment41(opts)
			if err != nil {
				return nil, err
			}
			metrics := Metrics{}
			for workload, reports := range res.Table3 {
				metrics[workload+"/LinReg"] = reports[0]
				metrics[workload+"/M5P"] = reports[1]
			}
			return &ScenarioResult{Metrics: metrics, Summary: res.String()}, nil
		}))

	MustRegister(NewSchemaScenario("4.2",
		"dynamic and variable aging (Figure 3): changing leak rates under constant load",
		features.FullSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := Experiment42(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{"LinReg": res.LinReg, "M5P": res.M5P},
				Summary: res.String(),
			}, nil
		}))

	MustRegister(NewSchemaScenario("4.3",
		"aging hidden in a periodic pattern (Table 4, Figure 4): expert feature selection",
		features.HeapFocusSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := Experiment43(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{
					"LinReg":   res.Table4[0],
					"M5P":      res.Table4[1],
					"M5P-full": res.M5PFullSet,
				},
				Summary: res.String(),
			}, nil
		}))

	MustRegister(NewSchemaScenario("4.4",
		"aging due to two resources (Figure 5): memory + threads, single-resource training",
		features.FullSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := Experiment44(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{"LinReg": res.LinReg, "M5P": res.M5P},
				Summary: res.String(),
			}, nil
		}))
}
