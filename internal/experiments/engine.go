package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"agingpred/internal/evalx"
)

// Engine runs scenario×seed matrices concurrently. The zero value is ready
// to use; Opts customises the template options every cell starts from (its
// Seed and Ctx fields are overwritten per cell).
type Engine struct {
	// Opts is the base Options for every cell: MaxRunDuration, TrainEBs, ...
	Opts Options
}

// CellResult is the outcome of one (scenario, seed) cell of a matrix.
type CellResult struct {
	// Scenario and Seed identify the cell.
	Scenario string
	Seed     uint64
	// Metrics and Summary are the scenario's result (nil/empty if Err is
	// set).
	Metrics Metrics
	Summary string
	// Err is the scenario failure, or the context error for cells that were
	// never started because the sweep was cancelled.
	Err error
	// Elapsed is the wall-clock cost of the cell. It is informational only
	// and excluded from any determinism guarantee.
	Elapsed time.Duration
}

// MatrixResult is the outcome of Engine.RunMatrix: one cell per
// (scenario, seed) pair in deterministic scenario-major, seed-minor order —
// independent of worker count and completion order — plus cross-seed
// aggregate statistics per scenario and metric.
type MatrixResult struct {
	// Scenarios and Seeds echo the matrix axes, in request order.
	Scenarios []string
	Seeds     []uint64
	// Cells holds len(Scenarios)*len(Seeds) results: cell (i, j) is
	// Cells[i*len(Seeds)+j].
	Cells []CellResult
	// Aggregates summarises each scenario metric across seeds, sorted by
	// (scenario, metric). Failed cells are excluded.
	Aggregates []Aggregate
	// Workers is the pool size the matrix ran with.
	Workers int
	// Elapsed is the wall-clock duration of the whole sweep.
	Elapsed time.Duration
}

// Cell returns the result for (scenario index i, seed index j).
func (m *MatrixResult) Cell(i, j int) *CellResult { return &m.Cells[i*len(m.Seeds)+j] }

// FailedCells returns the cells that ended in error.
func (m *MatrixResult) FailedCells() []*CellResult {
	var out []*CellResult
	for i := range m.Cells {
		if m.Cells[i].Err != nil {
			out = append(out, &m.Cells[i])
		}
	}
	return out
}

// Stat is a summary of one accuracy number across seeds.
type Stat struct {
	// N is the number of seeds aggregated.
	N int
	// Mean and Stddev are the sample mean and (population) standard
	// deviation, in seconds.
	Mean   float64
	Stddev float64
	// Min and Max bound the per-seed values, in seconds.
	Min float64
	Max float64
}

// String renders the stat in the paper's duration style.
func (s Stat) String() string {
	return fmt.Sprintf("%s ± %s", evalx.FormatDuration(s.Mean), evalx.FormatDuration(s.Stddev))
}

func newStat(vals []float64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	st := Stat{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range vals {
		sum += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean = sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		d := v - st.Mean
		varsum += d * d
	}
	st.Stddev = math.Sqrt(varsum / float64(len(vals)))
	return st
}

// Aggregate is the cross-seed summary of one scenario metric: the
// mean/stddev/min/max of each accuracy number that the paper's single-seed
// tables cannot provide.
type Aggregate struct {
	// Scenario and Metric identify what is aggregated (e.g. "4.1",
	// "75EBs/M5P").
	Scenario string
	Metric   string
	// MAE, SMAE, PreMAE and PostMAE summarise the four paper metrics across
	// seeds.
	MAE     Stat
	SMAE    Stat
	PreMAE  Stat
	PostMAE Stat
}

// RunMatrix executes every (scenario, seed) cell on a pool of workers
// goroutines and returns the results in deterministic order. Scenario
// failures are recorded per cell and do not abort the sweep; cancelling ctx
// does, returning the partial matrix together with the context error (cells
// that never ran carry that error too).
//
// workers must be positive. Scenarios must be non-nil with unique names and
// seeds must be non-empty.
func (e *Engine) RunMatrix(ctx context.Context, scenarios []Scenario, seeds []uint64, workers int) (*MatrixResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		return nil, fmt.Errorf("experiments: non-positive worker count %d", workers)
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("experiments: empty scenario list")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: empty seed list")
	}
	seenSeeds := make(map[uint64]bool, len(seeds))
	for _, seed := range seeds {
		if seenSeeds[seed] {
			return nil, fmt.Errorf("experiments: seed %d appears twice in the matrix", seed)
		}
		seenSeeds[seed] = true
	}
	names := make([]string, len(scenarios))
	seen := make(map[string]bool, len(scenarios))
	for i, s := range scenarios {
		if s == nil {
			return nil, fmt.Errorf("experiments: nil scenario at index %d", i)
		}
		if seen[s.Name()] {
			return nil, fmt.Errorf("experiments: scenario %q appears twice in the matrix", s.Name())
		}
		seen[s.Name()] = true
		names[i] = s.Name()
	}

	res := &MatrixResult{
		Scenarios: names,
		Seeds:     append([]uint64(nil), seeds...),
		Cells:     make([]CellResult, len(scenarios)*len(seeds)),
		Workers:   workers,
	}
	// Pre-fill identities so cancelled cells are still addressable.
	for i := range scenarios {
		for j, seed := range seeds {
			cell := res.Cell(i, j)
			cell.Scenario = names[i]
			cell.Seed = seed
		}
	}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				e.runCell(ctx, scenarios[idx/len(seeds)], &res.Cells[idx])
			}
		}()
	}
feed:
	for idx := range res.Cells {
		select {
		case jobs <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	res.Elapsed = time.Since(start)

	// Cells skipped by cancellation carry the context error.
	if err := ctx.Err(); err != nil {
		for i := range res.Cells {
			if res.Cells[i].Err == nil && res.Cells[i].Metrics == nil {
				res.Cells[i].Err = err
			}
		}
		res.aggregate()
		return res, err
	}
	res.aggregate()
	return res, nil
}

// runCell executes one cell, isolating panics so a buggy scenario cannot
// take down the whole sweep.
func (e *Engine) runCell(ctx context.Context, sc Scenario, cell *CellResult) {
	defer func(t time.Time) { cell.Elapsed = time.Since(t) }(time.Now())
	defer func() {
		if r := recover(); r != nil {
			cell.Err = fmt.Errorf("experiments: scenario %q panicked at seed %d: %v", cell.Scenario, cell.Seed, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		cell.Err = err
		return
	}
	opts := e.Opts
	opts.Seed = cell.Seed
	opts.Ctx = ctx
	out, err := sc.Run(ctx, opts)
	if err != nil {
		cell.Err = fmt.Errorf("experiments: scenario %q seed %d: %w", cell.Scenario, cell.Seed, err)
		return
	}
	cell.Metrics = out.Metrics
	if cell.Metrics == nil {
		// Keep "ran successfully" distinguishable from "never dispatched".
		cell.Metrics = Metrics{}
	}
	cell.Summary = out.Summary
}

// aggregate computes the cross-seed statistics from the successful cells.
func (m *MatrixResult) aggregate() {
	m.Aggregates = nil
	for i, name := range m.Scenarios {
		// Collect per-metric series across seeds, keyed by metric name.
		series := make(map[string][]evalx.Report)
		for j := range m.Seeds {
			cell := m.Cell(i, j)
			if cell.Err != nil {
				continue
			}
			for metric, rep := range cell.Metrics {
				series[metric] = append(series[metric], rep)
			}
		}
		metrics := make([]string, 0, len(series))
		for metric := range series {
			metrics = append(metrics, metric)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			reps := series[metric]
			pick := func(f func(evalx.Report) float64) Stat {
				vals := make([]float64, len(reps))
				for k, r := range reps {
					vals[k] = f(r)
				}
				return newStat(vals)
			}
			m.Aggregates = append(m.Aggregates, Aggregate{
				Scenario: name,
				Metric:   metric,
				MAE:      pick(func(r evalx.Report) float64 { return r.MAE }),
				SMAE:     pick(func(r evalx.Report) float64 { return r.SMAE }),
				PreMAE:   pick(func(r evalx.Report) float64 { return r.PreMAE }),
				PostMAE:  pick(func(r evalx.Report) float64 { return r.PostMAE }),
			})
		}
	}
}

// String renders the aggregate table of the matrix.
func (m *MatrixResult) String() string {
	var b strings.Builder
	ok := 0
	for i := range m.Cells {
		if m.Cells[i].Err == nil {
			ok++
		}
	}
	fmt.Fprintf(&b, "scenario matrix: %d scenarios × %d seeds = %d cells (%d ok, %d failed), %d workers, %v\n",
		len(m.Scenarios), len(m.Seeds), len(m.Cells), ok, len(m.Cells)-ok, m.Workers, m.Elapsed.Round(time.Millisecond))
	for _, agg := range m.Aggregates {
		fmt.Fprintf(&b, "  %-10s %-22s MAE %-22s S-MAE %-22s PRE %-22s POST %s\n",
			agg.Scenario, agg.Metric, agg.MAE, agg.SMAE, agg.PreMAE, agg.PostMAE)
	}
	for _, cell := range m.FailedCells() {
		fmt.Fprintf(&b, "  FAILED %s seed %d: %v\n", cell.Scenario, cell.Seed, cell.Err)
	}
	return b.String()
}

// ParseSeedRange parses a seed-list flag: either "N..M" (inclusive range) or
// a comma-separated list "1,5,9".
func ParseSeedRange(s string) ([]uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("experiments: empty seed range")
	}
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		from, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad seed range %q: %w", s, err)
		}
		to, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad seed range %q: %w", s, err)
		}
		if to < from {
			return nil, fmt.Errorf("experiments: descending seed range %q", s)
		}
		if to-from >= 1<<20 {
			return nil, fmt.Errorf("experiments: seed range %q too large", s)
		}
		seeds := make([]uint64, 0, to-from+1)
		for seed := from; ; seed++ {
			seeds = append(seeds, seed)
			if seed == to {
				break
			}
		}
		return seeds, nil
	}
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		seed, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad seed %q: %w", part, err)
		}
		seeds = append(seeds, seed)
	}
	return seeds, nil
}
