package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"agingpred/internal/evalx"
)

// fakeScenario is a cheap deterministic scenario for engine tests: its
// metrics are pure functions of the seed, so any two runs of the same cell
// must agree bit for bit.
func fakeScenario(name string) Scenario {
	return NewScenario(name, "fake scenario for engine tests",
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			s := float64(opts.Seed)
			return &ScenarioResult{
				Metrics: Metrics{
					"M5P":    evalx.Report{Model: "M5P", MAE: 100 + s, SMAE: 90 + s, PreMAE: 110 + s, PostMAE: 10 + s},
					"LinReg": evalx.Report{Model: "Lin. Reg", MAE: 200 + 2*s, SMAE: 180 + 2*s, PreMAE: 220 + 2*s, PostMAE: 20 + 2*s},
				},
				Summary: fmt.Sprintf("%s@%d", name, opts.Seed),
			}, nil
		})
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(fakeScenario("a")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(fakeScenario("b")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	s, err := r.Lookup("a")
	if err != nil || s.Name() != "a" {
		t.Fatalf("Lookup(a) = %v, %v", s, err)
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v", got)
	}
	if all := r.All(); len(all) != 2 || all[0].Name() != "a" || all[1].Name() != "b" {
		t.Fatalf("All() wrong: %v", all)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name     string
		scenario Scenario
		wantErr  string
	}{
		{name: "nil scenario", scenario: nil, wantErr: "nil scenario"},
		{name: "empty name", scenario: fakeScenario(""), wantErr: "empty name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := r.Register(c.scenario); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Register = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
	if err := r.Register(fakeScenario("dup")); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := r.Register(fakeScenario("dup")); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration = %v, want 'already registered'", err)
	}
}

func TestRegistryUnknownScenario(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(fakeScenario("known")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	_, err := r.Lookup("nope")
	if err == nil || !strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Fatalf("Lookup(nope) = %v", err)
	}
	if !strings.Contains(err.Error(), "known") {
		t.Fatalf("unknown-scenario error does not list known names: %v", err)
	}
}

func TestDefaultRegistryHasBuiltins(t *testing.T) {
	names := ScenarioNames()
	for _, want := range []string{"4.1", "4.2", "4.3", "4.4", "bursty", "trileak"} {
		found := false
		for _, name := range names {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q not registered (have %v)", want, names)
		}
	}
	if _, err := Lookup("4.2"); err != nil {
		t.Errorf("Lookup(4.2): %v", err)
	}
	all, err := LookupAll([]string{"all"})
	if err != nil || len(all) < 6 {
		t.Errorf("LookupAll(all) = %d scenarios, %v", len(all), err)
	}
	if _, err := LookupAll([]string{"4.1", "nope"}); err == nil {
		t.Errorf("LookupAll accepted an unknown name")
	}
}

func TestRunMatrixValidation(t *testing.T) {
	e := &Engine{}
	ctx := context.Background()
	one := []Scenario{fakeScenario("s")}
	seeds := []uint64{1}
	cases := []struct {
		name      string
		scenarios []Scenario
		seeds     []uint64
		workers   int
		wantErr   string
	}{
		{name: "zero workers", scenarios: one, seeds: seeds, workers: 0, wantErr: "non-positive worker count"},
		{name: "negative workers", scenarios: one, seeds: seeds, workers: -3, wantErr: "non-positive worker count"},
		{name: "no scenarios", scenarios: nil, seeds: seeds, workers: 1, wantErr: "empty scenario list"},
		{name: "no seeds", scenarios: one, seeds: nil, workers: 1, wantErr: "empty seed list"},
		{name: "nil scenario", scenarios: []Scenario{nil}, seeds: seeds, workers: 1, wantErr: "nil scenario"},
		{name: "duplicate scenario", scenarios: []Scenario{fakeScenario("s"), fakeScenario("s")}, seeds: seeds, workers: 1, wantErr: "appears twice"},
		{name: "duplicate seed", scenarios: one, seeds: []uint64{1, 2, 1}, workers: 1, wantErr: "seed 1 appears twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := e.RunMatrix(ctx, c.scenarios, c.seeds, c.workers)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("RunMatrix = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// stripTimings clears the wall-clock fields, which are the only parts of a
// MatrixResult allowed to differ between runs.
func stripTimings(m *MatrixResult) {
	m.Elapsed = 0
	m.Workers = 0
	for i := range m.Cells {
		m.Cells[i].Elapsed = 0
	}
}

func TestRunMatrixDeterministicAcrossWorkerCounts(t *testing.T) {
	scenarios := []Scenario{fakeScenario("alpha"), fakeScenario("beta"), fakeScenario("gamma")}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	e := &Engine{}
	serial, err := e.RunMatrix(context.Background(), scenarios, seeds, 1)
	if err != nil {
		t.Fatalf("RunMatrix(workers=1): %v", err)
	}
	parallel, err := e.RunMatrix(context.Background(), scenarios, seeds, 8)
	if err != nil {
		t.Fatalf("RunMatrix(workers=8): %v", err)
	}
	stripTimings(serial)
	stripTimings(parallel)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 disagree:\n%v\nvs\n%v", serial, parallel)
	}
	// Result ordering is scenario-major, seed-minor.
	for i, name := range []string{"alpha", "beta", "gamma"} {
		for j, seed := range seeds {
			cell := parallel.Cell(i, j)
			if cell.Scenario != name || cell.Seed != seed {
				t.Fatalf("cell (%d,%d) = %s@%d, want %s@%d", i, j, cell.Scenario, cell.Seed, name, seed)
			}
			if cell.Summary != fmt.Sprintf("%s@%d", name, seed) {
				t.Fatalf("cell (%d,%d) summary = %q", i, j, cell.Summary)
			}
		}
	}
}

func TestRunMatrixAggregates(t *testing.T) {
	e := &Engine{}
	res, err := e.RunMatrix(context.Background(), []Scenario{fakeScenario("s")}, []uint64{1, 3}, 2)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	// Metrics sorted: LinReg before M5P. LinReg MAE over seeds {1,3} is
	// {202, 206}: mean 204, stddev 2, min 202, max 206.
	if len(res.Aggregates) != 2 {
		t.Fatalf("aggregates = %+v", res.Aggregates)
	}
	lin := res.Aggregates[0]
	if lin.Scenario != "s" || lin.Metric != "LinReg" {
		t.Fatalf("first aggregate = %+v", lin)
	}
	if lin.MAE.N != 2 || lin.MAE.Mean != 204 || lin.MAE.Stddev != 2 || lin.MAE.Min != 202 || lin.MAE.Max != 206 {
		t.Fatalf("LinReg MAE stat = %+v", lin.MAE)
	}
	m5 := res.Aggregates[1]
	if m5.Metric != "M5P" || m5.PostMAE.Mean != 12 {
		t.Fatalf("M5P aggregate = %+v", m5)
	}
	if !strings.Contains(res.String(), "1 scenarios × 2 seeds") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestRunMatrixCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int32
	cancelling := NewScenario("cancelling", "cancels the sweep after three cells",
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			if runs.Add(1) == 3 {
				cancel()
			}
			return &ScenarioResult{Metrics: Metrics{}, Summary: "ok"}, nil
		})
	e := &Engine{}
	res, err := e.RunMatrix(ctx, []Scenario{cancelling}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMatrix after cancel = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatalf("cancelled sweep returned no partial result")
	}
	var ok, cancelled int
	for i := range res.Cells {
		switch {
		case res.Cells[i].Err == nil:
			ok++
		case errors.Is(res.Cells[i].Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("cell %d has unexpected error %v", i, res.Cells[i].Err)
		}
	}
	if ok != 3 {
		t.Fatalf("%d cells completed before the cancellation, want 3", ok)
	}
	if cancelled != 5 {
		t.Fatalf("%d cells cancelled, want 5", cancelled)
	}
}

func TestRunMatrixIsolatesFailuresAndPanics(t *testing.T) {
	failing := NewScenario("failing", "always errors",
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			return nil, errors.New("boom")
		})
	panicking := NewScenario("panicking", "always panics",
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			panic("kaboom")
		})
	e := &Engine{}
	res, err := e.RunMatrix(context.Background(),
		[]Scenario{failing, panicking, fakeScenario("healthy")}, []uint64{1, 2}, 2)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if got := len(res.FailedCells()); got != 4 {
		t.Fatalf("%d failed cells, want 4", got)
	}
	if cell := res.Cell(1, 0); cell.Err == nil || !strings.Contains(cell.Err.Error(), "panicked") {
		t.Fatalf("panic not captured: %v", cell.Err)
	}
	// The healthy scenario still aggregated across both seeds.
	found := false
	for _, agg := range res.Aggregates {
		if agg.Scenario == "healthy" && agg.Metric == "M5P" && agg.MAE.N == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthy scenario missing from aggregates: %+v", res.Aggregates)
	}
	if !strings.Contains(res.String(), "FAILED") {
		t.Fatalf("String() does not mention failures: %q", res.String())
	}
}

func TestParseSeedRange(t *testing.T) {
	cases := []struct {
		in      string
		want    []uint64
		wantErr bool
	}{
		{in: "1..8", want: []uint64{1, 2, 3, 4, 5, 6, 7, 8}},
		{in: "5..5", want: []uint64{5}},
		{in: "7", want: []uint64{7}},
		{in: "1,5,9", want: []uint64{1, 5, 9}},
		{in: " 2 .. 4 ", want: []uint64{2, 3, 4}},
		{in: "", wantErr: true},
		{in: "8..1", wantErr: true},
		{in: "a..b", wantErr: true},
		{in: "1,x", wantErr: true},
		{in: "0..2000000", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.in, func(t *testing.T) {
			got, err := ParseSeedRange(c.in)
			if c.wantErr {
				if err == nil {
					t.Fatalf("ParseSeedRange(%q) = %v, want error", c.in, got)
				}
				return
			}
			if err != nil || !reflect.DeepEqual(got, c.want) {
				t.Fatalf("ParseSeedRange(%q) = %v, %v; want %v", c.in, got, err, c.want)
			}
		})
	}
}

func TestStatOfEmptyAndSingle(t *testing.T) {
	if s := newStat(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("newStat(nil) = %+v", s)
	}
	s := newStat([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("newStat({42}) = %+v", s)
	}
}
