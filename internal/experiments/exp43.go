package experiments

import (
	"fmt"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/testbed"
)

// experiment43Phases builds the periodic-pattern test schedule of Section
// 4.3: acquire memory for 10 minutes (N=15), release for 10 minutes (N=75 —
// much slower than the acquisition, so most of the acquired memory is
// retained every cycle and the leak accumulates), repeated until the
// retained memory exhausts the heap. Enough cycles are generated to
// guarantee a crash; the run stops at the crash. The test execution crashes
// within about two hours, matching the duration scale of the paper's test
// runs (its other experiments report 1 h 47 min and 1 h 55 min).
func experiment43Phases(cycles int) []injector.Phase {
	var phases []injector.Phase
	for i := 0; i < cycles; i++ {
		phases = append(phases,
			injector.Phase{
				Name:       fmt.Sprintf("acquire-%d", i+1),
				Duration:   10 * time.Minute,
				MemoryMode: injector.MemoryAcquire,
				MemoryN:    15,
			},
			injector.Phase{
				Name:       fmt.Sprintf("release-%d", i+1),
				Duration:   10 * time.Minute,
				MemoryMode: injector.MemoryRelease,
				MemoryN:    75,
			},
		)
	}
	return phases
}

// Experiment43Result reproduces Section 4.3 / Table 4 / Figure 4: software
// aging hidden inside a periodic acquire/release pattern, and the effect of
// expert feature selection.
type Experiment43Result struct {
	// TrainReportSelected describes the M5P model trained on the heap-focused
	// variable subset (the paper: 17 inner nodes, 18 leaves).
	TrainReportSelected core.TrainReport
	// TrainReportFull describes the M5P model trained on the full variable
	// set — the paper's "first approach" that paid too much attention to
	// irrelevant attributes.
	TrainReportFull core.TrainReport

	// Table4 holds the Lin. Reg and M5P reports (both with feature
	// selection), in that order, like the columns of Table 4.
	Table4 []evalx.Report
	// M5PFullSet is the accuracy of the full-variable M5P model, documenting
	// the improvement feature selection brings.
	M5PFullSet evalx.Report

	// Trace is the Figure 4 series: predicted TTF vs JVM-perspective heap
	// usage (the waves).
	Trace []TracePoint
	// CrashTimeSec is when the test execution crashed.
	CrashTimeSec float64
	// Cycles is how many acquire/release cycles completed before the crash.
	Cycles int
}

// String renders the result like Table 4.
func (r *Experiment43Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment 4.3 — aging hidden in a periodic pattern (Table 4, Figure 4)\n")
	fmt.Fprintf(&b, "  %s\n  full-variable model: %s\n", r.TrainReportSelected, r.TrainReportFull)
	fmt.Fprintf(&b, "  test run crashed at %.0f s after %d acquire/release cycles\n", r.CrashTimeSec, r.Cycles)
	b.WriteString(formatReports("  with heap-focused feature selection", r.Table4...))
	b.WriteString(formatReports("  M5P without feature selection", r.M5PFullSet))
	return b.String()
}

// Experiment43 runs the periodic-pattern experiment.
func Experiment43(opts Options) (*Experiment43Result, error) {
	opts = opts.withDefaults()
	trainSeries, err := training42Runs(opts)
	if err != nil {
		return nil, err
	}

	// Three models: M5P and Linear Regression on the heap-focused subset
	// (Table 4), plus M5P on the full set to document why selection matters.
	m5pSelected, err := core.Train(core.Config{Model: core.ModelM5P, Variables: features.HeapFocusSet}, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training selected M5P for 4.3: %w", err)
	}
	lrSelected, err := core.Train(core.Config{Model: core.ModelLinearRegression, Variables: features.HeapFocusSet}, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training selected linear regression for 4.3: %w", err)
	}
	m5pFull, err := trainScenarioModel(opts, core.ModelM5P, features.FullSet, trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: training full-set M5P for 4.3: %w", err)
	}

	// Test run: enough cycles to guarantee exhaustion (the run stops at the
	// crash anyway).
	const cycles = 48
	testRes, err := runUntilCrash(testbed.RunConfig{
		Name:        "exp43-test",
		Seed:        opts.Seed + 4300,
		EBs:         opts.TrainEBs,
		Phases:      experiment43Phases(cycles),
		MaxDuration: 16 * time.Hour,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}

	lrRep, m5Rep, m5Preds, err := evaluateBoth(lrSelected, m5pSelected, testRes.Series, nil)
	if err != nil {
		return nil, err
	}
	fullRep, err := m5pFull.Evaluate(testRes.Series, evalx.Options{Model: "M5P (full variables)"})
	if err != nil {
		return nil, err
	}

	return &Experiment43Result{
		TrainReportSelected: m5pSelected.Report(),
		TrainReportFull:     m5pFull.Report(),
		Table4:              []evalx.Report{lrRep, m5Rep},
		M5PFullSet:          fullRep,
		Trace:               trace(testRes.Series, m5Preds),
		CrashTimeSec:        testRes.Series.CrashTimeSec,
		Cycles:              int(testRes.Series.CrashTimeSec / (20 * time.Minute).Seconds()),
	}, nil
}

// PaperTable4 returns the published Table 4 values in seconds.
func PaperTable4() []PaperValue {
	return []PaperValue{
		{Metric: "MAE", LinReg: 15*60 + 57, M5P: 3*60 + 34},
		{Metric: "S-MAE", LinReg: 4*60 + 53, M5P: 21},
		{Metric: "PRE-MAE", LinReg: 16*60 + 10, M5P: 3*60 + 31},
		{Metric: "POST-MAE", LinReg: 8*60 + 14, M5P: 5*60 + 29},
	}
}
