package experiments

import (
	"context"
	"fmt"
	"strings"

	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// The connleak scenario is the single-instance demonstration of the schema
// layer's reason to exist: database-connection aging. The paper's Table 2
// variable set carries sliding-window speed features for heap, threads and
// process memory but none for connections, so a model trained on it sees the
// connection *level* but never its *slope* — the feature gap behind the
// conn-leak outlier in the fleet's per-class MAE table (EXPERIMENTS.md).
// The scenario trains the same M5P model twice on the same executions, once
// under the "full" schema and once under "full+conn" (which adds the
// connection-speed derivative family), and reports both accuracies so the
// gap — and the schema that closes it — is measured, not asserted.

// ConnLeakResult is the outcome of the connection-leak scenario.
type ConnLeakResult struct {
	// TrainReportFull and TrainReportConn describe the two trained models.
	TrainReportFull core.TrainReport
	TrainReportConn core.TrainReport
	// Full and FullConn are the accuracy reports of the M5P model on the
	// unseen test run, under the paper's schema and under full+conn.
	Full     evalx.Report
	FullConn evalx.Report
	// CrashTimeSec and CrashReason describe the test run's death (it must be
	// the connection pool).
	CrashTimeSec float64
	CrashReason  string
	// RootCause holds the top attributes of the full+conn tree; with the
	// speed features present the model should implicate the connections.
	RootCause []core.RootCauseHint
}

// String renders the result.
func (r *ConnLeakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario connleak — database-connection aging, %q vs %q schema\n",
		features.FullSchemaName, features.FullConnSchemaName)
	fmt.Fprintf(&b, "  %s\n  %s\n", r.TrainReportFull, r.TrainReportConn)
	fmt.Fprintf(&b, "  test run crashed at %.0f s (%s)\n", r.CrashTimeSec, r.CrashReason)
	b.WriteString(formatReports("  accuracy vs actual time to failure", r.Full, r.FullConn))
	b.WriteString(core.FormatRootCause(r.RootCause))
	return b.String()
}

// connleakTrainingRuns builds run-to-crash connection-leak executions at
// three rates spanning slow to fast, all at the training workload. The span
// matters: the slow run stretches the label range past the test run's
// lifetime, so the comparison below measures rate disambiguation, not label
// extrapolation.
func connleakTrainingRuns(opts Options) ([]*monitor.Series, error) {
	rates := []struct{ c, t int }{{2, 90}, {5, 60}, {8, 40}}
	series := make([]*monitor.Series, 0, len(rates))
	for _, r := range rates {
		res, err := runUntilCrash(testbed.RunConfig{
			Name:        fmt.Sprintf("connleak-train-C%d-T%d", r.c, r.t),
			Seed:        opts.Seed + 7000 + uint64(r.c*100+r.t),
			EBs:         opts.TrainEBs,
			Phases:      testbed.ConstantConnLeakPhases(r.c, r.t),
			MaxDuration: opts.MaxRunDuration,
			Ctx:         opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		series = append(series, res.Series)
	}
	return series, nil
}

// ExperimentConnLeak runs the connection-leak schema comparison.
func ExperimentConnLeak(opts Options) (*ConnLeakResult, error) {
	opts = opts.withDefaults()
	trainSeries, err := connleakTrainingRuns(opts)
	if err != nil {
		return nil, err
	}

	fullSchema, err := features.LookupSchema(features.FullSchemaName)
	if err != nil {
		return nil, err
	}
	connSchema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		return nil, err
	}

	// Extract the training features once under the wider schema; the "full"
	// model trains on the same dataset conformed down to its own columns
	// (full+conn is full plus a tail, so this is a pure projection).
	connDS, err := connSchema.ExtractAll("connleak-training", trainSeries)
	if err != nil {
		return nil, fmt.Errorf("experiments: extracting connleak training features: %w", err)
	}
	fullDS, err := connDS.Conform(fullSchema.Attrs())
	if err != nil {
		return nil, fmt.Errorf("experiments: conforming training features to %q: %w", features.FullSchemaName, err)
	}

	fullModel, err := core.TrainDataset(core.Config{Model: core.ModelM5P, Schema: fullSchema}, fullDS)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %q M5P for connleak: %w", features.FullSchemaName, err)
	}
	connModel, err := core.TrainDataset(core.Config{Model: core.ModelM5P, Schema: connSchema}, connDS)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %q M5P for connleak: %w", features.FullConnSchemaName, err)
	}

	// Test on an unseen leak rate at an unseen workload. The rate falls
	// inside the training span but matches none of the trained rates: from
	// the connection level alone the time to failure is ambiguous across
	// rates, and the connection-speed features are what can resolve it.
	testRes, err := runUntilCrash(testbed.RunConfig{
		Name:        "connleak-test",
		Seed:        opts.Seed + 7900,
		EBs:         150,
		Phases:      testbed.ConstantConnLeakPhases(3, 70),
		MaxDuration: opts.MaxRunDuration,
		Ctx:         opts.Ctx,
	})
	if err != nil {
		return nil, err
	}

	fullPreds, err := fullModel.PredictSeries(testRes.Series)
	if err != nil {
		return nil, fmt.Errorf("experiments: %q predictions: %w", features.FullSchemaName, err)
	}
	connPreds, err := connModel.PredictSeries(testRes.Series)
	if err != nil {
		return nil, fmt.Errorf("experiments: %q predictions: %w", features.FullConnSchemaName, err)
	}
	fullRep, err := evalx.Evaluate(fullPreds, evalx.Options{Model: "M5P/" + features.FullSchemaName})
	if err != nil {
		return nil, err
	}
	connRep, err := evalx.Evaluate(connPreds, evalx.Options{Model: "M5P/" + features.FullConnSchemaName})
	if err != nil {
		return nil, err
	}
	hints, err := connModel.RootCause(3)
	if err != nil {
		return nil, err
	}
	return &ConnLeakResult{
		TrainReportFull: fullModel.Report(),
		TrainReportConn: connModel.Report(),
		Full:            fullRep,
		FullConn:        connRep,
		CrashTimeSec:    testRes.Series.CrashTimeSec,
		CrashReason:     testRes.Series.CrashReason,
		RootCause:       hints,
	}, nil
}

func init() {
	MustRegister(NewSchemaScenario("connleak",
		"database-connection aging: the paper's variable set vs full+conn (connection-speed derivatives)",
		features.FullConnSchemaName,
		func(ctx context.Context, opts Options) (*ScenarioResult, error) {
			res, err := ExperimentConnLeak(opts)
			if err != nil {
				return nil, err
			}
			return &ScenarioResult{
				Metrics: Metrics{
					"M5P/" + features.FullSchemaName:     res.Full,
					"M5P/" + features.FullConnSchemaName: res.FullConn,
				},
				Summary: res.String(),
			}, nil
		}))
}
