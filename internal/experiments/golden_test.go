package experiments

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"agingpred/internal/evalx"
)

// goldenMetric pins one headline accuracy row of the reproduced experiments.
type goldenMetric struct {
	MAE, SMAE, PreMAE, PostMAE float64
}

// goldenSeed1 is the reproduced value of every Table 3/4- and Figure 3/5-
// style metric at seed 1, keyed "scenario/metric". These are the numbers this
// repository commits to: the simulation substrate is deterministic, so any
// drift here means a refactor changed the reproduced results, not just the
// code. Regenerate deliberately (run the scenarios at seed 1 and copy the
// values) when a change is *supposed* to move them, and say so in the commit.
var goldenSeed1 = map[string]goldenMetric{
	"4.1" + "/" + "150EBs/LinReg": {MAE: 1336.3104142468237, SMAE: 1332.9063099981302, PreMAE: 1437.6813187917767, PostMAE: 905.4840699307763},
	"4.1" + "/" + "150EBs/M5P":    {MAE: 434.39357479385177, SMAE: 426.29715719435313, PreMAE: 504.4382107754045, PostMAE: 136.70387187225228},
	"4.1" + "/" + "75EBs/LinReg":  {MAE: 2487.123859682071, SMAE: 2483.6232706153564, PreMAE: 2674.0752457768426, PostMAE: 720.4332610864773},
	"4.1" + "/" + "75EBs/M5P":     {MAE: 553.5124545359495, SMAE: 533.0851429370933, PreMAE: 599.6540525498496, PostMAE: 117.47435330459177},
	"4.2" + "/" + "LinReg":        {MAE: 2060.61045650401, SMAE: 2043.9701913004542, PreMAE: 2105.6817645317105, PostMAE: 509.4062718839996},
	"4.2" + "/" + "M5P":           {MAE: 1215.9558899842677, SMAE: 1174.639975013929, PreMAE: 1236.4851767087312, PostMAE: 509.4062718839996},
	"4.3" + "/" + "LinReg":        {MAE: 1280.175993882713, SMAE: 1273.484183775448, PreMAE: 1393.1455001545628, PostMAE: 382.06841902150535},
	"4.3" + "/" + "M5P":           {MAE: 1106.1120112790848, SMAE: 1086.3164003936333, PreMAE: 1202.2987857387639, PostMAE: 341.4271543246342},
	"4.3" + "/" + "M5P-full":      {MAE: 1157.4138901313825, SMAE: 1147.5578466075438, PreMAE: 1262.0298762476004, PostMAE: 325.7168005074479},
	"4.4" + "/" + "LinReg":        {MAE: 1995.1848527902057, SMAE: 1992.8101702713586, PreMAE: 2224.9508532729283, PostMAE: 294.91644921799934},
	"4.4" + "/" + "M5P":           {MAE: 1250.6032427533555, SMAE: 1217.3413265702943, PreMAE: 1379.7501067446199, PostMAE: 294.91644921799934},
}

// closeEnough compares with a tiny tolerance: a genuine behaviour change
// moves these metrics by whole seconds, eight orders of magnitude above the
// gate. The tolerance does NOT absorb cross-architecture floating-point
// differences — the simulation is chaotic, so a single FMA contraction on
// arm64 diverges whole runs — which is why TestGoldenMetricsSeed1 only runs
// on the architecture the goldens were pinned on.
func closeEnough(got, want float64) bool {
	return math.Abs(got-want) <= 1e-6+1e-9*math.Abs(want)
}

// goldenArch is the architecture the goldenSeed1 values were generated on.
// Other architectures may legally contract floating-point expressions (FMA)
// and reproduce different — equally valid — trajectories, so the exact pin
// only holds here. CI runs this architecture.
const goldenArch = "amd64"

// TestGoldenMetricsSeed1 reruns experiments 4.1–4.4 at seed 1 through the
// engine (all four concurrently) and compares every headline metric against
// the pinned values.
func TestGoldenMetricsSeed1(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiments")
	}
	if runtime.GOARCH != goldenArch {
		t.Skipf("golden values are pinned on %s; %s may contract FMAs and legally diverge", goldenArch, runtime.GOARCH)
	}
	scenarios, err := LookupAll([]string{"4.1", "4.2", "4.3", "4.4"})
	if err != nil {
		t.Fatalf("LookupAll: %v", err)
	}
	e := &Engine{}
	res, err := e.RunMatrix(context.Background(), scenarios, []uint64{1}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	covered := 0
	for i := range res.Scenarios {
		cell := res.Cell(i, 0)
		if cell.Err != nil {
			t.Fatalf("scenario %s failed: %v", cell.Scenario, cell.Err)
		}
		for _, metric := range cell.Metrics.Keys() {
			key := cell.Scenario + "/" + metric
			want, ok := goldenSeed1[key]
			if !ok {
				t.Errorf("metric %q has no golden value; add it deliberately", key)
				continue
			}
			covered++
			got := cell.Metrics[metric]
			if !closeEnough(got.MAE, want.MAE) || !closeEnough(got.SMAE, want.SMAE) ||
				!closeEnough(got.PreMAE, want.PreMAE) || !closeEnough(got.PostMAE, want.PostMAE) {
				t.Errorf("%s drifted from golden:\n  got  MAE=%v S-MAE=%v PRE=%v POST=%v\n  want MAE=%v S-MAE=%v PRE=%v POST=%v",
					key, got.MAE, got.SMAE, got.PreMAE, got.PostMAE,
					want.MAE, want.SMAE, want.PreMAE, want.PostMAE)
			}
		}
	}
	if covered != len(goldenSeed1) {
		t.Errorf("only %d of %d golden metrics were produced; a metric key changed or disappeared", covered, len(goldenSeed1))
	}
}

// TestParallelMatchesSerial verifies the acceptance criterion that at a fixed
// seed the concurrent engine reproduces byte-identical metrics to calling the
// experiment function directly.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	const seed = 7
	serial, err := Experiment41(Options{Seed: seed})
	if err != nil {
		t.Fatalf("Experiment41: %v", err)
	}
	sc, err := Lookup("4.1")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	e := &Engine{}
	res, err := e.RunMatrix(context.Background(), []Scenario{sc}, []uint64{seed}, 4)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	cell := res.Cell(0, 0)
	if cell.Err != nil {
		t.Fatalf("cell failed: %v", cell.Err)
	}
	for workload, reports := range serial.Table3 {
		for i, model := range []string{"LinReg", "M5P"} {
			key := workload + "/" + model
			if got := cell.Metrics[key]; got != reports[i] {
				t.Errorf("engine metric %q = %+v differs from the serial path %+v", key, got, reports[i])
			}
		}
	}
	if len(cell.Metrics) != 4 {
		t.Errorf("engine produced %d metrics, want 4", len(cell.Metrics))
	}
}

// TestBurstyScenarioShape checks the bursty scenario reproduces the paper's
// core shape criteria even with the aging signal buried under load spikes.
func TestBurstyScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := ExperimentBursty(Options{Seed: 2})
	if err != nil {
		t.Fatalf("ExperimentBursty: %v", err)
	}
	if res.Spikes < 2 {
		t.Errorf("run survived only %d complete spikes; the aging is supposed to hide under several bursts", res.Spikes)
	}
	if res.M5P.MAE >= res.LinReg.MAE {
		t.Errorf("M5P MAE %.0f s not better than LinReg %.0f s", res.M5P.MAE, res.LinReg.MAE)
	}
	if res.M5P.MAE > res.CrashTimeSec/2 {
		t.Errorf("M5P MAE %.0f s carries no signal on a %.0f s run", res.M5P.MAE, res.CrashTimeSec)
	}
	// The load bursts must actually have happened: spike half-cycles carry
	// roughly 3× the baseline traffic.
	if res.SpikeThroughput < 2*res.BaselineThroughput {
		t.Errorf("spike throughput %.2f req/s not well above baseline %.2f req/s",
			res.SpikeThroughput, res.BaselineThroughput)
	}
}

// TestConnLeakScenarioShape checks the schema-comparison scenario: the test
// run must die of connection exhaustion, both schemas must carry usable
// signal, and the "full+conn" connection-speed derivatives must not lose to
// the paper's variable set in the near-crash window — the regime that drives
// rejuvenation decisions. (The large fleet-scale win is pinned by the fleet
// package's TestPerClassSchema; at single-instance scale the testbed's
// bursty connection injector makes the speed estimate noisy, so the scenario
// asserts the modest-but-consistent property.)
func TestConnLeakScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := ExperimentConnLeak(Options{Seed: 1})
	if err != nil {
		t.Fatalf("ExperimentConnLeak: %v", err)
	}
	if !strings.Contains(res.CrashReason, "connection") {
		t.Fatalf("test run died of %q, want connection exhaustion", res.CrashReason)
	}
	if res.FullConn.PostMAE > res.Full.PostMAE*1.01 {
		t.Errorf("full+conn POST-MAE %.0f s worse than full %.0f s", res.FullConn.PostMAE, res.Full.PostMAE)
	}
	// Connection aging is the hard case by construction (that is the point
	// of the scenario), so the overall MAE gate is loose: the error must
	// stay below the run's own length, and the near-crash window must carry
	// real signal.
	for _, rep := range []struct {
		name string
		rep  evalx.Report
	}{{"full", res.Full}, {"full+conn", res.FullConn}} {
		if rep.rep.MAE <= 0 || rep.rep.MAE > res.CrashTimeSec {
			t.Errorf("%s MAE %.0f s carries no signal on a %.0f s run", rep.name, rep.rep.MAE, res.CrashTimeSec)
		}
		if rep.rep.PostMAE > res.CrashTimeSec/2 {
			t.Errorf("%s POST-MAE %.0f s carries no near-crash signal on a %.0f s run",
				rep.name, rep.rep.PostMAE, res.CrashTimeSec)
		}
	}
	if res.TrainReportConn.Attributes != res.TrainReportFull.Attributes+6 {
		t.Errorf("full+conn trained on %d attributes, full on %d; want +6 connection derivatives",
			res.TrainReportConn.Attributes, res.TrainReportFull.Attributes)
	}
	if len(res.RootCause) == 0 {
		t.Fatalf("no root-cause hints")
	}
}

// TestTriLeakScenarioShape checks the three-resource scenario: the run must
// die from one of the three injected resources and the near-crash accuracy
// must remain usable, as in experiment 4.4.
func TestTriLeakScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res, err := ExperimentTriLeak(Options{Seed: 2})
	if err != nil {
		t.Fatalf("ExperimentTriLeak: %v", err)
	}
	if res.CrashTimeSec <= trileakWarmup.Seconds() {
		t.Fatalf("crash at %.0f s, before the injectors even started", res.CrashTimeSec)
	}
	if res.M5P.MAE >= res.LinReg.MAE {
		t.Errorf("M5P MAE %.0f s not better than LinReg %.0f s", res.M5P.MAE, res.LinReg.MAE)
	}
	if res.M5P.PostMAE >= res.M5P.PreMAE {
		t.Errorf("POST-MAE %.0f s not better than PRE-MAE %.0f s", res.M5P.PostMAE, res.M5P.PreMAE)
	}
	if len(res.RootCause) == 0 {
		t.Fatalf("no root-cause hints")
	}
}
