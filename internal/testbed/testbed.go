// Package testbed wires the whole simulation substrate — simulated clock,
// TPC-W workload generator, Tomcat-like application server with its JVM
// heap, fault injectors and the monitoring subsystem — into single runnable
// "executions" equivalent to the experiments the paper runs on its physical
// testbed (Section 3).
//
// A RunConfig describes one execution: the workload (EB count and mix), the
// injection schedule (the aging faults and their phases), and how long to
// run. Run executes it inside the discrete-event simulation and returns the
// monitored Series, which downstream code turns into training/test datasets.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

// DefaultMaxDuration bounds executions that never crash. Three hours is the
// paper's "infinite time until crash" horizon.
const DefaultMaxDuration = 3 * time.Hour

// cancelCheckInterval is the simulated period on which a run with a context
// probes for cancellation. Simulated hours execute in wall-clock
// milliseconds, so this granularity reacts to cancellation almost instantly
// in real time.
const cancelCheckInterval = 15 * time.Second

// RunConfig describes one testbed execution.
type RunConfig struct {
	// Name labels the run (used as the series and dataset relation name).
	Name string
	// Seed makes the run reproducible. Two runs with the same config and
	// seed produce identical series.
	Seed uint64

	// EBs is the number of concurrent emulated browsers. Required. When
	// WorkloadPhases is set, EBs is the maximum population the phases can
	// scale up to.
	EBs int
	// Mix is the TPC-W navigation mix (zero value = shopping, as in the
	// paper).
	Mix tpcw.Mix
	// WorkloadPhases optionally varies the active EB population over the
	// run (bursty load). Empty means a constant EBs population, as in every
	// experiment of the paper.
	WorkloadPhases []WorkloadPhase

	// Server configures the application server and its heap. The zero value
	// reproduces the paper's Table 1 machine.
	Server appserver.Config

	// Phases is the fault-injection schedule. Empty means no injection.
	Phases []injector.Phase
	// LeakAmountMB is the size of each memory injection (0 = 1 MB, as in the
	// paper).
	LeakAmountMB float64

	// MaxDuration stops the run even if the server never crashes
	// (0 = 3 hours).
	MaxDuration time.Duration
	// CheckpointInterval is the monitoring interval (0 = 15 s).
	CheckpointInterval time.Duration

	// Ctx optionally allows cancelling the run from outside the simulation
	// (the scenario engine uses it to abort seed sweeps). A nil Ctx means the
	// run cannot be cancelled. Cancellation is checked on a coarse simulated
	// period, so it adds no events that could perturb the simulation state:
	// the check callback touches neither the random streams nor the server.
	Ctx context.Context
}

// WorkloadPhase is one segment of a varying-load schedule: for Duration the
// generator keeps EBs emulated browsers active. A zero Duration means "until
// the end of the run" and is only meaningful for the last phase.
type WorkloadPhase struct {
	// Name labels the phase ("baseline", "spike", ...).
	Name string
	// Duration is how long the phase lasts. Zero = until the run ends.
	Duration time.Duration
	// EBs is the active population during the phase (1..RunConfig.EBs).
	EBs int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Mix.Name == "" {
		c.Mix = tpcw.ShoppingMix()
	}
	if c.LeakAmountMB <= 0 {
		c.LeakAmountMB = 1
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = DefaultMaxDuration
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = monitor.DefaultInterval
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("run-%dEB", c.EBs)
	}
	return c
}

// Validate checks the configuration.
func (c RunConfig) Validate() error {
	if c.EBs <= 0 {
		return fmt.Errorf("testbed: non-positive EB count %d", c.EBs)
	}
	if c.MaxDuration < 0 {
		return errors.New("testbed: negative max duration")
	}
	if c.CheckpointInterval < 0 {
		return errors.New("testbed: negative checkpoint interval")
	}
	for i, p := range c.WorkloadPhases {
		if p.EBs < 1 || p.EBs > c.EBs {
			return fmt.Errorf("testbed: workload phase %d (%q) has %d EBs, want 1..%d", i, p.Name, p.EBs, c.EBs)
		}
		if p.Duration < 0 {
			return fmt.Errorf("testbed: workload phase %d (%q) has negative duration", i, p.Name)
		}
		if p.Duration == 0 && i != len(c.WorkloadPhases)-1 {
			return fmt.Errorf("testbed: workload phase %d (%q) has zero duration but is not last", i, p.Name)
		}
	}
	return nil
}

// Result is the outcome of one execution.
type Result struct {
	// Series is the monitored checkpoint series with TTF labels.
	Series *monitor.Series
	// WorkloadStats summarises the traffic generated.
	WorkloadStats tpcw.Stats
	// FinalSnapshot is the server state at the end of the run.
	FinalSnapshot appserver.Snapshot
	// Crashed, CrashTime and CrashReason describe the failure, if any.
	Crashed     bool
	CrashTime   time.Duration
	CrashReason appserver.CrashReason
}

// Run executes one testbed run to completion (crash or MaxDuration).
func Run(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	sched := simclock.NewScheduler(nil)
	master := rng.New(cfg.Seed)

	srv, err := appserver.New(cfg.Server, sched, rng.NewNamed(cfg.Seed, cfg.Name+"/server"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating server: %w", err)
	}

	gen, err := tpcw.NewGenerator(tpcw.Config{EBs: cfg.EBs, Mix: cfg.Mix}, sched, srv,
		rng.NewNamed(cfg.Seed, cfg.Name+"/workload"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating workload generator: %w", err)
	}

	memInj, err := injector.NewMemoryInjector(srv, rng.NewNamed(cfg.Seed, cfg.Name+"/meminj"), cfg.LeakAmountMB)
	if err != nil {
		return nil, fmt.Errorf("testbed: creating memory injector: %w", err)
	}
	memInj.Attach()

	thrInj, err := injector.NewThreadInjector(srv, sched, rng.NewNamed(cfg.Seed, cfg.Name+"/thrinj"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating thread injector: %w", err)
	}

	connInj, err := injector.NewConnectionInjector(srv, sched, rng.NewNamed(cfg.Seed, cfg.Name+"/conninj"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating connection injector: %w", err)
	}

	if len(cfg.Phases) > 0 {
		schedule, err := injector.NewSchedule(cfg.Phases, memInj, thrInj, connInj, sched)
		if err != nil {
			return nil, fmt.Errorf("testbed: building injection schedule: %w", err)
		}
		if err := schedule.Start(); err != nil {
			return nil, fmt.Errorf("testbed: starting injection schedule: %w", err)
		}
	}
	if err := thrInj.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting thread injector: %w", err)
	}
	if err := connInj.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting connection injector: %w", err)
	}

	if len(cfg.WorkloadPhases) > 0 {
		if err := scheduleWorkloadPhases(cfg.WorkloadPhases, gen, sched); err != nil {
			return nil, err
		}
	}

	coll, err := monitor.NewCollector(cfg.Name, srv, sched, cfg.EBs, cfg.CheckpointInterval)
	if err != nil {
		return nil, fmt.Errorf("testbed: creating collector: %w", err)
	}
	if len(cfg.WorkloadPhases) > 0 {
		// Under a varying load the workload feature must track the active
		// population, not the configured maximum.
		coll.SetWorkloadFn(gen.ActiveEBs)
	}
	if err := coll.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting collector: %w", err)
	}

	// Stop the event loop as soon as the server crashes: the run is over.
	srv.OnCrash(func(appserver.CrashReason) {
		gen.Stop()
		sched.Stop()
	})

	if err := gen.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting workload: %w", err)
	}

	// Consume the master source once so that adding future components that
	// split from it does not silently change existing runs' streams.
	_ = master.Uint64()

	// External cancellation: a coarse periodic probe that stops the event
	// loop once the context is done. While the context is live the callback
	// is a pure no-op (no random draws, no server state), so runs with and
	// without a context produce identical series.
	if cfg.Ctx != nil {
		cancelProbe, err := sched.Every(cancelCheckInterval, func() {
			if cfg.Ctx.Err() != nil {
				sched.Stop()
			}
		})
		if err != nil {
			return nil, fmt.Errorf("testbed: scheduling cancellation probe: %w", err)
		}
		defer cancelProbe()
	}

	sched.RunUntil(cfg.MaxDuration)
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, fmt.Errorf("testbed: run %q cancelled: %w", cfg.Name, cfg.Ctx.Err())
	}

	res := &Result{
		Series:        coll.Finish(),
		WorkloadStats: gen.Stats(),
		FinalSnapshot: srv.Snapshot(),
		Crashed:       srv.Crashed(),
		CrashTime:     srv.CrashTime(),
		CrashReason:   srv.CrashReason(),
	}
	if res.Series.Len() == 0 {
		return nil, fmt.Errorf("testbed: run %q produced no checkpoints (duration %v, interval %v)",
			cfg.Name, cfg.MaxDuration, cfg.CheckpointInterval)
	}
	return res, nil
}

// RunMany executes several configurations and returns their series in order.
// It fails fast on the first error.
func RunMany(cfgs []RunConfig) ([]*monitor.Series, error) {
	out := make([]*monitor.Series, 0, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("testbed: run %d (%q): %w", i, cfg.Name, err)
		}
		out = append(out, res.Series)
	}
	return out, nil
}

// ConstantLeakPhases returns a single-phase schedule that injects a memory
// leak at rate N for the whole run — the deterministic aging scenario of
// experiment 4.1.
func ConstantLeakPhases(n int) []injector.Phase {
	return []injector.Phase{{
		Name:       fmt.Sprintf("leak N=%d", n),
		MemoryMode: injector.MemoryLeak,
		MemoryN:    n,
	}}
}

// NoInjectionPhases returns a schedule with no fault injection (the "no
// aging" training execution of experiment 4.2).
func NoInjectionPhases() []injector.Phase {
	return []injector.Phase{{Name: "no injection", MemoryMode: injector.MemoryOff}}
}

// ConstantThreadLeakPhases returns a single-phase schedule leaking threads at
// rate (M, T) for the whole run — the single-resource thread training runs of
// experiment 4.4.
func ConstantThreadLeakPhases(m, t int) []injector.Phase {
	return []injector.Phase{{
		Name:    fmt.Sprintf("threads M=%d T=%d", m, t),
		ThreadM: m,
		ThreadT: t,
	}}
}

// ConstantConnLeakPhases returns a single-phase schedule leaking database
// connections at rate (C, T) for the whole run — the single-resource
// connection training runs of the three-resource scenario.
func ConstantConnLeakPhases(c, t int) []injector.Phase {
	return []injector.Phase{{
		Name:  fmt.Sprintf("connections C=%d T=%d", c, t),
		ConnC: c,
		ConnT: t,
	}}
}

// ProfilePhases converts a per-instance aging profile into an open-ended
// single-phase injection schedule applying all its faults for the whole run.
func ProfilePhases(p injector.Profile) []injector.Phase {
	return []injector.Phase{p.Phase("")}
}

// ProfileRunConfig builds the RunConfig that replays one fleet instance's
// aging profile as a full-fidelity single-server testbed execution: same
// faults, same leak amount, constant workload. Callers typically only add
// MaxDuration, Seed tweaks or a Ctx before running it.
func ProfileRunConfig(name string, seed uint64, ebs int, p injector.Profile) RunConfig {
	return RunConfig{
		Name:         name,
		Seed:         seed,
		EBs:          ebs,
		Phases:       ProfilePhases(p),
		LeakAmountMB: p.LeakMB,
	}
}

// BurstyWorkloadPhases builds an alternating baseline/spike load schedule:
// cycles repetitions of (baseline for period, spike for period), ending with
// an open-ended baseline phase so the schedule covers runs of any length.
func BurstyWorkloadPhases(baseEBs, spikeEBs int, period time.Duration, cycles int) []WorkloadPhase {
	var phases []WorkloadPhase
	for i := 0; i < cycles; i++ {
		phases = append(phases,
			WorkloadPhase{Name: fmt.Sprintf("baseline-%d", i+1), Duration: period, EBs: baseEBs},
			WorkloadPhase{Name: fmt.Sprintf("spike-%d", i+1), Duration: period, EBs: spikeEBs},
		)
	}
	phases = append(phases, WorkloadPhase{Name: "baseline-tail", EBs: baseEBs})
	return phases
}

// scheduleWorkloadPhases applies the first workload phase immediately and
// schedules the population changes at the phase boundaries.
func scheduleWorkloadPhases(phases []WorkloadPhase, gen *tpcw.Generator, sched *simclock.Scheduler) error {
	gen.SetActiveEBs(phases[0].EBs)
	at := time.Duration(0)
	for i := 0; i < len(phases)-1; i++ {
		if phases[i].Duration == 0 {
			break
		}
		at += phases[i].Duration
		ebs := phases[i+1].EBs
		if _, err := sched.At(at, func() { gen.SetActiveEBs(ebs) }); err != nil {
			return fmt.Errorf("testbed: scheduling workload phase %d: %w", i+1, err)
		}
	}
	return nil
}
