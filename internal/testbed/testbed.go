// Package testbed wires the whole simulation substrate — simulated clock,
// TPC-W workload generator, Tomcat-like application server with its JVM
// heap, fault injectors and the monitoring subsystem — into single runnable
// "executions" equivalent to the experiments the paper runs on its physical
// testbed (Section 3).
//
// A RunConfig describes one execution: the workload (EB count and mix), the
// injection schedule (the aging faults and their phases), and how long to
// run. Run executes it inside the discrete-event simulation and returns the
// monitored Series, which downstream code turns into training/test datasets.
package testbed

import (
	"errors"
	"fmt"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

// DefaultMaxDuration bounds executions that never crash. Three hours is the
// paper's "infinite time until crash" horizon.
const DefaultMaxDuration = 3 * time.Hour

// RunConfig describes one testbed execution.
type RunConfig struct {
	// Name labels the run (used as the series and dataset relation name).
	Name string
	// Seed makes the run reproducible. Two runs with the same config and
	// seed produce identical series.
	Seed uint64

	// EBs is the number of concurrent emulated browsers. Required.
	EBs int
	// Mix is the TPC-W navigation mix (zero value = shopping, as in the
	// paper).
	Mix tpcw.Mix

	// Server configures the application server and its heap. The zero value
	// reproduces the paper's Table 1 machine.
	Server appserver.Config

	// Phases is the fault-injection schedule. Empty means no injection.
	Phases []injector.Phase
	// LeakAmountMB is the size of each memory injection (0 = 1 MB, as in the
	// paper).
	LeakAmountMB float64

	// MaxDuration stops the run even if the server never crashes
	// (0 = 3 hours).
	MaxDuration time.Duration
	// CheckpointInterval is the monitoring interval (0 = 15 s).
	CheckpointInterval time.Duration
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Mix.Name == "" {
		c.Mix = tpcw.ShoppingMix()
	}
	if c.LeakAmountMB <= 0 {
		c.LeakAmountMB = 1
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = DefaultMaxDuration
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = monitor.DefaultInterval
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("run-%dEB", c.EBs)
	}
	return c
}

// Validate checks the configuration.
func (c RunConfig) Validate() error {
	if c.EBs <= 0 {
		return fmt.Errorf("testbed: non-positive EB count %d", c.EBs)
	}
	if c.MaxDuration < 0 {
		return errors.New("testbed: negative max duration")
	}
	if c.CheckpointInterval < 0 {
		return errors.New("testbed: negative checkpoint interval")
	}
	return nil
}

// Result is the outcome of one execution.
type Result struct {
	// Series is the monitored checkpoint series with TTF labels.
	Series *monitor.Series
	// WorkloadStats summarises the traffic generated.
	WorkloadStats tpcw.Stats
	// FinalSnapshot is the server state at the end of the run.
	FinalSnapshot appserver.Snapshot
	// Crashed, CrashTime and CrashReason describe the failure, if any.
	Crashed     bool
	CrashTime   time.Duration
	CrashReason appserver.CrashReason
}

// Run executes one testbed run to completion (crash or MaxDuration).
func Run(cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	sched := simclock.NewScheduler(nil)
	master := rng.New(cfg.Seed)

	srv, err := appserver.New(cfg.Server, sched, rng.NewNamed(cfg.Seed, cfg.Name+"/server"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating server: %w", err)
	}

	gen, err := tpcw.NewGenerator(tpcw.Config{EBs: cfg.EBs, Mix: cfg.Mix}, sched, srv,
		rng.NewNamed(cfg.Seed, cfg.Name+"/workload"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating workload generator: %w", err)
	}

	memInj, err := injector.NewMemoryInjector(srv, rng.NewNamed(cfg.Seed, cfg.Name+"/meminj"), cfg.LeakAmountMB)
	if err != nil {
		return nil, fmt.Errorf("testbed: creating memory injector: %w", err)
	}
	memInj.Attach()

	thrInj, err := injector.NewThreadInjector(srv, sched, rng.NewNamed(cfg.Seed, cfg.Name+"/thrinj"))
	if err != nil {
		return nil, fmt.Errorf("testbed: creating thread injector: %w", err)
	}

	if len(cfg.Phases) > 0 {
		schedule, err := injector.NewSchedule(cfg.Phases, memInj, thrInj, sched)
		if err != nil {
			return nil, fmt.Errorf("testbed: building injection schedule: %w", err)
		}
		if err := schedule.Start(); err != nil {
			return nil, fmt.Errorf("testbed: starting injection schedule: %w", err)
		}
	}
	if err := thrInj.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting thread injector: %w", err)
	}

	coll, err := monitor.NewCollector(cfg.Name, srv, sched, cfg.EBs, cfg.CheckpointInterval)
	if err != nil {
		return nil, fmt.Errorf("testbed: creating collector: %w", err)
	}
	if err := coll.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting collector: %w", err)
	}

	// Stop the event loop as soon as the server crashes: the run is over.
	srv.OnCrash(func(appserver.CrashReason) {
		gen.Stop()
		sched.Stop()
	})

	if err := gen.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting workload: %w", err)
	}

	// Consume the master source once so that adding future components that
	// split from it does not silently change existing runs' streams.
	_ = master.Uint64()

	sched.RunUntil(cfg.MaxDuration)

	res := &Result{
		Series:        coll.Finish(),
		WorkloadStats: gen.Stats(),
		FinalSnapshot: srv.Snapshot(),
		Crashed:       srv.Crashed(),
		CrashTime:     srv.CrashTime(),
		CrashReason:   srv.CrashReason(),
	}
	if res.Series.Len() == 0 {
		return nil, fmt.Errorf("testbed: run %q produced no checkpoints (duration %v, interval %v)",
			cfg.Name, cfg.MaxDuration, cfg.CheckpointInterval)
	}
	return res, nil
}

// RunMany executes several configurations and returns their series in order.
// It fails fast on the first error.
func RunMany(cfgs []RunConfig) ([]*monitor.Series, error) {
	out := make([]*monitor.Series, 0, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("testbed: run %d (%q): %w", i, cfg.Name, err)
		}
		out = append(out, res.Series)
	}
	return out, nil
}

// ConstantLeakPhases returns a single-phase schedule that injects a memory
// leak at rate N for the whole run — the deterministic aging scenario of
// experiment 4.1.
func ConstantLeakPhases(n int) []injector.Phase {
	return []injector.Phase{{
		Name:       fmt.Sprintf("leak N=%d", n),
		MemoryMode: injector.MemoryLeak,
		MemoryN:    n,
	}}
}

// NoInjectionPhases returns a schedule with no fault injection (the "no
// aging" training execution of experiment 4.2).
func NoInjectionPhases() []injector.Phase {
	return []injector.Phase{{Name: "no injection", MemoryMode: injector.MemoryOff}}
}

// ConstantThreadLeakPhases returns a single-phase schedule leaking threads at
// rate (M, T) for the whole run — the single-resource thread training runs of
// experiment 4.4.
func ConstantThreadLeakPhases(m, t int) []injector.Phase {
	return []injector.Phase{{
		Name:    fmt.Sprintf("threads M=%d T=%d", m, t),
		ThreadM: m,
		ThreadT: t,
	}}
}
