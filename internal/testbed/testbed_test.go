package testbed

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"agingpred/internal/appserver"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
)

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(RunConfig{EBs: 0}); err == nil {
		t.Fatalf("zero EBs accepted")
	}
	cfg := RunConfig{EBs: 10, MaxDuration: -time.Second}
	if err := cfg.Validate(); err == nil {
		t.Fatalf("negative duration accepted")
	}
	cfg = RunConfig{EBs: 10, CheckpointInterval: -time.Second}
	if err := cfg.Validate(); err == nil {
		t.Fatalf("negative interval accepted")
	}
}

func TestHealthyRunProducesInfiniteLabels(t *testing.T) {
	res, err := Run(RunConfig{
		Name:        "healthy",
		Seed:        1,
		EBs:         25,
		Phases:      NoInjectionPhases(),
		MaxDuration: 20 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashed {
		t.Fatalf("healthy run crashed: %v", res.CrashReason)
	}
	if res.Series.Len() != 80 { // 20 min / 15 s
		t.Fatalf("series has %d checkpoints, want 80", res.Series.Len())
	}
	for _, cp := range res.Series.Checkpoints {
		if cp.TTFSec != monitor.InfiniteTTFSec {
			t.Fatalf("healthy run labelled with TTF %v", cp.TTFSec)
		}
	}
	if res.WorkloadStats.Issued == 0 || res.WorkloadStats.Completed == 0 {
		t.Fatalf("no traffic generated: %+v", res.WorkloadStats)
	}
}

func TestConstantLeakRunCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("full aging run takes a few seconds")
	}
	res, err := Run(RunConfig{
		Name:        "leak-N30",
		Seed:        2,
		EBs:         100,
		Phases:      ConstantLeakPhases(30),
		MaxDuration: 3 * time.Hour,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("constant leak run did not crash within 3 hours")
	}
	if res.CrashReason != appserver.CrashOutOfMemory {
		t.Fatalf("crash reason = %q, want OOM", res.CrashReason)
	}
	s := res.Series
	if s.Len() < 20 {
		t.Fatalf("crashed too fast: only %d checkpoints", s.Len())
	}
	// TTF labels decrease by the checkpoint interval.
	for i := 1; i < s.Len(); i++ {
		dt := s.Checkpoints[i].TimeSec - s.Checkpoints[i-1].TimeSec
		dttf := s.Checkpoints[i-1].TTFSec - s.Checkpoints[i].TTFSec
		if math.Abs(dt-dttf) > 1e-6 {
			t.Fatalf("TTF labels inconsistent at checkpoint %d: dt=%v dttf=%v", i, dt, dttf)
		}
	}
	// Tomcat memory (OS view) must be non-decreasing and grow substantially.
	first := s.Checkpoints[0].TomcatMemUsedMB
	last := s.Checkpoints[s.Len()-1].TomcatMemUsedMB
	if last <= first+100 {
		t.Fatalf("Tomcat memory grew only from %v to %v MB during an aging run", first, last)
	}
	for i := 1; i < s.Len(); i++ {
		if s.Checkpoints[i].TomcatMemUsedMB < s.Checkpoints[i-1].TomcatMemUsedMB-1e-6 {
			t.Fatalf("OS-perspective memory shrank at checkpoint %d", i)
		}
	}
}

func TestLeakRateAffectsTimeToCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple aging runs take a few seconds")
	}
	run := func(n int) float64 {
		res, err := Run(RunConfig{
			Name:        "leak",
			Seed:        3,
			EBs:         100,
			Phases:      ConstantLeakPhases(n),
			MaxDuration: 6 * time.Hour,
		})
		if err != nil {
			t.Fatalf("Run(N=%d): %v", n, err)
		}
		if !res.Crashed {
			t.Fatalf("run with N=%d did not crash", n)
		}
		return res.CrashTime.Seconds()
	}
	fast := run(15) // aggressive leak: every ~7.5 search requests
	slow := run(75) // gentle leak
	if fast >= slow {
		t.Fatalf("aggressive leak (N=15) crashed at %v s, gentle (N=75) at %v s; want faster crash for smaller N", fast, slow)
	}
}

func TestWorkloadAffectsTimeToCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple aging runs take a few seconds")
	}
	run := func(ebs int) float64 {
		res, err := Run(RunConfig{
			Name:        "leak",
			Seed:        4,
			EBs:         ebs,
			Phases:      ConstantLeakPhases(30),
			MaxDuration: 3 * time.Hour,
		})
		if err != nil {
			t.Fatalf("Run(EBs=%d): %v", ebs, err)
		}
		if !res.Crashed {
			t.Fatalf("run with %d EBs did not crash within 3 h", ebs)
		}
		return res.CrashTime.Seconds()
	}
	heavy := run(200)
	light := run(50)
	// Memory injection is workload-coupled: more EBs hit the search servlet
	// more often, so the crash comes sooner (the paper's motivation for
	// including workload in the model).
	if heavy >= light {
		t.Fatalf("200 EBs crashed at %v s, 50 EBs at %v s; want heavier load to crash sooner", heavy, light)
	}
}

func TestThreadLeakRunCrashesWithThreadExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run takes a few seconds")
	}
	res, err := Run(RunConfig{
		Name:        "threads",
		Seed:        5,
		EBs:         50,
		Phases:      ConstantThreadLeakPhases(45, 60),
		MaxDuration: 3 * time.Hour,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("thread-leak run did not crash")
	}
	if res.CrashReason != appserver.CrashThreadExhaustion && res.CrashReason != appserver.CrashOutOfMemory {
		t.Fatalf("unexpected crash reason %q", res.CrashReason)
	}
	// The thread count at the last checkpoint must have grown well beyond the
	// baseline.
	last := res.Series.Checkpoints[res.Series.Len()-1]
	if last.NumThreads < 400 {
		t.Fatalf("thread count at crash = %v, want several hundred", last.NumThreads)
	}
}

func TestRunIsDeterministicForSameSeed(t *testing.T) {
	cfg := RunConfig{
		Name:        "det",
		Seed:        42,
		EBs:         50,
		Phases:      ConstantLeakPhases(30),
		MaxDuration: 10 * time.Minute,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Series.Len() != b.Series.Len() {
		t.Fatalf("different checkpoint counts: %d vs %d", a.Series.Len(), b.Series.Len())
	}
	for i := range a.Series.Checkpoints {
		ca, cb := a.Series.Checkpoints[i], b.Series.Checkpoints[i]
		if ca != cb {
			t.Fatalf("checkpoint %d differs between identical runs:\n%+v\n%+v", i, ca, cb)
		}
	}
	// A different seed must produce a different run.
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	same := c.Series.Len() == a.Series.Len()
	if same {
		identical := true
		for i := range a.Series.Checkpoints {
			if a.Series.Checkpoints[i] != c.Series.Checkpoints[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatalf("different seeds produced identical runs")
		}
	}
}

func TestPhaseScheduleChangesInjectionMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run takes a few seconds")
	}
	// 10 minutes without injection, then an aggressive leak. The memory curve
	// must stay roughly flat in the first part and grow in the second.
	res, err := Run(RunConfig{
		Name: "phased",
		Seed: 6,
		EBs:  100,
		Phases: []injector.Phase{
			{Name: "none", Duration: 10 * time.Minute, MemoryMode: injector.MemoryOff},
			{Name: "leak", MemoryMode: injector.MemoryLeak, MemoryN: 10},
		},
		MaxDuration: time.Hour,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := res.Series
	if s.Len() < 45 {
		t.Fatalf("run too short: %d checkpoints", s.Len())
	}
	var before, after float64
	for _, cp := range s.Checkpoints {
		if cp.TimeSec == 600 {
			before = cp.OldUsedMB
		}
		if cp.TimeSec == 1800 {
			after = cp.OldUsedMB
		}
	}
	if after-before < 100 {
		t.Fatalf("old zone grew only %v MB during the leak phase", after-before)
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	if _, err := RunMany([]RunConfig{{EBs: 0}}); err == nil {
		t.Fatalf("RunMany with invalid config succeeded")
	}
	series, err := RunMany([]RunConfig{
		{Name: "a", Seed: 1, EBs: 10, MaxDuration: 5 * time.Minute},
		{Name: "b", Seed: 2, EBs: 10, MaxDuration: 5 * time.Minute},
	})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(series) != 2 || series[0].Name != "a" || series[1].Name != "b" {
		t.Fatalf("RunMany returned %d series", len(series))
	}
}

func TestPhaseHelpers(t *testing.T) {
	if p := ConstantLeakPhases(30); len(p) != 1 || p[0].MemoryMode != injector.MemoryLeak || p[0].MemoryN != 30 {
		t.Fatalf("ConstantLeakPhases = %+v", p)
	}
	if p := NoInjectionPhases(); len(p) != 1 || p[0].MemoryMode != injector.MemoryOff {
		t.Fatalf("NoInjectionPhases = %+v", p)
	}
	if p := ConstantThreadLeakPhases(30, 90); len(p) != 1 || p[0].ThreadM != 30 || p[0].ThreadT != 90 {
		t.Fatalf("ConstantThreadLeakPhases = %+v", p)
	}
}

func TestWorkloadPhaseValidation(t *testing.T) {
	base := RunConfig{Name: "wp", Seed: 1, EBs: 50, MaxDuration: time.Minute}
	bad := []([]WorkloadPhase){
		{{Name: "too big", EBs: 51}},
		{{Name: "zero", EBs: 0}},
		{{Name: "negative duration", EBs: 10, Duration: -time.Minute}},
		{{Name: "open-ended not last", EBs: 10, Duration: 0}, {Name: "last", EBs: 20, Duration: time.Minute}},
	}
	for _, phases := range bad {
		cfg := base
		cfg.WorkloadPhases = phases
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted workload phases %+v", phases)
		}
	}
	cfg := base
	cfg.WorkloadPhases = []WorkloadPhase{{Name: "a", EBs: 10, Duration: time.Minute}, {Name: "b", EBs: 50}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected good workload phases: %v", err)
	}
}

func TestBurstyWorkloadPhasesShape(t *testing.T) {
	phases := BurstyWorkloadPhases(60, 180, 10*time.Minute, 3)
	if len(phases) != 7 {
		t.Fatalf("BurstyWorkloadPhases returned %d phases, want 7", len(phases))
	}
	for i := 0; i < 6; i += 2 {
		if phases[i].EBs != 60 || phases[i+1].EBs != 180 {
			t.Fatalf("cycle %d = %+v, %+v", i/2, phases[i], phases[i+1])
		}
		if phases[i].Duration != 10*time.Minute || phases[i+1].Duration != 10*time.Minute {
			t.Fatalf("cycle %d durations wrong", i/2)
		}
	}
	last := phases[6]
	if last.EBs != 60 || last.Duration != 0 {
		t.Fatalf("tail phase = %+v, want open-ended baseline", last)
	}
}

func TestWorkloadPhasesShapeTraffic(t *testing.T) {
	// One hour, no injection, load alternating 10 vs 80 EBs every 15 min.
	res, err := Run(RunConfig{
		Name: "bursty-smoke",
		Seed: 3,
		EBs:  80,
		WorkloadPhases: []WorkloadPhase{
			{Name: "calm", Duration: 15 * time.Minute, EBs: 10},
			{Name: "spike", Duration: 15 * time.Minute, EBs: 80},
			{Name: "calm2", Duration: 15 * time.Minute, EBs: 10},
			{Name: "spike2", EBs: 80},
		},
		Phases:      NoInjectionPhases(),
		MaxDuration: time.Hour,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashed {
		t.Fatalf("no-injection bursty run crashed: %v", res.CrashReason)
	}
	// Compare steady-state throughput inside the two halves of the second
	// calm/spike cycle (skip 5 min of ramp at each boundary).
	mean := func(fromSec, toSec float64) float64 {
		sum, n := 0.0, 0
		for _, cp := range res.Series.Checkpoints {
			if cp.TimeSec > fromSec && cp.TimeSec <= toSec {
				sum += cp.Throughput
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no checkpoints in (%v, %v]", fromSec, toSec)
		}
		return sum / float64(n)
	}
	calm := mean(35*60, 45*60)
	spike := mean(50*60, 60*60)
	if spike < 3*calm {
		t.Fatalf("spike throughput %.2f req/s is not well above calm %.2f req/s", spike, calm)
	}
}

func TestConnLeakRunCrashesWithPoolExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("full aging run takes a second")
	}
	res, err := Run(RunConfig{
		Name:        "conn-leak",
		Seed:        4,
		EBs:         50,
		Phases:      ConstantConnLeakPhases(8, 45),
		MaxDuration: 4 * time.Hour,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("connection-leak run did not crash")
	}
	if res.CrashReason != appserver.CrashConnectionExhaustion {
		t.Fatalf("crash reason = %q", res.CrashReason)
	}
	// The monitored connection gauge must rise toward the pool limit.
	first := res.Series.Checkpoints[0].NumMySQLConns
	lastCp := res.Series.Checkpoints[res.Series.Len()-1]
	if lastCp.NumMySQLConns-first < 50 {
		t.Fatalf("MySQL connection gauge rose only from %v to %v", first, lastCp.NumMySQLConns)
	}
	if p := ConstantConnLeakPhases(8, 45); len(p) != 1 || p[0].ConnC != 8 || p[0].ConnT != 45 {
		t.Fatalf("ConstantConnLeakPhases = %+v", p)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(RunConfig{
		Name:        "cancelled",
		Seed:        5,
		EBs:         25,
		Phases:      NoInjectionPhases(),
		MaxDuration: time.Hour,
		Ctx:         ctx,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled context = %v, want context.Canceled", err)
	}
}

func TestContextDoesNotPerturbTheRun(t *testing.T) {
	cfg := RunConfig{
		Name:        "ctx-identical",
		Seed:        6,
		EBs:         40,
		Phases:      NoInjectionPhases(),
		MaxDuration: 30 * time.Minute,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run without ctx: %v", err)
	}
	cfg.Ctx = context.Background()
	withCtx, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with ctx: %v", err)
	}
	if !reflect.DeepEqual(plain.Series, withCtx.Series) {
		t.Fatalf("a live context changed the monitored series")
	}
}

// TestProfileRunConfig replays a fleet-style aging profile as a regular
// testbed execution and checks the configured faults actually age the
// server to a crash.
func TestProfileRunConfig(t *testing.T) {
	p := injector.Profile{MemoryN: 10, LeakMB: 2}
	cfg := ProfileRunConfig("profile-run", 4, 100, p)
	if cfg.LeakAmountMB != 2 {
		t.Fatalf("LeakAmountMB = %g, want the profile's leak amount", cfg.LeakAmountMB)
	}
	if len(cfg.Phases) != 1 || cfg.Phases[0].MemoryMode != injector.MemoryLeak || cfg.Phases[0].MemoryN != 10 {
		t.Fatalf("phases do not apply the profile: %+v", cfg.Phases)
	}
	cfg.MaxDuration = 4 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("aggressive memory-leak profile did not crash the server within %v", cfg.MaxDuration)
	}
	if res.CrashReason != appserver.CrashOutOfMemory {
		t.Fatalf("crash reason = %q, want heap exhaustion", res.CrashReason)
	}
}
