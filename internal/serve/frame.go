// The binary wire protocol of the prediction service: compact length-prefixed
// frames over raw TCP, in the same defensive style as the AGPM model-artifact
// format — versioned, CRC-checked, bounded allocations, and fuzz-hardened
// (FuzzDecodeFrame pins no-panic plus decode(encode(f)) == f on every frame
// that survives decoding).
//
// One frame on the wire:
//
//	offset  size  field
//	0       4     body length N in bytes, big-endian uint32 (type + payload)
//	4       1     frame type
//	5       N-1   payload (layout per type, below)
//	4+N     4     CRC-32 (IEEE) of the body, big-endian uint32
//
// A conversation: the client opens with HELLO (wire magic, protocol version,
// feature-schema name); the server answers WELCOME (serving epoch, model kind,
// schema) or a typed ERROR. Then checkpoints stream in and predictions stream
// out, pipelined — the client does not wait for each PREDICT before sending
// the next CHECKPOINT. RESOLVE reports the stream's outcome (crash or
// censored) for adaptive label resolution, RESET starts a fresh stream on the
// same connection (adopting the server's current model epoch), and CLOSE ends
// the conversation. All integers are big-endian; floats are IEEE-754 bits.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"agingpred/internal/monitor"
)

// ProtocolVersion is the wire-protocol version this build speaks. HELLO
// carries the client's version and the server refuses a mismatch with
// ErrCodeVersion, so incompatible ends fail fast instead of misparsing.
const ProtocolVersion = 1

// wireMagic opens every HELLO payload: a connection that does not start with
// it is not an agingpred client (a browser, a port scanner, a stray curl) and
// is refused before anything else is parsed.
const wireMagic = "AGPW"

// DefaultMaxFrameBytes bounds the body length DecodeFrame will accept. Every
// legitimate frame is under 200 bytes (a CHECKPOINT is 4+1+20·8 = 165 body
// bytes); the bound exists so a corrupt or hostile length prefix cannot ask
// the server to allocate gigabytes.
const DefaultMaxFrameBytes = 4096

// frameOverheadBytes is the fixed per-frame envelope cost: the 4-byte length
// prefix plus the trailing 4-byte CRC.
const frameOverheadBytes = 8

// FrameType identifies one frame kind.
type FrameType uint8

// The frame vocabulary.
const (
	// FrameHello opens a conversation (client → server): wire magic,
	// protocol version, flags, requested feature-schema name ("" = accept
	// the server's).
	FrameHello FrameType = 1
	// FrameWelcome accepts it (server → client): negotiated version, the
	// serving model epoch, model kind and schema name.
	FrameWelcome FrameType = 2
	// FrameCheckpoint carries one 15-second monitor vector (client → server).
	FrameCheckpoint FrameType = 3
	// FramePredict answers one checkpoint (server → client): sequence echo,
	// serving epoch, checkpoint time, predicted TTF.
	FramePredict FrameType = 4
	// FrameResolve reports the stream's outcome for adaptive label
	// resolution (client → server): crash at CrashTimeSec, or censored.
	FrameResolve FrameType = 5
	// FrameReset starts a fresh stream on the same connection; the session
	// adopts the server's current model epoch (client → server).
	FrameReset FrameType = 6
	// FrameClose ends the conversation gracefully (either direction).
	FrameClose FrameType = 7
	// FrameError refuses something, with a typed code (server → client).
	FrameError FrameType = 8
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameWelcome:
		return "WELCOME"
	case FrameCheckpoint:
		return "CHECKPOINT"
	case FramePredict:
		return "PREDICT"
	case FrameResolve:
		return "RESOLVE"
	case FrameReset:
		return "RESET"
	case FrameClose:
		return "CLOSE"
	case FrameError:
		return "ERROR"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// ErrorCode types an ERROR frame, so clients can react programmatically
// instead of parsing prose.
type ErrorCode uint16

// The error vocabulary.
const (
	// ErrCodeMalformed: the frame could not be parsed (bad magic, bad
	// lengths, unknown type).
	ErrCodeMalformed ErrorCode = 1
	// ErrCodeVersion: the client's protocol version is not this build's.
	ErrCodeVersion ErrorCode = 2
	// ErrCodeSchema: the client asked for a feature schema the serving model
	// was not trained on.
	ErrCodeSchema ErrorCode = 3
	// ErrCodeTooManySessions: the session table is full (max-sessions).
	ErrCodeTooManySessions ErrorCode = 4
	// ErrCodeIdle: the connection sent nothing for longer than the idle
	// timeout and was evicted.
	ErrCodeIdle ErrorCode = 5
	// ErrCodeDraining: the server is draining for shutdown; in-flight
	// predictions were completed, new frames are refused.
	ErrCodeDraining ErrorCode = 6
	// ErrCodeProtocol: a frame arrived out of order (CHECKPOINT before
	// HELLO, a second HELLO, ...).
	ErrCodeProtocol ErrorCode = 7
	// ErrCodeInternal: the server failed to serve a well-formed frame.
	ErrCodeInternal ErrorCode = 8
)

// String names the error code.
func (c ErrorCode) String() string {
	switch c {
	case ErrCodeMalformed:
		return "malformed"
	case ErrCodeVersion:
		return "version"
	case ErrCodeSchema:
		return "schema"
	case ErrCodeTooManySessions:
		return "too-many-sessions"
	case ErrCodeIdle:
		return "idle"
	case ErrCodeDraining:
		return "draining"
	case ErrCodeProtocol:
		return "protocol"
	case ErrCodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("ErrorCode(%d)", uint16(c))
	}
}

// ResolveKind says how a stream's outcome resolved its pending labels.
type ResolveKind uint8

// The resolve vocabulary.
const (
	// ResolveCrash: the monitored server crashed at Frame.CrashTimeSec; the
	// pending predictions become scored labels.
	ResolveCrash ResolveKind = 1
	// ResolveCensored: the server was rejuvenated (or the stream re-pointed),
	// so no crash was observed and the labels never resolve.
	ResolveCensored ResolveKind = 2
)

// Frame is one decoded protocol frame: the type plus the union of every
// type's fields (only the fields of the frame's own type are meaningful —
// encoding writes exactly those, decoding fills exactly those, which is what
// makes decode(encode(f)) == f hold frame-wide).
type Frame struct {
	Type FrameType

	// HELLO / WELCOME.
	Version uint16
	Flags   uint16
	Schema  string
	// WELCOME only.
	Epoch     uint32
	ModelKind string

	// CHECKPOINT: the flat monitor vector (monitor.Checkpoint.Vec order) and
	// the client's sequence number, echoed back on the PREDICT.
	Seq uint32
	Vec [monitor.NumFields]float64

	// PREDICT.
	TimeSec       float64
	TTFSec        float64
	CrashExpected bool

	// RESOLVE.
	Kind         ResolveKind
	CrashTimeSec float64

	// ERROR.
	Code    ErrorCode
	Message string
}

// Wire-level parse errors (server maps them to ErrCodeMalformed).
var (
	errFrameTooBig  = errors.New("serve: frame exceeds the size limit")
	errFrameCRC     = errors.New("serve: frame checksum mismatch")
	errFrameTrunc   = errors.New("serve: truncated frame payload")
	errFrameType    = errors.New("serve: unknown frame type")
	errFrameMagic   = errors.New("serve: not an agingpred client (bad wire magic)")
	errFrameField   = errors.New("serve: malformed frame field")
	errFrameVecSize = errors.New("serve: checkpoint vector length mismatch")
)

// appendString appends a uint16 length prefix and the string bytes.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// takeString consumes a uint16-prefixed string, returning the rest.
func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errFrameField
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errFrameField
	}
	return string(b[:n]), b[n:], nil
}

// AppendFrame encodes f into the wire format, appending to dst (which may be
// nil or a reused buffer). Strings longer than a uint16 length are truncated
// by the caller's validation, not here; the encoder is total on well-formed
// Frames.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Schema) > math.MaxUint16 || len(f.ModelKind) > math.MaxUint16 || len(f.Message) > math.MaxUint16 {
		return nil, errFrameField
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	body := len(dst)
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case FrameHello:
		dst = append(dst, wireMagic...)
		dst = binary.BigEndian.AppendUint16(dst, f.Version)
		dst = binary.BigEndian.AppendUint16(dst, f.Flags)
		dst = appendString(dst, f.Schema)
	case FrameWelcome:
		dst = binary.BigEndian.AppendUint16(dst, f.Version)
		dst = binary.BigEndian.AppendUint32(dst, f.Epoch)
		dst = appendString(dst, f.ModelKind)
		dst = appendString(dst, f.Schema)
	case FrameCheckpoint:
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = append(dst, byte(monitor.NumFields))
		for _, v := range f.Vec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case FramePredict:
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = binary.BigEndian.AppendUint32(dst, f.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.TimeSec))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.TTFSec))
		flag := byte(0)
		if f.CrashExpected {
			flag = 1
		}
		dst = append(dst, flag)
	case FrameResolve:
		dst = append(dst, byte(f.Kind))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.CrashTimeSec))
	case FrameReset, FrameClose:
		// No payload.
	case FrameError:
		dst = binary.BigEndian.AppendUint16(dst, uint16(f.Code))
		dst = appendString(dst, f.Message)
	default:
		return nil, errFrameType
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-body))
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[body:])), nil
}

// DecodeFrameBody parses one frame body (the type byte plus payload, i.e. the
// bytes the length prefix counts, CRC already verified) into f. It never
// panics on any input and rejects trailing garbage, so every accepted body
// re-encodes to exactly the bytes that produced it.
func DecodeFrameBody(body []byte, f *Frame) error {
	if len(body) < 1 {
		return errFrameTrunc
	}
	*f = Frame{Type: FrameType(body[0])}
	b := body[1:]
	fixed := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, errFrameTrunc
		}
		chunk := b[:n]
		b = b[n:]
		return chunk, nil
	}
	var err error
	switch f.Type {
	case FrameHello:
		var chunk []byte
		if chunk, err = fixed(len(wireMagic) + 4); err != nil {
			return err
		}
		if string(chunk[:len(wireMagic)]) != wireMagic {
			return errFrameMagic
		}
		f.Version = binary.BigEndian.Uint16(chunk[4:])
		f.Flags = binary.BigEndian.Uint16(chunk[6:])
		if f.Schema, b, err = takeString(b); err != nil {
			return err
		}
	case FrameWelcome:
		var chunk []byte
		if chunk, err = fixed(6); err != nil {
			return err
		}
		f.Version = binary.BigEndian.Uint16(chunk)
		f.Epoch = binary.BigEndian.Uint32(chunk[2:])
		if f.ModelKind, b, err = takeString(b); err != nil {
			return err
		}
		if f.Schema, b, err = takeString(b); err != nil {
			return err
		}
	case FrameCheckpoint:
		chunk, err := fixed(5 + 8*monitor.NumFields)
		if err != nil {
			return err
		}
		f.Seq = binary.BigEndian.Uint32(chunk)
		if int(chunk[4]) != monitor.NumFields {
			return errFrameVecSize
		}
		for i := range f.Vec {
			f.Vec[i] = math.Float64frombits(binary.BigEndian.Uint64(chunk[5+8*i:]))
		}
	case FramePredict:
		chunk, err := fixed(25)
		if err != nil {
			return err
		}
		f.Seq = binary.BigEndian.Uint32(chunk)
		f.Epoch = binary.BigEndian.Uint32(chunk[4:])
		f.TimeSec = math.Float64frombits(binary.BigEndian.Uint64(chunk[8:]))
		f.TTFSec = math.Float64frombits(binary.BigEndian.Uint64(chunk[16:]))
		switch chunk[24] {
		case 0:
		case 1:
			f.CrashExpected = true
		default:
			return errFrameField
		}
	case FrameResolve:
		chunk, err := fixed(9)
		if err != nil {
			return err
		}
		f.Kind = ResolveKind(chunk[0])
		if f.Kind != ResolveCrash && f.Kind != ResolveCensored {
			return errFrameField
		}
		f.CrashTimeSec = math.Float64frombits(binary.BigEndian.Uint64(chunk[1:]))
	case FrameReset, FrameClose:
		// No payload.
	case FrameError:
		chunk, err := fixed(2)
		if err != nil {
			return err
		}
		f.Code = ErrorCode(binary.BigEndian.Uint16(chunk))
		if f.Message, b, err = takeString(b); err != nil {
			return err
		}
	default:
		return errFrameType
	}
	if len(b) != 0 {
		return errFrameField // trailing garbage: the frame lies about its length
	}
	return nil
}

// frameReader reads frames off one connection with a reusable buffer: steady
// state allocates nothing (the buffer grows to the largest frame seen, which
// the maxFrame bound caps).
type frameReader struct {
	r        io.Reader
	maxFrame int
	buf      []byte
}

func newFrameReader(r io.Reader, maxFrame int) *frameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	return &frameReader{r: r, maxFrame: maxFrame, buf: make([]byte, 256)}
}

// Next reads and verifies one frame into f. Errors are either io errors from
// the underlying reader (timeouts included) or the wire-level parse errors
// above.
func (fr *frameReader) Next(f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > fr.maxFrame {
		return errFrameTooBig
	}
	if n < 1 {
		return errFrameTrunc
	}
	if cap(fr.buf) < n+4 {
		fr.buf = make([]byte, n+4)
	}
	buf := fr.buf[:n+4]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return err
	}
	body := buf[:n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[n:]) {
		return errFrameCRC
	}
	return DecodeFrameBody(body, f)
}
