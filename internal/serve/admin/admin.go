// Package admin is the shared HTTP observability endpoint of the serving
// binaries (agingfleet -listen, agingserve): the process-wide metrics registry
// in Prometheus text format, a JSON liveness probe, and the standard runtime
// profiles. It was factored out of cmd/agingfleet so every daemon exposes the
// same surface:
//
//	/metrics         — obs.Default in Prometheus text format (version 0.0.4)
//	/healthz         — JSON liveness: uptime plus the serving epoch and fleet
//	                   progress, read straight from the registry
//	/debug/pprof/... — the standard runtime profiles
//
// Everything is read-only and observation-only: scraping never touches a
// deterministic run or a live session. Register is split from Start so the
// handlers are testable without a listener, and so a daemon that already owns
// an HTTP mux (agingserve's NDJSON listener) can graft the endpoints onto it.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"agingpred/internal/obs"
)

// Register installs the observability endpoints on mux. start anchors the
// /healthz uptime.
func Register(mux *http.ServeMux, start time.Time) {
	mux.HandleFunc("/metrics", Metrics)
	mux.HandleFunc("/healthz", healthz(start))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Mux builds a mux carrying only the observability endpoints.
func Mux(start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	Register(mux, start)
	return mux
}

// Metrics serves the process-wide registry in the Prometheus text format.
func Metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// healthz answers a JSON liveness probe. The epoch and progress fields are
// read from the registry by series name, so the probe works identically for a
// fleet simulation and a network server without either linking the other.
func healthz(start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := obs.Default
		epoch := 1.0
		if v, ok := reg.Value("agingpred_current_epoch"); ok && v >= 1 {
			epoch = v
		}
		simTime, _ := reg.Value("agingpred_fleet_sim_time_seconds")
		ckpts, _ := reg.Value("agingpred_fleet_checkpoints_total")
		sessions, _ := reg.Value("agingpred_serve_sessions_active")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":       "ok",
			"uptime_sec":   time.Since(start).Seconds(),
			"epoch":        int(epoch),
			"sim_time_sec": simTime,
			"checkpoints":  int64(ckpts),
			"sessions":     int(sessions),
		})
	}
}

// Start binds addr and serves the observability mux in the background,
// returning the bound address (useful with ":0") and a stopper. A serving
// fleet never blocks on a scrape; slow clients only delay their own
// responses.
func Start(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Mux(time.Now())}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
