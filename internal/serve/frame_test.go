package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
)

// sampleFrames is one well-formed frame of every type, with every field of
// that type populated (including awkward values: NaN payloads, empty and
// non-empty strings), so the round-trip test and the fuzz seed corpus cover
// the full vocabulary.
func sampleFrames() []Frame {
	var vec [monitor.NumFields]float64
	for i := range vec {
		vec[i] = float64(i) * 1.25
	}
	vec[3] = math.Inf(1)
	vec[7] = math.NaN()
	return []Frame{
		{Type: FrameHello, Version: ProtocolVersion, Flags: 0x00ff, Schema: "full"},
		{Type: FrameHello, Version: ProtocolVersion, Schema: ""},
		{Type: FrameWelcome, Version: ProtocolVersion, Epoch: 42, ModelKind: "m5p", Schema: "full"},
		{Type: FrameCheckpoint, Seq: 123456, Vec: vec},
		{Type: FramePredict, Seq: 99, Epoch: 7, TimeSec: 1234.5, TTFSec: 8765.4321, CrashExpected: true},
		{Type: FramePredict, Seq: 0, Epoch: 1, TimeSec: 0, TTFSec: math.Inf(1)},
		{Type: FrameResolve, Kind: ResolveCrash, CrashTimeSec: 4321.125},
		{Type: FrameResolve, Kind: ResolveCensored},
		{Type: FrameReset},
		{Type: FrameClose},
		{Type: FrameError, Code: ErrCodeDraining, Message: "server is draining"},
		{Type: FrameError, Code: ErrCodeMalformed, Message: ""},
	}
}

// frameEq compares two frames with NaN-tolerant float equality (the wire
// carries raw IEEE-754 bits, so NaN must survive the trip even though
// NaN != NaN).
func frameEq(a, b *Frame) bool {
	bits := math.Float64bits
	if a.Type != b.Type || a.Version != b.Version || a.Flags != b.Flags ||
		a.Schema != b.Schema || a.Epoch != b.Epoch || a.ModelKind != b.ModelKind ||
		a.Seq != b.Seq || bits(a.TimeSec) != bits(b.TimeSec) ||
		bits(a.TTFSec) != bits(b.TTFSec) || a.CrashExpected != b.CrashExpected ||
		a.Kind != b.Kind || bits(a.CrashTimeSec) != bits(b.CrashTimeSec) ||
		a.Code != b.Code || a.Message != b.Message {
		return false
	}
	for i := range a.Vec {
		if bits(a.Vec[i]) != bits(b.Vec[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	frames := sampleFrames()
	for _, f := range frames {
		var err error
		wire, err = AppendFrame(wire, &f)
		if err != nil {
			t.Fatalf("AppendFrame(%s): %v", f.Type, err)
		}
	}
	fr := newFrameReader(bytes.NewReader(wire), DefaultMaxFrameBytes)
	var got Frame
	for i, want := range frames {
		if err := fr.Next(&got); err != nil {
			t.Fatalf("frame %d (%s): %v", i, want.Type, err)
		}
		if !frameEq(&got, &want) {
			t.Errorf("frame %d (%s) round-trip mismatch:\n got %+v\nwant %+v", i, want.Type, got, want)
		}
	}
	if err := fr.Next(&got); err != io.EOF {
		t.Fatalf("after the last frame: got %v, want io.EOF", err)
	}
}

// encodeBody returns just the body bytes (type + payload) of one frame, for
// driving DecodeFrameBody directly.
func encodeBody(t *testing.T, f *Frame) []byte {
	t.Helper()
	wire, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame(%s): %v", f.Type, err)
	}
	return wire[4 : len(wire)-4]
}

func TestFrameRejects(t *testing.T) {
	checkpoint := encodeBody(t, &Frame{Type: FrameCheckpoint, Seq: 1})
	hello := encodeBody(t, &Frame{Type: FrameHello, Version: ProtocolVersion, Schema: "full"})

	t.Run("truncated payload", func(t *testing.T) {
		var f Frame
		for n := 0; n < len(checkpoint); n++ {
			if err := DecodeFrameBody(checkpoint[:n], &f); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		var f Frame
		if err := DecodeFrameBody(append(append([]byte{}, checkpoint...), 0), &f); !errors.Is(err, errFrameField) {
			t.Fatalf("got %v, want errFrameField", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		var f Frame
		if err := DecodeFrameBody([]byte{0xee}, &f); !errors.Is(err, errFrameType) {
			t.Fatalf("got %v, want errFrameType", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, hello...)
		bad[1] = 'X'
		var f Frame
		if err := DecodeFrameBody(bad, &f); !errors.Is(err, errFrameMagic) {
			t.Fatalf("got %v, want errFrameMagic", err)
		}
	})
	t.Run("bad vector length", func(t *testing.T) {
		bad := append([]byte{}, checkpoint...)
		bad[5] = monitor.NumFields + 1 // the declared vector length byte
		var f Frame
		if err := DecodeFrameBody(bad, &f); !errors.Is(err, errFrameVecSize) {
			t.Fatalf("got %v, want errFrameVecSize", err)
		}
	})
	t.Run("bad resolve kind", func(t *testing.T) {
		bad := encodeBody(t, &Frame{Type: FrameResolve, Kind: ResolveCrash})
		bad[1] = 9
		var f Frame
		if err := DecodeFrameBody(bad, &f); !errors.Is(err, errFrameField) {
			t.Fatalf("got %v, want errFrameField", err)
		}
	})
	t.Run("bad crash-expected flag", func(t *testing.T) {
		bad := encodeBody(t, &Frame{Type: FramePredict})
		bad[len(bad)-1] = 2
		var f Frame
		if err := DecodeFrameBody(bad, &f); !errors.Is(err, errFrameField) {
			t.Fatalf("got %v, want errFrameField", err)
		}
	})

	// The envelope-level rejections need a frameReader.
	wireOf := func(f *Frame) []byte {
		wire, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	t.Run("oversized length prefix", func(t *testing.T) {
		wire := wireOf(&Frame{Type: FrameReset})
		binary.BigEndian.PutUint32(wire, 1<<30)
		var f Frame
		if err := newFrameReader(bytes.NewReader(wire), DefaultMaxFrameBytes).Next(&f); !errors.Is(err, errFrameTooBig) {
			t.Fatalf("got %v, want errFrameTooBig", err)
		}
	})
	t.Run("zero length prefix", func(t *testing.T) {
		wire := wireOf(&Frame{Type: FrameReset})
		binary.BigEndian.PutUint32(wire, 0)
		var f Frame
		if err := newFrameReader(bytes.NewReader(wire), DefaultMaxFrameBytes).Next(&f); !errors.Is(err, errFrameTrunc) {
			t.Fatalf("got %v, want errFrameTrunc", err)
		}
	})
	t.Run("corrupt CRC", func(t *testing.T) {
		wire := wireOf(&Frame{Type: FrameError, Code: ErrCodeIdle, Message: "x"})
		wire[len(wire)-1] ^= 0xff
		var f Frame
		if err := newFrameReader(bytes.NewReader(wire), DefaultMaxFrameBytes).Next(&f); !errors.Is(err, errFrameCRC) {
			t.Fatalf("got %v, want errFrameCRC", err)
		}
	})
	t.Run("corrupt body fails CRC before parsing", func(t *testing.T) {
		wire := wireOf(&Frame{Type: FrameCheckpoint, Seq: 7})
		wire[10] ^= 0x01
		var f Frame
		if err := newFrameReader(bytes.NewReader(wire), DefaultMaxFrameBytes).Next(&f); !errors.Is(err, errFrameCRC) {
			t.Fatalf("got %v, want errFrameCRC", err)
		}
	})
}

// TestAppendFrameRejectsOversizedStrings pins the encoder's only failure mode:
// strings longer than a uint16 length prefix.
func TestAppendFrameRejectsOversizedStrings(t *testing.T) {
	huge := string(make([]byte, math.MaxUint16+1))
	for _, f := range []Frame{
		{Type: FrameHello, Schema: huge},
		{Type: FrameWelcome, ModelKind: huge},
		{Type: FrameError, Message: huge},
	} {
		if _, err := AppendFrame(nil, &f); !errors.Is(err, errFrameField) {
			t.Errorf("AppendFrame(%s with oversized string): got %v, want errFrameField", f.Type, err)
		}
	}
	if _, err := AppendFrame(nil, &Frame{Type: FrameType(200)}); !errors.Is(err, errFrameType) {
		t.Errorf("AppendFrame(unknown type): got %v, want errFrameType", err)
	}
}

// batchedTranscriptBodies replays a short live conversation against a batched
// server — HELLO through checkpoint streaming, crash→RESOLVE→RESET, a censored
// resolve and a CLOSE echo — and returns the body bytes of every frame that
// crossed the wire in either direction. Seeding the fuzz corpus with a real
// batched transcript covers the value shapes the batched path actually emits
// (replay-driven vectors, deadline-flushed predictions, epoch fields), not
// just the hand-built samples above.
func batchedTranscriptBodies(f *testing.F) [][]byte {
	srv, err := Start(Config{
		Model:       goldenModel(f),
		TCPAddr:     "127.0.0.1:0",
		HTTPAddr:    "127.0.0.1:0",
		Batch:       4,
		BatchWindow: 100 * time.Microsecond,
		BatchShards: 1,
	})
	if err != nil {
		f.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	nc, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		f.Fatal(err)
	}
	defer nc.Close()
	fr := newFrameReader(nc, DefaultMaxFrameBytes)

	var bodies [][]byte
	send := func(fm *Frame) {
		wire, err := AppendFrame(nil, fm)
		if err != nil {
			f.Fatalf("encoding %d for the transcript: %v", fm.Type, err)
		}
		bodies = append(bodies, wire[4:len(wire)-4])
		if _, err := nc.Write(wire); err != nil {
			f.Fatalf("writing frame type %d: %v", fm.Type, err)
		}
	}
	recv := func(want FrameType) {
		var got Frame
		if err := fr.Next(&got); err != nil {
			f.Fatalf("reading reply (want type %d): %v", want, err)
		}
		if got.Type != want {
			f.Fatalf("reply type %d, want %d", got.Type, want)
		}
		// Re-encoding recovers the exact body bytes: TestFrameRoundTrip and
		// the bijection property below pin encode∘decode as the identity.
		wire, err := AppendFrame(nil, &got)
		if err != nil {
			f.Fatalf("re-encoding reply type %d: %v", got.Type, err)
		}
		bodies = append(bodies, wire[4:len(wire)-4])
	}

	send(&Frame{Type: FrameHello, Version: ProtocolVersion})
	recv(FrameWelcome)
	replay := fleet.NewReplay(1, fleet.Specs(1, 1)[0])
	var seq uint32
	for n := 0; n < 40; n++ {
		var cp monitor.Checkpoint
		if replay.Step(&cp) {
			send(&Frame{Type: FrameResolve, Kind: ResolveCrash, CrashTimeSec: replay.TimeSec()})
			send(&Frame{Type: FrameReset})
			replay.Restart()
			continue
		}
		seq++
		send(&Frame{Type: FrameCheckpoint, Seq: seq, Vec: *cp.Vec()})
		recv(FramePredict)
	}
	send(&Frame{Type: FrameResolve, Kind: ResolveCensored})
	send(&Frame{Type: FrameClose})
	recv(FrameClose)
	return bodies
}

// FuzzDecodeFrame pins the decoder's two safety properties on arbitrary
// bodies: it never panics, and every body it accepts re-encodes to exactly
// the bytes that produced it (decode(encode(f)) == f, frame-wide). The second
// property is what rules out silently-ignored payload bytes — a decoder that
// skipped trailing garbage would accept bodies its encoder can never emit.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range sampleFrames() {
		wire, err := AppendFrame(nil, &s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire[4 : len(wire)-4])
	}
	f.Add([]byte{})
	f.Add([]byte{byte(FrameCheckpoint), 0, 0, 0, 1, monitor.NumFields})
	for _, body := range batchedTranscriptBodies(f) {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var fr Frame
		if err := DecodeFrameBody(body, &fr); err != nil {
			return
		}
		wire, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("accepted body does not re-encode: %v", err)
		}
		got := wire[4 : len(wire)-4]
		if !bytes.Equal(got, body) {
			t.Fatalf("decode/encode not a bijection:\n body %x\n re-enc %x", body, got)
		}
		if crc32.ChecksumIEEE(got) != crc32.ChecksumIEEE(body) {
			t.Fatal("CRC mismatch on identical bytes (unreachable)")
		}
	})
}
