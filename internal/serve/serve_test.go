package serve

// Lifecycle and end-to-end tests: both transports against a real loopback
// listener, checked bit-for-bit against local reference sessions, plus the
// session-table edges — idle eviction, a full table, draining, hot model
// reload — and a -race workout of many connections against one adaptive
// Supervisor.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"agingpred/internal/adapt"
	"agingpred/internal/core"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
)

// goldenModel loads the committed deterministic seed-1 artifact — the same
// model the CI smoke test serves — so tests need no training pass.
func goldenModel(t testing.TB) *core.Model {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "core", "testdata", "model_m5p_seed1.golden"))
	if err != nil {
		t.Fatalf("opening golden model: %v", err)
	}
	defer f.Close()
	m, err := core.DecodeModel(f)
	if err != nil {
		t.Fatalf("decoding golden model: %v", err)
	}
	return m
}

// startServer runs one server on ephemeral loopback ports with test-friendly
// overrides, cleaned up with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.TCPAddr == "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	srv, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// dialBoth returns one open connection per transport, keyed by name.
func dialBoth(t *testing.T, srv *Server) map[string]Conn {
	t.Helper()
	bc, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	hc, err := DialHTTP("http://"+srv.HTTPAddr(), "")
	if err != nil {
		t.Fatalf("DialHTTP: %v", err)
	}
	return map[string]Conn{"binary": bc, "http": hc}
}

// TestServeBitIdentical is the core served-equals-local contract on both
// transports: every prediction that comes back over the wire must carry
// exactly the float64 bits a local reference session produces for the same
// checkpoint stream — including across a RESOLVE/RESET cycle, which by the
// wire contract behaves like a brand-new connection.
func TestServeBitIdentical(t *testing.T) {
	model := goldenModel(t)
	srv := startServer(t, Config{Model: model})
	spec := fleet.Specs(11, 1)[0]

	for name, conn := range dialBoth(t, srv) {
		t.Run(name, func(t *testing.T) {
			defer conn.Close()
			replay := fleet.NewReplay(11, spec)
			ref := model.NewSession()
			var cp monitor.Checkpoint
			for phase := 0; phase < 2; phase++ {
				for i := 1; i <= 64; i++ {
					if replay.Step(&cp) {
						t.Fatalf("phase %d: instance crashed during the test window", phase)
					}
					want, err := ref.Observe(cp)
					if err != nil {
						t.Fatal(err)
					}
					if err := conn.Send(uint32(i), &cp); err != nil {
						t.Fatal(err)
					}
					got, err := conn.Recv()
					if err != nil {
						t.Fatal(err)
					}
					if got.Seq != uint32(i) {
						t.Fatalf("phase %d seq %d: echoed seq %d", phase, i, got.Seq)
					}
					if math.Float64bits(got.TimeSec) != math.Float64bits(want.TimeSec) ||
						math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) ||
						got.CrashExpected != want.CrashExpected {
						t.Fatalf("phase %d seq %d: served (t=%v ttf=%v crash=%v) != local (t=%v ttf=%v crash=%v)",
							phase, i, got.TimeSec, got.TTFSec, got.CrashExpected,
							want.TimeSec, want.TTFSec, want.CrashExpected)
					}
				}
				// Stream boundary: resolve, reset server-side, and hold the
				// reference to the same contract with a genuinely new session.
				if err := conn.Resolve(ResolveCensored, 0); err != nil {
					t.Fatal(err)
				}
				if err := conn.Reset(); err != nil {
					t.Fatal(err)
				}
				replay.Restart()
				ref = model.NewSession()
			}
		})
	}
}

// TestIdleEviction pins the idle timeout: a session that goes quiet receives
// a typed ErrCodeIdle refusal and its table slot is reclaimed.
func TestIdleEviction(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t), IdleTimeout: 100 * time.Millisecond})
	dialers := map[string]func() (Conn, error){
		"binary": func() (Conn, error) { return Dial(srv.TCPAddr(), "") },
		"http":   func() (Conn, error) { return DialHTTP("http://"+srv.HTTPAddr(), "") },
	}
	for name, dial := range dialers {
		t.Run(name, func(t *testing.T) {
			conn, err := dial()
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			var cp monitor.Checkpoint
			if err := conn.Send(1, &cp); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Recv(); err != nil {
				t.Fatalf("first prediction: %v", err)
			}
			// Now idle past the timeout; the next read must surface the typed
			// eviction, not hang.
			_, err = conn.Recv()
			var se *ServerError
			if !errors.As(err, &se) || se.Code != ErrCodeIdle {
				t.Fatalf("idle Recv: got %v, want *ServerError{idle}", err)
			}
		})
	}
	waitFor(t, time.Second, func() bool { return srv.Sessions() == 0 })
}

// TestMaxSessions pins the bounded session table: with the table full, a TCP
// HELLO is refused with ErrCodeTooManySessions and an HTTP stream with 503 —
// and the slot frees once an admitted session closes.
func TestMaxSessions(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t), MaxSessions: 1})
	first, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatalf("admitting dial: %v", err)
	}

	_, err = Dial(srv.TCPAddr(), "")
	var se *ServerError
	if !errors.As(err, &se) || se.Code != ErrCodeTooManySessions {
		t.Fatalf("second dial: got %v, want *ServerError{too-many-sessions}", err)
	}

	hc, err := DialHTTP("http://"+srv.HTTPAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	var cp monitor.Checkpoint
	hc.Send(1, &cp)
	_, err = hc.Recv()
	if !errors.As(err, &se) || se.Code != ErrCodeTooManySessions {
		t.Fatalf("http stream with a full table: got %v, want *ServerError{too-many-sessions}", err)
	}
	hc.Close()

	first.Close()
	waitFor(t, time.Second, func() bool { return srv.Sessions() == 0 })
	third, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatalf("dial after the slot freed: %v", err)
	}
	third.Close()
}

// TestHandshakeRefusals covers the typed HELLO rejections: wrong protocol
// version, wrong schema, and garbage instead of a frame.
func TestHandshakeRefusals(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t)})

	t.Run("schema mismatch", func(t *testing.T) {
		_, err := Dial(srv.TCPAddr(), "no-such-schema")
		var se *ServerError
		if !errors.As(err, &se) || se.Code != ErrCodeSchema {
			t.Fatalf("got %v, want *ServerError{schema}", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		se := rawHello(t, srv.TCPAddr(), func(f *Frame) { f.Version = ProtocolVersion + 1 })
		if se.Code != ErrCodeVersion {
			t.Fatalf("got %v, want version", se.Code)
		}
	})
	t.Run("checkpoint before hello", func(t *testing.T) {
		se := rawHello(t, srv.TCPAddr(), func(f *Frame) { f.Type = FrameCheckpoint })
		if se.Code != ErrCodeProtocol {
			t.Fatalf("got %v, want protocol", se.Code)
		}
	})
	t.Run("garbage bytes", func(t *testing.T) {
		nc, err := net.Dial("tcp", srv.TCPAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		// A plausible length prefix followed by a body whose CRC cannot match.
		garbage := []byte{0, 0, 0, 4, 'G', 'E', 'T', ' ', 0, 0, 0, 0}
		if _, err := nc.Write(garbage); err != nil {
			t.Fatal(err)
		}
		var f Frame
		fr := newFrameReader(nc, DefaultMaxFrameBytes)
		if err := fr.Next(&f); err != nil {
			t.Fatalf("reading the refusal: %v", err)
		}
		if f.Type != FrameError || f.Code != ErrCodeMalformed {
			t.Fatalf("got %s/%s, want ERROR/malformed", f.Type, f.Code)
		}
	})
}

// rawHello opens a raw TCP connection, sends one mutated HELLO and returns
// the typed refusal.
func rawHello(t *testing.T, addr string, mutate func(*Frame)) *ServerError {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := Frame{Type: FrameHello, Version: ProtocolVersion}
	mutate(&hello)
	wire, err := AppendFrame(nil, &hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(wire); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := newFrameReader(nc, DefaultMaxFrameBytes).Next(&f); err != nil {
		t.Fatalf("reading the refusal: %v", err)
	}
	if f.Type != FrameError {
		t.Fatalf("got %s, want ERROR", f.Type)
	}
	return &ServerError{Code: f.Code, Message: f.Message}
}

// TestOversizedFrameRefused pins the max-frame bound end to end: a length
// prefix over the configured limit draws a malformed refusal, not an
// allocation.
func TestOversizedFrameRefused(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t), MaxFrameBytes: 256})
	nc, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := newFrameReader(nc, DefaultMaxFrameBytes).Next(&f); err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError || f.Code != ErrCodeMalformed {
		t.Fatalf("got %s/%s, want ERROR/malformed", f.Type, f.Code)
	}
}

// TestDrain pins graceful shutdown on both transports: in-flight streams get
// a typed ErrCodeDraining refusal (not a dropped socket), new dials are
// refused, and Drain returns once the table empties.
func TestDrain(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t)})
	conns := dialBoth(t, srv)
	var cp monitor.Checkpoint
	for name, conn := range conns {
		if err := conn.Send(1, &cp); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := conn.Recv(); err != nil {
			t.Fatalf("%s first prediction: %v", name, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(ctx) }()
	waitFor(t, time.Second, srv.Draining)

	for name, conn := range conns {
		// The blocked read is nudged awake; with sends racing the nudge the
		// refusal may take one extra exchange to surface.
		var se *ServerError
		var err error
		for range 3 {
			if _, err = conn.Recv(); errors.As(err, &se) {
				break
			}
			conn.Send(2, &cp)
		}
		if se == nil || se.Code != ErrCodeDraining {
			t.Fatalf("%s mid-drain Recv: got %v, want *ServerError{draining}", name, err)
		}
		conn.Close()
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := Dial(srv.TCPAddr(), ""); err == nil {
		t.Fatal("dial after drain succeeded")
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions after drain: %d", srv.Sessions())
	}
}

// TestHotSwapAtReset pins the reload boundary: a published model reaches a
// live connection at its next RESET, never mid-stream, and post-swap
// predictions are bit-identical to a fresh session of the new model.
func TestHotSwapAtReset(t *testing.T) {
	m1 := goldenModel(t)
	m2, err := fleet.TrainModel(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Model: m1})
	conn, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Epoch() != 1 {
		t.Fatalf("handshake epoch: %d", conn.Epoch())
	}

	replay := fleet.NewReplay(3, fleet.Specs(3, 1)[0])
	var cp monitor.Checkpoint
	step := func(seq uint32) Prediction {
		t.Helper()
		replay.Step(&cp)
		if err := conn.Send(seq, &cp); err != nil {
			t.Fatal(err)
		}
		p, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if p := step(1); p.Epoch != 1 {
		t.Fatalf("pre-swap epoch: %d", p.Epoch)
	}
	seq, err := srv.SwapModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("SwapModel returned epoch %d", seq)
	}
	// Mid-stream: still the old epoch.
	if p := step(2); p.Epoch != 1 {
		t.Fatalf("mid-stream epoch after swap: %d (swap leaked mid-stream)", p.Epoch)
	}
	if err := conn.Reset(); err != nil {
		t.Fatal(err)
	}
	// Post-reset: the new epoch, bit-identical to a fresh session of m2.
	replay.Restart()
	ref := m2.NewSession()
	for i := uint32(1); i <= 16; i++ {
		replay.Step(&cp)
		want, err := ref.Observe(cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(i, &cp); err != nil {
			t.Fatal(err)
		}
		got, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != 2 {
			t.Fatalf("post-reset epoch: %d", got.Epoch)
		}
		if math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) {
			t.Fatalf("post-swap seq %d: served ttf %v != local %v", i, got.TTFSec, want.TTFSec)
		}
	}
}

// TestAdaptiveConcurrent is the -race workout: many connections across both
// transports hammering one adaptive Supervisor while its pump retrains and
// publishes, with crash resolutions and resets in the mix.
func TestAdaptiveConcurrent(t *testing.T) {
	sup, err := adapt.NewSupervisor(adapt.Config{MinFreshRuns: 2}, goldenModel(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Supervisor: sup, AdaptEvery: time.Millisecond})
	if !srv.Adaptive() {
		t.Fatal("server not adaptive")
	}

	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs <- func() error {
				var conn Conn
				var err error
				if w%2 == 0 {
					conn, err = Dial(srv.TCPAddr(), "")
				} else {
					conn, err = DialHTTP("http://"+srv.HTTPAddr(), "")
				}
				if err != nil {
					return fmt.Errorf("conn %d: %w", w, err)
				}
				defer conn.Close()
				replay := fleet.NewReplay(uint64(100+w), fleet.Specs(uint64(100+w), 1)[0])
				var cp monitor.Checkpoint
				for i := uint32(1); i <= 200; i++ {
					crashed := replay.Step(&cp)
					if !crashed {
						if err := conn.Send(i, &cp); err != nil {
							return fmt.Errorf("conn %d send %d: %w", w, i, err)
						}
						if _, err := conn.Recv(); err != nil {
							return fmt.Errorf("conn %d recv %d: %w", w, i, err)
						}
					}
					if crashed || i%64 == 0 {
						kind, ts := ResolveCensored, 0.0
						if crashed {
							kind, ts = ResolveCrash, replay.TimeSec()
						}
						if err := conn.Resolve(kind, ts); err != nil {
							return fmt.Errorf("conn %d resolve: %w", w, err)
						}
						if err := conn.Reset(); err != nil {
							return fmt.Errorf("conn %d reset: %w", w, err)
						}
						replay.Restart()
					}
				}
				return nil
			}()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestCRCIsIEEE pins the checksum choice into the wire contract: third-party
// clients hard-code it.
func TestCRCIsIEEE(t *testing.T) {
	if got := crc32.ChecksumIEEE([]byte("agingpred")); got != 0x1ee2c2ab {
		t.Fatalf("crc32(\"agingpred\") = %#x, want 0x1ee2c2ab (IEEE)", got)
	}
}

// TestCloseHandshake pins the graceful close: CLOSE draws a CLOSE echo on the
// binary transport, then EOF.
func TestCloseHandshake(t *testing.T) {
	srv := startServer(t, Config{Model: goldenModel(t)})
	nc, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wire, _ := AppendFrame(nil, &Frame{Type: FrameHello, Version: ProtocolVersion})
	wire, _ = AppendFrame(wire, &Frame{Type: FrameClose})
	if _, err := nc.Write(wire); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(nc, DefaultMaxFrameBytes)
	var f Frame
	if err := fr.Next(&f); err != nil || f.Type != FrameWelcome {
		t.Fatalf("WELCOME: %v %s", err, f.Type)
	}
	if err := fr.Next(&f); err != nil || f.Type != FrameClose {
		t.Fatalf("CLOSE echo: %v %s", err, f.Type)
	}
	if err := fr.Next(&f); err != io.EOF {
		t.Fatalf("after CLOSE: got %v, want io.EOF", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
