// Package serve is the network front-end of the prediction service: it puts a
// listener on the library's train-once/serve-everywhere core, turning the
// paper's on-line predictor into a daemon a monitored application server can
// stream its 15-second checkpoints to over a socket.
//
// Two transports share one session core:
//
//   - a compact length-prefixed binary frame protocol over raw TCP (frame.go)
//     for the hot path — pipelined CHECKPOINT in / PREDICT out, CRC-checked,
//     versioned, fuzz-hardened;
//   - NDJSON streaming over net/http (http.go) — one chunked POST per stream —
//     for debuggability: the same conversation, readable with curl.
//
// Each connection (or POST) owns exactly one per-stream session of the shared
// immutable model — a core.Session, or an adaptive adapt.Stream when the
// server runs under a Supervisor, in which case RESOLVE frames feed the
// drift detector and training buffer exactly like the in-process fleet. A
// bounded session table enforces max-sessions and idle timeouts, SIGTERM
// drains (in-flight predictions complete, new frames are refused with a typed
// ERROR), and SwapModel hot-reloads a freshly-loaded artifact through the
// same epoch machinery live streams already adopt at their next RESET.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"agingpred/internal/adapt"
	"agingpred/internal/core"
	"agingpred/internal/monitor"
	"agingpred/internal/serve/admin"
)

// Defaults for the session table.
const (
	// DefaultMaxSessions bounds concurrently-open sessions across both
	// transports.
	DefaultMaxSessions = 4096
	// DefaultIdleTimeout evicts a session that has sent nothing for this
	// long.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultAdaptEvery is how often the adaptive pump offers the Supervisor
	// a retrain/publish opportunity.
	DefaultAdaptEvery = time.Second
)

// Config describes one prediction server. Exactly one of Model and
// Supervisor must be set: Model serves frozen per-connection core.Sessions,
// Supervisor serves adaptive adapt.Streams (drift detection, label
// resolution via RESOLVE frames, background retraining, hot epoch swaps).
type Config struct {
	// Model is the immutable model served in frozen mode.
	Model *core.Model
	// Supervisor switches the server to adaptive serving; it wins over Model.
	Supervisor *adapt.Supervisor

	// TCPAddr is the binary frame protocol listen address ("" = no TCP
	// transport). ":0" picks an ephemeral port, reported by Server.TCPAddr.
	TCPAddr string
	// HTTPAddr is the NDJSON-over-HTTP listen address ("" = no HTTP
	// transport). The listener also carries the shared admin endpoints
	// (/metrics, /healthz, /debug/pprof).
	HTTPAddr string

	// MaxSessions bounds concurrently-open sessions across both transports
	// (0 = DefaultMaxSessions). Beyond it, TCP HELLOs are refused with
	// ErrCodeTooManySessions and POSTs with 503.
	MaxSessions int
	// MaxFrameBytes bounds one binary frame body (0 = DefaultMaxFrameBytes).
	MaxFrameBytes int
	// IdleTimeout evicts sessions that send nothing for this long
	// (0 = DefaultIdleTimeout; negative = no idle eviction).
	IdleTimeout time.Duration
	// AdaptEvery is the adaptive pump period: how often the server offers
	// the Supervisor a StartRetrain/TryPublish opportunity
	// (0 = DefaultAdaptEvery). Ignored in frozen mode.
	AdaptEvery time.Duration

	// Batch enables cross-connection micro-batched serving on the binary
	// transport: checkpoints from all live connections are staged into
	// per-model-epoch batch groups and evaluated with one PredictBatch sweep
	// per flush, at most Batch rows per flush (0 = scalar serving, one inline
	// evaluation per frame). Replies stay bit-identical to scalar mode; the
	// NDJSON/HTTP transport is the debug path and always serves scalar.
	Batch int
	// BatchWindow bounds how long a staged checkpoint may wait for its batch
	// to fill before a deadline flush evaluates it anyway
	// (0 = DefaultBatchWindow). Ignored when Batch is 0.
	BatchWindow time.Duration
	// BatchShards is the number of independent batching shards; sessions are
	// assigned by FNV-1a hash of their session ID, the fleet's shard
	// discipline (0 = GOMAXPROCS). Ignored when Batch is 0.
	BatchShards int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = DefaultAdaptEvery
	}
	if c.Batch < 0 {
		c.Batch = 0
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = DefaultBatchWindow
	}
	if c.BatchShards <= 0 {
		c.BatchShards = runtime.GOMAXPROCS(0)
	}
	return c
}

// modelEpoch is one generation of the frozen-mode serving model — the
// counterpart of adapt.Epoch for servers without a Supervisor, so hot model
// reload works identically in both modes: SwapModel publishes a new epoch
// through an atomic pointer and live sessions adopt it at their next RESET.
type modelEpoch struct {
	seq   uint32
	model *core.Model
}

// Server is one running prediction service.
type Server struct {
	cfg   Config
	sup   *adapt.Supervisor          // adaptive mode, nil otherwise
	epoch atomic.Pointer[modelEpoch] // frozen mode, nil otherwise

	draining atomic.Bool
	start    time.Time

	tcpLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	cond   *sync.Cond // broadcast when active drops
	conns  map[net.Conn]struct{}
	active int
	closed bool

	batcher  *batcher // batched binary serving, nil in scalar mode
	stopPump chan struct{}
	wg       sync.WaitGroup
}

// Start validates the configuration, binds the configured listeners and
// begins serving in the background. Stop with Drain (graceful) or Close
// (immediate).
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Supervisor == nil && cfg.Model == nil {
		return nil, errors.New("serve: config needs a Model or a Supervisor")
	}
	if cfg.Supervisor == nil && cfg.Model.Schema() == nil {
		return nil, errors.New("serve: supplied model is not a trained model (zero core.Model)")
	}
	if cfg.TCPAddr == "" && cfg.HTTPAddr == "" {
		return nil, errors.New("serve: config needs a TCPAddr or an HTTPAddr to listen on")
	}
	s := &Server{cfg: cfg, sup: cfg.Supervisor, start: time.Now(), conns: make(map[net.Conn]struct{})}
	s.cond = sync.NewCond(&s.mu)
	if s.sup == nil {
		s.epoch.Store(&modelEpoch{seq: 1, model: cfg.Model})
	}
	if cfg.Batch > 0 && cfg.TCPAddr != "" {
		s.batcher = newBatcher(s, cfg.Batch, cfg.BatchShards, cfg.BatchWindow)
	}
	if cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", cfg.TCPAddr)
		if err != nil {
			return nil, fmt.Errorf("serve: binding tcp %s: %w", cfg.TCPAddr, err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln)
	}
	if cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			if s.tcpLn != nil {
				s.tcpLn.Close()
			}
			return nil, fmt.Errorf("serve: binding http %s: %w", cfg.HTTPAddr, err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{
			Handler: s.Handler(),
			// Stash the net.Conn so the streaming handler can register with
			// the drain machinery (blocked reads get nudged awake).
			ConnContext: func(ctx context.Context, c net.Conn) context.Context {
				return context.WithValue(ctx, connKey{}, c)
			},
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.httpSrv.Serve(ln)
		}()
	}
	if s.sup != nil {
		s.stopPump = make(chan struct{})
		s.wg.Add(1)
		go s.adaptPump()
	}
	return s, nil
}

// TCPAddr returns the bound binary-transport address ("" when disabled).
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// HTTPAddr returns the bound HTTP-transport address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Handler returns the HTTP transport's handler: the NDJSON stream endpoint
// at /v1/stream plus the shared admin endpoints (/metrics, /healthz,
// /debug/pprof). Exposed so tests and embedding daemons can serve it without
// a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	admin.Register(mux, s.start)
	mux.HandleFunc("/v1/stream", s.handleStream)
	return mux
}

// Adaptive reports whether the server serves adaptive streams.
func (s *Server) Adaptive() bool { return s.sup != nil }

// currentModel returns the serving model and its epoch sequence number.
func (s *Server) currentModel() (*core.Model, uint32) {
	if s.sup != nil {
		ep := s.sup.Current()
		return ep.Model, uint32(ep.Seq)
	}
	ep := s.epoch.Load()
	return ep.model, ep.seq
}

// SwapModel publishes a freshly-loaded model as a new serving epoch — the hot
// reload path behind agingserve's SIGHUP handling. In adaptive mode it goes
// through the Supervisor's epoch machinery (live adapt.Streams adopt it at
// their next Reset, exactly like a retrained epoch); in frozen mode through
// the server's own atomic epoch pointer with the same adopt-at-RESET
// contract. It returns the new epoch sequence number.
func (s *Server) SwapModel(m *core.Model) (int, error) {
	if m == nil || m.Schema() == nil {
		return 0, errors.New("serve: SwapModel needs a trained model")
	}
	if s.sup != nil {
		seq, err := s.sup.PublishModel(m)
		if err != nil {
			return 0, err
		}
		mModelSwaps.Inc()
		return seq, nil
	}
	for {
		prev := s.epoch.Load()
		next := &modelEpoch{seq: prev.seq + 1, model: m}
		if s.epoch.CompareAndSwap(prev, next) {
			mModelSwaps.Inc()
			return int(next.seq), nil
		}
	}
}

// Sessions returns the number of currently-open sessions across both
// transports.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Draining reports whether the server is refusing new work for shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: listeners close, every blocked
// session is woken to finish its in-flight work and receive a typed
// ErrCodeDraining refusal for anything further, and Drain returns once the
// session table empties (or ctx expires, at which point remaining
// connections are force-closed). Safe to call once; Close afterwards is a
// no-op.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.active > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.Close()
	return err
}

// beginDrain flips the draining flag, stops accepting, and nudges every
// blocked connection awake so it can observe the flag.
func (s *Server) beginDrain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	mDraining.Set(1)
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		// Waking a blocked read lets the connection loop see the draining
		// flag now instead of at its next frame (or idle timeout).
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
}

// Close force-closes the listeners and every connection. Prefer Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.draining.Store(true)
	mDraining.Set(1)
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if s.stopPump != nil {
		close(s.stopPump)
	}
	s.wg.Wait()
	if s.batcher != nil {
		// Every connection goroutine has returned, so every session's terminal
		// op is already queued (or processed); the workers drain and exit.
		s.batcher.stop()
	}
	if s.sup != nil {
		s.sup.Discard()
	}
	mDraining.Set(0)
	return nil
}

// adaptPump periodically offers the Supervisor a retrain/publish opportunity.
// The pump — not the per-frame hot path — is where background adaptation
// advances, mirroring how the fleet driver pumps its supervisor between
// ticks.
func (s *Server) adaptPump() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AdaptEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopPump:
			return
		case <-t.C:
			s.sup.StartRetrain()
			if s.sup.TryPublish() {
				mModelSwaps.Inc()
			}
		}
	}
}

// acquireSession admits one session into the bounded table, or reports the
// table full.
func (s *Server) acquireSession() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active >= s.cfg.MaxSessions {
		return false
	}
	s.active++
	mActiveSessions.Set(float64(s.active))
	return true
}

// releaseSession returns one admitted session and wakes Drain waiters.
func (s *Server) releaseSession() {
	s.mu.Lock()
	s.active--
	mActiveSessions.Set(float64(s.active))
	s.cond.Broadcast()
	s.mu.Unlock()
}

// trackConn registers a connection for drain nudging and Close.
func (s *Server) trackConn(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// session is the transport-independent per-stream serving state: a frozen
// core.Session riding one model epoch, or an adaptive adapt.Stream. Both
// transports speak to exactly this, so the wire formats differ but the
// serving semantics cannot.
type session struct {
	srv    *Server
	ep     *modelEpoch   // frozen mode
	sess   *core.Session // frozen mode
	stream *adapt.Stream // adaptive mode
}

// newSession creates the per-stream state on the current model epoch. name
// labels the training runs an adaptive stream donates.
func (s *Server) newSession(name string) *session {
	if s.sup != nil {
		return &session{srv: s, stream: s.sup.NewStream(name)}
	}
	ep := s.epoch.Load()
	return &session{srv: s, ep: ep, sess: ep.model.NewSession()}
}

// observe consumes one checkpoint and returns the prediction.
func (ss *session) observe(cp monitor.Checkpoint) (core.Prediction, error) {
	if ss.stream != nil {
		return ss.stream.Observe(cp)
	}
	return ss.sess.Observe(cp)
}

// epochSeq is the sequence number PREDICT frames carry, so a client can see a
// hot swap land.
func (ss *session) epochSeq() uint32 {
	if ss.stream != nil {
		return uint32(ss.stream.Epoch())
	}
	return ss.ep.seq
}

// resolve applies a RESOLVE frame. Frozen sessions have no labels to
// resolve; the frame is accepted and ignored so one client speaks both
// modes.
func (ss *session) resolve(kind ResolveKind, crashTimeSec float64) {
	if ss.stream == nil {
		return
	}
	if kind == ResolveCrash {
		ss.stream.ResolveCrash(crashTimeSec)
	} else {
		ss.stream.ResolveCensored()
	}
}

// coreSession returns the underlying core.Session a batch stages — the
// extraction half of observe; Predict on the batch is the other half.
func (ss *session) coreSession() *core.Session {
	if ss.stream != nil {
		return ss.stream.Session()
	}
	return ss.sess
}

// record applies the bookkeeping half of an adaptive observe after a batch
// evaluated the session's staged row (frozen sessions have none): staging +
// batch Predict + record is exactly adapt.Stream.Observe, piecewise.
func (ss *session) record(cp *monitor.Checkpoint, pred core.Prediction) {
	if ss.stream != nil {
		ss.stream.Record(cp, pred)
	}
}

// reset starts a fresh stream on the connection, adopting the server's
// current model epoch — the boundary at which SwapModel (or an adaptive
// retrain) reaches this connection. Frozen mode builds a genuinely new
// session rather than recycling the old one's buffers: the wire contract is
// that a RESET stream is indistinguishable from a new connection, which is
// what lets agingload verify served predictions bit-for-bit against a local
// reference across crash/reset cycles. Resets happen at stream boundaries
// (crashes, rejuvenations), so the allocation is off the hot path.
func (ss *session) reset() {
	if ss.stream != nil {
		ss.stream.Reset()
		return
	}
	ss.ep = ss.srv.epoch.Load()
	ss.sess = ss.ep.model.NewSession()
}

// acceptLoop accepts binary-transport connections until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleConn speaks the binary frame protocol on one connection: HELLO →
// WELCOME, then pipelined CHECKPOINT/PREDICT with RESOLVE/RESET/CLOSE until
// the peer closes, idles out, or the server drains. One connection = one
// session.
func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	fr := newFrameReader(br, s.cfg.MaxFrameBytes)
	var f Frame
	var out []byte // reusable encode buffer

	refuse := func(code ErrorCode, msg string) {
		out, _ = AppendFrame(out[:0], &Frame{Type: FrameError, Code: code, Message: msg})
		bw.Write(out)
		out, _ = AppendFrame(out[:0], &Frame{Type: FrameClose})
		bw.Write(out)
		bw.Flush()
	}

	// The handshake runs under the idle deadline too: a connection that
	// never says HELLO must not pin a file descriptor forever.
	if s.cfg.IdleTimeout > 0 {
		nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	if err := fr.Next(&f); err != nil {
		mRejectHello.Inc()
		if !isTimeout(err) {
			refuse(ErrCodeMalformed, "expected HELLO: "+err.Error())
		}
		return
	}
	switch {
	case f.Type != FrameHello:
		mRejectHello.Inc()
		refuse(ErrCodeProtocol, "expected HELLO, got "+f.Type.String())
		return
	case f.Version != ProtocolVersion:
		mRejectHello.Inc()
		refuse(ErrCodeVersion, fmt.Sprintf("protocol version %d, server speaks %d", f.Version, ProtocolVersion))
		return
	}
	model, _ := s.currentModel()
	if f.Schema != "" && f.Schema != model.Schema().Name() {
		mRejectHello.Inc()
		refuse(ErrCodeSchema, fmt.Sprintf("serving schema %q, client asked for %q", model.Schema().Name(), f.Schema))
		return
	}
	if s.draining.Load() {
		mRejectDraining.Inc()
		refuse(ErrCodeDraining, "server is draining")
		return
	}
	if !s.acquireSession() {
		mRejectSessions.Inc()
		refuse(ErrCodeTooManySessions, fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions))
		return
	}
	defer s.releaseSession()
	s.trackConn(nc)
	defer s.untrackConn(nc)

	sess := s.newSession(nc.RemoteAddr().String())
	tcpMetrics.sessions.Inc()
	model, epoch := s.currentModel()
	out, _ = AppendFrame(out[:0], &Frame{
		Type:      FrameWelcome,
		Version:   ProtocolVersion,
		Epoch:     epoch,
		ModelKind: string(model.Kind()),
		Schema:    model.Schema().Name(),
	})
	bw.Write(out)
	bw.Flush()

	if s.batcher != nil {
		// Batched mode: from here on the connection is split between a reader
		// (this goroutine), its shard's worker, and a writer goroutine; the
		// deferred close runs only after the writer has delivered everything.
		s.batcher.serveConn(nc, br, bw, fr, sess)
		return
	}

	m := tcpMetrics
	var cp monitor.Checkpoint
	for {
		// About to block: everything produced so far must reach the peer
		// first, and the blocking read gets a fresh idle deadline. Frames
		// already buffered skip both — the pipelined hot path pays neither a
		// flush nor a deadline update per frame.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
			if s.cfg.IdleTimeout > 0 {
				nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
		}
		if s.draining.Load() {
			mRejectDraining.Inc()
			refuse(ErrCodeDraining, "server is draining")
			return
		}
		if err := fr.Next(&f); err != nil {
			switch {
			case isTimeout(err):
				if s.draining.Load() {
					mRejectDraining.Inc()
					refuse(ErrCodeDraining, "server is draining")
				} else {
					mRejectIdle.Inc()
					refuse(ErrCodeIdle, fmt.Sprintf("no frames for %v", s.cfg.IdleTimeout))
				}
			case errors.Is(err, errFrameTooBig), errors.Is(err, errFrameCRC),
				errors.Is(err, errFrameTrunc), errors.Is(err, errFrameType),
				errors.Is(err, errFrameMagic), errors.Is(err, errFrameField),
				errors.Is(err, errFrameVecSize):
				mRejectBadFrame.Inc()
				refuse(ErrCodeMalformed, err.Error())
			}
			return // EOF and transport errors: the peer is gone, say nothing
		}
		m.frames.Inc()
		switch f.Type {
		case FrameCheckpoint:
			start := time.Now()
			*cp.Vec() = f.Vec
			pred, err := sess.observe(cp)
			if err != nil {
				refuse(ErrCodeInternal, err.Error())
				return
			}
			out, _ = AppendFrame(out[:0], &Frame{
				Type:          FramePredict,
				Seq:           f.Seq,
				Epoch:         sess.epochSeq(),
				TimeSec:       pred.TimeSec,
				TTFSec:        pred.TTFSec,
				CrashExpected: pred.CrashExpected,
			})
			if _, err := bw.Write(out); err != nil {
				return
			}
			m.predictions.Inc()
			m.latency.Observe(time.Since(start).Seconds())
		case FrameResolve:
			sess.resolve(f.Kind, f.CrashTimeSec)
		case FrameReset:
			sess.reset()
		case FrameClose:
			out, _ = AppendFrame(out[:0], &Frame{Type: FrameClose})
			bw.Write(out)
			bw.Flush()
			return
		default:
			mRejectBadFrame.Inc()
			refuse(ErrCodeProtocol, "unexpected "+f.Type.String())
			return
		}
	}
}
