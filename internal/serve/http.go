package serve

// The NDJSON transport: the same conversation as the binary frame protocol,
// readable with curl. One chunked POST to /v1/stream is one session — request
// lines carry checkpoints (full monitor field names, not a packed vector),
// resolve/reset markers and an optional close; each checkpoint is answered by
// one prediction line, flushed immediately. JSON float64 round-trips exactly
// (Go emits the shortest representation that re-parses to the same bits), so
// end-to-end bit-identity checks hold on this transport too.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"agingpred/internal/monitor"
)

// StreamRequest is one NDJSON request line: exactly one of Checkpoint,
// Resolve, Reset or Close must be set.
type StreamRequest struct {
	// Seq is an optional client sequence number, echoed on the prediction.
	Seq uint32 `json:"seq,omitempty"`
	// Checkpoint asks for one prediction.
	Checkpoint *monitor.Checkpoint `json:"checkpoint,omitempty"`
	// Resolve reports the stream's outcome for adaptive label resolution.
	Resolve *StreamResolve `json:"resolve,omitempty"`
	// Reset starts a fresh stream, adopting the server's current model epoch.
	Reset bool `json:"reset,omitempty"`
	// Close ends the conversation gracefully.
	Close bool `json:"close,omitempty"`
}

// StreamResolve is the NDJSON form of a RESOLVE frame.
type StreamResolve struct {
	// Kind is "crash" or "censored".
	Kind string `json:"kind"`
	// CrashTimeSec is the observed crash time (kind "crash" only).
	CrashTimeSec float64 `json:"crash_time_sec,omitempty"`
}

// StreamReply is one NDJSON response line: a prediction or a typed error.
type StreamReply struct {
	Seq     uint32         `json:"seq,omitempty"`
	Predict *StreamPredict `json:"predict,omitempty"`
	Error   *StreamError   `json:"error,omitempty"`
}

// StreamPredict is the NDJSON form of a PREDICT frame.
type StreamPredict struct {
	Epoch         uint32  `json:"epoch"`
	TimeSec       float64 `json:"time_sec"`
	TTFSec        float64 `json:"ttf_sec"`
	CrashExpected bool    `json:"crash_expected"`
}

// StreamError is the NDJSON form of an ERROR frame; Code is the ErrorCode
// name ("draining", "idle", ...).
type StreamError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// connKey carries the underlying net.Conn through the request context so a
// streaming handler can register with the drain machinery (Server.trackConn
// nudges blocked reads awake when draining begins).
type connKey struct{}

// httpRefuse rejects a stream before it opens, carrying the typed ErrorCode
// in a header so clients do not have to re-derive it from the HTTP status.
// Connection: close matters beyond hygiene: without it the server tries to
// drain the chunked request body before finishing the response so it can
// reuse the connection, and a streaming client holding its upload pipe open
// would deadlock against that drain.
func httpRefuse(w http.ResponseWriter, code ErrorCode, status int, msg string) {
	w.Header().Set("Agingpred-Error-Code", code.String())
	w.Header().Set("Connection", "close")
	http.Error(w, msg, status)
}

// handleStream serves one NDJSON session per POST.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST one NDJSON stream per request", http.StatusMethodNotAllowed)
		return
	}
	model, epoch := s.currentModel()
	if want := r.URL.Query().Get("schema"); want != "" && want != model.Schema().Name() {
		mRejectHello.Inc()
		httpRefuse(w, ErrCodeSchema, http.StatusBadRequest,
			fmt.Sprintf("serving schema %q, client asked for %q", model.Schema().Name(), want))
		return
	}
	if s.draining.Load() {
		mRejectDraining.Inc()
		httpRefuse(w, ErrCodeDraining, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.acquireSession() {
		mRejectSessions.Inc()
		httpRefuse(w, ErrCodeTooManySessions, http.StatusServiceUnavailable,
			fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions))
		return
	}
	defer s.releaseSession()
	if c, ok := r.Context().Value(connKey{}).(net.Conn); ok {
		s.trackConn(c)
		defer s.untrackConn(c)
	}

	sess := s.newSession(r.RemoteAddr)
	m := httpMetrics
	m.sessions.Inc()

	// The WELCOME equivalent rides the response headers, so a client knows
	// what it is talking to before the first prediction line.
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("Agingpred-Protocol-Version", fmt.Sprint(ProtocolVersion))
	h.Set("Agingpred-Epoch", fmt.Sprint(epoch))
	h.Set("Agingpred-Model", string(model.Kind()))
	h.Set("Agingpred-Schema", model.Schema().Name())
	rc := http.NewResponseController(w)
	// Without full duplex an HTTP/1.1 handler loses the request body at its
	// first response write; this conversation interleaves reads and writes
	// for its whole lifetime.
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "transport cannot stream bidirectionally", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
	rc.Flush()
	enc := json.NewEncoder(w)
	dec := json.NewDecoder(r.Body)

	reply := func(rep StreamReply) bool {
		if enc.Encode(rep) != nil {
			return false
		}
		return rc.Flush() == nil
	}
	refuse := func(seq uint32, code ErrorCode, msg string) {
		reply(StreamReply{Seq: seq, Error: &StreamError{Code: code.String(), Message: msg}})
	}

	var req StreamRequest
	for {
		if s.cfg.IdleTimeout > 0 {
			rc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if s.draining.Load() {
			mRejectDraining.Inc()
			refuse(0, ErrCodeDraining, "server is draining")
			return
		}
		req = StreamRequest{}
		if err := dec.Decode(&req); err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				// The peer finished its stream without an explicit close line.
			case isTimeout(err):
				if s.draining.Load() {
					mRejectDraining.Inc()
					refuse(0, ErrCodeDraining, "server is draining")
				} else {
					mRejectIdle.Inc()
					refuse(0, ErrCodeIdle, fmt.Sprintf("no lines for %v", s.cfg.IdleTimeout))
				}
			default:
				mRejectBadFrame.Inc()
				refuse(0, ErrCodeMalformed, err.Error())
			}
			return
		}
		m.frames.Inc()
		switch {
		case req.Checkpoint != nil:
			start := time.Now()
			pred, err := sess.observe(*req.Checkpoint)
			if err != nil {
				refuse(req.Seq, ErrCodeInternal, err.Error())
				return
			}
			ok := reply(StreamReply{Seq: req.Seq, Predict: &StreamPredict{
				Epoch:         sess.epochSeq(),
				TimeSec:       pred.TimeSec,
				TTFSec:        pred.TTFSec,
				CrashExpected: pred.CrashExpected,
			}})
			if !ok {
				return
			}
			m.predictions.Inc()
			m.latency.Observe(time.Since(start).Seconds())
		case req.Resolve != nil:
			switch req.Resolve.Kind {
			case "crash":
				sess.resolve(ResolveCrash, req.Resolve.CrashTimeSec)
			case "censored":
				sess.resolve(ResolveCensored, 0)
			default:
				mRejectBadFrame.Inc()
				refuse(req.Seq, ErrCodeProtocol, fmt.Sprintf("unknown resolve kind %q", req.Resolve.Kind))
				return
			}
		case req.Reset:
			sess.reset()
		case req.Close:
			return
		default:
			mRejectBadFrame.Inc()
			refuse(req.Seq, ErrCodeProtocol, "line carries no checkpoint, resolve, reset or close")
			return
		}
	}
}
