package serve

// The differential test layer for batched serving: a batched server, a scalar
// server and a local reference session replay the same random fleet streams
// and every prediction must agree bit-for-bit — across batch windows, frozen
// and adaptive modes, crash→RESOLVE→RESET cycles, and hot model swaps landing
// mid-run. This is the serve-path counterpart of internal/difftest, which
// pins the in-process batch engine the batcher is built on.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"agingpred/internal/adapt"
	"agingpred/internal/core"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
)

// batchedConfig is the batched-mode counterpart of the default test server:
// two shards so session→shard fan-out is exercised even on one CPU, and a
// short window so deadline flushes happen within test time.
func batchedConfig(model *core.Model, batch int) Config {
	return Config{Model: model, Batch: batch, BatchWindow: 200 * time.Microsecond, BatchShards: 2}
}

// diffStream replays one fleet instance through any number of served
// connections plus a local reference, pipelined, and fails the test on the
// first reply whose bits differ from the reference (or whose sequence number
// comes back out of order).
type diffStream struct {
	model  *core.Model
	conns  []Conn
	replay *fleet.Replay
	ref    *core.Session
	seq    uint32
	// pending predictions per staged checkpoint, oldest first.
	pending []pendingPred
}

type pendingPred struct {
	seq  uint32
	want core.Prediction
}

func newDiffStream(model *core.Model, seed uint64, conns ...Conn) *diffStream {
	return &diffStream{
		model:  model,
		conns:  conns,
		replay: fleet.NewReplay(seed, fleet.Specs(seed, 1)[0]),
		ref:    model.NewSession(),
	}
}

// step advances the replay by one checkpoint: observe on the reference, send
// to every connection. Returns true when the instance crashed instead (the
// caller resolves and resets).
func (d *diffStream) step(t testing.TB) (crashed bool) {
	t.Helper()
	var cp monitor.Checkpoint
	if d.replay.Step(&cp) {
		return true
	}
	want, err := d.ref.Observe(cp)
	if err != nil {
		t.Fatalf("reference observe: %v", err)
	}
	d.seq++
	for i, c := range d.conns {
		if err := c.Send(d.seq, &cp); err != nil {
			t.Fatalf("conn %d send seq %d: %v", i, d.seq, err)
		}
	}
	d.pending = append(d.pending, pendingPred{seq: d.seq, want: want})
	return false
}

// drain collects n pending replies (all of them when n < 0) from every
// connection, verifying order and bit-identity against the reference.
func (d *diffStream) drain(t testing.TB, n int) {
	t.Helper()
	if n < 0 || n > len(d.pending) {
		n = len(d.pending)
	}
	for k := 0; k < n; k++ {
		p := d.pending[k]
		for i, c := range d.conns {
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("conn %d recv seq %d: %v", i, p.seq, err)
			}
			if got.Seq != p.seq {
				t.Fatalf("conn %d: reply seq %d, want %d (per-session order broken)", i, got.Seq, p.seq)
			}
			if math.Float64bits(got.TimeSec) != math.Float64bits(p.want.TimeSec) ||
				math.Float64bits(got.TTFSec) != math.Float64bits(p.want.TTFSec) ||
				got.CrashExpected != p.want.CrashExpected {
				t.Fatalf("conn %d seq %d: served (t=%v ttf=%v crash=%v) != reference (t=%v ttf=%v crash=%v)",
					i, p.seq, got.TimeSec, got.TTFSec, got.CrashExpected,
					p.want.TimeSec, p.want.TTFSec, p.want.CrashExpected)
			}
		}
	}
	d.pending = d.pending[n:]
}

// boundary drains everything, then resolves and resets every connection and
// the reference — one crash/rejuvenation stream boundary.
func (d *diffStream) boundary(t testing.TB, kind ResolveKind, crashTimeSec float64) {
	t.Helper()
	d.drain(t, -1)
	for i, c := range d.conns {
		if err := c.Resolve(kind, crashTimeSec); err != nil {
			t.Fatalf("conn %d resolve: %v", i, err)
		}
		if err := c.Reset(); err != nil {
			t.Fatalf("conn %d reset: %v", i, err)
		}
	}
	d.replay.Restart()
	d.ref = d.model.NewSession()
}

// TestBatchedServeDifferential is the tentpole's proof: batched server vs
// scalar server vs local reference, bit-for-bit, over random fleet streams
// with pipelined windows, at batch sizes 1, 7 and 64, in frozen and adaptive
// modes, with crash→RESOLVE→RESET cycles in the mix.
func TestBatchedServeDifferential(t *testing.T) {
	model := goldenModel(t)
	for _, mode := range []string{"frozen", "adaptive"} {
		for _, batch := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch-%d", mode, batch), func(t *testing.T) {
				scalarCfg := Config{Model: model}
				batchedCfg := batchedConfig(model, batch)
				if mode == "adaptive" {
					// One Supervisor per server (streams are server-local), both
					// pinned to epoch 1: bit-identity is the contract under test,
					// so retraining is disabled by an unreachable freshness bar.
					for _, cfg := range []*Config{&scalarCfg, &batchedCfg} {
						sup, err := adapt.NewSupervisor(adapt.Config{MinFreshRuns: 1 << 30}, model)
						if err != nil {
							t.Fatal(err)
						}
						cfg.Model, cfg.Supervisor = nil, sup
					}
				}
				scalar := startServer(t, scalarCfg)
				batched := startServer(t, batchedCfg)

				const conns = 4
				var wg sync.WaitGroup
				for w := 0; w < conns; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						seed := uint64(40 + w)
						sc, err := Dial(scalar.TCPAddr(), "")
						if err != nil {
							t.Errorf("conn %d scalar dial: %v", w, err)
							return
						}
						defer sc.Close()
						bc, err := Dial(batched.TCPAddr(), "")
						if err != nil {
							t.Errorf("conn %d batched dial: %v", w, err)
							return
						}
						defer bc.Close()
						d := newDiffStream(model, seed, sc, bc)
						for i := 0; i < 300; i++ {
							if d.step(t) {
								d.boundary(t, ResolveCrash, d.replay.TimeSec())
								continue
							}
							if len(d.pending) >= 16 {
								d.drain(t, 8)
							}
							if (i+1)%100 == 0 {
								d.boundary(t, ResolveCensored, 0)
							}
						}
						d.drain(t, -1)
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// TestBatchedHotSwapDifferential pins hot reload under batching: SwapModel
// lands mid-run on a batched server, reaches each session only at its next
// RESET, and every reply is bit-identical to a reference session of whichever
// epoch the reply says produced it.
func TestBatchedHotSwapDifferential(t *testing.T) {
	m1 := goldenModel(t)
	m2, err := fleet.TrainModel(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, batchedConfig(m1, 7))

	// Phase 1 streams against epoch 1 with dual references (one per epoch),
	// so verification is immune to when exactly the swap lands relative to
	// each connection's resets; once every connection checks in, the main
	// goroutine swaps, and phase 2 must run entirely on epoch 2.
	const conns = 2
	var wg, phase1 sync.WaitGroup
	phase1.Add(conns)
	swapped := make(chan struct{})
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := Dial(srv.TCPAddr(), "")
			if err != nil {
				phase1.Done()
				t.Errorf("conn %d dial: %v", w, err)
				return
			}
			defer conn.Close()
			seed := uint64(60 + w)
			replay := fleet.NewReplay(seed, fleet.Specs(seed, 1)[0])
			ref1, ref2 := m1.NewSession(), m2.NewSession()
			var cp monitor.Checkpoint
			seq := uint32(0)
			type wants struct {
				seq    uint32
				w1, w2 core.Prediction
			}
			var pending []wants
			failed := false
			drain := func(n int) {
				if n < 0 || n > len(pending) {
					n = len(pending)
				}
				for k := 0; k < n && !failed; k++ {
					got, err := conn.Recv()
					if err != nil {
						t.Errorf("conn %d recv: %v", w, err)
						failed = true
						return
					}
					if got.Seq != pending[k].seq {
						t.Errorf("conn %d: reply seq %d, want %d", w, got.Seq, pending[k].seq)
						failed = true
						return
					}
					want := pending[k].w1
					if got.Epoch >= 2 {
						want = pending[k].w2
					}
					if math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) ||
						math.Float64bits(got.TimeSec) != math.Float64bits(want.TimeSec) {
						t.Errorf("conn %d seq %d epoch %d: served ttf %v != reference %v",
							w, got.Seq, got.Epoch, got.TTFSec, want.TTFSec)
						failed = true
						return
					}
				}
				pending = pending[n:]
			}
			boundary := func(kind ResolveKind, crashTimeSec float64) {
				drain(-1)
				conn.Resolve(kind, crashTimeSec)
				conn.Reset()
				replay.Restart()
				ref1, ref2 = m1.NewSession(), m2.NewSession()
			}
			for i := 0; i < 200 && !failed; i++ {
				if replay.Step(&cp) {
					boundary(ResolveCrash, replay.TimeSec())
					continue
				}
				w1, err1 := ref1.Observe(cp)
				w2, err2 := ref2.Observe(cp)
				if err1 != nil || err2 != nil {
					t.Errorf("conn %d reference observe: %v %v", w, err1, err2)
					failed = true
					break
				}
				seq++
				if err := conn.Send(seq, &cp); err != nil {
					t.Errorf("conn %d send: %v", w, err)
					failed = true
					break
				}
				pending = append(pending, wants{seq: seq, w1: w1, w2: w2})
				if len(pending) >= 12 {
					drain(6)
				}
				if (i+1)%64 == 0 {
					boundary(ResolveCensored, 0)
				}
			}
			drain(-1)
			phase1.Done()
			if failed {
				return
			}
			// Phase 2: the swap has been published; the boundary reset adopts
			// it, and from here every reply must carry epoch 2 with bits of a
			// fresh m2 session.
			<-swapped
			boundary(ResolveCensored, 0)
			for i := 0; i < 64 && !failed; i++ {
				if replay.Step(&cp) {
					boundary(ResolveCrash, replay.TimeSec())
					continue
				}
				want, err := ref2.Observe(cp)
				if err != nil {
					t.Errorf("conn %d m2 reference observe: %v", w, err)
					return
				}
				ref1.Observe(cp) // keep the pair in lockstep for boundary()
				seq++
				if err := conn.Send(seq, &cp); err != nil {
					t.Errorf("conn %d post-swap send: %v", w, err)
					return
				}
				got, err := conn.Recv()
				if err != nil {
					t.Errorf("conn %d post-swap recv: %v", w, err)
					return
				}
				if got.Epoch != 2 {
					t.Errorf("conn %d post-swap reply on epoch %d, want 2", w, got.Epoch)
					return
				}
				if math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) {
					t.Errorf("conn %d post-swap seq %d: served ttf %v != m2 reference %v",
						w, got.Seq, got.TTFSec, want.TTFSec)
					return
				}
			}
		}(w)
	}
	phase1.Wait()
	if !t.Failed() {
		if _, err := srv.SwapModel(m2); err != nil {
			t.Errorf("SwapModel: %v", err)
		}
	}
	close(swapped)
	wg.Wait()
}

// TestBatchedRaceStress is the -race workout the batcher answers to: many
// connections interleaving CHECKPOINT/PREDICT/RESOLVE/RESET while deadline
// flushes fire (senders pause mid-window), a hot swap lands mid-run, and a
// drain starts while traffic is still flowing — no mismatches, no deadlock,
// and the session table returns to zero.
func TestBatchedRaceStress(t *testing.T) {
	m1 := goldenModel(t)
	m2, err := fleet.TrainModel(2)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Model: m1, Batch: 8, BatchWindow: 100 * time.Microsecond, BatchShards: 2})

	const conns = 8
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := Dial(srv.TCPAddr(), "")
			if err != nil {
				t.Errorf("conn %d dial: %v", w, err)
				return
			}
			defer conn.Close()
			seed := uint64(80 + w)
			replay := fleet.NewReplay(seed, fleet.Specs(seed, 1)[0])
			ref1, ref2 := m1.NewSession(), m2.NewSession()
			var cp monitor.Checkpoint
			seq := uint32(0)
			for i := 0; ; i++ {
				if crashed := replay.Step(&cp); crashed {
					conn.Resolve(ResolveCrash, replay.TimeSec())
					if err := conn.Reset(); err != nil {
						return
					}
					replay.Restart()
					ref1, ref2 = m1.NewSession(), m2.NewSession()
					continue
				}
				w1, _ := ref1.Observe(cp)
				w2, _ := ref2.Observe(cp)
				seq++
				if err := conn.Send(seq, &cp); err != nil {
					return // drain raced the write; the refusal check below is done
				}
				got, err := conn.Recv()
				if err != nil {
					var se *ServerError
					if errors.As(err, &se) && se.Code == ErrCodeDraining && srv.Draining() {
						return // clean drain refusal mid-stream
					}
					if srv.Draining() {
						return // connection torn down by drain completion
					}
					t.Errorf("conn %d recv seq %d: %v", w, seq, err)
					return
				}
				want := w1
				if got.Epoch >= 2 {
					want = w2
				}
				if math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) {
					t.Errorf("conn %d seq %d epoch %d: ttf %v != reference %v",
						w, got.Seq, got.Epoch, got.TTFSec, want.TTFSec)
					return
				}
				if i%17 == 16 {
					// Go quiet past the batch window so the deadline flush path
					// runs under load, not just the size path.
					time.Sleep(300 * time.Microsecond)
				}
				if i%50 == 49 {
					conn.Resolve(ResolveCensored, 0)
					if err := conn.Reset(); err != nil {
						return
					}
					replay.Restart()
					ref1, ref2 = m1.NewSession(), m2.NewSession()
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	if _, err := srv.SwapModel(m2); err != nil {
		t.Fatalf("SwapModel: %v", err)
	}
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain deadlocked or timed out: %v", err)
	}
	wg.Wait()
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("sessions_active after drain: %d, want 0", n)
	}
	if v, ok := srvActiveSessionsMetric(); !ok || v != 0 {
		t.Fatalf("agingpred_serve_sessions_active after drain: %v (ok=%v), want 0", v, ok)
	}
}
