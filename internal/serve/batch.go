package serve

// Cross-connection micro-batched serving: the fleet's sharded batch engine
// put behind the accept loop. In batched mode (Config.Batch > 0) a connection
// reader no longer evaluates checkpoints inline; every session-touching frame
// becomes a typed op on the session's shard queue, a single worker goroutine
// per shard stages CHECKPOINT rows into per-model-epoch core.Batch groups
// (each a contiguous features.RowBatch) and evaluates each group with one
// PredictBatch sweep per flush, fanning the PREDICT frames back out through
// per-connection writer goroutines. Flushes happen when the staged rows reach
// Config.Batch, when the oldest row has waited Config.BatchWindow (so a lone
// straggler connection still gets a bounded-latency answer), or when a
// control frame (RESOLVE/RESET/CLOSE/eviction) needs the session's pending
// predictions delivered first. An idle shard blocks on its op queue alone —
// no ticker, no spinning.
//
// The serving contract is unchanged from scalar mode: staging is exactly the
// extraction half of Session.Observe and PredictBatch is defined as the
// scalar predictor applied row by row, so every reply is bit-identical to a
// scalar reference session replaying the same stream — the differential
// suite in diff_test.go pins batched vs scalar vs local reference across
// crash/RESOLVE/RESET cycles and hot model swaps. Ordering is preserved per
// session because one connection's ops land on one shard queue in arrival
// order and a control op always flushes the batch it trails.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
	"agingpred/internal/obs"
)

// DefaultBatchWindow bounds how long a staged checkpoint may wait for its
// micro-batch to fill before a deadline flush evaluates it anyway.
const DefaultBatchWindow = 500 * time.Microsecond

const (
	// batchOpQueueDepth is the per-shard op queue bound; readers block (natural
	// backpressure) when a shard worker falls this far behind.
	batchOpQueueDepth = 1024
	// writerQueueDepth is the per-connection reply-buffer queue bound. Each
	// entry is a whole flush worth of frames; a queue this deep only fills when
	// the peer has stopped reading, at which point the connection is killed
	// rather than letting one stalled client block a shard.
	writerQueueDepth = 256
	// writerBufBytes is the initial capacity of one reply buffer.
	writerBufBytes = 4 << 10
	// stageBurst caps how many consecutive CHECKPOINT frames a reader coalesces
	// into one opStage. Coalescing is what keeps the channel machinery off the
	// per-frame hot path: a pipelined client burst costs one shard-queue send
	// per stageBurst rows, not one per row.
	stageBurst = 32
)

// shardOf is the consistent session→shard assignment: the same 64-bit FNV-1a
// discipline internal/fleet uses for instance→shard placement, so a session's
// batching shard is stable for its whole connection lifetime.
func shardOf(id uint64, shards int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= id & 0xff
		h *= prime
		id >>= 8
	}
	return int(h % uint64(shards))
}

// connWriter owns the write half of one batched-mode connection. Shard
// workers fan encoded reply buffers into its bounded queue; a dedicated
// goroutine writes them out, flushing only when the queue runs dry so a burst
// of batch flushes costs one write syscall, not one per reply.
type connWriter struct {
	nc   net.Conn
	bw   *bufio.Writer
	ch   chan []byte
	free chan []byte
	dead atomic.Bool
	done chan struct{}
}

func newConnWriter(nc net.Conn, bw *bufio.Writer) *connWriter {
	return &connWriter{
		nc:   nc,
		bw:   bw,
		ch:   make(chan []byte, writerQueueDepth),
		free: make(chan []byte, writerQueueDepth),
		done: make(chan struct{}),
	}
}

// run drains the reply queue until the owning shard worker closes it (the
// eviction point). After a transport error the writer keeps consuming, so the
// worker can never block on a dead connection.
func (w *connWriter) run() {
	defer close(w.done)
	failed := false
	for buf := range w.ch {
		if !failed {
			if _, err := w.bw.Write(buf); err != nil {
				failed = true
				w.dead.Store(true)
			} else if len(w.ch) == 0 {
				if err := w.bw.Flush(); err != nil {
					failed = true
					w.dead.Store(true)
				}
			}
		}
		select {
		case w.free <- buf[:0]:
		default:
		}
	}
	if !failed {
		w.bw.Flush()
	}
}

// buffer returns an empty reply buffer, recycling drained ones.
func (w *connWriter) buffer() []byte {
	select {
	case b := <-w.free:
		return b
	default:
		return make([]byte, 0, writerBufBytes)
	}
}

// send hands one reply buffer to the writer goroutine. A full queue means the
// peer stopped reading hundreds of flushes ago; the connection is killed (the
// reader sees the error and evicts the session) instead of blocking the shard.
func (w *connWriter) send(buf []byte) {
	if w.dead.Load() {
		return
	}
	select {
	case w.ch <- buf:
	default:
		w.dead.Store(true)
		w.nc.Close()
	}
}

type batchOpKind uint8

const (
	opJoin    batchOpKind = iota + 1 // register the session with its shard
	opStage                          // stage a run of coalesced CHECKPOINT rows
	opResolve                        // flush, then apply RESOLVE
	opReset                          // flush, then adopt the current epoch
	opClose                          // flush, echo CLOSE, evict
	opError                          // flush, typed ERROR + CLOSE, evict
	opEvict                          // flush, evict silently (peer is gone)
)

// stageRow is one decoded CHECKPOINT riding in a coalesced opStage.
type stageRow struct {
	seq   uint32
	start time.Time
	cp    monitor.Checkpoint
}

// batchOp is one unit of work handed from a connection reader to its shard
// worker. Every session-mutating frame travels through here in arrival order,
// which is what makes the single-writer shard worker race-free and keeps each
// session's reply order equal to its send order.
type batchOp struct {
	kind  batchOpKind
	bs    *batchSession
	rows  []stageRow  // opStage, in arrival order; recycled via bs.rowPool
	rkind ResolveKind // opResolve
	crash float64     // opResolve
	code  ErrorCode   // opError
	msg   string      // opError
}

// batchSession is one connection's seat in the batcher.
type batchSession struct {
	id   uint64
	sess *session
	w    *connWriter
	pend []byte // replies staged for this connection in the current flush
	// rowPool recycles stageRow slices between the reader (borrow) and the
	// shard worker (return after staging) without a per-burst allocation.
	rowPool chan []stageRow
}

func (bs *batchSession) borrowRows() []stageRow {
	select {
	case r := <-bs.rowPool:
		return r
	default:
		return make([]stageRow, 0, stageBurst)
	}
}

func (bs *batchSession) recycleRows(r []stageRow) {
	select {
	case bs.rowPool <- r[:0]:
	default:
	}
}

// serveBatch groups the staged rows of one model epoch — the serving-tier
// mirror of the fleet's modelBatch. Sessions on different epochs (mid hot
// swap) land in different groups, each evaluated with one PredictBatch call.
type serveBatch struct {
	m       *core.Model
	b       *core.Batch
	entries []batchEntry
}

// batchEntry remembers, per staged row, everything the flush needs to fan the
// prediction back out and (adaptive mode) record it for label resolution.
type batchEntry struct {
	bs    *batchSession
	seq   uint32
	epoch uint32
	start time.Time
	cp    monitor.Checkpoint
}

// batcher is the cross-connection micro-batch engine: session-ID-sharded
// worker goroutines, each owning its sessions' state exclusively.
type batcher struct {
	srv    *Server
	size   int
	window time.Duration
	shards []*batchShard
	nextID atomic.Uint64
}

func newBatcher(s *Server, size, shards int, window time.Duration) *batcher {
	b := &batcher{srv: s, size: size, window: window}
	b.shards = make([]*batchShard, shards)
	for i := range b.shards {
		sh := &batchShard{
			bat:  b,
			ops:  make(chan batchOp, batchOpQueueDepth),
			done: make(chan struct{}),
		}
		b.shards[i] = sh
		go sh.run()
	}
	return b
}

// stop shuts the shard workers down. The caller must guarantee no reader can
// submit further ops (Server.Close waits for every connection goroutine
// first); buffered ops — including every session's terminal op — drain before
// the workers exit.
func (b *batcher) stop() {
	for _, sh := range b.shards {
		close(sh.ops)
	}
	for _, sh := range b.shards {
		<-sh.done
	}
}

// serveConn runs the batched-mode read loop for one connection after the
// handshake. It owns only the read half: every session-touching frame becomes
// an op for the session's shard, and replies flow exclusively through the
// connWriter. The loop ends by submitting exactly one terminal op and waiting
// for the writer to finish delivering whatever the final flush produced, so
// handleConn's deferred close cannot race the last predictions onto a closed
// socket.
func (b *batcher) serveConn(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, fr *frameReader, sess *session) {
	s := b.srv
	id := b.nextID.Add(1)
	sh := b.shards[shardOf(id, len(b.shards))]
	w := newConnWriter(nc, bw)
	bs := &batchSession{id: id, sess: sess, w: w, rowPool: make(chan []stageRow, 4)}
	go w.run()
	sh.submit(batchOp{kind: opJoin, bs: bs})

	terminal := batchOp{kind: opEvict, bs: bs}
	m := tcpMetrics
	var (
		f    Frame
		rows []stageRow // consecutive CHECKPOINTs coalescing toward one opStage
		now  time.Time  // stage timestamp, taken once per coalesced burst
	)
	flushRows := func() {
		if len(rows) > 0 {
			sh.submit(batchOp{kind: opStage, bs: bs, rows: rows})
			rows = nil
		}
	}
loop:
	for {
		// About to block: ship the coalesced rows (only staged rows are under
		// the shard's deadline timer) and give the blocking read a fresh idle
		// deadline. Frames already buffered skip both — the pipelined hot path
		// pays neither per frame. Flushing is the writer goroutine's job now.
		if br.Buffered() == 0 {
			flushRows()
			if s.cfg.IdleTimeout > 0 {
				nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
		}
		if s.draining.Load() {
			mRejectDraining.Inc()
			terminal = batchOp{kind: opError, bs: bs, code: ErrCodeDraining, msg: "server is draining"}
			break loop
		}
		if err := fr.Next(&f); err != nil {
			switch {
			case isTimeout(err):
				if s.draining.Load() {
					mRejectDraining.Inc()
					terminal = batchOp{kind: opError, bs: bs, code: ErrCodeDraining, msg: "server is draining"}
				} else {
					mRejectIdle.Inc()
					terminal = batchOp{kind: opError, bs: bs, code: ErrCodeIdle,
						msg: fmt.Sprintf("no frames for %v", s.cfg.IdleTimeout)}
				}
			case errors.Is(err, errFrameTooBig), errors.Is(err, errFrameCRC),
				errors.Is(err, errFrameTrunc), errors.Is(err, errFrameType),
				errors.Is(err, errFrameMagic), errors.Is(err, errFrameField),
				errors.Is(err, errFrameVecSize):
				mRejectBadFrame.Inc()
				terminal = batchOp{kind: opError, bs: bs, code: ErrCodeMalformed, msg: err.Error()}
			}
			break loop // EOF and transport errors: the peer is gone, say nothing
		}
		m.frames.Inc()
		switch f.Type {
		case FrameCheckpoint:
			if rows == nil {
				rows = bs.borrowRows()
				now = time.Now()
			}
			rows = append(rows, stageRow{seq: f.Seq, start: now})
			*rows[len(rows)-1].cp.Vec() = f.Vec
			if len(rows) == cap(rows) {
				flushRows()
			}
		case FrameResolve:
			flushRows()
			sh.submit(batchOp{kind: opResolve, bs: bs, rkind: f.Kind, crash: f.CrashTimeSec})
		case FrameReset:
			flushRows()
			sh.submit(batchOp{kind: opReset, bs: bs})
		case FrameClose:
			terminal = batchOp{kind: opClose, bs: bs}
			break loop
		default:
			mRejectBadFrame.Inc()
			terminal = batchOp{kind: opError, bs: bs, code: ErrCodeProtocol, msg: "unexpected " + f.Type.String()}
			break loop
		}
	}
	flushRows()
	sh.submit(terminal)
	<-w.done
}

// batchShard is one batching worker: a queue of ops and the staging state its
// goroutine owns exclusively (no locks anywhere past the channel).
type batchShard struct {
	bat  *batcher
	ops  chan batchOp
	done chan struct{}

	// Worker-owned.
	sessions   []*batchSession
	batches    []*serveBatch
	touched    []*batchSession
	pending    int
	timer      *time.Timer
	timerArmed bool
}

func (sh *batchShard) submit(op batchOp) { sh.ops <- op }

func (sh *batchShard) run() {
	defer close(sh.done)
	sh.timer = time.NewTimer(time.Hour)
	sh.timer.Stop()
	for {
		if sh.pending == 0 {
			// Idle: block on the op queue alone — an idle server never spins.
			op, ok := <-sh.ops
			if !ok {
				sh.shutdown()
				return
			}
			sh.apply(op)
			continue
		}
		select {
		case op, ok := <-sh.ops:
			if !ok {
				sh.shutdown()
				return
			}
			sh.apply(op)
		case <-sh.timer.C:
			sh.timerArmed = false
			sh.flush(mFlushDeadline)
		}
	}
}

// shutdown flushes whatever is staged and closes every remaining writer.
// Reached only through Server.Close, after every connection goroutine has
// submitted its terminal op — which normally leaves the shard already empty.
func (sh *batchShard) shutdown() {
	if sh.pending > 0 {
		sh.flush(mFlushShutdown)
	}
	for _, bs := range sh.sessions {
		close(bs.w.ch)
	}
	sh.sessions = nil
}

func (sh *batchShard) apply(op batchOp) {
	bs := op.bs
	switch op.kind {
	case opJoin:
		sh.sessions = append(sh.sessions, bs)
	case opStage:
		if !bs.w.dead.Load() { // else: killed mid-pipeline; the terminal op is en route
			for i := range op.rows {
				sh.stage(bs, &op.rows[i])
				if sh.pending >= sh.bat.size {
					sh.flush(mFlushSize)
				}
			}
		}
		bs.recycleRows(op.rows)
	case opResolve:
		// Control ops flush first: an adaptive RESOLVE scores the predictions
		// Record saw, so the staged rows must be evaluated and recorded before
		// the label lands — the exact order a scalar session would have seen.
		sh.flushPending()
		bs.sess.resolve(op.rkind, op.crash)
	case opReset:
		sh.flushPending()
		bs.sess.reset()
		sh.dropIdleBatches()
	case opClose:
		sh.flushPending()
		sh.reply(bs, &Frame{Type: FrameClose})
		sh.evict(bs)
	case opError:
		sh.flushPending()
		sh.reply(bs, &Frame{Type: FrameError, Code: op.code, Message: op.msg})
		sh.reply(bs, &Frame{Type: FrameClose})
		sh.evict(bs)
	case opEvict:
		sh.flushPending()
		sh.evict(bs)
	}
}

// flushPending flushes ahead of a control op, so replies already owed to any
// session precede whatever the control op produces.
func (sh *batchShard) flushPending() {
	if sh.pending > 0 {
		sh.flush(mFlushControl)
	}
}

func (sh *batchShard) stage(bs *batchSession, row *stageRow) {
	sess := bs.sess.coreSession()
	sb := sh.batchFor(sess.Model())
	if err := sb.b.Stage(sess, &row.cp); err != nil {
		sh.reply(bs, &Frame{Type: FrameError, Code: ErrCodeInternal, Message: err.Error()})
		bs.w.dead.Store(true)
		bs.w.nc.Close()
		return
	}
	sb.entries = append(sb.entries, batchEntry{
		bs: bs, seq: row.seq, epoch: bs.sess.epochSeq(), start: row.start, cp: row.cp,
	})
	sh.pending++
	if sh.pending == 1 && !sh.timerArmed {
		sh.timer.Reset(sh.bat.window)
		sh.timerArmed = true
	}
}

// batchFor finds (or creates) the staging group for one model epoch — a
// linear scan, like the fleet's shard worker: live epoch counts are tiny.
func (sh *batchShard) batchFor(m *core.Model) *serveBatch {
	for _, sb := range sh.batches {
		if sb.m == m {
			return sb
		}
	}
	sb := &serveBatch{m: m, b: m.NewBatch(sh.bat.size)}
	sh.batches = append(sh.batches, sb)
	return sb
}

// dropIdleBatches forgets staging groups for epochs no session on this shard
// serves any more (sessions change epochs at RESET and leave at eviction).
// Called only off the hot path, with nothing staged.
func (sh *batchShard) dropIdleBatches() {
	kept := sh.batches[:0]
	for _, sb := range sh.batches {
		inUse := false
		for _, bs := range sh.sessions {
			if bs.sess.coreSession().Model() == sb.m {
				inUse = true
				break
			}
		}
		if inUse {
			kept = append(kept, sb)
		}
	}
	for i := len(kept); i < len(sh.batches); i++ {
		sh.batches[i] = nil
	}
	sh.batches = kept
}

// evict removes the session from the shard and closes its writer. flushPending
// has already run, so no staged entry can reference the session afterwards —
// the invariant that makes closing the reply channel safe.
func (sh *batchShard) evict(bs *batchSession) {
	for i, s := range sh.sessions {
		if s == bs {
			sh.sessions[i] = sh.sessions[len(sh.sessions)-1]
			sh.sessions[len(sh.sessions)-1] = nil
			sh.sessions = sh.sessions[:len(sh.sessions)-1]
			break
		}
	}
	close(bs.w.ch)
	sh.dropIdleBatches()
}

// reply appends one control frame to the session's reply stream — after any
// flush output, preserving the total server→client order.
func (sh *batchShard) reply(bs *batchSession, f *Frame) {
	if bs.w.dead.Load() {
		return
	}
	buf := bs.w.buffer()
	buf, _ = AppendFrame(buf, f)
	bs.w.send(buf)
}

// flush evaluates every staged group — one PredictBatch sweep per model epoch
// — fans the PREDICT frames back out in staging order, and (adaptive mode)
// records each prediction against its stream for label resolution: exactly
// the bookkeeping half Session.Observe would have done inline.
func (sh *batchShard) flush(cause *obs.Counter) {
	touched := sh.touched[:0]
	for _, sb := range sh.batches {
		n := sb.b.Len()
		if n == 0 {
			continue
		}
		mBatchSize.Observe(float64(n))
		preds, err := sb.b.Predict()
		for i := range sb.entries {
			e := &sb.entries[i]
			if err != nil {
				// The whole group failed (unbound-model fallback only): refuse
				// each staged session and let its reader evict it.
				sh.reply(e.bs, &Frame{Type: FrameError, Code: ErrCodeInternal, Message: err.Error()})
				e.bs.w.dead.Store(true)
				e.bs.w.nc.Close()
				continue
			}
			e.bs.sess.record(&e.cp, preds[i])
			if e.bs.w.dead.Load() {
				continue
			}
			if e.bs.pend == nil {
				e.bs.pend = e.bs.w.buffer()
				touched = append(touched, e.bs)
			}
			e.bs.pend, _ = AppendFrame(e.bs.pend, &Frame{
				Type:          FramePredict,
				Seq:           e.seq,
				Epoch:         e.epoch,
				TimeSec:       preds[i].TimeSec,
				TTFSec:        preds[i].TTFSec,
				CrashExpected: preds[i].CrashExpected,
			})
			mBatchLatency.Observe(time.Since(e.start).Seconds())
		}
		if err == nil {
			tcpMetrics.predictions.Add(uint64(n))
		}
		sb.b.Reset()
		sb.entries = sb.entries[:0]
	}
	for i, bs := range touched {
		bs.w.send(bs.pend)
		bs.pend = nil
		touched[i] = nil
	}
	sh.touched = touched[:0]
	sh.pending = 0
	cause.Inc()
	if sh.timerArmed {
		if !sh.timer.Stop() {
			select {
			case <-sh.timer.C:
			default:
			}
		}
		sh.timerArmed = false
	}
}
