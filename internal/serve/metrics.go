package serve

import "agingpred/internal/obs"

// The serving front-end's metric series, registered once at package init into
// the process-wide registry (agingfleet/agingserve expose it at /metrics).
// Handles are resolved per transport here, never on the per-frame hot path.
type transportMetrics struct {
	sessions    *obs.Counter
	frames      *obs.Counter
	predictions *obs.Counter
	latency     *obs.Histogram
}

var (
	mActiveSessions = obs.Default.Gauge("agingpred_serve_sessions_active",
		"Currently open prediction sessions across both transports.")
	mDraining = obs.Default.Gauge("agingpred_serve_draining",
		"1 while the server is draining for shutdown, else 0.")
	mModelSwaps = obs.Default.Counter("agingpred_serve_model_swaps_total",
		"Hot model reloads published to the serving epoch machinery.")

	mRejectSessions = rejectCounter("too-many-sessions")
	mRejectDraining = rejectCounter("draining")
	mRejectIdle     = rejectCounter("idle")
	mRejectBadFrame = rejectCounter("malformed")
	mRejectHello    = rejectCounter("handshake")

	tcpMetrics  = newTransportMetrics("tcp")
	httpMetrics = newTransportMetrics("http")

	// Batched-mode series (Config.Batch > 0). Batch latency is the batched
	// counterpart of agingpred_serve_frame_latency_seconds — observing stage
	// (checkpoint decoded) to prediction frame fanned out — so the two series
	// are the scalar-vs-batched latency A/B.
	mBatchSize = obs.Default.Histogram("agingpred_serve_batch_size",
		"Rows per cross-connection micro-batch flush.",
		obs.ExpBuckets(1, 2, 10))
	mBatchLatency = obs.Default.Histogram("agingpred_serve_batch_latency_seconds",
		"Batched-mode latency from checkpoint frame decoded to prediction frame fanned out.",
		obs.ExpBuckets(1e-6, 4, 10))

	mFlushSize     = flushCounter("size")
	mFlushDeadline = flushCounter("deadline")
	mFlushControl  = flushCounter("control")
	mFlushShutdown = flushCounter("shutdown")
)

func flushCounter(cause string) *obs.Counter {
	return obs.Default.Counter("agingpred_serve_batch_flushes_total",
		"Micro-batch flushes, by cause: batch full, deadline expired, control frame, or server shutdown.",
		obs.Label{Key: "cause", Value: cause})
}

func rejectCounter(reason string) *obs.Counter {
	return obs.Default.Counter("agingpred_serve_rejects_total",
		"Refused connections, sessions and frames, by reason.",
		obs.Label{Key: "reason", Value: reason})
}

func newTransportMetrics(transport string) *transportMetrics {
	l := obs.Label{Key: "transport", Value: transport}
	return &transportMetrics{
		sessions: obs.Default.Counter("agingpred_serve_sessions_total",
			"Prediction sessions opened, by transport.", l),
		frames: obs.Default.Counter("agingpred_serve_frames_total",
			"Frames (or NDJSON lines) received, by transport.", l),
		predictions: obs.Default.Counter("agingpred_serve_predictions_total",
			"Predictions returned over the network, by transport.", l),
		latency: obs.Default.Histogram("agingpred_serve_frame_latency_seconds",
			"Server-side latency from checkpoint frame decoded to prediction frame written.",
			obs.ExpBuckets(1e-6, 4, 10), l),
	}
}
