package serve

// Batch-window edge cases, each pinned with a typed-error or bit-identity
// assertion: a lone straggler flushed by the deadline, session eviction
// landing between stage and flush (CLOSE and idle timeout), and a drain
// starting while a batch is staged. Plus the interleaving fuzz target: any
// schedule of stage/flush/evict across connections must preserve each
// session's reply order and bit-identity.

import (
	"context"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
	"agingpred/internal/obs"
)

func srvActiveSessionsMetric() (float64, bool) {
	return obs.Default.Value("agingpred_serve_sessions_active")
}

// refFirstPrediction computes the local-reference prediction for the first
// checkpoint of a replayed instance — what a batched server must answer,
// whatever flush path delivered it.
func refFirstPrediction(t *testing.T, model *core.Model, seed uint64) (monitor.Checkpoint, core.Prediction) {
	t.Helper()
	var cp monitor.Checkpoint
	if fleet.NewReplay(seed, fleet.Specs(seed, 1)[0]).Step(&cp) {
		t.Fatal("instance crashed on its first checkpoint")
	}
	want, err := model.NewSession().Observe(cp)
	if err != nil {
		t.Fatal(err)
	}
	return cp, want
}

func assertBits(t *testing.T, got Prediction, want core.Prediction) {
	t.Helper()
	if math.Float64bits(got.TimeSec) != math.Float64bits(want.TimeSec) ||
		math.Float64bits(got.TTFSec) != math.Float64bits(want.TTFSec) ||
		got.CrashExpected != want.CrashExpected {
		t.Fatalf("served (t=%v ttf=%v crash=%v) != reference (t=%v ttf=%v crash=%v)",
			got.TimeSec, got.TTFSec, got.CrashExpected, want.TimeSec, want.TTFSec, want.CrashExpected)
	}
}

// TestBatchDeadlineStraggler pins the flush-on-deadline path: a single
// connection stages one row into a 64-row batch that will never fill, and the
// deadline flush must still deliver the bit-identical prediction — counted
// under the "deadline" flush cause.
func TestBatchDeadlineStraggler(t *testing.T) {
	model := goldenModel(t)
	srv := startServer(t, Config{Model: model, Batch: 64, BatchWindow: 20 * time.Millisecond, BatchShards: 1})
	conn, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cp, want := refFirstPrediction(t, model, 21)
	before := mFlushDeadline.Value()
	if err := conn.Send(1, &cp); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	assertBits(t, got, want)
	if after := mFlushDeadline.Value(); after <= before {
		t.Fatalf("deadline flush counter did not move (%d -> %d): straggler was flushed by something else", before, after)
	}
}

// TestBatchCloseBetweenStageAndFlush pins eviction-by-CLOSE mid-batch: with a
// window far longer than the test, a CHECKPOINT immediately followed by CLOSE
// (one pipelined write, so both land before any flush) must still produce the
// prediction — the control op flushes first — then the CLOSE echo, then EOF.
func TestBatchCloseBetweenStageAndFlush(t *testing.T) {
	model := goldenModel(t)
	srv := startServer(t, Config{Model: model, Batch: 64, BatchWindow: time.Minute, BatchShards: 1})
	nc, err := net.Dial("tcp", srv.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	cp, want := refFirstPrediction(t, model, 22)
	wire, _ := AppendFrame(nil, &Frame{Type: FrameHello, Version: ProtocolVersion})
	wire, _ = AppendFrame(wire, &Frame{Type: FrameCheckpoint, Seq: 1, Vec: *cp.Vec()})
	wire, _ = AppendFrame(wire, &Frame{Type: FrameClose})
	if _, err := nc.Write(wire); err != nil {
		t.Fatal(err)
	}

	fr := newFrameReader(nc, DefaultMaxFrameBytes)
	var f Frame
	if err := fr.Next(&f); err != nil || f.Type != FrameWelcome {
		t.Fatalf("WELCOME: %v %s", err, f.Type)
	}
	if err := fr.Next(&f); err != nil || f.Type != FramePredict {
		t.Fatalf("PREDICT before CLOSE echo: %v %s", err, f.Type)
	}
	assertBits(t, Prediction{TimeSec: f.TimeSec, TTFSec: f.TTFSec, CrashExpected: f.CrashExpected}, want)
	if err := fr.Next(&f); err != nil || f.Type != FrameClose {
		t.Fatalf("CLOSE echo: %v %s", err, f.Type)
	}
	waitFor(t, time.Second, func() bool { return srv.Sessions() == 0 })
}

// TestBatchIdleEvictionMidBatch pins eviction-by-idle-timeout mid-batch: the
// staged row's window (one minute) will not expire before the idle timeout
// (100ms) evicts the session, and the eviction must flush first — the client
// gets its prediction, then the typed idle refusal.
func TestBatchIdleEvictionMidBatch(t *testing.T) {
	model := goldenModel(t)
	srv := startServer(t, Config{
		Model: model, Batch: 64, BatchWindow: time.Minute, BatchShards: 1,
		IdleTimeout: 100 * time.Millisecond,
	})
	conn, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cp, want := refFirstPrediction(t, model, 23)
	if err := conn.Send(1, &cp); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatalf("prediction before idle eviction: %v", err)
	}
	assertBits(t, got, want)
	_, err = conn.Recv()
	var se *ServerError
	if !errors.As(err, &se) || se.Code != ErrCodeIdle {
		t.Fatalf("after idle eviction: got %v, want *ServerError{idle}", err)
	}
	waitFor(t, time.Second, func() bool { return srv.Sessions() == 0 })
}

// TestBatchDrainWithStagedBatch pins a drain starting while a batch is
// staged: the staged row's prediction is delivered (drain flushes, it does
// not drop), then the typed draining refusal, and Drain itself completes with
// the session table at zero.
func TestBatchDrainWithStagedBatch(t *testing.T) {
	model := goldenModel(t)
	srv := startServer(t, Config{Model: model, Batch: 64, BatchWindow: time.Minute, BatchShards: 1})
	conn, err := Dial(srv.TCPAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cp, want := refFirstPrediction(t, model, 24)
	framesBefore, _ := obs.Default.Value(`agingpred_serve_frames_total{transport="tcp"}`)
	if err := conn.Send(1, &cp); err != nil {
		t.Fatal(err)
	}
	type recvResult struct {
		got Prediction
		err error
	}
	results := make(chan recvResult, 2)
	go func() {
		got, err := conn.Recv()
		results <- recvResult{got, err}
		got, err = conn.Recv()
		results <- recvResult{got, err}
	}()
	// Recv flushed the checkpoint; wait until the server has decoded (and so
	// staged) it before draining, so the drain genuinely races a staged batch.
	waitFor(t, time.Second, func() bool {
		frames, _ := obs.Default.Value(`agingpred_serve_frames_total{transport="tcp"}`)
		return frames > framesBefore
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain with a staged batch: %v", err)
	}

	first := <-results
	if first.err != nil {
		t.Fatalf("staged prediction dropped by drain: %v", first.err)
	}
	assertBits(t, first.got, want)
	second := <-results
	var se *ServerError
	if !errors.As(second.err, &se) || se.Code != ErrCodeDraining {
		t.Fatalf("after drain: got %v, want *ServerError{draining}", second.err)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("sessions after drain: %d", n)
	}
}

// FuzzBatcherInterleaving drives a batched server with an arbitrary
// interleaving of stage (CHECKPOINT), flush triggers (size, deadline via
// pauses, control frames) and evictions (CLOSE) across three connections, and
// asserts the invariant the batcher exists to preserve: every session's
// replies arrive in its own send order, bit-identical to a local reference.
func FuzzBatcherInterleaving(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0xc6, 0x20, 0x21, 0xe6, 0x45, 0x66, 0x07})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x06, 0x06, 0x06, 0x06, 0x05, 0x00, 0x06})
	f.Add([]byte{0x20, 0x40, 0x00, 0x27, 0x47, 0x07, 0x20, 0x26})
	model := goldenModel(f)
	srv, err := Start(Config{
		Model: model, TCPAddr: "127.0.0.1:0",
		Batch: 4, BatchWindow: 100 * time.Microsecond, BatchShards: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 96 {
			script = script[:96]
		}
		const conns = 3
		type connState struct {
			conn    Conn
			replay  *fleet.Replay
			ref     *core.Session
			seq     uint32
			pending []pendingPred
			closed  bool
		}
		states := make([]*connState, conns)
		state := func(i int) *connState {
			if states[i] == nil {
				conn, err := Dial(srv.TCPAddr(), "")
				if err != nil {
					t.Fatalf("dial conn %d: %v", i, err)
				}
				seed := uint64(200 + i)
				states[i] = &connState{
					conn:   conn,
					replay: fleet.NewReplay(seed, fleet.Specs(seed, 1)[0]),
					ref:    model.NewSession(),
				}
			}
			return states[i]
		}
		recvOne := func(c *connState) {
			if len(c.pending) == 0 {
				return
			}
			got, err := c.conn.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			p := c.pending[0]
			c.pending = c.pending[1:]
			if got.Seq != p.seq {
				t.Fatalf("reply seq %d, want %d: per-session order broken", got.Seq, p.seq)
			}
			if math.Float64bits(got.TTFSec) != math.Float64bits(p.want.TTFSec) ||
				math.Float64bits(got.TimeSec) != math.Float64bits(p.want.TimeSec) {
				t.Fatalf("seq %d: served ttf %v != reference %v", p.seq, got.TTFSec, p.want.TTFSec)
			}
		}
		restart := func(c *connState) {
			c.replay.Restart()
			c.ref = model.NewSession()
		}

		for _, b := range script {
			c := state(int(b>>5) % conns)
			if c.closed {
				continue
			}
			switch b & 7 {
			case 0, 1, 2, 3: // stage one checkpoint
				var cp monitor.Checkpoint
				if c.replay.Step(&cp) {
					c.conn.Resolve(ResolveCrash, c.replay.TimeSec())
					if err := c.conn.Reset(); err != nil {
						t.Fatalf("reset after crash: %v", err)
					}
					restart(c)
					continue
				}
				want, err := c.ref.Observe(cp)
				if err != nil {
					t.Fatalf("reference observe: %v", err)
				}
				c.seq++
				if err := c.conn.Send(c.seq, &cp); err != nil {
					t.Fatalf("send: %v", err)
				}
				c.pending = append(c.pending, pendingPred{seq: c.seq, want: want})
			case 4: // censored resolve between stage and flush
				if err := c.conn.Resolve(ResolveCensored, 0); err != nil {
					t.Fatalf("resolve: %v", err)
				}
			case 5: // reset between stage and flush
				if err := c.conn.Reset(); err != nil {
					t.Fatalf("reset: %v", err)
				}
				restart(c)
			case 6: // collect one reply
				recvOne(c)
			case 7: // evict: CLOSE, possibly with rows still staged
				c.conn.Close()
				c.closed = true
			}
		}
		for _, c := range states {
			if c == nil || c.closed {
				continue
			}
			for len(c.pending) > 0 {
				recvOne(c)
			}
			c.conn.Close()
		}
	})
}
