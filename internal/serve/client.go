package serve

// Client side of both transports, shared by agingload, the examples and the
// end-to-end tests. A Conn is one prediction stream; the two dialers return
// the same interface so a load generator A/Bs transports by swapping one
// constructor.
//
// The binary client pipelines: Send queues a checkpoint without waiting for
// its prediction, Recv collects the next prediction in order, and a bounded
// outstanding window (the caller alternates Send and Recv batches) keeps both
// directions of the socket busy — that is where the ≥100k checkpoints/sec
// loopback numbers come from, not from any server-side trick.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// Conn is one client-side prediction stream over either transport. Not safe
// for concurrent use; connections are the unit of concurrency, exactly like
// the sessions they own server-side.
type Conn interface {
	// Send queues one checkpoint for prediction under the given sequence
	// number. It may buffer; predictions are collected with Recv, in send
	// order.
	Send(seq uint32, cp *monitor.Checkpoint) error
	// Recv returns the next prediction. A typed server refusal comes back as
	// a *ServerError.
	Recv() (Prediction, error)
	// Resolve reports the stream outcome (adaptive serving's label feedback).
	Resolve(kind ResolveKind, crashTimeSec float64) error
	// Reset starts a fresh stream on the same connection, adopting the
	// server's current model epoch.
	Reset() error
	// Epoch returns the server's model epoch as of the handshake.
	Epoch() uint32
	// Close ends the conversation and releases the connection.
	Close() error
}

// Prediction is one server answer, with the epoch that produced it.
type Prediction struct {
	Seq           uint32
	Epoch         uint32
	TimeSec       float64
	TTFSec        float64
	CrashExpected bool
}

// Pred converts to the library's core.Prediction, for bit-for-bit comparison
// against a local reference session.
func (p Prediction) Pred() core.Prediction {
	return core.Prediction{
		TimeSec:       p.TimeSec,
		TTF:           time.Duration(p.TTFSec * float64(time.Second)),
		TTFSec:        p.TTFSec,
		CrashExpected: p.CrashExpected,
	}
}

// ServerError is a typed refusal from the server (an ERROR frame, or its
// NDJSON line equivalent).
type ServerError struct {
	Code    ErrorCode
	Message string
}

// Error formats the refusal.
func (e *ServerError) Error() string {
	return fmt.Sprintf("serve: server refused: %s: %s", e.Code, e.Message)
}

// binaryConn speaks the frame protocol.
type binaryConn struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	fr    *frameReader
	out   []byte
	f     Frame
	epoch uint32
}

// Dial opens a binary-transport prediction stream: TCP connect, HELLO with
// the schema name ("" accepts whatever the server serves), WELCOME back.
func Dial(addr, schema string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &binaryConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	c.fr = newFrameReader(c.br, DefaultMaxFrameBytes)
	c.out, _ = AppendFrame(c.out[:0], &Frame{Type: FrameHello, Version: ProtocolVersion, Schema: schema})
	if _, err := c.bw.Write(c.out); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.fr.Next(&c.f); err != nil {
		nc.Close()
		return nil, fmt.Errorf("serve: reading WELCOME: %w", err)
	}
	switch c.f.Type {
	case FrameWelcome:
		c.epoch = c.f.Epoch
		return c, nil
	case FrameError:
		err := &ServerError{Code: c.f.Code, Message: c.f.Message}
		nc.Close()
		return nil, err
	default:
		nc.Close()
		return nil, fmt.Errorf("serve: expected WELCOME, got %s", c.f.Type)
	}
}

func (c *binaryConn) Send(seq uint32, cp *monitor.Checkpoint) error {
	c.f = Frame{Type: FrameCheckpoint, Seq: seq, Vec: *cp.Vec()}
	var err error
	if c.out, err = AppendFrame(c.out[:0], &c.f); err != nil {
		return err
	}
	_, err = c.bw.Write(c.out)
	return err
}

func (c *binaryConn) Recv() (Prediction, error) {
	// Everything queued must be on the wire before blocking for the answer.
	if err := c.bw.Flush(); err != nil {
		return Prediction{}, err
	}
	if err := c.fr.Next(&c.f); err != nil {
		return Prediction{}, err
	}
	switch c.f.Type {
	case FramePredict:
		return Prediction{
			Seq:           c.f.Seq,
			Epoch:         c.f.Epoch,
			TimeSec:       c.f.TimeSec,
			TTFSec:        c.f.TTFSec,
			CrashExpected: c.f.CrashExpected,
		}, nil
	case FrameError:
		return Prediction{}, &ServerError{Code: c.f.Code, Message: c.f.Message}
	case FrameClose:
		return Prediction{}, io.EOF
	default:
		return Prediction{}, fmt.Errorf("serve: expected PREDICT, got %s", c.f.Type)
	}
}

func (c *binaryConn) control(f Frame) error {
	var err error
	if c.out, err = AppendFrame(c.out[:0], &f); err != nil {
		return err
	}
	if _, err = c.bw.Write(c.out); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *binaryConn) Resolve(kind ResolveKind, crashTimeSec float64) error {
	return c.control(Frame{Type: FrameResolve, Kind: kind, CrashTimeSec: crashTimeSec})
}

func (c *binaryConn) Reset() error { return c.control(Frame{Type: FrameReset}) }

func (c *binaryConn) Epoch() uint32 { return c.epoch }

func (c *binaryConn) Close() error {
	c.control(Frame{Type: FrameClose})
	return c.nc.Close()
}

// httpConn speaks NDJSON over one chunked POST. The POST round-trip runs on
// its own goroutine: net/http does not put the request headers on the wire
// until the first body chunk, and the server cannot answer until it sees
// them, so a dial that blocked for the response before allowing a Send would
// deadlock against its own transport. Instead Sends flow immediately and the
// first Recv (or Epoch) rendezvouses with the response.
type httpConn struct {
	enc    *json.Encoder
	pw     *io.PipeWriter
	respCh chan *http.Response
	errCh  chan error

	dec   *json.Decoder
	resp  *http.Response
	ready bool
	epoch uint32
}

// DialHTTP opens an NDJSON prediction stream: one chunked POST to
// baseURL/v1/stream, request lines up, prediction lines down.
func DialHTTP(baseURL, schema string) (Conn, error) {
	url := baseURL + "/v1/stream"
	if schema != "" {
		url += "?schema=" + schema
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	c := &httpConn{
		enc:    json.NewEncoder(pw),
		pw:     pw,
		respCh: make(chan *http.Response, 1),
		errCh:  make(chan error, 1),
	}
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			pw.CloseWithError(err)
			c.errCh <- err
			return
		}
		c.respCh <- resp
	}()
	return c, nil
}

// await collects the POST's response the first time something needs it.
func (c *httpConn) await() error {
	if c.ready {
		if c.resp == nil {
			return errors.New("serve: stream failed to open")
		}
		return nil
	}
	c.ready = true
	var resp *http.Response
	select {
	case resp = <-c.respCh:
	case err := <-c.errCh:
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		code := ErrCodeInternal
		if name := resp.Header.Get("Agingpred-Error-Code"); name != "" {
			code = parseErrorCode(name)
		}
		err := &ServerError{Code: code, Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, msg)}
		// Unblock any in-flight or future Sends: nothing will read the pipe.
		c.pw.CloseWithError(err)
		return err
	}
	c.resp = resp
	c.dec = json.NewDecoder(resp.Body)
	epoch, _ := strconv.ParseUint(resp.Header.Get("Agingpred-Epoch"), 10, 32)
	c.epoch = uint32(epoch)
	return nil
}

func (c *httpConn) Send(seq uint32, cp *monitor.Checkpoint) error {
	return c.enc.Encode(StreamRequest{Seq: seq, Checkpoint: cp})
}

func (c *httpConn) Recv() (Prediction, error) {
	if err := c.await(); err != nil {
		return Prediction{}, err
	}
	var rep StreamReply
	if err := c.dec.Decode(&rep); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.EOF
		}
		return Prediction{}, err
	}
	if rep.Error != nil {
		return Prediction{}, &ServerError{Code: parseErrorCode(rep.Error.Code), Message: rep.Error.Message}
	}
	if rep.Predict == nil {
		return Prediction{}, errors.New("serve: reply line carries no prediction")
	}
	return Prediction{
		Seq:           rep.Seq,
		Epoch:         rep.Predict.Epoch,
		TimeSec:       rep.Predict.TimeSec,
		TTFSec:        rep.Predict.TTFSec,
		CrashExpected: rep.Predict.CrashExpected,
	}, nil
}

func (c *httpConn) Resolve(kind ResolveKind, crashTimeSec float64) error {
	res := &StreamResolve{Kind: "censored"}
	if kind == ResolveCrash {
		res.Kind = "crash"
		res.CrashTimeSec = crashTimeSec
	}
	return c.enc.Encode(StreamRequest{Resolve: res})
}

func (c *httpConn) Reset() error {
	return c.enc.Encode(StreamRequest{Reset: true})
}

// Epoch returns the server's model epoch from the response headers; it
// blocks until the stream opens (send at least one line first, or the
// request may still be unsent).
func (c *httpConn) Epoch() uint32 {
	c.await()
	return c.epoch
}

func (c *httpConn) Close() error {
	c.enc.Encode(StreamRequest{Close: true})
	c.pw.Close()
	if err := c.await(); err != nil {
		return nil // refused streams have nothing left to drain
	}
	io.Copy(io.Discard, c.resp.Body)
	return c.resp.Body.Close()
}

// parseErrorCode maps an NDJSON error-code name back to its ErrorCode.
func parseErrorCode(name string) ErrorCode {
	for c := ErrCodeMalformed; c <= ErrCodeInternal; c++ {
		if c.String() == name {
			return c
		}
	}
	return ErrCodeInternal
}
