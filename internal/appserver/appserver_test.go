package appserver

import (
	"testing"
	"time"

	"agingpred/internal/jvm"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

func newTestServer(t testing.TB, cfg Config) (*Server, *simclock.Scheduler) {
	t.Helper()
	sched := simclock.NewScheduler(nil)
	srv, err := New(cfg, sched, rng.New(1234))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, sched
}

func submitOK(t testing.TB, srv *Server, sched *simclock.Scheduler, interaction tpcw.Interaction) bool {
	t.Helper()
	var result *bool
	srv.Submit(tpcw.Request{EB: 0, Interaction: interaction, IssuedAt: sched.Now()}, func(ok bool) {
		result = &ok
	})
	sched.RunUntil(sched.Now() + 10*time.Second)
	if result == nil {
		t.Fatalf("request did not complete within 10 simulated seconds")
	}
	return *result
}

func TestNewValidation(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	if _, err := New(Config{}, nil, rng.New(1)); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := New(Config{}, sched, nil); err == nil {
		t.Fatalf("nil rng accepted")
	}
	if _, err := New(Config{Heap: jvm.Config{MaxHeapMB: 10, YoungMB: 128, PermMB: 64, InitialOldMB: 256}}, sched, rng.New(1)); err == nil {
		t.Fatalf("invalid heap config accepted")
	}
	srv, err := New(Config{}, sched, rng.New(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := srv.Config()
	if cfg.MaxWorkerThreads != 200 || cfg.CPUs != 4 || cfg.SystemMemoryMB != 2048 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestRequestLifecycle(t *testing.T) {
	srv, sched := newTestServer(t, Config{})
	if !submitOK(t, srv, sched, tpcw.Home) {
		t.Fatalf("request failed on a healthy server")
	}
	snap := srv.Snapshot()
	if snap.CompletedRequests != 1 || snap.FailedRequests != 0 {
		t.Fatalf("counters after one request: %+v", snap)
	}
	if snap.SumResponseSec <= 0 {
		t.Fatalf("no response time recorded")
	}
	if snap.ActiveRequests != 0 {
		t.Fatalf("worker not released: %d active", snap.ActiveRequests)
	}
	if snap.Crashed {
		t.Fatalf("server crashed after one request")
	}
}

func TestSearchRequestHookFires(t *testing.T) {
	srv, sched := newTestServer(t, Config{})
	hookCalls := 0
	srv.OnSearchRequest(func() { hookCalls++ })
	srv.OnSearchRequest(nil) // must be ignored, not panic

	submitOK(t, srv, sched, tpcw.SearchRequest)
	submitOK(t, srv, sched, tpcw.Home)
	submitOK(t, srv, sched, tpcw.SearchRequest)

	if hookCalls != 2 {
		t.Fatalf("search hook fired %d times, want 2", hookCalls)
	}
	if srv.Snapshot().SearchRequests != 2 {
		t.Fatalf("SearchRequests counter = %d, want 2", srv.Snapshot().SearchRequests)
	}
}

func TestWritesTakeLongerOnAverage(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	// Compare mean service times directly (the jitter band is ±30%, so use
	// many samples).
	var readSum, writeSum float64
	const n = 2000
	for i := 0; i < n; i++ {
		readSum += srv.serviceTime(tpcw.Request{Interaction: tpcw.Home}).Seconds()
		writeSum += srv.serviceTime(tpcw.Request{Interaction: tpcw.BuyConfirm}).Seconds()
	}
	if writeSum <= readSum {
		t.Fatalf("write requests are not slower on average: read %v, write %v", readSum/n, writeSum/n)
	}
}

func TestMemoryLeakInjectionCrashesWithOOM(t *testing.T) {
	srv, sched := newTestServer(t, Config{})
	crashSeen := false
	srv.OnCrash(func(r CrashReason) {
		crashSeen = true
		if r != CrashOutOfMemory {
			t.Errorf("crash reason = %q, want OOM", r)
		}
	})
	srv.OnCrash(nil)
	// Leak 2 GB into a 1 GB heap, 10 MB at a time.
	for i := 0; i < 200 && !srv.Crashed(); i++ {
		srv.InjectLeakMB(10)
	}
	if !srv.Crashed() || !crashSeen {
		t.Fatalf("server did not crash after exhausting the heap")
	}
	if srv.CrashReason() != CrashOutOfMemory {
		t.Fatalf("CrashReason = %q", srv.CrashReason())
	}
	// Requests after the crash fail immediately.
	if submitOK(t, srv, sched, tpcw.Home) {
		t.Fatalf("request succeeded on a crashed server")
	}
	// Injecting on a crashed server is a no-op.
	srv.InjectLeakMB(10)
	srv.InjectRetainedMB(10)
	srv.ReleaseRetainedMB(10)
	srv.LeakThreads(10)
}

func TestThreadLeakCrashesWithThreadExhaustion(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	srv.OnCrash(func(r CrashReason) {
		if r != CrashThreadExhaustion && r != CrashOutOfMemory && r != CrashSystemMemory {
			t.Errorf("unexpected crash reason %q", r)
		}
	})
	for i := 0; i < 500 && !srv.Crashed(); i++ {
		srv.LeakThreads(5)
	}
	if !srv.Crashed() {
		t.Fatalf("server did not crash after leaking %d threads", srv.LeakedThreads())
	}
	if srv.CrashReason() != CrashThreadExhaustion {
		t.Fatalf("CrashReason = %q, want thread exhaustion", srv.CrashReason())
	}
	// The crash must happen around the process thread limit.
	if srv.Snapshot().NumThreads < srv.Config().MaxProcessThreads-10 {
		t.Fatalf("crashed with only %d threads (limit %d)", srv.Snapshot().NumThreads, srv.Config().MaxProcessThreads)
	}
}

func TestLeakedThreadsConsumeHeap(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	before := srv.Heap().OldLeakedMB()
	srv.LeakThreads(100)
	after := srv.Heap().OldLeakedMB()
	if after <= before {
		t.Fatalf("leaking threads did not consume heap (the coupling of experiment 4.4)")
	}
	if srv.LeakedThreads() != 100 {
		t.Fatalf("LeakedThreads = %d, want 100", srv.LeakedThreads())
	}
	snap := srv.Snapshot()
	if snap.LeakedThreads != 100 {
		t.Fatalf("snapshot LeakedThreads = %d", snap.LeakedThreads)
	}
	if snap.NumThreads <= srv.Config().BaseThreads+100-1 {
		t.Fatalf("NumThreads = %d does not include leaked threads", snap.NumThreads)
	}
}

func TestRetainedMemoryAcquireRelease(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	srv.InjectRetainedMB(200)
	if got := srv.Heap().OldRetainedMB(); got != 200 {
		t.Fatalf("retained = %v, want 200", got)
	}
	srv.ReleaseRetainedMB(150)
	if got := srv.Heap().OldRetainedMB(); got != 50 {
		t.Fatalf("retained after release = %v, want 50", got)
	}
}

func TestQueueingUnderOverload(t *testing.T) {
	// Tiny worker pool: the 3rd concurrent request must queue, not fail.
	srv, sched := newTestServer(t, Config{MaxWorkerThreads: 2, MaxQueuedRequests: 10})
	results := make([]bool, 0, 5)
	for i := 0; i < 5; i++ {
		srv.Submit(tpcw.Request{EB: i, Interaction: tpcw.Home, IssuedAt: sched.Now()}, func(ok bool) {
			results = append(results, ok)
		})
	}
	snap := srv.Snapshot()
	if snap.ActiveRequests != 2 {
		t.Fatalf("active = %d, want 2 (pool size)", snap.ActiveRequests)
	}
	if snap.QueuedRequests != 3 {
		t.Fatalf("queued = %d, want 3", snap.QueuedRequests)
	}
	sched.RunUntil(30 * time.Second)
	if len(results) != 5 {
		t.Fatalf("only %d of 5 requests completed", len(results))
	}
	for i, ok := range results {
		if !ok {
			t.Fatalf("request %d failed under queuing", i)
		}
	}
	if srv.Snapshot().CompletedRequests != 5 {
		t.Fatalf("completed = %d, want 5", srv.Snapshot().CompletedRequests)
	}
}

func TestQueueOverflowRejects(t *testing.T) {
	srv, sched := newTestServer(t, Config{MaxWorkerThreads: 1, MaxQueuedRequests: 2})
	failures := 0
	for i := 0; i < 10; i++ {
		srv.Submit(tpcw.Request{EB: i, Interaction: tpcw.Home, IssuedAt: sched.Now()}, func(ok bool) {
			if !ok {
				failures++
			}
		})
	}
	if failures != 7 { // 1 running + 2 queued accepted, 7 rejected
		t.Fatalf("rejected %d of 10 requests, want 7", failures)
	}
	if srv.Crashed() {
		t.Fatalf("overload crashed the server; it must only reject")
	}
}

func TestServiceTimeDegradesNearHeapExhaustion(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	req := tpcw.Request{Interaction: tpcw.Home}
	var healthySum float64
	const n = 500
	for i := 0; i < n; i++ {
		healthySum += srv.serviceTime(req).Seconds()
	}
	// Age the server: leak until ~90% of the old zone.
	target := srv.Heap().OldMaxMB() * 0.9
	for srv.Heap().OldLeakedMB() < target && !srv.Crashed() {
		srv.InjectLeakMB(10)
	}
	var agedSum float64
	for i := 0; i < n; i++ {
		agedSum += srv.serviceTime(req).Seconds()
	}
	if agedSum <= healthySum*1.5 {
		t.Fatalf("service time did not degrade near exhaustion: healthy %v, aged %v", healthySum/n, agedSum/n)
	}
}

func TestSnapshotMetricsSane(t *testing.T) {
	srv, sched := newTestServer(t, Config{})
	for i := 0; i < 50; i++ {
		submitOK(t, srv, sched, tpcw.ProductDetail)
	}
	snap := srv.Snapshot()
	if snap.TimeSec <= 0 {
		t.Fatalf("TimeSec = %v", snap.TimeSec)
	}
	if snap.TomcatMemoryMB <= 0 || snap.SystemMemUsedMB <= snap.TomcatMemoryMB-1 {
		t.Fatalf("memory accounting wrong: tomcat %v, system %v", snap.TomcatMemoryMB, snap.SystemMemUsedMB)
	}
	if snap.SystemMemUsedMB > srv.Config().SystemMemoryMB {
		t.Fatalf("system memory used %v exceeds physical %v", snap.SystemMemUsedMB, srv.Config().SystemMemoryMB)
	}
	if snap.SwapFreeMB > srv.Config().SwapMB || snap.SwapFreeMB < 0 {
		t.Fatalf("swap free %v out of range", snap.SwapFreeMB)
	}
	if snap.DiskUsedMB <= srv.Config().DiskBaseMB {
		t.Fatalf("disk usage did not grow with completed requests")
	}
	if snap.NumProcesses < srv.Config().BaseProcesses {
		t.Fatalf("NumProcesses = %d", snap.NumProcesses)
	}
	if snap.YoungMaxMB <= 0 || snap.OldMaxMB <= 0 {
		t.Fatalf("heap zone capacities missing: %+v", snap)
	}
	if snap.NumThreads < srv.Config().BaseThreads {
		t.Fatalf("NumThreads = %d below base threads", snap.NumThreads)
	}
}

func TestLoadIntegralGrowsUnderLoad(t *testing.T) {
	srv, sched := newTestServer(t, Config{MaxWorkerThreads: 8})
	for i := 0; i < 8; i++ {
		srv.Submit(tpcw.Request{EB: i, Interaction: tpcw.BestSellers, IssuedAt: sched.Now()}, func(bool) {})
	}
	sched.RunUntil(5 * time.Second)
	snap := srv.Snapshot()
	if snap.LoadIntegral <= 0 {
		t.Fatalf("load integral did not accumulate: %v", snap.LoadIntegral)
	}
}

func TestCrashIsIdempotentAndFailsQueued(t *testing.T) {
	srv, sched := newTestServer(t, Config{MaxWorkerThreads: 1, MaxQueuedRequests: 5})
	var failed int
	// One running and several queued requests.
	for i := 0; i < 4; i++ {
		srv.Submit(tpcw.Request{EB: i, Interaction: tpcw.Home, IssuedAt: sched.Now()}, func(ok bool) {
			if !ok {
				failed++
			}
		})
	}
	crashes := 0
	srv.OnCrash(func(CrashReason) { crashes++ })
	srv.Crash(CrashSystemMemory)
	srv.Crash(CrashOutOfMemory) // second crash must be ignored
	if crashes != 1 {
		t.Fatalf("crash callback fired %d times", crashes)
	}
	if srv.CrashReason() != CrashSystemMemory {
		t.Fatalf("second Crash overwrote the reason: %q", srv.CrashReason())
	}
	if failed != 3 { // the 3 queued requests fail; the running one is in flight
		t.Fatalf("crash failed %d queued requests, want 3", failed)
	}
	if srv.CrashTime() != sched.Now() {
		t.Fatalf("CrashTime = %v, want %v", srv.CrashTime(), sched.Now())
	}
}

func TestSubmitNilDoneDoesNotPanic(t *testing.T) {
	srv, sched := newTestServer(t, Config{})
	srv.Submit(tpcw.Request{Interaction: tpcw.Home, IssuedAt: sched.Now()}, nil)
	sched.RunUntil(5 * time.Second)
	if srv.Snapshot().CompletedRequests != 1 {
		t.Fatalf("request with nil done was not processed")
	}
}

func TestLeakDBConnectionsCrashesAtPoolLimit(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	srv.LeakDBConnections(0)
	srv.LeakDBConnections(-5)
	if srv.LeakedDBConnections() != 0 {
		t.Fatalf("non-positive leaks changed the count: %d", srv.LeakedDBConnections())
	}
	srv.LeakDBConnections(40)
	if srv.LeakedDBConnections() != 40 || srv.Crashed() {
		t.Fatalf("after 40 leaks: leaked=%d crashed=%v", srv.LeakedDBConnections(), srv.Crashed())
	}
	snap := srv.Snapshot()
	if snap.LeakedDBConns != 40 || snap.MySQLConnections != 40 {
		t.Fatalf("snapshot does not report leaked connections: %+v", snap)
	}
	srv.LeakDBConnections(200)
	if !srv.Crashed() || srv.CrashReason() != CrashConnectionExhaustion {
		t.Fatalf("pool exhaustion did not crash: crashed=%v reason=%q", srv.Crashed(), srv.CrashReason())
	}
	if srv.LeakedDBConnections() < srv.Config().MaxDBConnections {
		t.Fatalf("crash before reaching the pool limit: %d", srv.LeakedDBConnections())
	}
	before := srv.LeakedDBConnections()
	srv.LeakDBConnections(3)
	if srv.LeakedDBConnections() != before {
		t.Fatalf("leaks continued after the crash")
	}
}

func TestLeakedConnectionsShrinkRequestPool(t *testing.T) {
	srv, sched := newTestServer(t, Config{MaxDBConnections: 10})
	srv.LeakDBConnections(9)
	// One connection left: a write request (wanting 2) must be clamped to 1
	// and still succeed, and the pool must never exceed the limit.
	if !submitOK(t, srv, sched, tpcw.BuyConfirm) {
		t.Fatalf("request failed with one free connection")
	}
	if snap := srv.Snapshot(); snap.MySQLConnections > 10 {
		t.Fatalf("pool over limit: %+v", snap.MySQLConnections)
	}
}
