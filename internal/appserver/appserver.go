// Package appserver simulates the application-server tier of the paper's
// testbed: an Apache Tomcat 5.5 instance serving the TPC-W servlets on top
// of a JVM with a 1 GB heap, backed by a MySQL database, on a 4-way machine
// with 2 GB of RAM (Table 1 of the paper).
//
// The simulation is deliberately phenomenological: it models the quantities
// the monitoring subsystem samples every 15 seconds (Table 2) and the three
// ways the real server dies under software aging — heap exhaustion, thread
// exhaustion, and running the machine out of memory — rather than parsing
// HTTP or executing SQL. Requests occupy a worker thread for a
// load-dependent service time, allocate transient heap, open database
// connections, and push all the derived metrics (throughput, response time,
// load, connection counts) that the predictor is trained on.
package appserver

import (
	"errors"
	"fmt"
	"math"
	"time"

	"agingpred/internal/jvm"
	"agingpred/internal/rng"
	"agingpred/internal/simclock"
	"agingpred/internal/tpcw"
)

// Config describes the simulated server. Zero fields take the defaults that
// mirror the paper's testbed (Table 1).
type Config struct {
	// Heap configures the simulated JVM heap (default: 1 GB max heap).
	Heap jvm.Config
	// MaxWorkerThreads is the Tomcat worker pool limit (default 200).
	MaxWorkerThreads int
	// BaseThreads is the number of non-worker threads of the process: JVM GC
	// threads, Tomcat acceptors, timers (default 45).
	BaseThreads int
	// MaxProcessThreads is the hard limit of threads the process can create
	// before thread creation fails and the server crashes (default 1024).
	MaxProcessThreads int
	// MaxDBConnections is the MySQL connection pool size (default 100).
	MaxDBConnections int
	// MaxQueuedRequests is the accept-queue length; requests beyond it are
	// rejected (default 500).
	MaxQueuedRequests int
	// CPUs is the number of processors of the machine (default 4).
	CPUs int
	// BaseServiceTime is the no-contention CPU time of a request
	// (default 25 ms).
	BaseServiceTime time.Duration
	// DBServiceTime is the additional database time of a request; write
	// interactions pay twice this (default 20 ms).
	DBServiceTime time.Duration
	// RequestAllocMB is the mean transient heap allocation per request
	// (default 0.25 MB).
	RequestAllocMB float64
	// SystemMemoryMB is the physical memory of the machine (default 2048,
	// Table 1: 2 GB RAM).
	SystemMemoryMB float64
	// SwapMB is the swap space of the machine (default 2048).
	SwapMB float64
	// OtherProcessesMB is the memory used by everything that is not the
	// application server: OS, monitoring agent, etc. (default 450).
	OtherProcessesMB float64
	// BaseProcesses is the number of OS processes on the machine
	// (default 115).
	BaseProcesses int
	// DiskBaseMB is the initial disk usage (default 12000).
	DiskBaseMB float64
	// LogBytesPerRequest is how much disk each completed request consumes in
	// access logs, in MB (default 0.002).
	LogBytesPerRequest float64
}

func (c Config) withDefaults() Config {
	def := Config{
		Heap:               c.Heap,
		MaxWorkerThreads:   200,
		BaseThreads:        45,
		MaxProcessThreads:  1024,
		MaxDBConnections:   100,
		MaxQueuedRequests:  500,
		CPUs:               4,
		BaseServiceTime:    25 * time.Millisecond,
		DBServiceTime:      20 * time.Millisecond,
		RequestAllocMB:     0.25,
		SystemMemoryMB:     2048,
		SwapMB:             2048,
		OtherProcessesMB:   450,
		BaseProcesses:      115,
		DiskBaseMB:         12000,
		LogBytesPerRequest: 0.002,
	}
	if c.MaxWorkerThreads > 0 {
		def.MaxWorkerThreads = c.MaxWorkerThreads
	}
	if c.BaseThreads > 0 {
		def.BaseThreads = c.BaseThreads
	}
	if c.MaxProcessThreads > 0 {
		def.MaxProcessThreads = c.MaxProcessThreads
	}
	if c.MaxDBConnections > 0 {
		def.MaxDBConnections = c.MaxDBConnections
	}
	if c.MaxQueuedRequests > 0 {
		def.MaxQueuedRequests = c.MaxQueuedRequests
	}
	if c.CPUs > 0 {
		def.CPUs = c.CPUs
	}
	if c.BaseServiceTime > 0 {
		def.BaseServiceTime = c.BaseServiceTime
	}
	if c.DBServiceTime > 0 {
		def.DBServiceTime = c.DBServiceTime
	}
	if c.RequestAllocMB > 0 {
		def.RequestAllocMB = c.RequestAllocMB
	}
	if c.SystemMemoryMB > 0 {
		def.SystemMemoryMB = c.SystemMemoryMB
	}
	if c.SwapMB > 0 {
		def.SwapMB = c.SwapMB
	}
	if c.OtherProcessesMB > 0 {
		def.OtherProcessesMB = c.OtherProcessesMB
	}
	if c.BaseProcesses > 0 {
		def.BaseProcesses = c.BaseProcesses
	}
	if c.DiskBaseMB > 0 {
		def.DiskBaseMB = c.DiskBaseMB
	}
	if c.LogBytesPerRequest > 0 {
		def.LogBytesPerRequest = c.LogBytesPerRequest
	}
	return def
}

// CrashReason identifies why the server failed.
type CrashReason string

// The three failure modes the testbed can reach, matching the aging-related
// crashes discussed in the paper.
const (
	// CrashOutOfMemory is a java.lang.OutOfMemoryError from heap exhaustion.
	CrashOutOfMemory CrashReason = "out of memory (Java heap)"
	// CrashThreadExhaustion is the JVM failing to create a native thread.
	CrashThreadExhaustion CrashReason = "unable to create new native thread"
	// CrashSystemMemory is the machine running out of physical memory + swap.
	CrashSystemMemory CrashReason = "system memory exhausted"
	// CrashConnectionExhaustion is the database connection pool fully leaked:
	// no request can obtain a connection anymore and the server is effectively
	// dead (the third injectable resource, beyond the paper's memory and
	// threads).
	CrashConnectionExhaustion CrashReason = "database connection pool exhausted"
)

// Server is the simulated application server. It is driven from a single
// goroutine by the discrete-event scheduler and is not safe for concurrent
// use.
type Server struct {
	cfg   Config
	sched *simclock.Scheduler
	src   *rng.Source
	heap  *jvm.Heap

	// Worker pool and request queue.
	busyWorkers      int
	peakWorkers      int
	queue            []queuedRequest
	leakedThreads    int
	activeDBConns    int
	leakedDBConns    int
	rejectedRequests uint64

	// Cumulative counters (the monitor derives per-interval rates from
	// these).
	completedRequests uint64
	failedRequests    uint64
	sumResponseSec    float64
	searchRequests    uint64

	// Aggregate load tracking: integral of busy workers over time, for a
	// UNIX-style load average.
	loadIntegral   float64
	lastLoadUpdate time.Duration

	diskUsedMB float64

	crashed     bool
	crashTime   time.Duration
	crashReason CrashReason
	onCrash     []func(CrashReason)

	searchHooks []func()
}

type queuedRequest struct {
	req  tpcw.Request
	done func(ok bool)
}

// New creates a server bound to the scheduler. The random source provides
// the service-time jitter and must be dedicated to this server.
func New(cfg Config, sched *simclock.Scheduler, src *rng.Source) (*Server, error) {
	if sched == nil {
		return nil, errors.New("appserver: nil scheduler")
	}
	if src == nil {
		return nil, errors.New("appserver: nil random source")
	}
	cfg = cfg.withDefaults()
	heap, err := jvm.NewHeap(cfg.Heap)
	if err != nil {
		return nil, fmt.Errorf("appserver: creating heap: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		sched:      sched,
		src:        src,
		heap:       heap,
		diskUsedMB: cfg.DiskBaseMB,
	}
	s.heap.SetLiveThreads(s.totalThreads())
	return s, nil
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Heap returns the server's simulated JVM heap.
func (s *Server) Heap() *jvm.Heap { return s.heap }

// OnSearchRequest registers a hook invoked every time the search servlet
// (TPCW_Search_request_servlet) runs. The memory-leak injector attaches
// here, exactly as the paper patches that servlet.
func (s *Server) OnSearchRequest(hook func()) {
	if hook != nil {
		s.searchHooks = append(s.searchHooks, hook)
	}
}

// OnCrash registers a callback invoked once when the server crashes.
func (s *Server) OnCrash(fn func(CrashReason)) {
	if fn != nil {
		s.onCrash = append(s.onCrash, fn)
	}
}

// Crashed reports whether the server has failed.
func (s *Server) Crashed() bool { return s.crashed }

// CrashTime returns the simulated time of the failure (zero if not crashed).
func (s *Server) CrashTime() time.Duration { return s.crashTime }

// CrashReason returns why the server failed (empty if not crashed).
func (s *Server) CrashReason() CrashReason { return s.crashReason }

// Crash forces the server into the failed state. Subsequent requests are
// rejected. Calling it on an already-crashed server is a no-op.
func (s *Server) Crash(reason CrashReason) {
	if s.crashed {
		return
	}
	s.updateLoadIntegral()
	s.crashed = true
	s.crashTime = s.sched.Now()
	s.crashReason = reason
	// Fail everything still queued.
	for _, q := range s.queue {
		q.done(false)
	}
	s.queue = nil
	for _, fn := range s.onCrash {
		fn(reason)
	}
}

// totalThreads returns the current thread count of the process.
func (s *Server) totalThreads() int {
	workers := s.peakWorkers
	if min := 25; workers < min {
		workers = min // Tomcat pre-spawns a minimum worker pool
	}
	return s.cfg.BaseThreads + workers + s.leakedThreads
}

// Submit implements tpcw.Server: it accepts (or queues, or rejects) one
// request and eventually calls done.
func (s *Server) Submit(req tpcw.Request, done func(ok bool)) {
	if done == nil {
		done = func(bool) {}
	}
	if s.crashed {
		s.failedRequests++
		done(false)
		return
	}
	if s.busyWorkers >= s.cfg.MaxWorkerThreads {
		if len(s.queue) >= s.cfg.MaxQueuedRequests {
			s.rejectedRequests++
			s.failedRequests++
			done(false)
			return
		}
		s.queue = append(s.queue, queuedRequest{req: req, done: done})
		return
	}
	s.startRequest(req, done)
}

// startRequest occupies a worker and schedules the request completion.
func (s *Server) startRequest(req tpcw.Request, done func(ok bool)) {
	s.updateLoadIntegral()
	s.busyWorkers++
	if s.busyWorkers > s.peakWorkers {
		s.peakWorkers = s.totalWorkersAfterGrowth()
	}
	s.heap.SetLiveThreads(s.totalThreads())
	if s.checkThreadLimits() {
		s.failedRequests++
		done(false)
		return
	}

	if req.Interaction == tpcw.SearchRequest {
		s.searchRequests++
		for _, hook := range s.searchHooks {
			hook()
			if s.crashed {
				done(false)
				return
			}
		}
	}

	// Transient allocation of the request (session data, result sets, JSP
	// buffers). Size jitters around the configured mean.
	alloc := s.cfg.RequestAllocMB * s.src.Float64Between(0.5, 1.5)
	if err := s.heap.Allocate(alloc); err != nil {
		if errors.Is(err, jvm.ErrOutOfMemory) {
			s.failedRequests++
			s.Crash(CrashOutOfMemory)
			done(false)
			return
		}
		// Any other allocation error is a programming bug in the simulator;
		// treat the request as failed but keep the server alive.
		s.failedRequests++
		s.finishWorker()
		done(false)
		return
	}

	// Database connection usage for the duration of the request. Leaked
	// connections shrink the pool available to requests.
	dbConns := 1
	if req.Interaction.IsWrite() {
		dbConns = 2
	}
	if avail := s.cfg.MaxDBConnections - s.leakedDBConns; s.activeDBConns+dbConns > avail {
		dbConns = avail - s.activeDBConns
		if dbConns < 0 {
			dbConns = 0
		}
	}
	s.activeDBConns += dbConns

	service := s.serviceTime(req)
	issuedAt := req.IssuedAt
	if _, err := s.sched.After(service, func() {
		s.completeRequest(issuedAt, dbConns, done)
	}); err != nil {
		// Scheduler refused the event: the run is over. Fail the request.
		s.activeDBConns -= dbConns
		s.failedRequests++
		s.finishWorker()
		done(false)
	}
}

// totalWorkersAfterGrowth models Tomcat growing its pool in steps of 4.
func (s *Server) totalWorkersAfterGrowth() int {
	grown := ((s.busyWorkers + 3) / 4) * 4
	if grown > s.cfg.MaxWorkerThreads {
		grown = s.cfg.MaxWorkerThreads
	}
	if grown < s.peakWorkers {
		grown = s.peakWorkers
	}
	return grown
}

// serviceTime computes the load- and aging-dependent service time of a
// request.
func (s *Server) serviceTime(req tpcw.Request) time.Duration {
	base := s.cfg.BaseServiceTime.Seconds()
	db := s.cfg.DBServiceTime.Seconds()
	if req.Interaction.IsWrite() {
		db *= 2
	}
	// CPU contention: processor sharing across the busy workers.
	contention := 1.0
	if s.busyWorkers > s.cfg.CPUs {
		contention = float64(s.busyWorkers) / float64(s.cfg.CPUs)
	}
	// GC overhead: as the heap approaches exhaustion collections steal an
	// increasing share of the CPU (the paper's gradual performance
	// degradation under aging).
	gc := s.heap.GCOverhead()
	slowdown := 1.0 / (1.0 - gc)
	jitter := s.src.Float64Between(0.7, 1.3)
	seconds := (base*contention + db) * slowdown * jitter
	return time.Duration(seconds * float64(time.Second))
}

// completeRequest releases the worker, updates counters and answers the EB.
func (s *Server) completeRequest(issuedAt time.Duration, dbConns int, done func(ok bool)) {
	s.activeDBConns -= dbConns
	if s.activeDBConns < 0 {
		s.activeDBConns = 0
	}
	if s.crashed {
		s.failedRequests++
		s.finishWorker()
		done(false)
		return
	}
	s.completedRequests++
	s.sumResponseSec += (s.sched.Now() - issuedAt).Seconds()
	s.diskUsedMB += s.cfg.LogBytesPerRequest
	s.finishWorker()
	done(true)

	// Pull the next queued request, if any.
	if len(s.queue) > 0 && s.busyWorkers < s.cfg.MaxWorkerThreads {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.startRequest(next.req, next.done)
	}
}

func (s *Server) finishWorker() {
	s.updateLoadIntegral()
	s.busyWorkers--
	if s.busyWorkers < 0 {
		s.busyWorkers = 0
	}
	s.heap.SetLiveThreads(s.totalThreads())
}

// updateLoadIntegral accumulates busyWorkers·dt so the monitor can report a
// UNIX-like load average per interval.
func (s *Server) updateLoadIntegral() {
	now := s.sched.Now()
	dt := (now - s.lastLoadUpdate).Seconds()
	if dt > 0 {
		s.loadIntegral += float64(s.busyWorkers) * dt
		s.lastLoadUpdate = now
	}
}

// checkThreadLimits crashes the server if thread or memory limits are
// exceeded; it reports whether a crash happened.
func (s *Server) checkThreadLimits() bool {
	if s.totalThreads() >= s.cfg.MaxProcessThreads {
		s.Crash(CrashThreadExhaustion)
		return true
	}
	if s.systemMemUsedMB() >= s.cfg.SystemMemoryMB+s.cfg.SwapMB {
		s.Crash(CrashSystemMemory)
		return true
	}
	return false
}

// --- Fault-injection entry points (used by internal/injector) ---

// InjectLeakMB leaks sizeMB of Java heap, as the patched search servlet does.
// The server crashes with CrashOutOfMemory if the heap is exhausted.
func (s *Server) InjectLeakMB(sizeMB float64) {
	if s.crashed {
		return
	}
	if err := s.heap.AllocateLeak(sizeMB); err != nil {
		s.Crash(CrashOutOfMemory)
	}
}

// InjectRetainedMB acquires sizeMB of releasable memory (the acquire phase of
// the periodic pattern experiments).
func (s *Server) InjectRetainedMB(sizeMB float64) {
	if s.crashed {
		return
	}
	if err := s.heap.AllocateRetained(sizeMB); err != nil {
		s.Crash(CrashOutOfMemory)
	}
}

// ReleaseRetainedMB releases previously acquired memory.
func (s *Server) ReleaseRetainedMB(sizeMB float64) {
	if s.crashed {
		return
	}
	s.heap.ReleaseRetained(sizeMB)
}

// LeakThreads creates n threads that never terminate: the thread-leak aging
// fault. Each leaked thread also pins a small amount of Java heap for its
// Thread object and stack bookkeeping, which is how the paper's two
// "unrelated" resources turn out to be coupled (Section 4.4).
func (s *Server) LeakThreads(n int) {
	if s.crashed || n <= 0 {
		return
	}
	const threadObjectMB = 0.06 // java.lang.Thread + per-thread buffers
	for i := 0; i < n; i++ {
		s.leakedThreads++
		s.heap.SetLiveThreads(s.totalThreads())
		if err := s.heap.AllocateLeak(threadObjectMB); err != nil {
			s.Crash(CrashOutOfMemory)
			return
		}
		if s.checkThreadLimits() {
			return
		}
	}
}

// LeakedThreads returns how many threads have been leaked so far.
func (s *Server) LeakedThreads() int { return s.leakedThreads }

// LeakDBConnections permanently occupies n database connections: the
// connection-leak aging fault (an application bug that never returns
// connections to the pool). Leaked connections are acquired from the same
// pool the requests use, so the count of leaked plus in-use connections can
// never exceed the pool size; the moment the leak fails to acquire one — the
// pool is saturated — the server dies with CrashConnectionExhaustion. Each
// leaked connection also pins a small amount of Java heap for its
// driver-side buffers, coupling the resource to memory the same way leaked
// threads do.
func (s *Server) LeakDBConnections(n int) {
	if s.crashed || n <= 0 {
		return
	}
	const connObjectMB = 0.04 // JDBC connection, statement cache, buffers
	for i := 0; i < n; i++ {
		if s.leakedDBConns+s.activeDBConns >= s.cfg.MaxDBConnections {
			s.Crash(CrashConnectionExhaustion)
			return
		}
		s.leakedDBConns++
		if err := s.heap.AllocateLeak(connObjectMB); err != nil {
			s.Crash(CrashOutOfMemory)
			return
		}
	}
}

// LeakedDBConnections returns how many database connections have been leaked
// so far.
func (s *Server) LeakedDBConnections() int { return s.leakedDBConns }

// systemMemUsedMB returns the machine-wide used memory.
func (s *Server) systemMemUsedMB() float64 {
	return s.cfg.OtherProcessesMB + s.heap.ProcessMemoryMB()
}

// Snapshot is the raw state of the server at one instant: the direct metrics
// of Table 2 (the derived SWA/ratio variables are computed downstream by
// internal/features). Counters are cumulative; the monitor converts them to
// per-interval rates.
type Snapshot struct {
	// TimeSec is the simulated time of the snapshot.
	TimeSec float64

	// Cumulative counters.
	CompletedRequests uint64
	FailedRequests    uint64
	SumResponseSec    float64
	SearchRequests    uint64
	LoadIntegral      float64

	// Instantaneous gauges.
	ActiveRequests   int
	QueuedRequests   int
	NumThreads       int
	LeakedThreads    int
	HTTPConnections  int
	MySQLConnections int
	LeakedDBConns    int

	// Memory, OS perspective.
	TomcatMemoryMB  float64
	SystemMemUsedMB float64
	SwapFreeMB      float64
	DiskUsedMB      float64
	NumProcesses    int

	// Memory, JVM perspective.
	YoungUsedMB    float64
	YoungMaxMB     float64
	OldUsedMB      float64
	OldMaxMB       float64
	HeapUsedMB     float64
	OldLeakedMB    float64
	OldRetainedMB  float64
	GCOverhead     float64
	FullGCs        int
	MinorGCs       int
	OldResizes     int
	RejectedGauges uint64

	Crashed bool
}

// Snapshot captures the current server state.
func (s *Server) Snapshot() Snapshot {
	s.updateLoadIntegral()
	sysUsed := s.systemMemUsedMB()
	swapUsed := 0.0
	if sysUsed > s.cfg.SystemMemoryMB {
		swapUsed = sysUsed - s.cfg.SystemMemoryMB
	}
	swapFree := s.cfg.SwapMB - swapUsed
	if swapFree < 0 {
		swapFree = 0
	}
	heapStats := s.heap.Stats()
	return Snapshot{
		TimeSec:           s.sched.Now().Seconds(),
		CompletedRequests: s.completedRequests,
		FailedRequests:    s.failedRequests,
		SumResponseSec:    s.sumResponseSec,
		SearchRequests:    s.searchRequests,
		LoadIntegral:      s.loadIntegral,
		ActiveRequests:    s.busyWorkers,
		QueuedRequests:    len(s.queue),
		NumThreads:        s.totalThreads(),
		LeakedThreads:     s.leakedThreads,
		HTTPConnections:   s.busyWorkers + len(s.queue),
		MySQLConnections:  s.activeDBConns + s.leakedDBConns,
		LeakedDBConns:     s.leakedDBConns,
		TomcatMemoryMB:    s.heap.ProcessMemoryMB(),
		SystemMemUsedMB:   math.Min(sysUsed, s.cfg.SystemMemoryMB),
		SwapFreeMB:        swapFree,
		// Disk usage carries the access logs plus the temp/spool files other
		// system activity keeps creating and deleting. The fluctuation
		// matters: without it the simulated disk usage would be a perfect
		// linear function of elapsed time, handing the learner a
		// time-to-failure shortcut that no real system provides.
		DiskUsedMB:     s.diskUsedMB + s.src.Float64Between(0, 40),
		NumProcesses:   s.cfg.BaseProcesses + s.src.Intn(5),
		YoungUsedMB:    s.heap.YoungUsedMB(),
		YoungMaxMB:     s.heap.YoungMaxMB(),
		OldUsedMB:      s.heap.OldUsedMB(),
		OldMaxMB:       s.heap.OldCommittedMB(),
		HeapUsedMB:     s.heap.HeapUsedMB(),
		OldLeakedMB:    s.heap.OldLeakedMB(),
		OldRetainedMB:  s.heap.OldRetainedMB(),
		GCOverhead:     s.heap.GCOverhead(),
		FullGCs:        heapStats.FullCollections,
		MinorGCs:       heapStats.MinorCollections,
		OldResizes:     heapStats.OldResizes,
		RejectedGauges: s.rejectedRequests,
		Crashed:        s.crashed,
	}
}
