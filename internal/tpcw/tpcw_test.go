package tpcw

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"agingpred/internal/rng"
	"agingpred/internal/simclock"
)

func TestInteractionString(t *testing.T) {
	if Home.String() != "Home" || SearchRequest.String() != "Search Request" || AdminConfirm.String() != "Admin Confirm" {
		t.Fatalf("interaction names wrong: %v %v %v", Home, SearchRequest, AdminConfirm)
	}
	if got := Interaction(99).String(); got != "Interaction(99)" {
		t.Fatalf("unknown interaction String() = %q", got)
	}
	if Interaction(0).Valid() || Interaction(15).Valid() {
		t.Fatalf("invalid interactions reported valid")
	}
	if !Home.Valid() || !AdminConfirm.Valid() {
		t.Fatalf("valid interactions reported invalid")
	}
}

func TestIsWrite(t *testing.T) {
	if !BuyConfirm.IsWrite() || !ShoppingCart.IsWrite() {
		t.Fatalf("write interactions not flagged")
	}
	if Home.IsWrite() || SearchRequest.IsWrite() {
		t.Fatalf("read interactions flagged as writes")
	}
}

func TestMixWeightsNormalised(t *testing.T) {
	for _, mix := range []Mix{BrowsingMix(), ShoppingMix(), OrderingMix()} {
		sum := 0.0
		for i := Home; i <= AdminConfirm; i++ {
			w := mix.Weight(i)
			if w < 0 {
				t.Fatalf("%s mix has negative weight for %v", mix.Name, i)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s mix weights sum to %v", mix.Name, sum)
		}
	}
	if got := ShoppingMix().Weight(Interaction(0)); got != 0 {
		t.Fatalf("Weight of invalid interaction = %v", got)
	}
}

func TestShoppingMixShape(t *testing.T) {
	mix := ShoppingMix()
	// The search servlet (leak injection point) must receive a substantial
	// share of the shopping-mix traffic, as in the real TPC-W mix (20%).
	if w := mix.Weight(SearchRequest); w < 0.15 || w > 0.25 {
		t.Fatalf("shopping mix search-request weight = %v, want about 0.20", w)
	}
	// Ordering mix buys much more than browsing mix.
	if OrderingMix().Weight(BuyConfirm) <= BrowsingMix().Weight(BuyConfirm) {
		t.Fatalf("ordering mix should buy more than browsing mix")
	}
}

func TestMixSampleMatchesWeights(t *testing.T) {
	mix := ShoppingMix()
	src := rng.New(1)
	const n = 200000
	var counts [NumInteractions]int
	for i := 0; i < n; i++ {
		it := mix.Sample(src)
		if !it.Valid() {
			t.Fatalf("Sample returned invalid interaction %v", it)
		}
		counts[it-1]++
	}
	for i := Home; i <= AdminConfirm; i++ {
		want := mix.Weight(i)
		got := float64(counts[i-1]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("interaction %v frequency = %v, want %v", i, got, want)
		}
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"browsing", "shopping", "ordering"} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("MixByName(%q).Name = %q", name, m.Name)
		}
	}
	if m, err := MixByName(""); err != nil || m.Name != "shopping" {
		t.Fatalf("MixByName(\"\") = %v, %v; want shopping", m.Name, err)
	}
	if _, err := MixByName("bogus"); err == nil {
		t.Fatalf("MixByName(bogus) succeeded")
	}
}

// fakeServer responds to every request after a fixed service time.
type fakeServer struct {
	sched       *simclock.Scheduler
	serviceTime time.Duration
	received    []Request
	reject      bool
}

func (f *fakeServer) Submit(req Request, done func(ok bool)) {
	f.received = append(f.received, req)
	if f.reject {
		done(false)
		return
	}
	if _, err := f.sched.After(f.serviceTime, func() { done(true) }); err != nil {
		done(false)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched}
	src := rng.New(1)
	if _, err := NewGenerator(Config{EBs: 10}, nil, srv, src); err == nil {
		t.Fatalf("nil scheduler accepted")
	}
	if _, err := NewGenerator(Config{EBs: 10}, sched, nil, src); err == nil {
		t.Fatalf("nil server accepted")
	}
	if _, err := NewGenerator(Config{EBs: 10}, sched, srv, nil); err == nil {
		t.Fatalf("nil rng accepted")
	}
	if _, err := NewGenerator(Config{EBs: 0}, sched, srv, src); err == nil {
		t.Fatalf("zero EBs accepted")
	}
	g, err := NewGenerator(Config{EBs: 5}, sched, srv, src)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	cfg := g.Config()
	if cfg.ThinkTimeMean != 7*time.Second || cfg.ThinkTimeMax != 70*time.Second || cfg.Mix.Name != "shopping" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestGeneratorDrivesServer(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched, serviceTime: 100 * time.Millisecond}
	g, err := NewGenerator(Config{EBs: 25}, sched, srv, rng.New(42))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if err := g.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := g.Start(); err == nil {
		t.Fatalf("second Start succeeded")
	}
	sched.RunUntil(10 * time.Minute)

	st := g.Stats()
	if st.Issued == 0 || st.Completed == 0 {
		t.Fatalf("no traffic generated: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
	// 25 EBs with ~7s think + 0.1s service: roughly 25/7.1 ≈ 3.5 req/s, so
	// about 2100 requests in 10 minutes. Accept a broad band.
	if st.Issued < 1000 || st.Issued > 4000 {
		t.Fatalf("issued %d requests in 10 min with 25 EBs, want 1000..4000", st.Issued)
	}
	// Completed should closely track issued (only the in-flight tail differs).
	if st.Issued-st.Completed > 30 {
		t.Fatalf("too many incomplete requests: issued %d, completed %d", st.Issued, st.Completed)
	}
	if len(srv.received) != int(st.Issued) {
		t.Fatalf("server saw %d requests, generator issued %d", len(srv.received), st.Issued)
	}
	// The per-interaction distribution should roughly follow the shopping mix.
	searchShare := float64(st.PerInteraction[SearchRequest-1]) / float64(st.Issued)
	if searchShare < 0.1 || searchShare > 0.3 {
		t.Fatalf("search-request share = %v, want about 0.2", searchShare)
	}
}

func TestGeneratorStop(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched, serviceTime: 50 * time.Millisecond}
	g, err := NewGenerator(Config{EBs: 10}, sched, srv, rng.New(7))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if err := g.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(2 * time.Minute)
	g.Stop()
	issuedAtStop := g.Stats().Issued
	sched.RunUntil(10 * time.Minute)
	if got := g.Stats().Issued; got != issuedAtStop {
		t.Fatalf("generator kept issuing after Stop: %d -> %d", issuedAtStop, got)
	}
}

func TestGeneratorCountsRejections(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched, reject: true}
	g, err := NewGenerator(Config{EBs: 5}, sched, srv, rng.New(9))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if err := g.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(5 * time.Minute)
	st := g.Stats()
	if st.Failed == 0 {
		t.Fatalf("rejecting server produced no failures: %+v", st)
	}
	if st.Completed != 0 {
		t.Fatalf("rejecting server produced completions: %+v", st)
	}
}

func TestThinkTimeDistribution(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched}
	g, err := NewGenerator(Config{EBs: 1}, sched, srv, rng.New(11))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	const n = 100000
	sum := 0.0
	maxSeen := 0.0
	for i := 0; i < n; i++ {
		tt := g.thinkTime().Seconds()
		if tt < 0 {
			t.Fatalf("negative think time %v", tt)
		}
		sum += tt
		if tt > maxSeen {
			maxSeen = tt
		}
	}
	mean := sum / n
	// Truncation at 70s pulls the mean slightly below 7s.
	if mean < 6 || mean > 7.5 {
		t.Fatalf("think time mean = %v, want about 7", mean)
	}
	if maxSeen > 70.0001 {
		t.Fatalf("think time %v exceeds the 70 s cap", maxSeen)
	}
}

// Property: for any seed and any EB population, traffic volume scales with
// the EB count (more browsers, more requests) and all issued interactions
// are valid.
func TestWorkloadScalesWithEBsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		run := func(ebs int) uint64 {
			sched := simclock.NewScheduler(nil)
			srv := &fakeServer{sched: sched, serviceTime: 80 * time.Millisecond}
			g, err := NewGenerator(Config{EBs: ebs}, sched, srv, rng.New(seed))
			if err != nil {
				return 0
			}
			if err := g.Start(); err != nil {
				return 0
			}
			sched.RunUntil(5 * time.Minute)
			for _, r := range srv.received {
				if !r.Interaction.Valid() {
					return 0
				}
			}
			return g.Stats().Issued
		}
		small := run(10)
		large := run(100)
		return small > 0 && large > small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSetActiveEBsClampsAndReports(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched, serviceTime: 50 * time.Millisecond}
	g, err := NewGenerator(Config{EBs: 40}, sched, srv, rng.New(7))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if g.ActiveEBs() != 40 {
		t.Fatalf("initial active EBs = %d, want 40", g.ActiveEBs())
	}
	g.SetActiveEBs(0)
	if g.ActiveEBs() != 1 {
		t.Fatalf("SetActiveEBs(0) clamped to %d, want 1", g.ActiveEBs())
	}
	g.SetActiveEBs(999)
	if g.ActiveEBs() != 40 {
		t.Fatalf("SetActiveEBs(999) clamped to %d, want 40 (Config.EBs)", g.ActiveEBs())
	}
}

func TestSetActiveEBsScalesTraffic(t *testing.T) {
	sched := simclock.NewScheduler(nil)
	srv := &fakeServer{sched: sched, serviceTime: 50 * time.Millisecond}
	g, err := NewGenerator(Config{EBs: 60}, sched, srv, rng.New(9))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	// Phase 1: 10 active EBs out of 60 for 10 minutes.
	g.SetActiveEBs(10)
	if err := g.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched.RunUntil(10 * time.Minute)
	low := len(srv.received)
	// Phase 2: all 60 EBs wake up for another 10 minutes.
	g.SetActiveEBs(60)
	sched.RunUntil(20 * time.Minute)
	high := len(srv.received) - low
	// Think times dominate the request rate, so traffic should scale
	// roughly with the population: 6x more EBs, demand at least 3x more
	// requests to leave room for ramp-up.
	if high < 3*low {
		t.Fatalf("scaling 10→60 EBs raised traffic only from %d to %d requests per 10 min", low, high)
	}
	// Phase 3: shrink back; parked EBs must stop issuing.
	g.SetActiveEBs(10)
	sched.RunUntil(25 * time.Minute) // let in-flight think times drain
	mid := len(srv.received)
	sched.RunUntil(35 * time.Minute)
	tail := len(srv.received) - mid
	if tail > 2*low {
		t.Fatalf("after shrinking back to 10 EBs, got %d requests per 10 min vs %d at the start", tail, low)
	}
	// The EB indices seen while shrunk must be the low ones.
	for _, req := range srv.received[mid:] {
		if req.EB >= 10 {
			t.Fatalf("parked EB %d issued a request after the population shrank", req.EB)
		}
	}
}
