// Package tpcw simulates the TPC-W workload the paper drives its testbed
// with: a population of Emulated Browsers (EBs) navigating an on-line book
// store in sessions, with think times between requests and a configurable
// interaction mix (Browsing, Shopping or Ordering).
//
// Only the load shape matters to the aging dynamics the predictor learns
// from — the request rate determines how often the leaky search servlet is
// hit and how much transient heap churn the server sees — so the generator
// reproduces the TPC-W parameters that shape the load: the number of
// concurrent EBs (kept constant for a whole experiment, per the
// specification), the 14 interaction types with their per-mix frequencies,
// and negative-exponential think times with the specification's 7-second
// mean and 70-second cap.
package tpcw

import (
	"errors"
	"fmt"
	"time"

	"agingpred/internal/rng"
	"agingpred/internal/simclock"
)

// Interaction enumerates the 14 TPC-W web interactions.
type Interaction int

// The 14 TPC-W interactions. SearchRequest is the one the paper patches to
// inject memory leaks, so it matters that the mix sends a realistic share of
// traffic through it.
const (
	Home Interaction = iota + 1
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm
)

// NumInteractions is the number of distinct interaction types.
const NumInteractions = 14

// String returns the TPC-W name of the interaction.
func (i Interaction) String() string {
	switch i {
	case Home:
		return "Home"
	case NewProducts:
		return "New Products"
	case BestSellers:
		return "Best Sellers"
	case ProductDetail:
		return "Product Detail"
	case SearchRequest:
		return "Search Request"
	case SearchResults:
		return "Search Results"
	case ShoppingCart:
		return "Shopping Cart"
	case CustomerRegistration:
		return "Customer Registration"
	case BuyRequest:
		return "Buy Request"
	case BuyConfirm:
		return "Buy Confirm"
	case OrderInquiry:
		return "Order Inquiry"
	case OrderDisplay:
		return "Order Display"
	case AdminRequest:
		return "Admin Request"
	case AdminConfirm:
		return "Admin Confirm"
	default:
		return fmt.Sprintf("Interaction(%d)", int(i))
	}
}

// Valid reports whether i is one of the 14 defined interactions.
func (i Interaction) Valid() bool { return i >= Home && i <= AdminConfirm }

// IsWrite reports whether the interaction updates the database (used by the
// application server to decide how much DB time a request costs).
func (i Interaction) IsWrite() bool {
	switch i {
	case ShoppingCart, CustomerRegistration, BuyRequest, BuyConfirm, AdminConfirm:
		return true
	default:
		return false
	}
}

// Mix is a probability distribution over the 14 interactions: the stationary
// visit frequencies of one of the three TPC-W navigation mixes.
type Mix struct {
	Name    string
	weights [NumInteractions]float64
	cum     [NumInteractions]float64
}

// newMix builds a mix from per-interaction weights (indexed by
// Interaction-1). Weights are normalised; they need not sum to exactly 1.
func newMix(name string, weights [NumInteractions]float64) Mix {
	m := Mix{Name: name, weights: weights}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		m.weights[i] = w / total
		m.cum[i] = acc
	}
	m.cum[NumInteractions-1] = 1
	return m
}

// Weight returns the stationary frequency of the interaction in this mix.
func (m Mix) Weight(i Interaction) float64 {
	if !i.Valid() {
		return 0
	}
	return m.weights[i-1]
}

// Sample draws an interaction according to the mix frequencies.
func (m Mix) Sample(src *rng.Source) Interaction {
	u := src.Float64()
	for i, c := range m.cum {
		if u < c {
			return Interaction(i + 1)
		}
	}
	return AdminConfirm
}

// The three standard TPC-W mixes. The frequencies are the web-interaction
// shares from the TPC-W specification (clause 5.3); the paper runs all of
// its experiments with the shopping mix.

// BrowsingMix returns the browsing mix (WIPSb): dominated by read-only
// navigation.
func BrowsingMix() Mix {
	return newMix("browsing", [NumInteractions]float64{
		29.00, // Home
		11.00, // New Products
		11.00, // Best Sellers
		21.00, // Product Detail
		12.00, // Search Request
		11.00, // Search Results
		2.00,  // Shopping Cart
		0.82,  // Customer Registration
		0.75,  // Buy Request
		0.69,  // Buy Confirm
		0.30,  // Order Inquiry
		0.25,  // Order Display
		0.10,  // Admin Request
		0.09,  // Admin Confirm
	})
}

// ShoppingMix returns the shopping mix (WIPS), the one used in every
// experiment of the paper.
func ShoppingMix() Mix {
	return newMix("shopping", [NumInteractions]float64{
		16.00, // Home
		5.00,  // New Products
		5.00,  // Best Sellers
		17.00, // Product Detail
		20.00, // Search Request
		17.00, // Search Results
		11.60, // Shopping Cart
		3.00,  // Customer Registration
		2.60,  // Buy Request
		1.20,  // Buy Confirm
		0.75,  // Order Inquiry
		0.66,  // Order Display
		0.10,  // Admin Request
		0.09,  // Admin Confirm
	})
}

// OrderingMix returns the ordering mix (WIPSo): heavy on purchases.
func OrderingMix() Mix {
	return newMix("ordering", [NumInteractions]float64{
		9.12,  // Home
		0.46,  // New Products
		0.46,  // Best Sellers
		12.35, // Product Detail
		14.53, // Search Request
		13.08, // Search Results
		13.53, // Shopping Cart
		12.86, // Customer Registration
		12.73, // Buy Request
		10.18, // Buy Confirm
		0.25,  // Order Inquiry
		0.22,  // Order Display
		0.12,  // Admin Request
		0.11,  // Admin Confirm
	})
}

// MixByName returns the mix with the given name ("browsing", "shopping",
// "ordering").
func MixByName(name string) (Mix, error) {
	switch name {
	case "browsing":
		return BrowsingMix(), nil
	case "shopping", "":
		return ShoppingMix(), nil
	case "ordering":
		return OrderingMix(), nil
	default:
		return Mix{}, fmt.Errorf("tpcw: unknown mix %q", name)
	}
}

// Request is one web interaction issued by an EB.
type Request struct {
	// EB is the index of the emulated browser issuing the request.
	EB int
	// Interaction is the TPC-W interaction type.
	Interaction Interaction
	// IssuedAt is the simulated time the request was issued.
	IssuedAt time.Duration
}

// Server is the interface the generator submits requests to. The application
// server (internal/appserver) implements it.
//
// Submit must eventually call done exactly once with ok=false if the request
// was rejected or the server has failed, ok=true otherwise. done may be
// called synchronously.
type Server interface {
	Submit(req Request, done func(ok bool))
}

// Config configures a workload generator.
type Config struct {
	// EBs is the number of concurrent Emulated Browsers; constant for the
	// whole run, per the TPC-W specification.
	EBs int
	// Mix is the navigation mix. The zero value means the shopping mix.
	Mix Mix
	// ThinkTimeMean is the mean of the negative-exponential think time
	// (0 = 7 s, the TPC-W default).
	ThinkTimeMean time.Duration
	// ThinkTimeMax truncates think times (0 = 70 s, i.e. 10× the mean, per
	// the specification).
	ThinkTimeMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.Mix.Name == "" {
		c.Mix = ShoppingMix()
	}
	if c.ThinkTimeMean <= 0 {
		c.ThinkTimeMean = 7 * time.Second
	}
	if c.ThinkTimeMax <= 0 {
		c.ThinkTimeMax = 10 * c.ThinkTimeMean
	}
	return c
}

// Stats summarises generator activity.
type Stats struct {
	Issued    uint64
	Completed uint64
	Failed    uint64
	// PerInteraction counts issued requests by interaction type.
	PerInteraction [NumInteractions]uint64
}

// Generator drives the EB population against a Server using a simulated
// scheduler.
//
// The population can be resized at runtime with SetActiveEBs, which the
// testbed uses for bursty workloads: EBs above the active count park
// themselves at the end of their current think time and are woken again when
// the active count grows. Config.EBs is the maximum population.
type Generator struct {
	cfg    Config
	sched  *simclock.Scheduler
	server Server
	src    *rng.Source

	running   bool
	stopped   bool
	activeEBs int
	parked    []bool
	stats     Stats
}

// NewGenerator creates a workload generator. All arguments are required.
func NewGenerator(cfg Config, sched *simclock.Scheduler, server Server, src *rng.Source) (*Generator, error) {
	if sched == nil {
		return nil, errors.New("tpcw: nil scheduler")
	}
	if server == nil {
		return nil, errors.New("tpcw: nil server")
	}
	if src == nil {
		return nil, errors.New("tpcw: nil random source")
	}
	if cfg.EBs <= 0 {
		return nil, fmt.Errorf("tpcw: non-positive EB count %d", cfg.EBs)
	}
	return &Generator{
		cfg:       cfg.withDefaults(),
		sched:     sched,
		server:    server,
		src:       src,
		activeEBs: cfg.EBs,
		parked:    make([]bool, cfg.EBs),
	}, nil
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Start schedules the initial think time of every EB. It may be called only
// once.
func (g *Generator) Start() error {
	if g.running {
		return errors.New("tpcw: generator already started")
	}
	g.running = true
	for eb := 0; eb < g.cfg.EBs; eb++ {
		eb := eb
		// Stagger session starts across one think time so all EBs do not
		// fire at the same instant.
		if _, err := g.sched.After(g.thinkTime(), func() { g.issue(eb) }); err != nil {
			return fmt.Errorf("tpcw: scheduling EB %d: %w", eb, err)
		}
	}
	return nil
}

// Stop prevents EBs from issuing further requests. In-flight requests finish
// normally.
func (g *Generator) Stop() { g.stopped = true }

// ActiveEBs returns the current active population size.
func (g *Generator) ActiveEBs() int { return g.activeEBs }

// SetActiveEBs resizes the active EB population to n, clamped to
// [1, Config.EBs]. Shrinking takes effect lazily: EBs above the new count
// park themselves when their next think time expires. Growing wakes parked
// EBs after a fresh think time, staggering the burst the way real users
// arrive.
func (g *Generator) SetActiveEBs(n int) {
	if n < 1 {
		n = 1
	}
	if n > g.cfg.EBs {
		n = g.cfg.EBs
	}
	prev := g.activeEBs
	g.activeEBs = n
	if !g.running || g.stopped || n <= prev {
		return
	}
	for eb := prev; eb < n; eb++ {
		if !g.parked[eb] {
			continue
		}
		g.parked[eb] = false
		eb := eb
		if _, err := g.sched.After(g.thinkTime(), func() { g.issue(eb) }); err != nil {
			// The run is over; nothing to wake.
			g.stopped = true
			return
		}
	}
}

// Stats returns a copy of the generator statistics.
func (g *Generator) Stats() Stats { return g.stats }

// thinkTime draws one truncated negative-exponential think time.
func (g *Generator) thinkTime() time.Duration {
	t := g.src.Exponential(g.cfg.ThinkTimeMean.Seconds())
	if maxSec := g.cfg.ThinkTimeMax.Seconds(); t > maxSec {
		t = maxSec
	}
	return time.Duration(t * float64(time.Second))
}

// issue submits one request for the EB and schedules the next one when the
// response arrives.
func (g *Generator) issue(eb int) {
	if g.stopped {
		return
	}
	if eb >= g.activeEBs {
		g.parked[eb] = true
		return
	}
	interaction := g.cfg.Mix.Sample(g.src)
	req := Request{EB: eb, Interaction: interaction, IssuedAt: g.sched.Now()}
	g.stats.Issued++
	g.stats.PerInteraction[interaction-1]++
	g.server.Submit(req, func(ok bool) {
		if ok {
			g.stats.Completed++
		} else {
			g.stats.Failed++
		}
		if g.stopped {
			return
		}
		// Think, then issue the next request of the session.
		if _, err := g.sched.After(g.thinkTime(), func() { g.issue(eb) }); err != nil {
			// Scheduling can only fail if the scheduler refuses future
			// events, which means the run is over; stop quietly.
			g.stopped = true
		}
	})
}
