package rejuv

import "testing"

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(0); err == nil {
		t.Fatalf("NewController(0) succeeded")
	}
	if _, err := NewController(-3); err == nil {
		t.Fatalf("NewController(-3) succeeded")
	}
	c, err := NewController(2)
	if err != nil {
		t.Fatalf("NewController(2): %v", err)
	}
	if c.Budget() != 2 || c.InFlight() != 0 || c.Down() != 0 {
		t.Fatalf("fresh controller: budget %d, in-flight %d, down %d", c.Budget(), c.InFlight(), c.Down())
	}
}

// TestAlertDuringInFlightRejuvenation is the first fleet edge case: a second
// TTF alert for an instance that is already rejuvenating must be ignored and
// must not consume budget or extend the downtime.
func TestAlertDuringInFlightRejuvenation(t *testing.T) {
	c, err := NewController(2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alert(7, 100, 120) {
		t.Fatalf("first alert denied")
	}
	if got := c.State(7); got != StateRejuvenating {
		t.Fatalf("state after alert = %v", got)
	}
	// The same instance alerts again mid-rejuvenation: ignored, budget intact.
	if c.Alert(7, 130, 120) {
		t.Fatalf("alert during in-flight rejuvenation was accepted")
	}
	if c.InFlight() != 1 {
		t.Fatalf("in-flight = %d after duplicate alert, want 1", c.InFlight())
	}
	// The duplicate alert must not have extended the downtime: the original
	// rejuvenation still completes at 220.
	if up := c.Advance(219); len(up) != 0 {
		t.Fatalf("Advance(219) completed %v early", up)
	}
	if up := c.Advance(220); len(up) != 1 || up[0] != 7 {
		t.Fatalf("Advance(220) = %v, want [7]", up)
	}
	if c.State(7) != StateHealthy || c.InFlight() != 0 {
		t.Fatalf("instance not healthy after recovery: state %v, in-flight %d", c.State(7), c.InFlight())
	}
	// Once healthy again, a new alert is accepted.
	if !c.Alert(7, 250, 120) {
		t.Fatalf("alert after recovery denied")
	}
}

// TestAlertAfterCrash is the second fleet edge case: predictions lag the
// system by the sliding-window delay, so a TTF alert can arrive after the
// instance has already crashed. It must be ignored — the crash is already
// being handled — and must not consume rejuvenation budget.
func TestAlertAfterCrash(t *testing.T) {
	c, err := NewController(1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Crash(3, 100, 600) {
		t.Fatalf("crash not recorded")
	}
	if got := c.State(3); got != StateCrashed {
		t.Fatalf("state after crash = %v", got)
	}
	// The late alert for the crashed instance: ignored.
	if c.Alert(3, 115, 120) {
		t.Fatalf("alert after crash was accepted")
	}
	// Crash recovery does not consume budget, so another instance can still
	// be rejuvenated even with budget 1.
	if c.InFlight() != 0 {
		t.Fatalf("crash consumed rejuvenation budget: in-flight %d", c.InFlight())
	}
	if !c.Alert(4, 115, 120) {
		t.Fatalf("healthy instance denied while another is crash-recovering")
	}
	// A second crash of the same (already down) instance is ignored too.
	if c.Crash(3, 130, 600) {
		t.Fatalf("crash of a down instance was recorded")
	}
	// Recovery completes at 700; the instance is healthy and alertable again.
	up := c.Advance(700)
	if len(up) != 2 || up[0] != 3 || up[1] != 4 {
		t.Fatalf("Advance(700) = %v, want [3 4]", up)
	}
	if !c.Alert(3, 710, 120) {
		t.Fatalf("alert after crash recovery denied")
	}
}

// TestBudgetCap verifies the concurrency cap: alerts beyond the budget are
// denied without state changes and succeed once capacity frees up.
func TestBudgetCap(t *testing.T) {
	c, err := NewController(2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alert(1, 0, 100) || !c.Alert(2, 0, 200) {
		t.Fatalf("alerts within budget denied")
	}
	if c.Alert(3, 10, 100) {
		t.Fatalf("alert beyond budget accepted")
	}
	if c.State(3) != StateHealthy {
		t.Fatalf("denied alert changed instance state: %v", c.State(3))
	}
	if c.InFlight() != 2 || c.MaxInFlight() != 2 {
		t.Fatalf("in-flight %d, max %d, want 2, 2", c.InFlight(), c.MaxInFlight())
	}
	// Instance 1 completes at 100; the denied instance can now be admitted.
	if up := c.Advance(100); len(up) != 1 || up[0] != 1 {
		t.Fatalf("Advance(100) = %v, want [1]", up)
	}
	if !c.Alert(3, 110, 100) {
		t.Fatalf("alert denied after budget freed up")
	}
	if c.MaxInFlight() != 2 {
		t.Fatalf("max in-flight drifted to %d", c.MaxInFlight())
	}
}

func TestControllerStateString(t *testing.T) {
	for state, want := range map[InstanceState]string{
		StateHealthy:      "healthy",
		StateRejuvenating: "rejuvenating",
		StateCrashed:      "crashed",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(state), got, want)
		}
	}
}
