package rejuv

import (
	"fmt"

	"agingpred/internal/obs"
)

// The controller's metric series. Counters aggregate across every Controller
// in the process (one per fleet run); the in-flight gauge tracks the most
// recent update, which in practice is the single live fleet's. Metrics are
// observation-only — the controller never reads them back — so the
// deterministic fleet runs are unaffected.
var (
	mAlerts = obs.Default.Counter("agingpred_rejuv_alerts_total",
		"TTF alerts raised to the fleet rejuvenation controller.")
	mDispatched = obs.Default.Counter("agingpred_rejuv_dispatched_total",
		"Controlled rejuvenation restarts started within the budget.")
	mDenied = obs.Default.Counter("agingpred_rejuv_denied_total",
		"Alerts deferred because the concurrent-rejuvenation budget was exhausted.")
	mCompleted = obs.Default.Counter("agingpred_rejuv_completed_total",
		"Controlled rejuvenation restarts that finished their downtime.")
	mCrashes = obs.Default.Counter("agingpred_rejuv_crashes_total",
		"Instance crashes recorded by the controller (recoveries are not budgeted).")
	mInFlight = obs.Default.Gauge("agingpred_rejuv_in_flight",
		"Controlled rejuvenations currently in progress.")
	mDown = obs.Default.Gauge("agingpred_rejuv_instances_down",
		"Instances currently down for any reason (rejuvenating or crash-recovering).")
)

// InstanceState is the lifecycle state of one server instance as seen by the
// fleet-level rejuvenation Controller.
type InstanceState int

const (
	// StateHealthy: the instance is up and serving traffic.
	StateHealthy InstanceState = iota
	// StateRejuvenating: the instance is down for a controlled restart
	// triggered by a TTF alert.
	StateRejuvenating
	// StateCrashed: the instance failed on its own and is recovering.
	StateCrashed
)

// String names the state.
func (s InstanceState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateRejuvenating:
		return "rejuvenating"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("InstanceState(%d)", int(s))
	}
}

// Controller is the fleet-level budgeted rejuvenation state machine: it
// tracks which instances are down (rejuvenating or crash-recovering) and
// enforces a cap on how many controlled restarts may be in flight at once,
// so a wave of simultaneous TTF alerts cannot take a whole fleet off-line.
//
// The per-instance *decision* of when to restart stays with a Policy (one
// Predictive policy per instance); the Controller arbitrates the resulting
// alerts. The two edge cases a live fleet hits constantly are defined here
// once and for all:
//
//   - an alert for an instance that is already rejuvenating (or still
//     recovering from a crash) is ignored — a restart of a down instance is
//     meaningless and must not consume budget; and
//   - an alert arriving after the instance has crashed is ignored — the
//     prediction came too late, the crash is already being handled.
//
// Crash recoveries are not charged against the budget: a crash is not a
// choice, and refusing to recover a crashed instance would only add
// downtime.
//
// The Controller is deliberately single-goroutine (the fleet engine drives
// it from its deterministic per-tick control loop); it is not safe for
// concurrent use.
type Controller struct {
	budget int
	down   map[int]downEntry

	inFlight    int
	maxInFlight int

	// comps is AdvanceDetailed's reused completion buffer; the returned
	// slice aliases it and is valid until the next Advance/AdvanceDetailed.
	comps []Completion
}

// downEntry records why an instance is down and when it comes back.
type downEntry struct {
	state  InstanceState
	endSec float64
}

// NewController creates a controller with the given concurrent-rejuvenation
// budget. The budget must be at least 1.
func NewController(budget int) (*Controller, error) {
	if budget < 1 {
		return nil, fmt.Errorf("rejuv: non-positive rejuvenation budget %d", budget)
	}
	return &Controller{budget: budget, down: make(map[int]downEntry)}, nil
}

// Budget returns the concurrent-rejuvenation cap.
func (c *Controller) Budget() int { return c.budget }

// InFlight returns how many controlled rejuvenations are in progress now.
func (c *Controller) InFlight() int { return c.inFlight }

// MaxInFlight returns the highest number of concurrent rejuvenations ever
// observed — by construction never above Budget.
func (c *Controller) MaxInFlight() int { return c.maxInFlight }

// Down returns how many instances are currently down for any reason.
func (c *Controller) Down() int { return len(c.down) }

// State returns the instance's current lifecycle state.
func (c *Controller) State(id int) InstanceState {
	if e, ok := c.down[id]; ok {
		return e.state
	}
	return StateHealthy
}

// Alert reports a TTF alert for an instance at nowSec and returns whether a
// rejuvenation was started. It returns false — and changes nothing — when
// the instance is already down (rejuvenating or crashed) or when the budget
// is exhausted; a denied alert may simply be raised again on a later
// checkpoint. On success the instance stays down for downtimeSec.
func (c *Controller) Alert(id int, nowSec, downtimeSec float64) bool {
	mAlerts.Inc()
	if _, isDown := c.down[id]; isDown {
		return false
	}
	if c.inFlight >= c.budget {
		mDenied.Inc()
		return false
	}
	if downtimeSec < 0 {
		downtimeSec = 0
	}
	c.down[id] = downEntry{state: StateRejuvenating, endSec: nowSec + downtimeSec}
	c.inFlight++
	if c.inFlight > c.maxInFlight {
		c.maxInFlight = c.inFlight
	}
	mDispatched.Inc()
	mInFlight.Set(float64(c.inFlight))
	mDown.Set(float64(len(c.down)))
	return true
}

// Crash reports that an instance failed on its own at nowSec and returns
// whether the crash was recorded. A crash of an instance that is already
// down is ignored (a down instance serves nothing and cannot fail again).
// Recovery takes recoverySec and is not charged against the budget.
func (c *Controller) Crash(id int, nowSec, recoverySec float64) bool {
	if _, isDown := c.down[id]; isDown {
		return false
	}
	if recoverySec < 0 {
		recoverySec = 0
	}
	c.down[id] = downEntry{state: StateCrashed, endSec: nowSec + recoverySec}
	mCrashes.Inc()
	mDown.Set(float64(len(c.down)))
	return true
}

// Completion records one instance that finished its downtime in an Advance
// pass, with the state it was down in (StateRejuvenating or StateCrashed).
type Completion struct {
	ID  int
	Was InstanceState
}

// Advance completes every rejuvenation and crash recovery whose downtime has
// elapsed by nowSec and returns the IDs of the instances that came back up,
// in ascending order (so callers iterating the result stay deterministic).
func (c *Controller) Advance(nowSec float64) []int {
	comps := c.AdvanceDetailed(nowSec)
	up := make([]int, len(comps))
	for i, comp := range comps {
		up[i] = comp.ID
	}
	return up
}

// AdvanceDetailed is Advance with the cause attached: each completion says
// whether the instance was rejuvenating or crash-recovering, so observers can
// journal the two outcomes distinctly. IDs come back in ascending order. The
// returned slice is reused by the next Advance/AdvanceDetailed call; callers
// that keep completions across calls must copy them (Advance does).
func (c *Controller) AdvanceDetailed(nowSec float64) []Completion {
	up := c.comps[:0]
	for id, e := range c.down {
		if e.endSec <= nowSec {
			up = append(up, Completion{ID: id, Was: e.state})
		}
	}
	if len(up) == 0 {
		return nil
	}
	c.comps = up
	// Map iteration order is random: restore ascending IDs. Completions per
	// advance are few, so an insertion sort on the reused buffer beats
	// sort.Slice, whose comparator closure and interface conversion escape
	// to the heap on every call — even the no-completion calls a fleet
	// driver makes every tick.
	for i := 1; i < len(up); i++ {
		for j := i; j > 0 && up[j-1].ID > up[j].ID; j-- {
			up[j-1], up[j] = up[j], up[j-1]
		}
	}
	for _, comp := range up {
		if comp.Was == StateRejuvenating {
			c.inFlight--
			mCompleted.Inc()
		}
		delete(c.down, comp.ID)
	}
	mInFlight.Set(float64(c.inFlight))
	mDown.Set(float64(len(c.down)))
	return up
}
