package rejuv

import (
	"math"
	"strings"
	"testing"
	"time"

	"agingpred/internal/evalx"
)

// agingPredictions builds a synthetic aging run: the server crashes at
// crashTime, checkpoints every 15 s, and the (perfect-model) predicted TTF is
// the true TTF plus an optional constant bias.
func agingPredictions(crashTime float64, biasSec float64) []evalx.Prediction {
	var preds []evalx.Prediction
	for t := 15.0; t < crashTime; t += 15 {
		ttf := crashTime - t
		preds = append(preds, evalx.Prediction{TimeSec: t, TrueTTF: ttf, PredictedTTF: ttf + biasSec})
	}
	return preds
}

func TestTimeBasedPolicy(t *testing.T) {
	p := &TimeBased{Period: 30 * time.Minute}
	if p.Decide(100, 99999) {
		t.Fatalf("time-based policy fired before its period")
	}
	if !p.Decide(1801, 99999) {
		t.Fatalf("time-based policy did not fire after its period")
	}
	if !strings.Contains(p.Name(), "time-based") {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestPredictivePolicyConfirmations(t *testing.T) {
	p := &Predictive{Threshold: 10 * time.Minute, Confirmations: 3}
	// Two low predictions then a high one: no trigger.
	if p.Decide(0, 100) || p.Decide(15, 100) {
		t.Fatalf("fired before enough confirmations")
	}
	if p.Decide(30, 10000) {
		t.Fatalf("fired on a high prediction")
	}
	// Three consecutive low predictions trigger.
	p.Reset()
	fired := false
	for i := 0; i < 3; i++ {
		fired = p.Decide(float64(i*15), 100)
	}
	if !fired {
		t.Fatalf("did not fire after 3 consecutive low predictions")
	}
	// Default confirmation count is 1.
	q := &Predictive{Threshold: 10 * time.Minute}
	if !q.Decide(0, 100) {
		t.Fatalf("default predictive policy did not fire immediately")
	}
}

func TestEvaluateValidation(t *testing.T) {
	preds := agingPredictions(3600, 0)
	if _, err := Evaluate(nil, preds, 3600); err == nil {
		t.Fatalf("nil policy accepted")
	}
	if _, err := Evaluate(&TimeBased{Period: time.Hour}, nil, 3600); err == nil {
		t.Fatalf("empty predictions accepted")
	}
	if _, err := Evaluate(&TimeBased{Period: time.Hour}, preds, 0); err == nil {
		t.Fatalf("zero crash time accepted")
	}
}

func TestEvaluateTimeBasedTooLateCrashes(t *testing.T) {
	preds := agingPredictions(3600, 0) // crash after 1 h
	out, err := Evaluate(&TimeBased{Period: 2 * time.Hour}, preds, 3600)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !out.Crashed || out.Rejuvenated {
		t.Fatalf("a 2-hour restart period should not save a 1-hour crash: %+v", out)
	}
	if !strings.Contains(out.String(), "CRASHED") {
		t.Fatalf("String() = %q", out.String())
	}
}

func TestEvaluateTimeBasedTooEarlyWastesLifetime(t *testing.T) {
	preds := agingPredictions(7200, 0) // crash after 2 h
	out, err := Evaluate(&TimeBased{Period: 30 * time.Minute}, preds, 7200)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if out.Crashed {
		t.Fatalf("early restarts should avoid the crash")
	}
	if out.WastedLifetimeSec < 5000 {
		t.Fatalf("wasted lifetime = %v, want most of the 2 h lifetime", out.WastedLifetimeSec)
	}
	if out.RestartsPerDay < 40 {
		t.Fatalf("restarts/day = %v, want ~48 for a 30-minute period", out.RestartsPerDay)
	}
}

func TestEvaluatePredictiveUsesMostOfTheLifetime(t *testing.T) {
	preds := agingPredictions(7200, 0)
	out, err := Evaluate(&Predictive{Threshold: 10 * time.Minute, Confirmations: 2}, preds, 7200)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if out.Crashed {
		t.Fatalf("predictive policy crashed with a perfect predictor")
	}
	if out.UtilisedLifetimeFraction < 0.85 {
		t.Fatalf("predictive policy used only %.0f%% of the lifetime", out.UtilisedLifetimeFraction*100)
	}
	if out.WastedLifetimeSec > 15*60 {
		t.Fatalf("predictive policy wasted %v s", out.WastedLifetimeSec)
	}
	if out.RestartsPerDay > 14 {
		t.Fatalf("predictive policy needs %v restarts/day, want about 12", out.RestartsPerDay)
	}
}

func TestPredictiveBeatsTimeBasedOnWaste(t *testing.T) {
	preds := agingPredictions(7200, 0)
	outs, err := Compare([]Policy{
		&TimeBased{Period: 30 * time.Minute},
		&Predictive{Threshold: 10 * time.Minute, Confirmations: 2},
	}, preds, 7200)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("Compare returned %d outcomes", len(outs))
	}
	timeBased, predictive := outs[0], outs[1]
	if predictive.WastedLifetimeSec >= timeBased.WastedLifetimeSec {
		t.Fatalf("predictive wasted %v s, time-based %v s; the whole point is to waste less",
			predictive.WastedLifetimeSec, timeBased.WastedLifetimeSec)
	}
	best, err := Best(outs)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	if best.Policy != predictive.Policy {
		t.Fatalf("Best picked %q", best.Policy)
	}
}

func TestEvaluateWithBiasedPredictor(t *testing.T) {
	// A predictor that is 5 minutes optimistic (predicts more time than
	// real): the predictive policy fires later, cutting it closer but still
	// before the crash when the threshold exceeds the bias.
	preds := agingPredictions(5400, 300)
	out, err := Evaluate(&Predictive{Threshold: 10 * time.Minute}, preds, 5400)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if out.Crashed {
		t.Fatalf("crash not avoided with 10-minute threshold and 5-minute bias")
	}
	// With a threshold smaller than the bias the policy never sees a low
	// enough prediction and the server crashes.
	out, err = Evaluate(&Predictive{Threshold: 4 * time.Minute}, preds, 5400)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !out.Crashed {
		t.Fatalf("optimistic predictor with tight threshold should crash")
	}
}

func TestBestEmptyAndAllCrashed(t *testing.T) {
	if _, err := Best(nil); err == nil {
		t.Fatalf("Best(nil) succeeded")
	}
	all := []Outcome{{Policy: "a", Crashed: true}, {Policy: "b", Crashed: true}}
	best, err := Best(all)
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	if best.Policy != "a" {
		t.Fatalf("Best of all-crashed = %q", best.Policy)
	}
	if !math.IsInf(score(best), 1) {
		t.Fatalf("score of crashed outcome = %v", score(best))
	}
}
