// Package rejuv implements the two software-rejuvenation strategies the
// paper's introduction contrasts, and a small evaluator that compares them
// over an aging execution:
//
//   - Time-based rejuvenation restarts the server at fixed intervals,
//     regardless of its state. It is simple and widely deployed, but it
//     either restarts far too often (wasting capacity) or too rarely (and the
//     server still crashes).
//   - Predictive (proactive) rejuvenation watches the predicted time to
//     failure produced by the aging predictor and restarts only when a crash
//     is close, which is the use case the prediction model in this repository
//     exists for.
//
// The evaluator replays a monitored aging execution (with its per-checkpoint
// predictions) and reports, for each policy, whether the crash was avoided,
// how much server lifetime was thrown away by restarting early, and how many
// rejuvenation actions a long deployment would need.
package rejuv

import (
	"errors"
	"fmt"
	"math"
	"time"

	"agingpred/internal/evalx"
)

// Policy decides, checkpoint by checkpoint, whether to rejuvenate now.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide is called once per checkpoint with the current time (seconds
	// since the server was last started) and the predicted time to failure
	// at that checkpoint. It returns true to trigger a rejuvenation.
	Decide(nowSec, predictedTTFSec float64) bool
	// Reset clears per-run state (called when a new run starts).
	Reset()
}

// TimeBased rejuvenates every Period, ignoring predictions.
type TimeBased struct {
	// Period is the fixed rejuvenation interval.
	Period time.Duration
}

// Name implements Policy.
func (p *TimeBased) Name() string { return fmt.Sprintf("time-based (%v)", p.Period) }

// Decide implements Policy.
func (p *TimeBased) Decide(nowSec, _ float64) bool {
	return nowSec >= p.Period.Seconds()
}

// Reset implements Policy.
func (p *TimeBased) Reset() {}

// Predictive rejuvenates when the predicted time to failure drops below
// Threshold for Confirmations consecutive checkpoints (the confirmation count
// guards against a single noisy prediction triggering a restart).
type Predictive struct {
	// Threshold is the predicted-TTF level below which rejuvenation is
	// triggered.
	Threshold time.Duration
	// Confirmations is how many consecutive checkpoints must agree
	// (0 = 1, i.e. trigger immediately).
	Confirmations int

	consecutive int
	// thresholdSec caches Threshold.Seconds() (invalidated when Threshold
	// changes): Decide runs once per instance per tick in a fleet, and the
	// Duration division shows up at that rate.
	cachedThreshold time.Duration
	thresholdSec    float64
}

// Name implements Policy.
func (p *Predictive) Name() string { return fmt.Sprintf("predictive (TTF < %v)", p.Threshold) }

// Decide implements Policy.
func (p *Predictive) Decide(_, predictedTTFSec float64) bool {
	needed := p.Confirmations
	if needed <= 0 {
		needed = 1
	}
	if p.Threshold != p.cachedThreshold {
		p.cachedThreshold = p.Threshold
		p.thresholdSec = p.Threshold.Seconds()
	}
	if predictedTTFSec < p.thresholdSec {
		p.consecutive++
	} else {
		p.consecutive = 0
	}
	return p.consecutive >= needed
}

// Reset implements Policy.
func (p *Predictive) Reset() { p.consecutive = 0 }

// Statically verify both policies implement Policy.
var (
	_ Policy = (*TimeBased)(nil)
	_ Policy = (*Predictive)(nil)
)

// Outcome is the result of applying one policy to one aging execution.
type Outcome struct {
	// Policy is the policy's name.
	Policy string
	// Rejuvenated says whether the policy triggered before the crash.
	Rejuvenated bool
	// RejuvenationTimeSec is when it triggered (0 if it never did).
	RejuvenationTimeSec float64
	// Crashed says whether the server crashed before the policy acted — the
	// outcome rejuvenation exists to prevent.
	Crashed bool
	// CrashTimeSec is the actual crash time of the execution.
	CrashTimeSec float64
	// WastedLifetimeSec is how much useful server lifetime the policy threw
	// away by restarting earlier than necessary (crash time − rejuvenation
	// time). Lower is better, provided the crash is avoided.
	WastedLifetimeSec float64
	// UtilisedLifetimeFraction is the fraction of the achievable lifetime
	// the policy let the server use before restarting (1.0 = restarted at
	// the last possible moment, 0 = restarted immediately).
	UtilisedLifetimeFraction float64
	// RestartsPerDay extrapolates how many rejuvenation actions a 24-hour
	// deployment under the same aging rate would need.
	RestartsPerDay float64
}

// String renders the outcome on one line.
func (o Outcome) String() string {
	status := "CRASHED"
	if !o.Crashed {
		status = "crash avoided"
	}
	return fmt.Sprintf("%-28s %-14s rejuvenated at %s, wasted %s (%.0f%% lifetime used, %.1f restarts/day)",
		o.Policy, status, evalx.FormatDuration(o.RejuvenationTimeSec),
		evalx.FormatDuration(o.WastedLifetimeSec), o.UtilisedLifetimeFraction*100, o.RestartsPerDay)
}

// Evaluate replays an aging execution against a policy. preds must be the
// per-checkpoint predictions of the execution (time, true TTF, predicted
// TTF), in time order; crashTimeSec is when the unattended server actually
// crashed.
func Evaluate(policy Policy, preds []evalx.Prediction, crashTimeSec float64) (Outcome, error) {
	if policy == nil {
		return Outcome{}, errors.New("rejuv: nil policy")
	}
	if len(preds) == 0 {
		return Outcome{}, errors.New("rejuv: no predictions")
	}
	if crashTimeSec <= 0 {
		return Outcome{}, fmt.Errorf("rejuv: non-positive crash time %v", crashTimeSec)
	}
	policy.Reset()
	out := Outcome{Policy: policy.Name(), CrashTimeSec: crashTimeSec}
	for _, p := range preds {
		if p.TimeSec >= crashTimeSec {
			break
		}
		if policy.Decide(p.TimeSec, p.PredictedTTF) {
			out.Rejuvenated = true
			out.RejuvenationTimeSec = p.TimeSec
			break
		}
	}
	if !out.Rejuvenated {
		out.Crashed = true
		out.WastedLifetimeSec = 0
		out.UtilisedLifetimeFraction = 1
		out.RestartsPerDay = 0
		return out, nil
	}
	out.WastedLifetimeSec = crashTimeSec - out.RejuvenationTimeSec
	out.UtilisedLifetimeFraction = out.RejuvenationTimeSec / crashTimeSec
	if out.RejuvenationTimeSec > 0 {
		out.RestartsPerDay = (24 * time.Hour).Seconds() / out.RejuvenationTimeSec
	}
	return out, nil
}

// Compare evaluates several policies on the same execution and returns their
// outcomes in the given order.
func Compare(policies []Policy, preds []evalx.Prediction, crashTimeSec float64) ([]Outcome, error) {
	outcomes := make([]Outcome, 0, len(policies))
	for _, p := range policies {
		o, err := Evaluate(p, preds, crashTimeSec)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// Best returns the outcome that avoided the crash with the smallest wasted
// lifetime, or the least-bad outcome if every policy crashed. It returns an
// error on an empty slice.
func Best(outcomes []Outcome) (Outcome, error) {
	if len(outcomes) == 0 {
		return Outcome{}, errors.New("rejuv: no outcomes")
	}
	best := outcomes[0]
	bestScore := score(best)
	for _, o := range outcomes[1:] {
		if s := score(o); s < bestScore {
			best = o
			bestScore = s
		}
	}
	return best, nil
}

// score ranks outcomes: avoiding the crash dominates, then minimal waste.
func score(o Outcome) float64 {
	if o.Crashed {
		return math.Inf(1)
	}
	return o.WastedLifetimeSec
}
