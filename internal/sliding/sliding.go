// Package sliding implements the derived-metric machinery of the paper:
// per-resource consumption speeds smoothed with a sliding-window (moving)
// average, plus the ratio features built on top of them.
//
// Section 2.2 of the paper argues that the single most important derived
// variable is the consumption speed of every monitored resource, and that the
// instantaneous speed is too noisy to be useful: it must be averaged over a
// window of the last X observations. The window length X trades noise
// tolerance against reaction delay (the paper observes a 12-mark ≈ 180 s
// delay in experiment 4.2).
package sliding

import (
	"fmt"
	"math"
)

// Window is a fixed-capacity sliding window over float64 observations with
// O(1) push and O(1) mean. The zero value is not usable; use NewWindow.
type Window struct {
	buf   []float64
	size  int // number of valid observations, <= len(buf)
	next  int // index where the next observation is written
	sum   float64
	total uint64 // observations pushed over the window's lifetime
}

// NewWindow returns a window holding at most capacity observations.
// It panics if capacity is not positive: a zero-length window is always a
// configuration bug.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("sliding: non-positive window capacity %d", capacity))
	}
	return &Window{buf: make([]float64, capacity)}
}

// Capacity returns the maximum number of observations retained.
func (w *Window) Capacity() int { return len(w.buf) }

// Len returns the number of observations currently in the window.
func (w *Window) Len() int { return w.size }

// Total returns the number of observations pushed over the window's lifetime.
func (w *Window) Total() uint64 { return w.total }

// Full reports whether the window holds Capacity observations.
func (w *Window) Full() bool { return w.size == len(w.buf) }

// Push adds an observation, evicting the oldest one if the window is full.
func (w *Window) Push(v float64) {
	if w.size == len(w.buf) {
		w.sum -= w.buf[w.next]
	} else {
		w.size++
	}
	w.buf[w.next] = v
	w.sum += v
	// Branch instead of % — the capacity is not a power of two, so the
	// modulo would be a real integer division on the hottest path.
	if w.next++; w.next == len(w.buf) {
		w.next = 0
	}
	w.total++

	// Floating-point error accumulates in the incremental sum over very long
	// runs; re-derive it periodically so the mean stays trustworthy.
	if w.total%4096 == 0 {
		w.recomputeSum()
	}
}

func (w *Window) recomputeSum() {
	sum := 0.0
	for i := 0; i < w.size; i++ {
		sum += w.at(i)
	}
	w.sum = sum
}

// at returns the i-th oldest observation, i in [0, size).
func (w *Window) at(i int) float64 {
	start := w.next - w.size
	if start < 0 {
		start += len(w.buf)
	}
	return w.buf[(start+i)%len(w.buf)]
}

// Mean returns the average of the observations in the window, or 0 if the
// window is empty. This is the paper's "sliding window average" (SWA).
func (w *Window) Mean() float64 {
	if w.size == 0 {
		return 0
	}
	return w.sum / float64(w.size)
}

// Last returns the most recent observation, or 0 if the window is empty.
func (w *Window) Last() float64 {
	if w.size == 0 {
		return 0
	}
	return w.at(w.size - 1)
}

// Values returns the observations from oldest to newest.
func (w *Window) Values() []float64 {
	out := make([]float64, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.at(i)
	}
	return out
}

// StdDev returns the (population) standard deviation of the window contents,
// or 0 if the window holds fewer than two observations.
func (w *Window) StdDev() float64 {
	if w.size < 2 {
		return 0
	}
	mean := w.Mean()
	ss := 0.0
	for i := 0; i < w.size; i++ {
		d := w.at(i) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(w.size))
}

// Reset empties the window.
func (w *Window) Reset() {
	w.size = 0
	w.next = 0
	w.sum = 0
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// SpeedTracker turns a sequence of (time, level) observations of one resource
// into the paper's derived speed metrics: the instantaneous consumption speed
// between consecutive checkpoints and its sliding-window average.
//
// Speeds are expressed in resource units per second. A positive speed means
// the resource usage is growing (being consumed); a negative speed means it
// is being released.
type SpeedTracker struct {
	window *Window

	havePrev  bool
	prevTime  float64
	prevLevel float64
	lastSpeed float64
}

// NewSpeedTracker returns a tracker whose sliding window holds windowLen
// speed observations. It panics if windowLen is not positive.
func NewSpeedTracker(windowLen int) *SpeedTracker {
	return &SpeedTracker{window: NewWindow(windowLen)}
}

// Observe records the resource level at the given time (seconds). The first
// observation only primes the tracker; subsequent observations add one speed
// sample per call. Observations must be given in non-decreasing time order;
// an observation at the same instant as the previous one is ignored (the
// speed would be undefined).
func (t *SpeedTracker) Observe(timeSec, level float64) error {
	// x−x is 0 for every finite x and NaN for NaN/±Inf, so this single
	// comparison screens both inputs; the slow path re-derives which one
	// offended for the message.
	if timeSec-timeSec != 0 || level-level != 0 {
		return fmt.Errorf("sliding: non-finite observation (t=%v, level=%v)", timeSec, level)
	}
	if !t.havePrev {
		t.havePrev = true
		t.prevTime = timeSec
		t.prevLevel = level
		return nil
	}
	if timeSec < t.prevTime {
		return fmt.Errorf("sliding: observation time went backwards: %v after %v", timeSec, t.prevTime)
	}
	if timeSec == t.prevTime {
		return nil
	}
	speed := (level - t.prevLevel) / (timeSec - t.prevTime)
	t.lastSpeed = speed
	t.window.Push(speed)
	t.prevTime = timeSec
	t.prevLevel = level
	return nil
}

// Speed returns the most recent instantaneous consumption speed, or 0 before
// two observations have been made.
func (t *SpeedTracker) Speed() float64 { return t.lastSpeed }

// SWA returns the sliding-window average of the consumption speed. This is
// the "SWA variation" family of variables in Table 2.
func (t *SpeedTracker) SWA() float64 { return t.window.Mean() }

// Samples returns the number of speed samples currently in the window.
func (t *SpeedTracker) Samples() int { return t.window.Len() }

// Level returns the most recently observed resource level.
func (t *SpeedTracker) Level() float64 { return t.prevLevel }

// Reset clears all state, as if the tracker were freshly constructed.
func (t *SpeedTracker) Reset() {
	t.window.Reset()
	t.havePrev = false
	t.prevTime = 0
	t.prevLevel = 0
	t.lastSpeed = 0
}

// safeDivLimit bounds the ratio features when the denominator approaches
// zero. The paper's derived variables divide by SWA speeds and by throughput,
// both of which can legitimately be zero (no aging, idle server); clamping
// keeps the features finite without losing the "effectively infinite" signal.
// The limit is kept modest so the squared values inside the least-squares
// solver stay far away from the limits of float64.
const safeDivLimit = 1e6

// SafeDiv returns num/den clamped to [-safeDivLimit, safeDivLimit], and 0
// when den is exactly 0 and num is 0. A zero denominator with a non-zero
// numerator returns ±safeDivLimit, preserving the sign of the numerator.
func SafeDiv(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		if num > 0 {
			return safeDivLimit
		}
		return -safeDivLimit
	}
	v := num / den
	if v > safeDivLimit {
		return safeDivLimit
	}
	if v < -safeDivLimit {
		return -safeDivLimit
	}
	return v
}

// Inverse returns 1/v with the same clamping rules as SafeDiv. It implements
// the "1/SWA" family of Table 2 variables, which estimate seconds per unit of
// resource consumed (the building block of time-to-exhaustion estimates).
func Inverse(v float64) float64 { return SafeDiv(1, v) }

// TimeToExhaustion returns the naive linear estimate of the time (seconds)
// until the resource reaches capacity: (capacity - level) / speed, clamped.
// A non-positive speed yields the clamp limit, meaning "no exhaustion in
// sight". This is Equation (1) of the paper and is used both as a derived
// feature and as the naive baseline predictor.
func TimeToExhaustion(capacity, level, speed float64) float64 {
	remaining := capacity - level
	if remaining <= 0 {
		return 0
	}
	if speed <= 0 {
		return safeDivLimit
	}
	return SafeDiv(remaining, speed)
}
