package sliding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewWindowPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWindow(%d) did not panic", c)
				}
			}()
			NewWindow(c)
		}()
	}
}

func TestWindowMeanBeforeFull(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 || w.Len() != 0 || w.Last() != 0 {
		t.Fatalf("empty window: Mean=%v Len=%d Last=%v", w.Mean(), w.Len(), w.Last())
	}
	w.Push(2)
	w.Push(4)
	if got := w.Mean(); got != 3 {
		t.Fatalf("Mean of [2 4] = %v, want 3", got)
	}
	if w.Full() {
		t.Fatalf("window reported full with 2/4 observations")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		w.Push(v)
	}
	if !w.Full() {
		t.Fatalf("window not full after 5 pushes")
	}
	if got := w.Mean(); got != 4 {
		t.Fatalf("Mean after eviction = %v, want 4 (window [3 4 5])", got)
	}
	if got := w.Last(); got != 5 {
		t.Fatalf("Last = %v, want 5", got)
	}
	vals := w.Values()
	want := []float64{3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", vals, want)
		}
	}
	if w.Total() != 5 {
		t.Fatalf("Total = %d, want 5", w.Total())
	}
}

func TestWindowStdDev(t *testing.T) {
	w := NewWindow(10)
	if got := w.StdDev(); got != 0 {
		t.Fatalf("StdDev of empty window = %v", got)
	}
	w.Push(5)
	if got := w.StdDev(); got != 0 {
		t.Fatalf("StdDev of single observation = %v", got)
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Push(v)
	}
	// Window holds 9 values: 5,2,4,4,4,5,5,7,9.
	mean := w.Mean()
	var ss float64
	for _, v := range w.Values() {
		ss += (v - mean) * (v - mean)
	}
	want := math.Sqrt(ss / 9)
	if math.Abs(w.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", w.StdDev(), want)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(3)
	w.Push(10)
	w.Push(20)
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatalf("Reset left Len=%d Mean=%v", w.Len(), w.Mean())
	}
	w.Push(7)
	if w.Mean() != 7 {
		t.Fatalf("window unusable after Reset: Mean=%v", w.Mean())
	}
}

func TestWindowSumRecomputationStability(t *testing.T) {
	// Push far more than the recompute period with values that stress the
	// incremental sum; the mean must stay near the true window mean.
	w := NewWindow(16)
	for i := 0; i < 100000; i++ {
		w.Push(1e9 + float64(i%7))
	}
	vals := w.Values()
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	want := sum / float64(len(vals))
	if math.Abs(w.Mean()-want) > 1e-3 {
		t.Fatalf("Mean drifted: got %v, want %v", w.Mean(), want)
	}
}

func TestSpeedTrackerBasics(t *testing.T) {
	tr := NewSpeedTracker(4)
	if tr.Speed() != 0 || tr.SWA() != 0 || tr.Samples() != 0 {
		t.Fatalf("fresh tracker not zeroed")
	}
	// Resource grows 10 units every 15 seconds.
	for i := 0; i <= 5; i++ {
		if err := tr.Observe(float64(i)*15, float64(i)*10); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	wantSpeed := 10.0 / 15.0
	if math.Abs(tr.Speed()-wantSpeed) > 1e-12 {
		t.Fatalf("Speed = %v, want %v", tr.Speed(), wantSpeed)
	}
	if math.Abs(tr.SWA()-wantSpeed) > 1e-12 {
		t.Fatalf("SWA = %v, want %v", tr.SWA(), wantSpeed)
	}
	if tr.Samples() != 4 {
		t.Fatalf("Samples = %d, want 4 (window capacity)", tr.Samples())
	}
	if tr.Level() != 50 {
		t.Fatalf("Level = %v, want 50", tr.Level())
	}
}

func TestSpeedTrackerSWASmoothsChanges(t *testing.T) {
	tr := NewSpeedTracker(4)
	// Constant slope 1 for a while, then slope 5.
	now := 0.0
	level := 0.0
	for i := 0; i < 10; i++ {
		_ = tr.Observe(now, level)
		now++
		level++
	}
	swaBefore := tr.SWA()
	_ = tr.Observe(now, level)
	now++
	level += 5
	_ = tr.Observe(now, level)
	// One fast sample out of four: the SWA moves toward 5 but lags the
	// instantaneous speed — this is the delay the paper discusses.
	if tr.Speed() != 5 {
		t.Fatalf("instantaneous speed = %v, want 5", tr.Speed())
	}
	if !(tr.SWA() > swaBefore && tr.SWA() < tr.Speed()) {
		t.Fatalf("SWA = %v, want between %v and %v", tr.SWA(), swaBefore, tr.Speed())
	}
}

func TestSpeedTrackerNegativeSpeedOnRelease(t *testing.T) {
	tr := NewSpeedTracker(8)
	_ = tr.Observe(0, 100)
	_ = tr.Observe(10, 50)
	if tr.Speed() >= 0 {
		t.Fatalf("releasing resource should yield negative speed, got %v", tr.Speed())
	}
}

func TestSpeedTrackerErrors(t *testing.T) {
	tr := NewSpeedTracker(4)
	if err := tr.Observe(math.NaN(), 1); err == nil {
		t.Fatalf("Observe(NaN) succeeded")
	}
	if err := tr.Observe(0, math.Inf(1)); err == nil {
		t.Fatalf("Observe(level=Inf) succeeded")
	}
	if err := tr.Observe(10, 1); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if err := tr.Observe(5, 2); err == nil {
		t.Fatalf("Observe with time going backwards succeeded")
	}
	// Same-instant observation is ignored, not an error.
	if err := tr.Observe(10, 99); err != nil {
		t.Fatalf("Observe at same instant: %v", err)
	}
	if tr.Samples() != 0 {
		t.Fatalf("same-instant observation produced a speed sample")
	}
}

func TestSpeedTrackerReset(t *testing.T) {
	tr := NewSpeedTracker(4)
	_ = tr.Observe(0, 0)
	_ = tr.Observe(1, 10)
	tr.Reset()
	if tr.Speed() != 0 || tr.SWA() != 0 || tr.Samples() != 0 || tr.Level() != 0 {
		t.Fatalf("Reset did not clear tracker state")
	}
	// After reset the first observation only primes again.
	_ = tr.Observe(100, 5)
	if tr.Samples() != 0 {
		t.Fatalf("first observation after Reset produced a speed sample")
	}
}

func TestSafeDiv(t *testing.T) {
	tests := []struct {
		num, den, want float64
	}{
		{10, 2, 5},
		{0, 0, 0},
		{3, 0, safeDivLimit},
		{-3, 0, -safeDivLimit},
		{1e30, 1e-30, safeDivLimit},
		{-1e30, 1e-30, -safeDivLimit},
	}
	for _, tt := range tests {
		if got := SafeDiv(tt.num, tt.den); got != tt.want {
			t.Errorf("SafeDiv(%v, %v) = %v, want %v", tt.num, tt.den, got, tt.want)
		}
	}
}

func TestInverse(t *testing.T) {
	if got := Inverse(4); got != 0.25 {
		t.Fatalf("Inverse(4) = %v, want 0.25", got)
	}
	if got := Inverse(0); got != safeDivLimit {
		t.Fatalf("Inverse(0) = %v, want clamp", got)
	}
}

func TestTimeToExhaustion(t *testing.T) {
	tests := []struct {
		name                   string
		capacity, level, speed float64
		want                   float64
	}{
		{name: "simple", capacity: 100, level: 40, speed: 2, want: 30},
		{name: "already exhausted", capacity: 100, level: 100, speed: 2, want: 0},
		{name: "over capacity", capacity: 100, level: 150, speed: 2, want: 0},
		{name: "no consumption", capacity: 100, level: 40, speed: 0, want: safeDivLimit},
		{name: "releasing", capacity: 100, level: 40, speed: -1, want: safeDivLimit},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TimeToExhaustion(tt.capacity, tt.level, tt.speed); got != tt.want {
				t.Fatalf("TimeToExhaustion(%v,%v,%v) = %v, want %v", tt.capacity, tt.level, tt.speed, got, tt.want)
			}
		})
	}
}

// Property: the window mean always lies between the min and max of the
// retained values, and equals the brute-force mean of Values().
func TestWindowMeanBoundsProperty(t *testing.T) {
	f := func(vals []float64, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		w := NewWindow(capacity)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			w.Push(v)
		}
		retained := w.Values()
		if len(retained) == 0 {
			return w.Mean() == 0
		}
		minV, maxV, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, v := range retained {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
			sum += v
		}
		mean := sum / float64(len(retained))
		const eps = 1e-6
		tol := eps * (1 + math.Abs(mean))
		return w.Mean() >= minV-tol && w.Mean() <= maxV+tol && math.Abs(w.Mean()-mean) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a linear resource (constant slope), the tracker's SWA equals
// the slope regardless of window size or sampling interval.
func TestSpeedTrackerLinearResourceProperty(t *testing.T) {
	f := func(slopeSeed int16, stepSeed, windowSeed uint8) bool {
		slope := float64(slopeSeed) / 16
		step := float64(stepSeed%30) + 1
		window := int(windowSeed%20) + 1
		tr := NewSpeedTracker(window)
		for i := 0; i < 50; i++ {
			tm := float64(i) * step
			if err := tr.Observe(tm, slope*tm); err != nil {
				return false
			}
		}
		return math.Abs(tr.SWA()-slope) <= 1e-9*(1+math.Abs(slope))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
