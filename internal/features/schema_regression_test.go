package features

import (
	"testing"

	"agingpred/internal/monitor"
	"agingpred/internal/sliding"
)

// This file pins the schema layer to the original hardcoded feature pipeline
// it replaced. The constants, exclusion maps, variable list and map-based
// extractor below are the pre-schema implementation, kept verbatim as test
// fixtures: each legacy VariableSet must yield an attribute list and a
// dataset byte-identical to its schema-based re-expression, or the golden
// experiment metrics would silently drift.

// Raw metric names (legacy fixture).
const (
	varThroughput   = "throughput"
	varWorkload     = "workload"
	varResponseTime = "response_time"
	varSystemLoad   = "system_load"
	varDiskUsed     = "disk_used_mb"
	varSwapFree     = "swap_free_mb"
	varNumProcesses = "num_processes"
	varSysMem       = "sys_mem_used_mb"
	varTomcatMem    = "tomcat_mem_used_mb"
	varNumThreads   = "num_threads"
	varHTTPConns    = "num_http_conns"
	varMySQLConns   = "num_mysql_conns"
	varYoungMax     = "young_max_mb"
	varOldMax       = "old_max_mb"
	varYoungUsed    = "young_used_mb"
	varOldUsed      = "old_used_mb"
	varYoungPct     = "young_used_pct"
	varOldPct       = "old_used_pct"
)

// Derived metric names (legacy fixture).
const (
	varSWASpeedYoung     = "swa_speed_young"
	varSWASpeedOld       = "swa_speed_old"
	varSWASpeedThreads   = "swa_speed_threads"
	varSWASpeedTomcatMem = "swa_speed_tomcat_mem"
	varSWASpeedSysMem    = "swa_speed_sys_mem"

	varSWASpeedTomcatMemPerTH = "swa_speed_tomcat_mem_per_th"
	varSWASpeedSysMemPerTH    = "swa_speed_sys_mem_per_th"
	varSWASpeedYoungPerTH     = "swa_speed_young_per_th"
	varSWASpeedOldPerTH       = "swa_speed_old_per_th"

	varInvSWAThreads   = "inv_swa_speed_threads"
	varInvSWATomcatMem = "inv_swa_speed_tomcat_mem"
	varInvSWASysMem    = "inv_swa_speed_sys_mem"
	varInvSWAYoung     = "inv_swa_speed_young"
	varInvSWAOld       = "inv_swa_speed_old"

	varYoungOverSWA     = "young_used_over_swa"
	varOldOverSWA       = "old_used_over_swa"
	varThreadsOverSWA   = "threads_over_swa"
	varTomcatMemOverSWA = "tomcat_mem_over_swa"
	varSysMemOverSWA    = "sys_mem_over_swa"

	varInvSWAPerTHTomcatMem = "inv_swa_per_th_tomcat_mem"
	varInvSWAPerTHSysMem    = "inv_swa_per_th_sys_mem"
	varInvSWAPerTHYoung     = "inv_swa_per_th_young"
	varInvSWAPerTHOld       = "inv_swa_per_th_old"

	varROverSWAPerTHTomcatMem = "r_over_swa_per_th_tomcat_mem"
	varROverSWAPerTHSysMem    = "r_over_swa_per_th_sys_mem"
	varROverSWAPerTHYoung     = "r_over_swa_per_th_young"
	varROverSWAPerTHOld       = "r_over_swa_per_th_old"

	varSWAResponseTime = "swa_response_time"
	varSWAThroughput   = "swa_throughput"
	varSWASysMem       = "swa_sys_mem_used"
	varSWATomcatMem    = "swa_tomcat_mem_used"
)

// heapRelated are the variables excluded by NoHeapSet (legacy fixture).
var heapRelated = map[string]bool{
	varYoungMax: true, varOldMax: true,
	varYoungUsed: true, varOldUsed: true,
	varYoungPct: true, varOldPct: true,
	varSWASpeedYoung: true, varSWASpeedOld: true,
	varSWASpeedYoungPerTH: true, varSWASpeedOldPerTH: true,
	varInvSWAYoung: true, varInvSWAOld: true,
	varYoungOverSWA: true, varOldOverSWA: true,
	varInvSWAPerTHYoung: true, varInvSWAPerTHOld: true,
	varROverSWAPerTHYoung: true, varROverSWAPerTHOld: true,
}

// processMemRelated are the variables removed by HeapFocusSet (legacy
// fixture).
var processMemRelated = map[string]bool{
	varSysMem: true, varTomcatMem: true,
	varSWASpeedTomcatMem: true, varSWASpeedSysMem: true,
	varSWASpeedTomcatMemPerTH: true, varSWASpeedSysMemPerTH: true,
	varInvSWATomcatMem: true, varInvSWASysMem: true,
	varTomcatMemOverSWA: true, varSysMemOverSWA: true,
	varInvSWAPerTHTomcatMem: true, varInvSWAPerTHSysMem: true,
	varROverSWAPerTHTomcatMem: true, varROverSWAPerTHSysMem: true,
	varSWASysMem: true, varSWATomcatMem: true,
}

// allVariables is the complete Table 2 list in its original fixed order
// (legacy fixture).
var allVariables = []string{
	// Raw metrics.
	varThroughput, varWorkload, varResponseTime, varSystemLoad,
	varDiskUsed, varSwapFree, varNumProcesses,
	varSysMem, varTomcatMem, varNumThreads, varHTTPConns, varMySQLConns,
	varYoungMax, varOldMax, varYoungUsed, varOldUsed, varYoungPct, varOldPct,
	// SWA consumption speeds.
	varSWASpeedYoung, varSWASpeedOld,
	varSWASpeedThreads, varSWASpeedTomcatMem, varSWASpeedSysMem,
	// Speeds normalised by throughput.
	varSWASpeedTomcatMemPerTH, varSWASpeedSysMemPerTH,
	varSWASpeedYoungPerTH, varSWASpeedOldPerTH,
	// Inverse speeds.
	varInvSWAThreads, varInvSWATomcatMem, varInvSWASysMem,
	varInvSWAYoung, varInvSWAOld,
	// Resource level over SWA speed.
	varYoungOverSWA, varOldOverSWA,
	varThreadsOverSWA, varTomcatMemOverSWA, varSysMemOverSWA,
	// Inverse speed per throughput.
	varInvSWAPerTHTomcatMem, varInvSWAPerTHSysMem,
	varInvSWAPerTHYoung, varInvSWAPerTHOld,
	// Level over speed, per throughput.
	varROverSWAPerTHTomcatMem, varROverSWAPerTHSysMem,
	varROverSWAPerTHYoung, varROverSWAPerTHOld,
	// SWA-smoothed levels.
	varSWAResponseTime, varSWAThroughput, varSWASysMem, varSWATomcatMem,
}

// legacyVariables reproduces the original Variables(set) filter.
func legacyVariables(set VariableSet) []string {
	out := make([]string, 0, len(allVariables))
	for _, v := range allVariables {
		switch set {
		case NoHeapSet:
			if heapRelated[v] {
				continue
			}
		case HeapFocusSet:
			if processMemRelated[v] {
				continue
			}
		}
		out = append(out, v)
	}
	return out
}

// legacyState is the original map-based extraction state.
type legacyState struct {
	windowLen int

	speedYoung     *sliding.SpeedTracker
	speedOld       *sliding.SpeedTracker
	speedThreads   *sliding.SpeedTracker
	speedTomcatMem *sliding.SpeedTracker
	speedSysMem    *sliding.SpeedTracker

	levelResponse   *sliding.Window
	levelThroughput *sliding.Window
	levelSysMem     *sliding.Window
	levelTomcatMem  *sliding.Window
}

func newLegacyState(windowLen int) *legacyState {
	return &legacyState{
		windowLen:       windowLen,
		speedYoung:      sliding.NewSpeedTracker(windowLen),
		speedOld:        sliding.NewSpeedTracker(windowLen),
		speedThreads:    sliding.NewSpeedTracker(windowLen),
		speedTomcatMem:  sliding.NewSpeedTracker(windowLen),
		speedSysMem:     sliding.NewSpeedTracker(windowLen),
		levelResponse:   sliding.NewWindow(windowLen),
		levelThroughput: sliding.NewWindow(windowLen),
		levelSysMem:     sliding.NewWindow(windowLen),
		levelTomcatMem:  sliding.NewWindow(windowLen),
	}
}

// step is the original per-checkpoint feature computation, verbatim.
func (st *legacyState) step(cp monitor.Checkpoint) map[string]float64 {
	_ = st.speedYoung.Observe(cp.TimeSec, cp.YoungUsedMB)
	_ = st.speedOld.Observe(cp.TimeSec, cp.OldUsedMB)
	_ = st.speedThreads.Observe(cp.TimeSec, cp.NumThreads)
	_ = st.speedTomcatMem.Observe(cp.TimeSec, cp.TomcatMemUsedMB)
	_ = st.speedSysMem.Observe(cp.TimeSec, cp.SystemMemUsedMB)

	st.levelResponse.Push(cp.ResponseTimeSec)
	st.levelThroughput.Push(cp.Throughput)
	st.levelSysMem.Push(cp.SystemMemUsedMB)
	st.levelTomcatMem.Push(cp.TomcatMemUsedMB)

	th := cp.Throughput
	swaYoung := st.speedYoung.SWA()
	swaOld := st.speedOld.SWA()
	swaThreads := st.speedThreads.SWA()
	swaTomcat := st.speedTomcatMem.SWA()
	swaSys := st.speedSysMem.SWA()

	return map[string]float64{
		varThroughput:   cp.Throughput,
		varWorkload:     cp.Workload,
		varResponseTime: cp.ResponseTimeSec,
		varSystemLoad:   cp.SystemLoad,
		varDiskUsed:     cp.DiskUsedMB,
		varSwapFree:     cp.SwapFreeMB,
		varNumProcesses: cp.NumProcesses,
		varSysMem:       cp.SystemMemUsedMB,
		varTomcatMem:    cp.TomcatMemUsedMB,
		varNumThreads:   cp.NumThreads,
		varHTTPConns:    cp.NumHTTPConns,
		varMySQLConns:   cp.NumMySQLConns,
		varYoungMax:     cp.YoungMaxMB,
		varOldMax:       cp.OldMaxMB,
		varYoungUsed:    cp.YoungUsedMB,
		varOldUsed:      cp.OldUsedMB,
		varYoungPct:     cp.YoungPct,
		varOldPct:       cp.OldPct,

		varSWASpeedYoung:     swaYoung,
		varSWASpeedOld:       swaOld,
		varSWASpeedThreads:   swaThreads,
		varSWASpeedTomcatMem: swaTomcat,
		varSWASpeedSysMem:    swaSys,

		varSWASpeedTomcatMemPerTH: sliding.SafeDiv(swaTomcat, th),
		varSWASpeedSysMemPerTH:    sliding.SafeDiv(swaSys, th),
		varSWASpeedYoungPerTH:     sliding.SafeDiv(swaYoung, th),
		varSWASpeedOldPerTH:       sliding.SafeDiv(swaOld, th),

		varInvSWAThreads:   sliding.Inverse(swaThreads),
		varInvSWATomcatMem: sliding.Inverse(swaTomcat),
		varInvSWASysMem:    sliding.Inverse(swaSys),
		varInvSWAYoung:     sliding.Inverse(swaYoung),
		varInvSWAOld:       sliding.Inverse(swaOld),

		varYoungOverSWA:     sliding.SafeDiv(cp.YoungUsedMB, swaYoung),
		varOldOverSWA:       sliding.SafeDiv(cp.OldUsedMB, swaOld),
		varThreadsOverSWA:   sliding.SafeDiv(cp.NumThreads, swaThreads),
		varTomcatMemOverSWA: sliding.SafeDiv(cp.TomcatMemUsedMB, swaTomcat),
		varSysMemOverSWA:    sliding.SafeDiv(cp.SystemMemUsedMB, swaSys),

		varInvSWAPerTHTomcatMem: sliding.SafeDiv(sliding.Inverse(swaTomcat), th),
		varInvSWAPerTHSysMem:    sliding.SafeDiv(sliding.Inverse(swaSys), th),
		varInvSWAPerTHYoung:     sliding.SafeDiv(sliding.Inverse(swaYoung), th),
		varInvSWAPerTHOld:       sliding.SafeDiv(sliding.Inverse(swaOld), th),

		varROverSWAPerTHTomcatMem: sliding.SafeDiv(sliding.SafeDiv(cp.TomcatMemUsedMB, swaTomcat), th),
		varROverSWAPerTHSysMem:    sliding.SafeDiv(sliding.SafeDiv(cp.SystemMemUsedMB, swaSys), th),
		varROverSWAPerTHYoung:     sliding.SafeDiv(sliding.SafeDiv(cp.YoungUsedMB, swaYoung), th),
		varROverSWAPerTHOld:       sliding.SafeDiv(sliding.SafeDiv(cp.OldUsedMB, swaOld), th),

		varSWAResponseTime: st.levelResponse.Mean(),
		varSWAThroughput:   st.levelThroughput.Mean(),
		varSWASysMem:       st.levelSysMem.Mean(),
		varSWATomcatMem:    st.levelTomcatMem.Mean(),
	}
}

// TestSchemaMatchesLegacyVariableSets is the regression guard of the schema
// refactor: every legacy variable set, re-expressed as a schema, must
// produce the identical attribute list and a bit-identical dataset on a
// noisy series.
func TestSchemaMatchesLegacyVariableSets(t *testing.T) {
	s := noisySeries(200)
	for _, tc := range []struct {
		set    VariableSet
		schema string
	}{
		{FullSet, FullSchemaName},
		{NoHeapSet, NoHeapSchemaName},
		{HeapFocusSet, HeapFocusSchemaName},
	} {
		t.Run(tc.schema, func(t *testing.T) {
			schema, err := LookupSchema(tc.schema)
			if err != nil {
				t.Fatalf("LookupSchema(%q): %v", tc.schema, err)
			}
			if got := tc.set.Schema(); got != schema {
				t.Fatalf("VariableSet %v resolves to schema %q, want registered %q", tc.set, got.Name(), tc.schema)
			}
			// Attribute lists must match the legacy filter exactly.
			wantAttrs := legacyVariables(tc.set)
			gotAttrs := schema.Attrs()
			if len(gotAttrs) != len(wantAttrs) {
				t.Fatalf("schema %q has %d attrs, legacy set has %d", tc.schema, len(gotAttrs), len(wantAttrs))
			}
			for i := range wantAttrs {
				if gotAttrs[i] != wantAttrs[i] {
					t.Fatalf("schema %q attr %d = %q, legacy %q", tc.schema, i, gotAttrs[i], wantAttrs[i])
				}
			}
			// Datasets must be bit-identical to the legacy map-based
			// extraction.
			ds, err := schema.Extract(s)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if ds.Len() != s.Len() {
				t.Fatalf("dataset has %d instances, want %d", ds.Len(), s.Len())
			}
			st := newLegacyState(DefaultWindowLength)
			for i, cp := range s.Checkpoints {
				ref := st.step(cp)
				row := ds.Row(i)
				for j, name := range wantAttrs {
					if row[j] != ref[name] {
						t.Fatalf("checkpoint %d attr %q: schema %v, legacy %v", i, name, row[j], ref[name])
					}
				}
				if ds.TargetValue(i) != cp.TTFSec {
					t.Fatalf("checkpoint %d target %v, want %v", i, ds.TargetValue(i), cp.TTFSec)
				}
			}
		})
	}
}

// noisySeries builds a deterministic but non-trivial series: every raw
// metric moves, including non-monotonic ones, so ratio clamps and negative
// speeds are exercised.
func noisySeries(n int) *monitor.Series {
	s := &monitor.Series{
		Name:        "noisy",
		IntervalSec: 15,
		Workload:    100,
		Crashed:     true,
	}
	crash := float64(n) * 15
	s.CrashTimeSec = crash
	for i := 1; i <= n; i++ {
		t := float64(i) * 15
		wob := float64(i%7) - 3 // small deterministic oscillation
		cp := monitor.Checkpoint{
			TimeSec:         t,
			Throughput:      10 + wob,
			Workload:        100 + 2*wob,
			ResponseTimeSec: 0.05 + 0.001*wob,
			SystemLoad:      2 + 0.1*wob,
			DiskUsedMB:      12000 + float64(i),
			SwapFreeMB:      2048 - 0.5*float64(i),
			NumProcesses:    117,
			SystemMemUsedMB: 1000 + 1.5*float64(i) + 4*wob,
			TomcatMemUsedMB: 500 + 1.5*float64(i) + 4*wob,
			NumThreads:      250 + 0.25*float64(i) + wob,
			NumHTTPConns:    10 + wob,
			NumMySQLConns:   8 + 0.1*float64(i) + 0.5*wob,
			YoungMaxMB:      128,
			OldMaxMB:        832,
			YoungUsedMB:     40 + 8*wob,
			OldUsedMB:       200 + 1.2*float64(i),
			YoungPct:        (40 + 8*wob) / 128 * 100,
			OldPct:          (200 + 1.2*float64(i)) / 832 * 100,
			TTFSec:          crash - t,
		}
		s.Checkpoints = append(s.Checkpoints, cp)
	}
	return s
}
