package features

import (
	"math"
	"strings"
	"testing"
	"time"

	"agingpred/internal/monitor"
	"agingpred/internal/testbed"
)

// syntheticSeries builds a series with a perfectly linear memory leak so the
// derived features have known values.
func syntheticSeries(n int, leakPerCheckpointMB float64) *monitor.Series {
	s := &monitor.Series{
		Name:        "synthetic",
		IntervalSec: 15,
		Workload:    100,
		Crashed:     true,
	}
	crashTime := float64(n) * 15
	s.CrashTimeSec = crashTime
	for i := 1; i <= n; i++ {
		t := float64(i) * 15
		cp := monitor.Checkpoint{
			TimeSec:         t,
			Throughput:      10,
			Workload:        100,
			ResponseTimeSec: 0.05,
			SystemLoad:      2,
			DiskUsedMB:      12000 + float64(i),
			SwapFreeMB:      2048,
			NumProcesses:    117,
			SystemMemUsedMB: 1000 + leakPerCheckpointMB*float64(i),
			TomcatMemUsedMB: 500 + leakPerCheckpointMB*float64(i),
			NumThreads:      250,
			NumHTTPConns:    10,
			NumMySQLConns:   8,
			YoungMaxMB:      128,
			OldMaxMB:        832,
			YoungUsedMB:     40,
			OldUsedMB:       200 + leakPerCheckpointMB*float64(i),
			YoungPct:        31,
			OldPct:          (200 + leakPerCheckpointMB*float64(i)) / 832 * 100,
			TTFSec:          crashTime - t,
		}
		s.Checkpoints = append(s.Checkpoints, cp)
	}
	return s
}

func TestVariableSets(t *testing.T) {
	full := Variables(FullSet)
	noHeap := Variables(NoHeapSet)
	heapFocus := Variables(HeapFocusSet)

	if len(full) != len(allVariables) {
		t.Fatalf("full set has %d variables, want %d", len(full), len(allVariables))
	}
	if len(noHeap) != len(full)-len(heapRelated) {
		t.Fatalf("no-heap set has %d variables, want %d", len(noHeap), len(full)-len(heapRelated))
	}
	if len(heapFocus) != len(full)-len(processMemRelated) {
		t.Fatalf("heap-focus set has %d variables, want %d", len(heapFocus), len(full)-len(processMemRelated))
	}
	// The full Table 2 list has 49 variables plus the target.
	if len(full) != 49 {
		t.Fatalf("full set has %d variables, want 49", len(full))
	}
	for _, v := range noHeap {
		if heapRelated[v] {
			t.Fatalf("no-heap set contains heap variable %q", v)
		}
	}
	for _, v := range heapFocus {
		if processMemRelated[v] {
			t.Fatalf("heap-focus set contains process-memory variable %q", v)
		}
	}
	// Heap-focus keeps the Java-heap evolution variables.
	keep := map[string]bool{}
	for _, v := range heapFocus {
		keep[v] = true
	}
	for _, want := range []string{varYoungUsed, varOldUsed, varSWASpeedOld, varInvSWAOld, varOldOverSWA} {
		if !keep[want] {
			t.Fatalf("heap-focus set is missing %q", want)
		}
	}
	// No duplicates in any set.
	for _, set := range [][]string{full, noHeap, heapFocus} {
		seen := map[string]bool{}
		for _, v := range set {
			if seen[v] {
				t.Fatalf("duplicate variable %q", v)
			}
			seen[v] = true
		}
	}
}

func TestVariableSetString(t *testing.T) {
	if FullSet.String() != "full" || NoHeapSet.String() != "no-heap" || HeapFocusSet.String() != "heap-focus" {
		t.Fatalf("VariableSet names wrong")
	}
	if got := VariableSet(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown set String() = %q", got)
	}
}

func TestExtractErrors(t *testing.T) {
	e := NewExtractor(0)
	if e.WindowLength() != DefaultWindowLength {
		t.Fatalf("default window length = %d", e.WindowLength())
	}
	if _, err := e.Extract(nil, FullSet); err == nil {
		t.Fatalf("Extract(nil) succeeded")
	}
	if _, err := e.Extract(&monitor.Series{Name: "empty"}, FullSet); err == nil {
		t.Fatalf("Extract of empty series succeeded")
	}
	if _, err := e.ExtractAll("x", nil, FullSet); err == nil {
		t.Fatalf("ExtractAll with no series succeeded")
	}
}

func TestExtractLinearLeakFeatures(t *testing.T) {
	const leakPerCP = 2.0 // MB per 15 s checkpoint
	s := syntheticSeries(100, leakPerCP)
	e := NewExtractor(12)
	ds, err := e.Extract(s, FullSet)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if ds.Len() != 100 {
		t.Fatalf("dataset has %d instances, want 100", ds.Len())
	}
	if ds.NumAttrs() != 49 || ds.Target() != Target {
		t.Fatalf("schema wrong: %d attrs, target %q", ds.NumAttrs(), ds.Target())
	}
	// After the window warms up, the SWA speed of the old zone must equal the
	// true leak rate (2 MB / 15 s).
	wantSpeed := leakPerCP / 15
	col := ds.AttrIndex(varSWASpeedOld)
	if col < 0 {
		t.Fatalf("missing %q column", varSWASpeedOld)
	}
	got := ds.Value(50, col)
	if math.Abs(got-wantSpeed) > 1e-9 {
		t.Fatalf("SWA old-zone speed = %v, want %v", got, wantSpeed)
	}
	// Tomcat memory speed is identical in this synthetic series.
	if got := ds.Value(50, ds.AttrIndex(varSWASpeedTomcatMem)); math.Abs(got-wantSpeed) > 1e-9 {
		t.Fatalf("SWA tomcat speed = %v, want %v", got, wantSpeed)
	}
	// Threads are constant: their SWA speed must be zero and the inverse
	// clamped to the safe-division limit.
	if got := ds.Value(50, ds.AttrIndex(varSWASpeedThreads)); got != 0 {
		t.Fatalf("threads SWA speed = %v, want 0", got)
	}
	if got := ds.Value(50, ds.AttrIndex(varInvSWAThreads)); got < 1e5 {
		t.Fatalf("inverse of zero speed = %v, want the clamp limit", got)
	}
	// The throughput-normalised speed is speed/10.
	if got := ds.Value(50, ds.AttrIndex(varSWASpeedOldPerTH)); math.Abs(got-wantSpeed/10) > 1e-9 {
		t.Fatalf("old speed per TH = %v, want %v", got, wantSpeed/10)
	}
	// SWA of a constant response time equals that constant.
	if got := ds.Value(50, ds.AttrIndex(varSWAResponseTime)); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("SWA response time = %v, want 0.05", got)
	}
	// Targets are the TTF labels.
	if got := ds.TargetValue(0); got != s.Checkpoints[0].TTFSec {
		t.Fatalf("target[0] = %v, want %v", got, s.Checkpoints[0].TTFSec)
	}
}

func TestExtractVariableSetsShapes(t *testing.T) {
	s := syntheticSeries(30, 1)
	e := NewExtractor(12)
	for _, set := range []VariableSet{FullSet, NoHeapSet, HeapFocusSet} {
		ds, err := e.Extract(s, set)
		if err != nil {
			t.Fatalf("Extract(%v): %v", set, err)
		}
		if ds.NumAttrs() != len(Variables(set)) {
			t.Fatalf("set %v: %d attrs, want %d", set, ds.NumAttrs(), len(Variables(set)))
		}
		if ds.Len() != 30 {
			t.Fatalf("set %v: %d instances", set, ds.Len())
		}
	}
}

func TestExtractAllConcatenates(t *testing.T) {
	a := syntheticSeries(20, 1)
	a.Name = "a"
	b := syntheticSeries(30, 2)
	b.Name = "b"
	e := NewExtractor(12)
	ds, err := e.ExtractAll("merged", []*monitor.Series{a, b}, FullSet)
	if err != nil {
		t.Fatalf("ExtractAll: %v", err)
	}
	if ds.Len() != 50 {
		t.Fatalf("merged dataset has %d instances, want 50", ds.Len())
	}
	if ds.Relation != "merged" {
		t.Fatalf("relation = %q", ds.Relation)
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	s := syntheticSeries(60, 1.5)
	e := NewExtractor(12)
	batch, err := e.Extract(s, FullSet)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	stream := FullSet.Schema().Stream()
	attrs := stream.Schema().Attrs()
	if len(attrs) != batch.NumAttrs() {
		t.Fatalf("stream attrs = %d, batch = %d", len(attrs), batch.NumAttrs())
	}
	for i, cp := range s.Checkpoints {
		row := stream.Step(cp)
		want := batch.Row(i)
		for j := range row {
			if math.Abs(row[j]-want[j]) > 1e-9 {
				t.Fatalf("checkpoint %d attr %q: stream %v, batch %v", i, attrs[j], row[j], want[j])
			}
		}
	}
}

func TestStreamReset(t *testing.T) {
	s := syntheticSeries(30, 1)
	stream := FullSet.Schema().WithWindow(6).Stream()
	for _, cp := range s.Checkpoints {
		stream.Step(cp)
	}
	stream.Reset()
	// After a reset the speed history is gone: the first pushed checkpoint
	// yields zero SWA speeds again.
	row := stream.Step(s.Checkpoints[0])
	idx := -1
	for i, a := range stream.Schema().Attrs() {
		if a == varSWASpeedOld {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("missing %q", varSWASpeedOld)
	}
	if row[idx] != 0 {
		t.Fatalf("SWA speed after reset = %v, want 0", row[idx])
	}
}

func TestExtractFromRealTestbedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed run takes a second")
	}
	res, err := testbed.Run(testbed.RunConfig{
		Name:        "features-int",
		Seed:        10,
		EBs:         100,
		Phases:      testbed.ConstantLeakPhases(15),
		MaxDuration: 3 * time.Hour,
	})
	if err != nil {
		t.Fatalf("testbed.Run: %v", err)
	}
	if !res.Crashed {
		t.Fatalf("aging run did not crash")
	}
	e := NewExtractor(DefaultWindowLength)
	ds, err := e.Extract(res.Series, FullSet)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if ds.Len() != res.Series.Len() {
		t.Fatalf("dataset size %d != series size %d", ds.Len(), res.Series.Len())
	}
	// The Tomcat-memory SWA speed should be positive once the window warms up
	// (the leak dominates).
	col := ds.AttrIndex(varSWASpeedTomcatMem)
	positives := 0
	for i := 20; i < ds.Len(); i++ {
		if ds.Value(i, col) > 0 {
			positives++
		}
	}
	if positives < (ds.Len()-20)/2 {
		t.Fatalf("tomcat memory SWA speed positive at only %d/%d checkpoints of a leaking run", positives, ds.Len()-20)
	}
	// Targets decrease towards zero.
	if ds.TargetValue(0) <= ds.TargetValue(ds.Len()-1) {
		t.Fatalf("TTF labels do not decrease: first %v, last %v", ds.TargetValue(0), ds.TargetValue(ds.Len()-1))
	}
	if ds.TargetValue(ds.Len()-1) > 30 {
		t.Fatalf("last checkpoint TTF = %v, want close to crash", ds.TargetValue(ds.Len()-1))
	}
}
