package features

import (
	"math"
	"strings"
	"testing"

	"agingpred/internal/monitor"
)

func TestSchemaRegistry(t *testing.T) {
	names := SchemaNames()
	for _, want := range []string{FullSchemaName, NoHeapSchemaName, HeapFocusSchemaName, FullConnSchemaName} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in schema %q not registered (have %v)", want, names)
		}
	}
	if _, err := LookupSchema("bogus"); err == nil {
		t.Fatalf("LookupSchema(bogus) succeeded")
	} else if !strings.Contains(err.Error(), FullConnSchemaName) {
		t.Fatalf("unknown-schema error does not list the valid names: %v", err)
	}
	if err := RegisterSchema(fullSchema); err == nil {
		t.Fatalf("duplicate registration succeeded")
	}
	if err := RegisterSchema(nil); err == nil {
		t.Fatalf("nil registration succeeded")
	}
}

func TestFullConnSchemaShape(t *testing.T) {
	full := fullSchema.Attrs()
	conn := fullConnSchema.Attrs()
	if len(conn) != len(full)+6 {
		t.Fatalf("full+conn has %d attrs, want %d (full) + 6", len(conn), len(full))
	}
	// The Table 2 prefix is unchanged, so models and datasets built on the
	// full schema keep their column indices.
	for i := range full {
		if conn[i] != full[i] {
			t.Fatalf("full+conn attr %d = %q, full = %q", i, conn[i], full[i])
		}
	}
	wantTail := []string{
		"swa_speed_conns", "swa_speed_conns_per_th", "inv_swa_speed_conns",
		"conns_over_swa", "inv_swa_per_th_conns", "r_over_swa_per_th_conns",
	}
	for i, want := range wantTail {
		if got := conn[len(full)+i]; got != want {
			t.Fatalf("full+conn tail attr %d = %q, want %q", i, got, want)
		}
	}
}

func TestFullConnSchemaSeesConnSlope(t *testing.T) {
	// A series with a perfectly linear connection leak: the SWA connection
	// speed column must settle on the true rate.
	s := &monitor.Series{Name: "conns", IntervalSec: 15}
	const perCP = 0.5 // connections per 15 s checkpoint
	for i := 1; i <= 60; i++ {
		s.Checkpoints = append(s.Checkpoints, monitor.Checkpoint{
			TimeSec:       float64(i) * 15,
			Throughput:    10,
			NumMySQLConns: 5 + perCP*float64(i),
			TTFSec:        1000,
		})
	}
	ds, err := fullConnSchema.Extract(s)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	col := ds.AttrIndex("swa_speed_conns")
	if col < 0 {
		t.Fatalf("missing swa_speed_conns column")
	}
	want := perCP / 15
	if got := ds.Value(40, col); math.Abs(got-want) > 1e-12 {
		t.Fatalf("swa_speed_conns = %v, want %v", got, want)
	}
	if got := ds.Value(40, ds.AttrIndex("inv_swa_speed_conns")); math.Abs(got-1/want) > 1e-6 {
		t.Fatalf("inv_swa_speed_conns = %v, want %v", got, 1/want)
	}
}

func TestWithoutResourcesErrors(t *testing.T) {
	if _, err := fullSchema.WithoutResources("x", "no-such-resource"); err == nil {
		t.Fatalf("WithoutResources with unknown key succeeded")
	}
}

func TestWithWindow(t *testing.T) {
	if got := fullSchema.WithWindow(fullSchema.WindowLength()); got != fullSchema {
		t.Fatalf("WithWindow(default) should return the same schema")
	}
	w40 := fullSchema.WithWindow(40)
	if w40.WindowLength() != 40 {
		t.Fatalf("WithWindow(40) window = %d", w40.WindowLength())
	}
	if w40.NumAttrs() != fullSchema.NumAttrs() {
		t.Fatalf("WithWindow changed the column count")
	}
	// A longer window reacts more slowly to a speed change; just verify the
	// two extractions differ (the window length is actually plumbed).
	s := noisySeries(100)
	a, err := fullSchema.Extract(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w40.Extract(s)
	if err != nil {
		t.Fatal(err)
	}
	col := a.AttrIndex("swa_speed_sys_mem")
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Value(i, col) != b.Value(i, col) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("window length has no effect on the SWA speeds")
	}
}

func TestSchemaBuilderErrors(t *testing.T) {
	if _, err := NewSchemaBuilder("empty", 0).Build(); err == nil {
		t.Fatalf("empty schema built")
	}
	if _, err := NewSchemaBuilder("dup", 0).
		Raw("a", "", cpThroughput).Raw("a", "", cpWorkload).Build(); err == nil {
		t.Fatalf("duplicate column accepted")
	}
	if _, err := NewSchemaBuilder("unknown-res", 0).
		Raw("a", "", cpThroughput).Speeds("ghost").Build(); err == nil {
		t.Fatalf("derived column over unknown resource accepted")
	}
	if _, err := NewSchemaBuilder("dup-res", 0).
		Resource(ResourceDescriptor{Key: "r", Level: cpThroughput}).
		Resource(ResourceDescriptor{Key: "r", Level: cpThroughput}).
		Raw("a", "", cpThroughput).Build(); err == nil {
		t.Fatalf("duplicate resource accepted")
	}
	if _, err := NewSchemaBuilder("nil-level", 0).
		Resource(ResourceDescriptor{Key: "r"}).Build(); err == nil {
		t.Fatalf("resource without accessor accepted")
	}
	if _, err := NewSchemaBuilder("target-clash", 0).
		Raw(Target, "", cpThroughput).Build(); err == nil {
		t.Fatalf("column named like the target accepted")
	}
	if _, err := NewSchemaBuilder("typo-owner", 0).
		RawFor("sysmem", "sys_mem_used_mb", "MB", cpSysMem).Build(); err == nil {
		t.Fatalf("raw column with unknown owner accepted")
	}
	if _, err := NewSchemaBuilder("typo-owner-smooth", 0).
		Raw("a", "", cpThroughput).
		SmoothedLevelFor("sysmem", "swa_sys_mem_used", cpSysMem).Build(); err == nil {
		t.Fatalf("smoothed column with unknown owner accepted")
	}
}

// TestRowExtractorZeroAlloc pins the hot-path guarantee the fleet relies on:
// once warm, Step performs no allocations per checkpoint.
func TestRowExtractorZeroAlloc(t *testing.T) {
	s := noisySeries(64)
	x := fullConnSchema.Stream()
	for _, cp := range s.Checkpoints {
		x.Step(cp) // warm up: fill the windows
	}
	cp := s.Checkpoints[len(s.Checkpoints)-1]
	allocs := testing.AllocsPerRun(100, func() {
		cp.TimeSec += 15
		x.Step(cp)
	})
	if allocs != 0 {
		t.Fatalf("RowExtractor.Step allocates %.1f objects per checkpoint, want 0", allocs)
	}
}

// BenchmarkSchemaRow measures the per-checkpoint cost of the compiled
// feature pipeline alone (no model), reporting ns/op and allocs/op.
func BenchmarkSchemaRow(b *testing.B) {
	for _, tc := range []struct {
		name   string
		schema *Schema
	}{
		{"full", fullSchema},
		{"full+conn", fullConnSchema},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := noisySeries(256)
			x := tc.schema.Stream()
			for _, cp := range s.Checkpoints {
				x.Step(cp)
			}
			cp := s.Checkpoints[len(s.Checkpoints)-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp.TimeSec += 15
				x.Step(cp)
			}
		})
	}
}
