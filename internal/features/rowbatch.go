package features

import "fmt"

// RowBatch is a reusable struct-of-arrays feature buffer: the rows of one
// shard tick, laid out back to back in a single flat backing array so a
// whole batch of feature vectors is contiguous in memory for the tree
// evaluators. A RowBatch is reused tick after tick (Reset keeps the
// backing), so steady-state batch serving allocates nothing.
//
// Usage per tick: Reset, then one Next per stream — the extractor writes the
// stream's features straight into the returned slot (RowExtractor.StepInto)
// — then Rows to view the staged batch. A RowBatch serves one goroutine and
// is not safe for concurrent use.
type RowBatch struct {
	width int
	buf   []float64
	rows  [][]float64
}

// NewRowBatch returns an empty batch of rows of the given width (the
// schema's NumAttrs), with capacity pre-allocated for capHint rows.
func NewRowBatch(width, capHint int) *RowBatch {
	if width <= 0 {
		panic(fmt.Sprintf("features: non-positive row width %d", width))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &RowBatch{
		width: width,
		buf:   make([]float64, 0, width*capHint),
		rows:  make([][]float64, 0, capHint),
	}
}

// Width returns the row width.
func (b *RowBatch) Width() int { return b.width }

// Len returns the number of staged rows.
func (b *RowBatch) Len() int { return len(b.buf) / b.width }

// Reset empties the batch, keeping the backing storage.
func (b *RowBatch) Reset() {
	b.buf = b.buf[:0]
	b.rows = b.rows[:0]
}

// Next appends one zeroed row and returns it for the caller to fill. The row
// views are maintained incrementally (growing the backing array re-points
// them), so Rows is a plain accessor instead of an O(rows) rebuild every
// tick; use Rows to read the batch back after staging is complete.
func (b *RowBatch) Next() []float64 {
	n := len(b.buf)
	if cap(b.buf)-n < b.width {
		grown := make([]float64, n, 2*n+b.width)
		copy(grown, b.buf)
		b.buf = grown
		// The backing array moved: re-point the staged row views at it.
		for i := range b.rows {
			off := i * b.width
			b.rows[i] = grown[off : off+b.width : off+b.width]
		}
	}
	b.buf = b.buf[: n+b.width : cap(b.buf)]
	row := b.buf[n : n+b.width : n+b.width]
	for i := range row {
		row[i] = 0
	}
	b.rows = append(b.rows, row)
	return row
}

// Rows returns one view per staged row into the contiguous backing array.
// The returned slice and its views are valid until the next call to Next or
// Reset and share the batch's storage.
func (b *RowBatch) Rows() [][]float64 {
	return b.rows
}
