// Package features turns monitored checkpoint series into the training and
// test datasets of the paper: the variable set of Table 2, including all the
// derived metrics built on sliding-window-averaged consumption speeds.
//
// Table 2 lists three groups of variables:
//
//   - raw metrics sampled directly from the system (throughput, workload,
//     response time, load, disk, swap, processes, system memory, Tomcat
//     memory, threads, connection counts, and the per-zone heap figures);
//   - derived metrics built from the consumption speed of every monitored
//     resource, smoothed with a sliding-window average (SWA): the SWA speed
//     itself, its inverse, the speed normalised by throughput, the resource
//     level divided by its SWA speed, and the combinations of those; and
//   - SWA-smoothed levels of a few resources (response time, throughput,
//     system memory, Tomcat memory).
//
// The target variable is the time to failure.
//
// # The schema registry
//
// The variable lists are not hardcoded: they are generated from a Schema — a
// compiled, named feature layout assembled from ResourceDescriptors (see
// schema.go). Each descriptor names a monitored resource (key, unit,
// direction, SWA window, level accessor) and the schema derives the paper's
// metric families from it generically. The built-in schemas are:
//
//   - "full"       — the complete Table 2 list (experiments 4.2–4.4);
//   - "no-heap"    — without the per-zone heap variables (experiment 4.1);
//   - "heap-focus" — experiment 4.3's expert feature selection, with the
//     Tomcat-process and system-memory variables removed;
//   - "full+conn"  — "full" plus the database-connection speed derivatives
//     the paper's list lacks (the conn-leak feature gap).
//
// New workloads register their own schemas (RegisterSchema) with their own
// resources; nothing in the learning stack is tied to the Table 2 list. The
// legacy VariableSet constants below are re-expressed on top of the first
// three schemas and kept byte-identical to the original lists.
//
// Adding a monitored resource is one descriptor plus the derived families it
// should appear in:
//
//	b := features.NewSchemaBuilder("full+fd", features.DefaultWindowLength)
//	// ... the existing resources and columns ...
//	b.Resource(features.ResourceDescriptor{
//	    Key: "fds", Unit: "descriptors", Direction: features.Growing,
//	    Level: func(cp *monitor.Checkpoint) float64 { return cp.NumHTTPConns },
//	})
//	b.Raw("num_fds", "descriptors", func(cp *monitor.Checkpoint) float64 { return cp.NumHTTPConns })
//	b.SpeedDerivatives("fds") // swa_speed_fds, inv_swa_speed_fds, ...
//	schema := b.MustBuild()
//	features.RegisterSchema(schema)
//
// Different experiments use different subsets (the per-experiment columns of
// Table 2): experiment 4.1 omits the heap-zone information, experiment 4.3's
// "feature selection" variant removes every variable related to Tomcat and
// system memory so the model concentrates on the Java-heap evolution.
package features

import (
	"errors"
	"fmt"

	"agingpred/internal/dataset"
	"agingpred/internal/monitor"
)

// DefaultWindowLength is the sliding-window length (in checkpoints) used to
// smooth consumption speeds. Twelve 15-second marks — the paper quantifies
// the resulting detection delay as "12 marks * 15 seconds per mark, 180
// seconds" in Section 4.2.
const DefaultWindowLength = 12

// Target is the name of the target attribute in every generated dataset.
const Target = "time_to_failure"

// VariableSet selects which Table 2 columns a dataset is built with. It is
// the legacy spelling of the three paper schemas; Schema() returns the
// schema a set stands for, and code that wants the full registry (including
// "full+conn" and caller-registered schemas) should use LookupSchema
// directly.
type VariableSet int

const (
	// FullSet is the complete Table 2 variable list (experiments 4.2, 4.3
	// "complete" and 4.4).
	FullSet VariableSet = iota
	// NoHeapSet omits the per-zone heap variables; experiment 4.1 ("we did
	// not add the heap information").
	NoHeapSet
	// HeapFocusSet is experiment 4.3's expert feature selection: the
	// variables related to Tomcat-process and system memory are removed so
	// the model concentrates on the Java-heap evolution.
	HeapFocusSet
)

// String names the variable set; the names coincide with the schema names.
func (v VariableSet) String() string {
	switch v {
	case FullSet:
		return FullSchemaName
	case NoHeapSet:
		return NoHeapSchemaName
	case HeapFocusSet:
		return HeapFocusSchemaName
	default:
		return fmt.Sprintf("VariableSet(%d)", int(v))
	}
}

// Schema returns the schema the variable set is an alias for. Unknown values
// map to the full schema, mirroring the historical behaviour of the filter
// (no exclusions applied).
func (v VariableSet) Schema() *Schema {
	switch v {
	case NoHeapSet:
		return noHeapSchema
	case HeapFocusSet:
		return heapFocusSchema
	default:
		return fullSchema
	}
}

// Variables returns the attribute names (excluding the target) of the given
// variable set, in dataset column order.
func Variables(set VariableSet) []string { return set.Schema().Attrs() }

// Extractor converts checkpoint series into datasets. The zero value is not
// usable; use NewExtractor. It is the batch face of the schema pipeline,
// kept for callers that think in VariableSets; schema-first callers use
// Schema.Extract directly.
type Extractor struct {
	windowLen int
}

// NewExtractor returns an extractor with the given SWA window length
// (<= 0 means DefaultWindowLength).
func NewExtractor(windowLen int) *Extractor {
	if windowLen <= 0 {
		windowLen = DefaultWindowLength
	}
	return &Extractor{windowLen: windowLen}
}

// WindowLength returns the configured window length.
func (e *Extractor) WindowLength() int { return e.windowLen }

// schemaFor resolves a variable set at the extractor's window length.
func (e *Extractor) schemaFor(set VariableSet) *Schema {
	return set.Schema().WithWindow(e.windowLen)
}

// Extract builds a dataset from a single monitored series using the given
// variable set. One instance is produced per checkpoint; the derived
// variables at checkpoint i use only information available up to i (so the
// resulting model can be applied on-line).
func (e *Extractor) Extract(s *monitor.Series, set VariableSet) (*dataset.Dataset, error) {
	if s == nil {
		return nil, errors.New("features: nil series")
	}
	return e.schemaFor(set).Extract(s)
}

// ExtractAll builds one dataset from several series (e.g. the 4-execution
// training sets the paper uses), concatenating their instances. All series
// must be non-empty.
func (e *Extractor) ExtractAll(relation string, series []*monitor.Series, set VariableSet) (*dataset.Dataset, error) {
	if len(series) == 0 {
		return nil, errors.New("features: no series")
	}
	return e.schemaFor(set).ExtractAll(relation, series)
}
