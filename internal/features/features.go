// Package features turns monitored checkpoint series into the training and
// test datasets of the paper: the variable set of Table 2, including all the
// derived metrics built on sliding-window-averaged consumption speeds.
//
// Table 2 lists three groups of variables:
//
//   - raw metrics sampled directly from the system (throughput, workload,
//     response time, load, disk, swap, processes, system memory, Tomcat
//     memory, threads, connection counts, and the per-zone heap figures);
//   - derived metrics built from the consumption speed of every monitored
//     resource, smoothed with a sliding-window average (SWA): the SWA speed
//     itself, its inverse, the speed normalised by throughput, the resource
//     level divided by its SWA speed, and the combinations of those; and
//   - SWA-smoothed levels of a few resources (response time, throughput,
//     system memory, Tomcat memory).
//
// The target variable is the time to failure.
//
// Different experiments use different subsets (the per-experiment columns of
// Table 2): experiment 4.1 omits the heap-zone information, experiment 4.3's
// "feature selection" variant removes every variable related to Tomcat and
// system memory so the model concentrates on the Java-heap evolution.
package features

import (
	"errors"
	"fmt"

	"agingpred/internal/dataset"
	"agingpred/internal/monitor"
	"agingpred/internal/sliding"
)

// DefaultWindowLength is the sliding-window length (in checkpoints) used to
// smooth consumption speeds. Twelve 15-second marks — the paper quantifies
// the resulting detection delay as "12 marks * 15 seconds per mark, 180
// seconds" in Section 4.2.
const DefaultWindowLength = 12

// Target is the name of the target attribute in every generated dataset.
const Target = "time_to_failure"

// VariableSet selects which Table 2 columns a dataset is built with.
type VariableSet int

const (
	// FullSet is the complete Table 2 variable list (experiments 4.2, 4.3
	// "complete" and 4.4).
	FullSet VariableSet = iota
	// NoHeapSet omits the per-zone heap variables; experiment 4.1 ("we did
	// not add the heap information").
	NoHeapSet
	// HeapFocusSet is experiment 4.3's expert feature selection: the
	// variables related to Tomcat-process and system memory are removed so
	// the model concentrates on the Java-heap evolution.
	HeapFocusSet
)

// String names the variable set.
func (v VariableSet) String() string {
	switch v {
	case FullSet:
		return "full"
	case NoHeapSet:
		return "no-heap"
	case HeapFocusSet:
		return "heap-focus"
	default:
		return fmt.Sprintf("VariableSet(%d)", int(v))
	}
}

// Raw metric names.
const (
	varThroughput   = "throughput"
	varWorkload     = "workload"
	varResponseTime = "response_time"
	varSystemLoad   = "system_load"
	varDiskUsed     = "disk_used_mb"
	varSwapFree     = "swap_free_mb"
	varNumProcesses = "num_processes"
	varSysMem       = "sys_mem_used_mb"
	varTomcatMem    = "tomcat_mem_used_mb"
	varNumThreads   = "num_threads"
	varHTTPConns    = "num_http_conns"
	varMySQLConns   = "num_mysql_conns"
	varYoungMax     = "young_max_mb"
	varOldMax       = "old_max_mb"
	varYoungUsed    = "young_used_mb"
	varOldUsed      = "old_used_mb"
	varYoungPct     = "young_used_pct"
	varOldPct       = "old_used_pct"
)

// Derived metric names. The suffix identifies the source resource.
const (
	varSWASpeedYoung     = "swa_speed_young"
	varSWASpeedOld       = "swa_speed_old"
	varSWASpeedThreads   = "swa_speed_threads"
	varSWASpeedTomcatMem = "swa_speed_tomcat_mem"
	varSWASpeedSysMem    = "swa_speed_sys_mem"

	varSWASpeedTomcatMemPerTH = "swa_speed_tomcat_mem_per_th"
	varSWASpeedSysMemPerTH    = "swa_speed_sys_mem_per_th"
	varSWASpeedYoungPerTH     = "swa_speed_young_per_th"
	varSWASpeedOldPerTH       = "swa_speed_old_per_th"

	varInvSWAThreads   = "inv_swa_speed_threads"
	varInvSWATomcatMem = "inv_swa_speed_tomcat_mem"
	varInvSWASysMem    = "inv_swa_speed_sys_mem"
	varInvSWAYoung     = "inv_swa_speed_young"
	varInvSWAOld       = "inv_swa_speed_old"

	varYoungOverSWA     = "young_used_over_swa"
	varOldOverSWA       = "old_used_over_swa"
	varThreadsOverSWA   = "threads_over_swa"
	varTomcatMemOverSWA = "tomcat_mem_over_swa"
	varSysMemOverSWA    = "sys_mem_over_swa"

	varInvSWAPerTHTomcatMem = "inv_swa_per_th_tomcat_mem"
	varInvSWAPerTHSysMem    = "inv_swa_per_th_sys_mem"
	varInvSWAPerTHYoung     = "inv_swa_per_th_young"
	varInvSWAPerTHOld       = "inv_swa_per_th_old"

	varROverSWAPerTHTomcatMem = "r_over_swa_per_th_tomcat_mem"
	varROverSWAPerTHSysMem    = "r_over_swa_per_th_sys_mem"
	varROverSWAPerTHYoung     = "r_over_swa_per_th_young"
	varROverSWAPerTHOld       = "r_over_swa_per_th_old"

	varSWAResponseTime = "swa_response_time"
	varSWAThroughput   = "swa_throughput"
	varSWASysMem       = "swa_sys_mem_used"
	varSWATomcatMem    = "swa_tomcat_mem_used"
)

// heapRelated are the variables excluded by NoHeapSet.
var heapRelated = map[string]bool{
	varYoungMax: true, varOldMax: true,
	varYoungUsed: true, varOldUsed: true,
	varYoungPct: true, varOldPct: true,
	varSWASpeedYoung: true, varSWASpeedOld: true,
	varSWASpeedYoungPerTH: true, varSWASpeedOldPerTH: true,
	varInvSWAYoung: true, varInvSWAOld: true,
	varYoungOverSWA: true, varOldOverSWA: true,
	varInvSWAPerTHYoung: true, varInvSWAPerTHOld: true,
	varROverSWAPerTHYoung: true, varROverSWAPerTHOld: true,
}

// processMemRelated are the variables removed by HeapFocusSet (everything
// derived from Tomcat process memory and system memory — Table 2 footnote:
// "Removed only Tomcat Memory Used and System Memory Used variables
// related").
var processMemRelated = map[string]bool{
	varSysMem: true, varTomcatMem: true,
	varSWASpeedTomcatMem: true, varSWASpeedSysMem: true,
	varSWASpeedTomcatMemPerTH: true, varSWASpeedSysMemPerTH: true,
	varInvSWATomcatMem: true, varInvSWASysMem: true,
	varTomcatMemOverSWA: true, varSysMemOverSWA: true,
	varInvSWAPerTHTomcatMem: true, varInvSWAPerTHSysMem: true,
	varROverSWAPerTHTomcatMem: true, varROverSWAPerTHSysMem: true,
	varSWASysMem: true, varSWATomcatMem: true,
}

// allVariables is the complete Table 2 list in a fixed, documented order.
var allVariables = []string{
	// Raw metrics.
	varThroughput, varWorkload, varResponseTime, varSystemLoad,
	varDiskUsed, varSwapFree, varNumProcesses,
	varSysMem, varTomcatMem, varNumThreads, varHTTPConns, varMySQLConns,
	varYoungMax, varOldMax, varYoungUsed, varOldUsed, varYoungPct, varOldPct,
	// SWA consumption speeds.
	varSWASpeedYoung, varSWASpeedOld,
	varSWASpeedThreads, varSWASpeedTomcatMem, varSWASpeedSysMem,
	// Speeds normalised by throughput.
	varSWASpeedTomcatMemPerTH, varSWASpeedSysMemPerTH,
	varSWASpeedYoungPerTH, varSWASpeedOldPerTH,
	// Inverse speeds.
	varInvSWAThreads, varInvSWATomcatMem, varInvSWASysMem,
	varInvSWAYoung, varInvSWAOld,
	// Resource level over SWA speed.
	varYoungOverSWA, varOldOverSWA,
	varThreadsOverSWA, varTomcatMemOverSWA, varSysMemOverSWA,
	// Inverse speed per throughput.
	varInvSWAPerTHTomcatMem, varInvSWAPerTHSysMem,
	varInvSWAPerTHYoung, varInvSWAPerTHOld,
	// Level over speed, per throughput.
	varROverSWAPerTHTomcatMem, varROverSWAPerTHSysMem,
	varROverSWAPerTHYoung, varROverSWAPerTHOld,
	// SWA-smoothed levels.
	varSWAResponseTime, varSWAThroughput, varSWASysMem, varSWATomcatMem,
}

// Variables returns the attribute names (excluding the target) of the given
// variable set, in dataset column order.
func Variables(set VariableSet) []string {
	out := make([]string, 0, len(allVariables))
	for _, v := range allVariables {
		switch set {
		case NoHeapSet:
			if heapRelated[v] {
				continue
			}
		case HeapFocusSet:
			if processMemRelated[v] {
				continue
			}
		}
		out = append(out, v)
	}
	return out
}

// Extractor converts checkpoint series into datasets. The zero value is not
// usable; use NewExtractor.
type Extractor struct {
	windowLen int
}

// NewExtractor returns an extractor with the given SWA window length
// (<= 0 means DefaultWindowLength).
func NewExtractor(windowLen int) *Extractor {
	if windowLen <= 0 {
		windowLen = DefaultWindowLength
	}
	return &Extractor{windowLen: windowLen}
}

// WindowLength returns the configured window length.
func (e *Extractor) WindowLength() int { return e.windowLen }

// Extract builds a dataset from a single monitored series using the given
// variable set. One instance is produced per checkpoint; the derived
// variables at checkpoint i use only information available up to i (so the
// resulting model can be applied on-line).
func (e *Extractor) Extract(s *monitor.Series, set VariableSet) (*dataset.Dataset, error) {
	if s == nil {
		return nil, errors.New("features: nil series")
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("features: series %q has no checkpoints", s.Name)
	}
	ds, err := dataset.New(s.Name, Variables(set), Target)
	if err != nil {
		return nil, fmt.Errorf("features: building dataset schema: %w", err)
	}
	st := newState(e.windowLen)
	for _, cp := range s.Checkpoints {
		row := st.step(cp)
		filtered := filterRow(row, set)
		if err := ds.Append(filtered, cp.TTFSec); err != nil {
			return nil, fmt.Errorf("features: appending checkpoint at t=%v: %w", cp.TimeSec, err)
		}
	}
	return ds, nil
}

// ExtractAll builds one dataset from several series (e.g. the 4-execution
// training sets the paper uses), concatenating their instances. All series
// must be non-empty.
func (e *Extractor) ExtractAll(relation string, series []*monitor.Series, set VariableSet) (*dataset.Dataset, error) {
	if len(series) == 0 {
		return nil, errors.New("features: no series")
	}
	out, err := dataset.New(relation, Variables(set), Target)
	if err != nil {
		return nil, fmt.Errorf("features: building dataset schema: %w", err)
	}
	for _, s := range series {
		ds, err := e.Extract(s, set)
		if err != nil {
			return nil, err
		}
		if err := out.AppendAll(ds); err != nil {
			return nil, fmt.Errorf("features: merging series %q: %w", s.Name, err)
		}
	}
	return out, nil
}

// OnlineExtractor computes the same feature vector incrementally, one
// checkpoint at a time, for on-line prediction (internal/core feeds live
// checkpoints through it).
type OnlineExtractor struct {
	set   VariableSet
	state *extractState
	attrs []string
}

// NewOnlineExtractor creates an on-line extractor with the given window
// length and variable set.
func NewOnlineExtractor(windowLen int, set VariableSet) *OnlineExtractor {
	if windowLen <= 0 {
		windowLen = DefaultWindowLength
	}
	return &OnlineExtractor{
		set:   set,
		state: newState(windowLen),
		attrs: Variables(set),
	}
}

// Attrs returns the attribute names of the produced feature vectors.
func (o *OnlineExtractor) Attrs() []string { return append([]string(nil), o.attrs...) }

// Push consumes one checkpoint and returns the corresponding feature vector,
// aligned with Attrs().
func (o *OnlineExtractor) Push(cp monitor.Checkpoint) []float64 {
	return filterRow(o.state.step(cp), o.set)
}

// Reset clears all sliding-window state (e.g. after a rejuvenation action).
func (o *OnlineExtractor) Reset() { o.state = newState(o.state.windowLen) }

// extractState holds the speed trackers and level windows shared by the
// batch and on-line extractors.
type extractState struct {
	windowLen int

	speedYoung     *sliding.SpeedTracker
	speedOld       *sliding.SpeedTracker
	speedThreads   *sliding.SpeedTracker
	speedTomcatMem *sliding.SpeedTracker
	speedSysMem    *sliding.SpeedTracker

	levelResponse   *sliding.Window
	levelThroughput *sliding.Window
	levelSysMem     *sliding.Window
	levelTomcatMem  *sliding.Window
}

func newState(windowLen int) *extractState {
	return &extractState{
		windowLen:       windowLen,
		speedYoung:      sliding.NewSpeedTracker(windowLen),
		speedOld:        sliding.NewSpeedTracker(windowLen),
		speedThreads:    sliding.NewSpeedTracker(windowLen),
		speedTomcatMem:  sliding.NewSpeedTracker(windowLen),
		speedSysMem:     sliding.NewSpeedTracker(windowLen),
		levelResponse:   sliding.NewWindow(windowLen),
		levelThroughput: sliding.NewWindow(windowLen),
		levelSysMem:     sliding.NewWindow(windowLen),
		levelTomcatMem:  sliding.NewWindow(windowLen),
	}
}

// step consumes one checkpoint and returns the full (unfiltered) feature row
// keyed by allVariables order.
func (st *extractState) step(cp monitor.Checkpoint) map[string]float64 {
	// Observe resource levels. Errors can only come from non-finite values
	// or time going backwards; checkpoints are produced by the monitor in
	// time order with finite values, and a defensive drop of one speed sample
	// is preferable to aborting an on-line prediction loop.
	_ = st.speedYoung.Observe(cp.TimeSec, cp.YoungUsedMB)
	_ = st.speedOld.Observe(cp.TimeSec, cp.OldUsedMB)
	_ = st.speedThreads.Observe(cp.TimeSec, cp.NumThreads)
	_ = st.speedTomcatMem.Observe(cp.TimeSec, cp.TomcatMemUsedMB)
	_ = st.speedSysMem.Observe(cp.TimeSec, cp.SystemMemUsedMB)

	st.levelResponse.Push(cp.ResponseTimeSec)
	st.levelThroughput.Push(cp.Throughput)
	st.levelSysMem.Push(cp.SystemMemUsedMB)
	st.levelTomcatMem.Push(cp.TomcatMemUsedMB)

	th := cp.Throughput
	swaYoung := st.speedYoung.SWA()
	swaOld := st.speedOld.SWA()
	swaThreads := st.speedThreads.SWA()
	swaTomcat := st.speedTomcatMem.SWA()
	swaSys := st.speedSysMem.SWA()

	row := map[string]float64{
		varThroughput:   cp.Throughput,
		varWorkload:     cp.Workload,
		varResponseTime: cp.ResponseTimeSec,
		varSystemLoad:   cp.SystemLoad,
		varDiskUsed:     cp.DiskUsedMB,
		varSwapFree:     cp.SwapFreeMB,
		varNumProcesses: cp.NumProcesses,
		varSysMem:       cp.SystemMemUsedMB,
		varTomcatMem:    cp.TomcatMemUsedMB,
		varNumThreads:   cp.NumThreads,
		varHTTPConns:    cp.NumHTTPConns,
		varMySQLConns:   cp.NumMySQLConns,
		varYoungMax:     cp.YoungMaxMB,
		varOldMax:       cp.OldMaxMB,
		varYoungUsed:    cp.YoungUsedMB,
		varOldUsed:      cp.OldUsedMB,
		varYoungPct:     cp.YoungPct,
		varOldPct:       cp.OldPct,

		varSWASpeedYoung:     swaYoung,
		varSWASpeedOld:       swaOld,
		varSWASpeedThreads:   swaThreads,
		varSWASpeedTomcatMem: swaTomcat,
		varSWASpeedSysMem:    swaSys,

		varSWASpeedTomcatMemPerTH: sliding.SafeDiv(swaTomcat, th),
		varSWASpeedSysMemPerTH:    sliding.SafeDiv(swaSys, th),
		varSWASpeedYoungPerTH:     sliding.SafeDiv(swaYoung, th),
		varSWASpeedOldPerTH:       sliding.SafeDiv(swaOld, th),

		varInvSWAThreads:   sliding.Inverse(swaThreads),
		varInvSWATomcatMem: sliding.Inverse(swaTomcat),
		varInvSWASysMem:    sliding.Inverse(swaSys),
		varInvSWAYoung:     sliding.Inverse(swaYoung),
		varInvSWAOld:       sliding.Inverse(swaOld),

		varYoungOverSWA:     sliding.SafeDiv(cp.YoungUsedMB, swaYoung),
		varOldOverSWA:       sliding.SafeDiv(cp.OldUsedMB, swaOld),
		varThreadsOverSWA:   sliding.SafeDiv(cp.NumThreads, swaThreads),
		varTomcatMemOverSWA: sliding.SafeDiv(cp.TomcatMemUsedMB, swaTomcat),
		varSysMemOverSWA:    sliding.SafeDiv(cp.SystemMemUsedMB, swaSys),

		varInvSWAPerTHTomcatMem: sliding.SafeDiv(sliding.Inverse(swaTomcat), th),
		varInvSWAPerTHSysMem:    sliding.SafeDiv(sliding.Inverse(swaSys), th),
		varInvSWAPerTHYoung:     sliding.SafeDiv(sliding.Inverse(swaYoung), th),
		varInvSWAPerTHOld:       sliding.SafeDiv(sliding.Inverse(swaOld), th),

		varROverSWAPerTHTomcatMem: sliding.SafeDiv(sliding.SafeDiv(cp.TomcatMemUsedMB, swaTomcat), th),
		varROverSWAPerTHSysMem:    sliding.SafeDiv(sliding.SafeDiv(cp.SystemMemUsedMB, swaSys), th),
		varROverSWAPerTHYoung:     sliding.SafeDiv(sliding.SafeDiv(cp.YoungUsedMB, swaYoung), th),
		varROverSWAPerTHOld:       sliding.SafeDiv(sliding.SafeDiv(cp.OldUsedMB, swaOld), th),

		varSWAResponseTime: st.levelResponse.Mean(),
		varSWAThroughput:   st.levelThroughput.Mean(),
		varSWASysMem:       st.levelSysMem.Mean(),
		varSWATomcatMem:    st.levelTomcatMem.Mean(),
	}
	return row
}

// filterRow projects the full feature map onto the columns of the given set,
// in Variables(set) order.
func filterRow(row map[string]float64, set VariableSet) []float64 {
	names := Variables(set)
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = row[n]
	}
	return out
}
