package features

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"agingpred/internal/dataset"
	"agingpred/internal/monitor"
	"agingpred/internal/sliding"
)

// This file is the schema layer of the feature pipeline: instead of a
// hardcoded Table 2 variable list, a feature Schema is assembled from
// ResourceDescriptors (name, unit, direction, SWA window) from which the
// paper's derived metrics — SWA consumption speed, its inverse, the speed
// normalised by throughput, the level over the speed, and their combinations
// — are generated generically. The legacy VariableSets (full, no-heap,
// heap-focus) are re-expressed as schemas in schema_defs.go, byte-identical
// to the original lists, and new workloads can register schemas carrying
// their own resources (e.g. "full+conn" adds database-connection speed
// derivatives) without touching this package's core.
//
// A Schema is compiled at build time into an index-based column program; the
// per-stream RowExtractor evaluates that program with no map lookups and no
// per-checkpoint allocations, which is what keeps core.Session.Observe
// allocation-free in steady state.

// LevelFunc reads one raw metric from a checkpoint. The pointer receiver
// avoids copying the checkpoint once per column on the hot path; accessors
// must not retain or mutate the checkpoint.
type LevelFunc func(cp *monitor.Checkpoint) float64

// Direction documents how a resource approaches exhaustion. It does not
// change the generated columns — speeds are signed either way — but it is
// part of the descriptor so tooling (schema listings, root-cause reports)
// can say which way "bad" points.
type Direction int

const (
	// Gauge resources have no exhaustion direction (throughput, load).
	Gauge Direction = iota
	// Growing resources age by filling a capacity (heap, threads, pooled
	// connections).
	Growing
	// Shrinking resources age by draining towards zero (free swap).
	Shrinking
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Gauge:
		return "gauge"
	case Growing:
		return "growing"
	case Shrinking:
		return "shrinking"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ResourceDescriptor declares one monitored resource the schema tracks a
// consumption speed for. Derived-metric names are generated from Key
// ("swa_speed_<key>", "inv_swa_speed_<key>", ...), so adding a resource to a
// schema is one descriptor plus the list of derived families it should
// appear in.
type ResourceDescriptor struct {
	// Key is the short identifier used in derived-metric names ("old",
	// "threads", "conns"). Required, unique within a schema.
	Key string
	// LevelName is the identifier used by the "<level>_over_swa" family
	// (Table 2 names "young_used_over_swa", not "young_over_swa"). Empty
	// means Key.
	LevelName string
	// Unit documents the resource's unit ("MB", "threads").
	Unit string
	// Direction documents which way the resource ages.
	Direction Direction
	// Window overrides the schema's SWA window length for this resource's
	// speed (0 = the schema default).
	Window int
	// Level reads the resource's current level from a checkpoint. Required.
	Level LevelFunc
}

// levelName returns the effective "<level>_over_swa" identifier.
func (d ResourceDescriptor) levelName() string {
	if d.LevelName != "" {
		return d.LevelName
	}
	return d.Key
}

// colOp is one compiled column operation.
type colOp uint8

const (
	opRaw                 colOp = iota // raw metric, read straight off the checkpoint
	opSpeed                            // SWA consumption speed of a resource
	opSpeedPerTH                       // SWA speed / throughput
	opInvSpeed                         // 1 / SWA speed
	opLevelOverSpeed                   // level / SWA speed
	opInvSpeedPerTH                    // (1 / SWA speed) / throughput
	opLevelOverSpeedPerTH              // (level / SWA speed) / throughput
	opSmoothedLevel                    // SWA-smoothed raw level
)

// column is one compiled output column of a schema.
type column struct {
	name string
	op   colOp
	// res indexes Schema.resources for the speed-derived ops, and
	// Schema.smoothed for opSmoothedLevel. Unused (-1) for opRaw.
	res int
	// level is the checkpoint accessor for opRaw columns; idx is its
	// compiled checkpoint field index (-1 = not a plain field read, keep the
	// indirect call), fingerprinted once at schema build time.
	level LevelFunc
	idx   int32
	// owner is the Key of the resource this column belongs to ("" = none);
	// WithoutResources drops columns by owner.
	owner string
	// unit documents raw columns ("" for derived ones, whose unit follows
	// from the resource).
	unit string
}

// smoothedSpec is one SWA-smoothed level the schema maintains a window for.
type smoothedSpec struct {
	name   string
	owner  string
	window int // 0 = schema default
	level  LevelFunc
}

// Schema is an immutable, named feature schema: an ordered list of columns
// compiled over a set of resource descriptors. Build one with SchemaBuilder,
// register it with RegisterSchema, and extract rows with Stream (on-line,
// allocation-free) or Extract/ExtractAll (batch datasets). The target
// attribute of every schema-extracted dataset is Target (time to failure).
type Schema struct {
	name      string
	window    int
	resources []ResourceDescriptor
	smoothed  []smoothedSpec
	cols      []column
	attrs     []string
	// resIdx/smoothIdx are the compiled checkpoint field indices of the
	// resource and smoothed-level accessors (-1 = not a plain field read),
	// fingerprinted once at build time and shared read-only by every
	// extractor of the schema.
	resIdx    []int32
	smoothIdx []int32
}

// Name returns the schema's registry name.
func (s *Schema) Name() string { return s.name }

// WindowLength returns the default SWA window length, in checkpoints.
func (s *Schema) WindowLength() int { return s.window }

// NumAttrs returns the number of generated columns (excluding the target).
func (s *Schema) NumAttrs() int { return len(s.cols) }

// Attrs returns a copy of the column names, in dataset order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Resources returns a copy of the speed-tracked resource descriptors.
func (s *Schema) Resources() []ResourceDescriptor {
	return append([]ResourceDescriptor(nil), s.resources...)
}

// AttrsEqual reports whether the schema's column names are exactly names, in
// order. Model persistence uses it as the compatibility check when a saved
// model is loaded: the schema looked up by name must still generate the
// column layout the model was trained on, or the loaded model would silently
// read the wrong features.
func (s *Schema) AttrsEqual(names []string) bool {
	if len(names) != len(s.attrs) {
		return false
	}
	for i, n := range names {
		if n != s.attrs[i] {
			return false
		}
	}
	return true
}

// String summarises the schema.
func (s *Schema) String() string {
	keys := make([]string, len(s.resources))
	for i, r := range s.resources {
		keys[i] = r.Key
	}
	return fmt.Sprintf("schema %q: %d columns, %d speed-tracked resources (%s), window %d",
		s.name, len(s.cols), len(s.resources), strings.Join(keys, ", "), s.window)
}

// WithWindow returns a copy of the schema whose default SWA window length is
// n checkpoints (<= 0 keeps DefaultWindowLength). Resources with an explicit
// per-resource Window keep it. The copy keeps the schema's name but is not
// registered.
func (s *Schema) WithWindow(n int) *Schema {
	if n <= 0 {
		n = DefaultWindowLength
	}
	if n == s.window {
		return s
	}
	out := *s
	out.window = n
	return &out
}

// WithoutResources derives a new schema by removing the named resources and
// every column they own: their raw columns, all their speed-derived columns,
// and their smoothed levels. This is how the legacy exclusion sets are
// expressed ("no-heap" = full without {young, old}).
func (s *Schema) WithoutResources(name string, keys ...string) (*Schema, error) {
	drop := make(map[string]bool, len(keys))
	for _, k := range keys {
		if s.resourceIndex(k) < 0 {
			return nil, fmt.Errorf("features: schema %q has no resource %q", s.name, k)
		}
		drop[k] = true
	}
	out := &Schema{name: name, window: s.window}
	resMap := make([]int, len(s.resources))
	for i, r := range s.resources {
		if drop[r.Key] {
			resMap[i] = -1
			continue
		}
		resMap[i] = len(out.resources)
		out.resources = append(out.resources, r)
		out.resIdx = append(out.resIdx, s.resIdx[i])
	}
	smoothMap := make([]int, len(s.smoothed))
	for i, sp := range s.smoothed {
		if drop[sp.owner] {
			smoothMap[i] = -1
			continue
		}
		smoothMap[i] = len(out.smoothed)
		out.smoothed = append(out.smoothed, sp)
		out.smoothIdx = append(out.smoothIdx, s.smoothIdx[i])
	}
	for _, c := range s.cols {
		if drop[c.owner] {
			continue
		}
		switch c.op {
		case opRaw:
		case opSmoothedLevel:
			c.res = smoothMap[c.res]
		default:
			c.res = resMap[c.res]
		}
		out.cols = append(out.cols, c)
		out.attrs = append(out.attrs, c.name)
	}
	return out, nil
}

func (s *Schema) resourceIndex(key string) int {
	for i, r := range s.resources {
		if r.Key == key {
			return i
		}
	}
	return -1
}

// resourceWindow returns the effective window of resource i.
func (s *Schema) resourceWindow(i int) int {
	if w := s.resources[i].Window; w > 0 {
		return w
	}
	return s.window
}

func (s *Schema) smoothedWindow(i int) int {
	if w := s.smoothed[i].window; w > 0 {
		return w
	}
	return s.window
}

// NewDataset returns an empty dataset with the schema's columns and the
// standard time-to-failure target.
func (s *Schema) NewDataset(relation string) (*dataset.Dataset, error) {
	return dataset.New(relation, s.attrs, Target)
}

// Extract builds a dataset from a single monitored series: one instance per
// checkpoint, with the derived variables at checkpoint i using only
// information available up to i (so the resulting model can be applied
// on-line).
func (s *Schema) Extract(series *monitor.Series) (*dataset.Dataset, error) {
	if series == nil {
		return nil, fmt.Errorf("features: nil series")
	}
	if series.Len() == 0 {
		return nil, fmt.Errorf("features: series %q has no checkpoints", series.Name)
	}
	ds, err := s.NewDataset(series.Name)
	if err != nil {
		return nil, fmt.Errorf("features: building dataset schema: %w", err)
	}
	x := s.Stream()
	for _, cp := range series.Checkpoints {
		if err := ds.Append(x.Step(cp), cp.TTFSec); err != nil {
			return nil, fmt.Errorf("features: appending checkpoint at t=%v: %w", cp.TimeSec, err)
		}
	}
	return ds, nil
}

// ExtractAll builds one dataset from several series (e.g. the 4-execution
// training sets the paper uses), concatenating their instances.
func (s *Schema) ExtractAll(relation string, series []*monitor.Series) (*dataset.Dataset, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("features: no series")
	}
	out, err := s.NewDataset(relation)
	if err != nil {
		return nil, fmt.Errorf("features: building dataset schema: %w", err)
	}
	for _, sr := range series {
		ds, err := s.Extract(sr)
		if err != nil {
			return nil, err
		}
		if err := out.AppendAll(ds); err != nil {
			return nil, fmt.Errorf("features: merging series %q: %w", sr.Name, err)
		}
	}
	return out, nil
}

// RowExtractor is the compiled per-stream extraction state of one schema:
// one SpeedTracker per resource, one Window per smoothed level, and a
// reusable output row. Step is the per-checkpoint hot path — index-based,
// no map lookups, no allocations in steady state. A RowExtractor serves one
// checkpoint stream and is not safe for concurrent use.
//
// An extractor can be projected onto a column subset (StreamFor): only the
// selected columns — and only the sliding-window state they read — are
// computed, with the remaining row entries left zero. Every computed column
// performs exactly the operations the full extractor performs, so projected
// and full extraction agree bit-for-bit on the selected columns. This is how
// a serving session skips the derived features its bound model can never
// read.
type RowExtractor struct {
	s        *Schema
	trackers []*sliding.SpeedTracker
	windows  []*sliding.Window
	// cp holds the checkpoint being processed so accessors can take a
	// pointer into the extractor instead of escaping a stack copy.
	cp    monitor.Checkpoint
	level []float64 // per-resource level of the current checkpoint
	swa   []float64 // per-resource SWA speed after observing it
	// inv and los hold the per-resource Inverse(swa) and SafeDiv(level, swa)
	// shared by the derived families that read them (the plain column and its
	// per-throughput variant), computed at most once per resource per
	// checkpoint instead of once per column. needInv/needLos say which
	// resources any selected column actually reads them for.
	inv, los         []float64
	needInv, needLos []bool
	row              []float64 // reusable output buffer

	// Projection state: the resources and smoothed levels Step actually
	// updates (all of them for a full extractor).
	resOn    []int
	smoothOn []int
	// resIdx/smoothIdx are the schema's compiled checkpoint field indices of
	// the resource and smoothed-level accessors (-1 = not a plain field
	// read, keep the indirect call), shared read-only across extractors.
	resIdx    []int32
	smoothIdx []int32

	// The compiled column program for the selected columns, split by kind so
	// the per-checkpoint loops iterate compact 16/12-byte steps instead of
	// the schema's fat column structs. Raw and derived columns are pure
	// reads of disjoint state, so running the raw program first is
	// bit-identical to the schema's column order.
	rawProg     []rawStep
	derivedProg []derivedStep
}

// rawStep copies one raw checkpoint metric into its output column. idx is
// the compiled checkpoint field index (-1 = call level instead).
type rawStep struct {
	dst, idx int32
	level    LevelFunc
}

// derivedStep computes one derived column from the per-resource speed/level
// state (or a smoothed-level window, for opSmoothedLevel).
type derivedStep struct {
	dst, res int32
	op       colOp
}

// compile builds the split column program for the selected schema columns,
// in schema order within each kind, and records which resources need the
// shared inv/los intermediates.
func (x *RowExtractor) compile(cols []int) {
	for _, ci := range cols {
		c := &x.s.cols[ci]
		if c.op == opRaw {
			x.rawProg = append(x.rawProg, rawStep{dst: int32(ci), idx: c.idx, level: c.level})
			continue
		}
		switch c.op {
		case opInvSpeed, opInvSpeedPerTH:
			x.needInv[c.res] = true
		case opLevelOverSpeed, opLevelOverSpeedPerTH:
			x.needLos[c.res] = true
		}
		x.derivedProg = append(x.derivedProg, derivedStep{dst: int32(ci), res: int32(c.res), op: c.op})
	}
}

// fieldIndexOf compiles a level accessor down to the checkpoint field it
// reads, or -1 when it is not a plain field read. Accessors are opaque
// functions, so the compilation is behavioural: the accessor is evaluated on
// two probe checkpoints whose fields hold distinct irrational-spread values;
// only a plain read of field k returns exactly probe.Vec()[k] on both. Any
// accessor that computes keeps the indirect call — slower, still correct.
func fieldIndexOf(f LevelFunc) int32 {
	var p1, p2 monitor.Checkpoint
	v1, v2 := p1.Vec(), p2.Vec()
	for i := range v1 {
		v1[i] = 1e3 + 13.7*math.Sqrt(float64(i)+2)
		v2[i] = -5e2 - 7.3*math.Cbrt(float64(i)+3)
	}
	a, b := f(&p1), f(&p2)
	for i := range v1 {
		if a == v1[i] && b == v2[i] {
			return int32(i)
		}
	}
	return -1
}

// Stream returns a fresh extraction state for one checkpoint stream,
// computing every column of the schema.
func (s *Schema) Stream() *RowExtractor {
	x, _ := s.StreamFor(nil)
	return x
}

// StreamFor returns a fresh extraction state that computes only the given
// columns (schema column indices) and maintains only the sliding-window
// state those columns read; the remaining entries of the returned rows stay
// zero. nil selects every column. Out-of-range or duplicate indices are an
// error.
func (s *Schema) StreamFor(cols []int) (*RowExtractor, error) {
	x := &RowExtractor{
		s:         s,
		trackers:  make([]*sliding.SpeedTracker, len(s.resources)),
		windows:   make([]*sliding.Window, len(s.smoothed)),
		level:     make([]float64, len(s.resources)),
		swa:       make([]float64, len(s.resources)),
		inv:       make([]float64, len(s.resources)),
		los:       make([]float64, len(s.resources)),
		needInv:   make([]bool, len(s.resources)),
		needLos:   make([]bool, len(s.resources)),
		resIdx:    s.resIdx,
		smoothIdx: s.smoothIdx,
		row:       make([]float64, len(s.cols)),
	}
	for i := range s.resources {
		x.trackers[i] = sliding.NewSpeedTracker(s.resourceWindow(i))
	}
	for i := range s.smoothed {
		x.windows[i] = sliding.NewWindow(s.smoothedWindow(i))
	}
	if cols == nil {
		// A full extractor computes every column and maintains every
		// tracker, whether or not a column reads it.
		colsOn := make([]int, len(s.cols))
		for i := range s.cols {
			colsOn[i] = i
		}
		x.compile(colsOn)
		x.resOn = make([]int, len(s.resources))
		for i := range s.resources {
			x.resOn[i] = i
		}
		x.smoothOn = make([]int, len(s.smoothed))
		for i := range s.smoothed {
			x.smoothOn[i] = i
		}
		return x, nil
	}
	seen := make(map[int]bool, len(cols))
	for _, ci := range cols {
		if ci < 0 || ci >= len(s.cols) {
			return nil, fmt.Errorf("features: schema %q has no column %d (have %d)", s.name, ci, len(s.cols))
		}
		if seen[ci] {
			return nil, fmt.Errorf("features: duplicate projected column %d", ci)
		}
		seen[ci] = true
	}
	colsOn := append([]int(nil), cols...)
	sort.Ints(colsOn)
	x.compile(colsOn)
	resSeen := make([]bool, len(s.resources))
	smoothSeen := make([]bool, len(s.smoothed))
	for _, ci := range colsOn {
		c := &s.cols[ci]
		switch c.op {
		case opRaw:
		case opSmoothedLevel:
			smoothSeen[c.res] = true
		default:
			resSeen[c.res] = true
		}
	}
	for i, on := range resSeen {
		if on {
			x.resOn = append(x.resOn, i)
		}
	}
	for i, on := range smoothSeen {
		if on {
			x.smoothOn = append(x.smoothOn, i)
		}
	}
	return x, nil
}

// Schema returns the schema the extractor was compiled from.
func (x *RowExtractor) Schema() *Schema { return x.s }

// Step consumes one checkpoint and returns the feature row, aligned with
// the schema's Attrs. The returned slice is the extractor's internal buffer:
// it is valid until the next Step and must not be modified. Callers that
// need to keep a row must copy it (dataset.Append already does).
func (x *RowExtractor) Step(cp monitor.Checkpoint) []float64 {
	x.cp = cp
	return x.StepInto(&x.cp, x.row)
}

// StepInto is Step writing the feature row into dst (len >= the schema's
// NumAttrs) instead of the extractor's internal buffer, so many streams can
// extract into one contiguous struct-of-arrays batch (RowBatch) per shard
// tick. The checkpoint is read through the pointer and not retained; dst is
// returned truncated to the row width. Entries outside a projected
// extractor's column set are left untouched.
func (x *RowExtractor) StepInto(cp *monitor.Checkpoint, dst []float64) []float64 {
	s := x.s
	vec := cp.Vec()
	for _, i := range x.resOn {
		var lvl float64
		if idx := x.resIdx[i]; idx >= 0 {
			lvl = vec[idx]
		} else {
			lvl = s.resources[i].Level(cp)
		}
		// Errors can only come from non-finite values or time going
		// backwards; checkpoints are produced by the monitor in time order
		// with finite values, and a defensive drop of one speed sample is
		// preferable to aborting an on-line prediction loop.
		_ = x.trackers[i].Observe(cp.TimeSec, lvl)
		x.level[i] = lvl
		swa := x.trackers[i].SWA()
		x.swa[i] = swa
		// The shared intermediates of the derived families, computed once per
		// resource. Pure functions of (lvl, swa), so hoisting them out of the
		// column loop is bit-identical to computing them per column.
		if x.needInv[i] {
			x.inv[i] = sliding.Inverse(swa)
		}
		if x.needLos[i] {
			x.los[i] = sliding.SafeDiv(lvl, swa)
		}
	}
	for _, i := range x.smoothOn {
		if idx := x.smoothIdx[i]; idx >= 0 {
			x.windows[i].Push(vec[idx])
		} else {
			x.windows[i].Push(s.smoothed[i].level(cp))
		}
	}
	th := cp.Throughput
	dst = dst[:len(s.cols)]
	for i := range x.rawProg {
		r := &x.rawProg[i]
		if r.idx >= 0 {
			dst[r.dst] = vec[r.idx]
		} else {
			dst[r.dst] = r.level(cp)
		}
	}
	for i := range x.derivedProg {
		d := &x.derivedProg[i]
		var v float64
		switch d.op {
		case opSpeed:
			v = x.swa[d.res]
		case opSpeedPerTH:
			v = sliding.SafeDiv(x.swa[d.res], th)
		case opInvSpeed:
			v = x.inv[d.res]
		case opLevelOverSpeed:
			v = x.los[d.res]
		case opInvSpeedPerTH:
			v = sliding.SafeDiv(x.inv[d.res], th)
		case opLevelOverSpeedPerTH:
			v = sliding.SafeDiv(x.los[d.res], th)
		case opSmoothedLevel:
			v = x.windows[d.res].Mean()
		}
		dst[d.dst] = v
	}
	return dst
}

// Reset clears all sliding-window state (e.g. after a rejuvenation action),
// reusing the existing buffers.
func (x *RowExtractor) Reset() {
	for _, t := range x.trackers {
		t.Reset()
	}
	for _, w := range x.windows {
		w.Reset()
	}
}

// SchemaBuilder assembles a Schema column by column. The builder records the
// first error and reports it from Build, so call sites can chain without
// per-call checks.
type SchemaBuilder struct {
	s    Schema
	seen map[string]bool
	err  error
}

// NewSchemaBuilder starts a schema with the given name and default SWA
// window length (<= 0 means DefaultWindowLength).
func NewSchemaBuilder(name string, windowLen int) *SchemaBuilder {
	if windowLen <= 0 {
		windowLen = DefaultWindowLength
	}
	return &SchemaBuilder{
		s:    Schema{name: name, window: windowLen},
		seen: map[string]bool{Target: true},
	}
}

func (b *SchemaBuilder) fail(format string, args ...any) *SchemaBuilder {
	if b.err == nil {
		b.err = fmt.Errorf("features: schema %q: "+format, append([]any{b.s.name}, args...)...)
	}
	return b
}

func (b *SchemaBuilder) addCol(c column) *SchemaBuilder {
	if b.err != nil {
		return b
	}
	if c.name == "" {
		return b.fail("column with empty name")
	}
	if b.seen[c.name] {
		return b.fail("duplicate column %q", c.name)
	}
	b.seen[c.name] = true
	if c.op == opRaw {
		c.idx = fieldIndexOf(c.level)
	}
	b.s.cols = append(b.s.cols, c)
	b.s.attrs = append(b.s.attrs, c.name)
	return b
}

// Resource registers a speed-tracked resource. It emits no columns by
// itself; the derived-family methods reference it by Key.
func (b *SchemaBuilder) Resource(d ResourceDescriptor) *SchemaBuilder {
	if b.err != nil {
		return b
	}
	if d.Key == "" {
		return b.fail("resource with empty key")
	}
	if d.Level == nil {
		return b.fail("resource %q has no level accessor", d.Key)
	}
	if b.s.resourceIndex(d.Key) >= 0 {
		return b.fail("duplicate resource %q", d.Key)
	}
	b.s.resources = append(b.s.resources, d)
	b.s.resIdx = append(b.s.resIdx, fieldIndexOf(d.Level))
	return b
}

// Raw appends a raw column read straight off the checkpoint.
func (b *SchemaBuilder) Raw(name, unit string, level LevelFunc) *SchemaBuilder {
	return b.RawFor("", name, unit, level)
}

// RawFor is Raw with an owning resource key: WithoutResources(key) drops the
// column along with the resource's derived metrics. The owner must already
// be registered, so a typo'd key cannot silently survive a later exclusion.
func (b *SchemaBuilder) RawFor(owner, name, unit string, level LevelFunc) *SchemaBuilder {
	if b.err != nil {
		return b
	}
	if level == nil {
		return b.fail("raw column %q has no accessor", name)
	}
	if owner != "" && b.s.resourceIndex(owner) < 0 {
		return b.fail("raw column %q owned by unknown resource %q", name, owner)
	}
	return b.addCol(column{name: name, op: opRaw, res: -1, level: level, owner: owner, unit: unit})
}

// derived appends one family column per key, in the given key order.
func (b *SchemaBuilder) derived(op colOp, nameOf func(d ResourceDescriptor) string, keys []string) *SchemaBuilder {
	for _, key := range keys {
		if b.err != nil {
			return b
		}
		i := b.s.resourceIndex(key)
		if i < 0 {
			return b.fail("derived column references unknown resource %q", key)
		}
		b.addCol(column{name: nameOf(b.s.resources[i]), op: op, res: i, owner: key})
	}
	return b
}

// Speeds appends "swa_speed_<key>" columns: the sliding-window-averaged
// consumption speed of each resource.
func (b *SchemaBuilder) Speeds(keys ...string) *SchemaBuilder {
	return b.derived(opSpeed, func(d ResourceDescriptor) string { return "swa_speed_" + d.Key }, keys)
}

// SpeedsPerThroughput appends "swa_speed_<key>_per_th" columns: the SWA
// speed normalised by throughput.
func (b *SchemaBuilder) SpeedsPerThroughput(keys ...string) *SchemaBuilder {
	return b.derived(opSpeedPerTH, func(d ResourceDescriptor) string { return "swa_speed_" + d.Key + "_per_th" }, keys)
}

// InverseSpeeds appends "inv_swa_speed_<key>" columns: seconds per unit of
// resource consumed.
func (b *SchemaBuilder) InverseSpeeds(keys ...string) *SchemaBuilder {
	return b.derived(opInvSpeed, func(d ResourceDescriptor) string { return "inv_swa_speed_" + d.Key }, keys)
}

// LevelsOverSpeed appends "<level>_over_swa" columns: the current level
// divided by the SWA speed.
func (b *SchemaBuilder) LevelsOverSpeed(keys ...string) *SchemaBuilder {
	return b.derived(opLevelOverSpeed, func(d ResourceDescriptor) string { return d.levelName() + "_over_swa" }, keys)
}

// InverseSpeedsPerThroughput appends "inv_swa_per_th_<key>" columns.
func (b *SchemaBuilder) InverseSpeedsPerThroughput(keys ...string) *SchemaBuilder {
	return b.derived(opInvSpeedPerTH, func(d ResourceDescriptor) string { return "inv_swa_per_th_" + d.Key }, keys)
}

// LevelsOverSpeedPerThroughput appends "r_over_swa_per_th_<key>" columns.
func (b *SchemaBuilder) LevelsOverSpeedPerThroughput(keys ...string) *SchemaBuilder {
	return b.derived(opLevelOverSpeedPerTH, func(d ResourceDescriptor) string { return "r_over_swa_per_th_" + d.Key }, keys)
}

// SpeedDerivatives appends, for each key, the complete derived-metric family
// in canonical order: SWA speed, speed per throughput, inverse speed, level
// over speed, inverse speed per throughput, and level over speed per
// throughput. New resources typically use this; the legacy Table 2 layout
// interleaves families across resources and calls the family methods
// directly.
func (b *SchemaBuilder) SpeedDerivatives(keys ...string) *SchemaBuilder {
	for _, key := range keys {
		b.Speeds(key).
			SpeedsPerThroughput(key).
			InverseSpeeds(key).
			LevelsOverSpeed(key).
			InverseSpeedsPerThroughput(key).
			LevelsOverSpeedPerThroughput(key)
	}
	return b
}

// SmoothedLevel appends a column holding the SWA-smoothed raw level.
func (b *SchemaBuilder) SmoothedLevel(name string, level LevelFunc) *SchemaBuilder {
	return b.SmoothedLevelFor("", name, level)
}

// SmoothedLevelFor is SmoothedLevel with an owning resource key; like
// RawFor, the owner must already be registered.
func (b *SchemaBuilder) SmoothedLevelFor(owner, name string, level LevelFunc) *SchemaBuilder {
	if b.err != nil {
		return b
	}
	if level == nil {
		return b.fail("smoothed column %q has no accessor", name)
	}
	if owner != "" && b.s.resourceIndex(owner) < 0 {
		return b.fail("smoothed column %q owned by unknown resource %q", name, owner)
	}
	idx := len(b.s.smoothed)
	b.s.smoothed = append(b.s.smoothed, smoothedSpec{name: name, owner: owner, level: level})
	b.s.smoothIdx = append(b.s.smoothIdx, fieldIndexOf(level))
	return b.addCol(column{name: name, op: opSmoothedLevel, res: idx, owner: owner})
}

// Build finalises the schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.s.cols) == 0 {
		return nil, fmt.Errorf("features: schema %q has no columns", b.s.name)
	}
	out := b.s
	return &out, nil
}

// MustBuild is Build for package-level schema construction; it panics on
// error (an invalid built-in schema is a programming error).
func (b *SchemaBuilder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// --- schema registry ------------------------------------------------------

var (
	schemaMu  sync.RWMutex
	schemaReg = map[string]*Schema{}
)

// RegisterSchema adds a schema to the registry. Schema names are stable
// identifiers (CLI -schema flags, scenario declarations), so empty or
// duplicate names fail.
func RegisterSchema(s *Schema) error {
	if s == nil {
		return fmt.Errorf("features: register nil schema")
	}
	if s.name == "" {
		return fmt.Errorf("features: schema with empty name")
	}
	schemaMu.Lock()
	defer schemaMu.Unlock()
	if _, ok := schemaReg[s.name]; ok {
		return fmt.Errorf("features: schema %q already registered", s.name)
	}
	schemaReg[s.name] = s
	return nil
}

// mustRegisterSchema registers a built-in schema at init time.
func mustRegisterSchema(s *Schema) *Schema {
	if err := RegisterSchema(s); err != nil {
		panic(err)
	}
	return s
}

// LookupSchema returns the registered schema with the given name; the error
// for an unknown name lists every valid one.
func LookupSchema(name string) (*Schema, error) {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	s, ok := schemaReg[name]
	if !ok {
		return nil, fmt.Errorf("features: unknown schema %q (known: %s)",
			name, strings.Join(schemaNamesLocked(), ", "))
	}
	return s, nil
}

// SchemaNames returns the registered schema names in sorted order.
func SchemaNames() []string {
	schemaMu.RLock()
	defer schemaMu.RUnlock()
	return schemaNamesLocked()
}

func schemaNamesLocked() []string {
	names := make([]string, 0, len(schemaReg))
	for name := range schemaReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
