package features

import "agingpred/internal/monitor"

// The built-in schemas. The Table 2 layout groups columns by derived family
// and, inside each family, orders resources the way the paper's table does —
// which is why the builder below calls the family methods explicitly instead
// of SpeedDerivatives. The legacy VariableSets (full, no-heap, heap-focus)
// are these schemas; the regression test in schema_regression_test.go pins
// them byte-identical to the original hardcoded lists.

// Checkpoint accessors for the Table 2 raw metrics.
func cpThroughput(cp *monitor.Checkpoint) float64   { return cp.Throughput }
func cpWorkload(cp *monitor.Checkpoint) float64     { return cp.Workload }
func cpResponseTime(cp *monitor.Checkpoint) float64 { return cp.ResponseTimeSec }
func cpSystemLoad(cp *monitor.Checkpoint) float64   { return cp.SystemLoad }
func cpDiskUsed(cp *monitor.Checkpoint) float64     { return cp.DiskUsedMB }
func cpSwapFree(cp *monitor.Checkpoint) float64     { return cp.SwapFreeMB }
func cpNumProcesses(cp *monitor.Checkpoint) float64 { return cp.NumProcesses }
func cpSysMem(cp *monitor.Checkpoint) float64       { return cp.SystemMemUsedMB }
func cpTomcatMem(cp *monitor.Checkpoint) float64    { return cp.TomcatMemUsedMB }
func cpNumThreads(cp *monitor.Checkpoint) float64   { return cp.NumThreads }
func cpHTTPConns(cp *monitor.Checkpoint) float64    { return cp.NumHTTPConns }
func cpMySQLConns(cp *monitor.Checkpoint) float64   { return cp.NumMySQLConns }
func cpYoungMax(cp *monitor.Checkpoint) float64     { return cp.YoungMaxMB }
func cpOldMax(cp *monitor.Checkpoint) float64       { return cp.OldMaxMB }
func cpYoungUsed(cp *monitor.Checkpoint) float64    { return cp.YoungUsedMB }
func cpOldUsed(cp *monitor.Checkpoint) float64      { return cp.OldUsedMB }
func cpYoungPct(cp *monitor.Checkpoint) float64     { return cp.YoungPct }
func cpOldPct(cp *monitor.Checkpoint) float64       { return cp.OldPct }

// Schema names of the built-in schemas. The first three coincide with the
// legacy VariableSet String() names.
const (
	FullSchemaName      = "full"
	NoHeapSchemaName    = "no-heap"
	HeapFocusSchemaName = "heap-focus"
	// FullConnSchemaName extends the full Table 2 set with the
	// database-connection speed derivatives the paper's variable list lacks
	// (the conn-leak feature gap documented in EXPERIMENTS.md).
	FullConnSchemaName = "full+conn"
)

// table2Builder assembles the paper's Table 2 schema; withConn appends the
// connection-speed derivative family at the end.
func table2Builder(name string, withConn bool) *SchemaBuilder {
	b := NewSchemaBuilder(name, DefaultWindowLength)
	// Speed-tracked resources.
	b.Resource(ResourceDescriptor{Key: "young", LevelName: "young_used", Unit: "MB", Direction: Growing, Level: cpYoungUsed})
	b.Resource(ResourceDescriptor{Key: "old", LevelName: "old_used", Unit: "MB", Direction: Growing, Level: cpOldUsed})
	b.Resource(ResourceDescriptor{Key: "threads", Unit: "threads", Direction: Growing, Level: cpNumThreads})
	b.Resource(ResourceDescriptor{Key: "tomcat_mem", Unit: "MB", Direction: Growing, Level: cpTomcatMem})
	b.Resource(ResourceDescriptor{Key: "sys_mem", Unit: "MB", Direction: Growing, Level: cpSysMem})
	if withConn {
		b.Resource(ResourceDescriptor{Key: "conns", Unit: "connections", Direction: Growing, Window: 40, Level: cpMySQLConns})
	}
	// Raw metrics.
	b.Raw("throughput", "req/s", cpThroughput)
	b.Raw("workload", "EBs", cpWorkload)
	b.Raw("response_time", "s", cpResponseTime)
	b.Raw("system_load", "workers", cpSystemLoad)
	b.Raw("disk_used_mb", "MB", cpDiskUsed)
	b.Raw("swap_free_mb", "MB", cpSwapFree)
	b.Raw("num_processes", "processes", cpNumProcesses)
	b.RawFor("sys_mem", "sys_mem_used_mb", "MB", cpSysMem)
	b.RawFor("tomcat_mem", "tomcat_mem_used_mb", "MB", cpTomcatMem)
	b.RawFor("threads", "num_threads", "threads", cpNumThreads)
	b.Raw("num_http_conns", "connections", cpHTTPConns)
	b.Raw("num_mysql_conns", "connections", cpMySQLConns)
	b.RawFor("young", "young_max_mb", "MB", cpYoungMax)
	b.RawFor("old", "old_max_mb", "MB", cpOldMax)
	b.RawFor("young", "young_used_mb", "MB", cpYoungUsed)
	b.RawFor("old", "old_used_mb", "MB", cpOldUsed)
	b.RawFor("young", "young_used_pct", "%", cpYoungPct)
	b.RawFor("old", "old_used_pct", "%", cpOldPct)
	// SWA consumption speeds.
	b.Speeds("young", "old", "threads", "tomcat_mem", "sys_mem")
	// Speeds normalised by throughput.
	b.SpeedsPerThroughput("tomcat_mem", "sys_mem", "young", "old")
	// Inverse speeds.
	b.InverseSpeeds("threads", "tomcat_mem", "sys_mem", "young", "old")
	// Resource level over SWA speed.
	b.LevelsOverSpeed("young", "old", "threads", "tomcat_mem", "sys_mem")
	// Inverse speed per throughput.
	b.InverseSpeedsPerThroughput("tomcat_mem", "sys_mem", "young", "old")
	// Level over speed, per throughput.
	b.LevelsOverSpeedPerThroughput("tomcat_mem", "sys_mem", "young", "old")
	// SWA-smoothed levels.
	b.SmoothedLevel("swa_response_time", cpResponseTime)
	b.SmoothedLevel("swa_throughput", cpThroughput)
	b.SmoothedLevelFor("sys_mem", "swa_sys_mem_used", cpSysMem)
	b.SmoothedLevelFor("tomcat_mem", "swa_tomcat_mem_used", cpTomcatMem)
	if withConn {
		// The connection resource brings its whole derived family, appended
		// after the Table 2 columns so the original ones keep their indices.
		b.SpeedDerivatives("conns")
	}
	return b
}

func mustWithout(s *Schema, name string, keys ...string) *Schema {
	out, err := s.WithoutResources(name, keys...)
	if err != nil {
		panic(err)
	}
	return out
}

// The built-in schemas, registered at init time.
var (
	fullSchema      = mustRegisterSchema(table2Builder(FullSchemaName, false).MustBuild())
	noHeapSchema    = mustRegisterSchema(mustWithout(fullSchema, NoHeapSchemaName, "young", "old"))
	heapFocusSchema = mustRegisterSchema(mustWithout(fullSchema, HeapFocusSchemaName, "tomcat_mem", "sys_mem"))
	fullConnSchema  = mustRegisterSchema(table2Builder(FullConnSchemaName, true).MustBuild())
)
